// Quickstart: build a network, ask an oracle for advice, run a scheme.
//
//   $ ./examples/quickstart
//
// Walks through the library's three core objects — PortGraph, Oracle,
// Algorithm — on a small random network, printing what each step produced.
#include <iostream>

#include "core/batch_runner.h"
#include "core/broadcast_b.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "util/rng.h"

using namespace oraclesize;

int main() {
  // 1. A network: connected, port-labeled, with a distinguished source.
  Rng rng(2024);
  const PortGraph g = make_random_connected(32, 0.15, rng);
  const NodeId source = 0;
  std::cout << "Network: " << g.summary() << ", source id " << source
            << " (label " << g.label(source) << ")\n\n";

  // 2. An oracle looks at the WHOLE network and hands each node a bit
  //    string. Oracle size = total bits = the paper's difficulty measure.
  const TreeWakeupOracle wakeup_oracle;
  const auto advice = wakeup_oracle.advise(g, source);
  std::cout << "Wakeup oracle (" << wakeup_oracle.name()
            << ") assigned " << oracle_size_bits(advice)
            << " bits in total. A few nodes' strings:\n";
  for (NodeId v = 0; v < 4; ++v) {
    std::cout << "  node " << v << ": \"" << advice[v].to_string() << "\"\n";
  }

  // 3. An algorithm maps each node's local quadruple (advice, is-source,
  //    id, degree) to a scheme; the engine plays the execution.
  const TaskReport wakeup =
      run_task(g, source, wakeup_oracle, WakeupTreeAlgorithm());
  std::cout << "\nWakeup run:    " << wakeup.summary() << "\n";

  const TaskReport broadcast =
      run_task(g, source, LightBroadcastOracle(), BroadcastBAlgorithm());
  std::cout << "Broadcast run: " << broadcast.summary() << "\n\n";

  std::cout << "Same task, same network - but the broadcast oracle needed "
            << broadcast.oracle_bits << " bits where wakeup needed "
            << wakeup.oracle_bits
            << ": spontaneous control traffic buys information.\n\n";

  // 4. Sweeps go through BatchRunner: declare every trial up front as a
  //    TrialSpec, and run them on a worker pool (jobs = 0 means hardware
  //    concurrency). Results come back in spec order and are bit-identical
  //    to running each spec alone, whatever the job count — so a sweep is
  //    just a loop over the returned reports.
  const LightBroadcastOracle broadcast_oracle;
  const BroadcastBAlgorithm broadcast_algorithm;
  std::vector<TrialSpec> specs;
  for (NodeId s = 0; s < 8; ++s) {
    specs.push_back({&g, s, &broadcast_oracle, &broadcast_algorithm,
                     RunOptions{}});
  }
  const BatchRunner runner(0);
  const std::vector<TaskReport> sweep = runner.run(specs);
  std::cout << "Batched sweep (" << runner.jobs()
            << " worker(s)): broadcast from 8 different sources:\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::cout << "  source " << i << ": "
              << sweep[i].run.metrics.messages_total << " messages, "
              << (sweep[i].ok() ? "ok" : "violation") << "\n";
  }
  return 0;
}
