// Scheme B under hostile conditions.
//
// The strength of Theorem 3.1's upper bound is *where it holds*: totally
// asynchronous delivery, anonymous nodes, constant-size messages. This
// example runs Figure 1's scheme B on one network under every scheduler the
// simulator has — including the adversarial LIFO executive that delivers
// the most recently sent message first — with node identities hidden, and
// shows the message count staying linear every time.
#include <iostream>

#include "core/broadcast_b.h"
#include "core/runner.h"
#include "graph/builders.h"
#include "oracle/light_broadcast_oracle.h"
#include "util/rng.h"
#include "util/table.h"

using namespace oraclesize;

int main() {
  Rng rng(7);
  const PortGraph g = shuffle_ports(make_random_connected(200, 0.05, rng),
                                    rng);
  const NodeId source = 42;
  const std::size_t n = g.num_nodes();
  std::cout << "Network: " << g.summary() << " with randomized port numbers; "
            << "linear budget 3(n-1) = " << 3 * (n - 1) << " messages.\n\n";

  Table t({"scheduler", "seed", "M msgs", "hello msgs", "total", "informed",
           "<= 3(n-1)?"});
  for (SchedulerKind sched :
       {SchedulerKind::kSynchronous, SchedulerKind::kAsyncFifo,
        SchedulerKind::kAsyncLifo}) {
    RunOptions opts;
    opts.scheduler = sched;
    opts.anonymous = true;  // nodes never see their labels
    const TaskReport r = run_task(g, source, LightBroadcastOracle(),
                                  BroadcastBAlgorithm(), opts);
    t.row()
        .cell(to_string(sched))
        .cell(std::uint64_t{0})
        .cell(r.run.metrics.messages_source)
        .cell(r.run.metrics.messages_hello)
        .cell(r.run.metrics.messages_total)
        .cell(r.run.informed_count())
        .cell(r.run.metrics.messages_total <= 3 * (n - 1) ? "yes" : "NO");
  }
  // Randomized asynchrony across many seeds: the race between hello and M
  // (a node can learn a tree edge only after it is already informed) is
  // re-drawn every seed; the budget must hold for all of them.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RunOptions opts;
    opts.scheduler = SchedulerKind::kAsyncRandom;
    opts.seed = seed;
    opts.max_delay = 64;
    opts.anonymous = true;
    const TaskReport r = run_task(g, source, LightBroadcastOracle(),
                                  BroadcastBAlgorithm(), opts);
    t.row()
        .cell("async-random")
        .cell(seed)
        .cell(r.run.metrics.messages_source)
        .cell(r.run.metrics.messages_hello)
        .cell(r.run.metrics.messages_total)
        .cell(r.run.informed_count())
        .cell(r.run.metrics.messages_total <= 3 * (n - 1) ? "yes" : "NO");
  }
  t.print(std::cout, "Scheme B, anonymous, across schedulers");
  return 0;
}
