// How much is a bit of advice worth?
//
// Sweeps the advised fraction of the hybrid wakeup (tree relay where the
// oracle spoke, flooding where it stayed silent) on one network and prints
// the measured exchange rate: messages saved per advice bit spent. This is
// the paper's difficulty measure experienced as a dial — and the reason the
// measure counts TOTAL bits: watch the complete-graph run at the end, where
// almost all the advice value sits in one node's string.
#include <iostream>

#include "core/hybrid_wakeup.h"
#include "core/runner.h"
#include "graph/builders.h"
#include "graph/complete_star.h"
#include "oracle/partial_tree_oracle.h"
#include "util/rng.h"
#include "util/table.h"

using namespace oraclesize;

namespace {

void sweep(const char* name, const PortGraph& g) {
  std::cout << name << ": " << g.summary() << "\n";
  Table t({"advised fraction", "oracle bits", "messages", "msgs saved/bit"});
  std::uint64_t base_bits = 0, base_msgs = 0;
  for (double q : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const TaskReport r =
        run_task(g, 0, PartialTreeOracle(q, 99), HybridWakeupAlgorithm());
    if (!r.ok()) {
      std::cout << "  run failed: " << r.summary() << "\n";
      return;
    }
    const std::uint64_t bits = r.oracle_bits;
    const std::uint64_t msgs = r.run.metrics.messages_total;
    double rate = 0;
    if (q > 0 && bits > base_bits && base_msgs > msgs) {
      rate = static_cast<double>(base_msgs - msgs) /
             static_cast<double>(bits - base_bits);
    }
    t.row().cell(q, 1).cell(bits).cell(msgs).cell(rate, 2);
    if (q == 0.0) {
      base_bits = bits;
      base_msgs = msgs;
    }
  }
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  Rng rng(12);
  sweep("sparse random graph", make_random_connected(600, 8.0 / 600, rng));
  sweep("complete graph K*_256", make_complete_star(256));
  std::cout
      << "On the sparse graph, advice pays off smoothly — a few messages\n"
         "saved per bit. On K*_n the q-dial barely moves total bits (the\n"
         "BFS advice is concentrated at the root) yet messages collapse\n"
         "255x: the marginal value of a bit depends on where it sits,\n"
         "which is why the paper's oracle-size measure sums over all\n"
         "nodes instead of constraining any single one.\n";
  return 0;
}
