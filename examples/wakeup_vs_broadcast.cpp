// The paper's separation, as a runnable demonstration.
//
// Both primitives deliver one source message to every node; the ONLY
// difference is whether nodes may transmit before being informed. This
// example makes the difference concrete three ways on the same networks:
//   1. oracle sizes: wakeup advice grows ~ n log n, broadcast advice ~ n;
//   2. the broadcast scheme run under wakeup rules is flagged by the
//      engine's wakeup enforcement (its hellos are spontaneous);
//   3. a wakeup given only the broadcast-sized advice cannot even decode a
//      spanning tree — the information is simply not there.
#include <iostream>

#include "core/broadcast_b.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/complete_star.h"
#include "lowerbound/bounds.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "util/table.h"

using namespace oraclesize;

int main() {
  Table t({"n", "wakeup bits", "wakeup msgs", "bcast bits", "bcast msgs",
           "bits ratio", "zero-advice wakeup LB (msgs)"});
  for (std::size_t n : {64u, 256u, 1024u}) {
    const PortGraph g = make_complete_star(n);
    const TaskReport w =
        run_task(g, 0, TreeWakeupOracle(), WakeupTreeAlgorithm());
    const TaskReport b =
        run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm());
    // What the adversary guarantees against a wakeup with NO advice on the
    // hard family of comparable size (n' = n/2, so the family has ~n
    // nodes): already more messages than broadcast ever pays.
    const std::size_t np = n / 2;
    const double lb = wakeup_message_lower_bound(np, 1, 0);
    t.row()
        .cell(n)
        .cell(w.oracle_bits)
        .cell(w.run.metrics.messages_total)
        .cell(b.oracle_bits)
        .cell(b.run.metrics.messages_total)
        .cell(static_cast<double>(w.oracle_bits) /
                  static_cast<double>(b.oracle_bits),
              2)
        .cell(lb, 0);
  }
  t.print(std::cout, "Wakeup vs broadcast on K*_n");

  // The behavioral separation: scheme B is NOT a wakeup scheme.
  const PortGraph g = make_complete_star(64);
  const auto advice = LightBroadcastOracle().advise(g, 0);
  RunOptions enforce;
  enforce.enforce_wakeup = true;
  const RunResult r = run_execution(g, 0, advice, BroadcastBAlgorithm(),
                                    enforce);
  std::cout << "\nRunning scheme B under wakeup rules: "
            << (r.violation.empty() ? "no violation (unexpected!)"
                                    : r.violation)
            << "\n";
  std::cout << "The spontaneous hellos are precisely what an oracle "
               "Theta(log n) times smaller buys.\n";
  return 0;
}
