// A guided tour of the lower-bound machinery: from the abstract counting
// game to a live adversarial network.
//
// Theorem 2.2's proof has three moving parts; this example runs each and
// shows how they chain:
//   1. the pigeonhole: how many graphs exist vs how many advice functions
//      an oracle of a given size can output (Equations 2 and 3, exact);
//   2. the edge-discovery game (Lemma 2.1): the information-theoretic floor
//      under any scheme that must find hidden edges;
//   3. the lazily-decided network: an actual wakeup algorithm (flooding)
//      paying real messages against an adversary that commits the topology
//      only when forced.
#include <cmath>
#include <iostream>

#include "core/flooding.h"
#include "lowerbound/bounds.h"
#include "lowerbound/counting_adversary.h"
#include "lowerbound/lazy_broadcast.h"
#include "lowerbound/lazy_wakeup.h"
#include "lowerbound/strategies.h"
#include "util/table.h"

using namespace oraclesize;

int main() {
  const std::size_t n = 64;  // base K*_n size; the network has 2n nodes

  std::cout << "=== Step 1: the pigeonhole (exact Equations 2-3) ===\n";
  {
    Table t({"oracle bits", "log2 #graphs", "log2 #advice functions",
             "guaranteed wakeup msgs"});
    for (std::uint64_t bits : {0ull, 100ull, 400ull, 800ull, 1600ull}) {
      t.row()
          .cell(bits)
          .cell(log2_wakeup_family(n, 1), 0)
          .cell(log2_oracle_outputs(bits, 2 * n), 0)
          .cell(wakeup_message_lower_bound(n, 1, bits), 0);
    }
    t.print(std::cout);
    std::cout << "More advice bits -> more distinguishable graphs -> weaker "
                 "floor. The floor\nis what remains of the family's entropy "
                 "after the oracle has spoken.\n\n";
  }

  std::cout << "=== Step 2: the edge-discovery floor (Lemma 2.1) ===\n";
  {
    const EdgeDiscoveryProblem p{n * (n - 1) / 2, n};
    SequentialStrategy s;
    CountingAdversary adv(p);
    const GameResult r = play_edge_discovery(p, s, adv);
    std::cout << "Hide " << p.num_special << " labeled edges among "
              << p.num_candidates << " candidates: any scheme needs >= "
              << static_cast<std::uint64_t>(r.probe_lower_bound)
              << " probes; the majority adversary actually forces "
              << r.probes << ".\n\n";
  }

  std::cout << "=== Step 3: the live adversarial networks ===\n";
  {
    const LazyWakeupResult w = play_lazy_wakeup(n, FloodingAlgorithm());
    std::cout << "Wakeup (G_{n,S}): flooding with zero advice completes, "
                 "paying "
              << w.messages << " messages on a " << 2 * n
              << "-node network\n(" << w.messages / (2 * n)
              << " per node; the Theorem 2.1 oracle would have done it "
                 "with "
              << 2 * n - 1 << ").\n";
    const LazyBroadcastResult b =
        play_lazy_broadcast(n, 4, FloodingAlgorithm());
    std::cout << "Broadcast (G_{n,k}, k=4): same story, " << b.messages
              << " messages, all " << b.cliques_found
              << " hidden cliques dug out by brute force.\n";
  }

  std::cout << "\nThe separation in one sentence: those quadratic message "
               "bills shrink to linear\nthe moment the oracle hands out "
               "Theta(n log n) (wakeup) or Theta(n) (broadcast)\nbits -- "
               "and Theorems 2.2/3.2 say no meaningfully smaller oracle "
               "can do it.\n";
  return 0;
}
