// Play the Lemma 2.1 edge-discovery game interactively-ish.
//
// The lower bounds of the paper reduce to one combinatorial game: special
// edges are hidden among N candidates, probing an edge reveals whether (and
// as which label) it is special, and an adaptive adversary answers so as to
// keep as many instances alive as possible. This example narrates one full
// game at small scale — every probe, every answer, the log2 of the active
// family after each step — then prints the Lemma 2.1 bound next to the
// measured probe count.
#include <iomanip>
#include <iostream>

#include "lowerbound/counting_adversary.h"
#include "lowerbound/exact_adversary.h"
#include "lowerbound/strategies.h"

using namespace oraclesize;

int main() {
  const EdgeDiscoveryProblem problem{12, 3};
  std::cout << "Edge discovery: N = " << problem.num_candidates
            << " candidate edges, m = " << problem.num_special
            << " hidden specials.\n"
            << "Instance family |I| = C(12,3) * 3! = 1320 "
            << "(log2 = " << std::fixed << std::setprecision(2)
            << problem.log2_instances() << ").\n"
            << "Lemma 2.1 bound: >= log2(|I|/m!) = "
            << problem.log2_probe_bound() << " probes.\n\n";

  CountingAdversary adversary(problem);
  ExactAdversary reference(problem);
  SequentialStrategy strategy;
  strategy.begin(problem);

  std::size_t probes = 0;
  while (!adversary.resolved()) {
    const std::size_t edge = strategy.next_probe();
    const ProbeResult closed_form = adversary.answer(edge);
    const ProbeResult brute_force = reference.answer(edge);
    ++probes;
    std::cout << "probe " << std::setw(2) << probes << ": edge "
              << std::setw(2) << edge << " -> ";
    if (closed_form.special) {
      std::cout << "SPECIAL with label " << closed_form.label;
    } else {
      std::cout << "regular";
    }
    std::cout << "   (active family: 2^" << std::setprecision(2)
              << adversary.log2_active() << " = "
              << reference.active_count() << " instances";
    if (closed_form.special != brute_force.special) {
      std::cout << "; MISMATCH vs brute force!";
    }
    std::cout << ")\n";
    strategy.observe(edge, closed_form);
  }

  std::cout << "\nGame over after " << probes << " probes (bound was "
            << problem.log2_probe_bound() << ").\n"
            << "Note how the adversary answers 'regular' while it can: each "
               "such answer\ncosts the scheme a probe but only halves the "
               "family — the specials surface\nonly when the unprobed pool "
               "runs dry. That wedge, scaled to N = C(n,2) and\nm = n "
               "hidden subdivided edges, is the Omega(n log n) of Theorem "
               "2.2.\n";
  return 0;
}
