// Hybrid wakeup: tree relay where advice exists, flooding where it does not.
//
// Pairs with PartialTreeOracle. A node whose advice string starts with the
// "advised" flag relays the source message on its tree child ports; an
// unadvised node relays on all ports except the arrival port (classic
// flooding). Correct for ANY advised subset: every node's tree parent is
// eventually informed, and whether advised (tree edge to the child) or not
// (flood covers all neighbors), the child hears from it. Messages
// interpolate between n-1 (everyone advised) and 2m-(n-1) (nobody advised),
// tracing the upper-bound side of the oracle-size/message tradeoff.
//
// Trust model: advised nodes are advice-certified — they relay on the first
// delivery of any kind, since their advice (not the message content) tells
// them where to forward. Unadvised nodes have nothing to substitute for
// trust in the channel: they flood only when they recognize the genuine
// source message. Under the Byzantine layer (sim/adversary_plan.h) the
// advised fraction is therefore immune to content forging while the
// flooding fraction is not — so the PartialTreeOracle fraction knob traces
// an advice-bits-versus-robustness curve (experiment E16), not just the
// reliable-network bits-versus-messages curve (E11).
#pragma once

#include "sim/scheme.h"

namespace oraclesize {

class HybridWakeupAlgorithm final : public Algorithm {
 public:
  std::unique_ptr<NodeBehavior> make_behavior(
      const NodeInput& input) const override;
  std::string name() const override { return "hybrid-wakeup"; }
  bool is_wakeup() const override { return true; }
  bool reusable() const override { return true; }
};

}  // namespace oraclesize
