#include "core/runner.h"

#include <sstream>

namespace oraclesize {

std::string TaskReport::summary() const {
  std::ostringstream os;
  os << algorithm_name << " + " << oracle_name << ": "
     << (ok() ? "ok" : "FAILED") << ", oracle=" << oracle_bits << " bits, "
     << run.metrics.summary();
  if (!run.violation.empty()) os << ", violation: " << run.violation;
  return os.str();
}

TaskReport run_task(const PortGraph& g, NodeId source, const Oracle& oracle,
                    const Algorithm& algorithm, RunOptions options) {
  TaskReport report;
  report.oracle_name = oracle.name();
  report.algorithm_name = algorithm.name();
  const std::vector<BitString> advice = oracle.advise(g, source);
  report.oracle_bits = oracle_size_bits(advice);
  report.max_advice_bits = max_advice_bits(advice);
  if (algorithm.is_wakeup()) options.enforce_wakeup = true;
  report.run = run_execution(g, source, advice, algorithm, options);
  return report;
}

}  // namespace oraclesize
