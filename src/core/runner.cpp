#include "core/runner.h"

#include <sstream>

#include "core/batch_runner.h"

namespace oraclesize {

std::string TaskReport::summary() const {
  std::ostringstream os;
  os << algorithm_name << " + " << oracle_name << ": "
     << (ok() ? "ok" : "FAILED") << ", oracle=" << oracle_bits << " bits, "
     << run.metrics.summary();
  if (!run.violation.empty()) os << ", violation: " << run.violation;
  return os.str();
}

TaskReport run_task(const PortGraph& g, NodeId source, const Oracle& oracle,
                    const Algorithm& algorithm, RunOptions options) {
  const BatchRunner runner(1);
  std::vector<TaskReport> reports =
      runner.run({TrialSpec{&g, source, &oracle, &algorithm, options}});
  return std::move(reports.front());
}

}  // namespace oraclesize
