#include "core/runner.h"

#include <sstream>

#include "core/batch_runner.h"

namespace oraclesize {

std::string TaskReport::summary() const {
  std::ostringstream os;
  os << algorithm_name << " + " << oracle_name << ": "
     << (ok() ? "ok" : "FAILED") << ", oracle=" << oracle_bits << " bits, "
     << run.metrics.summary();
  if (failed()) {
    os << ", error: " << error;
  } else if (run.status != RunStatus::kCompleted) {
    os << ", status: " << to_string(run.status);
  }
  if (!run.violation.empty()) os << ", violation: " << run.violation;
  if (attempts > 1) os << ", attempts: " << attempts;
  return os.str();
}

TaskReport run_task(const PortGraph& g, NodeId source, const Oracle& oracle,
                    const Algorithm& algorithm, RunOptions options) {
  const BatchRunner runner(1);
  std::vector<TaskReport> reports =
      runner.run_rethrow({TrialSpec{&g, source, &oracle, &algorithm, options}});
  return std::move(reports.front());
}

}  // namespace oraclesize
