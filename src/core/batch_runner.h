// Batched, parallel trial execution: the experiment-scale entry point.
//
// A TrialSpec names everything one execution needs — network, source,
// oracle, algorithm, run options — without owning any of it. BatchRunner
// takes a vector of specs and plays them on a pool of worker threads, one
// reusable ExecutionContext per worker (sim/execution_context.h), so a
// sweep of thousands of trials performs no per-trial setup allocation
// beyond what the trials themselves demand.
//
// Determinism contract: every trial is an independent, deterministic
// function of its spec, and results are returned IN SPEC ORDER. The
// RunResult for a given spec is bit-identical to what the single-trial
// path (run_task / run_execution) produces, regardless of the worker
// count — only wall_ns, the measured per-trial wall time, varies between
// runs. tests/test_batch_runner.cpp enforces this.
#pragma once

#include <cstddef>
#include <vector>

#include "core/runner.h"

namespace oraclesize {

/// One trial: run `algorithm` with `oracle`'s advice on `graph` from
/// `source` under `options`. Pointers are non-owning and must outlive the
/// BatchRunner::run call. As in run_task, wakeup enforcement is switched
/// on automatically when the algorithm reports is_wakeup().
struct TrialSpec {
  const PortGraph* graph = nullptr;
  NodeId source = 0;
  const Oracle* oracle = nullptr;
  const Algorithm* algorithm = nullptr;
  RunOptions options;
};

class BatchRunner {
 public:
  /// `jobs` = number of worker threads; 0 picks the hardware concurrency.
  explicit BatchRunner(std::size_t jobs = 0);

  std::size_t jobs() const noexcept { return jobs_; }

  /// Executes every spec and returns one TaskReport per spec, in spec
  /// order. Throws std::invalid_argument on a null graph/oracle/algorithm
  /// before any trial runs. If a trial itself throws (e.g. an out-of-range
  /// source), the lowest-index trial's exception is rethrown after all
  /// workers have drained — deterministically, independent of jobs().
  std::vector<TaskReport> run(const std::vector<TrialSpec>& specs) const;

 private:
  std::size_t jobs_;
};

}  // namespace oraclesize
