// Batched, parallel trial execution: the experiment-scale entry point.
//
// A TrialSpec names everything one execution needs — network, source,
// oracle, algorithm, run options — without owning any of it. BatchRunner
// takes a vector of specs and plays them on a pool of worker threads, one
// reusable ExecutionContext per worker (sim/execution_context.h), so a
// sweep of thousands of trials performs no per-trial setup allocation
// beyond what the trials themselves demand.
//
// Advice memoization: before any trial runs, BatchRunner dedupes the batch
// by (graph, oracle name, source) and computes each distinct advice vector
// ONCE, in parallel, via core/advice_cache.h. Trials then share immutable
// `shared_ptr<const vector<BitString>>` advice. Repeat-heavy sweeps thus
// pay each advise() exactly once instead of once per trial. Pass
// `advice_cache = false` to restore per-trial advise() (the measurement
// baseline for bench_perf --no-advice-cache).
//
// Seed-family collapsing: specs identical up to their two randomness seeds
// (seed_family_key) are additionally grouped into FAMILY units and executed
// by the seed-batched lockstep engine (sim/seed_batch_engine.h) — one clean
// pass serves every lane whose fault decisions stay benign, divergent lanes
// replay scalar inside the unit, and retries re-batch. SeedBatchPolicy
// turns this off (bench_perf's scalar measurement arm does).
//
// Determinism contract: every trial is an independent, deterministic
// function of its spec, and results are returned IN SPEC ORDER. The
// RunResult for a given spec is bit-identical to what the single-trial
// path (run_task / run_execution) produces, regardless of the worker
// count and of whether the advice cache is on — only the timing fields
// (wall_ns, advise_ns, run_ns) vary between runs. Advice-cache
// attribution is deterministic too: the FIRST spec (lowest index) with a
// given key reports the advise cost; later duplicates report
// advice_cached = true. tests/test_batch_runner.cpp and
// tests/test_advice_cache.cpp enforce all of this.
#pragma once

#include <cstddef>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/advice_cache.h"
#include "core/runner.h"
#include "sim/metrics_registry.h"

namespace oraclesize {

/// One trial: run `algorithm` with `oracle`'s advice on `graph` from
/// `source` under `options`. Pointers are non-owning and must outlive the
/// BatchRunner::run call. As in run_task, wakeup enforcement is switched
/// on automatically when the algorithm reports is_wakeup().
struct TrialSpec {
  TrialSpec() = default;
  TrialSpec(const PortGraph* graph_in, NodeId source_in,
            const Oracle* oracle_in, const Algorithm* algorithm_in,
            RunOptions options_in = {}, AdvicePtr advice_in = nullptr)
      : graph(graph_in),
        source(source_in),
        oracle(oracle_in),
        algorithm(algorithm_in),
        options(std::move(options_in)),
        advice(std::move(advice_in)) {}

  const PortGraph* graph = nullptr;
  NodeId source = 0;
  const Oracle* oracle = nullptr;
  const Algorithm* algorithm = nullptr;
  RunOptions options;
  /// Optional precomputed advice (one BitString per node). When set, the
  /// oracle is never asked to advise for this trial — it still names the
  /// report and prices the oracle_bits fields. Size must match the graph.
  AdvicePtr advice;
};

/// Everything that must match for two TrialSpecs to be seed-family peers:
/// the full spec identity minus the two randomness seeds (options.seed and
/// options.fault.seed). Two specs with equal keys run the same (graph,
/// source, oracle, algorithm, advice, options) and differ at most in which
/// seeds they draw — exactly the shape the seed-batched lockstep executor
/// (sim/seed_batch_engine.h) collapses into one pass. Identity is by
/// pointer for the graph/algorithm/advice (keys are meaningful within one
/// batch, not across processes) and by name for the oracle, matching the
/// advise pre-pass key so family peers always share one cached advice
/// artifact.
struct SeedFamilyKey {
  const PortGraph* graph = nullptr;
  NodeId source = 0;
  std::string oracle;
  const Algorithm* algorithm = nullptr;
  const void* advice = nullptr;  ///< TrialSpec::advice identity (may be null)
  SchedulerKind scheduler = SchedulerKind::kSynchronous;
  SchedulerKeying keying = SchedulerKeying::kCounter;
  std::uint32_t max_delay = 0;
  std::uint64_t max_messages = 0;
  bool enforce_wakeup = false;
  bool anonymous = false;
  bool trace = false;
  std::uint64_t deadline_ns = 0;
  std::uint64_t max_events = 0;
  const void* trace_sink = nullptr;
  /// FaultPlanParams minus its seed.
  double fault_drop = 0.0;
  double fault_duplicate = 0.0;
  double fault_delay = 0.0;
  std::uint32_t fault_max_extra_delay = 0;
  double fault_crash = 0.0;
  std::uint32_t fault_max_crash_key = 0;
  bool fault_crash_source = false;
  double fault_advice_flip = 0.0;
  /// AdversaryPlanParams INCLUDING its seed: the Byzantine regime is part
  /// of the family identity (lanes with different adversary seeds face
  /// different colluding sets, which the lockstep executor cannot share —
  /// and Byzantine families are ineligible anyway, so keeping the seed in
  /// the key just keeps the grouping honest).
  std::uint64_t adv_seed = 0;
  double adv_rate = 0.0;
  std::uint32_t adv_nodes = 0;
  bool adv_source = false;
  ByzantineStrategy adv_strategy = ByzantineStrategy::kRandomBits;
  double adv_forge = 0.0;
  double adv_equivocate = 0.0;
  double adv_advice_lie = 0.0;
  std::uint32_t adv_replay_window = 0;

  friend bool operator==(const SeedFamilyKey&,
                         const SeedFamilyKey&) = default;

 private:
  auto tie() const {
    return std::tie(graph, source, oracle, algorithm, advice, scheduler,
                    keying, max_delay, max_messages, enforce_wakeup,
                    anonymous, trace,
                    deadline_ns, max_events, trace_sink, fault_drop,
                    fault_duplicate, fault_delay, fault_max_extra_delay,
                    fault_crash, fault_max_crash_key, fault_crash_source,
                    fault_advice_flip, adv_seed, adv_rate, adv_nodes,
                    adv_source, adv_strategy, adv_forge, adv_equivocate,
                    adv_advice_lie, adv_replay_window);
  }

 public:
  friend bool operator<(const SeedFamilyKey& a, const SeedFamilyKey& b) {
    return a.tie() < b.tie();
  }
};

/// The spec's seed-family identity. Pure in the spec; see SeedFamilyKey.
SeedFamilyKey seed_family_key(const TrialSpec& spec);

/// Aggregate accounting of one BatchRunner::run call.
struct BatchStats {
  std::size_t unique_advice = 0;  ///< distinct advice vectors computed
  /// Specs served precomputed advice (batch duplicates + TrialSpec::advice).
  std::size_t cache_hits = 0;
  std::uint64_t advise_ns = 0;  ///< total time inside advise() calls
  std::size_t failed = 0;   ///< trials that ended with TaskReport::failed()
  std::size_t retries = 0;  ///< extra attempts consumed across the batch
  /// Seed-family collapsing (sim/seed_batch_engine.h): families routed
  /// through the batched context, the trials they covered, and how many of
  /// those trials' final attempts were served by a shared lockstep pass
  /// (the rest replayed scalar inside the family unit).
  std::size_t seed_families = 0;
  std::size_t batched_lanes = 0;
  std::size_t lockstep_shared = 0;
  /// Named cross-trial aggregates (sim/metrics_registry.h): trial outcomes,
  /// messages by kind, bits on wire, fault impact, and the queue-depth /
  /// per-node-wakeup-latency histograms. Recorded lock-free by the workers
  /// (relaxed atomic adds) and snapshotted after they join. Every recorded
  /// quantity is deterministic in the specs, so the snapshot is
  /// bit-identical for any jobs() — tests/test_metrics.cpp pins this.
  /// Populated only when a BatchStats out-param is passed; runs without one
  /// skip all metric recording.
  MetricsSnapshot metrics;
};

/// Bounded retry for transient trial outcomes. A trial is retried (up to
/// `max_retries` extra attempts) when its attempt threw, timed out, or
/// exhausted a budget — and, with `retry_task_failures`, when the scheme
/// failed the task (useful under fault injection, where a different fault
/// seed can succeed). Each retry RE-SEEDS deterministically: attempt `a`
/// runs with scheduler and fault seeds shifted by `a * reseed_stride`, so
/// a retried batch is still a pure function of its specs. Because only the
/// two seeds shift, a retried attempt stays in its spec's seed family
/// (seed_family_key is seed-blind) — family units re-batch their pending
/// retries into fresh lockstep passes instead of degrading to scalar.
struct RetryPolicy {
  std::uint32_t max_retries = 0;  ///< 0 = retry disabled
  std::uint64_t reseed_stride = 0x9e3779b97f4a7c15ULL;
  bool retry_task_failures = false;
};

/// Opt-in intra-run sharding (sim/sharded_engine.h) for oversized trials.
/// Trials whose graph has at least `min_nodes` nodes are taken OFF the
/// trial-level pool and run one at a time — largest first — on a sharded
/// engine that dedicates `shards` workers to each such run; everything else
/// still fans out across trials. Results stay bit-identical either way
/// (the sharded engine's determinism contract), so the policy is purely a
/// wall-clock decision: point min_nodes at the size where one trial
/// dominates the batch. min_nodes = 0 (the default) disables sharding.
struct ShardPolicy {
  std::uint32_t shards = 0;   ///< workers per sharded run; 0 = hardware
  std::size_t min_nodes = 0;  ///< graphs at/above this run sharded; 0 = off

  bool enabled() const noexcept { return min_nodes > 0 && shards != 1; }
};

/// Automatic seed-family collapsing (ON by default). Specs identical up to
/// their seeds (seed_family_key) are grouped and routed through one
/// seed-batched lockstep context (sim/seed_batch_engine.h) as a single
/// work unit; per-trial TaskReports are fanned back out bit-identical to
/// the scalar path, so the policy — like ShardPolicy — is purely a
/// wall-clock decision. Families only form over resolved shared advice:
/// with the advice cache off (the measurement baseline) every trial stays
/// scalar. Trials claimed by ShardPolicy are never batched.
struct SeedBatchPolicy {
  bool enabled = true;
  /// Smallest family routed through the batched context; families below it
  /// (and every spec without family peers) run scalar. Minimum meaningful
  /// value is 2.
  std::size_t min_lanes = 2;

  bool enabled_for(std::size_t lanes) const noexcept {
    return enabled && lanes >= (min_lanes < 2 ? 2 : min_lanes);
  }
};

class BatchRunner {
 public:
  /// `jobs` = number of worker threads; 0 picks the hardware concurrency.
  /// `advice_cache` toggles the batch-wide advice memoization pre-pass.
  /// `retry` bounds re-execution of transient trial failures.
  /// `shard` routes oversized trials through the sharded intra-run engine.
  /// `seed_batch` collapses seed families onto the lockstep executor.
  explicit BatchRunner(std::size_t jobs = 0, bool advice_cache = true,
                       RetryPolicy retry = {}, ShardPolicy shard = {},
                       SeedBatchPolicy seed_batch = {});

  std::size_t jobs() const noexcept { return jobs_; }
  bool advice_cache() const noexcept { return advice_cache_; }
  const RetryPolicy& retry() const noexcept { return retry_; }
  const ShardPolicy& shard() const noexcept { return shard_; }
  const SeedBatchPolicy& seed_batch() const noexcept { return seed_batch_; }

  /// Executes every spec and returns one TaskReport per spec, in spec
  /// order. Throws std::invalid_argument on a null graph/oracle/algorithm
  /// before any trial runs. Trials are FAULT-ISOLATED: a trial (or its
  /// advise() pre-pass) that throws becomes a TaskReport with failed() set
  /// and the exception text in `error`, and every other trial still runs —
  /// a poisoned oracle cannot abort a campaign. When `stats` is non-null
  /// it receives the batch's accounting, including failure/retry counts.
  std::vector<TaskReport> run(const std::vector<TrialSpec>& specs,
                              BatchStats* stats = nullptr) const;

  /// Like run(), but restores the legacy abort contract: if any trial
  /// failed, the lowest-index trial's original exception is rethrown after
  /// the whole batch has drained (deterministic for any jobs()). The
  /// single-trial path (run_task) uses this to keep throwing typed
  /// exceptions at its callers.
  std::vector<TaskReport> run_rethrow(const std::vector<TrialSpec>& specs,
                                      BatchStats* stats = nullptr) const;

 private:
  std::vector<TaskReport> run_impl(const std::vector<TrialSpec>& specs,
                                   BatchStats* stats,
                                   std::vector<std::exception_ptr>* eptrs) const;

  std::size_t jobs_;
  bool advice_cache_;
  RetryPolicy retry_;
  ShardPolicy shard_;
  SeedBatchPolicy seed_batch_;
};

}  // namespace oraclesize
