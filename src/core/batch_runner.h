// Batched, parallel trial execution: the experiment-scale entry point.
//
// A TrialSpec names everything one execution needs — network, source,
// oracle, algorithm, run options — without owning any of it. BatchRunner
// takes a vector of specs and plays them on a pool of worker threads, one
// reusable ExecutionContext per worker (sim/execution_context.h), so a
// sweep of thousands of trials performs no per-trial setup allocation
// beyond what the trials themselves demand.
//
// Advice memoization: before any trial runs, BatchRunner dedupes the batch
// by (graph, oracle name, source) and computes each distinct advice vector
// ONCE, in parallel, via core/advice_cache.h. Trials then share immutable
// `shared_ptr<const vector<BitString>>` advice. Repeat-heavy sweeps thus
// pay each advise() exactly once instead of once per trial. Pass
// `advice_cache = false` to restore per-trial advise() (the measurement
// baseline for bench_perf --no-advice-cache).
//
// Determinism contract: every trial is an independent, deterministic
// function of its spec, and results are returned IN SPEC ORDER. The
// RunResult for a given spec is bit-identical to what the single-trial
// path (run_task / run_execution) produces, regardless of the worker
// count and of whether the advice cache is on — only the timing fields
// (wall_ns, advise_ns, run_ns) vary between runs. Advice-cache
// attribution is deterministic too: the FIRST spec (lowest index) with a
// given key reports the advise cost; later duplicates report
// advice_cached = true. tests/test_batch_runner.cpp and
// tests/test_advice_cache.cpp enforce all of this.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/advice_cache.h"
#include "core/runner.h"
#include "sim/metrics_registry.h"

namespace oraclesize {

/// One trial: run `algorithm` with `oracle`'s advice on `graph` from
/// `source` under `options`. Pointers are non-owning and must outlive the
/// BatchRunner::run call. As in run_task, wakeup enforcement is switched
/// on automatically when the algorithm reports is_wakeup().
struct TrialSpec {
  TrialSpec() = default;
  TrialSpec(const PortGraph* graph_in, NodeId source_in,
            const Oracle* oracle_in, const Algorithm* algorithm_in,
            RunOptions options_in = {}, AdvicePtr advice_in = nullptr)
      : graph(graph_in),
        source(source_in),
        oracle(oracle_in),
        algorithm(algorithm_in),
        options(std::move(options_in)),
        advice(std::move(advice_in)) {}

  const PortGraph* graph = nullptr;
  NodeId source = 0;
  const Oracle* oracle = nullptr;
  const Algorithm* algorithm = nullptr;
  RunOptions options;
  /// Optional precomputed advice (one BitString per node). When set, the
  /// oracle is never asked to advise for this trial — it still names the
  /// report and prices the oracle_bits fields. Size must match the graph.
  AdvicePtr advice;
};

/// Aggregate accounting of one BatchRunner::run call.
struct BatchStats {
  std::size_t unique_advice = 0;  ///< distinct advice vectors computed
  /// Specs served precomputed advice (batch duplicates + TrialSpec::advice).
  std::size_t cache_hits = 0;
  std::uint64_t advise_ns = 0;  ///< total time inside advise() calls
  std::size_t failed = 0;   ///< trials that ended with TaskReport::failed()
  std::size_t retries = 0;  ///< extra attempts consumed across the batch
  /// Named cross-trial aggregates (sim/metrics_registry.h): trial outcomes,
  /// messages by kind, bits on wire, fault impact, and the queue-depth /
  /// per-node-wakeup-latency histograms. Recorded lock-free by the workers
  /// (relaxed atomic adds) and snapshotted after they join. Every recorded
  /// quantity is deterministic in the specs, so the snapshot is
  /// bit-identical for any jobs() — tests/test_metrics.cpp pins this.
  /// Populated only when a BatchStats out-param is passed; runs without one
  /// skip all metric recording.
  MetricsSnapshot metrics;
};

/// Bounded retry for transient trial outcomes. A trial is retried (up to
/// `max_retries` extra attempts) when its attempt threw, timed out, or
/// exhausted a budget — and, with `retry_task_failures`, when the scheme
/// failed the task (useful under fault injection, where a different fault
/// seed can succeed). Each retry RE-SEEDS deterministically: attempt `a`
/// runs with scheduler and fault seeds shifted by `a * reseed_stride`, so
/// a retried batch is still a pure function of its specs.
struct RetryPolicy {
  std::uint32_t max_retries = 0;  ///< 0 = retry disabled
  std::uint64_t reseed_stride = 0x9e3779b97f4a7c15ULL;
  bool retry_task_failures = false;
};

/// Opt-in intra-run sharding (sim/sharded_engine.h) for oversized trials.
/// Trials whose graph has at least `min_nodes` nodes are taken OFF the
/// trial-level pool and run one at a time — largest first — on a sharded
/// engine that dedicates `shards` workers to each such run; everything else
/// still fans out across trials. Results stay bit-identical either way
/// (the sharded engine's determinism contract), so the policy is purely a
/// wall-clock decision: point min_nodes at the size where one trial
/// dominates the batch. min_nodes = 0 (the default) disables sharding.
struct ShardPolicy {
  std::uint32_t shards = 0;   ///< workers per sharded run; 0 = hardware
  std::size_t min_nodes = 0;  ///< graphs at/above this run sharded; 0 = off

  bool enabled() const noexcept { return min_nodes > 0 && shards != 1; }
};

class BatchRunner {
 public:
  /// `jobs` = number of worker threads; 0 picks the hardware concurrency.
  /// `advice_cache` toggles the batch-wide advice memoization pre-pass.
  /// `retry` bounds re-execution of transient trial failures.
  /// `shard` routes oversized trials through the sharded intra-run engine.
  explicit BatchRunner(std::size_t jobs = 0, bool advice_cache = true,
                       RetryPolicy retry = {}, ShardPolicy shard = {});

  std::size_t jobs() const noexcept { return jobs_; }
  bool advice_cache() const noexcept { return advice_cache_; }
  const RetryPolicy& retry() const noexcept { return retry_; }
  const ShardPolicy& shard() const noexcept { return shard_; }

  /// Executes every spec and returns one TaskReport per spec, in spec
  /// order. Throws std::invalid_argument on a null graph/oracle/algorithm
  /// before any trial runs. Trials are FAULT-ISOLATED: a trial (or its
  /// advise() pre-pass) that throws becomes a TaskReport with failed() set
  /// and the exception text in `error`, and every other trial still runs —
  /// a poisoned oracle cannot abort a campaign. When `stats` is non-null
  /// it receives the batch's accounting, including failure/retry counts.
  std::vector<TaskReport> run(const std::vector<TrialSpec>& specs,
                              BatchStats* stats = nullptr) const;

  /// Like run(), but restores the legacy abort contract: if any trial
  /// failed, the lowest-index trial's original exception is rethrown after
  /// the whole batch has drained (deterministic for any jobs()). The
  /// single-trial path (run_task) uses this to keep throwing typed
  /// exceptions at its callers.
  std::vector<TaskReport> run_rethrow(const std::vector<TrialSpec>& specs,
                                      BatchStats* stats = nullptr) const;

 private:
  std::vector<TaskReport> run_impl(const std::vector<TrialSpec>& specs,
                                   BatchStats* stats,
                                   std::vector<std::exception_ptr>* eptrs) const;

  std::size_t jobs_;
  bool advice_cache_;
  RetryPolicy retry_;
  ShardPolicy shard_;
};

}  // namespace oraclesize
