#include "core/replay.h"

#include <sstream>
#include <stdexcept>

#include "core/broadcast_b.h"
#include "core/census.h"
#include "core/flooding.h"
#include "core/gossip.h"
#include "core/hybrid_wakeup.h"
#include "core/wakeup.h"
#include "graph/io.h"
#include "sim/execution_context.h"

namespace oraclesize {

namespace {

const Algorithm* const* algorithm_table(std::size_t& count) {
  static const WakeupTreeAlgorithm wakeup;
  static const BroadcastBAlgorithm broadcast;
  static const FloodingAlgorithm flooding;
  static const CensusAlgorithm census;
  static const GossipTreeAlgorithm gossip;
  static const HybridWakeupAlgorithm hybrid;
  static const Algorithm* const table[] = {&wakeup, &broadcast, &flooding,
                                           &census, &gossip,    &hybrid};
  count = sizeof(table) / sizeof(table[0]);
  return table;
}

/// Appends "label: a vs b" to out when the two values differ.
template <typename T>
void note_if(std::vector<std::string>& out, const char* label, const T& a,
             const T& b) {
  if (a == b) return;
  std::ostringstream line;
  line << label << ": " << a << " vs " << b;
  out.push_back(line.str());
}

}  // namespace

const Algorithm* algorithm_by_name(const std::string& name) {
  std::size_t count = 0;
  const Algorithm* const* table = algorithm_table(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (table[i]->name() == name) return table[i];
  }
  return nullptr;
}

std::vector<std::string> known_algorithms() {
  std::size_t count = 0;
  const Algorithm* const* table = algorithm_table(count);
  std::vector<std::string> names;
  names.reserve(count);
  for (std::size_t i = 0; i < count; ++i) names.push_back(table[i]->name());
  return names;
}

TraceDiff diff_traces(const RecordedTrace& a, const RecordedTrace& b) {
  TraceDiff diff;
  std::vector<std::string>& out = diff.differences;

  note_if(out, "header.algorithm", a.header.algorithm, b.header.algorithm);
  note_if(out, "header.oracle", a.header.oracle, b.header.oracle);
  note_if(out, "header.source", a.header.source, b.header.source);
  note_if(out, "header.scheduler", std::string(to_string(a.header.scheduler)),
          std::string(to_string(b.header.scheduler)));
  note_if(out, "header.keying", std::string(to_string(a.header.keying)),
          std::string(to_string(b.header.keying)));
  note_if(out, "header.seed", a.header.seed, b.header.seed);
  note_if(out, "header.max_delay", a.header.max_delay, b.header.max_delay);
  note_if(out, "header.max_messages", a.header.max_messages,
          b.header.max_messages);
  note_if(out, "header.max_events", a.header.max_events, b.header.max_events);
  note_if(out, "header.enforce_wakeup", a.header.enforce_wakeup,
          b.header.enforce_wakeup);
  note_if(out, "header.anonymous", a.header.anonymous, b.header.anonymous);
  if (!(a.header.fault == b.header.fault)) {
    out.push_back("header.fault: params differ");
  }
  if (!(a.header.adversary == b.header.adversary)) {
    out.push_back("header.adversary: params differ");
  }
  note_if(out, "header.level", std::string(to_string(a.header.level)),
          std::string(to_string(b.header.level)));
  if (a.graph_text != b.graph_text) out.push_back("graph: text differs");
  if (a.advice != b.advice) out.push_back("advice: bit strings differ");

  // Event streams: localize the first divergence.
  const std::size_t n = a.events.size() < b.events.size() ? a.events.size()
                                                          : b.events.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (a.events[i] == b.events[i]) continue;
    std::ostringstream line;
    line << "events[" << i << "]: " << to_string(a.events[i]) << " vs "
         << to_string(b.events[i]);
    out.push_back(line.str());
    break;
  }
  if (a.events.size() != b.events.size()) {
    std::ostringstream line;
    line << "events: " << a.events.size() << " vs " << b.events.size()
         << " (first unmatched: "
         << to_string(a.events.size() > n ? a.events[n] : b.events[n]) << ")";
    out.push_back(line.str());
  }

  note_if(out, "status", std::string(to_string(a.status)),
          std::string(to_string(b.status)));
  note_if(out, "metrics.messages_total", a.metrics.messages_total,
          b.metrics.messages_total);
  note_if(out, "metrics.messages_source", a.metrics.messages_source,
          b.metrics.messages_source);
  note_if(out, "metrics.messages_hello", a.metrics.messages_hello,
          b.metrics.messages_hello);
  note_if(out, "metrics.messages_control", a.metrics.messages_control,
          b.metrics.messages_control);
  note_if(out, "metrics.bits_sent", a.metrics.bits_sent, b.metrics.bits_sent);
  note_if(out, "metrics.deliveries", a.metrics.deliveries,
          b.metrics.deliveries);
  note_if(out, "metrics.completion_key", a.metrics.completion_key,
          b.metrics.completion_key);
  note_if(out, "metrics.queue_depth_peak", a.metrics.queue_depth_peak,
          b.metrics.queue_depth_peak);
  note_if(out, "faults.dropped", a.faults.dropped, b.faults.dropped);
  note_if(out, "faults.duplicated", a.faults.duplicated, b.faults.duplicated);
  note_if(out, "faults.delayed", a.faults.delayed, b.faults.delayed);
  note_if(out, "faults.crashed_nodes", a.faults.crashed_nodes,
          b.faults.crashed_nodes);
  note_if(out, "faults.dead_deliveries", a.faults.dead_deliveries,
          b.faults.dead_deliveries);
  note_if(out, "faults.advice_bits_flipped", a.faults.advice_bits_flipped,
          b.faults.advice_bits_flipped);
  note_if(out, "byzantine.lying_nodes", a.adversary.lying_nodes,
          b.adversary.lying_nodes);
  note_if(out, "byzantine.forged", a.adversary.forged, b.adversary.forged);
  note_if(out, "byzantine.equivocated", a.adversary.equivocated,
          b.adversary.equivocated);
  note_if(out, "byzantine.replayed", a.adversary.replayed,
          b.adversary.replayed);
  note_if(out, "byzantine.structured_lies", a.adversary.structured_lies,
          b.adversary.structured_lies);
  note_if(out, "byzantine.advice_lies", a.adversary.advice_lies,
          b.adversary.advice_lies);

  diff.equal = out.empty();
  return diff;
}

ReplayReport replay_trace(const RecordedTrace& trace) {
  const Algorithm* algorithm = algorithm_by_name(trace.header.algorithm);
  if (algorithm == nullptr) {
    throw std::runtime_error("replay: unknown algorithm \"" +
                             trace.header.algorithm + "\"");
  }
  const PortGraph g = from_text(trace.graph_text);  // throws GraphParseError
  if (trace.advice.size() != g.num_nodes()) {
    throw std::runtime_error("replay: trace carries " +
                             std::to_string(trace.advice.size()) +
                             " advice strings for a graph of " +
                             std::to_string(g.num_nodes()) + " nodes");
  }

  RunOptions options = trace.header.to_run_options();
  TraceRecorder recorder(trace.header.level);
  options.trace_sink = &recorder;
  ExecutionContext context;
  context.run(g, trace.header.source, trace.advice, *algorithm, options);

  ReplayReport report;
  report.replayed = recorder.take();
  // The engine never sees the oracle (advice arrives precomputed), so the
  // re-recorded header can only inherit the original's oracle name.
  report.replayed.header.oracle = trace.header.oracle;
  TraceDiff diff = diff_traces(trace, report.replayed);
  report.match = diff.equal;
  report.mismatches = std::move(diff.differences);
  return report;
}

}  // namespace oraclesize
