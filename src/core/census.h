// Census with termination detection — an extension task in the paper's
// framework (its conclusion conjectures oracles measure difficulty for a
// broader range of problems than information dissemination).
//
// Task: the source must learn the exact number of nodes in the network and
// *know when it is done* (local termination), all other nodes staying
// silent until informed (a wakeup-style constraint).
//
// Using the very same Theorem 2.1 oracle (spanning-tree child ports,
// Theta(n log n) bits), the classic echo pattern solves it with exactly
// 2(n-1) messages: the source message floods down the tree; counts
// accumulate back up (each node reports 1 + sum of its children's reports
// through its parent port — the port M arrived on). The source's final sum
// is n. So, measured in oracle size, census + termination detection is no
// harder than plain wakeup — the advice is literally identical; only the
// scheme differs. (The count rides in message payloads of #2(n) bits, so
// messages are log-bounded rather than constant-size.)
#pragma once

#include "sim/scheme.h"

namespace oraclesize {

/// Pair with TreeWakeupOracle. After the run, the source behavior reports
/// terminated() == true and output() == number of nodes; every non-source
/// node reports output() == size of its own subtree.
class CensusAlgorithm final : public Algorithm {
 public:
  std::unique_ptr<NodeBehavior> make_behavior(
      const NodeInput& input) const override;
  std::string name() const override { return "census-echo"; }
  bool is_wakeup() const override { return true; }
  bool reusable() const override { return true; }
};

}  // namespace oraclesize
