#include "core/flooding.h"

namespace oraclesize {

namespace {

class FloodingBehavior final : public NodeBehavior {
 public:
  std::vector<Send> on_start(const NodeInput& input) override {
    if (!input.is_source) return {};
    return relay_all(input, kNoPort);
  }

  std::vector<Send> on_receive(const NodeInput& input, const Message& msg,
                               Port from_port) override {
    if (msg.kind != MsgKind::kSource || done_) return {};
    return relay_all(input, from_port);
  }

 private:
  std::vector<Send> relay_all(const NodeInput& input, Port except) {
    done_ = true;
    std::vector<Send> sends;
    sends.reserve(input.degree);
    for (Port p = 0; p < input.degree; ++p) {
      if (p != except) sends.push_back(Send{Message::source(), p});
    }
    return sends;
  }

  bool done_ = false;
};

}  // namespace

std::unique_ptr<NodeBehavior> FloodingAlgorithm::make_behavior(
    const NodeInput& /*input*/) const {
  return std::make_unique<FloodingBehavior>();
}

}  // namespace oraclesize
