#include "core/flooding.h"

namespace oraclesize {

namespace {

class FloodingBehavior final : public NodeBehavior {
 public:
  void on_start(const NodeInput& input, std::vector<Send>& out) override {
    if (!input.is_source) return;
    relay_all(input, kNoPort, out);
  }

  void on_receive(const NodeInput& input, const Message& msg, Port from_port,
                  std::vector<Send>& out) override {
    if (msg.kind != MsgKind::kSource || done_) return;
    relay_all(input, from_port, out);
  }

  void reset(const NodeInput& /*input*/) override { done_ = false; }

 private:
  void relay_all(const NodeInput& input, Port except, std::vector<Send>& out) {
    done_ = true;
    for (Port p = 0; p < input.degree; ++p) {
      if (p != except) out.push_back(Send{Message::source(), p});
    }
  }

  bool done_ = false;
};

}  // namespace

std::unique_ptr<NodeBehavior> FloodingAlgorithm::make_behavior(
    const NodeInput& /*input*/) const {
  return std::make_unique<FloodingBehavior>();
}

}  // namespace oraclesize
