#include "core/broadcast_b.h"

#include <stdexcept>

#include "bitio/codecs.h"
#include "util/flat_set.h"

namespace oraclesize {

namespace {

// K_x/H_x/S_x are sorted flat vectors (util/flat_set.h): same ascending
// iteration order as the std::set formulation — so the send order, and with
// it every RunResult, is bit-identical — but the storage survives reset().
class BroadcastBBehavior final : public NodeBehavior {
 public:
  void on_start(const NodeInput& input, std::vector<Send>& out) override {
    decode_weight_list_into(*input.advice, weights_);
    for (std::uint64_t w : weights_) {
      insert_sorted(known_, static_cast<Port>(w));
    }
    hello_owed_ = known_;
    if (input.is_source) {
      informed_ = true;
      relay(out);  // send M on K\S, fold into S
    }
    flush_hellos(out);
  }

  void on_receive(const NodeInput& /*input*/, const Message& msg,
                  Port from_port, std::vector<Send>& out) override {
    switch (msg.kind) {
      case MsgKind::kSource:
        insert_sorted(known_, from_port);
        insert_sorted(transited_, from_port);
        informed_ = true;
        relay(out);
        flush_hellos(out);
        break;
      case MsgKind::kHello:
        if (insert_sorted(known_, from_port) && informed_) {
          relay(out);  // the hello revealed a tree edge M still owes
        }
        break;
      case MsgKind::kControl:
        // Scheme B never sends control messages, so receiving one is proof
        // of a misbehaving peer — the scheme's one checkable protocol
        // invariant. On guarded runs the engine absorbs the throw into a
        // structured violation (kByzantineDetected under the adversary
        // plan); on reliable runs no control message can ever arrive here.
        throw std::runtime_error(
            "broadcast-B: control message received — no honest node sends "
            "these");
    }
  }

  void reset(const NodeInput& /*input*/) override {
    known_.clear();
    hello_owed_.clear();
    transited_.clear();
    informed_ = false;
  }

 private:
  // "send M on all ports of K\S; S <- K"
  void relay(std::vector<Send>& sends) {
    for (Port p : known_) {
      if (!contains_sorted(transited_, p)) {
        sends.push_back(Send{Message::source(), p});
      }
    }
    transited_ = known_;
  }

  // "H <- H\S; if H nonempty, send hello on all ports of H; H <- empty"
  void flush_hellos(std::vector<Send>& sends) {
    for (Port p : hello_owed_) {
      if (!contains_sorted(transited_, p)) {
        sends.push_back(Send{Message::hello(), p});
      }
    }
    hello_owed_.clear();
  }

  std::vector<Port> known_;       // K_x
  std::vector<Port> hello_owed_;  // H_x
  std::vector<Port> transited_;   // S_x
  std::vector<std::uint64_t> weights_;  // decode scratch
  bool informed_ = false;
};

}  // namespace

std::unique_ptr<NodeBehavior> BroadcastBAlgorithm::make_behavior(
    const NodeInput& /*input*/) const {
  return std::make_unique<BroadcastBBehavior>();
}

}  // namespace oraclesize
