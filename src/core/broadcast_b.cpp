#include "core/broadcast_b.h"

#include <set>

#include "bitio/codecs.h"

namespace oraclesize {

namespace {

class BroadcastBBehavior final : public NodeBehavior {
 public:
  std::vector<Send> on_start(const NodeInput& input) override {
    for (std::uint64_t w : decode_weight_list(input.advice)) {
      known_.insert(static_cast<Port>(w));
    }
    hello_owed_ = known_;
    std::vector<Send> sends;
    if (input.is_source) {
      informed_ = true;
      relay(sends);  // send M on K\S, fold into S
    }
    flush_hellos(sends);
    return sends;
  }

  std::vector<Send> on_receive(const NodeInput& /*input*/, const Message& msg,
                               Port from_port) override {
    std::vector<Send> sends;
    switch (msg.kind) {
      case MsgKind::kSource:
        known_.insert(from_port);
        transited_.insert(from_port);
        informed_ = true;
        relay(sends);
        flush_hellos(sends);
        break;
      case MsgKind::kHello:
        if (known_.insert(from_port).second && informed_) {
          relay(sends);  // the hello revealed a tree edge M still owes
        }
        break;
      case MsgKind::kControl:
        break;  // scheme B never sends these; ignore defensively
    }
    return sends;
  }

 private:
  // "send M on all ports of K\S; S <- K"
  void relay(std::vector<Send>& sends) {
    for (Port p : known_) {
      if (!transited_.count(p)) {
        sends.push_back(Send{Message::source(), p});
      }
    }
    transited_ = known_;
  }

  // "H <- H\S; if H nonempty, send hello on all ports of H; H <- empty"
  void flush_hellos(std::vector<Send>& sends) {
    for (Port p : hello_owed_) {
      if (!transited_.count(p)) {
        sends.push_back(Send{Message::hello(), p});
      }
    }
    hello_owed_.clear();
  }

  std::set<Port> known_;       // K_x
  std::set<Port> hello_owed_;  // H_x
  std::set<Port> transited_;   // S_x
  bool informed_ = false;
};

}  // namespace

std::unique_ptr<NodeBehavior> BroadcastBAlgorithm::make_behavior(
    const NodeInput& /*input*/) const {
  return std::make_unique<BroadcastBBehavior>();
}

}  // namespace oraclesize
