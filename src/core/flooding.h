// Flooding — the zero-knowledge baseline.
//
// With no oracle at all (NullOracle), the source sends M on every port and
// each node relays M on all other ports the first time it arrives. This
// completes both broadcast and wakeup (nodes transmit only after being
// informed, so the wakeup constraint holds) but pays Theta(m) messages —
// quadratic on the dense lower-bound families. It anchors the "0 bits of
// advice" row of every comparison table.
#pragma once

#include "sim/scheme.h"

namespace oraclesize {

class FloodingAlgorithm final : public Algorithm {
 public:
  std::unique_ptr<NodeBehavior> make_behavior(
      const NodeInput& input) const override;
  std::string name() const override { return "flooding"; }
  bool is_wakeup() const override { return true; }
  bool reusable() const override { return true; }
};

}  // namespace oraclesize
