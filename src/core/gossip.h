// Gossip — the third communication task the paper names ("information
// exchange among nodes", Section 1.2), solved in its oracle model.
//
// Task: every node v starts with a rumor (its label; anonymous networks
// would carry application payloads instead) and every node must end up
// knowing the full rumor multiset.
//
// With the same Theorem 2.1 oracle (spanning-tree child ports,
// Theta(n log n) bits) the classic three-phase tree pattern solves gossip
// in exactly 3(n-1) messages:
//   1. the source message floods down the tree (n-1 constant-size msgs);
//   2. rumor bundles converge back up, each node forwarding its subtree's
//      rumors through its parent port once all children reported (n-1
//      msgs, sizes growing towards the root);
//   3. the root broadcasts the complete rumor set back down (n-1 msgs of
//      Theta(n log n) bits each).
// Unlike broadcast/wakeup, messages here are NOT constant-size — total
// traffic is Theta(n^2 log n) bits on a path — which is inherent to
// gossip's output size, not to the oracle model.
//
// Non-source nodes stay silent until phase 1 reaches them, so gossip runs
// under the wakeup constraint; like the other tree schemes it never reads
// id(v) beyond using its own label as the rumor.
#pragma once

#include "sim/scheme.h"

namespace oraclesize {

/// Pair with TreeWakeupOracle. After the run every behavior reports
/// terminated() == true and output() == sum of all rumors (a checkable
/// fingerprint of "learned everything"); the rumor a node contributes is
/// its id(v) (anonymous runs would need application-supplied rumors).
class GossipTreeAlgorithm final : public Algorithm {
 public:
  std::unique_ptr<NodeBehavior> make_behavior(
      const NodeInput& input) const override;
  std::string name() const override { return "gossip-tree"; }
  bool is_wakeup() const override { return true; }
  bool reusable() const override { return true; }
};

}  // namespace oraclesize
