// End-to-end convenience: oracle -> advice -> execution -> report.
//
// This is the public entry point most users want: pick a network, a source,
// an oracle, and an algorithm; get back the oracle size, the message counts,
// and whether the task completed. See examples/quickstart.cpp.
#pragma once

#include <string>

#include "oracle/oracle.h"
#include "sim/engine.h"

namespace oraclesize {

struct TaskReport {
  std::string oracle_name;
  std::string algorithm_name;
  std::uint64_t oracle_bits = 0;   ///< the paper's oracle size on this G
  std::uint64_t max_advice_bits = 0;
  /// Total measured wall time of the trial: advise_ns + run_ns. Kept for
  /// continuity with earlier reports that lumped the two phases.
  std::uint64_t wall_ns = 0;
  /// Time spent computing oracle advice for THIS trial. 0 when the advice
  /// came precomputed (advice cache hit or TrialSpec::advice) — the cost
  /// was paid once and is reported by the trial that computed it.
  std::uint64_t advise_ns = 0;
  /// Time spent inside the execution engine (ExecutionContext::run).
  std::uint64_t run_ns = 0;
  /// True when this trial's advice was served precomputed rather than via
  /// a fresh advise() call.
  bool advice_cached = false;
  /// Infrastructure failure captured by BatchRunner's per-trial isolation:
  /// the exception text of whatever the trial threw (advise(), engine
  /// precondition, behavior construction). Empty for trials that ran to a
  /// RunResult — including runs that merely failed the task.
  std::string error;
  /// How many times the trial executed: 1 + retries consumed. Always >= 1.
  std::uint32_t attempts = 1;
  /// Intra-run sharding (core/batch_runner.h ShardPolicy +
  /// sim/sharded_engine.h). 1 for single-threaded trials and for sharded
  /// attempts that fell back; the run itself is bit-identical either way.
  std::uint32_t shards = 1;
  std::uint64_t epochs = 0;  ///< epoch barriers crossed (sharded runs only)
  std::uint64_t cross_shard_messages = 0;  ///< copies routed between shards
  RunResult run;

  /// The task was solved: the run completed with every node informed and
  /// no violation (RunStatus::kCompleted subsumes all three checks).
  bool ok() const {
    return error.empty() && run.status == RunStatus::kCompleted;
  }
  /// The trial itself broke (exception / crash), as opposed to the scheme
  /// failing the task under faults. failed() trials carry no valid run.
  bool failed() const { return !error.empty(); }
  std::string summary() const;
};

/// Runs `algorithm` using `oracle` on network g from `source`.
/// When the algorithm reports is_wakeup(), the wakeup constraint is
/// enforced automatically (a violation fails the report).
/// A thin single-trial wrapper over BatchRunner (core/batch_runner.h);
/// experiment sweeps should build TrialSpecs and batch them instead.
TaskReport run_task(const PortGraph& g, NodeId source, const Oracle& oracle,
                    const Algorithm& algorithm,
                    RunOptions options = RunOptions{});

}  // namespace oraclesize
