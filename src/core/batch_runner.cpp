#include "core/batch_runner.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "sim/execution_context.h"

namespace oraclesize {

namespace {

TaskReport run_trial(const TrialSpec& spec, ExecutionContext& context) {
  const auto started = std::chrono::steady_clock::now();
  TaskReport report;
  report.oracle_name = spec.oracle->name();
  report.algorithm_name = spec.algorithm->name();
  const std::vector<BitString> advice =
      spec.oracle->advise(*spec.graph, spec.source);
  report.oracle_bits = oracle_size_bits(advice);
  report.max_advice_bits = max_advice_bits(advice);
  RunOptions options = spec.options;
  if (spec.algorithm->is_wakeup()) options.enforce_wakeup = true;
  report.run =
      context.run(*spec.graph, spec.source, advice, *spec.algorithm, options);
  report.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  return report;
}

}  // namespace

BatchRunner::BatchRunner(std::size_t jobs) : jobs_(jobs) {
  if (jobs_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw == 0 ? 1 : hw;
  }
}

std::vector<TaskReport> BatchRunner::run(
    const std::vector<TrialSpec>& specs) const {
  for (const TrialSpec& spec : specs) {
    if (spec.graph == nullptr || spec.oracle == nullptr ||
        spec.algorithm == nullptr) {
      throw std::invalid_argument(
          "BatchRunner: spec with null graph/oracle/algorithm");
    }
  }

  std::vector<TaskReport> results(specs.size());
  const std::size_t workers =
      specs.size() < jobs_ ? (specs.empty() ? 1 : specs.size()) : jobs_;

  if (workers <= 1) {
    ExecutionContext context;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      results[i] = run_trial(specs[i], context);
    }
    return results;
  }

  // Work-stealing by atomic counter: trial i's RESULT slot is fixed by i,
  // so results are in spec order no matter which worker claims which trial.
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(specs.size());
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&]() {
      ExecutionContext context;
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= specs.size()) break;
        try {
          results[i] = run_trial(specs[i], context);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();

  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

}  // namespace oraclesize
