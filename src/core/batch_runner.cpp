#include "core/batch_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <optional>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "sim/execution_context.h"
#include "sim/seed_batch_engine.h"
#include "sim/sharded_engine.h"

namespace oraclesize {

SeedFamilyKey seed_family_key(const TrialSpec& spec) {
  SeedFamilyKey key;
  key.graph = spec.graph;
  key.source = spec.source;
  if (spec.oracle != nullptr) key.oracle = spec.oracle->name();
  key.algorithm = spec.algorithm;
  key.advice = spec.advice.get();
  const RunOptions& o = spec.options;
  key.scheduler = o.scheduler;
  key.keying = o.keying;
  key.max_delay = o.max_delay;
  key.max_messages = o.max_messages;
  key.enforce_wakeup = o.enforce_wakeup;
  key.anonymous = o.anonymous;
  key.trace = o.trace;
  key.deadline_ns = o.deadline_ns;
  key.max_events = o.max_events;
  key.trace_sink = o.trace_sink;
  key.fault_drop = o.fault.drop;
  key.fault_duplicate = o.fault.duplicate;
  key.fault_delay = o.fault.delay;
  key.fault_max_extra_delay = o.fault.max_extra_delay;
  key.fault_crash = o.fault.crash;
  key.fault_max_crash_key = o.fault.max_crash_key;
  key.fault_crash_source = o.fault.crash_source;
  key.fault_advice_flip = o.fault.advice_flip;
  key.adv_seed = o.adversary.seed;
  key.adv_rate = o.adversary.byz_rate;
  key.adv_nodes = o.adversary.byz_nodes;
  key.adv_source = o.adversary.byz_source;
  key.adv_strategy = o.adversary.strategy;
  key.adv_forge = o.adversary.forge;
  key.adv_equivocate = o.adversary.equivocate;
  key.adv_advice_lie = o.adversary.advice_lie;
  key.adv_replay_window = o.adversary.replay_window;
  return key;
}

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// Per-spec advice resolved by the pre-pass (or carried by the spec).
/// A null pointer means "advise inside the trial" (cache off).
struct PreparedAdvice {
  AdvicePtr advice;
  std::uint64_t advise_ns = 0;
  bool cached = false;
};

/// Extracts a human-readable message from a captured exception.
std::string what_of(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// The report a trial gets when its execution threw: named like a normal
/// report, no valid RunResult, status kCrashed, the exception text captured.
TaskReport error_report(const TrialSpec& spec, std::string what) {
  TaskReport report;
  report.oracle_name = spec.oracle->name();
  report.algorithm_name = spec.algorithm->name();
  report.error = std::move(what);
  report.run.status = RunStatus::kCrashed;
  return report;
}

/// The batch-wide instrument set, registered once before workers start so
/// the recording path is pure relaxed-atomic adds (no registry lookups).
struct TrialMetrics {
  explicit TrialMetrics(MetricsRegistry& reg)
      : trials(reg.counter("trials")),
        completed(reg.counter("trials_completed")),
        task_failed(reg.counter("trials_task_failed")),
        timeout(reg.counter("trials_timeout")),
        budget_exhausted(reg.counter("trials_budget_exhausted")),
        crashed(reg.counter("trials_crashed")),
        byzantine_detected(reg.counter("trials_byzantine_detected")),
        messages_total(reg.counter("messages_total")),
        messages_source(reg.counter("messages_source")),
        messages_hello(reg.counter("messages_hello")),
        messages_control(reg.counter("messages_control")),
        bits_on_wire(reg.counter("bits_on_wire")),
        deliveries(reg.counter("deliveries")),
        faults_dropped(reg.counter("faults_dropped")),
        faults_duplicated(reg.counter("faults_duplicated")),
        faults_delayed(reg.counter("faults_delayed")),
        faults_crashed_nodes(reg.counter("faults_crashed_nodes")),
        faults_dead_deliveries(reg.counter("faults_dead_deliveries")),
        faults_advice_flips(reg.counter("faults_advice_bits_flipped")),
        byz_lying_nodes(reg.counter("byz_lying_nodes")),
        byz_forged(reg.counter("byz_forged")),
        byz_equivocated(reg.counter("byz_equivocated")),
        byz_replayed(reg.counter("byz_replayed")),
        byz_structured_lies(reg.counter("byz_structured_lies")),
        byz_advice_lies(reg.counter("byz_advice_lies")),
        sharded_trials(reg.counter("sharded_trials")),
        sharded_epochs(reg.counter("sharded_epochs")),
        cross_shard_messages(reg.counter("cross_shard_messages")),
        messages_per_trial(reg.histogram("messages_per_trial")),
        queue_depth_peak(reg.histogram("queue_depth_peak")),
        wakeup_latency(reg.histogram("wakeup_latency")) {}

  /// Folds one trial's FINAL report in. Called by the worker that owns the
  /// trial; every recorded value is deterministic in the spec (counts and
  /// scheduler keys — never the timing fields).
  void observe(const TaskReport& report) {
    trials.add();
    switch (report.run.status) {
      case RunStatus::kCompleted: completed.add(); break;
      case RunStatus::kTaskFailed: task_failed.add(); break;
      case RunStatus::kTimeout: timeout.add(); break;
      case RunStatus::kBudgetExhausted: budget_exhausted.add(); break;
      case RunStatus::kCrashed: crashed.add(); break;
      case RunStatus::kByzantineDetected: byzantine_detected.add(); break;
    }
    if (report.failed()) return;  // crashed trials carry no valid run
    const Metrics& m = report.run.metrics;
    messages_total.add(m.messages_total);
    messages_source.add(m.messages_source);
    messages_hello.add(m.messages_hello);
    messages_control.add(m.messages_control);
    bits_on_wire.add(m.bits_sent);
    deliveries.add(m.deliveries);
    const FaultCounters& f = report.run.faults;
    faults_dropped.add(f.dropped);
    faults_duplicated.add(f.duplicated);
    faults_delayed.add(f.delayed);
    faults_crashed_nodes.add(f.crashed_nodes);
    faults_dead_deliveries.add(f.dead_deliveries);
    faults_advice_flips.add(f.advice_bits_flipped);
    const AdversaryCounters& a = report.run.adversary;
    byz_lying_nodes.add(a.lying_nodes);
    byz_forged.add(a.forged);
    byz_equivocated.add(a.equivocated);
    byz_replayed.add(a.replayed);
    byz_structured_lies.add(a.structured_lies);
    byz_advice_lies.add(a.advice_lies);
    if (report.shards > 1) {
      sharded_trials.add();
      sharded_epochs.add(report.epochs);
      cross_shard_messages.add(report.cross_shard_messages);
    }
    messages_per_trial.observe(m.messages_total);
    queue_depth_peak.observe(m.queue_depth_peak);
    for (const std::int64_t at : report.run.informed_at) {
      if (at == RunResult::kNeverInformed) continue;
      wakeup_latency.observe(static_cast<std::uint64_t>(at));
    }
  }

  Counter& trials;
  Counter& completed;
  Counter& task_failed;
  Counter& timeout;
  Counter& budget_exhausted;
  Counter& crashed;
  Counter& byzantine_detected;
  Counter& messages_total;
  Counter& messages_source;
  Counter& messages_hello;
  Counter& messages_control;
  Counter& bits_on_wire;
  Counter& deliveries;
  Counter& faults_dropped;
  Counter& faults_duplicated;
  Counter& faults_delayed;
  Counter& faults_crashed_nodes;
  Counter& faults_dead_deliveries;
  Counter& faults_advice_flips;
  Counter& byz_lying_nodes;
  Counter& byz_forged;
  Counter& byz_equivocated;
  Counter& byz_replayed;
  Counter& byz_structured_lies;
  Counter& byz_advice_lies;
  Counter& sharded_trials;
  Counter& sharded_epochs;
  Counter& cross_shard_messages;
  Histogram& messages_per_trial;
  Histogram& queue_depth_peak;
  Histogram& wakeup_latency;
};

/// Executes one trial on whichever engine the caller hands in: `sharded`
/// non-null routes the run through the sharded intra-run engine (and copies
/// its per-run stats into the report), otherwise `context` runs it
/// single-threaded. Both produce bit-identical RunResults.
TaskReport run_trial(const TrialSpec& spec, const PreparedAdvice& prep,
                     ExecutionContext* context,
                     ShardedExecutionContext* sharded) {
  TaskReport report;
  report.oracle_name = spec.oracle->name();
  report.algorithm_name = spec.algorithm->name();

  AdvicePtr advice = prep.advice;
  if (advice) {
    report.advise_ns = prep.advise_ns;
    report.advice_cached = prep.cached;
  } else {
    const auto started = std::chrono::steady_clock::now();
    advice = std::make_shared<const std::vector<BitString>>(
        spec.oracle->advise(*spec.graph, spec.source));
    report.advise_ns = elapsed_ns(started);
  }
  report.oracle_bits = oracle_size_bits(*advice);
  report.max_advice_bits = max_advice_bits(*advice);

  RunOptions options = spec.options;
  if (spec.algorithm->is_wakeup()) options.enforce_wakeup = true;
  const auto started = std::chrono::steady_clock::now();
  if (sharded != nullptr) {
    report.run = sharded->run(*spec.graph, spec.source, *advice,
                              *spec.algorithm, options);
    const ShardedRunStats& st = sharded->last_stats();
    // A fallback replay executed single-threaded; report it as such.
    report.shards = st.fell_back ? 1 : st.shards;
    report.epochs = st.epochs;
    report.cross_shard_messages = st.cross_shard_messages;
  } else {
    report.run = context->run(*spec.graph, spec.source, *advice,
                              *spec.algorithm, options);
  }
  report.run_ns = elapsed_ns(started);
  report.wall_ns = report.advise_ns + report.run_ns;
  return report;
}

}  // namespace

BatchRunner::BatchRunner(std::size_t jobs, bool advice_cache,
                         RetryPolicy retry, ShardPolicy shard,
                         SeedBatchPolicy seed_batch)
    : jobs_(jobs),
      advice_cache_(advice_cache),
      retry_(retry),
      shard_(shard),
      seed_batch_(seed_batch) {
  if (jobs_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw == 0 ? 1 : hw;
  }
}

std::vector<TaskReport> BatchRunner::run(const std::vector<TrialSpec>& specs,
                                         BatchStats* stats) const {
  return run_impl(specs, stats, nullptr);
}

std::vector<TaskReport> BatchRunner::run_rethrow(
    const std::vector<TrialSpec>& specs, BatchStats* stats) const {
  std::vector<std::exception_ptr> errors;
  std::vector<TaskReport> results = run_impl(specs, stats, &errors);
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

std::vector<TaskReport> BatchRunner::run_impl(
    const std::vector<TrialSpec>& specs, BatchStats* stats,
    std::vector<std::exception_ptr>* eptrs_out) const {
  for (const TrialSpec& spec : specs) {
    if (spec.graph == nullptr || spec.oracle == nullptr ||
        spec.algorithm == nullptr) {
      throw std::invalid_argument(
          "BatchRunner: spec with null graph/oracle/algorithm");
    }
  }

  std::vector<TaskReport> results(specs.size());
  std::vector<PreparedAdvice> prepared(specs.size());
  std::vector<std::exception_ptr> errors(specs.size());
  BatchStats batch_stats;
  const std::size_t workers =
      specs.size() < jobs_ ? (specs.empty() ? 1 : specs.size()) : jobs_;

  // Specs carrying their own advice never hit the oracle.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].advice) {
      prepared[i] = PreparedAdvice{specs[i].advice, 0, true};
      ++batch_stats.cache_hits;
    }
  }

  if (advice_cache_) {
    // Pre-pass: dedupe by (graph, oracle name, source) — insertion into a
    // std::map keyed this way makes the owner (the lowest spec index of
    // each group, the one that reports the advise cost) deterministic.
    using Key = std::tuple<const PortGraph*, std::string, NodeId>;
    std::map<Key, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].advice) continue;
      groups[Key{specs[i].graph, specs[i].oracle->name(), specs[i].source}]
          .push_back(i);
    }
    std::vector<const std::vector<std::size_t>*> work;
    work.reserve(groups.size());
    for (const auto& [key, indices] : groups) work.push_back(&indices);
    // Largest graphs first: a giant advise landing on the pool last would
    // serialize the tail of the pre-pass behind one worker. Scheduling
    // order affects wall-clock only — owners, advice values, and cost
    // attribution are fixed per group — and the stable sort over the
    // deterministic map order keeps it reproducible.
    std::stable_sort(work.begin(), work.end(),
                     [&](const std::vector<std::size_t>* a,
                         const std::vector<std::size_t>* b) {
                       return specs[a->front()].graph->num_edges() >
                              specs[b->front()].graph->num_edges();
                     });

    AdviceCache cache;
    auto compute_group = [&](const std::vector<std::size_t>& indices) {
      const std::size_t owner = indices.front();
      const TrialSpec& spec = specs[owner];
      try {
        const AdviceCache::Lookup looked =
            cache.lookup(*spec.graph, *spec.oracle, spec.source);
        prepared[owner] =
            PreparedAdvice{looked.advice, looked.advise_ns, false};
        for (std::size_t j = 1; j < indices.size(); ++j) {
          prepared[indices[j]] = PreparedAdvice{looked.advice, 0, true};
        }
      } catch (...) {
        // The uncached path would have thrown in every one of these
        // trials; record the failure for each so rethrow order (lowest
        // spec index) is unchanged.
        for (std::size_t idx : indices) {
          errors[idx] = std::current_exception();
        }
      }
    };

    if (workers <= 1 || work.size() <= 1) {
      for (const auto* indices : work) compute_group(*indices);
    } else {
      std::atomic<std::size_t> next{0};
      std::vector<std::thread> pool;
      pool.reserve(workers < work.size() ? workers : work.size());
      for (std::size_t w = 0;
           w < (workers < work.size() ? workers : work.size()); ++w) {
        pool.emplace_back([&]() {
          while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= work.size()) break;
            compute_group(*work[i]);
          }
        });
      }
      for (std::thread& t : pool) t.join();
    }

    const AdviceCache::Stats cache_stats = cache.stats();
    batch_stats.unique_advice = cache_stats.misses;
    batch_stats.advise_ns = cache_stats.advise_ns;
    for (const auto& [key, indices] : groups) {
      batch_stats.cache_hits += indices.size() - 1;
    }
  }

  // Metric aggregation is opt-in via the stats out-param: instruments are
  // registered here (under the registry mutex), workers record with relaxed
  // atomic adds only, and the snapshot is taken after the join.
  MetricsRegistry registry;
  std::optional<TrialMetrics> trial_metrics;
  if (stats != nullptr) trial_metrics.emplace(registry);

  // Fault-isolated trial execution with bounded, deterministically
  // re-seeded retry. Only the worker that claimed trial i touches
  // errors[i]/results[i], so no synchronization beyond the join is needed.
  auto run_one = [&](std::size_t i, ExecutionContext* context,
                     ShardedExecutionContext* sharded) {
    if (errors[i]) {
      // The advise() pre-pass already failed this spec; advise failures
      // are deterministic in the spec, so retrying cannot help.
      results[i] = error_report(specs[i], what_of(errors[i]));
      return;
    }
    TrialSpec spec = specs[i];
    std::uint32_t attempt = 0;
    while (true) {
      TaskReport report;
      try {
        report = run_trial(spec, prepared[i], context, sharded);
      } catch (...) {
        errors[i] = std::current_exception();
        report = error_report(specs[i], what_of(errors[i]));
      }
      report.attempts = attempt + 1;
      const bool transient =
          report.failed() || report.run.status == RunStatus::kTimeout ||
          report.run.status == RunStatus::kBudgetExhausted ||
          (retry_.retry_task_failures &&
           report.run.status == RunStatus::kTaskFailed);
      if (!transient || attempt >= retry_.max_retries) {
        if (!report.failed()) errors[i] = nullptr;  // a retry recovered
        results[i] = std::move(report);
        return;
      }
      ++attempt;
      // Re-seed both randomness domains so the next attempt explores a
      // different schedule/fault draw yet stays a pure function of the
      // spec and the attempt number.
      spec.options.seed += retry_.reseed_stride;
      spec.options.fault.seed += retry_.reseed_stride;
    }
  };

  // Each trial is observed exactly once, by the worker that claimed it,
  // after its LAST attempt settled.
  auto run_and_observe = [&](std::size_t i, ExecutionContext* context,
                             ShardedExecutionContext* sharded) {
    run_one(i, context, sharded);
    if (trial_metrics) trial_metrics->observe(results[i]);
  };

  // Split off trials big enough for intra-run sharding. They run one at a
  // time BEFORE the trial pool starts — the sharded engine wants every
  // core to itself — and largest first (stable by spec index, mirroring
  // the advise pre-pass), so the most expensive run is never the one the
  // batch tail waits on. Result slots are fixed by spec index, so the
  // reordering is invisible in the returned vector.
  //
  // What the shard split leaves is grouped by seed family: specs identical
  // up to their seeds whose advice is already resolved (shared advice is
  // what the lockstep pass amortizes — with the cache off every trial
  // stays scalar, keeping the measurement baseline pure) and whose options
  // the lockstep engine can honor become one FAMILY unit; everything else
  // pools as scalar singles. Family membership is a pure function of the
  // specs, so the unit list — like every result — is jobs-invariant.
  std::vector<std::size_t> pool_work;
  pool_work.reserve(specs.size());
  std::vector<std::size_t> sharded_work;
  std::vector<std::vector<std::size_t>> family_work;
  {
    std::vector<char> claimed(specs.size(), 0);
    std::map<SeedFamilyKey, std::vector<std::size_t>> families;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (shard_.enabled() &&
          specs[i].graph->num_nodes() >= shard_.min_nodes) {
        sharded_work.push_back(i);
        claimed[i] = 1;
        continue;
      }
      if (seed_batch_.enabled && prepared[i].advice && !errors[i] &&
          SeedBatchExecutionContext::lockstep_eligible(specs[i].options)) {
        families[seed_family_key(specs[i])].push_back(i);
      }
    }
    for (auto& [key, indices] : families) {
      if (!seed_batch_.enabled_for(indices.size())) continue;
      for (const std::size_t i : indices) claimed[i] = 1;
      family_work.push_back(std::move(indices));
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (!claimed[i]) pool_work.push_back(i);
    }
  }

  // Per-unit count of trials whose FINAL attempt was served by a shared
  // lockstep pass. Written only by the worker that owns the unit, summed
  // serially after the join.
  std::vector<std::size_t> family_shared(family_work.size(), 0);

  // Executes one family unit: repeated lockstep passes over the lanes
  // still pending, with the same per-trial retry/fault-isolation semantics
  // as run_one. Retries shift only the two seeds, so every pass stays one
  // family; lanes retire from `pending` as their attempts settle — shared
  // lanes take the pass's RunResult, diverged lanes replay scalar on this
  // worker's context, reproducing run_one report for report.
  auto run_family = [&](std::size_t u, ExecutionContext* context,
                        SeedBatchExecutionContext* batched) {
    const std::vector<std::size_t>& members = family_work[u];
    const TrialSpec& proto = specs[members.front()];
    const AdvicePtr advice = prepared[members.front()].advice;
    RunOptions base = proto.options;
    if (proto.algorithm->is_wakeup()) base.enforce_wakeup = true;

    struct LaneState {
      std::size_t spec;
      std::uint64_t seed;
      std::uint64_t fault_seed;
      std::uint32_t attempt;
    };
    std::vector<LaneState> pending;
    pending.reserve(members.size());
    for (const std::size_t i : members) {
      pending.push_back(
          {i, specs[i].options.seed, specs[i].options.fault.seed, 0});
    }
    std::vector<SeedBatchExecutionContext::Lane> lanes;
    std::vector<SeedBatchExecutionContext::LaneDisposition> disp;
    std::vector<LaneState> still_pending;
    while (!pending.empty()) {
      lanes.clear();
      for (const LaneState& ls : pending) {
        lanes.push_back({ls.seed, ls.fault_seed});
      }
      const auto started = std::chrono::steady_clock::now();
      batched->run_lockstep(*proto.graph, proto.source, *advice,
                            *proto.algorithm, base, lanes, disp);
      const std::uint64_t lockstep_ns = elapsed_ns(started);
      std::size_t shared_count = 0;
      for (const auto d : disp) {
        shared_count +=
            d == SeedBatchExecutionContext::LaneDisposition::kShared;
      }
      // Shared lanes split the pass's wall clock evenly — timing is the
      // one field outside the bit-identity contract, and an even split
      // keeps batch totals comparable with the scalar path.
      const std::uint64_t shared_ns =
          shared_count ? lockstep_ns / shared_count : 0;
      still_pending.clear();
      for (std::size_t j = 0; j < pending.size(); ++j) {
        const std::size_t i = pending[j].spec;
        const bool lane_shared =
            disp[j] == SeedBatchExecutionContext::LaneDisposition::kShared;
        TaskReport report;
        if (lane_shared) {
          report.oracle_name = specs[i].oracle->name();
          report.algorithm_name = specs[i].algorithm->name();
          report.advise_ns = prepared[i].advise_ns;
          report.advice_cached = prepared[i].cached;
          report.oracle_bits = oracle_size_bits(*advice);
          report.max_advice_bits = max_advice_bits(*advice);
          // Per-lane materialization: under counter-keyed seeded
          // schedulers the key-valued fields differ per scheduler-seed
          // class; for everything else this is a plain copy of the shared
          // result.
          report.run = batched->lane_result(j);
          report.run_ns = shared_ns;
          report.wall_ns = report.advise_ns + report.run_ns;
        } else {
          TrialSpec attempt_spec = specs[i];
          attempt_spec.options.seed = pending[j].seed;
          attempt_spec.options.fault.seed = pending[j].fault_seed;
          try {
            report = run_trial(attempt_spec, prepared[i], context, nullptr);
          } catch (...) {
            errors[i] = std::current_exception();
            report = error_report(specs[i], what_of(errors[i]));
          }
        }
        report.attempts = pending[j].attempt + 1;
        const bool transient =
            report.failed() || report.run.status == RunStatus::kTimeout ||
            report.run.status == RunStatus::kBudgetExhausted ||
            (retry_.retry_task_failures &&
             report.run.status == RunStatus::kTaskFailed);
        if (!transient || pending[j].attempt >= retry_.max_retries) {
          if (!report.failed()) errors[i] = nullptr;
          if (lane_shared) ++family_shared[u];
          results[i] = std::move(report);
          if (trial_metrics) trial_metrics->observe(results[i]);
        } else {
          still_pending.push_back(
              {i, pending[j].seed + retry_.reseed_stride,
               pending[j].fault_seed + retry_.reseed_stride,
               pending[j].attempt + 1});
        }
      }
      pending.swap(still_pending);
    }
  };
  if (!sharded_work.empty()) {
    std::stable_sort(sharded_work.begin(), sharded_work.end(),
                     [&](std::size_t a, std::size_t b) {
                       return specs[a].graph->num_edges() >
                              specs[b].graph->num_edges();
                     });
    ShardedExecutionContext sharded(shard_.shards);
    for (const std::size_t i : sharded_work) {
      run_and_observe(i, nullptr, &sharded);
    }
  }

  // One heterogeneous work list for the pool: family units first (they are
  // the batch's biggest chunks — a unit landing on the pool last would
  // serialize the tail behind one worker), then scalar singles in spec
  // order. Scheduling order affects wall clock only; every result slot is
  // fixed by spec index.
  struct WorkItem {
    bool family;
    std::size_t index;  ///< family_work index or spec index
  };
  std::vector<WorkItem> items;
  items.reserve(family_work.size() + pool_work.size());
  for (std::size_t u = 0; u < family_work.size(); ++u) {
    items.push_back({true, u});
  }
  for (const std::size_t i : pool_work) items.push_back({false, i});

  const std::size_t pool_workers =
      items.size() < workers ? items.size() : workers;
  if (pool_workers <= 1) {
    ExecutionContext context;
    SeedBatchExecutionContext batched;
    for (const WorkItem& item : items) {
      if (item.family) {
        run_family(item.index, &context, &batched);
      } else {
        run_and_observe(item.index, &context, nullptr);
      }
    }
  } else {
    // Work-stealing by atomic counter: trial i's RESULT slot is fixed by
    // i, so results are in spec order no matter which worker claims which
    // item (a family unit is claimed — and its members' slots written — by
    // exactly one worker).
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(pool_workers);
    for (std::size_t w = 0; w < pool_workers; ++w) {
      pool.emplace_back([&]() {
        ExecutionContext context;
        SeedBatchExecutionContext batched;
        while (true) {
          const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
          if (k >= items.size()) break;
          if (items[k].family) {
            run_family(items[k].index, &context, &batched);
          } else {
            run_and_observe(items[k].index, &context, nullptr);
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // All remaining accounting reads final per-trial reports, so it can run
  // serially after the join (no atomics needed).
  batch_stats.seed_families = family_work.size();
  for (const std::vector<std::size_t>& members : family_work) {
    batch_stats.batched_lanes += members.size();
  }
  for (const std::size_t s : family_shared) {
    batch_stats.lockstep_shared += s;
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (results[i].failed()) ++batch_stats.failed;
    batch_stats.retries += results[i].attempts - 1;
    if (!advice_cache_ && !specs[i].advice && !results[i].failed()) {
      // Per-trial advise: fold the (last attempt's) cost into the batch
      // accounting so cache on/off totals stay comparable.
      batch_stats.advise_ns += results[i].advise_ns;
      ++batch_stats.unique_advice;
    }
  }

  if (stats != nullptr) {
    // Batch-level accounting joins the snapshot as plain counters so one
    // JSON object carries everything.
    registry.counter("retries").add(batch_stats.retries);
    registry.counter("advice_cache_hits").add(batch_stats.cache_hits);
    registry.counter("advice_unique").add(batch_stats.unique_advice);
    registry.counter("seed_families").add(batch_stats.seed_families);
    registry.counter("batched_lanes").add(batch_stats.batched_lanes);
    registry.counter("lockstep_shared_lanes").add(batch_stats.lockstep_shared);
    batch_stats.metrics = registry.snapshot();
  }

  if (eptrs_out != nullptr) *eptrs_out = std::move(errors);
  if (stats != nullptr) *stats = batch_stats;
  return results;
}

}  // namespace oraclesize
