// Deterministic replay: re-execute a RecordedTrace and demand bit-identity.
//
// A trace (sim/trace_recorder.h) is self-contained: it embeds the network,
// the original advice, and the run configuration. Replay rebuilds all three,
// resolves the algorithm by its recorded name, plays the run through a fresh
// ExecutionContext with a fresh TraceRecorder attached, and compares the
// re-recorded trace against the original — event stream, final RunStatus,
// Metrics, and FaultCounters, all bit for bit.
//
// This is the determinism contract made executable: if a code change (or a
// different machine, worker count, or context-reuse history) alters ANY
// observable of a run, replay localizes the first divergent event instead of
// merely flipping an aggregate. tests/test_trace_replay.cpp round-trips all
// six core algorithms through save/load/replay; `oraclesize_cli trace
// replay` does the same from the command line.
#pragma once

#include <string>
#include <vector>

#include "sim/trace_recorder.h"

namespace oraclesize {

/// Looks up one of the built-in algorithms by Algorithm::name()
/// ("wakeup-tree", "broadcast-B", "flooding", "census-echo", "gossip-tree",
/// "hybrid-wakeup"). Returns a shared immutable instance, or nullptr for an
/// unknown name. Instances are stateless and safe to use concurrently.
const Algorithm* algorithm_by_name(const std::string& name);

/// Names of every algorithm algorithm_by_name resolves, in registry order.
std::vector<std::string> known_algorithms();

/// The outcome of re-executing one trace.
struct ReplayReport {
  RecordedTrace replayed;  ///< the re-recorded execution
  bool match = false;      ///< streams, status, metrics, faults all equal
  /// Human-readable differences (empty when match). The first entry
  /// localizes the divergence: a differing event index, a status flip, or
  /// a metric delta.
  std::vector<std::string> mismatches;
};

/// Re-executes `trace` from its embedded inputs and compares. Throws
/// std::runtime_error when the trace cannot be replayed at all (unknown
/// algorithm, malformed graph text, advice/node-count mismatch).
ReplayReport replay_trace(const RecordedTrace& trace);

/// Structural comparison of two traces (replay uses this too).
struct TraceDiff {
  bool equal = false;
  std::vector<std::string> differences;
};

/// Compares headers, inputs, event streams, and outcomes. The event-stream
/// report names the first divergent index and renders both events; length
/// mismatches report the first unmatched event.
TraceDiff diff_traces(const RecordedTrace& a, const RecordedTrace& b);

}  // namespace oraclesize
