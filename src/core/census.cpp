#include "core/census.h"

#include <set>

#include "bitio/codecs.h"

namespace oraclesize {

namespace {

class CensusBehavior final : public NodeBehavior {
 public:
  std::vector<Send> on_start(const NodeInput& input) override {
    if (!input.is_source) return {};
    return begin_subtree(input, kNoPort);
  }

  std::vector<Send> on_receive(const NodeInput& input, const Message& msg,
                               Port from_port) override {
    switch (msg.kind) {
      case MsgKind::kSource:
        if (started_) return {};  // duplicate M (cannot happen on a tree)
        return begin_subtree(input, from_port);
      case MsgKind::kControl: {  // a child's subtree count
        if (!pending_children_.erase(from_port)) return {};  // not a child
        count_ += msg.payload;
        return maybe_report();
      }
      case MsgKind::kHello:
        return {};
    }
    return {};
  }

  bool terminated() const override { return done_; }
  std::uint64_t output() const override { return done_ ? count_ : 0; }

 private:
  std::vector<Send> begin_subtree(const NodeInput& input, Port parent) {
    started_ = true;
    parent_port_ = parent;
    count_ = 1;  // this node
    std::vector<Send> sends;
    for (std::uint64_t p : decode_port_list(input.advice)) {
      pending_children_.insert(static_cast<Port>(p));
      sends.push_back(Send{Message::source(), static_cast<Port>(p)});
    }
    // Leaves echo immediately.
    auto echo = maybe_report();
    sends.insert(sends.end(), echo.begin(), echo.end());
    return sends;
  }

  std::vector<Send> maybe_report() {
    if (!pending_children_.empty() || done_) return {};
    done_ = true;
    if (parent_port_ == kNoPort) return {};  // the source: output is ready
    return {Send{Message::control(count_), parent_port_}};
  }

  bool started_ = false;
  bool done_ = false;
  Port parent_port_ = kNoPort;
  std::uint64_t count_ = 0;
  std::set<Port> pending_children_;
};

}  // namespace

std::unique_ptr<NodeBehavior> CensusAlgorithm::make_behavior(
    const NodeInput& /*input*/) const {
  return std::make_unique<CensusBehavior>();
}

}  // namespace oraclesize
