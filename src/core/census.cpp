#include "core/census.h"

#include "bitio/codecs.h"
#include "util/flat_set.h"

namespace oraclesize {

namespace {

class CensusBehavior final : public NodeBehavior {
 public:
  void on_start(const NodeInput& input, std::vector<Send>& out) override {
    if (!input.is_source) return;
    begin_subtree(input, kNoPort, out);
  }

  void on_receive(const NodeInput& input, const Message& msg, Port from_port,
                  std::vector<Send>& out) override {
    switch (msg.kind) {
      case MsgKind::kSource:
        if (started_) return;  // duplicate M (cannot happen on a tree)
        begin_subtree(input, from_port, out);
        return;
      case MsgKind::kControl:  // a child's subtree count
        if (!erase_sorted(pending_children_, from_port)) return;  // not a child
        count_ += msg.payload;
        maybe_report(out);
        return;
      case MsgKind::kHello:
        return;
    }
  }

  void reset(const NodeInput& /*input*/) override {
    started_ = false;
    done_ = false;
    parent_port_ = kNoPort;
    count_ = 0;
    pending_children_.clear();
  }

  bool terminated() const override { return done_; }
  std::uint64_t output() const override { return done_ ? count_ : 0; }

 private:
  void begin_subtree(const NodeInput& input, Port parent,
                     std::vector<Send>& out) {
    started_ = true;
    parent_port_ = parent;
    count_ = 1;  // this node
    decode_port_list_into(*input.advice, ports_);
    for (std::uint64_t p : ports_) {
      insert_sorted(pending_children_, static_cast<Port>(p));
      out.push_back(Send{Message::source(), static_cast<Port>(p)});
    }
    maybe_report(out);  // leaves echo immediately
  }

  void maybe_report(std::vector<Send>& out) {
    if (!pending_children_.empty() || done_) return;
    done_ = true;
    if (parent_port_ == kNoPort) return;  // the source: output is ready
    out.push_back(Send{Message::control(count_), parent_port_});
  }

  bool started_ = false;
  bool done_ = false;
  Port parent_port_ = kNoPort;
  std::uint64_t count_ = 0;
  std::vector<Port> pending_children_;  // sorted (util/flat_set.h)
  std::vector<std::uint64_t> ports_;    // decode scratch
};

}  // namespace

std::unique_ptr<NodeBehavior> CensusAlgorithm::make_behavior(
    const NodeInput& /*input*/) const {
  return std::make_unique<CensusBehavior>();
}

}  // namespace oraclesize
