#include "core/gossip.h"

#include <algorithm>

#include "bitio/codecs.h"
#include "util/flat_set.h"

namespace oraclesize {

namespace {

class GossipBehavior final : public NodeBehavior {
 public:
  void on_start(const NodeInput& input, std::vector<Send>& out) override {
    if (!input.is_source) return;
    begin_subtree(input, kNoPort, out);
  }

  void on_receive(const NodeInput& input, const Message& msg, Port from_port,
                  std::vector<Send>& out) override {
    switch (msg.kind) {
      case MsgKind::kSource:
        if (started_) return;
        begin_subtree(input, from_port, out);
        return;
      case MsgKind::kControl:  // a child's rumor bundle (phase 2)
        if (!erase_sorted(pending_children_, from_port)) return;
        rumors_.insert(rumors_.end(), msg.items.begin(), msg.items.end());
        maybe_advance(out);
        return;
      case MsgKind::kHello:  // the full rumor set (phase 3)
        if (done_) return;
        rumors_ = msg.items;
        finish(out);
        return;
    }
  }

  void reset(const NodeInput& /*input*/) override {
    started_ = false;
    reported_ = false;
    done_ = false;
    parent_port_ = kNoPort;
    rumors_.clear();
    child_ports_.clear();
    pending_children_.clear();
  }

  bool terminated() const override { return done_; }
  std::uint64_t output() const override {
    if (!done_) return 0;
    std::uint64_t sum = 0;
    for (std::uint64_t r : rumors_) sum += r;
    return sum;
  }

 private:
  void begin_subtree(const NodeInput& input, Port parent,
                     std::vector<Send>& out) {
    started_ = true;
    parent_port_ = parent;
    rumors_.push_back(input.id);  // this node's rumor
    decode_port_list_into(*input.advice, decoded_ports_);
    for (std::uint64_t p : decoded_ports_) {
      const Port port = static_cast<Port>(p);
      insert_sorted(pending_children_, port);
      child_ports_.push_back(port);
      out.push_back(Send{Message::source(), port});
    }
    maybe_advance(out);
  }

  // Phase 2 step: once all children reported, pass the subtree bundle up —
  // or, at the root, start phase 3.
  void maybe_advance(std::vector<Send>& out) {
    if (!pending_children_.empty() || done_ || reported_) return;
    if (parent_port_ != kNoPort) {
      reported_ = true;
      out.push_back(
          Send{Message::bundle(MsgKind::kControl, rumors_), parent_port_});
      return;
    }
    finish(out);  // the root has everything
  }

  // Phase 3: distribute the complete set to the subtree and terminate.
  void finish(std::vector<Send>& out) {
    done_ = true;
    std::sort(rumors_.begin(), rumors_.end());
    for (Port p : child_ports_) {
      out.push_back(Send{Message::bundle(MsgKind::kHello, rumors_), p});
    }
  }

  bool started_ = false;
  bool reported_ = false;
  bool done_ = false;
  Port parent_port_ = kNoPort;
  std::vector<std::uint64_t> rumors_;
  std::vector<Port> child_ports_;
  std::vector<Port> pending_children_;        // sorted (util/flat_set.h)
  std::vector<std::uint64_t> decoded_ports_;  // decode scratch
};

}  // namespace

std::unique_ptr<NodeBehavior> GossipTreeAlgorithm::make_behavior(
    const NodeInput& /*input*/) const {
  return std::make_unique<GossipBehavior>();
}

}  // namespace oraclesize
