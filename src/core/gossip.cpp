#include "core/gossip.h"

#include <algorithm>
#include <set>

#include "bitio/codecs.h"

namespace oraclesize {

namespace {

class GossipBehavior final : public NodeBehavior {
 public:
  std::vector<Send> on_start(const NodeInput& input) override {
    if (!input.is_source) return {};
    return begin_subtree(input, kNoPort);
  }

  std::vector<Send> on_receive(const NodeInput& input, const Message& msg,
                               Port from_port) override {
    switch (msg.kind) {
      case MsgKind::kSource:
        if (started_) return {};
        return begin_subtree(input, from_port);
      case MsgKind::kControl: {  // a child's rumor bundle (phase 2)
        if (!pending_children_.erase(from_port)) return {};
        rumors_.insert(rumors_.end(), msg.items.begin(), msg.items.end());
        return maybe_advance();
      }
      case MsgKind::kHello: {  // the full rumor set (phase 3)
        if (done_) return {};
        rumors_ = msg.items;
        return finish();
      }
    }
    return {};
  }

  bool terminated() const override { return done_; }
  std::uint64_t output() const override {
    if (!done_) return 0;
    std::uint64_t sum = 0;
    for (std::uint64_t r : rumors_) sum += r;
    return sum;
  }

 private:
  std::vector<Send> begin_subtree(const NodeInput& input, Port parent) {
    started_ = true;
    parent_port_ = parent;
    rumors_.push_back(input.id);  // this node's rumor
    std::vector<Send> sends;
    for (std::uint64_t p : decode_port_list(input.advice)) {
      const Port port = static_cast<Port>(p);
      pending_children_.insert(port);
      child_ports_.push_back(port);
      sends.push_back(Send{Message::source(), port});
    }
    auto next = maybe_advance();
    sends.insert(sends.end(), next.begin(), next.end());
    return sends;
  }

  // Phase 2 step: once all children reported, pass the subtree bundle up —
  // or, at the root, start phase 3.
  std::vector<Send> maybe_advance() {
    if (!pending_children_.empty() || done_ || reported_) return {};
    if (parent_port_ != kNoPort) {
      reported_ = true;
      return {Send{Message::bundle(MsgKind::kControl, rumors_), parent_port_}};
    }
    return finish();  // the root has everything
  }

  // Phase 3: distribute the complete set to the subtree and terminate.
  std::vector<Send> finish() {
    done_ = true;
    std::sort(rumors_.begin(), rumors_.end());
    std::vector<Send> sends;
    for (Port p : child_ports_) {
      sends.push_back(Send{Message::bundle(MsgKind::kHello, rumors_), p});
    }
    return sends;
  }

  bool started_ = false;
  bool reported_ = false;
  bool done_ = false;
  Port parent_port_ = kNoPort;
  std::vector<std::uint64_t> rumors_;
  std::vector<Port> child_ports_;
  std::set<Port> pending_children_;
};

}  // namespace

std::unique_ptr<NodeBehavior> GossipTreeAlgorithm::make_behavior(
    const NodeInput& /*input*/) const {
  return std::make_unique<GossipBehavior>();
}

}  // namespace oraclesize
