// Memoized oracle advice: compute each distinct advice vector once.
//
// Experiment sweeps repeat trials over the same (graph, oracle, source)
// triple — repeats for timing, scheduler ablations, seed sweeps — and the
// oracle's advise() is the expensive part (light-tree construction is
// O(m log n); on dense graphs it dwarfs the execution itself). AdviceCache
// is a thread-safe memo table over
//
//     key = (graph identity, oracle name, source)
//
// mapping to a shared immutable advice vector. Graph identity is the
// PortGraph's address — the cache deliberately does NOT hash graph
// contents; callers must keep a graph alive (and unmodified) while any
// cache referencing it is in use, the same lifetime rule TrialSpec already
// imposes. Oracle identity is Oracle::name(), which every oracle in this
// repo makes parameter-complete (tree kind, fraction, seed, radius, ...)
// precisely so equal names imply equal advice.
//
// Concurrency: any number of threads may call lookup() concurrently, with
// arbitrary key overlap. Exactly one caller computes a given key (it gets
// hit == false and the measured advise_ns); everyone else blocks on the
// shared future and gets hit == true. If advise() throws, the exception is
// propagated to every waiter of that key and the entry stays poisoned
// (repeat lookups rethrow, matching the determinism of the uncached path).
//
// core/batch_runner.h uses one AdviceCache per run() call as a pre-pass;
// the class is public so harnesses with longer-lived reuse (e.g. a CLI
// loop over schedulers) can hold one across batches.
//
// Budgeted mode: constructing with a non-zero byte budget turns on LRU
// eviction. Completed entries are charged their resident size (BitString
// word storage + per-entry bookkeeping) and the least-recently-used
// completed entries are dropped whenever the total exceeds the budget.
// Eviction only severs the cache's reference: advice is handed out as a
// shared_ptr, so every in-flight holder (a TrialSpec, a waiter that
// already resolved the future) keeps its artifact alive untouched. A
// re-lookup of an evicted key recomputes — a new "generation" — and the
// exactly-once guarantee holds per generation: concurrent lookups of the
// same absent key still elect a single computing owner. The default
// budget of 0 means unbounded, which is bit-for-bit the historical
// behavior.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "oracle/oracle.h"

namespace oraclesize {

/// Shared immutable advice vector, one BitString per node.
using AdvicePtr = std::shared_ptr<const std::vector<BitString>>;

class AdviceCache {
 public:
  struct Lookup {
    AdvicePtr advice;
    /// Nanoseconds spent inside oracle.advise() — 0 on a hit (the cost was
    /// paid, and is reported, by the computing lookup).
    std::uint64_t advise_ns = 0;
    /// True when the advice was served from an existing entry.
    bool hit = false;
  };

  struct Stats {
    std::size_t entries = 0;  ///< resident keys (computed or computing)
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::uint64_t advise_ns = 0;  ///< total time spent in advise() calls
    std::uint64_t bytes = 0;      ///< accounted bytes of completed entries
    std::size_t evictions = 0;    ///< entries dropped to fit the budget
  };

  /// budget_bytes == 0 (the default) disables eviction entirely.
  explicit AdviceCache(std::uint64_t budget_bytes = 0)
      : budget_(budget_bytes) {}

  /// Returns the advice for (g, oracle, source), computing it on this
  /// thread if absent. Blocks if another thread is computing the same key.
  Lookup lookup(const PortGraph& g, const Oracle& oracle, NodeId source);

  Stats stats() const;

  /// Accounted bytes currently resident (completed entries only; an entry
  /// is charged once its advice is computed, and uncharged on eviction).
  std::uint64_t bytes() const;

  std::uint64_t byte_budget() const noexcept { return budget_; }

  /// Resident size the cache charges for one advice vector: BitString word
  /// storage plus per-object overhead. Deterministic in the advice alone.
  static std::uint64_t advice_bytes(const std::vector<BitString>& advice);

  /// Drops all entries. Not safe concurrently with lookup().
  void clear();

 private:
  struct Computed {
    AdvicePtr advice;
    std::uint64_t advise_ns = 0;
  };
  using Key = std::tuple<const PortGraph*, std::string, NodeId>;
  struct Entry {
    std::shared_future<Computed> future;
    std::uint64_t bytes = 0;  ///< 0 until the owner finishes computing
    bool completed = false;   ///< in lru_ and charged iff true
    std::list<Key>::iterator lru;
  };

  /// Records a finished computation (success or poison) under the lock:
  /// charges the entry, links it into the LRU list, and evicts from the
  /// cold end until the budget holds again. No-op if the entry was
  /// clear()ed while computing.
  void complete_entry_locked(const Key& key, std::uint64_t entry_bytes);
  void evict_to_budget_locked();

  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  ///< completed entries, front = most recently used
  const std::uint64_t budget_;
  std::uint64_t bytes_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
  std::uint64_t advise_ns_ = 0;
};

}  // namespace oraclesize
