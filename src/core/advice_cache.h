// Memoized oracle advice: compute each distinct advice vector once.
//
// Experiment sweeps repeat trials over the same (graph, oracle, source)
// triple — repeats for timing, scheduler ablations, seed sweeps — and the
// oracle's advise() is the expensive part (light-tree construction is
// O(m log n); on dense graphs it dwarfs the execution itself). AdviceCache
// is a thread-safe memo table over
//
//     key = (graph identity, oracle name, source)
//
// mapping to a shared immutable advice vector. Graph identity is the
// PortGraph's address — the cache deliberately does NOT hash graph
// contents; callers must keep a graph alive (and unmodified) while any
// cache referencing it is in use, the same lifetime rule TrialSpec already
// imposes. Oracle identity is Oracle::name(), which every oracle in this
// repo makes parameter-complete (tree kind, fraction, seed, radius, ...)
// precisely so equal names imply equal advice.
//
// Concurrency: any number of threads may call lookup() concurrently, with
// arbitrary key overlap. Exactly one caller computes a given key (it gets
// hit == false and the measured advise_ns); everyone else blocks on the
// shared future and gets hit == true. If advise() throws, the exception is
// propagated to every waiter of that key and the entry stays poisoned
// (repeat lookups rethrow, matching the determinism of the uncached path).
//
// core/batch_runner.h uses one AdviceCache per run() call as a pre-pass;
// the class is public so harnesses with longer-lived reuse (e.g. a CLI
// loop over schedulers) can hold one across batches.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "oracle/oracle.h"

namespace oraclesize {

/// Shared immutable advice vector, one BitString per node.
using AdvicePtr = std::shared_ptr<const std::vector<BitString>>;

class AdviceCache {
 public:
  struct Lookup {
    AdvicePtr advice;
    /// Nanoseconds spent inside oracle.advise() — 0 on a hit (the cost was
    /// paid, and is reported, by the computing lookup).
    std::uint64_t advise_ns = 0;
    /// True when the advice was served from an existing entry.
    bool hit = false;
  };

  struct Stats {
    std::size_t entries = 0;  ///< distinct keys computed (or computing)
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::uint64_t advise_ns = 0;  ///< total time spent in advise() calls
  };

  /// Returns the advice for (g, oracle, source), computing it on this
  /// thread if absent. Blocks if another thread is computing the same key.
  Lookup lookup(const PortGraph& g, const Oracle& oracle, NodeId source);

  Stats stats() const;

  /// Drops all entries. Not safe concurrently with lookup().
  void clear();

 private:
  struct Computed {
    AdvicePtr advice;
    std::uint64_t advise_ns = 0;
  };
  using Key = std::tuple<const PortGraph*, std::string, NodeId>;

  mutable std::mutex mutex_;
  std::map<Key, std::shared_future<Computed>> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::uint64_t advise_ns_ = 0;
};

}  // namespace oraclesize
