// Broadcast Scheme B (Figure 1 of the paper) — Theorem 3.1's algorithm.
//
// Paired with LightBroadcastOracle. Per-node state, exactly the paper's:
//
//   K_x — incident tree edges known to x (as local ports). Initialized from
//         the oracle (the decoded weights *are* port numbers at x), grows
//         when M or a hello arrives on a new port.
//   H_x — ports on which a "hello" may still be owed. Initialized to K_x.
//   S_x — ports through which M has already transited (either direction).
//
// Transitions:
//   * empty history: if informed (the source), send M on K\S and fold into
//     S; then send hello on H\S and clear H. Non-source nodes just send
//     their hellos — the spontaneous transmissions that distinguish
//     broadcast from wakeup.
//   * M arrives on p: K += p, S += p, node becomes informed, relay M on
//     K\S, fold; flush any hellos still owed.
//   * hello arrives on p not in K: K += p; if already informed, relay M
//     through p immediately (DESIGN.md deviation #4: Figure 1 as literally
//     written loses this race under asynchrony; the paper's correctness
//     argument requires the relay).
//
// Guarantees (tested): every node informed under every scheduler; hello
// messages <= n-1 (one per tree edge, from one side); M messages <= 2(n-1);
// all traffic rides spanning-tree edges; never reads id(v).
#pragma once

#include "sim/scheme.h"

namespace oraclesize {

class BroadcastBAlgorithm final : public Algorithm {
 public:
  std::unique_ptr<NodeBehavior> make_behavior(
      const NodeInput& input) const override;
  std::string name() const override { return "broadcast-B"; }
  bool reusable() const override { return true; }
};

}  // namespace oraclesize
