#include "core/hybrid_wakeup.h"

#include "bitio/codecs.h"

namespace oraclesize {

namespace {

class HybridBehavior final : public NodeBehavior {
 public:
  std::vector<Send> on_start(const NodeInput& input) override {
    if (!input.is_source) return {};
    return relay(input, kNoPort);
  }

  std::vector<Send> on_receive(const NodeInput& input, const Message& msg,
                               Port from_port) override {
    if (msg.kind != MsgKind::kSource || done_) return {};
    return relay(input, from_port);
  }

 private:
  std::vector<Send> relay(const NodeInput& input, Port arrived_on) {
    done_ = true;
    std::vector<Send> sends;
    if (!input.advice.empty()) {
      // Advised: strip the flag bit, relay along tree child ports only.
      BitString ports_only;
      for (std::size_t i = 1; i < input.advice.size(); ++i) {
        ports_only.append_bit(input.advice.bit(i));
      }
      for (std::uint64_t p : decode_port_list(ports_only)) {
        sends.push_back(Send{Message::source(), static_cast<Port>(p)});
      }
    } else {
      // Unadvised: flood.
      for (Port p = 0; p < input.degree; ++p) {
        if (p != arrived_on) sends.push_back(Send{Message::source(), p});
      }
    }
    return sends;
  }

  bool done_ = false;
};

}  // namespace

std::unique_ptr<NodeBehavior> HybridWakeupAlgorithm::make_behavior(
    const NodeInput& /*input*/) const {
  return std::make_unique<HybridBehavior>();
}

}  // namespace oraclesize
