#include "core/hybrid_wakeup.h"

#include "bitio/codecs.h"

namespace oraclesize {

namespace {

class HybridBehavior final : public NodeBehavior {
 public:
  void on_start(const NodeInput& input, std::vector<Send>& out) override {
    if (!input.is_source) return;
    relay(input, kNoPort, out);
  }

  void on_receive(const NodeInput& input, const Message& msg, Port from_port,
                  std::vector<Send>& out) override {
    if (done_) return;
    // Trust model split (see header): an advised node relays on the first
    // delivery of any kind — its certified advice says where to forward, so
    // forged content cannot suppress the tree relay. An unadvised node must
    // recognize the source message itself before it can flood it onward; a
    // Byzantine sender that rewrites the kind silences that node's relay.
    // Reliable networks carry only kSource messages, so both rules match
    // the legacy behavior byte for byte there.
    if (input.advice->empty() && msg.kind != MsgKind::kSource) return;
    relay(input, from_port, out);
  }

  void reset(const NodeInput& /*input*/) override { done_ = false; }

 private:
  void relay(const NodeInput& input, Port arrived_on, std::vector<Send>& out) {
    done_ = true;
    const BitString& advice = *input.advice;
    if (!advice.empty()) {
      // Advised: strip the flag bit, relay along tree child ports only.
      ports_only_.clear();
      for (std::size_t i = 1; i < advice.size(); ++i) {
        ports_only_.append_bit(advice.bit(i));
      }
      decode_port_list_into(ports_only_, decoded_ports_);
      for (std::uint64_t p : decoded_ports_) {
        out.push_back(Send{Message::source(), static_cast<Port>(p)});
      }
    } else {
      // Unadvised: flood.
      for (Port p = 0; p < input.degree; ++p) {
        if (p != arrived_on) out.push_back(Send{Message::source(), p});
      }
    }
  }

  bool done_ = false;
  BitString ports_only_;                      // re-encode scratch
  std::vector<std::uint64_t> decoded_ports_;  // decode scratch
};

}  // namespace

std::unique_ptr<NodeBehavior> HybridWakeupAlgorithm::make_behavior(
    const NodeInput& /*input*/) const {
  return std::make_unique<HybridBehavior>();
}

}  // namespace oraclesize
