#include "core/wakeup.h"

#include "bitio/codecs.h"

namespace oraclesize {

namespace {

class WakeupTreeBehavior final : public NodeBehavior {
 public:
  void on_start(const NodeInput& input, std::vector<Send>& out) override {
    if (!input.is_source) return;  // the wakeup constraint
    forward(input, out);
  }

  void on_receive(const NodeInput& input, const Message& /*msg*/,
                  Port /*from_port*/, std::vector<Send>& out) override {
    // Advice-certified relay: the oracle's port list, not the message
    // content, carries the forwarding instruction, so the first delivery of
    // ANY kind wakes the tree-cast. Byzantine content forging cannot
    // suppress the relay (only the sender's own silence could). On a
    // reliable network every message is kSource, so this is byte-identical
    // to the content-trusting rule there.
    if (done_) return;
    forward(input, out);
  }

  void reset(const NodeInput& /*input*/) override { done_ = false; }

 private:
  void forward(const NodeInput& input, std::vector<Send>& out) {
    done_ = true;
    decode_port_list_into(*input.advice, ports_);
    for (std::uint64_t p : ports_) {
      out.push_back(Send{Message::source(), static_cast<Port>(p)});
    }
  }

  bool done_ = false;
  std::vector<std::uint64_t> ports_;  // decode scratch, capacity recycled
};

}  // namespace

std::unique_ptr<NodeBehavior> WakeupTreeAlgorithm::make_behavior(
    const NodeInput& /*input*/) const {
  return std::make_unique<WakeupTreeBehavior>();
}

}  // namespace oraclesize
