#include "core/wakeup.h"

#include "bitio/codecs.h"

namespace oraclesize {

namespace {

class WakeupTreeBehavior final : public NodeBehavior {
 public:
  std::vector<Send> on_start(const NodeInput& input) override {
    if (!input.is_source) return {};  // the wakeup constraint
    return forward(input);
  }

  std::vector<Send> on_receive(const NodeInput& input, const Message& msg,
                               Port /*from_port*/) override {
    if (msg.kind != MsgKind::kSource || done_) return {};
    return forward(input);
  }

 private:
  std::vector<Send> forward(const NodeInput& input) {
    done_ = true;
    std::vector<Send> sends;
    for (std::uint64_t p : decode_port_list(input.advice)) {
      sends.push_back(Send{Message::source(), static_cast<Port>(p)});
    }
    return sends;
  }

  bool done_ = false;
};

}  // namespace

std::unique_ptr<NodeBehavior> WakeupTreeAlgorithm::make_behavior(
    const NodeInput& /*input*/) const {
  return std::make_unique<WakeupTreeBehavior>();
}

}  // namespace oraclesize
