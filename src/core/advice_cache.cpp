#include "core/advice_cache.h"

#include <chrono>
#include <utility>

namespace oraclesize {
namespace {

// Fixed bookkeeping charge per entry: map node, key tuple, shared-future
// control block, LRU list node. An estimate, but a deterministic one — the
// budget semantics only need sizes that are stable across runs.
constexpr std::uint64_t kEntryOverheadBytes = 160;

}  // namespace

std::uint64_t AdviceCache::advice_bytes(const std::vector<BitString>& advice) {
  std::uint64_t total = sizeof(std::vector<BitString>);
  for (const BitString& bits : advice) {
    total += sizeof(BitString) + ((bits.size() + 63) / 64) * 8;
  }
  return total;
}

AdviceCache::Lookup AdviceCache::lookup(const PortGraph& g,
                                        const Oracle& oracle, NodeId source) {
  Key key{&g, oracle.name(), source};
  std::promise<Computed> promise;
  std::shared_future<Computed> future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      owner = true;
      ++misses_;
      future = promise.get_future().share();
      entries_.emplace(key, Entry{future, 0, false, lru_.end()});
    } else {
      ++hits_;
      future = it->second.future;
      if (it->second.completed && it->second.lru != lru_.begin()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru);
      }
    }
  }

  if (owner) {
    // Compute outside the lock so concurrent lookups of other keys proceed
    // and same-key lookups block on the future, not the mutex.
    std::uint64_t entry_bytes = kEntryOverheadBytes + std::get<1>(key).size();
    try {
      const auto started = std::chrono::steady_clock::now();
      auto advice = std::make_shared<const std::vector<BitString>>(
          oracle.advise(g, source));
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - started)
              .count());
      entry_bytes += advice_bytes(*advice);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        advise_ns_ += ns;
        complete_entry_locked(key, entry_bytes);
      }
      promise.set_value(Computed{std::move(advice), ns});
    } catch (...) {
      promise.set_exception(std::current_exception());
      // Poisoned entries stay resident (repeat lookups rethrow) but are
      // charged only their bookkeeping, and remain evictable like any
      // other completed entry.
      std::lock_guard<std::mutex> lock(mutex_);
      complete_entry_locked(key, entry_bytes);
    }
  }

  const Computed& computed = future.get();  // rethrows an advise() failure
  return Lookup{computed.advice, owner ? computed.advise_ns : 0, !owner};
}

void AdviceCache::complete_entry_locked(const Key& key,
                                        std::uint64_t entry_bytes) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;  // clear() raced the computation
  it->second.bytes = entry_bytes;
  it->second.completed = true;
  lru_.push_front(key);
  it->second.lru = lru_.begin();
  bytes_ += entry_bytes;
  evict_to_budget_locked();
}

void AdviceCache::evict_to_budget_locked() {
  if (budget_ == 0) return;
  // A single oversized entry may be evicted immediately after insertion —
  // its waiters are unaffected (they hold the shared future), and the next
  // lookup of that key recomputes. Under a tiny budget this degenerates to
  // deliberate churn, which the stress tests lean on.
  while (bytes_ > budget_ && !lru_.empty()) {
    auto it = entries_.find(lru_.back());
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

AdviceCache::Stats AdviceCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{entries_.size(), hits_,   misses_,
               advise_ns_,      bytes_,  evictions_};
}

std::uint64_t AdviceCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

void AdviceCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
  advise_ns_ = 0;
}

}  // namespace oraclesize
