#include "core/advice_cache.h"

#include <chrono>
#include <utility>

namespace oraclesize {

AdviceCache::Lookup AdviceCache::lookup(const PortGraph& g,
                                        const Oracle& oracle, NodeId source) {
  Key key{&g, oracle.name(), source};
  std::promise<Computed> promise;
  std::shared_future<Computed> future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      owner = true;
      ++misses_;
      future = promise.get_future().share();
      entries_.emplace(std::move(key), future);
    } else {
      ++hits_;
      future = it->second;
    }
  }

  if (owner) {
    // Compute outside the lock so concurrent lookups of other keys proceed
    // and same-key lookups block on the future, not the mutex.
    try {
      const auto started = std::chrono::steady_clock::now();
      auto advice = std::make_shared<const std::vector<BitString>>(
          oracle.advise(g, source));
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - started)
              .count());
      {
        std::lock_guard<std::mutex> lock(mutex_);
        advise_ns_ += ns;
      }
      promise.set_value(Computed{std::move(advice), ns});
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }

  const Computed& computed = future.get();  // rethrows an advise() failure
  return Lookup{computed.advice, owner ? computed.advise_ns : 0, !owner};
}

AdviceCache::Stats AdviceCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{entries_.size(), hits_, misses_, advise_ns_};
}

void AdviceCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
  advise_ns_ = 0;
}

}  // namespace oraclesize
