// The Theorem 2.1 wakeup algorithm.
//
// Paired with TreeWakeupOracle: each node's advice decodes to the ports
// leading to its children in a source-rooted spanning tree. The scheme is a
// pure tree-cast — the source sends M on all its child ports; every other
// node stays silent until M arrives, then forwards M on its own child ports
// once. Exactly n-1 messages, valid under total asynchrony, never reads
// id(v) (anonymous-safe), only ever sends the constant-size message M.
#pragma once

#include "sim/scheme.h"

namespace oraclesize {

class WakeupTreeAlgorithm final : public Algorithm {
 public:
  std::unique_ptr<NodeBehavior> make_behavior(
      const NodeInput& input) const override;
  std::string name() const override { return "wakeup-tree"; }
  bool is_wakeup() const override { return true; }
  bool reusable() const override { return true; }
};

}  // namespace oraclesize
