// The Theorem 2.1 wakeup algorithm.
//
// Paired with TreeWakeupOracle: each node's advice decodes to the ports
// leading to its children in a source-rooted spanning tree. The scheme is a
// pure tree-cast — the source sends M on all its child ports; every other
// node stays silent until M arrives, then forwards M on its own child ports
// once. Exactly n-1 messages, valid under total asynchrony, never reads
// id(v) (anonymous-safe), only ever sends the constant-size message M.
//
// Trust model: the relay is advice-certified — a node forwards on the first
// delivery of ANY kind, because the oracle's port list (not the message
// content) is the forwarding instruction. Under the Byzantine layer
// (sim/adversary_plan.h) this makes the full-advice tree-cast immune to
// content forging, the "extra advice bits buy back robustness" end of the
// E16 sweep. On reliable networks only kSource messages exist, so the rule
// is byte-identical to a content-trusting relay there.
#pragma once

#include "sim/scheme.h"

namespace oraclesize {

class WakeupTreeAlgorithm final : public Algorithm {
 public:
  std::unique_ptr<NodeBehavior> make_behavior(
      const NodeInput& input) const override;
  std::string name() const override { return "wakeup-tree"; }
  bool is_wakeup() const override { return true; }
  bool reusable() const override { return true; }
};

}  // namespace oraclesize
