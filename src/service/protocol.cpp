#include "service/protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace oraclesize::service {
namespace {

/// Reads exactly n bytes. Returns the byte count actually read: n on
/// success, less on EOF. Throws FrameError on a hard read error.
std::size_t read_exact(int fd, char* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return got;  // EOF
    if (errno == EINTR) continue;
    throw FrameError(std::string("read failed: ") + std::strerror(errno));
  }
  return got;
}

}  // namespace

bool read_frame(int fd, std::string& payload, std::uint32_t max_frame_bytes) {
  char header[4];
  const std::size_t got = read_exact(fd, header, sizeof header);
  if (got == 0) return false;  // clean EOF between frames
  if (got < sizeof header) throw FrameError("truncated length prefix");
  const std::uint32_t len = static_cast<std::uint32_t>(
      static_cast<unsigned char>(header[0]) |
      (static_cast<unsigned char>(header[1]) << 8) |
      (static_cast<unsigned char>(header[2]) << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]))
       << 24));
  if (len == 0) throw FrameError("empty frame");
  if (len > max_frame_bytes) {
    throw FrameError("oversized frame: " + std::to_string(len) +
                     " bytes exceeds the " + std::to_string(max_frame_bytes) +
                     "-byte cap");
  }
  payload.resize(len);
  if (read_exact(fd, payload.data(), len) < len) {
    throw FrameError("truncated payload");
  }
  return true;
}

void write_frame(int fd, std::string_view payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char header[4] = {static_cast<char>(len & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 24) & 0xff)};
  auto write_all = [fd](const char* p, std::size_t n) {
    std::size_t sent = 0;
    while (sent < n) {
      // MSG_NOSIGNAL: a vanished peer yields EPIPE, not a process signal.
      const ssize_t w = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
      if (w >= 0) {
        sent += static_cast<std::size_t>(w);
        continue;
      }
      if (errno == EINTR) continue;
      throw FrameError(std::string("write failed: ") + std::strerror(errno));
    }
  };
  write_all(header, sizeof header);
  write_all(payload.data(), payload.size());
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string digest_hex(std::uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xf];
    digest >>= 4;
  }
  return out;
}

std::map<std::string, std::string> parse_kv(std::string_view body) {
  std::map<std::string, std::string> kv;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) eol = body.size();
    const std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    kv[std::string(line.substr(0, eq))] = std::string(line.substr(eq + 1));
  }
  return kv;
}

void append_kv(std::string& out, std::string_view key,
               std::string_view value) {
  out.append(key);
  out.push_back('=');
  out.append(value);
  out.push_back('\n');
}

void append_kv(std::string& out, std::string_view key, std::uint64_t value) {
  append_kv(out, key, std::string_view(std::to_string(value)));
}

}  // namespace oraclesize::service
