#include "service/advice_service.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace oraclesize::service {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

int bind_unix_listener(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path unusable (empty or longer than " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             " chars): '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket(): ") +
                             std::strerror(errno));
  }
  ::unlink(path.c_str());  // a stale socket file from a dead daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("cannot listen on '" + path + "': " + err);
  }
  return fd;
}

void best_effort_write(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return;
  }
}

}  // namespace

AdviceService::AdviceService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_budget_bytes),
      runner_(config_.jobs),
      requests_total_(registry_.counter("oracled_requests_total")),
      requests_ping_(registry_.counter("oracled_requests_ping")),
      requests_upload_(registry_.counter("oracled_requests_upload")),
      requests_advise_(registry_.counter("oracled_requests_advise")),
      requests_run_(registry_.counter("oracled_requests_run")),
      requests_metrics_(registry_.counter("oracled_requests_metrics")),
      requests_stats_(registry_.counter("oracled_requests_stats")),
      requests_shutdown_(registry_.counter("oracled_requests_shutdown")),
      responses_ok_(registry_.counter("oracled_responses_ok")),
      responses_task_failed_(registry_.counter("oracled_responses_task_failed")),
      responses_error_(registry_.counter("oracled_responses_error")),
      rejected_overload_(registry_.counter("oracled_rejected_overload")),
      expired_deadline_(registry_.counter("oracled_expired_deadline")),
      malformed_frames_(registry_.counter("oracled_malformed_frames")),
      connections_total_(registry_.counter("oracled_connections_total")),
      cache_hits_(registry_.counter("oracled_advice_cache_hits")),
      cache_misses_(registry_.counter("oracled_advice_cache_misses")),
      request_latency_ns_(registry_.histogram("oracled_request_latency_ns")),
      queue_wait_ns_(registry_.histogram("oracled_queue_wait_ns")),
      batch_lanes_(registry_.histogram("oracled_batch_lanes")) {
  if (config_.metrics_socket_path.empty()) {
    config_.metrics_socket_path = config_.socket_path + ".metrics";
  }
}

AdviceService::~AdviceService() {
  shutdown();
  wait();
}

void AdviceService::start() {
  if (started_) throw std::runtime_error("service already started");
  listen_fd_ = bind_unix_listener(config_.socket_path);
  try {
    metrics_fd_ = bind_unix_listener(config_.metrics_socket_path);
  } catch (...) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
    throw;
  }
  started_ = true;
  acceptor_ = std::thread(&AdviceService::acceptor_loop, this);
  dispatcher_ = std::thread(&AdviceService::dispatcher_loop, this);
  exposer_ = std::thread(&AdviceService::exposer_loop, this);
}

void AdviceService::shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    return;  // someone else is already draining
  }
  if (started_) {
    // Stop accepting: accept() on the acceptor thread fails immediately.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::shutdown(metrics_fd_, SHUT_RDWR);
    {
      // Close the queue (new enqueues answer "draining") and release a
      // paused dispatcher so it drains what is already queued.
      std::lock_guard<std::mutex> lock(queue_mu_);
      queue_closed_ = true;
      paused_ = false;
      queue_cv_.notify_all();
    }
    {
      // Unblock idle connection threads. SHUT_RD only: a thread mid-reply
      // still flushes its response before it sees the EOF.
      std::lock_guard<std::mutex> lock(conn_mu_);
      for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    }
  }
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
  }
  stop_cv_.notify_all();
}

void AdviceService::wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mu_);
    stop_cv_.wait(lock, [&] { return stopping_.load(); });
  }
  std::lock_guard<std::mutex> lock(join_mu_);
  if (joined_) return;
  joined_ = true;
  if (acceptor_.joinable()) acceptor_.join();
  if (dispatcher_.joinable()) dispatcher_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> conn_lock(conn_mu_);
    conns = std::move(conn_threads_);
    conn_fds_.clear();
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  if (exposer_.joinable()) exposer_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (metrics_fd_ >= 0) ::close(metrics_fd_);
  listen_fd_ = -1;
  metrics_fd_ = -1;
  if (started_) {
    ::unlink(config_.socket_path.c_str());
    ::unlink(config_.metrics_socket_path.c_str());
  }
}

std::size_t AdviceService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

void AdviceService::pause_dispatching() {
  std::lock_guard<std::mutex> lock(queue_mu_);
  paused_ = true;
}

void AdviceService::resume_dispatching() {
  std::lock_guard<std::mutex> lock(queue_mu_);
  paused_ = false;
  queue_cv_.notify_all();
}

std::string AdviceService::metrics_text() const {
  std::ostringstream out;
  registry_.snapshot().write_prometheus(out);
  const AdviceCache::Stats cs = cache_.stats();
  out << "# TYPE oracled_advice_cache_bytes gauge\n"
      << "oracled_advice_cache_bytes " << cs.bytes << '\n'
      << "# TYPE oracled_advice_cache_entries gauge\n"
      << "oracled_advice_cache_entries " << cs.entries << '\n'
      << "# TYPE oracled_advice_cache_evictions counter\n"
      << "oracled_advice_cache_evictions " << cs.evictions << '\n'
      << "# TYPE oracled_graphs_resident gauge\n"
      << "oracled_graphs_resident " << store_.size() << '\n'
      << "# TYPE oracled_queue_depth gauge\n"
      << "oracled_queue_depth " << queue_depth() << '\n';
  return out.str();
}

void AdviceService::acceptor_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or a hard error: stop accepting)
    }
    connections_total_.add();
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(&AdviceService::connection_loop, this, fd);
  }
}

void AdviceService::connection_loop(int fd) {
  std::string payload;
  for (;;) {
    bool got = false;
    try {
      got = read_frame(fd, payload, config_.max_frame_bytes);
    } catch (const FrameError& e) {
      // Framing violation: one best-effort error frame, then hang up —
      // the stream position is unrecoverable after a bad prefix.
      malformed_frames_.add();
      responses_error_.add();
      std::string reply(1, static_cast<char>(kStatusError));
      reply += "error=";
      reply += e.what();
      reply += '\n';
      try {
        write_frame(fd, reply);
      } catch (const FrameError&) {
      }
      break;
    }
    if (!got) break;  // clean EOF

    requests_total_.add();
    const std::uint8_t opcode = static_cast<std::uint8_t>(payload[0]);
    ServiceResponse response;
    if (opcode == kOpShutdown) {
      requests_shutdown_.add();
      response = ServiceResponse{kStatusOk, "draining=1\n"};
    } else {
      response = handle_frame(payload);
    }
    switch (response.status) {
      case kStatusOk:
        responses_ok_.add();
        break;
      case kStatusTaskFailed:
        responses_task_failed_.add();
        break;
      default:
        responses_error_.add();
        break;
    }
    std::string reply(1, static_cast<char>(response.status));
    reply += response.body;
    try {
      write_frame(fd, reply);
    } catch (const FrameError&) {
      break;
    }
    // The drain starts only after the acknowledgment is on the wire.
    if (opcode == kOpShutdown) shutdown();
  }
  ::close(fd);
}

ServiceResponse AdviceService::error_response(const std::string& message) {
  std::string body;
  append_kv(body, "error", message);
  return ServiceResponse{kStatusError, std::move(body)};
}

ServiceResponse AdviceService::handle_frame(const std::string& payload) {
  const std::uint8_t opcode = static_cast<std::uint8_t>(payload[0]);
  const std::string body = payload.substr(1);
  switch (opcode) {
    case kOpPing: {
      requests_ping_.add();
      std::string out;
      append_kv(out, "service", "oracled");
      append_kv(out, "protocol", std::uint64_t{1});
      return ServiceResponse{kStatusOk, std::move(out)};
    }
    case kOpUpload: {
      requests_upload_.add();
      try {
        const GraphStore::Inserted ins = store_.insert(body, ParseLimits{});
        std::string out;
        append_kv(out, "digest", ins.digest);
        append_kv(out, "nodes",
                  static_cast<std::uint64_t>(ins.graph->num_nodes()));
        append_kv(out, "fresh", std::uint64_t{ins.fresh ? 1 : 0});
        return ServiceResponse{kStatusOk, std::move(out)};
      } catch (const std::invalid_argument& e) {
        return error_response(std::string("bad network: ") + e.what());
      }
    }
    case kOpAdvise:
      requests_advise_.add();
      return enqueue_and_wait(/*is_run=*/false, body);
    case kOpRun:
      requests_run_.add();
      return enqueue_and_wait(/*is_run=*/true, body);
    case kOpMetrics:
      requests_metrics_.add();
      return ServiceResponse{kStatusOk, metrics_text()};
    case kOpStats: {
      requests_stats_.add();
      const AdviceCache::Stats cs = cache_.stats();
      std::string out;
      append_kv(out, "cache_entries", static_cast<std::uint64_t>(cs.entries));
      append_kv(out, "cache_hits", static_cast<std::uint64_t>(cs.hits));
      append_kv(out, "cache_misses", static_cast<std::uint64_t>(cs.misses));
      append_kv(out, "cache_bytes", cs.bytes);
      append_kv(out, "cache_evictions",
                static_cast<std::uint64_t>(cs.evictions));
      append_kv(out, "cache_budget_bytes", cache_.byte_budget());
      append_kv(out, "graphs", static_cast<std::uint64_t>(store_.size()));
      append_kv(out, "queue_depth",
                static_cast<std::uint64_t>(queue_depth()));
      append_kv(out, "queue_limit",
                static_cast<std::uint64_t>(config_.queue_limit));
      append_kv(out, "jobs", static_cast<std::uint64_t>(runner_.jobs()));
      return ServiceResponse{kStatusOk, std::move(out)};
    }
    default:
      return error_response("unknown opcode " + std::to_string(opcode));
  }
}

ServiceResponse AdviceService::enqueue_and_wait(bool is_run,
                                               const std::string& body) {
  Pending pending;
  pending.is_run = is_run;
  try {
    pending.request = parse_task_request(parse_kv(body));
    bind_task(pending.request);  // reject unknown tasks/trees up front
    if (is_run) run_options_for(pending.request);
  } catch (const std::invalid_argument& e) {
    return error_response(e.what());
  }
  pending.graph = store_.find(pending.request.digest);
  if (!pending.graph) {
    return error_response("unknown digest " + pending.request.digest);
  }
  if (pending.request.source >= pending.graph->num_nodes()) {
    return error_response("source out of range");
  }
  pending.enqueued = Clock::now();
  const std::uint64_t deadline_ms = pending.request.deadline_ms
                                        ? pending.request.deadline_ms
                                        : config_.default_deadline_ms;
  pending.deadline = deadline_ms
                         ? pending.enqueued +
                               std::chrono::milliseconds(deadline_ms)
                         : Clock::time_point::max();
  std::future<ServiceResponse> future = pending.promise.get_future();
  const Clock::time_point enqueued = pending.enqueued;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_closed_) return error_response("draining");
    if (queue_.size() >= config_.queue_limit) {
      rejected_overload_.add();
      return error_response("overloaded: " +
                            std::to_string(config_.queue_limit) +
                            " requests already queued");
    }
    queue_.push_back(std::move(pending));
    queue_cv_.notify_all();
  }
  ServiceResponse response = future.get();
  request_latency_ns_.observe(ns_between(enqueued, Clock::now()));
  return response;
}

void AdviceService::dispatcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        return (queue_closed_ && queue_.empty()) ||
               (!paused_ && !queue_.empty());
      });
      if (queue_closed_ && queue_.empty()) return;
      const std::size_t n = std::min(queue_.size(), config_.max_batch);
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    execute_batch(std::move(batch));
  }
}

void AdviceService::execute_batch(std::vector<Pending> batch) {
  const Clock::time_point now = Clock::now();

  struct Item {
    Pending pending;
    TaskBinding binding;
    AdviceCache::Lookup lookup;
  };
  std::vector<Item> live;
  live.reserve(batch.size());
  for (Pending& p : batch) {
    if (now > p.deadline) {
      expired_deadline_.add();
      p.promise.set_value(error_response(
          "deadline expired after " +
          std::to_string(ns_between(p.enqueued, now) / 1'000'000) +
          " ms in queue"));
      continue;
    }
    queue_wait_ns_.observe(ns_between(p.enqueued, now));
    live.push_back(Item{std::move(p), TaskBinding{}, {}});
  }
  if (live.empty()) return;
  batch_lanes_.observe(live.size());

  // Resolve advice through the shared LRU cache. The shared_ptr in the
  // lookup pins the artifact for this batch even if a concurrent
  // completion (or this very batch's later misses) evicts the entry.
  std::vector<TrialSpec> specs;
  std::vector<Item*> run_items;
  for (Item& item : live) {
    Pending& p = item.pending;
    try {
      item.binding = bind_task(p.request);
      item.lookup =
          cache_.lookup(*p.graph, *item.binding.oracle, p.request.source);
      (item.lookup.hit ? cache_hits_ : cache_misses_).add();
    } catch (const std::exception& e) {
      p.promise.set_value(
          error_response(std::string("advise failed: ") + e.what()));
      item.binding.oracle.reset();
      continue;
    }
    const std::vector<BitString>& advice = *item.lookup.advice;
    if (!p.is_run) {
      std::string out;
      append_kv(out, "oracle", item.binding.oracle->name());
      append_kv(out, "algorithm", item.binding.algorithm->name());
      append_kv(out, "oracle_bits", oracle_size_bits(advice));
      append_kv(out, "max_advice_bits", max_advice_bits(advice));
      append_kv(out, "cached", std::uint64_t{item.lookup.hit ? 1 : 0});
      append_kv(out, "advise_ns", item.lookup.advise_ns);
      append_kv(out, "nodes",
                static_cast<std::uint64_t>(p.graph->num_nodes()));
      p.promise.set_value(ServiceResponse{kStatusOk, std::move(out)});
      item.binding.oracle.reset();
      continue;
    }
    specs.emplace_back(p.graph.get(), p.request.source,
                       item.binding.oracle.get(), item.binding.algorithm,
                       run_options_for(p.request), item.lookup.advice);
    run_items.push_back(&item);
  }
  if (specs.empty()) return;

  // One BatchRunner pass serves the whole micro-batch; trials are
  // fault-isolated, so one poisoned request cannot take down its batch.
  const std::vector<TaskReport> reports = runner_.run(specs);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const TaskReport& report = reports[i];
    Pending& p = run_items[i]->pending;
    if (report.failed()) {
      p.promise.set_value(error_response(report.error));
      continue;
    }
    std::string out;
    append_kv(out, "status", to_string(report.run.status));
    append_kv(out, "oracle", report.oracle_name);
    append_kv(out, "algorithm", report.algorithm_name);
    append_kv(out, "oracle_bits", report.oracle_bits);
    append_kv(out, "max_advice_bits", report.max_advice_bits);
    append_kv(out, "advice_cached",
              std::uint64_t{report.advice_cached ? 1 : 0});
    append_kv(out, "attempts", std::uint64_t{report.attempts});
    append_kv(out, "messages_total", report.run.metrics.messages_total);
    append_kv(out, "bits_sent", report.run.metrics.bits_sent);
    append_kv(out, "deliveries", report.run.metrics.deliveries);
    append_kv(out, "completion_key",
              std::to_string(report.run.metrics.completion_key));
    append_kv(out, "queue_depth_peak", report.run.metrics.queue_depth_peak);
    append_kv(out, "informed",
              static_cast<std::uint64_t>(report.run.informed_count()));
    append_kv(out, "nodes",
              static_cast<std::uint64_t>(p.graph->num_nodes()));
    append_kv(out, "all_informed",
              std::uint64_t{report.run.all_informed ? 1 : 0});
    if (!report.run.violation.empty()) {
      append_kv(out, "violation", report.run.violation);
    }
    append_kv(out, "run_ns", report.run_ns);
    const std::uint8_t status =
        report.ok() ? kStatusOk : kStatusTaskFailed;
    p.promise.set_value(ServiceResponse{status, std::move(out)});
  }
}

void AdviceService::exposer_loop() {
  for (;;) {
    const int fd = ::accept(metrics_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    // Drain whatever request line the scraper sends (if any), then answer.
    // The exposer serves exactly one document, so the request is not
    // parsed — curl, Prometheus, and a bare connect-and-read all work.
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 200) > 0) {
      char buf[1024];
      (void)!::read(fd, buf, sizeof buf);
    }
    const std::string body = metrics_text();
    std::string reply =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    best_effort_write(fd, reply);
    ::close(fd);
  }
}

}  // namespace oraclesize::service
