// Client side of the advice-service protocol.
//
// A thin, blocking wrapper over one connected unix-socket stream: each
// helper sends one frame and waits for the one response frame. The class
// is intentionally not thread-safe — the protocol is strictly
// request/response per connection, so concurrent callers must each open
// their own client (the load generator does exactly that, one per worker).
//
// The raw accessors (fd(), send_raw(), read_reply()) exist for the
// malformed-frame tests: they let a test write a forged length prefix or
// half a payload and observe the server's rejection.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "service/protocol.h"
#include "service/task_catalog.h"

namespace oraclesize::service {

/// Connection or protocol-transport failure (distinct from an error
/// RESPONSE, which arrives as Reply::status == kStatusError).
class ServiceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ServiceClient {
 public:
  struct Reply {
    std::uint8_t status = kStatusError;  ///< the 0/1/2 ladder byte
    std::string body;                    ///< raw text after the status byte
    std::map<std::string, std::string> kv;  ///< parse_kv(body)

    bool ok() const { return status == kStatusOk; }
    /// kv value or "" — responses are text either way.
    std::string field(const std::string& key) const {
      auto it = kv.find(key);
      return it == kv.end() ? std::string() : it->second;
    }
    std::uint64_t field_u64(const std::string& key) const;
  };

  /// Connects; throws ServiceError when the socket cannot be reached.
  explicit ServiceClient(const std::string& socket_path);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  Reply ping();
  Reply upload(const std::string& graph_text);
  Reply advise(const TaskRequest& request);
  Reply run(const TaskRequest& request);
  Reply metrics();
  Reply stats();
  Reply shutdown_server();

  /// One request frame -> one response frame. Throws ServiceError when
  /// the connection dies mid-exchange.
  Reply request(std::uint8_t opcode, const std::string& body);

  // ---- Raw access for protocol tests ----
  int fd() const noexcept { return fd_; }
  /// Writes bytes verbatim (no framing). Throws ServiceError on failure.
  void send_raw(const void* data, std::size_t n);
  /// Reads one response frame; false on EOF (server hung up).
  bool read_reply(Reply& reply);

 private:
  int fd_ = -1;
};

}  // namespace oraclesize::service
