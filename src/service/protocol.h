// Wire protocol of the advice service: length-prefixed frames over a local
// stream socket.
//
// A frame is a 4-byte little-endian payload length followed by exactly that
// many payload bytes. Request payloads start with a one-byte opcode;
// response payloads start with a one-byte status from the CLI's exit
// ladder (0 = solved / ok, 1 = the task failed — a reportable result,
// 2 = infrastructure error). The rest of the payload is text: either a
// raw document (an uploaded network, a Prometheus scrape) or newline-
// separated `key=value` fields.
//
// Networks are content-addressed: Upload parses the text, re-serializes it
// canonically, and replies with the FNV-1a 64 digest of the canonical
// bytes. Advise/Run requests then name graphs by digest only — a graph
// crosses the wire once, however many requests reference it.
//
// Framing violations (empty frame, length prefix above the negotiated cap,
// a payload cut short) raise FrameError; the server answers with one
// best-effort error frame and drops the connection, so a confused or
// hostile peer cannot wedge a worker on a half-frame.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

namespace oraclesize::service {

// Request opcodes (first payload byte).
inline constexpr std::uint8_t kOpPing = 1;
inline constexpr std::uint8_t kOpUpload = 2;
inline constexpr std::uint8_t kOpAdvise = 3;
inline constexpr std::uint8_t kOpRun = 4;
inline constexpr std::uint8_t kOpMetrics = 5;
inline constexpr std::uint8_t kOpStats = 6;
inline constexpr std::uint8_t kOpShutdown = 7;

// Response status (first payload byte) — the CLI exit ladder.
inline constexpr std::uint8_t kStatusOk = 0;
inline constexpr std::uint8_t kStatusTaskFailed = 1;
inline constexpr std::uint8_t kStatusError = 2;

/// Default cap on one frame's payload. Large enough for a multi-megabyte
/// network upload, small enough that a forged length prefix cannot drive
/// an allocation anywhere near memory exhaustion.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 16u << 20;

/// A malformed or truncated frame, or a socket-level failure mid-frame.
class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Reads one complete frame payload from a connected stream socket.
/// Returns false on clean EOF (no bytes of a new frame); throws FrameError
/// on an empty frame, a length prefix above `max_frame_bytes`, EOF inside
/// a frame, or a read error.
bool read_frame(int fd, std::string& payload, std::uint32_t max_frame_bytes);

/// Writes one frame (length prefix + payload). Throws FrameError when the
/// peer is gone or the write fails.
void write_frame(int fd, std::string_view payload);

/// FNV-1a 64-bit over the bytes — the content digest Upload replies with.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// The digest as 16 lowercase hex characters (the wire spelling).
std::string digest_hex(std::uint64_t digest);

/// Parses newline-separated `key=value` fields. Lines without '=' and
/// empty lines are ignored; a repeated key keeps the last value.
std::map<std::string, std::string> parse_kv(std::string_view body);

/// Appends one `key=value\n` field.
void append_kv(std::string& out, std::string_view key, std::string_view value);
void append_kv(std::string& out, std::string_view key, std::uint64_t value);

}  // namespace oraclesize::service
