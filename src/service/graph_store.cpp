#include "service/graph_store.h"

#include <utility>

#include "service/protocol.h"

namespace oraclesize::service {

GraphStore::Inserted GraphStore::insert(const std::string& graph_text,
                                        const ParseLimits& limits) {
  PortGraph parsed = from_text(graph_text, limits);  // throws on bad input
  const std::string canonical = to_text(parsed);
  const std::string digest = digest_hex(fnv1a64(canonical));

  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(digest);
  if (it != graphs_.end()) return Inserted{digest, it->second, false};
  auto stored = std::make_shared<const PortGraph>(std::move(parsed));
  graphs_.emplace(digest, stored);
  return Inserted{digest, std::move(stored), true};
}

std::shared_ptr<const PortGraph> GraphStore::find(
    const std::string& digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(digest);
  return it == graphs_.end() ? nullptr : it->second;
}

std::size_t GraphStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graphs_.size();
}

}  // namespace oraclesize::service
