// The long-running advice service: `oracled`'s engine room.
//
// AdviceService turns the library's one-shot pipeline (oracle -> advice ->
// execution -> report) into a daemon that serves traffic. The paper's
// shape maps directly: advice artifacts are the warm state (one advise()
// per distinct (graph, oracle, source), memoized in a byte-budgeted LRU
// AdviceCache), runs are the requests, and oracle bits are the per-request
// cost the metrics report.
//
// Threads:
//  * an ACCEPTOR listening on a unix stream socket, one CONNECTION thread
//    per client speaking the service/protocol.h framing;
//  * a DISPATCHER that pops bounded-queue work in small batches, resolves
//    advice through the shared AdviceCache (the shared_ptr rides in
//    TrialSpec::advice, so an entry evicted mid-flight stays alive for its
//    holders), and executes run requests on the existing BatchRunner pool;
//  * a METRICS EXPOSER answering HTTP GETs on <socket>.metrics with the
//    Prometheus text rendition of the service's MetricsRegistry.
//
// Flow control: the request queue is bounded (a full queue answers
// "overloaded" immediately — backpressure, not buffering), every queued
// request may carry a deadline (expired requests are rejected before
// execution, never run half-heartedly), and shutdown() drains: accepting
// stops, queued work completes, responses flush, then the threads join.
//
// Identity contract: a run answered by the service is field-identical to
// the same TrialSpec executed directly on a BatchRunner — the dispatcher
// adds queueing and caching around the execution, never inside it.
// bench_perf --service samples both sides and the perf_service gate pins
// the comparison in CI.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/advice_cache.h"
#include "core/batch_runner.h"
#include "service/graph_store.h"
#include "service/protocol.h"
#include "service/task_catalog.h"
#include "sim/metrics_registry.h"

namespace oraclesize::service {

struct ServiceConfig {
  std::string socket_path;
  /// Unix socket of the HTTP metrics exposer; "" = socket_path + ".metrics".
  std::string metrics_socket_path;
  std::size_t jobs = 1;  ///< BatchRunner workers; 0 = hardware concurrency
  /// AdviceCache byte budget; 0 = unbounded (no eviction).
  std::uint64_t cache_budget_bytes = 0;
  std::size_t queue_limit = 256;  ///< pending advise/run requests
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::size_t max_batch = 16;  ///< dispatcher micro-batch size
  /// Applied to requests that carry no deadline_ms of their own; 0 = none.
  std::uint64_t default_deadline_ms = 0;
};

/// One response: the status ladder byte plus a text body.
struct ServiceResponse {
  std::uint8_t status = kStatusError;
  std::string body;
};

class AdviceService {
 public:
  explicit AdviceService(ServiceConfig config);
  ~AdviceService();  // initiates shutdown and joins everything

  AdviceService(const AdviceService&) = delete;
  AdviceService& operator=(const AdviceService&) = delete;

  /// Binds both sockets and launches the threads. Throws
  /// std::runtime_error on any setup failure (nothing is left running).
  void start();

  /// Graceful drain: stop accepting, reject new work, finish queued work,
  /// flush responses, stop the threads. Idempotent; safe from any thread
  /// (including a connection thread serving a Shutdown request).
  void shutdown();

  /// Blocks until shutdown() has been initiated (by a signal handler
  /// thread, a Shutdown request, or a direct call) and every service
  /// thread has been joined. Call from the owning thread only.
  void wait();

  const ServiceConfig& config() const noexcept { return config_; }
  bool started() const noexcept { return started_; }

  // ---- Introspection (tests, bench, the Stats opcode) ----
  AdviceCache::Stats cache_stats() const { return cache_.stats(); }
  std::size_t graphs_resident() const { return store_.size(); }
  std::size_t queue_depth() const;
  /// The document the exposer serves: the registry in Prometheus text
  /// format plus gauge lines for cache bytes/entries, resident graphs,
  /// and queue depth.
  std::string metrics_text() const;

  /// Test/bench seam: holds the dispatcher before its next pop so a
  /// harness can stage queue contents deterministically (fill to the
  /// limit for an overload, let a deadline lapse). resume_dispatching()
  /// releases it. Shutdown also releases a paused dispatcher.
  void pause_dispatching();
  void resume_dispatching();

 private:
  struct Pending {
    bool is_run = false;  ///< false = advise-only
    TaskRequest request;
    std::shared_ptr<const PortGraph> graph;
    std::chrono::steady_clock::time_point enqueued;
    /// Absolute queue deadline; time_point::max() = none.
    std::chrono::steady_clock::time_point deadline;
    std::promise<ServiceResponse> promise;
  };

  void acceptor_loop();
  void connection_loop(int fd);
  void dispatcher_loop();
  void exposer_loop();

  /// Handles one decoded request frame on a connection thread. Queued
  /// opcodes (advise/run) block on the dispatcher's response future.
  ServiceResponse handle_frame(const std::string& payload);
  ServiceResponse enqueue_and_wait(bool is_run, const std::string& body);
  void execute_batch(std::vector<Pending> batch);
  static ServiceResponse error_response(const std::string& message);

  ServiceConfig config_;
  GraphStore store_;
  AdviceCache cache_;
  BatchRunner runner_;
  MetricsRegistry registry_;

  // Instruments, registered before any worker starts (stable references).
  Counter& requests_total_;
  Counter& requests_ping_;
  Counter& requests_upload_;
  Counter& requests_advise_;
  Counter& requests_run_;
  Counter& requests_metrics_;
  Counter& requests_stats_;
  Counter& requests_shutdown_;
  Counter& responses_ok_;
  Counter& responses_task_failed_;
  Counter& responses_error_;
  Counter& rejected_overload_;
  Counter& expired_deadline_;
  Counter& malformed_frames_;
  Counter& connections_total_;
  Counter& cache_hits_;
  Counter& cache_misses_;
  Histogram& request_latency_ns_;
  Histogram& queue_wait_ns_;
  Histogram& batch_lanes_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  int listen_fd_ = -1;
  int metrics_fd_ = -1;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool queue_closed_ = false;
  bool paused_ = false;

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;

  std::thread acceptor_;
  std::thread dispatcher_;
  std::thread exposer_;

  std::mutex join_mu_;
  bool joined_ = false;
  std::condition_variable stop_cv_;
  std::mutex stop_mu_;
};

}  // namespace oraclesize::service
