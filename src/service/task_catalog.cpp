#include "service/task_catalog.h"

#include <stdexcept>

#include "oracle/light_broadcast_oracle.h"
#include "oracle/partial_tree_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "oracle/trivial_oracles.h"
#include "service/protocol.h"

namespace oraclesize::service {
namespace {

std::uint64_t to_u64(const std::string& s, const std::string& what) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad " + what + ": '" + s + "'");
  }
}

double to_double(const std::string& s, const std::string& what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad " + what + ": '" + s + "'");
  }
}

TreeKind parse_tree(const std::string& name) {
  if (name == "bfs") return TreeKind::kBfs;
  if (name == "dfs") return TreeKind::kDfs;
  if (name == "kruskal") return TreeKind::kKruskal;
  if (name == "light") return TreeKind::kLight;
  throw std::invalid_argument("unknown tree '" + name + "'");
}

SchedulerKind parse_scheduler(const std::string& name) {
  if (name == "sync") return SchedulerKind::kSynchronous;
  if (name == "random") return SchedulerKind::kAsyncRandom;
  if (name == "fifo") return SchedulerKind::kAsyncFifo;
  if (name == "lifo") return SchedulerKind::kAsyncLifo;
  if (name == "linkfifo") return SchedulerKind::kAsyncLinkFifo;
  if (name == "adversarial") return SchedulerKind::kAsyncAdversarial;
  throw std::invalid_argument("unknown scheduler '" + name + "'");
}

}  // namespace

TaskRequest parse_task_request(const std::map<std::string, std::string>& kv) {
  TaskRequest req;
  auto get = [&kv](const char* key) -> const std::string* {
    auto it = kv.find(key);
    return it == kv.end() ? nullptr : &it->second;
  };
  if (const auto* v = get("digest")) req.digest = *v;
  if (const auto* v = get("task")) req.task = *v;
  if (const auto* v = get("source")) {
    req.source = static_cast<NodeId>(to_u64(*v, "source"));
  }
  if (const auto* v = get("tree")) req.tree = *v;
  if (const auto* v = get("fraction")) {
    req.fraction = to_double(*v, "fraction");
  }
  if (const auto* v = get("oracle_seed")) {
    req.oracle_seed = to_u64(*v, "oracle_seed");
  }
  if (const auto* v = get("scheduler")) req.scheduler = *v;
  if (const auto* v = get("seed")) req.seed = to_u64(*v, "seed");
  if (const auto* v = get("fault_drop")) {
    req.fault_drop = to_double(*v, "fault_drop");
    if (req.fault_drop < 0.0 || req.fault_drop > 1.0) {
      throw std::invalid_argument("fault_drop must be in [0, 1]");
    }
  }
  if (const auto* v = get("fault_seed")) {
    req.fault_seed = to_u64(*v, "fault_seed");
  }
  if (const auto* v = get("deadline_ms")) {
    req.deadline_ms = to_u64(*v, "deadline_ms");
  }
  if (req.digest.empty()) throw std::invalid_argument("missing digest");
  return req;
}

std::string encode_task_request(const TaskRequest& req, bool run) {
  std::string body;
  append_kv(body, "digest", req.digest);
  append_kv(body, "task", req.task);
  append_kv(body, "source", static_cast<std::uint64_t>(req.source));
  if (!req.tree.empty()) append_kv(body, "tree", req.tree);
  if (req.task == "hybrid") {
    append_kv(body, "fraction", std::to_string(req.fraction));
    append_kv(body, "oracle_seed", req.oracle_seed);
  }
  if (run) {
    append_kv(body, "scheduler", req.scheduler);
    append_kv(body, "seed", req.seed);
    if (req.fault_drop > 0.0) {
      append_kv(body, "fault_drop", std::to_string(req.fault_drop));
      append_kv(body, "fault_seed", req.fault_seed);
    }
    if (req.deadline_ms > 0) append_kv(body, "deadline_ms", req.deadline_ms);
  }
  return body;
}

TaskBinding bind_task(const TaskRequest& req) {
  TaskBinding binding;
  std::string algorithm_name;
  const bool tree_set = !req.tree.empty();
  const TreeKind tree = tree_set ? parse_tree(req.tree) : TreeKind::kBfs;
  if (req.task == "wakeup") {
    algorithm_name = "wakeup-tree";
    binding.oracle = std::make_unique<TreeWakeupOracle>(tree);
  } else if (req.task == "census") {
    algorithm_name = "census-echo";
    binding.oracle = std::make_unique<TreeWakeupOracle>(tree);
  } else if (req.task == "gossip") {
    algorithm_name = "gossip-tree";
    binding.oracle = std::make_unique<TreeWakeupOracle>(tree);
  } else if (req.task == "broadcast") {
    algorithm_name = "broadcast-B";
    binding.oracle = std::make_unique<LightBroadcastOracle>(
        tree_set ? tree : TreeKind::kLight);
  } else if (req.task == "flooding") {
    algorithm_name = "flooding";
    binding.oracle = std::make_unique<NullOracle>();
  } else if (req.task == "hybrid") {
    algorithm_name = "hybrid-wakeup";
    binding.oracle = std::make_unique<PartialTreeOracle>(
        req.fraction, req.oracle_seed, tree);
  } else {
    throw std::invalid_argument("unknown task '" + req.task + "'");
  }
  binding.algorithm = algorithm_by_name(algorithm_name);
  return binding;
}

RunOptions run_options_for(const TaskRequest& req) {
  RunOptions options;
  options.scheduler = parse_scheduler(req.scheduler);
  options.seed = req.seed;
  options.fault.drop = req.fault_drop;
  options.fault.seed = req.fault_seed;
  return options;
}

}  // namespace oraclesize::service
