#include "service/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace oraclesize::service {

std::uint64_t ServiceClient::Reply::field_u64(const std::string& key) const {
  const std::string v = field(key);
  if (v.empty()) return 0;
  try {
    return std::stoull(v);
  } catch (const std::exception&) {
    return 0;
  }
}

ServiceClient::ServiceClient(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw ServiceError("socket path unusable: '" + socket_path + "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw ServiceError(std::string("socket(): ") + std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw ServiceError("cannot connect to '" + socket_path + "': " + err);
  }
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServiceClient::Reply ServiceClient::request(std::uint8_t opcode,
                                            const std::string& body) {
  std::string payload(1, static_cast<char>(opcode));
  payload += body;
  try {
    write_frame(fd_, payload);
  } catch (const FrameError& e) {
    throw ServiceError(std::string("send failed: ") + e.what());
  }
  Reply reply;
  if (!read_reply(reply)) {
    throw ServiceError("server closed the connection mid-request");
  }
  return reply;
}

bool ServiceClient::read_reply(Reply& reply) {
  std::string payload;
  try {
    if (!read_frame(fd_, payload, kDefaultMaxFrameBytes)) return false;
  } catch (const FrameError& e) {
    throw ServiceError(std::string("receive failed: ") + e.what());
  }
  if (payload.empty()) return false;
  reply.status = static_cast<std::uint8_t>(payload[0]);
  reply.body = payload.substr(1);
  reply.kv = parse_kv(reply.body);
  return true;
}

void ServiceClient::send_raw(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (w >= 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    throw ServiceError(std::string("raw send failed: ") +
                       std::strerror(errno));
  }
}

ServiceClient::Reply ServiceClient::ping() { return request(kOpPing, ""); }

ServiceClient::Reply ServiceClient::upload(const std::string& graph_text) {
  return request(kOpUpload, graph_text);
}

ServiceClient::Reply ServiceClient::advise(const TaskRequest& req) {
  return request(kOpAdvise, encode_task_request(req, /*run=*/false));
}

ServiceClient::Reply ServiceClient::run(const TaskRequest& req) {
  return request(kOpRun, encode_task_request(req, /*run=*/true));
}

ServiceClient::Reply ServiceClient::metrics() {
  return request(kOpMetrics, "");
}

ServiceClient::Reply ServiceClient::stats() { return request(kOpStats, ""); }

ServiceClient::Reply ServiceClient::shutdown_server() {
  return request(kOpShutdown, "");
}

}  // namespace oraclesize::service
