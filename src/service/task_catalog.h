// The request surface of the advice service: which tasks it serves and how
// a wire request becomes (oracle, algorithm, RunOptions).
//
// The catalog mirrors the CLI's task table exactly — same task names, same
// oracle construction, same defaults — so a request answered by `oracled`
// is field-identical to the same spec run through `oraclesize_cli run` or
// a direct BatchRunner batch. bench_perf --service and the perf_service
// gate enforce that identity.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/replay.h"
#include "oracle/oracle.h"
#include "sim/engine.h"

namespace oraclesize::service {

/// One advise or run request, decoded. Field defaults match the CLI's.
struct TaskRequest {
  std::string digest;             ///< names an uploaded network
  std::string task = "wakeup";    ///< wakeup|broadcast|flooding|census|gossip|hybrid
  NodeId source = 0;
  std::string tree;               ///< bfs|dfs|kruskal|light; "" = task default
  double fraction = 0.5;          ///< hybrid: advised fraction
  std::uint64_t oracle_seed = 1;  ///< hybrid: advised-set seed
  // Run-only fields (ignored by advise):
  std::string scheduler = "sync";
  std::uint64_t seed = 1;
  double fault_drop = 0.0;
  std::uint64_t fault_seed = 0;
  /// Queue deadline, relative to receipt; 0 = none. Enforced BEFORE
  /// execution (an expired request is rejected, never run), so it cannot
  /// perturb the result of a request that does run.
  std::uint64_t deadline_ms = 0;
};

/// The (oracle, algorithm) pair a request denotes. The algorithm comes
/// from the shared core/replay.h registry; the oracle is freshly built
/// with a parameter-complete name, so equal requests share cache entries.
struct TaskBinding {
  std::unique_ptr<Oracle> oracle;
  const Algorithm* algorithm = nullptr;
};

/// Decodes wire fields into a TaskRequest. Unknown keys are ignored;
/// malformed values throw std::invalid_argument.
TaskRequest parse_task_request(const std::map<std::string, std::string>& kv);

/// Encodes a request as wire fields (run=false omits the run-only fields).
std::string encode_task_request(const TaskRequest& req, bool run);

/// Builds the oracle and resolves the algorithm. Throws
/// std::invalid_argument on an unknown task or tree name.
TaskBinding bind_task(const TaskRequest& req);

/// Engine options for a run request: scheduler, seed, fault plan. Wakeup
/// enforcement is NOT set here — BatchRunner switches it on from
/// Algorithm::is_wakeup(), exactly as the direct path does.
RunOptions run_options_for(const TaskRequest& req);

}  // namespace oraclesize::service
