// Content-addressed network storage for the advice service.
//
// Clients upload a network once; every later advise/run request names it
// by digest. The digest is computed over the CANONICAL serialization
// (graph/io.h to_text of the parsed graph), so two uploads that differ
// only in comments, whitespace, or line order of the same structure
// resolve to the same entry.
//
// Graphs are held as shared_ptr<const PortGraph> and are pinned for the
// store's lifetime. That pin is load-bearing: core/advice_cache.h keys
// advice by graph ADDRESS, so a stored graph must never move or die while
// the service's cache may reference it.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "graph/io.h"

namespace oraclesize::service {

class GraphStore {
 public:
  struct Inserted {
    std::string digest;  ///< 16 lowercase hex chars
    std::shared_ptr<const PortGraph> graph;
    bool fresh = false;  ///< true when this upload created the entry
  };

  /// Parses, validates, canonicalizes, and stores the network. Throws
  /// GraphParseError (std::invalid_argument) on malformed input; the store
  /// is unchanged in that case. Re-uploading an existing network is a
  /// cheap no-op that returns fresh == false.
  Inserted insert(const std::string& graph_text, const ParseLimits& limits);

  /// The graph for a digest, or nullptr when unknown.
  std::shared_ptr<const PortGraph> find(const std::string& digest) const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const PortGraph>> graphs_;
};

}  // namespace oraclesize::service
