#include "sim/scheduler.h"

#include <cassert>

#include "lowerbound/counting_adversary.h"

namespace oraclesize {

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kSynchronous:
      return "sync";
    case SchedulerKind::kAsyncRandom:
      return "async-random";
    case SchedulerKind::kAsyncFifo:
      return "async-fifo";
    case SchedulerKind::kAsyncLifo:
      return "async-lifo";
    case SchedulerKind::kAsyncLinkFifo:
      return "async-link-fifo";
    case SchedulerKind::kAsyncAdversarial:
      return "async-adversarial";
  }
  return "unknown";
}

const char* to_string(SchedulerKeying keying) {
  switch (keying) {
    case SchedulerKeying::kCounter:
      return "counter";
    case SchedulerKeying::kStream:
      return "stream";
  }
  return "unknown";
}

namespace {

// Domain-separation tag for delivery prekeys — the scheduler's sibling of
// FaultPlan's kMessageTag, so enabling faults never perturbs delays and
// vice versa.
constexpr std::uint64_t kDelayTag = 0x64656c6179ULL;  // "delay"

}  // namespace

Scheduler::Scheduler(SchedulerKind kind, std::uint64_t seed,
                     std::uint32_t max_delay, SchedulerKeying keying)
    : kind_(kind),
      keying_(keying),
      rng_(seed),
      seed_(seed),
      max_delay_(max_delay == 0 ? 1 : max_delay) {}

Scheduler::~Scheduler() = default;

std::uint64_t Scheduler::delivery_prekey(std::uint64_t seq,
                                         std::uint64_t link) noexcept {
  return mix64(kDelayTag ^ mix64(seq ^ mix64(link)));
}

std::uint32_t Scheduler::counter_delay(std::uint64_t seed,
                                       std::uint64_t prekey,
                                       std::uint32_t max_delay) noexcept {
  if (max_delay == 0) max_delay = 1;
  return static_cast<std::uint32_t>(mix64(seed ^ prekey) % max_delay);
}

void Scheduler::reset(SchedulerKind kind, std::uint64_t seed,
                      std::uint32_t max_delay, std::size_t num_links,
                      SchedulerKeying keying) {
  kind_ = kind;
  keying_ = keying;
  rng_ = Rng(seed);
  seed_ = seed;
  max_delay_ = max_delay == 0 ? 1 : max_delay;
  link_clock_.assign(kind == SchedulerKind::kAsyncLinkFifo ? num_links : 0,
                     0);
  probes_ = 0;
  if (kind == SchedulerKind::kAsyncAdversarial) {
    // Every directed link is a candidate edge; one in four is special —
    // enough specials that the adversary's majority answers keep pressure
    // on throughout the run, few enough that special status stays scarce.
    num_candidates_ = num_links == 0 ? 1 : num_links;
    link_state_.assign(num_candidates_, 0);
    const std::size_t specials =
        num_candidates_ / 4 == 0 ? 1 : num_candidates_ / 4;
    adversary_ = std::make_unique<CountingAdversary>(
        EdgeDiscoveryProblem{num_candidates_, specials});
  } else {
    // No deallocation on the common path: link_state_ keeps its capacity,
    // and the adversary (heap state) is only dropped if one was armed.
    num_candidates_ = 0;
    link_state_.clear();
    adversary_.reset();
  }
}

std::int64_t Scheduler::delivery_key(std::int64_t now, std::uint64_t seq,
                                     std::uint64_t link) {
  switch (kind_) {
    case SchedulerKind::kSynchronous:
      return now + 1;
    case SchedulerKind::kAsyncRandom: {
      const std::int64_t delay =
          keying_ == SchedulerKeying::kCounter
              ? static_cast<std::int64_t>(
                    counter_delay(seed_, delivery_prekey(seq, link),
                                  max_delay_))
              : static_cast<std::int64_t>(rng_.below(max_delay_));
      return now + 1 + delay;
    }
    case SchedulerKind::kAsyncFifo:
      return static_cast<std::int64_t>(seq);
    case SchedulerKind::kAsyncLifo:
      return -static_cast<std::int64_t>(seq);
    case SchedulerKind::kAsyncLinkFifo: {
      // Random per-message delay, clamped so this link's deliveries stay in
      // send order (FIFO channel), while distinct links race freely.
      const std::int64_t delay =
          keying_ == SchedulerKeying::kCounter
              ? static_cast<std::int64_t>(
                    counter_delay(seed_, delivery_prekey(seq, link),
                                  max_delay_))
              : static_cast<std::int64_t>(rng_.below(max_delay_));
      const std::int64_t candidate = now + 1 + delay;
      assert(link < link_clock_.size() &&
             "reset() must size the link-clock table to cover every link");
      std::int64_t& clock = link_clock_[link];
      clock = (candidate > clock) ? candidate : clock + 1;
      return clock;
    }
    case SchedulerKind::kAsyncAdversarial: {
      // Online Lemma 2.1: a link's first use probes the edge-discovery
      // adversary, whose majority answer decides whether the link is
      // "special" (a channel the scheme must discover → starved at twice
      // the regular penalty). Subsequent uses keep the verdict: special
      // links stay slow, regular links settle to the fast lane. No RNG is
      // consumed, so the schedule is a pure function of the probe history.
      if (link >= link_state_.size()) link_state_.resize(link + 1, 0);
      std::uint8_t& st = link_state_[link];
      if (st == 0) {
        bool special = false;
        if (adversary_ && !adversary_->resolved() &&
            probes_ < num_candidates_) {
          special = adversary_->answer(static_cast<std::size_t>(probes_))
                        .special;
          ++probes_;
        }
        st = special ? 2 : 1;
        const std::int64_t delay = static_cast<std::int64_t>(max_delay_);
        return now + 1 + (special ? 2 * delay : delay);
      }
      return st == 2 ? now + 1 + static_cast<std::int64_t>(max_delay_)
                     : now + 1;
    }
  }
  return now + 1;
}

}  // namespace oraclesize
