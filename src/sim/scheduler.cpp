#include "sim/scheduler.h"

namespace oraclesize {

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kSynchronous:
      return "sync";
    case SchedulerKind::kAsyncRandom:
      return "async-random";
    case SchedulerKind::kAsyncFifo:
      return "async-fifo";
    case SchedulerKind::kAsyncLifo:
      return "async-lifo";
    case SchedulerKind::kAsyncLinkFifo:
      return "async-link-fifo";
  }
  return "unknown";
}

Scheduler::Scheduler(SchedulerKind kind, std::uint64_t seed,
                     std::uint32_t max_delay)
    : kind_(kind), rng_(seed), max_delay_(max_delay == 0 ? 1 : max_delay) {}

void Scheduler::reset(SchedulerKind kind, std::uint64_t seed,
                      std::uint32_t max_delay, std::size_t num_links) {
  kind_ = kind;
  rng_ = Rng(seed);
  max_delay_ = max_delay == 0 ? 1 : max_delay;
  link_clock_.assign(kind == SchedulerKind::kAsyncLinkFifo ? num_links : 0,
                     0);
}

std::int64_t Scheduler::delivery_key(std::int64_t now, std::uint64_t seq,
                                     std::uint64_t link) {
  switch (kind_) {
    case SchedulerKind::kSynchronous:
      return now + 1;
    case SchedulerKind::kAsyncRandom:
      return now + 1 + static_cast<std::int64_t>(rng_.below(max_delay_));
    case SchedulerKind::kAsyncFifo:
      return static_cast<std::int64_t>(seq);
    case SchedulerKind::kAsyncLifo:
      return -static_cast<std::int64_t>(seq);
    case SchedulerKind::kAsyncLinkFifo: {
      // Random per-message delay, clamped so this link's deliveries stay in
      // send order (FIFO channel), while distinct links race freely.
      const std::int64_t candidate =
          now + 1 + static_cast<std::int64_t>(rng_.below(max_delay_));
      if (link >= link_clock_.size()) link_clock_.resize(link + 1, 0);
      std::int64_t& clock = link_clock_[link];
      clock = (candidate > clock) ? candidate : clock + 1;
      return clock;
    }
  }
  return now + 1;
}

}  // namespace oraclesize
