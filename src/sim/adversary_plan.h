// Deterministic Byzantine adversary injection for the execution engine.
//
// sim/fault_plan.h models a *benign* misbehaving network: messages are
// lost, duplicated, delayed, nodes crash-stop, advice bits flip at random.
// This header models the stronger adversary the paper's lower bounds are
// really about (the Lemma 2.1 game is adversarial, not stochastic): a
// seeded colluding set of LYING nodes whose outgoing messages are actively
// forged. Three lie mechanisms are supported, each separately tunable and
// separately counted:
//
//  * forging — a lying node's outgoing message content (kind / payload /
//    items) is rewritten by a ByzantineStrategy: uniformly random bits,
//    stale payloads replayed from a bounded buffer of genuine traffic the
//    colluding set has observed, or structured lies (wrong parent / port
//    claims, suppressed source marks) aimed at the tree tasks;
//  * equivocation — within one logical send (one on_start / on_receive
//    batch) the forged content is additionally keyed per link, so
//    different neighbors receive *different* content from the same
//    logical transmission;
//  * inconsistent advice — a per-link PERSISTENT payload distortion keyed
//    on (seed, link) only: each neighbor of a lying node sees an
//    internally-consistent but divergent view of what the node claims its
//    advice told it. Unlike FaultPlan's advice_flip (random bit noise at
//    arm time, visible to the node itself), these lies are targeted and
//    consistent per link — the receiving side can never reconcile them by
//    re-reading.
//
// Ground truth is never forged: the engine's `sender_informed` bookkeeping
// (the paper's informing predicate) rides outside the message, so a forged
// kSource from an uninformed Byzantine node can fool the receiving
// *behavior* but never truly informs the receiver.
//
// Determinism mirrors FaultPlan exactly: every decision is a pure function
// of (plan seed, event coordinates) via SplitMix64 counter keying —
// colluding-set membership on (seed, node), forge/equivocation decisions on
// (seed, node, logical send group), forged content on (seed, group [, link
// when equivocating]), advice lies on (seed, link). The replay buffer is
// filled in delivery order, which is itself deterministic for a fixed run,
// and Byzantine runs always execute on the scalar engine (the sharded and
// seed-batched engines route them there), so the same (seed, graph, params)
// reproduces the same Byzantine execution at any --jobs / --shards.
//
// A disabled plan (`enabled() == false`: no rate, no explicit node count)
// is never consulted: the run takes the legacy reliable path bit for bit
// and allocation-free (pinned by tests/test_goldens.cpp
// ZeroAdversaryPlanIsInvisible and tests/test_zero_alloc.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/port_graph.h"
#include "sim/message.h"

namespace oraclesize {

/// How a lying node rewrites its outgoing messages.
enum class ByzantineStrategy : std::uint8_t {
  kRandomBits,     ///< kind and payload drawn uniformly at random
  kReplay,         ///< stale genuine payloads from the bounded replay buffer
  kStructuredLie,  ///< wrong parent/port claims; kSource demoted to kHello
};

const char* to_string(ByzantineStrategy strategy);

/// The (seed, colluding set, lie mechanism) tuple describing one Byzantine
/// regime. The zero plan (no rate, no node count) is the honest network.
struct AdversaryPlanParams {
  std::uint64_t seed = 0;  ///< adversary randomness; independent of all others
  /// Per-node probability of joining the colluding set. Ignored when
  /// byz_nodes > 0 (an explicit count takes precedence).
  double byz_rate = 0.0;
  /// Explicit colluding-set size: exactly min(byz_nodes, eligible nodes)
  /// lying nodes are sampled without replacement. 0 = use byz_rate.
  std::uint32_t byz_nodes = 0;
  bool byz_source = false;  ///< when false, the source never lies
  ByzantineStrategy strategy = ByzantineStrategy::kRandomBits;
  /// Per-logical-send probability that a lying node forges the batch.
  double forge = 1.0;
  /// Given a forged batch, probability the node equivocates: forged content
  /// is re-keyed per link, so each neighbor receives different content.
  double equivocate = 0.35;
  /// Per-link probability that a lying node serves that neighbor a
  /// persistent, internally-consistent payload lie (inconsistent advice).
  double advice_lie = 0.25;
  /// Bounded replay buffer (kReplay): at most this many genuine messages
  /// observed by the colluding set are retained for replaying.
  std::uint32_t replay_window = 16;

  /// True when any node can lie. A disabled plan is never consulted by the
  /// engine — the zero plan costs nothing and changes nothing.
  bool enabled() const noexcept { return byz_rate > 0 || byz_nodes > 0; }

  friend bool operator==(const AdversaryPlanParams&,
                         const AdversaryPlanParams&) = default;
};

/// What the adversary did to one run — reported next to FaultCounters so
/// robustness experiments can treat Byzantine impact as data.
struct AdversaryCounters {
  std::uint64_t lying_nodes = 0;     ///< colluding-set size this run
  std::uint64_t forged = 0;          ///< messages with rewritten content
  std::uint64_t equivocated = 0;     ///< forged messages keyed per link
  std::uint64_t replayed = 0;        ///< forgeries served from the buffer
  std::uint64_t structured_lies = 0; ///< wrong parent/port claim forgeries
  std::uint64_t advice_lies = 0;     ///< per-link persistent payload lies

  friend bool operator==(const AdversaryCounters&,
                         const AdversaryCounters&) = default;
};

/// An AdversaryPlanParams expanded against a concrete run: colluding-set
/// membership is materialized per node at arm time; forge decisions are
/// answered on demand from the counter keying above. Reusable across runs
/// (arm() re-expands without releasing storage), mirroring FaultPlan.
class AdversaryPlan {
 public:
  /// What one forge() call did to the message it was given.
  struct ForgeOutcome {
    bool forged = false;       ///< content was rewritten
    bool equivocated = false;  ///< content was keyed per link
    bool replayed = false;     ///< content came from the replay buffer
    bool structured = false;   ///< content is a structured wrong claim
    bool advice_lie = false;   ///< the per-link persistent lie applied
  };

  /// Expands `params` for a run over `num_nodes` nodes rooted at `source`.
  void arm(const AdversaryPlanParams& params, std::size_t num_nodes,
           NodeId source);

  /// True when node v is in the colluding set.
  bool lying(NodeId v) const noexcept {
    return !lying_.empty() && lying_[v] != 0;
  }

  std::uint64_t num_lying() const noexcept { return num_lying_; }

  /// Feeds the bounded replay buffer: the engine calls this for every
  /// message delivered to a lying node (the colluding set shares what any
  /// member observes). Beyond replay_window entries the oldest is evicted.
  void observe(const Message& msg);

  std::size_t replay_buffer_size() const noexcept { return replay_.size(); }

  /// Rewrites `msg` in place according to the armed strategy. `group`
  /// identifies the logical send batch (one behavior invocation), `link`
  /// the dense directed-link index, `degree` the sender's degree (bounds
  /// structured port claims). Pure in (params, group, link) plus the
  /// deterministic replay-buffer state; returns what happened.
  ForgeOutcome forge(NodeId v, std::uint64_t group, std::uint64_t link,
                     std::size_t degree, Message& msg);

 private:
  AdversaryPlanParams params_;
  std::vector<char> lying_;  ///< empty when the plan is disabled
  std::uint64_t num_lying_ = 0;
  std::vector<Message> replay_;  ///< bounded ring of observed messages
  std::uint64_t observed_ = 0;   ///< total observe() calls (ring cursor)
};

}  // namespace oraclesize
