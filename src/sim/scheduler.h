// Delivery-order policies for the simulator.
//
// The paper's upper bounds hold under *total asynchrony* (any finite delay,
// any interleaving) and the lower bounds already hold synchronously, so the
// engine supports both extremes plus randomized and adversarial middles:
//
//  * kSynchronous — classic rounds: everything sent in round t arrives in
//    round t+1, deliveries within a round in send order.
//  * kAsyncRandom — each message independently delayed by 1..max_delay
//    (seeded), modelling a benign asynchronous network.
//  * kAsyncFifo — one global FIFO: strictly ordered, single delivery at a
//    time (a degenerate but legal asynchronous executive).
//  * kAsyncLifo — adversarial: always delivers the *most recently sent*
//    pending message first. This is the schedule that exposes
//    hello-after-M races in broadcast scheme B (DESIGN.md deviation #4).
//  * kAsyncLinkFifo — messages on the same directed link arrive in send
//    order (the classic asynchronous message-passing model with FIFO
//    channels), but different links race with independent random delays.
//  * kAsyncAdversarial — the Lemma 2.1 game played online: each directed
//    link's first use is a *probe* answered by the edge-discovery
//    CountingAdversary (lowerbound/counting_adversary.h), and links the
//    adversary marks special are slowed twice as hard as regular ones.
//    The adversary answers by majority to keep the active instance family
//    large, so the links it deems load-bearing — the ones a scheme must
//    discover — are exactly the ones it starves. Fully deterministic: no
//    RNG stream is consumed, every key is a pure function of the probe
//    history, which is itself a function of the execution.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace oraclesize {

class CountingAdversary;  // lowerbound/counting_adversary.h

enum class SchedulerKind {
  kSynchronous,
  kAsyncRandom,
  kAsyncFifo,
  kAsyncLifo,
  kAsyncLinkFifo,
  kAsyncAdversarial,
};

const char* to_string(SchedulerKind kind);

/// How the seeded schedulers (kAsyncRandom, kAsyncLinkFifo) derive their
/// per-message delays.
///
///  * kCounter — the canonical mode: delay is a pure function of
///    (seed, seq, link) via the same SplitMix64 counter keying FaultPlan
///    uses for fault decisions. Because no draw-order stream is consumed,
///    the delivery key of a message depends only on shared per-message
///    state plus the lane's seed — which is what lets the seed-batch
///    executor serve many scheduler seeds from one lockstep pass.
///  * kStream — the legacy mode: delays are drawn from a seeded Rng stream
///    in draw order. Kept bit-exact so trace artifacts recorded before the
///    counter-keyed schedule became canonical still replay; selectable via
///    RunOptions::keying and recorded in the oracletrace header.
enum class SchedulerKeying : std::uint8_t {
  kCounter,
  kStream,
};

const char* to_string(SchedulerKeying keying);

/// Computes the priority key under which a message becomes deliverable.
/// Lower keys deliver first; ties broken by sequence number (FIFO).
class Scheduler {
 public:
  Scheduler(SchedulerKind kind, std::uint64_t seed, std::uint32_t max_delay,
            SchedulerKeying keying = SchedulerKeying::kCounter);
  ~Scheduler();  // out-of-line: unique_ptr of a forward-declared type

  /// Re-arms the scheduler for a fresh run without releasing the link-clock
  /// storage. `num_links` sizes the per-link clock table up front (pass the
  /// number of directed (node, port) slots). For kAsyncLinkFifo it must
  /// cover every link id delivery_key will see — the hot path asserts
  /// instead of growing the table on demand.
  void reset(SchedulerKind kind, std::uint64_t seed, std::uint32_t max_delay,
             std::size_t num_links = 0,
             SchedulerKeying keying = SchedulerKeying::kCounter);

  /// Key for a message sent with sequence number `seq` while the engine was
  /// processing an event with key `now` (0 for on_start sends). `link`
  /// identifies the directed channel as a dense index (the engine uses the
  /// graph's prefix-summed (node, port) offset); only kAsyncLinkFifo
  /// consults it.
  std::int64_t delivery_key(std::int64_t now, std::uint64_t seq,
                            std::uint64_t link);

  /// The seed-independent half of a counter-keyed delay: hash the
  /// per-message identity once, then derive any lane's delay with one more
  /// mix via counter_delay. Mirrors FaultPlan's message_prekey /
  /// message_fault_prekeyed split and exists for the same reason — the
  /// seed-batch executor hashes each message once and asks every
  /// still-active lane for its key.
  static std::uint64_t delivery_prekey(std::uint64_t seq,
                                       std::uint64_t link) noexcept;

  /// Counter-keyed delay in [0, max_delay) for one (seed, prekey) pair.
  /// max_delay == 0 is treated as 1, matching the constructor's clamp.
  static std::uint32_t counter_delay(std::uint64_t seed, std::uint64_t prekey,
                                     std::uint32_t max_delay) noexcept;

  SchedulerKind kind() const noexcept { return kind_; }
  SchedulerKeying keying() const noexcept { return keying_; }

 private:
  SchedulerKind kind_;
  SchedulerKeying keying_;
  Rng rng_;
  std::uint64_t seed_;
  std::uint32_t max_delay_;
  /// Flat per-link FIFO clock, indexed by the dense link id. Zero means
  /// "nothing delivered yet" — identical to the map-based default the
  /// original implementation relied on.
  std::vector<std::int64_t> link_clock_;

  /// kAsyncAdversarial state: the online Lemma 2.1 adversary, a per-link
  /// probe record (0 = unprobed, 1 = regular, 2 = special), and how many
  /// probes it has answered (it throws past resolution, so we guard).
  std::unique_ptr<CountingAdversary> adversary_;
  std::vector<std::uint8_t> link_state_;
  std::uint64_t probes_ = 0;
  std::size_t num_candidates_ = 0;
};

}  // namespace oraclesize
