// Delivery-order policies for the simulator.
//
// The paper's upper bounds hold under *total asynchrony* (any finite delay,
// any interleaving) and the lower bounds already hold synchronously, so the
// engine supports both extremes plus randomized and adversarial middles:
//
//  * kSynchronous — classic rounds: everything sent in round t arrives in
//    round t+1, deliveries within a round in send order.
//  * kAsyncRandom — each message independently delayed by 1..max_delay
//    (seeded), modelling a benign asynchronous network.
//  * kAsyncFifo — one global FIFO: strictly ordered, single delivery at a
//    time (a degenerate but legal asynchronous executive).
//  * kAsyncLifo — adversarial: always delivers the *most recently sent*
//    pending message first. This is the schedule that exposes
//    hello-after-M races in broadcast scheme B (DESIGN.md deviation #4).
//  * kAsyncLinkFifo — messages on the same directed link arrive in send
//    order (the classic asynchronous message-passing model with FIFO
//    channels), but different links race with independent random delays.
//  * kAsyncAdversarial — the Lemma 2.1 game played online: each directed
//    link's first use is a *probe* answered by the edge-discovery
//    CountingAdversary (lowerbound/counting_adversary.h), and links the
//    adversary marks special are slowed twice as hard as regular ones.
//    The adversary answers by majority to keep the active instance family
//    large, so the links it deems load-bearing — the ones a scheme must
//    discover — are exactly the ones it starves. Fully deterministic: no
//    RNG stream is consumed, every key is a pure function of the probe
//    history, which is itself a function of the execution.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace oraclesize {

class CountingAdversary;  // lowerbound/counting_adversary.h

enum class SchedulerKind {
  kSynchronous,
  kAsyncRandom,
  kAsyncFifo,
  kAsyncLifo,
  kAsyncLinkFifo,
  kAsyncAdversarial,
};

const char* to_string(SchedulerKind kind);

/// Computes the priority key under which a message becomes deliverable.
/// Lower keys deliver first; ties broken by sequence number (FIFO).
class Scheduler {
 public:
  Scheduler(SchedulerKind kind, std::uint64_t seed, std::uint32_t max_delay);
  ~Scheduler();  // out-of-line: unique_ptr of a forward-declared type

  /// Re-arms the scheduler for a fresh run without releasing the link-clock
  /// storage. `num_links` sizes the per-link clock table up front (pass the
  /// number of directed (node, port) slots); clocks for links beyond it are
  /// grown on demand, so 0 is always safe.
  void reset(SchedulerKind kind, std::uint64_t seed, std::uint32_t max_delay,
             std::size_t num_links = 0);

  /// Key for a message sent with sequence number `seq` while the engine was
  /// processing an event with key `now` (0 for on_start sends). `link`
  /// identifies the directed channel as a dense index (the engine uses the
  /// graph's prefix-summed (node, port) offset); only kAsyncLinkFifo
  /// consults it.
  std::int64_t delivery_key(std::int64_t now, std::uint64_t seq,
                            std::uint64_t link);

  SchedulerKind kind() const noexcept { return kind_; }

 private:
  SchedulerKind kind_;
  Rng rng_;
  std::uint32_t max_delay_;
  /// Flat per-link FIFO clock, indexed by the dense link id. Zero means
  /// "nothing delivered yet" — identical to the map-based default the
  /// original implementation relied on.
  std::vector<std::int64_t> link_clock_;

  /// kAsyncAdversarial state: the online Lemma 2.1 adversary, a per-link
  /// probe record (0 = unprobed, 1 = regular, 2 = special), and how many
  /// probes it has answered (it throws past resolution, so we guard).
  std::unique_ptr<CountingAdversary> adversary_;
  std::vector<std::uint8_t> link_state_;
  std::uint64_t probes_ = 0;
  std::size_t num_candidates_ = 0;
};

}  // namespace oraclesize
