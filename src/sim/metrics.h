// Execution metrics: the quantities the paper's statements are about.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/port_graph.h"
#include "sim/message.h"

namespace oraclesize {

/// A record of one transmission (kept only when tracing is enabled).
struct SentRecord {
  NodeId from = kNoNode;
  Port port = kNoPort;
  NodeId to = kNoNode;
  MsgKind kind = MsgKind::kControl;
  bool sender_informed = false;  ///< was the sender informed when it sent?
  std::int64_t sent_at = 0;      ///< scheduler key of the triggering event

  friend bool operator==(const SentRecord&, const SentRecord&) = default;
};

struct Metrics {
  std::uint64_t messages_total = 0;
  std::uint64_t messages_source = 0;   ///< kSource messages (carrying M)
  std::uint64_t messages_hello = 0;    ///< kHello
  std::uint64_t messages_control = 0;  ///< kControl
  std::uint64_t bits_sent = 0;         ///< sum of Message::size_bits()
  std::uint64_t deliveries = 0;
  std::int64_t completion_key = 0;  ///< largest delivery key (time, for sync)
  /// Largest number of simultaneously in-flight messages (the engine's
  /// event-queue high-water mark). Deterministic, so replay compares it.
  std::uint64_t queue_depth_peak = 0;

  void count_send(const Message& msg) noexcept;
  std::string summary() const;

  friend bool operator==(const Metrics&, const Metrics&) = default;
};

}  // namespace oraclesize
