#include "sim/trace_recorder.h"

#include "graph/io.h"

#include <iomanip>
#include <ios>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace oraclesize {

namespace {

// ---- FNV-1a (64-bit) over explicit integers --------------------------------

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

// ---- token helpers for the line format ------------------------------------

[[noreturn]] void parse_fail(std::size_t line, const std::string& what) {
  std::ostringstream os;
  os << "trace parse error (line " << line << "): " << what;
  throw std::runtime_error(os.str());
}

std::uint64_t tok_u64(std::istringstream& in, std::size_t line,
                      const char* what) {
  std::uint64_t v = 0;
  if (!(in >> v)) parse_fail(line, std::string("expected integer ") + what);
  return v;
}

std::int64_t tok_i64(std::istringstream& in, std::size_t line,
                     const char* what) {
  std::int64_t v = 0;
  if (!(in >> v)) parse_fail(line, std::string("expected integer ") + what);
  return v;
}

double tok_double(std::istringstream& in, std::size_t line,
                  const char* what) {
  double v = 0;
  if (!(in >> v)) parse_fail(line, std::string("expected number ") + what);
  return v;
}

std::string tok_word(std::istringstream& in, std::size_t line,
                     const char* what) {
  std::string v;
  if (!(in >> v)) parse_fail(line, std::string("expected token ") + what);
  return v;
}

SchedulerKind scheduler_from_string(const std::string& s, std::size_t line) {
  if (s == "sync") return SchedulerKind::kSynchronous;
  if (s == "async-random") return SchedulerKind::kAsyncRandom;
  if (s == "async-fifo") return SchedulerKind::kAsyncFifo;
  if (s == "async-lifo") return SchedulerKind::kAsyncLifo;
  if (s == "async-link-fifo") return SchedulerKind::kAsyncLinkFifo;
  if (s == "async-adversarial") return SchedulerKind::kAsyncAdversarial;
  parse_fail(line, "unknown scheduler '" + s + "'");
}

SchedulerKeying keying_from_string(const std::string& s, std::size_t line) {
  if (s == "counter") return SchedulerKeying::kCounter;
  if (s == "stream") return SchedulerKeying::kStream;
  parse_fail(line, "unknown keying '" + s + "'");
}

ByzantineStrategy strategy_from_string(const std::string& s,
                                       std::size_t line) {
  if (s == "random-bits") return ByzantineStrategy::kRandomBits;
  if (s == "replay") return ByzantineStrategy::kReplay;
  if (s == "structured-lie") return ByzantineStrategy::kStructuredLie;
  parse_fail(line, "unknown byzantine strategy '" + s + "'");
}

TraceEventKind event_kind_from_string(const std::string& s,
                                      std::size_t line) {
  if (s == "send") return TraceEventKind::kSend;
  if (s == "deliver") return TraceEventKind::kDeliver;
  if (s == "drop") return TraceEventKind::kDrop;
  if (s == "dup") return TraceEventKind::kDuplicate;
  if (s == "delay") return TraceEventKind::kDelay;
  if (s == "crash") return TraceEventKind::kCrash;
  if (s == "dead") return TraceEventKind::kDeadDelivery;
  if (s == "informed") return TraceEventKind::kInformed;
  if (s == "advice") return TraceEventKind::kAdviceRead;
  if (s == "forge") return TraceEventKind::kForge;
  if (s == "equivocate") return TraceEventKind::kEquivocate;
  if (s == "replay") return TraceEventKind::kReplayAttack;
  if (s == "advlie") return TraceEventKind::kAdviceLie;
  parse_fail(line, "unknown event kind '" + s + "'");
}

MsgKind msg_kind_from_string(const std::string& s, std::size_t line) {
  if (s == "source") return MsgKind::kSource;
  if (s == "hello") return MsgKind::kHello;
  if (s == "control") return MsgKind::kControl;
  parse_fail(line, "unknown message kind '" + s + "'");
}

RunStatus status_from_string(const std::string& s, std::size_t line) {
  if (s == "completed") return RunStatus::kCompleted;
  if (s == "task_failed") return RunStatus::kTaskFailed;
  if (s == "timeout") return RunStatus::kTimeout;
  if (s == "budget_exhausted") return RunStatus::kBudgetExhausted;
  if (s == "crashed") return RunStatus::kCrashed;
  if (s == "byzantine_detected") return RunStatus::kByzantineDetected;
  parse_fail(line, "unknown run status '" + s + "'");
}

TraceLevel level_from_string(const std::string& s, std::size_t line) {
  if (s == "messages") return TraceLevel::kMessages;
  if (s == "full") return TraceLevel::kFull;
  parse_fail(line, "unknown trace level '" + s + "'");
}

/// Doubles (fault probabilities) are written with enough digits to
/// round-trip exactly through text.
void write_double(std::ostream& os, double v) {
  std::ostringstream buf;
  buf << std::setprecision(17) << v;
  os << buf.str();
}

/// JSON string escaping for the Chrome export.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSend: return "send";
    case TraceEventKind::kDeliver: return "deliver";
    case TraceEventKind::kDrop: return "drop";
    case TraceEventKind::kDuplicate: return "dup";
    case TraceEventKind::kDelay: return "delay";
    case TraceEventKind::kCrash: return "crash";
    case TraceEventKind::kDeadDelivery: return "dead";
    case TraceEventKind::kInformed: return "informed";
    case TraceEventKind::kAdviceRead: return "advice";
    case TraceEventKind::kForge: return "forge";
    case TraceEventKind::kEquivocate: return "equivocate";
    case TraceEventKind::kReplayAttack: return "replay";
    case TraceEventKind::kAdviceLie: return "advlie";
  }
  return "unknown";
}

const char* to_string(TraceLevel level) {
  switch (level) {
    case TraceLevel::kMessages: return "messages";
    case TraceLevel::kFull: return "full";
  }
  return "unknown";
}

std::string to_string(const TraceEvent& e) {
  std::ostringstream os;
  os << to_string(e.kind) << " node=" << e.node << " port=" << e.port
     << " peer=" << e.peer << " msg=" << to_string(e.msg) << " key=" << e.key
     << " seq=" << e.seq << " link=" << e.link << " aux=" << e.aux
     << " flag=" << (e.flag ? 1 : 0);
  return os.str();
}

RunOptions TraceHeader::to_run_options() const {
  RunOptions o;
  o.scheduler = scheduler;
  o.keying = keying;
  o.seed = seed;
  o.max_delay = max_delay;
  o.max_messages = max_messages;
  o.max_events = max_events;
  o.enforce_wakeup = enforce_wakeup;
  o.anonymous = anonymous;
  o.fault = fault;
  o.adversary = adversary;
  return o;
}

std::uint64_t RecordedTrace::digest() const {
  std::uint64_t h = kFnvOffset;
  for (const TraceEvent& e : events) {
    fnv_u64(h, static_cast<std::uint64_t>(e.kind));
    fnv_u64(h, static_cast<std::uint64_t>(e.key));
    fnv_u64(h, e.seq);
    fnv_u64(h, e.link);
    fnv_u64(h, e.aux);
    fnv_u64(h, e.node);
    fnv_u64(h, e.peer);
    fnv_u64(h, e.port);
    fnv_u64(h, static_cast<std::uint64_t>(e.msg));
    fnv_u64(h, e.flag ? 1 : 0);
  }
  fnv_u64(h, static_cast<std::uint64_t>(status));
  fnv_u64(h, metrics.messages_total);
  fnv_u64(h, metrics.messages_source);
  fnv_u64(h, metrics.messages_hello);
  fnv_u64(h, metrics.messages_control);
  fnv_u64(h, metrics.bits_sent);
  fnv_u64(h, metrics.deliveries);
  fnv_u64(h, static_cast<std::uint64_t>(metrics.completion_key));
  fnv_u64(h, metrics.queue_depth_peak);
  fnv_u64(h, faults.dropped);
  fnv_u64(h, faults.duplicated);
  fnv_u64(h, faults.delayed);
  fnv_u64(h, faults.crashed_nodes);
  fnv_u64(h, faults.dead_deliveries);
  fnv_u64(h, faults.advice_bits_flipped);
  // Adversary counters fold in only when the run saw Byzantine activity:
  // the zero case hashes nothing extra, so every pre-Byzantine pinned
  // golden digest (tests/test_goldens.cpp) is preserved.
  if (!(adversary == AdversaryCounters{})) {
    fnv_u64(h, adversary.lying_nodes);
    fnv_u64(h, adversary.forged);
    fnv_u64(h, adversary.equivocated);
    fnv_u64(h, adversary.replayed);
    fnv_u64(h, adversary.structured_lies);
    fnv_u64(h, adversary.advice_lies);
  }
  return h;
}

void save_trace(std::ostream& os, const RecordedTrace& t) {
  os << "oracletrace 1\n";
  os << "algorithm " << t.header.algorithm << "\n";
  if (!t.header.oracle.empty()) os << "oracle " << t.header.oracle << "\n";
  os << "source " << t.header.source << "\n"
     << "scheduler " << to_string(t.header.scheduler) << "\n"
     << "keying " << to_string(t.header.keying) << "\n"
     << "seed " << t.header.seed << "\n"
     << "max_delay " << t.header.max_delay << "\n"
     << "max_messages " << t.header.max_messages << "\n"
     << "max_events " << t.header.max_events << "\n"
     << "enforce_wakeup " << (t.header.enforce_wakeup ? 1 : 0) << "\n"
     << "anonymous " << (t.header.anonymous ? 1 : 0) << "\n"
     << "level " << to_string(t.header.level) << "\n";
  const FaultPlanParams& f = t.header.fault;
  os << "fault " << f.seed << " ";
  write_double(os, f.drop);
  os << " ";
  write_double(os, f.duplicate);
  os << " ";
  write_double(os, f.delay);
  os << " " << f.max_extra_delay << " ";
  write_double(os, f.crash);
  os << " " << f.max_crash_key << " " << (f.crash_source ? 1 : 0) << " ";
  write_double(os, f.advice_flip);
  os << "\n";
  // The adversary line exists only on Byzantine traces: older readers (and
  // older files) never see or miss it.
  if (t.header.adversary.enabled()) {
    const AdversaryPlanParams& a = t.header.adversary;
    os << "adversary " << a.seed << " ";
    write_double(os, a.byz_rate);
    os << " " << a.byz_nodes << " " << (a.byz_source ? 1 : 0) << " "
       << to_string(a.strategy) << " ";
    write_double(os, a.forge);
    os << " ";
    write_double(os, a.equivocate);
    os << " ";
    write_double(os, a.advice_lie);
    os << " " << a.replay_window << "\n";
  }

  std::size_t graph_lines = 0;
  for (char c : t.graph_text) graph_lines += (c == '\n') ? 1 : 0;
  if (!t.graph_text.empty() && t.graph_text.back() != '\n') ++graph_lines;
  os << "graph " << graph_lines << "\n" << t.graph_text;
  if (!t.graph_text.empty() && t.graph_text.back() != '\n') os << "\n";

  os << "advice " << t.advice.size() << "\n";
  for (const BitString& a : t.advice) {
    os << (a.empty() ? "-" : a.to_string()) << "\n";
  }

  os << "events " << t.events.size() << "\n";
  for (const TraceEvent& e : t.events) {
    os << "e " << to_string(e.kind) << " " << e.node << " " << e.port << " "
       << e.peer << " " << to_string(e.msg) << " " << e.key << " " << e.seq
       << " " << e.link << " " << e.aux << " " << (e.flag ? 1 : 0) << "\n";
  }

  os << "status " << to_string(t.status) << "\n";
  const Metrics& m = t.metrics;
  os << "metrics " << m.messages_total << " " << m.messages_source << " "
     << m.messages_hello << " " << m.messages_control << " " << m.bits_sent
     << " " << m.deliveries << " " << m.completion_key << " "
     << m.queue_depth_peak << "\n";
  const FaultCounters& fc = t.faults;
  os << "faults " << fc.dropped << " " << fc.duplicated << " " << fc.delayed
     << " " << fc.crashed_nodes << " " << fc.dead_deliveries << " "
     << fc.advice_bits_flipped << "\n";
  if (!(t.adversary == AdversaryCounters{})) {
    const AdversaryCounters& ac = t.adversary;
    os << "byzantine " << ac.lying_nodes << " " << ac.forged << " "
       << ac.equivocated << " " << ac.replayed << " " << ac.structured_lies
       << " " << ac.advice_lies << "\n";
  }
  os << "digest " << std::hex << t.digest() << std::dec << "\n";
}

RecordedTrace load_trace(std::istream& is) {
  RecordedTrace t;
  std::size_t lineno = 0;
  std::string line;
  auto next_line = [&]() -> std::string& {
    if (!std::getline(is, line)) parse_fail(lineno, "unexpected end of file");
    ++lineno;
    return line;
  };

  {
    std::istringstream in(next_line());
    std::string magic = tok_word(in, lineno, "magic");
    const std::uint64_t version = tok_u64(in, lineno, "version");
    if (magic != "oracletrace" || version != 1) {
      parse_fail(lineno, "not an oracletrace v1 file");
    }
  }

  bool have_events = false;
  std::size_t num_events = 0;
  while (!have_events) {
    std::istringstream in(next_line());
    const std::string tag = tok_word(in, lineno, "section tag");
    if (tag == "algorithm") {
      t.header.algorithm = tok_word(in, lineno, "algorithm name");
    } else if (tag == "oracle") {
      t.header.oracle = tok_word(in, lineno, "oracle name");
    } else if (tag == "source") {
      t.header.source = static_cast<NodeId>(tok_u64(in, lineno, "source"));
    } else if (tag == "scheduler") {
      t.header.scheduler =
          scheduler_from_string(tok_word(in, lineno, "scheduler"), lineno);
    } else if (tag == "keying") {
      t.header.keying =
          keying_from_string(tok_word(in, lineno, "keying"), lineno);
    } else if (tag == "seed") {
      t.header.seed = tok_u64(in, lineno, "seed");
    } else if (tag == "max_delay") {
      t.header.max_delay =
          static_cast<std::uint32_t>(tok_u64(in, lineno, "max_delay"));
    } else if (tag == "max_messages") {
      t.header.max_messages = tok_u64(in, lineno, "max_messages");
    } else if (tag == "max_events") {
      t.header.max_events = tok_u64(in, lineno, "max_events");
    } else if (tag == "enforce_wakeup") {
      t.header.enforce_wakeup = tok_u64(in, lineno, "enforce_wakeup") != 0;
    } else if (tag == "anonymous") {
      t.header.anonymous = tok_u64(in, lineno, "anonymous") != 0;
    } else if (tag == "level") {
      t.header.level = level_from_string(tok_word(in, lineno, "level"), lineno);
    } else if (tag == "fault") {
      FaultPlanParams& f = t.header.fault;
      f.seed = tok_u64(in, lineno, "fault seed");
      f.drop = tok_double(in, lineno, "drop");
      f.duplicate = tok_double(in, lineno, "duplicate");
      f.delay = tok_double(in, lineno, "delay");
      f.max_extra_delay =
          static_cast<std::uint32_t>(tok_u64(in, lineno, "max_extra_delay"));
      f.crash = tok_double(in, lineno, "crash");
      f.max_crash_key =
          static_cast<std::uint32_t>(tok_u64(in, lineno, "max_crash_key"));
      f.crash_source = tok_u64(in, lineno, "crash_source") != 0;
      f.advice_flip = tok_double(in, lineno, "advice_flip");
    } else if (tag == "adversary") {
      AdversaryPlanParams& a = t.header.adversary;
      a.seed = tok_u64(in, lineno, "adversary seed");
      a.byz_rate = tok_double(in, lineno, "byz_rate");
      a.byz_nodes =
          static_cast<std::uint32_t>(tok_u64(in, lineno, "byz_nodes"));
      a.byz_source = tok_u64(in, lineno, "byz_source") != 0;
      a.strategy =
          strategy_from_string(tok_word(in, lineno, "strategy"), lineno);
      a.forge = tok_double(in, lineno, "forge");
      a.equivocate = tok_double(in, lineno, "equivocate");
      a.advice_lie = tok_double(in, lineno, "advice_lie");
      a.replay_window =
          static_cast<std::uint32_t>(tok_u64(in, lineno, "replay_window"));
    } else if (tag == "graph") {
      const std::uint64_t lines = tok_u64(in, lineno, "graph line count");
      std::string text;
      for (std::uint64_t i = 0; i < lines; ++i) {
        text += next_line();
        text += '\n';
      }
      t.graph_text = std::move(text);
    } else if (tag == "advice") {
      const std::uint64_t n = tok_u64(in, lineno, "advice count");
      t.advice.clear();
      t.advice.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::string& a = next_line();
        t.advice.push_back(a == "-" ? BitString{}
                                    : BitString::from_string(a));
      }
    } else if (tag == "events") {
      num_events = tok_u64(in, lineno, "event count");
      have_events = true;
    } else {
      parse_fail(lineno, "unknown section '" + tag + "'");
    }
  }

  t.events.reserve(num_events);
  for (std::size_t i = 0; i < num_events; ++i) {
    std::istringstream in(next_line());
    const std::string tag = tok_word(in, lineno, "event tag");
    if (tag != "e") parse_fail(lineno, "expected event line");
    TraceEvent e;
    e.kind = event_kind_from_string(tok_word(in, lineno, "kind"), lineno);
    e.node = static_cast<NodeId>(tok_u64(in, lineno, "node"));
    e.port = static_cast<Port>(tok_u64(in, lineno, "port"));
    e.peer = static_cast<NodeId>(tok_u64(in, lineno, "peer"));
    e.msg = msg_kind_from_string(tok_word(in, lineno, "msg"), lineno);
    e.key = tok_i64(in, lineno, "key");
    e.seq = tok_u64(in, lineno, "seq");
    e.link = tok_u64(in, lineno, "link");
    e.aux = tok_u64(in, lineno, "aux");
    e.flag = tok_u64(in, lineno, "flag") != 0;
    t.events.push_back(e);
  }

  bool have_digest = false;
  while (!have_digest) {
    std::istringstream in(next_line());
    const std::string tag = tok_word(in, lineno, "footer tag");
    if (tag == "status") {
      t.status = status_from_string(tok_word(in, lineno, "status"), lineno);
    } else if (tag == "metrics") {
      Metrics& m = t.metrics;
      m.messages_total = tok_u64(in, lineno, "messages_total");
      m.messages_source = tok_u64(in, lineno, "messages_source");
      m.messages_hello = tok_u64(in, lineno, "messages_hello");
      m.messages_control = tok_u64(in, lineno, "messages_control");
      m.bits_sent = tok_u64(in, lineno, "bits_sent");
      m.deliveries = tok_u64(in, lineno, "deliveries");
      m.completion_key = tok_i64(in, lineno, "completion_key");
      m.queue_depth_peak = tok_u64(in, lineno, "queue_depth_peak");
    } else if (tag == "faults") {
      FaultCounters& fc = t.faults;
      fc.dropped = tok_u64(in, lineno, "dropped");
      fc.duplicated = tok_u64(in, lineno, "duplicated");
      fc.delayed = tok_u64(in, lineno, "delayed");
      fc.crashed_nodes = tok_u64(in, lineno, "crashed_nodes");
      fc.dead_deliveries = tok_u64(in, lineno, "dead_deliveries");
      fc.advice_bits_flipped = tok_u64(in, lineno, "advice_bits_flipped");
    } else if (tag == "byzantine") {
      AdversaryCounters& ac = t.adversary;
      ac.lying_nodes = tok_u64(in, lineno, "lying_nodes");
      ac.forged = tok_u64(in, lineno, "forged");
      ac.equivocated = tok_u64(in, lineno, "equivocated");
      ac.replayed = tok_u64(in, lineno, "replayed");
      ac.structured_lies = tok_u64(in, lineno, "structured_lies");
      ac.advice_lies = tok_u64(in, lineno, "advice_lies");
    } else if (tag == "digest") {
      std::uint64_t stored = 0;
      in >> std::hex >> stored >> std::dec;
      if (in.fail()) parse_fail(lineno, "bad digest");
      if (stored != t.digest()) {
        parse_fail(lineno, "digest mismatch: file corrupted or hand-edited");
      }
      have_digest = true;
    } else {
      parse_fail(lineno, "unknown footer section '" + tag + "'");
    }
  }
  return t;
}

void write_chrome_trace(std::ostream& os, const RecordedTrace& t) {
  os << "{\"traceEvents\":[\n";
  os << "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
        "\"args\":{\"name\":\""
     << json_escape(t.header.algorithm) << " ("
     << to_string(t.header.scheduler) << ")\"}}";
  for (const TraceEvent& e : t.events) {
    // Message events render as 1-unit slices on the acting node's track;
    // state events as instants. ts is the scheduler's logical clock.
    const bool instant = e.kind == TraceEventKind::kInformed ||
                         e.kind == TraceEventKind::kAdviceRead ||
                         e.kind == TraceEventKind::kCrash ||
                         e.kind == TraceEventKind::kDrop;
    os << ",\n  {\"name\":\"" << to_string(e.kind) << "\",\"cat\":\""
       << to_string(e.msg) << "\",\"ph\":\"" << (instant ? "i" : "X")
       << "\",\"ts\":" << e.key << (instant ? "" : ",\"dur\":1")
       << ",\"pid\":0,\"tid\":" << e.node
       << (instant ? ",\"s\":\"t\"" : "") << ",\"args\":{\"peer\":" << e.peer
       << ",\"port\":" << e.port << ",\"seq\":" << e.seq
       << ",\"link\":" << e.link << ",\"aux\":" << e.aux << ",\"flag\":"
       << (e.flag ? "true" : "false") << "}}";
  }
  os << "\n]}\n";
}

void TraceRecorder::begin_run(const TraceRunInfo& info) {
  complete_ = false;
  trace_.events.clear();
  trace_.header = TraceHeader{};
  trace_.header.algorithm = info.algorithm;
  trace_.header.source = info.source;
  trace_.header.level = level_;
  if (info.options != nullptr) {
    const RunOptions& o = *info.options;
    trace_.header.scheduler = o.scheduler;
    trace_.header.keying = o.keying;
    trace_.header.seed = o.seed;
    trace_.header.max_delay = o.max_delay;
    trace_.header.max_messages = o.max_messages;
    trace_.header.max_events = o.max_events;
    trace_.header.enforce_wakeup = o.enforce_wakeup;
    trace_.header.anonymous = o.anonymous;
    trace_.header.fault = o.fault;
    trace_.header.adversary = o.adversary;
  }
  trace_.graph_text.clear();
  if (info.graph != nullptr) trace_.graph_text = to_text(*info.graph);
  trace_.advice.clear();
  if (info.advice != nullptr) trace_.advice = *info.advice;
}

void TraceRecorder::record(const TraceEvent& event) {
  if (level_ == TraceLevel::kMessages &&
      (event.kind == TraceEventKind::kInformed ||
       event.kind == TraceEventKind::kAdviceRead)) {
    return;
  }
  trace_.events.push_back(event);
}

void TraceRecorder::end_run(const RunResult& result) {
  trace_.status = result.status;
  trace_.metrics = result.metrics;
  trace_.faults = result.faults;
  trace_.adversary = result.adversary;
  complete_ = true;
}

RecordedTrace TraceRecorder::take() {
  complete_ = false;
  return std::move(trace_);
}

}  // namespace oraclesize
