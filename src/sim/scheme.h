// The algorithm/scheme model of the paper (Section 1.4), in executable form.
//
// A broadcast algorithm A maps the local quadruple
//     (f(v), s(v), id(v), deg(v))
// to a *scheme* S_v: a function from the node's communication history to a
// set of (message, port) sends. A stateful per-node object is the executable
// equivalent of a history function — its state is, by construction, a
// function of the history of inputs it has seen — so NodeBehavior exposes
// exactly two entry points: one for the empty history (on_start, where only
// broadcast schemes may transmit) and one per received message (on_receive).
//
// A *wakeup* algorithm is a broadcast algorithm whose schemes return the
// empty set on all histories with no received messages unless the node is
// the source; the engine can enforce this machine-checkably
// (RunOptions::enforce_wakeup in sim/engine.h).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bitio/bitstring.h"
#include "graph/port_graph.h"
#include "sim/message.h"

namespace oraclesize {

/// The local knowledge quadruple a node starts with.
struct NodeInput {
  BitString advice;        ///< f(v), the oracle's string for this node
  bool is_source = false;  ///< s(v)
  Label id = 0;            ///< id(v); 0 when the run is anonymous
  std::size_t degree = 0;  ///< deg(v)
};

/// One outgoing transmission: send `msg` through local port `port`.
struct Send {
  Message msg;
  Port port = kNoPort;
};

/// Executable scheme for a single node. Implementations keep per-node state
/// across calls; the engine creates one instance per node per run.
class NodeBehavior {
 public:
  virtual ~NodeBehavior() = default;

  /// Reaction to the empty history, invoked once before any delivery.
  /// Wakeup schemes must return {} here unless the node is the source.
  virtual std::vector<Send> on_start(const NodeInput& input) = 0;

  /// Reaction to a message arriving on local port `from_port`.
  virtual std::vector<Send> on_receive(const NodeInput& input,
                                       const Message& msg,
                                       Port from_port) = 0;

  /// Local termination: true once this node has finished its part of the
  /// task according to its own state (e.g. the census source after all
  /// acknowledgments arrived). Purely observational — the engine never
  /// consults it for scheduling; RunResult snapshots it after the run.
  virtual bool terminated() const { return false; }

  /// A local output value, when the task computes one (e.g. the census
  /// count at the source). 0 when the scheme has nothing to report.
  virtual std::uint64_t output() const { return 0; }
};

/// The algorithm A: a factory from quadruples to schemes. Implementations
/// must not inspect anything beyond the quadruple — in particular they never
/// see the graph. (The oracle saw the graph; the algorithm only sees f(v).)
class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual std::unique_ptr<NodeBehavior> make_behavior(
      const NodeInput& input) const = 0;

  virtual std::string name() const = 0;

  /// True for wakeup algorithms; lets harnesses switch on enforcement.
  virtual bool is_wakeup() const { return false; }
};

}  // namespace oraclesize
