// The algorithm/scheme model of the paper (Section 1.4), in executable form.
//
// A broadcast algorithm A maps the local quadruple
//     (f(v), s(v), id(v), deg(v))
// to a *scheme* S_v: a function from the node's communication history to a
// set of (message, port) sends. A stateful per-node object is the executable
// equivalent of a history function — its state is, by construction, a
// function of the history of inputs it has seen — so NodeBehavior exposes
// exactly two entry points: one for the empty history (on_start, where only
// broadcast schemes may transmit) and one per received message (on_receive).
//
// A *wakeup* algorithm is a broadcast algorithm whose schemes return the
// empty set on all histories with no received messages unless the node is
// the source; the engine can enforce this machine-checkably
// (RunOptions::enforce_wakeup in sim/engine.h).
//
// Hot-path conventions (the engine plays millions of events per sweep):
//
//  * NodeInput references its advice string instead of owning a copy — the
//    oracle's output lives in one table and every per-node input points
//    into it, so arming n nodes copies n pointers, not n BitStrings.
//  * on_start/on_receive APPEND their sends into a caller-owned sink
//    vector instead of returning a fresh std::vector<Send> per event; the
//    engine clears and reuses one sink for the whole run, eliminating the
//    per-event allocation.
//  * Behaviors can opt into pooling: when Algorithm::reusable() is true,
//    the engine keeps behavior objects alive across runs and re-arms them
//    with NodeBehavior::reset instead of calling make_behavior n times per
//    trial (see sim/execution_context.h).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bitio/bitstring.h"
#include "graph/port_graph.h"
#include "sim/message.h"

namespace oraclesize {

/// Shared empty advice string: the default target of NodeInput::advice, so
/// advice-less harnesses (lower-bound games, tests) never dangle.
inline const BitString kNoAdvice{};

/// The local knowledge quadruple a node starts with. Copyable and cheap:
/// the advice string is referenced, not owned — whoever builds the
/// NodeInput must keep the pointed-to BitString alive for as long as the
/// input (or anything that copied it, e.g. a recorded History) is used.
struct NodeInput {
  const BitString* advice = &kNoAdvice;  ///< f(v), the oracle's string
  bool is_source = false;                ///< s(v)
  Label id = 0;            ///< id(v); 0 when the run is anonymous
  std::size_t degree = 0;  ///< deg(v)
};

/// One outgoing transmission: send `msg` through local port `port`.
struct Send {
  Message msg;
  Port port = kNoPort;
};

/// Executable scheme for a single node. Implementations keep per-node state
/// across calls; the engine creates one instance per node per run, or — for
/// reusable algorithms — re-arms a pooled instance via reset().
///
/// on_start/on_receive append their sends to `out` (never clear it); the
/// caller owns the vector and recycles its capacity across events.
class NodeBehavior {
 public:
  virtual ~NodeBehavior() = default;

  /// Reaction to the empty history, invoked once before any delivery.
  /// Wakeup schemes must append nothing here unless the node is the source.
  virtual void on_start(const NodeInput& input, std::vector<Send>& out) = 0;

  /// Reaction to a message arriving on local port `from_port`.
  virtual void on_receive(const NodeInput& input, const Message& msg,
                          Port from_port, std::vector<Send>& out) = 0;

  /// Re-arms this behavior to the state a fresh make_behavior(input) would
  /// produce, retaining internal buffer capacity. Only invoked by engines
  /// when the owning Algorithm reports reusable(); the default is a no-op,
  /// correct only for stateless behaviors.
  virtual void reset(const NodeInput& input) { (void)input; }

  /// Local termination: true once this node has finished its part of the
  /// task according to its own state (e.g. the census source after all
  /// acknowledgments arrived). Purely observational — the engine never
  /// consults it for scheduling; RunResult snapshots it after the run.
  virtual bool terminated() const { return false; }

  /// A local output value, when the task computes one (e.g. the census
  /// count at the source). 0 when the scheme has nothing to report.
  virtual std::uint64_t output() const { return 0; }
};

/// The algorithm A: a factory from quadruples to schemes. Implementations
/// must not inspect anything beyond the quadruple — in particular they never
/// see the graph. (The oracle saw the graph; the algorithm only sees f(v).)
class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual std::unique_ptr<NodeBehavior> make_behavior(
      const NodeInput& input) const = 0;

  virtual std::string name() const = 0;

  /// True for wakeup algorithms; lets harnesses switch on enforcement.
  virtual bool is_wakeup() const { return false; }

  /// Opt-in to behavior pooling: true promises that (a) make_behavior
  /// ignores everything but the class of the algorithm (any same-name()
  /// instance produces interchangeable behaviors) and (b) reset(input)
  /// fully re-arms a behavior for a new run. Engines then keep behavior
  /// objects across trials instead of reallocating n of them per run.
  virtual bool reusable() const { return false; }
};

}  // namespace oraclesize
