#include "sim/execution_context.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace oraclesize {

namespace {

// Violation-message formatting lives in cold helpers so the hot submit path
// carries no std::ostringstream machinery (construction alone costs a
// locale grab + buffer allocation).
[[gnu::cold]] std::string format_wakeup_violation(NodeId v) {
  std::ostringstream os;
  os << "wakeup violation: uninformed node " << v << " transmitted";
  return os.str();
}

[[gnu::cold]] std::string format_invalid_send(NodeId v, Port port,
                                              std::size_t degree) {
  std::ostringstream os;
  os << "invalid send: node " << v << " port " << port << " (degree " << degree
     << ")";
  return os.str();
}

}  // namespace

std::size_t ExecutionContext::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  pool_.emplace_back();
  return pool_.size() - 1;
}

void ExecutionContext::heap_push(HeapEntry e) {
  // Hole insertion: bubble the hole up, write the entry once at the end.
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!entry_before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

ExecutionContext::HeapEntry ExecutionContext::heap_pop() {
  const HeapEntry top = heap_.front();
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t size = heap_.size();
  if (size > 0) {
    // Sift the hole down from the root, then drop `last` into it.
    std::size_t i = 0;
    while (true) {
      const std::size_t left = 2 * i + 1;
      if (left >= size) break;
      const std::size_t right = left + 1;
      std::size_t best = left;
      if (right < size && entry_before(heap_[right], heap_[left])) {
        best = right;
      }
      if (!entry_before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void ExecutionContext::arm_behaviors(std::size_t n,
                                     const Algorithm& algorithm) {
  const bool reusable = algorithm.reusable();
  const bool pool_matches =
      reusable && pool_count_ > 0 && pool_algorithm_ == algorithm.name();
  behaviors_.resize(n);
  // Pooled behaviors beyond the previous run's node count don't exist; the
  // reusable prefix is whatever survives both the pool and this run's size.
  const std::size_t reuse = pool_matches ? std::min(pool_count_, n) : 0;
  for (NodeId v = 0; v < reuse; ++v) {
    behaviors_[v]->reset(inputs_[v]);
  }
  for (NodeId v = reuse; v < n; ++v) {
    behaviors_[v] = algorithm.make_behavior(inputs_[v]);
  }
  if (reusable) {
    pool_algorithm_ = algorithm.name();
    pool_count_ = n;
  } else {
    pool_algorithm_.clear();
    pool_count_ = 0;
  }
}

RunResult ExecutionContext::run(const PortGraph& g, NodeId source,
                                const std::vector<BitString>& advice,
                                const Algorithm& algorithm,
                                const RunOptions& options) {
  const std::size_t n = g.num_nodes();
  if (advice.size() != n) {
    throw std::invalid_argument("run_execution: advice size != num nodes");
  }
  if (source >= n) throw std::invalid_argument("run_execution: bad source");

  RunResult result;
  result.informed.assign(n, false);
  result.informed[source] = true;
  result.sends_by_node.assign(n, 0);
  result.informed_at.assign(n, RunResult::kNeverInformed);
  result.informed_at[source] = 0;

  inputs_.resize(n);
  link_offset_.resize(n + 1);
  link_offset_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    inputs_[v] = NodeInput{&advice[v], v == source,
                           options.anonymous ? Label{0} : g.label(v),
                           g.degree(v)};
    link_offset_[v + 1] = link_offset_[v] + g.degree(v);
  }
  arm_behaviors(n, algorithm);

  scheduler_.reset(options.scheduler, options.seed, options.max_delay,
                   link_offset_[n]);
  pool_.clear();
  heap_.clear();
  free_slots_.clear();
  std::uint64_t seq = 0;

  if (options.trace) {
    // Clean runs of the paper's schemes send Theta(n) to Theta(m) messages;
    // 2m + n covers flooding (2m - (n-1)) and everything sparser without
    // letting the runaway budget drive a giant up-front allocation.
    result.trace.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(options.max_messages,
                                2 * g.num_edges() + n)));
  }

  auto fail = [&](std::string what) {
    if (result.violation.empty()) result.violation = std::move(what);
  };

  // Validates and enqueues one batch of sends from node v, triggered while
  // processing an event with key `now`.
  auto submit = [&](NodeId v, const std::vector<Send>& sends,
                    std::int64_t now) {
    if (!sends.empty() && options.enforce_wakeup && !result.informed[v]) {
      fail(format_wakeup_violation(v));
      return;
    }
    for (const Send& s : sends) {
      if (s.port >= g.degree(v)) {
        fail(format_invalid_send(v, s.port, g.degree(v)));
        return;
      }
      // Budget check BEFORE counting: a run never reports more messages
      // than it was allowed to send (metrics.messages_total <= max_messages
      // is an invariant even on violating runs).
      if (result.metrics.messages_total >= options.max_messages) {
        fail("message budget exceeded");
        return;
      }
      const Endpoint dst = g.neighbor(v, s.port);
      result.metrics.count_send(s.msg);
      ++result.sends_by_node[v];
      if (options.trace) {
        result.trace.push_back(SentRecord{v, s.port, dst.node, s.msg.kind,
                                          result.informed[v], now});
      }
      const std::uint64_t link = link_offset_[v] + s.port;
      const std::size_t slot = acquire_slot();
      pool_[slot] = Event{dst.node, dst.port, s.msg, result.informed[v]};
      heap_push(
          HeapEntry{scheduler_.delivery_key(now, seq, link), seq, slot});
      ++seq;
    }
  };

  // Empty-history activations. Node order is irrelevant to correctness
  // (deliveries all happen strictly later) but kept deterministic.
  for (NodeId v = 0; v < n && result.violation.empty(); ++v) {
    sends_.clear();
    behaviors_[v]->on_start(inputs_[v], sends_);
    submit(v, sends_, 0);
  }

  while (!heap_.empty() && result.violation.empty()) {
    const HeapEntry top = heap_pop();
    // Move the event out before recycling its slot: submit() below may
    // acquire slots and grow the pool, invalidating references into it.
    Event ev = std::move(pool_[top.slot]);
    free_slots_.push_back(top.slot);
    ++result.metrics.deliveries;
    if (top.key > result.metrics.completion_key) {
      result.metrics.completion_key = top.key;
    }
    // The paper's informing rule: any message from an informed sender
    // informs the receiver (M can ride along on it).
    if (ev.sender_informed && !result.informed[ev.to]) {
      result.informed[ev.to] = true;
      result.informed_at[ev.to] = top.key;
    }
    sends_.clear();
    behaviors_[ev.to]->on_receive(inputs_[ev.to], ev.msg, ev.at_port, sends_);
    submit(ev.to, sends_, top.key);
  }

  result.terminated.resize(n);
  result.outputs.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    result.terminated[v] = behaviors_[v]->terminated();
    result.outputs[v] = behaviors_[v]->output();
  }
  result.all_informed = (result.informed_count() == n);
  return result;
}

}  // namespace oraclesize
