#include "sim/execution_context.h"

#include "sim/trace_recorder.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace oraclesize {

namespace {

// Violation-message formatting lives in cold helpers so the hot submit path
// carries no std::ostringstream machinery (construction alone costs a
// locale grab + buffer allocation).
[[gnu::cold]] std::string format_wakeup_violation(NodeId v) {
  std::ostringstream os;
  os << "wakeup violation: uninformed node " << v << " transmitted";
  return os.str();
}

[[gnu::cold]] std::string format_invalid_send(NodeId v, Port port,
                                              std::size_t degree) {
  std::ostringstream os;
  os << "invalid send: node " << v << " port " << port << " (degree " << degree
     << ")";
  return os.str();
}

[[gnu::cold]] std::string format_behavior_exception(const char* what) {
  std::string s = "behavior exception: ";
  s += what;
  return s;
}

}  // namespace

void ExecutionContext::arm_behaviors(std::size_t n,
                                     const Algorithm& algorithm) {
  const bool reusable = algorithm.reusable();
  const bool pool_matches =
      reusable && pool_count_ > 0 && pool_algorithm_ == algorithm.name();
  behaviors_.resize(n);
  // Pooled behaviors beyond the previous run's node count don't exist; the
  // reusable prefix is whatever survives both the pool and this run's size.
  const std::size_t reuse = pool_matches ? std::min(pool_count_, n) : 0;
  for (NodeId v = 0; v < reuse; ++v) {
    behaviors_[v]->reset(inputs_[v]);
  }
  for (NodeId v = reuse; v < n; ++v) {
    behaviors_[v] = algorithm.make_behavior(inputs_[v]);
  }
  if (reusable) {
    pool_algorithm_ = algorithm.name();
    pool_count_ = n;
  } else {
    pool_algorithm_.clear();
    pool_count_ = 0;
  }
}

RunResult ExecutionContext::run(const PortGraph& g, NodeId source,
                                const std::vector<BitString>& advice,
                                const Algorithm& algorithm,
                                const RunOptions& options) {
  const std::size_t n = g.num_nodes();
  if (advice.size() != n) {
    throw std::invalid_argument("run_execution: advice size != num nodes");
  }
  if (source >= n) throw std::invalid_argument("run_execution: bad source");

  RunResult result;
  result.informed.assign(n, false);
  result.informed[source] = true;
  result.sends_by_node.assign(n, 0);
  result.informed_at.assign(n, RunResult::kNeverInformed);
  result.informed_at[source] = 0;

  auto fail = [&](std::string what) {
    if (result.violation.empty()) result.violation = std::move(what);
  };

  // Structured tracing (sim/trace_recorder.h). A null sink is the zero-cost
  // default: every emission below hides behind `if (sink)`.
  TraceSink* const sink = options.trace_sink;
  if (sink) {
    TraceRunInfo info;
    info.graph = &g;
    info.advice = &advice;  // the ORIGINAL advice, pre-corruption
    info.source = source;
    info.algorithm = algorithm.name();
    info.options = &options;
    sink->begin_run(info);
  }

  // Everything fault-related is gated on `faulty`: the disabled plan takes
  // the legacy code path bit for bit and allocates nothing new (the
  // zero-allocation steady state is audited by tests/test_zero_alloc.cpp).
  const bool faulty = options.fault.enabled();
  const std::vector<BitString>* advice_used = &advice;
  if (faulty) {
    fault_plan_.arm(options.fault, n, source);
    result.faults.crashed_nodes = fault_plan_.num_crashed();
    if (fault_plan_.corrupts_advice()) {
      result.faults.advice_bits_flipped =
          fault_plan_.corrupt_advice(advice, corrupted_advice_);
      advice_used = &corrupted_advice_;
    }
  }
  const bool message_faulty = faulty && fault_plan_.message_faults();

  // The Byzantine layer rides the same gate discipline: a disabled plan is
  // never armed, never consulted, and the run stays bit-identical to the
  // reliable path (tests/test_goldens.cpp ZeroAdversaryPlanIsInvisible).
  const bool byz = options.adversary.enabled();
  if (byz) {
    adversary_plan_.arm(options.adversary, n, source);
    result.adversary.lying_nodes = adversary_plan_.num_lying();
  }
  // Behaviors may throw on forged content as well as on corrupted advice;
  // either adversarial regime absorbs the exception into a structured
  // outcome instead of the legacy propagate-to-caller contract.
  const bool guarded = faulty || byz;

  inputs_.resize(n);
  link_offset_.resize(n + 1);
  link_offset_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    inputs_[v] = NodeInput{&(*advice_used)[v], v == source,
                           options.anonymous ? Label{0} : g.label(v),
                           g.degree(v)};
    link_offset_[v + 1] = link_offset_[v] + g.degree(v);
  }

  if (sink) {
    // Node-state prologue: each node's advice binding (the string it will
    // actually decode, possibly corrupted) and the fault plan's crash
    // schedule. Emitted before any scheme code runs.
    const bool corrupted = advice_used != &advice;
    for (NodeId v = 0; v < n; ++v) {
      TraceEvent e;
      e.kind = TraceEventKind::kAdviceRead;
      e.node = v;
      e.aux = (*advice_used)[v].size();
      e.flag = corrupted;
      sink->record(e);
    }
    if (faulty) {
      for (NodeId v = 0; v < n; ++v) {
        const std::int64_t at = fault_plan_.crash_key(v);
        if (at == FaultPlan::kNoCrash) continue;
        TraceEvent e;
        e.kind = TraceEventKind::kCrash;
        e.node = v;
        e.key = at;
        sink->record(e);
      }
    }
  }

  // Corrupted advice can make behavior constructors (which decode it)
  // throw. Only a faulty run absorbs that into a structured failure; a
  // reliable run keeps the legacy contract of letting it propagate.
  bool armed = true;
  if (faulty) {
    try {
      arm_behaviors(n, algorithm);
    } catch (const std::exception& e) {
      // A partial arm leaves behaviors_ inconsistent with the pool
      // bookkeeping; drop both so the next run rebuilds from scratch.
      behaviors_.clear();
      pool_algorithm_.clear();
      pool_count_ = 0;
      fail(format_behavior_exception(e.what()));
      armed = false;
    }
  } else {
    arm_behaviors(n, algorithm);
  }
  if (!armed) {
    result.terminated.assign(n, false);
    result.outputs.assign(n, 0);
    result.status = byz && !result.violation.empty()
                        ? RunStatus::kByzantineDetected
                        : RunStatus::kTaskFailed;
    if (sink) sink->end_run(result);
    return result;
  }

  scheduler_.reset(options.scheduler, options.seed, options.max_delay,
                   link_offset_[n], options.keying);
  events_.clear();
  std::uint64_t seq = 0;

  if (options.trace) {
    // Clean runs of the paper's schemes send Theta(n) to Theta(m) messages;
    // 2m + n covers flooding (2m - (n-1)) and everything sparser without
    // letting the runaway budget drive a giant up-front allocation.
    result.trace.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(options.max_messages,
                                2 * g.num_edges() + n)));
  }

  bool budget_hit = false;

  // On a frozen graph the CSR endpoint array is indexed by exactly the
  // directed-link ids the engine keys its per-link clocks on
  // (link_offset_[v] + port), so every delivery target is one load with no
  // bounds re-check. Unfrozen graphs (hand-built test graphs) take the
  // checked accessor.
  const Endpoint* const csr = g.csr_endpoints();

  // Logical send-batch counter for the Byzantine layer: one behavior
  // invocation = one group, so equivocation ("different lies to different
  // neighbors in the same logical send") keys forged content per link
  // within a group while the forge decision itself is per group.
  std::uint64_t send_group = 0;

  // Validates and enqueues one batch of sends from node v, triggered while
  // processing an event with key `now`.
  auto submit = [&](NodeId v, const std::vector<Send>& sends,
                    std::int64_t now) {
    const std::uint64_t group = send_group++;
    const bool lying = byz && adversary_plan_.lying(v);
    if (!sends.empty() && options.enforce_wakeup && !result.informed[v]) {
      fail(format_wakeup_violation(v));
      return;
    }
    for (const Send& s : sends) {
      if (s.port >= link_offset_[v + 1] - link_offset_[v]) {
        fail(format_invalid_send(v, s.port, g.degree(v)));
        return;
      }
      // Budget check BEFORE counting: a run never reports more messages
      // than it was allowed to send (metrics.messages_total <= max_messages
      // is an invariant even on violating runs).
      if (result.metrics.messages_total >= options.max_messages) {
        budget_hit = true;
        fail("message budget exceeded");
        return;
      }
      const std::uint64_t link = link_offset_[v] + s.port;
      const Endpoint dst = csr ? csr[link] : g.neighbor(v, s.port);
      // Byzantine rewrite: a lying node's content is forged BEFORE the
      // network sees it — metrics, traces, and fault decisions all act on
      // the wire content. Ground truth (result.informed / sender_informed)
      // rides outside the message and is never forged, so a fake kSource
      // can fool the receiving behavior but never truly informs it.
      const Message* wire = &s.msg;
      Message forged_msg;
      if (lying) {
        forged_msg = s.msg;
        const AdversaryPlan::ForgeOutcome fo =
            adversary_plan_.forge(v, group, link, g.degree(v), forged_msg);
        if (fo.forged || fo.advice_lie) {
          wire = &forged_msg;
          if (fo.forged) ++result.adversary.forged;
          if (fo.equivocated) ++result.adversary.equivocated;
          if (fo.replayed) ++result.adversary.replayed;
          if (fo.structured) ++result.adversary.structured_lies;
          if (fo.advice_lie) ++result.adversary.advice_lies;
          if (sink) {
            TraceEvent e;
            e.kind = fo.replayed      ? TraceEventKind::kReplayAttack
                     : fo.equivocated ? TraceEventKind::kEquivocate
                     : fo.forged      ? TraceEventKind::kForge
                                      : TraceEventKind::kAdviceLie;
            e.node = v;
            e.port = s.port;
            e.peer = dst.node;
            e.msg = wire->kind;
            e.key = now;
            e.seq = seq;
            e.link = link;
            e.aux = wire->payload;  // the lied content, for diffability
            e.flag = fo.advice_lie;
            sink->record(e);
          }
        }
      }
      result.metrics.count_send(*wire);
      ++result.sends_by_node[v];
      if (options.trace) {
        result.trace.push_back(SentRecord{v, s.port, dst.node, wire->kind,
                                          result.informed[v], now});
      }
      if (sink) {
        TraceEvent e;
        e.kind = TraceEventKind::kSend;
        e.node = v;
        e.port = s.port;
        e.peer = dst.node;
        e.msg = wire->kind;
        e.key = now;
        e.seq = seq;  // the first copy's sequence number: the fault key
        e.link = link;
        e.aux = wire->size_bits();
        e.flag = result.informed[v];
        sink->record(e);
      }
      // The message's fate is decided once, at submit time, keyed on
      // (seq, link) — a send counts toward metrics even when the network
      // then drops it (the node did transmit).
      FaultPlan::MessageFault mf;
      if (message_faulty) mf = fault_plan_.message_fault(seq, link);
      if (sink && (mf.drop || mf.duplicate || mf.extra_delay > 0)) {
        TraceEvent e;
        e.kind = mf.drop ? TraceEventKind::kDrop
                         : (mf.duplicate ? TraceEventKind::kDuplicate
                                         : TraceEventKind::kDelay);
        e.node = v;
        e.port = s.port;
        e.peer = dst.node;
        e.msg = wire->kind;
        e.key = now;
        e.seq = seq;
        e.link = link;
        e.aux = mf.extra_delay;
        sink->record(e);
        // A duplicated message can also be delayed; record both decisions.
        if (mf.duplicate && mf.extra_delay > 0) {
          e.kind = TraceEventKind::kDelay;
          sink->record(e);
        }
      }
      if (mf.drop) {
        ++result.faults.dropped;
        ++seq;  // the dropped message still consumes its sequence number
        continue;
      }
      if (mf.duplicate) ++result.faults.duplicated;
      if (mf.extra_delay > 0) ++result.faults.delayed;
      const int copies = mf.duplicate ? 2 : 1;
      for (int c = 0; c < copies; ++c) {
        const std::size_t slot = events_.acquire_slot();
        events_.slot(slot) =
            EngineEvent{dst.node, dst.port, *wire, result.informed[v]};
        events_.push({scheduler_.delivery_key(now, seq, link) +
                          static_cast<std::int64_t>(mf.extra_delay),
                      seq, slot});
        ++seq;
      }
    }
  };

  // A behavior call on a faulty run may throw (corrupted advice feeding a
  // decoder); absorb it into a structured violation there. Reliable runs
  // keep the legacy propagate-to-caller contract.
  auto invoke_start = [&](NodeId v) {
    if (!guarded) {
      behaviors_[v]->on_start(inputs_[v], sends_);
      return true;
    }
    try {
      behaviors_[v]->on_start(inputs_[v], sends_);
      return true;
    } catch (const std::exception& e) {
      fail(format_behavior_exception(e.what()));
      return false;
    }
  };
  auto invoke_receive = [&](NodeId v, const Message& msg, Port at_port) {
    if (!guarded) {
      behaviors_[v]->on_receive(inputs_[v], msg, at_port, sends_);
      return true;
    }
    try {
      behaviors_[v]->on_receive(inputs_[v], msg, at_port, sends_);
      return true;
    } catch (const std::exception& e) {
      fail(format_behavior_exception(e.what()));
      return false;
    }
  };

  // Empty-history activations. Node order is irrelevant to correctness
  // (deliveries all happen strictly later) but kept deterministic.
  for (NodeId v = 0; v < n && result.violation.empty(); ++v) {
    // A node whose crash key is <= 0 is down before its activation fires.
    if (faulty && fault_plan_.crash_key(v) <= 0) continue;
    sends_.clear();
    if (!invoke_start(v)) break;
    submit(v, sends_, 0);
  }

  const bool has_deadline = options.deadline_ns > 0;
  std::chrono::steady_clock::time_point deadline_at;
  if (has_deadline) {
    deadline_at = std::chrono::steady_clock::now() +
                  std::chrono::nanoseconds(options.deadline_ns);
  }
  std::uint64_t processed = 0;
  bool timed_out = false;
  bool events_exhausted = false;

  while (!events_.empty() && result.violation.empty()) {
    if (options.max_events > 0 && processed >= options.max_events) {
      events_exhausted = true;
      break;
    }
    // The clock check is amortized: one steady_clock read per 1024 events
    // keeps the reliable fast path free of syscall-ish overhead.
    if (has_deadline && (processed & 1023u) == 0 &&
        std::chrono::steady_clock::now() >= deadline_at) {
      timed_out = true;
      break;
    }
    ++processed;
    const EventHeap::Entry top = events_.pop();
    // Move the event out before recycling its slot: submit() below may
    // acquire slots and grow the pool, invalidating references into it.
    EngineEvent ev = std::move(events_.slot(top.slot));
    events_.release_slot(top.slot);
    // Crash-stop: node v processes events with key strictly below its
    // crash key; anything at or after it lands on a dead node.
    if (faulty && top.key >= fault_plan_.crash_key(ev.to)) {
      ++result.faults.dead_deliveries;
      if (sink) {
        TraceEvent e;
        e.kind = TraceEventKind::kDeadDelivery;
        e.node = ev.to;
        e.port = ev.at_port;
        e.msg = ev.msg.kind;
        e.key = top.key;
        e.seq = top.seq;
        sink->record(e);
      }
      continue;
    }
    ++result.metrics.deliveries;
    if (top.key > result.metrics.completion_key) {
      result.metrics.completion_key = top.key;
    }
    if (sink) {
      // The sender is recoverable from the port relation — worth the
      // neighbor lookup only on observability runs.
      const Endpoint from = g.neighbor(ev.to, ev.at_port);
      TraceEvent e;
      e.kind = TraceEventKind::kDeliver;
      e.node = ev.to;
      e.port = ev.at_port;
      e.peer = from.node;
      e.msg = ev.msg.kind;
      e.key = top.key;
      e.seq = top.seq;
      // The same directed-link index the send was keyed on (sender side).
      e.link = link_offset_[from.node] + from.port;
      e.aux = ev.msg.size_bits();
      e.flag = ev.sender_informed;
      sink->record(e);
    }
    // Deliveries to colluding nodes feed the shared replay buffer: the
    // adversary replays genuine traffic its members have seen.
    if (byz && adversary_plan_.lying(ev.to)) adversary_plan_.observe(ev.msg);
    // The paper's informing rule: any message from an informed sender
    // informs the receiver (M can ride along on it).
    if (ev.sender_informed && !result.informed[ev.to]) {
      result.informed[ev.to] = true;
      result.informed_at[ev.to] = top.key;
      if (sink) {
        TraceEvent e;
        e.kind = TraceEventKind::kInformed;
        e.node = ev.to;
        e.peer = g.neighbor(ev.to, ev.at_port).node;
        e.port = ev.at_port;
        e.key = top.key;
        e.seq = top.seq;
        sink->record(e);
      }
    }
    sends_.clear();
    if (!invoke_receive(ev.to, ev.msg, ev.at_port)) break;
    submit(ev.to, sends_, top.key);
  }

  result.terminated.resize(n);
  result.outputs.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    result.terminated[v] = behaviors_[v]->terminated();
    result.outputs[v] = behaviors_[v]->output();
  }
  result.all_informed = (result.informed_count() == n);
  result.metrics.queue_depth_peak = events_.peak();
  if (timed_out) {
    result.status = RunStatus::kTimeout;
  } else if (events_exhausted || budget_hit) {
    result.status = RunStatus::kBudgetExhausted;
  } else if (byz && !result.violation.empty()) {
    // An adversarial run that produced an observable symptom (violation or
    // behavior exception on forged content) was DETECTED. A fooled run that
    // ends cleanly but wrong stays kTaskFailed — the silent case.
    result.status = RunStatus::kByzantineDetected;
  } else if (!result.violation.empty() || !result.all_informed) {
    result.status = RunStatus::kTaskFailed;
  } else {
    result.status = RunStatus::kCompleted;
  }
  if (sink) sink->end_run(result);
  return result;
}

}  // namespace oraclesize
