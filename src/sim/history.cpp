#include "sim/history.h"

namespace oraclesize {

namespace {

/// Replays the growing history through the pure scheme and emits only the
/// sends appended since the previous invocation.
class ReplayBehavior final : public NodeBehavior {
 public:
  explicit ReplayBehavior(const HistoryScheme& scheme) : scheme_(scheme) {}

  std::vector<Send> on_start(const NodeInput& input) override {
    history_.input = input;
    return advance();
  }

  std::vector<Send> on_receive(const NodeInput& /*input*/, const Message& msg,
                               Port from_port) override {
    history_.received.emplace_back(msg, from_port);
    return advance();
  }

 private:
  std::vector<Send> advance() {
    std::vector<Send> all = scheme_(history_);
    std::vector<Send> fresh(all.begin() + static_cast<std::ptrdiff_t>(
                                              emitted_),
                            all.end());
    emitted_ = all.size();
    return fresh;
  }

  const HistoryScheme& scheme_;
  History history_;
  std::size_t emitted_ = 0;
};

}  // namespace

std::unique_ptr<NodeBehavior> HistorySchemeAlgorithm::make_behavior(
    const NodeInput& /*input*/) const {
  return std::make_unique<ReplayBehavior>(scheme_);
}

}  // namespace oraclesize
