#include "sim/history.h"

namespace oraclesize {

namespace {

/// Replays the growing history through the pure scheme and emits only the
/// sends appended since the previous invocation.
class ReplayBehavior final : public NodeBehavior {
 public:
  explicit ReplayBehavior(const HistoryScheme& scheme) : scheme_(scheme) {}

  void on_start(const NodeInput& input, std::vector<Send>& out) override {
    history_.input = input;
    advance(out);
  }

  void on_receive(const NodeInput& /*input*/, const Message& msg,
                  Port from_port, std::vector<Send>& out) override {
    history_.received.emplace_back(msg, from_port);
    advance(out);
  }

 private:
  void advance(std::vector<Send>& out) {
    std::vector<Send> all = scheme_(history_);
    out.insert(out.end(),
               all.begin() + static_cast<std::ptrdiff_t>(emitted_),
               all.end());
    emitted_ = all.size();
  }

  const HistoryScheme& scheme_;
  History history_;
  std::size_t emitted_ = 0;
};

}  // namespace

std::unique_ptr<NodeBehavior> HistorySchemeAlgorithm::make_behavior(
    const NodeInput& /*input*/) const {
  return std::make_unique<ReplayBehavior>(scheme_);
}

}  // namespace oraclesize
