#include "sim/engine.h"

#include <algorithm>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace oraclesize {

namespace {

struct Event {
  std::int64_t key = 0;  ///< delivery priority (lower first)
  std::uint64_t seq = 0;
  NodeId to = kNoNode;
  Port at_port = kNoPort;
  Message msg;
  bool sender_informed = false;
  NodeId from = kNoNode;
  Port from_port = kNoPort;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.key != b.key) return a.key > b.key;
    return a.seq > b.seq;
  }
};

}  // namespace

std::uint64_t RunResult::max_node_sends() const {
  std::uint64_t best = 0;
  for (std::uint64_t s : sends_by_node) best = std::max(best, s);
  return best;
}

std::size_t RunResult::informed_count() const {
  std::size_t c = 0;
  for (bool b : informed) c += b ? 1 : 0;
  return c;
}

RunResult run_execution(const PortGraph& g, NodeId source,
                        const std::vector<BitString>& advice,
                        const Algorithm& algorithm,
                        const RunOptions& options) {
  const std::size_t n = g.num_nodes();
  if (advice.size() != n) {
    throw std::invalid_argument("run_execution: advice size != num nodes");
  }
  if (source >= n) throw std::invalid_argument("run_execution: bad source");

  RunResult result;
  result.informed.assign(n, false);
  result.informed[source] = true;
  result.sends_by_node.assign(n, 0);
  result.informed_at.assign(n, RunResult::kNeverInformed);
  result.informed_at[source] = 0;

  std::vector<NodeInput> inputs(n);
  std::vector<std::unique_ptr<NodeBehavior>> behaviors(n);
  for (NodeId v = 0; v < n; ++v) {
    inputs[v] = NodeInput{advice[v], v == source,
                          options.anonymous ? Label{0} : g.label(v),
                          g.degree(v)};
    behaviors[v] = algorithm.make_behavior(inputs[v]);
  }

  Scheduler scheduler(options.scheduler, options.seed, options.max_delay);
  std::priority_queue<Event, std::vector<Event>, EventLater> queue;
  std::uint64_t seq = 0;

  auto fail = [&](const std::string& what) {
    if (result.violation.empty()) result.violation = what;
  };

  // Validates and enqueues one batch of sends from node v, triggered while
  // processing an event with key `now`.
  auto submit = [&](NodeId v, const std::vector<Send>& sends,
                    std::int64_t now) {
    if (!sends.empty() && options.enforce_wakeup && !result.informed[v]) {
      std::ostringstream os;
      os << "wakeup violation: uninformed node " << v << " transmitted";
      fail(os.str());
      return;
    }
    for (const Send& s : sends) {
      if (s.port >= g.degree(v)) {
        std::ostringstream os;
        os << "invalid send: node " << v << " port " << s.port << " (degree "
           << g.degree(v) << ")";
        fail(os.str());
        return;
      }
      const Endpoint dst = g.neighbor(v, s.port);
      result.metrics.count_send(s.msg);
      ++result.sends_by_node[v];
      if (result.metrics.messages_total > options.max_messages) {
        fail("message budget exceeded");
        return;
      }
      if (options.trace) {
        result.trace.push_back(SentRecord{v, s.port, dst.node, s.msg.kind,
                                          result.informed[v], now});
      }
      const std::uint64_t link =
          (static_cast<std::uint64_t>(v) << 32) | s.port;
      queue.push(Event{scheduler.delivery_key(now, seq, link), seq, dst.node,
                       dst.port, s.msg, result.informed[v], v, s.port});
      ++seq;
    }
  };

  // Empty-history activations. Node order is irrelevant to correctness
  // (deliveries all happen strictly later) but kept deterministic.
  for (NodeId v = 0; v < n && result.violation.empty(); ++v) {
    submit(v, behaviors[v]->on_start(inputs[v]), 0);
  }

  while (!queue.empty() && result.violation.empty()) {
    const Event ev = queue.top();
    queue.pop();
    ++result.metrics.deliveries;
    if (ev.key > result.metrics.completion_key) {
      result.metrics.completion_key = ev.key;
    }
    // The paper's informing rule: any message from an informed sender
    // informs the receiver (M can ride along on it).
    if (ev.sender_informed && !result.informed[ev.to]) {
      result.informed[ev.to] = true;
      result.informed_at[ev.to] = ev.key;
    }
    submit(ev.to, behaviors[ev.to]->on_receive(inputs[ev.to], ev.msg,
                                               ev.at_port),
           ev.key);
  }

  result.terminated.resize(n);
  result.outputs.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    result.terminated[v] = behaviors[v]->terminated();
    result.outputs[v] = behaviors[v]->output();
  }
  result.all_informed = (result.informed_count() == n);
  return result;
}

}  // namespace oraclesize
