#include "sim/engine.h"

#include <algorithm>

#include "sim/execution_context.h"

namespace oraclesize {

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kCompleted:
      return "completed";
    case RunStatus::kTaskFailed:
      return "task_failed";
    case RunStatus::kTimeout:
      return "timeout";
    case RunStatus::kBudgetExhausted:
      return "budget_exhausted";
    case RunStatus::kCrashed:
      return "crashed";
    case RunStatus::kByzantineDetected:
      return "byzantine_detected";
  }
  return "unknown";
}

std::uint64_t RunResult::max_node_sends() const {
  std::uint64_t best = 0;
  for (std::uint64_t s : sends_by_node) best = std::max(best, s);
  return best;
}

std::size_t RunResult::informed_count() const {
  std::size_t c = 0;
  for (bool b : informed) c += b ? 1 : 0;
  return c;
}

RunResult run_execution(const PortGraph& g, NodeId source,
                        const std::vector<BitString>& advice,
                        const Algorithm& algorithm,
                        const RunOptions& options) {
  ExecutionContext context;
  return context.run(g, source, advice, algorithm, options);
}

}  // namespace oraclesize
