#include "sim/seed_batch_engine.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace oraclesize {

namespace {

// Cold formatting helpers, duplicated from the scalar engine so violation
// strings in the shared result match ExecutionContext's byte for byte (the
// bit-identity contract covers RunResult::violation).
[[gnu::cold]] std::string format_wakeup_violation(NodeId v) {
  std::ostringstream os;
  os << "wakeup violation: uninformed node " << v << " transmitted";
  return os.str();
}

[[gnu::cold]] std::string format_invalid_send(NodeId v, Port port,
                                              std::size_t degree) {
  std::ostringstream os;
  os << "invalid send: node " << v << " port " << port << " (degree " << degree
     << ")";
  return os.str();
}

[[gnu::cold]] std::string format_behavior_exception(const char* what) {
  std::string s = "behavior exception: ";
  s += what;
  return s;
}

}  // namespace

bool SeedBatchExecutionContext::lockstep_eligible(
    const RunOptions& base) noexcept {
  switch (base.scheduler) {
    case SchedulerKind::kSynchronous:
    case SchedulerKind::kAsyncFifo:
    case SchedulerKind::kAsyncLifo:
      break;
    default:
      // kAsyncRandom / kAsyncLinkFifo consume a seeded stream in draw
      // order; two lanes with different engine seeds share no stream.
      // kAsyncAdversarial's probe history is execution-dependent.
      return false;
  }
  // Byzantine families are ineligible outright: the replay buffer evolves
  // with delivery order, so lanes can't share a clean-stream pass. They
  // route to scalar replay (fallback-not-divergence), never diverge.
  return !base.trace && base.trace_sink == nullptr &&
         base.deadline_ns == 0 && !base.adversary.enabled();
}

void SeedBatchExecutionContext::arm_behaviors(std::size_t n,
                                              const Algorithm& algorithm) {
  const bool reusable = algorithm.reusable();
  const bool pool_matches =
      reusable && pool_count_ > 0 && pool_algorithm_ == algorithm.name();
  behaviors_.resize(n);
  const std::size_t reuse = pool_matches ? std::min(pool_count_, n) : 0;
  for (NodeId v = 0; v < reuse; ++v) {
    behaviors_[v]->reset(inputs_[v]);
  }
  for (NodeId v = reuse; v < n; ++v) {
    behaviors_[v] = algorithm.make_behavior(inputs_[v]);
  }
  if (reusable) {
    pool_algorithm_ = algorithm.name();
    pool_count_ = n;
  } else {
    pool_algorithm_.clear();
    pool_count_ = 0;
  }
}

const RunResult& SeedBatchExecutionContext::run_lockstep(
    const PortGraph& g, NodeId source, const std::vector<BitString>& advice,
    const Algorithm& algorithm, const RunOptions& base,
    const std::vector<Lane>& lanes,
    std::vector<LaneDisposition>& dispositions) {
  const std::size_t n = g.num_nodes();
  if (advice.size() != n) {
    throw std::invalid_argument("run_execution: advice size != num nodes");
  }
  if (source >= n) throw std::invalid_argument("run_execution: bad source");

  stats_ = SeedBatchStats{};
  stats_.lanes = static_cast<std::uint32_t>(lanes.size());
  result_ = RunResult();
  dispositions.assign(lanes.size(), LaneDisposition::kShared);
  if (lanes.empty()) return result_;

  if (!lockstep_eligible(base)) {
    dispositions.assign(lanes.size(), LaneDisposition::kReplay);
    stats_.replayed = stats_.lanes;
    return result_;
  }
  stats_.lockstep_ran = true;

  // The fault rates are family-shared (only the seed is per-lane), so
  // either every lane runs a fault plan or none does — and likewise the
  // message-fault mask is armed for all enabled lanes or for none.
  const bool family_faulty = base.fault.enabled();
  std::uint32_t shared = static_cast<std::uint32_t>(lanes.size());
  active_mask_lanes_.clear();
  if (family_faulty) {
    lane_plans_.resize(lanes.size());
    for (std::uint32_t l = 0; l < lanes.size(); ++l) {
      FaultPlanParams params = base.fault;
      params.seed = lanes[l].fault_seed;
      lane_plans_[l].arm(params, n, source);
      // A lane leaves the clean stream the moment any fault materializes:
      // a scheduled crash or a flipped advice bit is known at arm time, so
      // such lanes retire before the pass even starts.
      if (lane_plans_[l].num_crashed() > 0 ||
          (lane_plans_[l].corrupts_advice() &&
           lane_plans_[l].corrupts_any_bit(advice))) {
        dispositions[l] = LaneDisposition::kReplay;
        --shared;
        continue;
      }
      if (lane_plans_[l].message_faults()) active_mask_lanes_.push_back(l);
    }
  }
  bool aborted = shared == 0;

  result_.informed.assign(n, false);
  result_.informed[source] = true;
  result_.sends_by_node.assign(n, 0);
  result_.informed_at.assign(n, RunResult::kNeverInformed);
  result_.informed_at[source] = 0;

  auto fail = [&](std::string what) {
    if (result_.violation.empty()) result_.violation = std::move(what);
  };

  inputs_.resize(n);
  link_offset_.resize(n + 1);
  link_offset_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    // Shared lanes read the ORIGINAL advice: fault lanes that would have
    // decoded a corrupted copy retired at arm time, and a zero-flip copy is
    // content-identical to the original.
    inputs_[v] = NodeInput{&advice[v], v == source,
                           base.anonymous ? Label{0} : g.label(v),
                           g.degree(v)};
    link_offset_[v + 1] = link_offset_[v] + g.degree(v);
  }

  // Behavior exceptions (advice decoders, scheme bugs) follow the scalar
  // engine's split: a fault-enabled lane absorbs them into a kTaskFailed
  // result, a fault-disabled lane propagates them from run(). The shared
  // pass always catches — on a fault-free family it then retires every
  // lane, whose scalar replays rethrow the exception canonically.
  auto drop_clean_lanes = [&]() {
    if (family_faulty) return;
    for (std::uint32_t l = 0; l < dispositions.size(); ++l) {
      dispositions[l] = LaneDisposition::kReplay;
    }
    shared = 0;
    aborted = true;
  };

  bool armed = true;
  if (!aborted) {
    try {
      arm_behaviors(n, algorithm);
    } catch (const std::exception& e) {
      behaviors_.clear();
      pool_algorithm_.clear();
      pool_count_ = 0;
      drop_clean_lanes();
      fail(format_behavior_exception(e.what()));
      armed = false;
    }
  }
  if (aborted || !armed) {
    if (!armed && shared > 0) {
      result_.terminated.assign(n, false);
      result_.outputs.assign(n, 0);
      result_.status = RunStatus::kTaskFailed;
    }
    stats_.shared = shared;
    stats_.replayed = stats_.lanes - shared;
    return result_;
  }

  events_.clear();
  std::uint64_t seq = 0;
  bool budget_hit = false;

  const Endpoint* const csr = g.csr_endpoints();
  const SchedulerKind kind = base.scheduler;

  // The eligible schedulers are pure in (now, seq) — inlined here so the
  // clean pass carries no Scheduler state at all.
  auto delivery_key = [kind](std::int64_t now, std::uint64_t seq_in) {
    switch (kind) {
      case SchedulerKind::kAsyncFifo:
        return static_cast<std::int64_t>(seq_in);
      case SchedulerKind::kAsyncLifo:
        return -static_cast<std::int64_t>(seq_in);
      default:
        return now + 1;
    }
  };

  // Validates and enqueues one batch of sends from node v — the scalar
  // submit path minus fault materialization, plus the R-wide mask: each
  // message's seed-independent prekey is computed once, then every lane
  // still on the clean stream is asked for its decision; any non-benign
  // answer retires that lane.
  auto submit = [&](NodeId v, const std::vector<Send>& sends,
                    std::int64_t now) {
    if (!sends.empty() && base.enforce_wakeup && !result_.informed[v]) {
      fail(format_wakeup_violation(v));
      return;
    }
    for (const Send& s : sends) {
      if (s.port >= link_offset_[v + 1] - link_offset_[v]) {
        fail(format_invalid_send(v, s.port, g.degree(v)));
        return;
      }
      if (result_.metrics.messages_total >= base.max_messages) {
        budget_hit = true;
        fail("message budget exceeded");
        return;
      }
      const std::uint64_t link = link_offset_[v] + s.port;
      const Endpoint dst = csr ? csr[link] : g.neighbor(v, s.port);
      result_.metrics.count_send(s.msg);
      ++result_.sends_by_node[v];
      if (!active_mask_lanes_.empty()) {
        const std::uint64_t prekey = FaultPlan::message_prekey(seq, link);
        for (std::size_t k = 0; k < active_mask_lanes_.size();) {
          const std::uint32_t l = active_mask_lanes_[k];
          const FaultPlan::MessageFault mf =
              lane_plans_[l].message_fault_prekeyed(prekey);
          if (mf.drop || mf.duplicate || mf.extra_delay > 0) {
            dispositions[l] = LaneDisposition::kReplay;
            --shared;
            active_mask_lanes_[k] = active_mask_lanes_.back();
            active_mask_lanes_.pop_back();
          } else {
            ++k;
          }
        }
        if (shared == 0) {
          aborted = true;
          return;
        }
      }
      const std::size_t slot = events_.acquire_slot();
      events_.slot(slot) =
          EngineEvent{dst.node, dst.port, s.msg, result_.informed[v]};
      events_.push({delivery_key(now, seq), seq, slot});
      ++seq;
    }
  };

  auto invoke_start = [&](NodeId v) {
    try {
      behaviors_[v]->on_start(inputs_[v], sends_);
      return true;
    } catch (const std::exception& e) {
      drop_clean_lanes();
      fail(format_behavior_exception(e.what()));
      return false;
    }
  };
  auto invoke_receive = [&](NodeId v, const Message& msg, Port at_port) {
    try {
      behaviors_[v]->on_receive(inputs_[v], msg, at_port, sends_);
      return true;
    } catch (const std::exception& e) {
      drop_clean_lanes();
      fail(format_behavior_exception(e.what()));
      return false;
    }
  };

  for (NodeId v = 0; v < n && result_.violation.empty() && !aborted; ++v) {
    sends_.clear();
    if (!invoke_start(v)) break;
    submit(v, sends_, 0);
  }

  std::uint64_t processed = 0;
  bool events_exhausted = false;

  while (!events_.empty() && result_.violation.empty() && !aborted) {
    if (base.max_events > 0 && processed >= base.max_events) {
      events_exhausted = true;
      break;
    }
    ++processed;
    const EventHeap::Entry top = events_.pop();
    EngineEvent ev = std::move(events_.slot(top.slot));
    events_.release_slot(top.slot);
    // No crash-stop check: lanes with a non-empty crash schedule never
    // reach the pass, so the clean stream has no dead deliveries.
    ++result_.metrics.deliveries;
    if (top.key > result_.metrics.completion_key) {
      result_.metrics.completion_key = top.key;
    }
    if (ev.sender_informed && !result_.informed[ev.to]) {
      result_.informed[ev.to] = true;
      result_.informed_at[ev.to] = top.key;
    }
    sends_.clear();
    if (!invoke_receive(ev.to, ev.msg, ev.at_port)) break;
    submit(ev.to, sends_, top.key);
  }

  stats_.lockstep_events = processed;
  stats_.shared = shared;
  stats_.replayed = stats_.lanes - shared;
  if (shared == 0) return result_;  // nobody reads the aborted state

  result_.terminated.resize(n);
  result_.outputs.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    result_.terminated[v] = behaviors_[v]->terminated();
    result_.outputs[v] = behaviors_[v]->output();
  }
  result_.all_informed = (result_.informed_count() == n);
  result_.metrics.queue_depth_peak = events_.peak();
  if (events_exhausted || budget_hit) {
    result_.status = RunStatus::kBudgetExhausted;
  } else if (!result_.violation.empty() || !result_.all_informed) {
    result_.status = RunStatus::kTaskFailed;
  } else {
    result_.status = RunStatus::kCompleted;
  }
  return result_;
}

std::vector<RunResult> SeedBatchExecutionContext::run(
    const PortGraph& g, NodeId source, const std::vector<BitString>& advice,
    const Algorithm& algorithm, const RunOptions& base,
    const std::vector<Lane>& lanes) {
  std::vector<LaneDisposition> dispositions;
  const RunResult& shared =
      run_lockstep(g, source, advice, algorithm, base, lanes, dispositions);
  std::vector<RunResult> out(lanes.size());
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    if (dispositions[l] == LaneDisposition::kShared) {
      out[l] = shared;
    } else {
      RunOptions options = base;
      options.seed = lanes[l].seed;
      options.fault.seed = lanes[l].fault_seed;
      out[l] = scalar_.run(g, source, advice, algorithm, options);
    }
  }
  return out;
}

}  // namespace oraclesize
