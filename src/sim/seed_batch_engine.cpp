#include "sim/seed_batch_engine.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace oraclesize {

namespace {

// Cold formatting helpers, duplicated from the scalar engine so violation
// strings in the shared result match ExecutionContext's byte for byte (the
// bit-identity contract covers RunResult::violation).
[[gnu::cold]] std::string format_wakeup_violation(NodeId v) {
  std::ostringstream os;
  os << "wakeup violation: uninformed node " << v << " transmitted";
  return os.str();
}

[[gnu::cold]] std::string format_invalid_send(NodeId v, Port port,
                                              std::size_t degree) {
  std::ostringstream os;
  os << "invalid send: node " << v << " port " << port << " (degree " << degree
     << ")";
  return os.str();
}

[[gnu::cold]] std::string format_behavior_exception(const char* what) {
  std::string s = "behavior exception: ";
  s += what;
  return s;
}

// Sift helpers for the per-class index heaps: identical ordering and hole
// insertion to EventHeap, but over a bare Entry vector so a key class is
// nothing more than its entries (the shared slot pool stores the events).
void class_heap_push(std::vector<EventHeap::Entry>& h, EventHeap::Entry e) {
  std::size_t i = h.size();
  h.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!EventHeap::entry_before(e, h[parent])) break;
    h[i] = h[parent];
    i = parent;
  }
  h[i] = e;
}

EventHeap::Entry class_heap_pop(std::vector<EventHeap::Entry>& h) {
  const EventHeap::Entry top = h.front();
  const EventHeap::Entry last = h.back();
  h.pop_back();
  const std::size_t size = h.size();
  if (size > 0) {
    std::size_t i = 0;
    while (true) {
      const std::size_t left = 2 * i + 1;
      if (left >= size) break;
      const std::size_t right = left + 1;
      std::size_t best = left;
      if (right < size && EventHeap::entry_before(h[right], h[left])) {
        best = right;
      }
      if (!EventHeap::entry_before(h[best], last)) break;
      h[i] = h[best];
      i = best;
    }
    h[i] = last;
  }
  return top;
}

}  // namespace

bool SeedBatchExecutionContext::lockstep_eligible(
    const RunOptions& base) noexcept {
  switch (base.scheduler) {
    case SchedulerKind::kSynchronous:
    case SchedulerKind::kAsyncFifo:
    case SchedulerKind::kAsyncLifo:
      break;
    case SchedulerKind::kAsyncRandom:
    case SchedulerKind::kAsyncLinkFifo:
      // Counter-keyed delays are pure in (options.seed, seq, link), so
      // lanes batch as key classes; the legacy stream mode consumes a
      // seeded stream in draw order, which differs per lane.
      if (base.keying != SchedulerKeying::kCounter) return false;
      break;
    default:
      // kAsyncAdversarial's probe history is execution-dependent.
      return false;
  }
  // Byzantine families are ineligible outright: the replay buffer evolves
  // with delivery order, so lanes can't share a clean-stream pass. They
  // route to scalar replay (fallback-not-divergence), never diverge.
  return !base.trace && base.trace_sink == nullptr &&
         base.deadline_ns == 0 && !base.adversary.enabled();
}

void SeedBatchExecutionContext::arm_behaviors(std::size_t n,
                                              const Algorithm& algorithm) {
  const bool reusable = algorithm.reusable();
  const bool pool_matches =
      reusable && pool_count_ > 0 && pool_algorithm_ == algorithm.name();
  behaviors_.resize(n);
  const std::size_t reuse = pool_matches ? std::min(pool_count_, n) : 0;
  for (NodeId v = 0; v < reuse; ++v) {
    behaviors_[v]->reset(inputs_[v]);
  }
  for (NodeId v = reuse; v < n; ++v) {
    behaviors_[v] = algorithm.make_behavior(inputs_[v]);
  }
  if (reusable) {
    pool_algorithm_ = algorithm.name();
    pool_count_ = n;
  } else {
    pool_algorithm_.clear();
    pool_count_ = 0;
  }
}

const RunResult& SeedBatchExecutionContext::run_lockstep(
    const PortGraph& g, NodeId source, const std::vector<BitString>& advice,
    const Algorithm& algorithm, const RunOptions& base,
    const std::vector<Lane>& lanes,
    std::vector<LaneDisposition>& dispositions) {
  const std::size_t n = g.num_nodes();
  if (advice.size() != n) {
    throw std::invalid_argument("run_execution: advice size != num nodes");
  }
  if (source >= n) throw std::invalid_argument("run_execution: bad source");

  stats_ = SeedBatchStats{};
  stats_.lanes = static_cast<std::uint32_t>(lanes.size());
  result_ = RunResult();
  keyed_ = false;
  lane_class_.assign(lanes.size(), kNoClass);
  dispositions.assign(lanes.size(), LaneDisposition::kShared);
  if (lanes.empty()) return result_;

  if (!lockstep_eligible(base)) {
    dispositions.assign(lanes.size(), LaneDisposition::kReplay);
    stats_.replayed = stats_.lanes;
    return result_;
  }
  stats_.lockstep_ran = true;

  // The fault rates are family-shared (only the seed is per-lane), so
  // either every lane runs a fault plan or none does — and likewise the
  // message-fault mask is armed for all enabled lanes or for none.
  const bool family_faulty = base.fault.enabled();
  std::uint32_t shared = static_cast<std::uint32_t>(lanes.size());
  active_mask_lanes_.clear();
  if (family_faulty) {
    lane_plans_.resize(lanes.size());
    for (std::uint32_t l = 0; l < lanes.size(); ++l) {
      FaultPlanParams params = base.fault;
      params.seed = lanes[l].fault_seed;
      lane_plans_[l].arm(params, n, source);
      // A lane leaves the clean stream the moment any fault materializes:
      // a scheduled crash or a flipped advice bit is known at arm time, so
      // such lanes retire before the pass even starts.
      if (lane_plans_[l].num_crashed() > 0 ||
          (lane_plans_[l].corrupts_advice() &&
           lane_plans_[l].corrupts_any_bit(advice))) {
        dispositions[l] = LaneDisposition::kReplay;
        --shared;
        continue;
      }
      if (lane_plans_[l].message_faults()) active_mask_lanes_.push_back(l);
    }
  }
  bool aborted = shared == 0;

  result_.informed.assign(n, false);
  result_.informed[source] = true;
  result_.sends_by_node.assign(n, 0);
  result_.informed_at.assign(n, RunResult::kNeverInformed);
  result_.informed_at[source] = 0;

  auto fail = [&](std::string what) {
    if (result_.violation.empty()) result_.violation = std::move(what);
  };

  inputs_.resize(n);
  link_offset_.resize(n + 1);
  link_offset_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    // Shared lanes read the ORIGINAL advice: fault lanes that would have
    // decoded a corrupted copy retired at arm time, and a zero-flip copy is
    // content-identical to the original.
    inputs_[v] = NodeInput{&advice[v], v == source,
                           base.anonymous ? Label{0} : g.label(v),
                           g.degree(v)};
    link_offset_[v + 1] = link_offset_[v] + g.degree(v);
  }

  // Counter-keyed seeded schedulers: group the surviving lanes into key
  // classes by scheduler seed. Each class gets its own heap / clocks /
  // key-valued outputs; everything else in the pass is shared. The
  // seed-independent schedulers skip all of this (keyed_ stays false) and
  // run the single-heap pass unchanged.
  const SchedulerKind kind = base.scheduler;
  const bool link_fifo = kind == SchedulerKind::kAsyncLinkFifo;
  keyed_ = kind == SchedulerKind::kAsyncRandom || link_fifo;
  if (keyed_) {
    std::size_t used = 0;
    for (std::uint32_t l = 0; l < lanes.size(); ++l) {
      if (dispositions[l] != LaneDisposition::kShared) continue;
      std::size_t ci = 0;
      while (ci < used && classes_[ci].seed != lanes[l].seed) ++ci;
      if (ci == used) {
        if (classes_.size() <= used) classes_.emplace_back();
        KeyClass& c = classes_[used];
        c.seed = lanes[l].seed;
        c.active = true;
        c.live = 0;
        c.heap.clear();
        c.now = 0;
        c.completion_key = 0;
        if (link_fifo) {
          c.link_clock.assign(link_offset_[n], 0);
        } else {
          c.link_clock.clear();
        }
        c.informed_at.assign(n, RunResult::kNeverInformed);
        c.informed_at[source] = 0;
        ++used;
      }
      ++classes_[ci].live;
      lane_class_[l] = static_cast<std::uint32_t>(ci);
    }
    classes_.resize(used);
  }

  // Behavior exceptions (advice decoders, scheme bugs) follow the scalar
  // engine's split: a fault-enabled lane absorbs them into a kTaskFailed
  // result, a fault-disabled lane propagates them from run(). The shared
  // pass always catches — on a fault-free family it then retires every
  // lane, whose scalar replays rethrow the exception canonically.
  auto drop_clean_lanes = [&]() {
    if (family_faulty) return;
    for (std::uint32_t l = 0; l < dispositions.size(); ++l) {
      dispositions[l] = LaneDisposition::kReplay;
    }
    shared = 0;
    aborted = true;
  };

  bool armed = true;
  if (!aborted) {
    try {
      arm_behaviors(n, algorithm);
    } catch (const std::exception& e) {
      behaviors_.clear();
      pool_algorithm_.clear();
      pool_count_ = 0;
      drop_clean_lanes();
      fail(format_behavior_exception(e.what()));
      armed = false;
    }
  }
  if (aborted || !armed) {
    if (!armed && shared > 0) {
      result_.terminated.assign(n, false);
      result_.outputs.assign(n, 0);
      result_.status = RunStatus::kTaskFailed;
    }
    stats_.shared = shared;
    stats_.replayed = stats_.lanes - shared;
    return result_;
  }

  events_.clear();
  std::uint64_t seq = 0;
  bool budget_hit = false;
  // Keyed mode bypasses events_'s own heap (classes carry their own), so
  // the pending count and its peak — the scalar engine's heap-size
  // trajectory — are tracked by hand.
  std::size_t pending = 0;
  std::size_t pending_peak = 0;

  const Endpoint* const csr = g.csr_endpoints();

  // The seed-independent schedulers are pure in (now, seq) — inlined here
  // so the clean pass carries no Scheduler state at all.
  auto delivery_key = [kind](std::int64_t now, std::uint64_t seq_in) {
    switch (kind) {
      case SchedulerKind::kAsyncFifo:
        return static_cast<std::int64_t>(seq_in);
      case SchedulerKind::kAsyncLifo:
        return -static_cast<std::int64_t>(seq_in);
      default:
        return now + 1;
    }
  };

  // Retires a whole key class (its delivery order split from the driver's,
  // or its last live lane left): every still-shared lane of the class goes
  // to scalar replay and its lanes stop answering the fault mask.
  auto retire_class = [&](std::size_t ci) {
    KeyClass& c = classes_[ci];
    c.active = false;
    c.live = 0;
    for (std::uint32_t l = 0; l < dispositions.size(); ++l) {
      if (lane_class_[l] == ci && dispositions[l] == LaneDisposition::kShared) {
        dispositions[l] = LaneDisposition::kReplay;
        --shared;
      }
    }
    if (!active_mask_lanes_.empty()) {
      std::size_t w = 0;
      for (std::size_t k = 0; k < active_mask_lanes_.size(); ++k) {
        if (lane_class_[active_mask_lanes_[k]] != ci) {
          active_mask_lanes_[w++] = active_mask_lanes_[k];
        }
      }
      active_mask_lanes_.resize(w);
    }
    if (shared == 0) aborted = true;
  };

  // Validates and enqueues one batch of sends from node v — the scalar
  // submit path minus fault materialization, plus the R-wide mask: each
  // message's seed-independent prekey is computed once, then every lane
  // still on the clean stream is asked for its decision; any non-benign
  // answer retires that lane.
  auto submit = [&](NodeId v, const std::vector<Send>& sends,
                    std::int64_t now) {
    if (!sends.empty() && base.enforce_wakeup && !result_.informed[v]) {
      fail(format_wakeup_violation(v));
      return;
    }
    for (const Send& s : sends) {
      if (s.port >= link_offset_[v + 1] - link_offset_[v]) {
        fail(format_invalid_send(v, s.port, g.degree(v)));
        return;
      }
      if (result_.metrics.messages_total >= base.max_messages) {
        budget_hit = true;
        fail("message budget exceeded");
        return;
      }
      const std::uint64_t link = link_offset_[v] + s.port;
      const Endpoint dst = csr ? csr[link] : g.neighbor(v, s.port);
      result_.metrics.count_send(s.msg);
      ++result_.sends_by_node[v];
      if (!active_mask_lanes_.empty()) {
        const std::uint64_t prekey = FaultPlan::message_prekey(seq, link);
        for (std::size_t k = 0; k < active_mask_lanes_.size();) {
          const std::uint32_t l = active_mask_lanes_[k];
          const FaultPlan::MessageFault mf =
              lane_plans_[l].message_fault_prekeyed(prekey);
          if (mf.drop || mf.duplicate || mf.extra_delay > 0) {
            dispositions[l] = LaneDisposition::kReplay;
            --shared;
            if (keyed_) {
              KeyClass& c = classes_[lane_class_[l]];
              if (--c.live == 0) c.active = false;
            }
            active_mask_lanes_[k] = active_mask_lanes_.back();
            active_mask_lanes_.pop_back();
          } else {
            ++k;
          }
        }
        if (shared == 0) {
          aborted = true;
          return;
        }
      }
      const std::size_t slot = events_.acquire_slot();
      events_.slot(slot) =
          EngineEvent{dst.node, dst.port, s.msg, result_.informed[v]};
      if (!keyed_) {
        events_.push({delivery_key(now, seq), seq, slot});
      } else {
        // One seed-independent hash for the message, one mix per active
        // class — the counter-keyed mirror of the fault mask above. Each
        // class keys the message with ITS OWN logical clock (c.now is the
        // key its scalar replica would pass as `now`).
        const std::uint64_t prekey = Scheduler::delivery_prekey(seq, link);
        for (std::size_t ci = 0; ci < classes_.size(); ++ci) {
          KeyClass& c = classes_[ci];
          if (!c.active) continue;
          std::int64_t key =
              c.now + 1 +
              static_cast<std::int64_t>(
                  Scheduler::counter_delay(c.seed, prekey, base.max_delay));
          if (link_fifo) {
            std::int64_t& clock = c.link_clock[link];
            clock = (key > clock) ? key : clock + 1;
            key = clock;
          }
          class_heap_push(c.heap, {key, seq, slot});
        }
        ++pending;
        if (pending > pending_peak) pending_peak = pending;
      }
      ++seq;
    }
  };

  auto invoke_start = [&](NodeId v) {
    try {
      behaviors_[v]->on_start(inputs_[v], sends_);
      return true;
    } catch (const std::exception& e) {
      drop_clean_lanes();
      fail(format_behavior_exception(e.what()));
      return false;
    }
  };
  auto invoke_receive = [&](NodeId v, const Message& msg, Port at_port) {
    try {
      behaviors_[v]->on_receive(inputs_[v], msg, at_port, sends_);
      return true;
    } catch (const std::exception& e) {
      drop_clean_lanes();
      fail(format_behavior_exception(e.what()));
      return false;
    }
  };

  for (NodeId v = 0; v < n && result_.violation.empty() && !aborted; ++v) {
    sends_.clear();
    if (!invoke_start(v)) break;
    submit(v, sends_, 0);
  }

  std::uint64_t processed = 0;
  bool events_exhausted = false;

  while ((keyed_ ? pending > 0 : !events_.empty()) &&
         result_.violation.empty() && !aborted) {
    if (base.max_events > 0 && processed >= base.max_events) {
      events_exhausted = true;
      break;
    }
    ++processed;
    EventHeap::Entry top;
    if (!keyed_) {
      top = events_.pop();
    } else {
      // The first active class drives: its minimum defines the delivery.
      // Every other class's minimum must name the same message, or that
      // class's key order has split from the shared stream and the whole
      // class retires to scalar replay.
      std::size_t di = 0;
      while (di < classes_.size() && !classes_[di].active) ++di;
      KeyClass& d = classes_[di];
      top = class_heap_pop(d.heap);
      d.now = top.key;
      if (top.key > d.completion_key) d.completion_key = top.key;
      for (std::size_t ci = di + 1; ci < classes_.size(); ++ci) {
        KeyClass& c = classes_[ci];
        if (!c.active) continue;
        if (c.heap.front().slot != top.slot) {
          retire_class(ci);
          if (aborted) break;
          continue;
        }
        const EventHeap::Entry e = class_heap_pop(c.heap);
        c.now = e.key;
        if (e.key > c.completion_key) c.completion_key = e.key;
      }
      if (aborted) break;
      --pending;
    }
    EngineEvent ev = std::move(events_.slot(top.slot));
    events_.release_slot(top.slot);
    // No crash-stop check: lanes with a non-empty crash schedule never
    // reach the pass, so the clean stream has no dead deliveries.
    ++result_.metrics.deliveries;
    if (!keyed_) {
      if (top.key > result_.metrics.completion_key) {
        result_.metrics.completion_key = top.key;
      }
    }
    if (ev.sender_informed && !result_.informed[ev.to]) {
      result_.informed[ev.to] = true;
      if (!keyed_) {
        result_.informed_at[ev.to] = top.key;
      } else {
        // Every class delivered this event at its own key (c.now, set by
        // the pop above); the informed bit flips once, shared.
        for (KeyClass& c : classes_) {
          if (c.active) c.informed_at[ev.to] = c.now;
        }
      }
    }
    sends_.clear();
    if (!invoke_receive(ev.to, ev.msg, ev.at_port)) break;
    submit(ev.to, sends_, top.key);
  }

  stats_.lockstep_events = processed;
  stats_.shared = shared;
  stats_.replayed = stats_.lanes - shared;
  if (shared == 0) return result_;  // nobody reads the aborted state

  result_.terminated.resize(n);
  result_.outputs.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    result_.terminated[v] = behaviors_[v]->terminated();
    result_.outputs[v] = behaviors_[v]->output();
  }
  result_.all_informed = (result_.informed_count() == n);
  result_.metrics.queue_depth_peak = keyed_ ? pending_peak : events_.peak();
  if (keyed_) {
    // Fill the shared plane with the first surviving class's view so the
    // returned reference is a valid result for SOME lane; per-lane readers
    // go through lane_result, which re-patches per class.
    for (const KeyClass& c : classes_) {
      if (!c.active) continue;
      result_.metrics.completion_key = c.completion_key;
      result_.informed_at = c.informed_at;
      break;
    }
  }
  if (events_exhausted || budget_hit) {
    result_.status = RunStatus::kBudgetExhausted;
  } else if (!result_.violation.empty() || !result_.all_informed) {
    result_.status = RunStatus::kTaskFailed;
  } else {
    result_.status = RunStatus::kCompleted;
  }
  return result_;
}

RunResult SeedBatchExecutionContext::lane_result(std::size_t lane) const {
  RunResult r = result_;
  if (keyed_ && lane < lane_class_.size() && lane_class_[lane] != kNoClass) {
    const KeyClass& c = classes_[lane_class_[lane]];
    r.metrics.completion_key = c.completion_key;
    r.informed_at = c.informed_at;
  }
  return r;
}

std::vector<RunResult> SeedBatchExecutionContext::run(
    const PortGraph& g, NodeId source, const std::vector<BitString>& advice,
    const Algorithm& algorithm, const RunOptions& base,
    const std::vector<Lane>& lanes) {
  std::vector<LaneDisposition> dispositions;
  run_lockstep(g, source, advice, algorithm, base, lanes, dispositions);
  std::vector<RunResult> out(lanes.size());
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    if (dispositions[l] == LaneDisposition::kShared) {
      out[l] = lane_result(l);
    } else {
      RunOptions options = base;
      options.seed = lanes[l].seed;
      options.fault.seed = lanes[l].fault_seed;
      out[l] = scalar_.run(g, source, advice, algorithm, options);
    }
  }
  return out;
}

}  // namespace oraclesize
