#include "sim/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

namespace oraclesize {

namespace {

/// Mailbox totals below this are drained by the coordinator alone: waking
/// the pool costs more than pushing a couple thousand queue entries.
constexpr std::size_t kSerialDrainLimit = 2048;

std::uint32_t resolve_shards(std::uint32_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::uint32_t>(hw) : 1u;
}

}  // namespace

// ---------------------------------------------------------------------------
// Worker pool: `shards - 1` persistent helper threads plus the calling
// thread. parallel(tasks, fn) runs fn(0..tasks-1) with atomic work claiming;
// fn must not throw (callers capture into Shard::error). Generation counting
// under one mutex keeps the pool TSan-clean: every per-epoch handoff is a
// locked write followed by locked reads, and the task metadata is only
// dereferenced by threads that claimed an index for the current generation.
// ---------------------------------------------------------------------------

class ShardedExecutionContext::Workers {
 public:
  explicit Workers(unsigned helpers) {
    threads_.reserve(helpers);
    for (unsigned i = 0; i < helpers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Workers() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      ++generation_;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void parallel(std::uint32_t tasks,
                const std::function<void(std::uint32_t)>& fn) {
    if (tasks == 0) return;
    if (tasks == 1 || threads_.empty()) {
      for (std::uint32_t i = 0; i < tasks; ++i) fn(i);
      return;
    }
    std::uint64_t gen;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fn_ = &fn;
      tasks_ = tasks;
      next_ = 0;
      done_ = 0;
      gen = ++generation_;
    }
    work_cv_.notify_all();
    claim(gen);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return done_ == tasks_; });
    fn_ = nullptr;
  }

 private:
  // Claims indices for generation `gen` only: every claim re-checks the
  // generation under the lock, so a worker that overslept one handoff and
  // woke during a later one can neither dereference the earlier cycle's
  // (long-destroyed) fn nor disturb the current cycle's counters. The lock
  // is not hot — one claim per shard per barrier, each guarding a full
  // epoch's worth of work.
  void claim(std::uint64_t gen) {
    while (true) {
      const std::function<void(std::uint32_t)>* fn;
      std::uint32_t i;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (generation_ != gen || fn_ == nullptr || next_ >= tasks_) return;
        fn = fn_;
        i = next_++;
      }
      (*fn)(i);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (generation_ == gen && ++done_ == tasks_) done_cv_.notify_all();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock,
                      [this, seen] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      claim(seen);
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::uint32_t)>* fn_ = nullptr;  // guarded by mu_
  std::uint32_t tasks_ = 0;                                 // guarded by mu_
  std::uint32_t next_ = 0;                                  // guarded by mu_
  std::uint32_t done_ = 0;                                  // guarded by mu_
  std::uint64_t generation_ = 0;                            // guarded by mu_
  bool stop_ = false;                                       // guarded by mu_
};

// ---------------------------------------------------------------------------
// ShardedExecutionContext
// ---------------------------------------------------------------------------

ShardedExecutionContext::ShardedExecutionContext(std::uint32_t shards)
    : shards_(resolve_shards(shards)),
      scheduler_(SchedulerKind::kSynchronous, 0, 1) {}

ShardedExecutionContext::~ShardedExecutionContext() = default;

RunResult ShardedExecutionContext::run(const PortGraph& g, NodeId source,
                                       const std::vector<BitString>& advice,
                                       const Algorithm& algorithm,
                                       const RunOptions& options) {
  const std::size_t n = g.num_nodes();
  if (advice.size() != n) {
    throw std::invalid_argument("run_execution: advice size != num nodes");
  }
  if (source >= n) throw std::invalid_argument("run_execution: bad source");

  stats_ = ShardedRunStats{};
  // Byzantine runs and the adversarial scheduler are inherently serial
  // (replay-buffer state and probe history follow global delivery order):
  // the existing fallback-not-divergence policy routes them to the scalar
  // engine up front, so every shard count returns the canonical answer.
  if (options.adversary.enabled() ||
      options.scheduler == SchedulerKind::kAsyncAdversarial) {
    stats_.fell_back = true;
    return legacy_.run(g, source, advice, algorithm, options);
  }
  PartitionOptions popt;
  popt.shards = shards_;
  const Partition part = make_partition(g, popt);
  if (part.num_shards() <= 1) {
    return legacy_.run(g, source, advice, algorithm, options);
  }

  if (!workers_) {
    workers_ = std::make_unique<Workers>(shards_ - 1);
  }

  RunResult result;
  if (attempt(g, source, advice, algorithm, options, part, result)) {
    return result;
  }
  // Divergence from the serial semantics was detected mid-epoch (or a
  // behavior threw): discard the attempt and replay on the single-threaded
  // engine, which reproduces the canonical result — or rethrows the
  // canonical exception — exactly.
  stats_.fell_back = true;
  stats_.epochs = 0;
  stats_.cross_shard_messages = 0;
  return legacy_.run(g, source, advice, algorithm, options);
}

bool ShardedExecutionContext::attempt(const PortGraph& g, NodeId source,
                                      const std::vector<BitString>& advice,
                                      const Algorithm& algorithm,
                                      const RunOptions& options,
                                      const Partition& part,
                                      RunResult& result) {
  const std::size_t n = g.num_nodes();
  const std::uint32_t S = part.num_shards();
  stats_.shards = S;

  result.informed.assign(n, false);
  result.informed[source] = true;
  result.sends_by_node.assign(n, 0);
  result.informed_at.assign(n, RunResult::kNeverInformed);
  result.informed_at[source] = 0;

  // The sink stream is buffered for the whole attempt and flushed only on
  // success: a fallback must leave no trace of the discarded attempt.
  TraceSink* const sink = options.trace_sink;
  sink_buf_.clear();

  const bool faulty = options.fault.enabled();
  const std::vector<BitString>* advice_used = &advice;
  if (faulty) {
    fault_plan_.arm(options.fault, n, source);
    result.faults.crashed_nodes = fault_plan_.num_crashed();
    if (fault_plan_.corrupts_advice()) {
      result.faults.advice_bits_flipped =
          fault_plan_.corrupt_advice(advice, corrupted_advice_);
      advice_used = &corrupted_advice_;
    }
  }
  const bool message_faulty = faulty && fault_plan_.message_faults();

  // Global link ids: the frozen CSR offsets are exactly the prefix-summed
  // degrees the engine keys faults and link clocks on; unfrozen test graphs
  // pay for a computed copy.
  const std::uint64_t* offsets = g.csr_offsets();
  if (offsets == nullptr) {
    link_offset_.resize(n + 1);
    link_offset_[0] = 0;
    for (NodeId v = 0; v < n; ++v) {
      link_offset_[v + 1] = link_offset_[v] + g.degree(v);
    }
    offsets = link_offset_.data();
  }

  inputs_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    inputs_[v] = NodeInput{&(*advice_used)[v], v == source,
                           options.anonymous ? Label{0} : g.label(v),
                           g.degree(v)};
  }

  if (sink) {
    const bool corrupted = advice_used != &advice;
    for (NodeId v = 0; v < n; ++v) {
      TraceEvent e;
      e.kind = TraceEventKind::kAdviceRead;
      e.node = v;
      e.aux = (*advice_used)[v].size();
      e.flag = corrupted;
      sink_buf_.push_back(e);
    }
    if (faulty) {
      for (NodeId v = 0; v < n; ++v) {
        const std::int64_t at = fault_plan_.crash_key(v);
        if (at == FaultPlan::kNoCrash) continue;
        TraceEvent e;
        e.kind = TraceEventKind::kCrash;
        e.node = v;
        e.key = at;
        sink_buf_.push_back(e);
      }
    }
  }

  shards_state_.resize(S);
  for (std::uint32_t s = 0; s < S; ++s) {
    Shard& sh = shards_state_[s];
    sh.begin = part.begin(s);
    sh.end = part.end(s);
    sh.events.clear();
    sh.outbox.resize(S);
    sh.dropped = 0;
    sh.delayed = 0;
    sh.cross = 0;
    sh.error = nullptr;
  }

  auto any_error = [&](const std::vector<std::uint32_t>* subset) {
    if (subset) {
      for (std::uint32_t s : *subset) {
        if (shards_state_[s].error) return true;
      }
      return false;
    }
    for (Shard& sh : shards_state_) {
      if (sh.error) return true;
    }
    return false;
  };

  // Behavior arming, shard-parallel. make_behavior is a const factory and
  // reset() touches only the behavior itself, so distinct node ranges never
  // share state. Any exception (reliable decode errors propagate in the
  // serial engine; faulty ones become structured failures) is routed
  // through the fallback, which replays the canonical semantics.
  const bool reusable = algorithm.reusable();
  const bool pool_matches =
      reusable && pool_count_ > 0 && pool_algorithm_ == algorithm.name();
  behaviors_.resize(n);
  const std::size_t reuse = pool_matches ? std::min(pool_count_, n) : 0;
  workers_->parallel(S, [&](std::uint32_t s) {
    Shard& sh = shards_state_[s];
    try {
      for (NodeId v = sh.begin; v < sh.end; ++v) {
        if (v < reuse) {
          behaviors_[v]->reset(inputs_[v]);
        } else {
          behaviors_[v] = algorithm.make_behavior(inputs_[v]);
        }
      }
    } catch (...) {
      sh.error = std::current_exception();
    }
  });
  if (any_error(nullptr)) {
    // A partial arm leaves behaviors_ inconsistent with the pool
    // bookkeeping; drop both so the next run rebuilds from scratch.
    behaviors_.clear();
    pool_algorithm_.clear();
    pool_count_ = 0;
    return false;
  }
  if (reusable) {
    pool_algorithm_ = algorithm.name();
    pool_count_ = n;
  } else {
    pool_algorithm_.clear();
    pool_count_ = 0;
  }

  scheduler_.reset(options.scheduler, options.seed, options.max_delay,
                   offsets[n], options.keying);

  const SchedulerKind kind = options.scheduler;
  // Fast barriers need delivery keys that are pure in (now, seq, link) and
  // sends that consume exactly one sequence number each; stream-RNG and
  // stateful (link-clock, adversarial) schedulers, sinks, the legacy
  // SentRecord trace, and duplication faults force the serial submit
  // replica. Counter-keyed kAsyncRandom qualifies: its delay is a pure
  // mix of (seed, seq, link).
  const bool fast = (kind == SchedulerKind::kSynchronous ||
                     kind == SchedulerKind::kAsyncFifo ||
                     kind == SchedulerKind::kAsyncLifo ||
                     (kind == SchedulerKind::kAsyncRandom &&
                      options.keying == SchedulerKeying::kCounter)) &&
                    sink == nullptr && !options.trace &&
                    !(faulty && options.fault.duplicate > 0);

  informed_.assign(n, 0);
  informed_[source] = 1;

  if (options.trace) {
    result.trace.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(
        options.max_messages, 2 * g.num_edges() + n)));
  }

  const Endpoint* const csr = g.csr_endpoints();
  std::uint64_t seq = 0;
  std::uint64_t inflight = 0;  // emulated single-queue size (V-trajectory)
  std::uint64_t queue_peak = 0;

  // --- serial barrier finalizer: full submit replica in global order ------
  auto finalize_serial = [&](const std::vector<std::uint32_t>& parts) {
    std::vector<std::uint32_t> cursor(parts.size(), 0);
    while (true) {
      std::size_t pick = parts.size();
      std::uint64_t best = 0;
      for (std::size_t i = 0; i < parts.size(); ++i) {
        const Shard& sh = shards_state_[parts[i]];
        if (cursor[i] >= sh.processed.size()) continue;
        const std::uint64_t order = sh.processed[cursor[i]].order;
        if (pick == parts.size() || order < best) {
          pick = i;
          best = order;
        }
      }
      if (pick == parts.size()) break;
      const std::uint32_t p = parts[pick];
      Shard& sh = shards_state_[p];
      const ProcessedEvent& pe = sh.processed[cursor[pick]++];
      if (sink) {
        for (std::uint32_t t = pe.trace_begin; t < pe.trace_end; ++t) {
          sink_buf_.push_back(sh.trace[t]);
        }
      }
      if (pe.popped) {
        --inflight;
        if (pe.dead) {
          ++result.faults.dead_deliveries;
          continue;
        }
        ++result.metrics.deliveries;
        if (pe.now > result.metrics.completion_key) {
          result.metrics.completion_key = pe.now;
        }
      }
      const NodeId v = pe.node;
      if (pe.send_end != pe.send_begin && options.enforce_wakeup &&
          !pe.informed) {
        return false;  // wakeup violation: canonical run stops mid-epoch
      }
      const std::uint64_t deg = offsets[v + 1] - offsets[v];
      for (std::uint32_t i = pe.send_begin; i < pe.send_end; ++i) {
        const Send& s = sh.sends[i];
        if (s.port >= deg) return false;  // invalid send
        if (result.metrics.messages_total >= options.max_messages) {
          return false;  // budget crossing mid-epoch
        }
        const std::uint64_t link = offsets[v] + s.port;
        const Endpoint dst = csr ? csr[link] : g.neighbor(v, s.port);
        result.metrics.count_send(s.msg);
        ++result.sends_by_node[v];
        if (options.trace) {
          result.trace.push_back(
              SentRecord{v, s.port, dst.node, s.msg.kind, pe.informed, pe.now});
        }
        if (sink) {
          TraceEvent e;
          e.kind = TraceEventKind::kSend;
          e.node = v;
          e.port = s.port;
          e.peer = dst.node;
          e.msg = s.msg.kind;
          e.key = pe.now;
          e.seq = seq;  // the first copy's sequence number: the fault key
          e.link = link;
          e.aux = s.msg.size_bits();
          e.flag = pe.informed;
          sink_buf_.push_back(e);
        }
        FaultPlan::MessageFault mf;
        if (message_faulty) mf = fault_plan_.message_fault(seq, link);
        if (sink && (mf.drop || mf.duplicate || mf.extra_delay > 0)) {
          TraceEvent e;
          e.kind = mf.drop ? TraceEventKind::kDrop
                           : (mf.duplicate ? TraceEventKind::kDuplicate
                                           : TraceEventKind::kDelay);
          e.node = v;
          e.port = s.port;
          e.peer = dst.node;
          e.msg = s.msg.kind;
          e.key = pe.now;
          e.seq = seq;
          e.link = link;
          e.aux = mf.extra_delay;
          sink_buf_.push_back(e);
          if (mf.duplicate && mf.extra_delay > 0) {
            e.kind = TraceEventKind::kDelay;
            sink_buf_.push_back(e);
          }
        }
        if (mf.drop) {
          ++result.faults.dropped;
          ++seq;  // the dropped message still consumes its sequence number
          continue;
        }
        if (mf.duplicate) ++result.faults.duplicated;
        if (mf.extra_delay > 0) ++result.faults.delayed;
        const int copies = mf.duplicate ? 2 : 1;
        for (int c = 0; c < copies; ++c) {
          const std::int64_t key =
              scheduler_.delivery_key(pe.now, seq, link) +
              static_cast<std::int64_t>(mf.extra_delay);
          const std::uint32_t d = part.shard_of(dst.node);
          Shard& dsh = shards_state_[d];
          const std::size_t slot = dsh.events.acquire_slot();
          dsh.events.slot(slot) =
              EngineEvent{dst.node, dst.port, s.msg, pe.informed};
          dsh.events.push({key, seq, slot});
          ++inflight;
          if (inflight > queue_peak) queue_peak = inflight;
          if (d != p) ++stats_.cross_shard_messages;
          ++seq;
        }
      }
    }
    return true;
  };

  // --- fast barrier finalizer: serial validation, parallel routing --------
  auto finalize_fast = [&](const std::vector<std::uint32_t>& parts) {
    // Pass 1 (serial): merge order, violation/budget checks, sequence
    // bases, and the cheap per-send counting the canonical engine does.
    merge_order_.clear();
    std::vector<std::uint32_t> cursor(parts.size(), 0);
    while (true) {
      std::size_t pick = parts.size();
      std::uint64_t best = 0;
      for (std::size_t i = 0; i < parts.size(); ++i) {
        const Shard& sh = shards_state_[parts[i]];
        if (cursor[i] >= sh.processed.size()) continue;
        const std::uint64_t order = sh.processed[cursor[i]].order;
        if (pick == parts.size() || order < best) {
          pick = i;
          best = order;
        }
      }
      if (pick == parts.size()) break;
      const std::uint32_t p = parts[pick];
      Shard& sh = shards_state_[p];
      const std::uint32_t idx = cursor[pick]++;
      ProcessedEvent& pe = sh.processed[idx];
      merge_order_.emplace_back(p, idx);
      if (pe.popped) {
        if (pe.dead) {
          ++result.faults.dead_deliveries;
          continue;
        }
        ++result.metrics.deliveries;
        if (pe.now > result.metrics.completion_key) {
          result.metrics.completion_key = pe.now;
        }
      }
      if (pe.send_end != pe.send_begin && options.enforce_wakeup &&
          !pe.informed) {
        return false;
      }
      const std::uint64_t deg = offsets[pe.node + 1] - offsets[pe.node];
      for (std::uint32_t i = pe.send_begin; i < pe.send_end; ++i) {
        const Send& s = sh.sends[i];
        if (s.port >= deg) return false;
        if (result.metrics.messages_total >= options.max_messages) {
          return false;
        }
        result.metrics.count_send(s.msg);
        ++result.sends_by_node[pe.node];
      }
      pe.seq_base = seq;
      seq += pe.send_end - pe.send_begin;
    }

    // Pass 2 (parallel per source shard): fault decisions, delivery keys,
    // routing into per-destination mailboxes. Pure per-send work — fault
    // decisions are keyed on (seq, link), keys on (now, seq) — so shards
    // never contend.
    auto route = [&](std::uint32_t pi) {
      const std::uint32_t p = parts[pi];
      Shard& sh = shards_state_[p];
      try {
        for (auto& ob : sh.outbox) ob.clear();
        for (ProcessedEvent& pe : sh.processed) {
          pe.pushes = 0;
          if (pe.dead) continue;
          std::uint64_t sq = pe.seq_base;
          for (std::uint32_t i = pe.send_begin; i < pe.send_end; ++i) {
            const Send& s = sh.sends[i];
            const std::uint64_t link = offsets[pe.node] + s.port;
            FaultPlan::MessageFault mf;
            if (message_faulty) mf = fault_plan_.message_fault(sq, link);
            if (mf.drop) {
              ++sh.dropped;
              ++sq;
              continue;
            }
            if (mf.extra_delay > 0) ++sh.delayed;
            std::int64_t key;
            switch (kind) {
              case SchedulerKind::kSynchronous:
                key = pe.now + 1;
                break;
              case SchedulerKind::kAsyncFifo:
                key = static_cast<std::int64_t>(sq);
                break;
              case SchedulerKind::kAsyncRandom:
                // Counter-keyed only (the fast gate excludes kStream):
                // same key the serial Scheduler would hand out.
                key = pe.now + 1 +
                      static_cast<std::int64_t>(Scheduler::counter_delay(
                          options.seed, Scheduler::delivery_prekey(sq, link),
                          options.max_delay));
                break;
              default:  // kAsyncLifo — the only other fast-path kind
                key = -static_cast<std::int64_t>(sq);
                break;
            }
            key += static_cast<std::int64_t>(mf.extra_delay);
            const Endpoint dst = csr ? csr[link] : g.neighbor(pe.node, s.port);
            const std::uint32_t d = part.shard_of(dst.node);
            sh.outbox[d].push_back(
                MailboxEntry{key, sq, dst.node, dst.port, pe.informed, s.msg});
            if (d != p) ++sh.cross;
            ++pe.pushes;
            ++sq;
          }
        }
      } catch (...) {
        sh.error = std::current_exception();
      }
    };
    if (parts.size() == 1) {
      route(0);
    } else {
      workers_->parallel(static_cast<std::uint32_t>(parts.size()), route);
    }
    if (any_error(&parts)) return false;

    // Pass 3 (serial): replay the merge order against the effective push
    // counts to reproduce the single queue's depth trajectory exactly.
    std::size_t routed = 0;
    for (const auto& [p, idx] : merge_order_) {
      const ProcessedEvent& pe = shards_state_[p].processed[idx];
      if (pe.popped) --inflight;
      if (pe.pushes > 0) {
        inflight += pe.pushes;
        if (inflight > queue_peak) queue_peak = inflight;
        routed += pe.pushes;
      }
    }

    // Drain: move mailboxes into the destination queues. Insertion order
    // into a queue is irrelevant — (key, seq) pairs are unique, so the pop
    // sequence is a pure function of the queue's contents.
    auto drain = [&](std::uint32_t d) {
      Shard& dsh = shards_state_[d];
      try {
        for (std::uint32_t p : parts) {
          for (MailboxEntry& e : shards_state_[p].outbox[d]) {
            const std::size_t slot = dsh.events.acquire_slot();
            dsh.events.slot(slot) = EngineEvent{e.to, e.at_port,
                                                std::move(e.msg),
                                                e.sender_informed};
            dsh.events.push({e.key, e.seq, slot});
          }
        }
      } catch (...) {
        dsh.error = std::current_exception();
      }
    };
    if (routed <= kSerialDrainLimit) {
      for (std::uint32_t d = 0; d < S; ++d) drain(d);
    } else {
      workers_->parallel(S, drain);
    }
    return !any_error(nullptr);
  };

  // --- start phase: empty-history activations, shard-parallel -------------
  workers_->parallel(S, [&](std::uint32_t s) {
    Shard& sh = shards_state_[s];
    sh.processed.clear();
    sh.sends.clear();
    sh.trace.clear();
    try {
      for (NodeId v = sh.begin; v < sh.end; ++v) {
        // A node whose crash key is <= 0 is down before its activation.
        if (faulty && fault_plan_.crash_key(v) <= 0) continue;
        sh.scratch.clear();
        behaviors_[v]->on_start(inputs_[v], sh.scratch);
        if (sh.scratch.empty()) continue;  // nothing for the barrier to do
        ProcessedEvent pe;
        pe.order = v;
        pe.now = 0;
        pe.node = v;
        pe.informed = informed_[v] != 0;
        pe.trace_begin = pe.trace_end =
            static_cast<std::uint32_t>(sh.trace.size());
        pe.send_begin = static_cast<std::uint32_t>(sh.sends.size());
        sh.sends.insert(sh.sends.end(), sh.scratch.begin(), sh.scratch.end());
        pe.send_end = static_cast<std::uint32_t>(sh.sends.size());
        sh.processed.push_back(pe);
      }
    } catch (...) {
      sh.error = std::current_exception();
    }
  });
  if (any_error(nullptr)) return false;

  parts_.clear();
  for (std::uint32_t s = 0; s < S; ++s) parts_.push_back(s);
  if (!(fast ? finalize_fast(parts_) : finalize_serial(parts_))) return false;

  // --- main loop: one epoch per barrier ------------------------------------
  const bool has_deadline = options.deadline_ns > 0;
  std::chrono::steady_clock::time_point deadline_at;
  if (has_deadline) {
    deadline_at = std::chrono::steady_clock::now() +
                  std::chrono::nanoseconds(options.deadline_ns);
  }
  std::uint64_t processed = 0;
  bool timed_out = false;
  bool events_exhausted = false;

  auto process_epoch = [&](std::uint32_t s, std::int64_t epoch_key) {
    Shard& sh = shards_state_[s];
    sh.processed.clear();
    sh.sends.clear();
    sh.trace.clear();
    try {
      while (!sh.events.empty() && sh.events.top_key() == epoch_key) {
        const EventHeap::Entry top = sh.events.pop();
        // Move the event out before recycling its slot: later pushes into
        // this queue may grow the pool and invalidate references into it.
        EngineEvent ev = std::move(sh.events.slot(top.slot));
        sh.events.release_slot(top.slot);
        ProcessedEvent pe;
        pe.order = top.seq;
        pe.now = top.key;
        pe.node = ev.to;
        pe.popped = true;
        pe.trace_begin = static_cast<std::uint32_t>(sh.trace.size());
        pe.send_begin = pe.send_end =
            static_cast<std::uint32_t>(sh.sends.size());
        // Crash-stop: node v processes events with key strictly below its
        // crash key; anything at or after it lands on a dead node.
        if (faulty && top.key >= fault_plan_.crash_key(ev.to)) {
          pe.dead = true;
          if (sink) {
            TraceEvent e;
            e.kind = TraceEventKind::kDeadDelivery;
            e.node = ev.to;
            e.port = ev.at_port;
            e.msg = ev.msg.kind;
            e.key = top.key;
            e.seq = top.seq;
            sh.trace.push_back(e);
          }
          pe.trace_end = static_cast<std::uint32_t>(sh.trace.size());
          sh.processed.push_back(pe);
          continue;
        }
        if (sink) {
          const Endpoint from = g.neighbor(ev.to, ev.at_port);
          TraceEvent e;
          e.kind = TraceEventKind::kDeliver;
          e.node = ev.to;
          e.port = ev.at_port;
          e.peer = from.node;
          e.msg = ev.msg.kind;
          e.key = top.key;
          e.seq = top.seq;
          e.link = offsets[from.node] + from.port;
          e.aux = ev.msg.size_bits();
          e.flag = ev.sender_informed;
          sh.trace.push_back(e);
        }
        // The paper's informing rule: any message from an informed sender
        // informs the receiver. informed_[v] and informed_at[v] are touched
        // only by v's owner shard.
        if (ev.sender_informed && !informed_[ev.to]) {
          informed_[ev.to] = 1;
          result.informed_at[ev.to] = top.key;
          if (sink) {
            TraceEvent e;
            e.kind = TraceEventKind::kInformed;
            e.node = ev.to;
            e.peer = g.neighbor(ev.to, ev.at_port).node;
            e.port = ev.at_port;
            e.key = top.key;
            e.seq = top.seq;
            sh.trace.push_back(e);
          }
        }
        sh.scratch.clear();
        behaviors_[ev.to]->on_receive(inputs_[ev.to], ev.msg, ev.at_port,
                                      sh.scratch);
        pe.informed = informed_[ev.to] != 0;
        sh.sends.insert(sh.sends.end(), sh.scratch.begin(),
                        sh.scratch.end());
        pe.send_end = static_cast<std::uint32_t>(sh.sends.size());
        pe.trace_end = static_cast<std::uint32_t>(sh.trace.size());
        sh.processed.push_back(pe);
      }
    } catch (...) {
      sh.error = std::current_exception();
    }
  };

  while (true) {
    bool any = false;
    std::int64_t epoch_key = 0;
    for (std::uint32_t s = 0; s < S; ++s) {
      const Shard& sh = shards_state_[s];
      if (sh.events.empty()) continue;
      const std::int64_t k = sh.events.top_key();
      if (!any || k < epoch_key) epoch_key = k;
      any = true;
    }
    if (!any) break;
    if (options.max_events > 0 && processed >= options.max_events) {
      events_exhausted = true;
      break;
    }
    if (has_deadline && std::chrono::steady_clock::now() >= deadline_at) {
      timed_out = true;
      break;
    }
    parts_.clear();
    for (std::uint32_t s = 0; s < S; ++s) {
      const Shard& sh = shards_state_[s];
      if (!sh.events.empty() && sh.events.top_key() == epoch_key) {
        parts_.push_back(s);
      }
    }
    if (options.max_events > 0) {
      // Pre-count the epoch: a budget edge landing inside it would stop the
      // canonical engine mid-epoch, which only the fallback can reproduce.
      std::size_t count = 0;
      for (std::uint32_t s : parts_) {
        count += shards_state_[s].events.count_key(epoch_key);
      }
      if (processed + count > options.max_events) return false;
    }
    ++stats_.epochs;
    if (parts_.size() == 1) {
      process_epoch(parts_[0], epoch_key);
    } else {
      const std::int64_t ek = epoch_key;
      workers_->parallel(static_cast<std::uint32_t>(parts_.size()),
                         [&, ek](std::uint32_t i) {
                           process_epoch(parts_[i], ek);
                         });
    }
    if (any_error(&parts_)) return false;
    for (std::uint32_t s : parts_) {
      processed += shards_state_[s].processed.size();
    }
    if (!(fast ? finalize_fast(parts_) : finalize_serial(parts_))) {
      return false;
    }
  }

  // --- epilogue (serial) ---------------------------------------------------
  result.terminated.resize(n);
  result.outputs.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    result.terminated[v] = behaviors_[v]->terminated();
    result.outputs[v] = behaviors_[v]->output();
    result.informed[v] = informed_[v] != 0;
  }
  result.all_informed = (result.informed_count() == n);
  result.metrics.queue_depth_peak = queue_peak;
  if (fast) {
    for (std::uint32_t s = 0; s < S; ++s) {
      result.faults.dropped += shards_state_[s].dropped;
      result.faults.delayed += shards_state_[s].delayed;
      stats_.cross_shard_messages += shards_state_[s].cross;
    }
  }
  if (timed_out) {
    result.status = RunStatus::kTimeout;
  } else if (events_exhausted) {
    result.status = RunStatus::kBudgetExhausted;
  } else if (!result.all_informed) {
    result.status = RunStatus::kTaskFailed;
  } else {
    result.status = RunStatus::kCompleted;
  }

  if (sink) {
    TraceRunInfo info;
    info.graph = &g;
    info.advice = &advice;  // the ORIGINAL advice, pre-corruption
    info.source = source;
    info.algorithm = algorithm.name();
    info.options = &options;
    sink->begin_run(info);
    for (const TraceEvent& e : sink_buf_) sink->record(e);
    sink->end_run(result);
  }
  return true;
}

}  // namespace oraclesize
