// Deterministic fault injection for the execution engine.
//
// The paper's upper bounds (Thm 2.1, Thm 3.1) are proved for asynchronous
// but *reliable* networks. To ask how the schemes degrade when the network
// misbehaves — links that lose, duplicate, or delay messages; nodes that
// crash-stop; advice strings corrupted in transit from the oracle — the
// engine accepts a FaultPlanParams inside RunOptions and expands it into a
// per-run fault schedule.
//
// Determinism is the design constraint. Every fault decision is a pure
// function of (plan seed, event coordinates):
//
//  * message faults (drop / duplicate / extra delay) are keyed on the
//    message's global send sequence number and its directed-link index —
//    counter-based RNG, no draw-order dependence;
//  * the crash-stop schedule is keyed per node id;
//  * advice corruption is keyed per (node id, stream of its bits).
//
// Consequently the same (seed, graph, params) tuple reproduces the same
// faulty execution under any worker count, and a plan whose probabilities
// are all zero (`enabled() == false`) takes the legacy code path — runs
// are bit-identical to a build without the fault layer (pinned by
// tests/test_goldens.cpp and tests/test_fault_plan.cpp).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "bitio/bitstring.h"
#include "graph/port_graph.h"

namespace oraclesize {

/// The (seed, probabilities) tuple describing one fault regime. All
/// probabilities are per-event Bernoulli rates in [0, 1]; the zero plan is
/// the reliable network.
struct FaultPlanParams {
  std::uint64_t seed = 0;   ///< fault randomness; independent of RunOptions::seed
  double drop = 0.0;        ///< per-message loss probability
  double duplicate = 0.0;   ///< per-message duplication probability
  double delay = 0.0;       ///< per-message extra-delay probability
  std::uint32_t max_extra_delay = 8;  ///< extra delay drawn in [1, max]
  double crash = 0.0;       ///< per-node crash-stop probability
  std::uint32_t max_crash_key = 8;    ///< crash keys drawn in [0, max]
  bool crash_source = false;  ///< when false, the source never crashes
  double advice_flip = 0.0;   ///< per-bit advice corruption probability

  /// True when any fault can occur. A disabled plan is never consulted by
  /// the engine — the zero plan costs nothing and changes nothing.
  bool enabled() const noexcept {
    return drop > 0 || duplicate > 0 || delay > 0 || crash > 0 ||
           advice_flip > 0;
  }

  friend bool operator==(const FaultPlanParams&,
                         const FaultPlanParams&) = default;
};

/// What the faults did to one run — reported next to Metrics so robustness
/// experiments can treat fault impact as data.
struct FaultCounters {
  std::uint64_t dropped = 0;     ///< messages lost in transit
  std::uint64_t duplicated = 0;  ///< messages delivered twice
  std::uint64_t delayed = 0;     ///< messages given extra delay
  std::uint64_t crashed_nodes = 0;     ///< nodes in the crash-stop set
  std::uint64_t dead_deliveries = 0;   ///< deliveries suppressed at crashed nodes
  std::uint64_t advice_bits_flipped = 0;  ///< corrupted advice bits

  friend bool operator==(const FaultCounters&, const FaultCounters&) = default;
};

/// A FaultPlanParams expanded against a concrete run: the crash schedule is
/// materialized per node, message faults are answered on demand from the
/// counter-based keying above. Reusable across runs (arm() re-expands
/// without releasing storage), mirroring ExecutionContext's reuse contract.
class FaultPlan {
 public:
  /// Sentinel crash key for nodes that never crash.
  static constexpr std::int64_t kNoCrash =
      std::numeric_limits<std::int64_t>::max();

  /// The fate of one message: evaluated once at submit time.
  struct MessageFault {
    bool drop = false;
    bool duplicate = false;
    std::uint32_t extra_delay = 0;
  };

  /// Expands `params` for a run over `num_nodes` nodes rooted at `source`.
  void arm(const FaultPlanParams& params, std::size_t num_nodes,
           NodeId source);

  /// True when any per-message fault (drop/duplicate/delay) can occur.
  bool message_faults() const noexcept { return message_faults_; }

  /// Fault decision for the message with global send number `seq` on the
  /// dense directed-link index `link`. Pure in (params, seq, link).
  MessageFault message_fault(std::uint64_t seq, std::uint64_t link) const;

  /// The seed-independent half of the message keying: one mix chain over
  /// (seq, link), shared by every plan consulted about the same message.
  /// The seed-batched executor (sim/seed_batch_engine.h) computes this once
  /// per message and asks each lane's plan via message_fault_prekeyed, so an
  /// R-lane fault mask costs one shared chain plus one mix per lane instead
  /// of R full chains. message_fault(seq, link) is defined as
  /// message_fault_prekeyed(message_prekey(seq, link)) — bit-identical.
  static std::uint64_t message_prekey(std::uint64_t seq,
                                      std::uint64_t link) noexcept;

  /// message_fault with the (seq, link) half of the keying precomputed.
  MessageFault message_fault_prekeyed(std::uint64_t prekey) const;

  /// Scheduler key at which node v crash-stops (it processes events with
  /// key strictly below this); kNoCrash for healthy nodes.
  std::int64_t crash_key(NodeId v) const noexcept {
    return crash_at_.empty() ? kNoCrash : crash_at_[v];
  }

  std::uint64_t num_crashed() const noexcept { return num_crashed_; }

  bool corrupts_advice() const noexcept { return params_.advice_flip > 0; }

  /// Writes a bit-flipped copy of `in` into `out` (cleared first) and
  /// returns the number of flipped bits. The input is never modified —
  /// batched trials share immutable advice vectors.
  std::uint64_t corrupt_advice(const std::vector<BitString>& in,
                               std::vector<BitString>& out) const;

  /// True when corrupt_advice(in, ...) would flip at least one bit. Draws
  /// the same per-(node, bit) decisions as corrupt_advice but stops at the
  /// first flip and writes nothing — the seed-batched executor's cheap
  /// "does this lane's advice stay clean?" eligibility probe.
  bool corrupts_any_bit(const std::vector<BitString>& in) const;

 private:
  FaultPlanParams params_;
  bool message_faults_ = false;
  std::vector<std::int64_t> crash_at_;  ///< empty when crash == 0
  std::uint64_t num_crashed_ = 0;
};

}  // namespace oraclesize
