// Post-hoc analysis of execution traces.
//
// When RunOptions::trace is set the engine records every transmission;
// these helpers turn that record into the quantities invariants are stated
// about: per-edge traffic, per-direction traffic, per-kind breakdowns, and
// the "does all traffic ride a given edge set" predicate the Theorem 3.1
// proofs use.
#pragma once

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "sim/metrics.h"

namespace oraclesize {

/// Normalized undirected edge key (min id, max id).
using EdgeKey = std::pair<NodeId, NodeId>;
/// Directed key (from, to).
using DirectedKey = std::pair<NodeId, NodeId>;

/// Messages per undirected edge, optionally restricted to one kind.
std::map<EdgeKey, std::uint64_t> traffic_per_edge(
    const std::vector<SentRecord>& trace);
std::map<EdgeKey, std::uint64_t> traffic_per_edge(
    const std::vector<SentRecord>& trace, MsgKind kind);

/// Messages per directed (from, to) pair.
std::map<DirectedKey, std::uint64_t> traffic_per_direction(
    const std::vector<SentRecord>& trace);

/// The heaviest undirected edge's message count (0 for an empty trace).
std::uint64_t max_edge_traffic(const std::vector<SentRecord>& trace);

/// True iff every traced message traveled inside `allowed` (normalized
/// undirected keys) — e.g. the spanning-tree edge set.
bool traffic_within(const std::vector<SentRecord>& trace,
                    const std::set<EdgeKey>& allowed);

/// Number of messages sent by nodes that were not informed at send time
/// (0 for any wakeup-legal execution).
std::uint64_t uninformed_sends(const std::vector<SentRecord>& trace);

}  // namespace oraclesize
