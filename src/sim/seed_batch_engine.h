// Seed-batched lockstep execution: R seeds of one spec, one engine pass.
//
// Every statistical sweep in this repo (the BENCH_e13 fault grid, retry
// policies, tradeoff repeats) replays the same (graph, source, advice,
// algorithm, options) spec with only RunOptions::seed / fault.seed varying.
// ExecutionContext charges each of those R trials the full per-run price —
// event-heap traffic, behavior arming, per-node bookkeeping — even though
// under the deterministic fault keying most lanes take *exactly the same
// execution*. SeedBatchExecutionContext exploits that:
//
//  * faults are counter-keyed (sim/fault_plan.h): the fate of the message
//    with global send sequence `seq` on directed link `link` is a pure
//    function of (lane fault seed, seq, link), independent of draw order;
//  * the pure schedulers (kSynchronous, kAsyncFifo, kAsyncLifo) assign
//    delivery keys from (now, seq) alone, so two lanes whose fault
//    decisions all come up benign produce byte-for-byte the same event
//    stream — the CLEAN stream, the one a disabled plan follows;
//  * the counter-keyed seeded schedulers (kAsyncRandom, kAsyncLinkFifo
//    under SchedulerKeying::kCounter) assign keys that are pure in
//    (options.seed, seq, link), so `options.seed` becomes a lane axis too:
//    lanes are grouped into KEY CLASSES by scheduler seed, each class
//    carries its own tiny index heap (plus link clocks and key-valued
//    outputs: completion_key, informed_at) over ONE shared slot pool and
//    ONE shared behavior plane. Each pop, the driver class's minimum
//    defines the delivery; every other class's minimum must name the same
//    message or that whole class retires to scalar replay — classes share
//    the pass exactly as long as their key orders agree, which they do
//    structurally whenever the pending set stays small (the scheduler seed
//    then only relabels keys without reordering pops);
//  * therefore ONE lockstep pass over the clean stream serves every lane
//    that stays benign on it. State is laid out struct-of-arrays across
//    lanes: one shared node/message state plane (the clean run) plus flat
//    per-lane arrays — armed FaultPlans, the compacted active-lane index
//    set, and dispositions. Per message the engine computes the
//    seed-independent fault prekey once and asks each still-active faulty
//    lane for its decision (one mix + at most three draws per lane, the
//    R-wide mask), and in keyed mode computes the seed-independent
//    delivery prekey once and derives each class's key with one more mix;
//    a lane whose decision is anything but benign RETIRES from the active
//    set on the spot. When every lane has retired the pass aborts early —
//    no wasted clean-stream tail.
//
// Why retirement means full scalar replay rather than per-lane patch-up: a
// single dropped message shifts that lane's global send-sequence stream,
// which decorrelates every later (seq, link)-keyed decision — after the
// first divergence the lane shares nothing bit-exact with the clean run,
// and behaviors are opaque (not clonable), so there is no cheaper resume
// point than the start. Hence the same fallback-not-divergence policy as
// sim/sharded_engine.h: lanes the lockstep pass cannot serve — diverged
// lanes, key classes whose delivery order split from the driver's, lanes
// with a non-empty crash schedule or a materialized advice flip, or whole
// families using features the pass doesn't honor (stream-keyed seeded
// schedulers, trace sinks, legacy tracing, wall-clock deadlines) — are
// REPLAYED on the scalar ExecutionContext, which is the definition of
// correct.
//
// Determinism contract: for every lane, the result handed back (the shared
// clean-run RunResult for lanes that stayed benign, the scalar replay
// otherwise) is bit-identical (RunResult::operator==) to what
// ExecutionContext::run produces for that lane's exact options. Pinned by
// tests/test_seed_batch_engine.cpp (40-seed fuzz across every algorithm)
// and enforced per bench row by tools/perf_gate.py.
//
// Throughput model: a family of R lanes with D divergent lanes costs one
// clean pass plus D scalar replays, so the speedup over R scalar runs is
// ~R/(1+D) — ~R× at fault rate 0 (the BENCH_perf_seedbatch gate rows) and
// honestly degrading toward 1× as the per-message fault rate times the
// message count approaches 1. The ratio is algorithmic (deduplication, not
// parallelism), so it holds on any host. In keyed mode the pass also pays
// one heap push/pop and one mix per ACTIVE KEY CLASS per message — free
// when every lane shares one scheduler seed (the e13 regime), and still a
// large win when classes are many but the pending set is shallow (each
// class's heap is then trivially small); deep pending sets under many
// classes decay gracefully toward scalar via order-disagreement
// retirement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/event_heap.h"
#include "sim/execution_context.h"

namespace oraclesize {

/// How the last run_lockstep call used the machinery. Reported out-of-band
/// (never inside RunResult — result equality with the scalar engine is the
/// contract).
struct SeedBatchStats {
  std::uint32_t lanes = 0;     ///< lanes submitted
  std::uint32_t shared = 0;    ///< lanes served by the clean lockstep pass
  std::uint32_t replayed = 0;  ///< lanes needing a scalar replay
  std::uint64_t lockstep_events = 0;  ///< events the clean pass processed
  bool lockstep_ran = false;  ///< false when the family was ineligible

  friend bool operator==(const SeedBatchStats&,
                         const SeedBatchStats&) = default;
};

/// A reusable seed-batched engine. Like ExecutionContext, one instance
/// plays many families and retains its storage across them. Not
/// thread-safe: one SeedBatchExecutionContext per worker thread
/// (core/batch_runner.cpp gives each pool worker its own).
class SeedBatchExecutionContext {
 public:
  /// The two per-lane randomness overrides; every other RunOptions field is
  /// shared by the family (core/batch_runner.h's seed_family_key is exactly
  /// this split).
  struct Lane {
    std::uint64_t seed = 1;        ///< RunOptions::seed
    std::uint64_t fault_seed = 0;  ///< RunOptions::fault.seed
  };

  enum class LaneDisposition : std::uint8_t {
    kShared,  ///< served by the clean pass: result == the shared RunResult
    kReplay,  ///< must be re-run on the scalar engine with its exact options
  };

  /// True when a family under `base` can take the lockstep pass at all:
  /// the scheduler must assign delivery keys as a pure per-message function
  /// — kSynchronous / kAsyncFifo / kAsyncLifo always qualify, and
  /// kAsyncRandom / kAsyncLinkFifo qualify under SchedulerKeying::kCounter
  /// (under kStream they consume a seeded stream in draw order, which
  /// differs per lane). The run must not be observed (trace sinks, legacy
  /// tracing) or race a wall clock (deadline_ns). Ineligible families
  /// replay every lane.
  static bool lockstep_eligible(const RunOptions& base) noexcept;

  /// One lockstep pass over the clean stream. `base` carries the family's
  /// shared options; lanes[i] overrides the two seeds. On return
  /// dispositions[i] says whether lane i is served by the pass (read its
  /// result via lane_result(i)) or must be replayed by the caller on a
  /// scalar ExecutionContext with (base + lanes[i]). The returned
  /// reference is the first served key class's view of the shared result —
  /// meaningful only while at least one lane is kShared, and only until
  /// the next run on this context; under counter-keyed seeded schedulers
  /// the key-valued fields (metrics.completion_key, informed_at) are
  /// per-class, so per-lane readers MUST use lane_result rather than the
  /// shared reference. Throws the scalar engine's precondition
  /// errors (advice size / source range); scheme-level behavior exceptions
  /// follow the scalar engine's fault semantics (absorbed into a
  /// kTaskFailed shared result for fault-enabled lanes, a replay for
  /// fault-disabled lanes, which rethrow scalar-style from their replays).
  const RunResult& run_lockstep(const PortGraph& g, NodeId source,
                                const std::vector<BitString>& advice,
                                const Algorithm& algorithm,
                                const RunOptions& base,
                                const std::vector<Lane>& lanes,
                                std::vector<LaneDisposition>& dispositions);

  /// Convenience: run_lockstep plus scalar replays on the embedded
  /// ExecutionContext, returning one RunResult per lane in lane order.
  /// Replays propagate exceptions exactly as ExecutionContext::run would
  /// for that lane. This is the whole-family equivalent of R scalar runs.
  std::vector<RunResult> run(const PortGraph& g, NodeId source,
                             const std::vector<BitString>& advice,
                             const Algorithm& algorithm,
                             const RunOptions& base,
                             const std::vector<Lane>& lanes);

  /// Lane i's view of the most recent run_lockstep's shared result: the
  /// shared plane patched with lane i's key class's completion_key,
  /// informed_at, and queue_depth_peak. Identity (a plain copy of the
  /// shared result) for the seed-independent schedulers. Meaningful only
  /// for lanes whose disposition is kShared.
  RunResult lane_result(std::size_t lane) const;

  /// Usage accounting of the most recent run_lockstep / run call.
  const SeedBatchStats& last_stats() const noexcept { return stats_; }

  /// The embedded scalar engine (used by run() for replays); exposed so a
  /// caller driving run_lockstep directly can reuse it.
  ExecutionContext& scalar() noexcept { return scalar_; }

 private:
  /// Mirrors ExecutionContext::arm_behaviors, including the reusable-pool
  /// bookkeeping, so a worker alternating between batched and scalar runs
  /// keeps zero steady-state behavior allocations.
  void arm_behaviors(std::size_t n, const Algorithm& algorithm);

  ExecutionContext scalar_;
  SeedBatchStats stats_;
  RunResult result_;  ///< the shared clean-run result (storage for the ref)

  // Clean-pass state, mirroring ExecutionContext's reuse discipline.
  std::vector<NodeInput> inputs_;
  std::vector<std::unique_ptr<NodeBehavior>> behaviors_;
  std::vector<Send> sends_;  ///< scratch sink, recycled per event
  EventHeap events_;
  std::vector<std::uint64_t> link_offset_;  ///< prefix sums of degrees

  // SoA lane plane: one armed plan per fault-enabled lane, plus the
  // compacted index set of lanes still answering the per-message mask.
  std::vector<FaultPlan> lane_plans_;
  std::vector<std::uint32_t> active_mask_lanes_;

  /// One scheduler-seed class for the counter-keyed seeded schedulers: the
  /// lanes sharing `seed`, a private index min-heap over the shared slot
  /// pool, the class's logical clock / link clocks, and the key-valued
  /// result fields the classes disagree on. SoA keys per class — the SoA
  /// storage the per-lane heaps collapse into.
  struct KeyClass {
    std::uint64_t seed = 0;
    bool active = false;       ///< still agreeing with the driver's order
    std::uint32_t live = 0;    ///< kShared lanes still mapped to this class
    std::vector<EventHeap::Entry> heap;
    std::int64_t now = 0;              ///< key of the class's last pop
    std::int64_t completion_key = 0;
    std::vector<std::int64_t> link_clock;   ///< kAsyncLinkFifo only
    std::vector<std::int64_t> informed_at;  ///< per node
  };
  static constexpr std::uint32_t kNoClass = ~0u;

  bool keyed_ = false;  ///< last pass used key classes
  std::vector<KeyClass> classes_;
  std::vector<std::uint32_t> lane_class_;  ///< lane -> class index / kNoClass

  std::string pool_algorithm_;
  std::size_t pool_count_ = 0;
};

}  // namespace oraclesize
