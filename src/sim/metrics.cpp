#include "sim/metrics.h"

#include <sstream>

namespace oraclesize {

void Metrics::count_send(const Message& msg) noexcept {
  ++messages_total;
  switch (msg.kind) {
    case MsgKind::kSource:
      ++messages_source;
      break;
    case MsgKind::kHello:
      ++messages_hello;
      break;
    case MsgKind::kControl:
      ++messages_control;
      break;
  }
  bits_sent += msg.size_bits();
}

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "messages=" << messages_total << " (source=" << messages_source
     << ", hello=" << messages_hello << ", control=" << messages_control
     << "), bits=" << bits_sent << ", deliveries=" << deliveries;
  return os.str();
}

}  // namespace oraclesize
