#include "sim/trace_analysis.h"

#include <algorithm>

namespace oraclesize {

namespace {

EdgeKey normalized(const SentRecord& s) {
  return {std::min(s.from, s.to), std::max(s.from, s.to)};
}

}  // namespace

std::map<EdgeKey, std::uint64_t> traffic_per_edge(
    const std::vector<SentRecord>& trace) {
  std::map<EdgeKey, std::uint64_t> out;
  for (const SentRecord& s : trace) ++out[normalized(s)];
  return out;
}

std::map<EdgeKey, std::uint64_t> traffic_per_edge(
    const std::vector<SentRecord>& trace, MsgKind kind) {
  std::map<EdgeKey, std::uint64_t> out;
  for (const SentRecord& s : trace) {
    if (s.kind == kind) ++out[normalized(s)];
  }
  return out;
}

std::map<DirectedKey, std::uint64_t> traffic_per_direction(
    const std::vector<SentRecord>& trace) {
  std::map<DirectedKey, std::uint64_t> out;
  for (const SentRecord& s : trace) ++out[{s.from, s.to}];
  return out;
}

std::uint64_t max_edge_traffic(const std::vector<SentRecord>& trace) {
  std::uint64_t best = 0;
  for (const auto& [edge, count] : traffic_per_edge(trace)) {
    best = std::max(best, count);
  }
  return best;
}

bool traffic_within(const std::vector<SentRecord>& trace,
                    const std::set<EdgeKey>& allowed) {
  for (const SentRecord& s : trace) {
    if (!allowed.count(normalized(s))) return false;
  }
  return true;
}

std::uint64_t uninformed_sends(const std::vector<SentRecord>& trace) {
  std::uint64_t count = 0;
  for (const SentRecord& s : trace) {
    if (!s.sender_informed) ++count;
  }
  return count;
}

}  // namespace oraclesize
