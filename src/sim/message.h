// Messages exchanged by broadcast/wakeup schemes.
//
// The paper's upper bounds hold with bounded-size messages: scheme B only
// ever sends the source message M and a constant "hello", and the wakeup
// scheme only sends M. We model a message as a small tagged value and charge
// its size in bits so that experiments can report bit complexity alongside
// message complexity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/mathx.h"

namespace oraclesize {

enum class MsgKind : std::uint8_t {
  kSource,   ///< carries the source message M; receiving one informs a node
  kHello,    ///< scheme B's control message revealing a tree edge
  kControl,  ///< generic control traffic for user-defined schemes
};

std::string to_string(MsgKind kind);

struct Message {
  MsgKind kind = MsgKind::kControl;
  /// Optional small payload for user-defined schemes; the paper's schemes
  /// leave it 0. Charged at #2(payload) bits when non-zero.
  std::uint64_t payload = 0;
  /// Optional item list for aggregating schemes (gossip carries rumor
  /// sets). Charged per item below; the paper's broadcast/wakeup schemes
  /// never use it, keeping their messages constant-size.
  std::vector<std::uint64_t> items;

  /// Accounting size: 2 tag bits, the scalar payload's binary length, and
  /// a self-delimiting charge of #2(x)+2 bits per item (doubled-bit rate).
  /// 64-bit: a large item list must not overflow the bit accounting (an
  /// `int` here could go negative past ~32M items and corrupt Metrics).
  std::uint64_t size_bits() const noexcept {
    std::uint64_t bits =
        2 + (payload == 0 ? 0u : static_cast<unsigned>(num_bits(payload)));
    for (std::uint64_t x : items) {
      bits += static_cast<std::uint64_t>(num_bits(x)) + 2;
    }
    return bits;
  }

  static Message source() { return Message{MsgKind::kSource, 0, {}}; }
  static Message hello() { return Message{MsgKind::kHello, 0, {}}; }
  static Message control(std::uint64_t payload) {
    return Message{MsgKind::kControl, payload, {}};
  }
  static Message bundle(MsgKind kind, std::vector<std::uint64_t> items) {
    return Message{kind, 0, std::move(items)};
  }

  friend bool operator==(const Message&, const Message&) = default;
};

}  // namespace oraclesize
