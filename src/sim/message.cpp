#include "sim/message.h"

namespace oraclesize {

std::string to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kSource:
      return "source";
    case MsgKind::kHello:
      return "hello";
    case MsgKind::kControl:
      return "control";
  }
  return "unknown";
}

}  // namespace oraclesize
