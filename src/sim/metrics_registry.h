// A registry of named counters and histograms, lock-free on the add path.
//
// The batch runtime (core/batch_runner.h) aggregates per-trial quantities —
// messages by kind, bits on wire, queue depth, wakeup latency — across its
// worker threads. The registry splits that into two phases:
//
//  * registration (`counter(name)` / `histogram(name)`) takes a mutex and
//    returns a STABLE reference (std::map storage is node-based); callers
//    register every instrument up front, before workers start;
//  * recording (`Counter::add`, `Histogram::observe`) is a relaxed atomic
//    operation — no locks, no allocation, safe from any thread.
//
// Everything recorded here is a sum of per-trial contributions, and every
// per-trial contribution is deterministic in the trial's spec (counts,
// scheduler keys — never wall-clock time). Relaxed addition commutes, so a
// snapshot taken after the workers join is bit-identical regardless of the
// worker count. tests/test_metrics.cpp pins that jobs=1 and jobs=8 produce
// equal snapshots.
//
// Histograms use power-of-two buckets: a value lands in bucket
// bit_width(value), i.e. bucket 0 holds exactly the zeros and bucket b >= 1
// holds [2^(b-1), 2^b). Coarse, but allocation-free and mergeable.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace oraclesize {

/// A monotone counter. add() is wait-free; value() is a relaxed load, so
/// read it only after the writers are quiescent (post-join).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A power-of-two-bucket histogram of unsigned values. observe() performs
/// a handful of relaxed atomic ops (bucket, count, sum, min/max CAS).
class Histogram {
 public:
  /// bit_width ranges over 0..64, one bucket each.
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Meaningful only when count() > 0.
  std::uint64_t min() const noexcept {
    return min_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
};

/// A sealed histogram: plain values, comparable and mergeable.
struct HistogramStats {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< meaningful only when count > 0
  std::uint64_t max = 0;
  /// Non-empty buckets only, as (bit_width, count), ascending by width.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

  void merge(const HistogramStats& other);

  friend bool operator==(const HistogramStats&,
                         const HistogramStats&) = default;
};

/// A consistent copy of a registry: plain values in deterministic (name)
/// order, suitable for equality checks, merging, and JSON export.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramStats> histograms;

  bool empty() const { return counters.empty() && histograms.empty(); }

  /// Adds `other` into this snapshot (counters sum, histograms merge).
  void merge(const MetricsSnapshot& other);

  /// One JSON object: {"counters": {...}, "histograms": {name: {"count":..,
  /// "sum":.., "min":.., "max":.., "buckets": [[w, c], ...]}, ...}}.
  /// Keys are emitted in sorted order, so equal snapshots serialize
  /// byte-identically.
  void write_json(std::ostream& out) const;

  /// Prometheus text exposition format (version 0.0.4). Counters become
  /// `# TYPE <name> counter` samples; histograms become cumulative-bucket
  /// families with `le` boundaries at 2^b - 1 (the inclusive upper edge of
  /// power-of-two bucket b, since observed values are integers), plus the
  /// conventional `+Inf`, `_sum` and `_count` samples. Names are sanitized
  /// to the Prometheus charset ([a-zA-Z0-9_:], leading digit prefixed with
  /// '_'). Sorted-key iteration keeps equal snapshots byte-identical here
  /// too.
  void write_prometheus(std::ostream& out) const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// Named instrument storage. Thread-safe registration; instruments live as
/// long as the registry and their references never dangle or move.
class MetricsRegistry {
 public:
  /// Finds or creates the named instrument. Takes a mutex — call during
  /// setup, not from recording hot paths.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Copies every instrument into plain values. Call after writers join.
  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace oraclesize
