#include "sim/metrics_registry.h"

#include <bit>
#include <ostream>

namespace oraclesize {

void Histogram::observe(std::uint64_t value) noexcept {
  const std::size_t b = static_cast<std::size_t>(std::bit_width(value));
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void HistogramStats::merge(const HistogramStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  if (other.min < min) min = other.min;
  if (other.max > max) max = other.max;
  // Merge the sparse bucket lists (both ascending by width).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < buckets.size() || j < other.buckets.size()) {
    if (j >= other.buckets.size() ||
        (i < buckets.size() && buckets[i].first < other.buckets[j].first)) {
      merged.push_back(buckets[i++]);
    } else if (i >= buckets.size() ||
               other.buckets[j].first < buckets[i].first) {
      merged.push_back(other.buckets[j++]);
    } else {
      merged.emplace_back(buckets[i].first,
                          buckets[i].second + other.buckets[j].second);
      ++i;
      ++j;
    }
  }
  buckets = std::move(merged);
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, hist] : other.histograms) {
    histograms[name].merge(hist);
  }
}

void MetricsSnapshot::write_json(std::ostream& out) const {
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ", ";
    first = false;
    out << '"' << name << "\": " << value;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out << ", ";
    first = false;
    out << '"' << name << "\": {\"count\": " << h.count
        << ", \"sum\": " << h.sum << ", \"min\": " << h.min
        << ", \"max\": " << h.max << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out << ", ";
      out << '[' << h.buckets[i].first << ", " << h.buckets[i].second << ']';
    }
    out << "]}";
  }
  out << "}}";
}

namespace {

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

}  // namespace

void MetricsSnapshot::write_prometheus(std::ostream& out) const {
  for (const auto& [name, value] : counters) {
    const std::string n = prometheus_name(name);
    out << "# TYPE " << n << " counter\n" << n << ' ' << value << '\n';
  }
  for (const auto& [name, h] : histograms) {
    const std::string n = prometheus_name(name);
    out << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [width, count] : h.buckets) {
      cumulative += count;
      // Bucket b holds integer values in [2^(b-1), 2^b), so the inclusive
      // upper boundary is 2^b - 1; width 0 holds exactly the zeros.
      const std::uint64_t le =
          width == 0 ? 0
                     : (width >= 64 ? ~0ULL : (1ULL << width) - 1);
      out << n << "_bucket{le=\"" << le << "\"} " << cumulative << '\n';
    }
    out << n << "_bucket{le=\"+Inf\"} " << h.count << '\n'
        << n << "_sum " << h.sum << '\n'
        << n << "_count " << h.count << '\n';
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return histograms_[name];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, h] : histograms_) {
    HistogramStats s;
    s.count = h.count();
    s.sum = h.sum();
    if (s.count > 0) {
      s.min = h.min();
      s.max = h.max();
    }
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t c = h.bucket(b);
      if (c > 0) s.buckets.emplace_back(static_cast<std::uint32_t>(b), c);
    }
    snap.histograms[name] = std::move(s);
  }
  return snap;
}

}  // namespace oraclesize
