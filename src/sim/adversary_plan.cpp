#include "sim/adversary_plan.h"

#include "util/rng.h"

namespace oraclesize {

namespace {

// Domain-separation tags: each adversary decision family draws from its
// own keyed stream, and none of them collides with FaultPlan's tags — so
// enabling the Byzantine layer never perturbs which messages a given fault
// seed drops, and vice versa.
constexpr std::uint64_t kSelectTag = 0x62797a73656cULL;   // "byzsel"
constexpr std::uint64_t kForgeTag = 0x666f726765ULL;      // "forge"
constexpr std::uint64_t kEquivTag = 0x6571756976ULL;      // "equiv"
constexpr std::uint64_t kContentTag = 0x636f6e74ULL;      // "cont"
constexpr std::uint64_t kAdviceLieTag = 0x6164766c6965ULL;  // "advlie"

Rng keyed_rng(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
              std::uint64_t b) noexcept {
  return Rng(mix64(seed ^ mix64(tag ^ mix64(a ^ mix64(b)))));
}

}  // namespace

const char* to_string(ByzantineStrategy strategy) {
  switch (strategy) {
    case ByzantineStrategy::kRandomBits:
      return "random-bits";
    case ByzantineStrategy::kReplay:
      return "replay";
    case ByzantineStrategy::kStructuredLie:
      return "structured-lie";
  }
  return "unknown";
}

void AdversaryPlan::arm(const AdversaryPlanParams& params,
                        std::size_t num_nodes, NodeId source) {
  params_ = params;
  lying_.assign(num_nodes, 0);
  num_lying_ = 0;
  replay_.clear();
  observed_ = 0;
  if (!params_.enabled()) return;

  if (params_.byz_nodes > 0) {
    // Exact colluding-set size: sample without replacement from the
    // eligible nodes. The eligible list is built in node order, so the
    // draw is pure in (seed, num_nodes, byz_nodes).
    std::vector<NodeId> eligible;
    eligible.reserve(num_nodes);
    for (NodeId v = 0; v < num_nodes; ++v) {
      if (v == source && !params_.byz_source) continue;
      eligible.push_back(v);
    }
    const std::size_t k =
        eligible.size() < params_.byz_nodes ? eligible.size()
                                            : params_.byz_nodes;
    Rng rng = keyed_rng(params_.seed, kSelectTag, num_nodes, params_.byz_nodes);
    const std::vector<std::size_t> picks =
        rng.sample_without_replacement(eligible.size(), k);
    for (const std::size_t i : picks) {
      lying_[eligible[i]] = 1;
      ++num_lying_;
    }
    return;
  }

  // Per-node Bernoulli membership, counter-keyed per node id.
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (v == source && !params_.byz_source) continue;
    Rng rng = keyed_rng(params_.seed, kSelectTag, v, 0);
    if (rng.chance(params_.byz_rate)) {
      lying_[v] = 1;
      ++num_lying_;
    }
  }
}

void AdversaryPlan::observe(const Message& msg) {
  if (params_.replay_window == 0) return;
  const std::size_t pos =
      static_cast<std::size_t>(observed_ % params_.replay_window);
  if (pos < replay_.size()) {
    replay_[pos] = msg;
  } else {
    replay_.push_back(msg);
  }
  ++observed_;
}

AdversaryPlan::ForgeOutcome AdversaryPlan::forge(NodeId v, std::uint64_t group,
                                                 std::uint64_t link,
                                                 std::size_t degree,
                                                 Message& msg) {
  ForgeOutcome out;
  // One mix chain folds (node, group) into a single coordinate so the
  // two-slot keyed_rng can carry three dimensions.
  const std::uint64_t vg = mix64(static_cast<std::uint64_t>(v) ^ mix64(group));

  const bool forge_batch =
      params_.forge > 0 &&
      keyed_rng(params_.seed, kForgeTag, v, group).chance(params_.forge);
  if (forge_batch) {
    out.forged = true;
    // Equivocation decision is per logical send batch; when it fires, the
    // forged content is additionally keyed per link, so each neighbor in
    // the batch receives different content from the same transmission.
    out.equivocated =
        params_.equivocate > 0 &&
        keyed_rng(params_.seed, kEquivTag, v, group).chance(params_.equivocate);
    Rng content = keyed_rng(params_.seed, kContentTag, vg,
                            out.equivocated ? link + 1 : 0);
    switch (params_.strategy) {
      case ByzantineStrategy::kRandomBits: {
        constexpr MsgKind kKinds[] = {MsgKind::kSource, MsgKind::kHello,
                                      MsgKind::kControl};
        msg.kind = kKinds[content.below(3)];
        msg.payload = content.next_u64();
        msg.items.clear();
        break;
      }
      case ByzantineStrategy::kReplay: {
        if (!replay_.empty()) {
          // A stale genuine message, verbatim: correctly formatted, wrong
          // moment. Picked uniformly from the bounded buffer.
          msg = replay_[static_cast<std::size_t>(
              content.below(replay_.size()))];
          out.replayed = true;
        } else {
          // Nothing observed yet: degrade to random bits so an early
          // forger is not silently honest.
          msg.kind = MsgKind::kControl;
          msg.payload = content.next_u64();
          msg.items.clear();
        }
        break;
      }
      case ByzantineStrategy::kStructuredLie: {
        // A plausible-but-wrong structural claim: the payload becomes a
        // port/parent index in [0, degree) guaranteed to differ from the
        // genuine one when the degree allows, and a kSource mark (the "I
        // carry M" claim) is demoted to kHello — the node lies about the
        // tree AND about its informedness.
        const std::uint64_t span = degree == 0 ? 1 : degree;
        std::uint64_t claim = content.below(span);
        if (claim == msg.payload && span > 1) claim = (claim + 1) % span;
        msg.payload = claim;
        if (msg.kind == MsgKind::kSource) msg.kind = MsgKind::kHello;
        msg.items.clear();
        out.structured = true;
        break;
      }
    }
  }

  // Inconsistent advice: a persistent per-link payload distortion, keyed
  // on (seed, link) ONLY — no sequence, no group — so the same neighbor
  // always sees the same internally-consistent lie, and different
  // neighbors see divergent views. Applies on top of (or without) forging.
  if (params_.advice_lie > 0) {
    Rng lie = keyed_rng(params_.seed, kAdviceLieTag, link, 0);
    if (lie.chance(params_.advice_lie)) {
      // A small nonzero XOR mask: enough to misdirect port/parent claims
      // without turning the payload into an implausible 64-bit blob.
      msg.payload ^= 1 + lie.below(63);
      out.advice_lie = true;
    }
  }
  return out;
}

}  // namespace oraclesize
