// Structured run tracing: every event of an execution as an auditable,
// replayable record.
//
// The paper's statements are *counting* statements — messages versus oracle
// bits (Thm 2.1/2.2, Thm 3.1/3.2) — and until now the engine only surfaced
// end-of-run aggregates, so a wrong count could be detected but never
// localized. This header turns a run into an event stream: every send,
// delivery, fault decision, crash, informed-transition, and advice read is
// emitted through a TraceSink hook on RunOptions, stamped with the
// scheduler's logical clock (`key`) and the fault plan's counter keys
// (`seq`, `link` — the exact coordinates sim/fault_plan.h keys its
// decisions on). The stream is deterministic for fixed inputs, so:
//
//  * a RecordedTrace is a self-contained artifact — it embeds the network,
//    the advice, and the run configuration, enough to re-execute the run
//    from scratch (core/replay.h) and demand a bit-identical stream;
//  * a 64-bit FNV digest over the stream pins an execution in one number
//    (golden tests commit digests, not megabytes of events);
//  * the stream exports to Chrome's trace_event JSON for visual audit
//    (chrome://tracing, Perfetto).
//
// Cost contract: a null RunOptions::trace_sink is ZERO-cost — the engine
// pays one branch per event group and allocates nothing
// (tests/test_zero_alloc.cpp still audits the steady state). A non-null
// sink makes the run an observability run; recorders may allocate freely.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace oraclesize {

/// What happened. kSend..kDeadDelivery are message-level events (always
/// recorded); kInformed/kAdviceRead are node-state events (recorded only at
/// TraceLevel::kFull).
enum class TraceEventKind : std::uint8_t {
  kSend,          ///< node submitted a message (counted even if dropped)
  kDeliver,       ///< message handed to the receiver's scheme
  kDrop,          ///< fault plan dropped the message at submit time
  kDuplicate,     ///< fault plan duplicated the message
  kDelay,         ///< fault plan added extra delay (aux = extra key units)
  kCrash,         ///< node is crash-stop scheduled (key = crash key)
  kDeadDelivery,  ///< delivery suppressed: receiver already crashed
  kInformed,      ///< node transitioned to informed (the paper's predicate)
  kAdviceRead,    ///< node's advice string bound at arm time (aux = bits)
  kForge,         ///< Byzantine rewrite of outgoing content (aux = payload)
  kEquivocate,    ///< forged content keyed per link within one send batch
  kReplayAttack,  ///< forged content served from the stale replay buffer
  kAdviceLie,     ///< per-link persistent advice lie (no content forge)
};

const char* to_string(TraceEventKind kind);

/// Event granularity. kMessages keeps only message/fault events (compact);
/// kFull adds the node-state transitions and advice reads.
enum class TraceLevel : std::uint8_t { kMessages, kFull };

const char* to_string(TraceLevel level);

/// One event. Every field is integral, so streams hash and serialize
/// identically on every platform.
struct TraceEvent {
  std::int64_t key = 0;    ///< scheduler logical clock of the event
  std::uint64_t seq = 0;   ///< global send sequence (fault counter key)
  std::uint64_t link = 0;  ///< dense directed-link index (fault counter key)
  std::uint64_t aux = 0;   ///< kind-specific: bits on wire, extra delay, ...
  NodeId node = kNoNode;   ///< acting node (sender / receiver / advisee)
  NodeId peer = kNoNode;   ///< far endpoint, when the event has one
  Port port = kNoPort;     ///< acting node's local port, when meaningful
  TraceEventKind kind = TraceEventKind::kSend;
  MsgKind msg = MsgKind::kControl;  ///< message tag for message events
  bool flag = false;  ///< kSend: sender informed; kAdviceRead: corrupted

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Renders one event as the trace file's `e ...` line payload (also the
/// shape `trace diff` prints).
std::string to_string(const TraceEvent& event);

/// The run configuration a trace was recorded under — everything replay
/// needs besides the graph and the advice. deadline_ns is deliberately NOT
/// carried: it is the one machine-dependent RunOptions knob, and replay
/// only promises bit-identity for deterministic runs.
struct TraceHeader {
  std::string algorithm;  ///< Algorithm::name(), resolved by core/replay.h
  std::string oracle;     ///< informational; empty when unknown
  NodeId source = 0;
  SchedulerKind scheduler = SchedulerKind::kSynchronous;
  /// Delay-keying mode the run was recorded under. Defaults to kStream so
  /// artifacts written before counter keying became canonical (no `keying`
  /// header line) replay bit-exactly on the legacy draw-order path.
  SchedulerKeying keying = SchedulerKeying::kStream;
  std::uint64_t seed = 1;
  std::uint32_t max_delay = 16;
  std::uint64_t max_messages = 50'000'000;
  std::uint64_t max_events = 0;
  bool enforce_wakeup = false;
  bool anonymous = false;
  FaultPlanParams fault;
  /// Byzantine regime the run was recorded under. Serialized only when
  /// enabled(), so pre-adversary trace files load unchanged.
  AdversaryPlanParams adversary;
  TraceLevel level = TraceLevel::kFull;

  /// Rebuilds the RunOptions this header describes (no sink attached).
  RunOptions to_run_options() const;

  friend bool operator==(const TraceHeader&, const TraceHeader&) = default;
};

/// A complete recorded execution: configuration, inputs, event stream, and
/// outcome. Self-contained — save/load round-trips through a line-oriented
/// text format (version tag `oracletrace 1`).
struct RecordedTrace {
  TraceHeader header;
  std::string graph_text;  ///< graph/io.h text serialization of the network
  std::vector<BitString> advice;  ///< the ORIGINAL (pre-corruption) advice
  std::vector<TraceEvent> events;
  RunStatus status = RunStatus::kCompleted;
  Metrics metrics;
  FaultCounters faults;
  AdversaryCounters adversary;

  /// FNV-1a over the event stream, the status, the metrics, and the fault
  /// counters. Pure integer arithmetic: stable across platforms/compilers.
  /// Adversary counters fold in only when nonzero, so every pre-Byzantine
  /// golden digest is unchanged.
  std::uint64_t digest() const;
};

/// Serializes / parses the `oracletrace 1` text format. load_trace throws
/// std::runtime_error with a line diagnostic on malformed input.
void save_trace(std::ostream& os, const RecordedTrace& trace);
RecordedTrace load_trace(std::istream& is);

/// Exports the stream as Chrome trace_event JSON ("traceEvents" array,
/// ts = scheduler key in microseconds, tid = acting node) for
/// chrome://tracing / Perfetto.
void write_chrome_trace(std::ostream& os, const RecordedTrace& trace);

/// Everything the engine knows at the moment a traced run starts. Pointers
/// are valid only for the duration of the begin_run call.
struct TraceRunInfo {
  const PortGraph* graph = nullptr;
  const std::vector<BitString>* advice = nullptr;  ///< original advice
  NodeId source = 0;
  std::string algorithm;
  const RunOptions* options = nullptr;
};

/// The engine-side hook. Implementations must tolerate begin_run being
/// called again after a previous run (retried trials re-enter the sink;
/// recorders reset and keep the LAST run).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void begin_run(const TraceRunInfo& info) = 0;
  virtual void record(const TraceEvent& event) = 0;
  virtual void end_run(const RunResult& result) = 0;
};

/// The standard sink: captures a RecordedTrace, filtering node-state events
/// at TraceLevel::kMessages. Not thread-safe; attach one recorder per
/// concurrently-running trial (BatchRunner copies the spec's options, so a
/// per-spec recorder is touched only by the worker that claimed the spec).
class TraceRecorder : public TraceSink {
 public:
  explicit TraceRecorder(TraceLevel level = TraceLevel::kFull)
      : level_(level) {}

  void begin_run(const TraceRunInfo& info) override;
  void record(const TraceEvent& event) override;
  void end_run(const RunResult& result) override;

  /// True once end_run has sealed the trace of the most recent run.
  bool complete() const noexcept { return complete_; }

  /// The sealed trace. Call only when complete().
  const RecordedTrace& trace() const { return trace_; }

  /// Moves the sealed trace out, resetting the recorder.
  RecordedTrace take();

 private:
  TraceLevel level_;
  RecordedTrace trace_;
  bool complete_ = false;
};

}  // namespace oraclesize
