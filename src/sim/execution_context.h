// A reusable execution engine: one ExecutionContext plays many runs.
//
// `run_execution` (sim/engine.h) is a convenience that builds a fresh
// context per call. For experiment sweeps — thousands of trials over the
// same or similar networks — that means re-heap-allocating the behavior
// table, the input table, and the event queue on every trial, and the
// `std::priority_queue<Event>` sifts full `Message`-carrying structs on
// every push/pop. ExecutionContext keeps all of that storage alive across
// runs:
//
//  * per-node tables (`NodeInput`, behavior slots) are resized, not
//    reallocated;
//  * pending events live in a flat pool with a free list; the priority
//    queue is an index heap over the pool, so heap sifts move 8-byte
//    indices instead of events;
//  * the scheduler's per-link FIFO clock is a flat vector indexed by the
//    graph's prefix-summed (node, port) offsets, reset (not rebuilt) per
//    run;
//  * behavior objects are pooled: when consecutive runs use algorithms
//    reporting `Algorithm::reusable()` with the same name(), existing
//    behaviors are re-armed via `NodeBehavior::reset` instead of being
//    destroyed and re-`make_behavior`'d — so the steady state of a sweep
//    performs zero per-node heap allocations per run;
//  * sends are appended into one scratch vector recycled across events
//    (the sink protocol of sim/scheme.h).
//
// The contract: for a fixed (graph, source, advice, algorithm, options),
// ExecutionContext::run returns a RunResult bit-identical to
// run_execution's, regardless of how many runs the context played before —
// see tests/test_execution_context.cpp and tests/test_behavior_reuse.cpp.
// A context is NOT thread-safe; use one per worker (core/batch_runner.h
// does exactly that).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/event_heap.h"

namespace oraclesize {

class ExecutionContext {
 public:
  ExecutionContext() : scheduler_(SchedulerKind::kSynchronous, 0, 1) {}

  /// Plays one execution. Identical semantics to run_execution; see
  /// sim/engine.h for the meaning of each argument and of the result.
  RunResult run(const PortGraph& g, NodeId source,
                const std::vector<BitString>& advice,
                const Algorithm& algorithm, const RunOptions& options);

 private:
  /// (Re)populates behaviors_[0..n) for this run: pooled behaviors are
  /// re-armed with reset() when the algorithm allows it, otherwise fresh
  /// ones are constructed. Updates the pool identity bookkeeping.
  void arm_behaviors(std::size_t n, const Algorithm& algorithm);

  Scheduler scheduler_;
  FaultPlan fault_plan_;
  AdversaryPlan adversary_plan_;
  /// Scratch for FaultPlan::corrupt_advice — trials share immutable advice
  /// vectors, so corruption writes a private copy here instead.
  std::vector<BitString> corrupted_advice_;
  std::vector<NodeInput> inputs_;
  std::vector<std::unique_ptr<NodeBehavior>> behaviors_;
  std::vector<Send> sends_;  ///< scratch sink, recycled per event
  /// Pending events: slot pool + (key, seq) index heap (sim/event_heap.h —
  /// shared with the sharded engine, which runs one EventHeap per shard).
  EventHeap events_;
  std::vector<std::uint64_t> link_offset_;  ///< prefix sums of degrees
  /// Behavior-pool identity: behaviors_[v] (v < pool_count_) were produced
  /// by a reusable algorithm named pool_algorithm_ and may be re-armed via
  /// reset() by any same-named reusable algorithm.
  std::string pool_algorithm_;
  std::size_t pool_count_ = 0;
};

}  // namespace oraclesize
