// The engine's pending-event store: a slot pool plus an index min-heap.
//
// Extracted from ExecutionContext so the single-threaded engine and the
// sharded engine (sim/sharded_engine.h) share one implementation of the
// ordering that defines delivery semantics: events are consumed in
// (delivery key, send sequence) order, which makes delivery a total order
// for any scheduler. Message payloads live in a flat slot pool with a free
// list; the heap sifts 24-byte index entries, never the Message-carrying
// events themselves. Storage is retained across clear() calls so a reused
// context performs no steady-state allocation (tests/test_zero_alloc.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/port_graph.h"
#include "sim/message.h"

namespace oraclesize {

/// One in-flight message's payload, parked in the pool until delivery.
struct EngineEvent {
  NodeId to = kNoNode;
  Port at_port = kNoPort;
  Message msg;
  bool sender_informed = false;
};

/// Pool + binary min-heap over (key, seq). Not thread-safe; the sharded
/// engine gives each shard its own EventHeap.
class EventHeap {
 public:
  /// Heap entries carry the ordering fields inline so sifting never
  /// dereferences the pool: `key` is the delivery priority (lower first)
  /// and `seq` the global send number — the tie-breaker that makes
  /// delivery order a total order. `slot` indexes the pool.
  struct Entry {
    std::int64_t key;
    std::uint64_t seq;
    std::size_t slot;
  };

  static bool entry_before(const Entry& a, const Entry& b) noexcept {
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  }

  /// Drops all pending entries and resets the high-water mark; slot storage
  /// and heap capacity are retained for reuse.
  void clear() noexcept {
    pool_.clear();
    heap_.clear();
    free_slots_.clear();
    peak_ = 0;
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Smallest pending delivery key. Precondition: !empty().
  std::int64_t top_key() const noexcept { return heap_.front().key; }

  /// Number of pending entries whose key equals `key` (linear scan over the
  /// raw heap array — used only for the sharded engine's event-budget
  /// pre-count, never on a per-event path).
  std::size_t count_key(std::int64_t key) const noexcept {
    std::size_t count = 0;
    for (const Entry& e : heap_) count += (e.key == key) ? 1 : 0;
    return count;
  }

  /// Heap high-water mark since the last clear() (records the heap size
  /// after every push — the queue_depth_peak metric).
  std::size_t peak() const noexcept { return peak_; }

  /// Claims a pool slot (recycled or fresh) for the caller to fill via
  /// slot().
  std::size_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::size_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    pool_.emplace_back();
    return pool_.size() - 1;
  }

  EngineEvent& slot(std::size_t s) noexcept { return pool_[s]; }

  /// Returns a slot to the free list (after the event was moved out).
  void release_slot(std::size_t s) { free_slots_.push_back(s); }

  void push(Entry e) {
    // Hole insertion: bubble the hole up, write the entry once at the end.
    std::size_t i = heap_.size();
    heap_.push_back(e);
    if (heap_.size() > peak_) peak_ = heap_.size();
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!entry_before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  /// Removes and returns the smallest entry. Precondition: !empty(). The
  /// slot is NOT released — callers move the event out first, then call
  /// release_slot (filling a slot can grow the pool and invalidate
  /// references into it).
  Entry pop() {
    const Entry top = heap_.front();
    const Entry last = heap_.back();
    heap_.pop_back();
    const std::size_t size = heap_.size();
    if (size > 0) {
      // Sift the hole down from the root, then drop `last` into it.
      std::size_t i = 0;
      while (true) {
        const std::size_t left = 2 * i + 1;
        if (left >= size) break;
        const std::size_t right = left + 1;
        std::size_t best = left;
        if (right < size && entry_before(heap_[right], heap_[left])) {
          best = right;
        }
        if (!entry_before(heap_[best], last)) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return top;
  }

 private:
  std::vector<EngineEvent> pool_;       ///< event storage (slots)
  std::vector<Entry> heap_;             ///< binary min-heap over the pool
  std::vector<std::size_t> free_slots_;  ///< recycled pool slots
  std::size_t peak_ = 0;                ///< heap high-water mark
};

}  // namespace oraclesize
