#include "sim/fault_plan.h"

#include "util/rng.h"

namespace oraclesize {

namespace {

// Domain-separation tags: each fault family draws from its own keyed
// stream so that, e.g., enabling crashes never perturbs which messages a
// given seed drops.
constexpr std::uint64_t kMessageTag = 0x6d657373616765ULL;  // "message"
constexpr std::uint64_t kCrashTag = 0x637261736864ULL;      // "crashd"
constexpr std::uint64_t kAdviceTag = 0x616476696365ULL;     // "advice"

Rng keyed_rng(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
              std::uint64_t b) noexcept {
  return Rng(mix64(seed ^ mix64(tag ^ mix64(a ^ mix64(b)))));
}

}  // namespace

void FaultPlan::arm(const FaultPlanParams& params, std::size_t num_nodes,
                    NodeId source) {
  params_ = params;
  if (params_.max_extra_delay == 0) params_.max_extra_delay = 1;
  message_faults_ =
      params_.drop > 0 || params_.duplicate > 0 || params_.delay > 0;
  crash_at_.clear();
  num_crashed_ = 0;
  if (params_.crash <= 0) return;
  crash_at_.resize(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (v == source && !params_.crash_source) {
      crash_at_[v] = kNoCrash;
      continue;
    }
    Rng rng = keyed_rng(params_.seed, kCrashTag, v, 0);
    if (rng.chance(params_.crash)) {
      crash_at_[v] = rng.range(0, params_.max_crash_key);
      ++num_crashed_;
    } else {
      crash_at_[v] = kNoCrash;
    }
  }
}

std::uint64_t FaultPlan::message_prekey(std::uint64_t seq,
                                        std::uint64_t link) noexcept {
  // keyed_rng(seed, kMessageTag, seq, link) seeds with
  // mix64(seed ^ mix64(kMessageTag ^ mix64(seq ^ mix64(link)))); everything
  // inside the outer mix except the seed is this prekey.
  return mix64(kMessageTag ^ mix64(seq ^ mix64(link)));
}

FaultPlan::MessageFault FaultPlan::message_fault(std::uint64_t seq,
                                                 std::uint64_t link) const {
  return message_fault_prekeyed(message_prekey(seq, link));
}

FaultPlan::MessageFault FaultPlan::message_fault_prekeyed(
    std::uint64_t prekey) const {
  MessageFault fault;
  if (!message_faults_) return fault;
  Rng rng(mix64(params_.seed ^ prekey));
  if (params_.drop > 0 && rng.chance(params_.drop)) {
    fault.drop = true;
    return fault;  // a lost message can be neither duplicated nor delayed
  }
  if (params_.duplicate > 0) fault.duplicate = rng.chance(params_.duplicate);
  if (params_.delay > 0 && rng.chance(params_.delay)) {
    fault.extra_delay =
        1 + static_cast<std::uint32_t>(rng.below(params_.max_extra_delay));
  }
  return fault;
}

bool FaultPlan::corrupts_any_bit(const std::vector<BitString>& in) const {
  if (params_.advice_flip <= 0) return false;
  for (NodeId v = 0; v < in.size(); ++v) {
    Rng rng = keyed_rng(params_.seed, kAdviceTag, v, in[v].size());
    for (std::size_t i = 0; i < in[v].size(); ++i) {
      if (rng.chance(params_.advice_flip)) return true;
    }
  }
  return false;
}

std::uint64_t FaultPlan::corrupt_advice(const std::vector<BitString>& in,
                                        std::vector<BitString>& out) const {
  out.clear();
  out.reserve(in.size());
  std::uint64_t flipped = 0;
  for (NodeId v = 0; v < in.size(); ++v) {
    Rng rng = keyed_rng(params_.seed, kAdviceTag, v, in[v].size());
    BitString s;
    for (std::size_t i = 0; i < in[v].size(); ++i) {
      bool bit = in[v].bit(i);
      if (rng.chance(params_.advice_flip)) {
        bit = !bit;
        ++flipped;
      }
      s.append_bit(bit);
    }
    out.push_back(std::move(s));
  }
  return flipped;
}

}  // namespace oraclesize
