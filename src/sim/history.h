// The paper's literal scheme formalism: histories and history functions.
//
// Section 1.4 defines a scheme S_v as a function from *histories*
//
//     H = (f(v), s(v), id(v), deg(v), (m1,p1), (m2,p2), ..., (mk,pk))
//
// to send-sets. The engine's NodeBehavior interface is the incremental form
// of the same object; this header provides the literal form:
//
//  * History — the full knowledge of a node at a point of the execution;
//  * HistoryScheme — a pure function History -> sends;
//  * HistorySchemeAlgorithm — adapts a HistoryScheme into an Algorithm by
//    replaying the growing history at every step (stateless by
//    construction, exactly the paper's object);
//  * RecordingBehavior — wraps any NodeBehavior and records its history,
//    letting tests check that a stateful behavior is equivalent to some
//    history function (determinism over histories).
//
// The adapter is O(k) per delivery (it re-presents the whole history), so
// it is a specification/testing device, not the production path.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/scheme.h"

namespace oraclesize {

/// The paper's history H at a node.
struct History {
  NodeInput input;  ///< the prefix (f(v), s(v), id(v), deg(v))
  std::vector<std::pair<Message, Port>> received;  ///< (m_i, p_i), in order
};

/// A scheme in the paper's sense: sends as a pure function of the history.
using HistoryScheme = std::function<std::vector<Send>(const History&)>;

/// Adapts a history function into an executable Algorithm. The function is
/// invoked once on the empty history (on_start) and once per delivery with
/// the full history so far; to keep send-sets disjoint across invocations
/// the adapter emits only the *new* sends, i.e. the scheme must be
/// monotone: scheme(H') must extend scheme(H) whenever H' extends H by one
/// message. The paper's schemes (tree wakeup, scheme B) all have this
/// property — each history step triggers a batch of sends that is never
/// retracted.
class HistorySchemeAlgorithm final : public Algorithm {
 public:
  HistorySchemeAlgorithm(HistoryScheme scheme, std::string name,
                         bool wakeup = false)
      : scheme_(std::move(scheme)), name_(std::move(name)), wakeup_(wakeup) {}

  std::unique_ptr<NodeBehavior> make_behavior(
      const NodeInput& input) const override;
  std::string name() const override { return name_; }
  bool is_wakeup() const override { return wakeup_; }

 private:
  HistoryScheme scheme_;
  std::string name_;
  bool wakeup_;
};

/// Decorates a NodeBehavior, recording the history it has been shown.
/// Tests use it to validate behavior/history-function equivalence.
class RecordingBehavior final : public NodeBehavior {
 public:
  explicit RecordingBehavior(std::unique_ptr<NodeBehavior> inner)
      : inner_(std::move(inner)) {}

  void on_start(const NodeInput& input, std::vector<Send>& out) override {
    history_.input = input;
    inner_->on_start(input, out);
  }
  void on_receive(const NodeInput& input, const Message& msg, Port from_port,
                  std::vector<Send>& out) override {
    history_.received.emplace_back(msg, from_port);
    inner_->on_receive(input, msg, from_port, out);
  }
  bool terminated() const override { return inner_->terminated(); }
  std::uint64_t output() const override { return inner_->output(); }

  const History& history() const noexcept { return history_; }

 private:
  std::unique_ptr<NodeBehavior> inner_;
  History history_;
};

}  // namespace oraclesize
