// The discrete-event execution engine.
//
// Given a network, a source, per-node advice strings (the oracle's output),
// and an algorithm, the engine instantiates one scheme per node and plays
// the message-passing execution under a chosen scheduler. It tracks the
// paper's notion of "informed" — the source is informed, and a node becomes
// informed upon receiving a message *sent by an informed node* (the source
// message can be piggybacked on any such message) — and can machine-check
// the wakeup constraint: a non-source node must not transmit before it is
// informed.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "bitio/bitstring.h"
#include "graph/port_graph.h"
#include "sim/adversary_plan.h"
#include "sim/fault_plan.h"
#include "sim/metrics.h"
#include "sim/scheduler.h"
#include "sim/scheme.h"

namespace oraclesize {

class TraceSink;  // sim/trace_recorder.h

/// Structured outcome of one execution. A run always terminates with
/// exactly one of these instead of looping or throwing for anything the
/// scheme (or the injected faults) did:
///  * kCompleted       — event queue drained, no violation, task criterion
///                       (all nodes informed) met;
///  * kTaskFailed      — the run ended cleanly but the task was not solved
///                       (uninformed nodes, a wakeup/port violation, or a
///                       behavior that threw on corrupted advice);
///  * kTimeout         — RunOptions::deadline_ns elapsed mid-run;
///  * kBudgetExhausted — the event or message budget ran out;
///  * kCrashed         — the trial infrastructure itself threw (set by
///                       BatchRunner, never by the engine);
///  * kByzantineDetected — the adversary plan was active and the run ended
///                       with an observable symptom (a violation, or a
///                       behavior that threw on forged content). A fooled
///                       run that terminates cleanly with a wrong answer
///                       stays kTaskFailed — the silent-wrong-answer case
///                       the detected case is distinguished from.
enum class RunStatus : std::uint8_t {
  kCompleted,
  kTaskFailed,
  kTimeout,
  kBudgetExhausted,
  kCrashed,
  kByzantineDetected,
};

const char* to_string(RunStatus status);

struct RunOptions {
  SchedulerKind scheduler = SchedulerKind::kSynchronous;
  /// How the seeded schedulers derive delays. kCounter (the canonical
  /// schedule) keys each delay on (seed, seq, link); kStream replays the
  /// legacy draw-order Rng stream for old trace artifacts.
  SchedulerKeying keying = SchedulerKeying::kCounter;
  std::uint64_t seed = 1;          ///< randomness for kAsyncRandom
  std::uint32_t max_delay = 16;    ///< max per-message delay, kAsyncRandom
  std::uint64_t max_messages = 50'000'000;  ///< runaway-scheme safety valve
  bool enforce_wakeup = false;  ///< flag transmissions by uninformed nodes
  bool anonymous = false;       ///< hide id(v) from the algorithm (pass 0)
  bool trace = false;           ///< record every transmission (tests only)
  /// Deterministic fault injection (sim/fault_plan.h). The default plan is
  /// disabled: the run takes the legacy reliable-network path bit for bit.
  FaultPlanParams fault;
  /// Deterministic Byzantine injection (sim/adversary_plan.h): lying node
  /// sets, forged/equivocated/replayed messages, per-link advice lies. The
  /// default plan is disabled and costs nothing on the hot path.
  AdversaryPlanParams adversary;
  /// Wall-clock cap on one run; 0 = none. A run that exceeds it stops with
  /// RunStatus::kTimeout. NOTE: the only machine-dependent knob — runs
  /// racing a deadline are not reproducible across hosts.
  std::uint64_t deadline_ns = 0;
  /// Cap on delivered events; 0 = none. Exceeding it stops the run with
  /// RunStatus::kBudgetExhausted (deterministic, unlike deadline_ns).
  std::uint64_t max_events = 0;
  /// Structured event tracing (sim/trace_recorder.h). Null = disabled —
  /// the hot path pays one branch per event group and allocates nothing.
  /// Non-owning; the sink must outlive the run. Unlike `trace` (the legacy
  /// SentRecord vector), a sink sees deliveries, fault decisions, and
  /// node-state transitions, stamped with the fault plan's counter keys.
  TraceSink* trace_sink = nullptr;
};

struct RunResult {
  Metrics metrics;
  RunStatus status = RunStatus::kCompleted;  ///< structured outcome
  FaultCounters faults;  ///< what the fault plan did (all zero when disabled)
  AdversaryCounters adversary;  ///< what the Byzantine layer did (zero when off)
  std::vector<bool> informed;  ///< per node
  bool all_informed = false;   ///< the task's success criterion
  /// Empty when the run is clean; otherwise the first violation detected
  /// (wakeup constraint, invalid port, message budget).
  std::string violation;
  std::vector<SentRecord> trace;  ///< only when RunOptions::trace
  std::vector<bool> terminated;   ///< per-node NodeBehavior::terminated()
  std::vector<std::uint64_t> outputs;  ///< per-node NodeBehavior::output()
  std::vector<std::uint64_t> sends_by_node;  ///< per-node message load
  /// Scheduler key (round, under kSynchronous) at which each node became
  /// informed; kNeverInformed for nodes that never did, 0 for the source.
  static constexpr std::int64_t kNeverInformed =
      std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> informed_at;

  /// The heaviest sender's message count (load balance of the scheme —
  /// the paper counts totals; per-node load is a natural refinement).
  std::uint64_t max_node_sends() const;

  std::size_t informed_count() const;

  /// Field-by-field equality: the batch runtime's determinism contract
  /// ("bit-identical results regardless of --jobs") is checked with this.
  friend bool operator==(const RunResult&, const RunResult&) = default;
};

/// Executes `algorithm` on `g` from `source` with the given advice strings
/// (advice.size() must equal g.num_nodes()). Deterministic for fixed inputs
/// and options.
RunResult run_execution(const PortGraph& g, NodeId source,
                        const std::vector<BitString>& advice,
                        const Algorithm& algorithm, const RunOptions& options);

}  // namespace oraclesize
