// Sharded intra-run execution: one run, many cores, bit-identical results.
//
// ExecutionContext plays one run on one thread; BatchRunner parallelizes
// only *across* trials. A single million-node instance therefore cannot use
// the machine. ShardedExecutionContext splits one run across shards that
// each own a contiguous node range of the graph (graph/partition.h), with
// per-shard event queues and node-state slices, and exchanges cross-shard
// messages at deterministic epoch barriers.
//
// The execution model is bulk-synchronous over the scheduler's key space:
//
//  * an EPOCH is the set of pending events holding the globally minimal
//    delivery key K. Every scheduler in sim/scheduler.h either assigns
//    strictly-greater keys to all messages submitted while processing a
//    key-K event (kSynchronous, kAsyncRandom, kAsyncLinkFifo) or assigns
//    unique keys to every message (kAsyncFifo, kAsyncLifo — where an epoch
//    degenerates to one event), so the single-threaded engine necessarily
//    processes all of epoch K — in send-sequence order — before any other
//    pending event. Shards can therefore process their slice of an epoch in
//    parallel: events for a node are delivered only on the shard that owns
//    it, in (key, seq) order.
//  * at the BARRIER the coordinator finalizes the epoch's sends in global
//    send-sequence order (a k-way merge of the shards' processed-event
//    lists), assigning the exact sequence numbers, fault decisions
//    (sim/fault_plan.h is keyed on (seq, link) — shard-count-invariant by
//    construction), delivery keys, metrics, and trace records the
//    single-threaded engine would produce, and routes each message copy
//    into the destination shard's queue.
//
// Determinism contract: for every (graph, source, advice, algorithm,
// options), run() returns a RunResult bit-identical (RunResult::operator==)
// to ExecutionContext::run at ANY shard count, including the recorded trace
// and any TraceSink stream. Pinned by tests/test_sharded_engine.cpp,
// tests/test_sharded_goldens.cpp and the fuzz sweep.
//
// Two barrier finalizers keep the serial fraction small:
//
//  * the FAST path (kSynchronous/kAsyncFifo/kAsyncLifo, no sink, no legacy
//    trace, no duplication faults — delivery keys are pure functions of
//    (now, seq) and every send consumes exactly one sequence number) runs
//    validation + counting serially but computes fault decisions, delivery
//    keys, and routing in parallel per source shard, then drains mailboxes
//    into destination queues in parallel;
//  * the SERIAL path (stream-RNG schedulers, active sinks, duplication)
//    replays each send through a full submit replica at the coordinator —
//    parallelism then covers only behavior execution, which is correct but
//    slower; it exists so observability and fault regimes keep exact
//    semantics.
//
// Divergence handling: anything that stops the single-threaded engine
// mid-epoch — a wakeup/port/budget violation, a behavior exception, an
// event-budget cutoff inside an epoch — would leave the sharded attempt's
// state ahead of the canonical one. The attempt is then DISCARDED (no sink
// output is emitted — the stream is buffered until success) and the run is
// replayed on the embedded single-threaded engine, which reproduces the
// canonical result or exception exactly. last_stats().fell_back reports it.
// Clean runs, event budgets landing on epoch boundaries, and deadline stops
// never fall back.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "graph/partition.h"
#include "sim/engine.h"
#include "sim/event_heap.h"
#include "sim/execution_context.h"
#include "sim/trace_recorder.h"

namespace oraclesize {

/// How the last run used the shard machinery. Reported out-of-band (never
/// inside RunResult — result equality across shard counts is the contract).
struct ShardedRunStats {
  std::uint32_t shards = 1;  ///< shards the run actually partitioned into
  std::uint64_t epochs = 0;  ///< barrier count (main loop only)
  std::uint64_t cross_shard_messages = 0;  ///< copies routed between shards
  bool fell_back = false;  ///< attempt discarded, replayed single-threaded

  friend bool operator==(const ShardedRunStats&,
                         const ShardedRunStats&) = default;
};

/// A reusable sharded engine. Like ExecutionContext, one instance plays
/// many runs and retains its storage across them; unlike it, run() may use
/// `shards` worker threads for one run. Not thread-safe: one
/// ShardedExecutionContext per caller thread.
class ShardedExecutionContext {
 public:
  /// `shards` = 0 picks one shard per available hardware thread. A value of
  /// 1 (or a graph too small to split) runs on the embedded single-threaded
  /// engine directly.
  explicit ShardedExecutionContext(std::uint32_t shards = 0);
  ~ShardedExecutionContext();

  ShardedExecutionContext(const ShardedExecutionContext&) = delete;
  ShardedExecutionContext& operator=(const ShardedExecutionContext&) = delete;

  /// Plays one execution; same signature and semantics as
  /// ExecutionContext::run, bit-identical results at any shard count.
  RunResult run(const PortGraph& g, NodeId source,
                const std::vector<BitString>& advice,
                const Algorithm& algorithm, const RunOptions& options);

  /// Shard usage of the most recent run().
  const ShardedRunStats& last_stats() const noexcept { return stats_; }

  /// The resolved shard count this context was built for.
  std::uint32_t configured_shards() const noexcept { return shards_; }

 private:
  /// One event handled during an epoch, recorded by its shard for the
  /// barrier finalizer. `order` is the global position among the epoch's
  /// events: the popped entry's send sequence in the main loop, the node id
  /// in the start phase (both strictly increasing per shard, disjoint
  /// across shards).
  struct ProcessedEvent {
    std::uint64_t order = 0;
    std::int64_t now = 0;   ///< delivery key (0 for start-phase activations)
    NodeId node = kNoNode;  ///< the acting node
    std::uint32_t send_begin = 0;  ///< range into Shard::sends
    std::uint32_t send_end = 0;
    std::uint32_t trace_begin = 0;  ///< range into Shard::trace
    std::uint32_t trace_end = 0;
    std::uint64_t seq_base = 0;  ///< fast path: first send's sequence number
    std::uint32_t pushes = 0;    ///< fast path: copies actually enqueued
    bool popped = false;    ///< consumed a queue entry (false in start phase)
    bool dead = false;      ///< delivery suppressed at a crashed node
    bool informed = false;  ///< informed[node] when its sends were produced
  };

  /// One routed message copy, parked in a per-(src, dst) mailbox between
  /// the fast finalizer's routing pass and the destination-queue drain.
  struct MailboxEntry {
    std::int64_t key = 0;
    std::uint64_t seq = 0;
    NodeId to = kNoNode;
    Port at_port = kNoPort;
    bool sender_informed = false;
    Message msg;
  };

  /// Per-shard state: the owned node range, the event queue, and the epoch
  /// scratch buffers. All vectors retain capacity across epochs and runs.
  struct Shard {
    NodeId begin = 0;
    NodeId end = 0;
    EventHeap events;
    std::vector<ProcessedEvent> processed;  ///< this epoch's handled events
    std::vector<Send> sends;                ///< flat pending-send storage
    std::vector<TraceEvent> trace;          ///< buffered delivery-side events
    std::vector<std::vector<MailboxEntry>> outbox;  ///< per destination shard
    std::vector<Send> scratch;              ///< behavior send sink
    std::uint64_t dropped = 0;              ///< routing-pass fault partials
    std::uint64_t delayed = 0;
    std::uint64_t cross = 0;                ///< copies routed off-shard
    std::exception_ptr error;               ///< captured from worker code
  };

  class Workers;  // persistent thread pool (sharded_engine.cpp)

  /// The sharded attempt. Returns true and fills `result` on a clean run
  /// (sink stream flushed); returns false when the attempt must be
  /// discarded and replayed single-threaded. Never lets worker exceptions
  /// escape a thread.
  bool attempt(const PortGraph& g, NodeId source,
               const std::vector<BitString>& advice,
               const Algorithm& algorithm, const RunOptions& options,
               const Partition& part, RunResult& result);

  std::uint32_t shards_ = 1;
  ShardedRunStats stats_;
  ExecutionContext legacy_;  ///< shards<=1 path and fallback replays

  // Sharded-run state (mirrors ExecutionContext's reuse discipline).
  Scheduler scheduler_;
  FaultPlan fault_plan_;
  std::vector<BitString> corrupted_advice_;
  std::vector<NodeInput> inputs_;
  std::vector<std::unique_ptr<NodeBehavior>> behaviors_;
  std::string pool_algorithm_;
  std::size_t pool_count_ = 0;
  std::vector<std::uint64_t> link_offset_;  ///< only for unfrozen graphs
  /// Byte-wide informed flags: vector<bool> packs 64 nodes per word, which
  /// two shards bordering a word boundary would race on. Shards write only
  /// their own bytes here; RunResult::informed is filled serially at the
  /// end.
  std::vector<std::uint8_t> informed_;
  std::vector<TraceEvent> sink_buf_;  ///< whole-run buffered sink stream
  std::vector<Shard> shards_state_;
  std::vector<std::uint32_t> parts_;  ///< scratch: epoch participant ids
  /// Scratch: the epoch's merge order as (shard, processed-index) pairs,
  /// built by the fast finalizer's serial pass and replayed by its
  /// queue-depth pass.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> merge_order_;
  std::unique_ptr<Workers> workers_;
};

}  // namespace oraclesize
