// Arbitrary-precision unsigned integers for *exact* instance counting.
//
// The lower-bound machinery compares instance-family cardinalities like
// C(U, m-r) * (m-r)!. The production path (util/mathx.h) works in log space
// via lgamma — fast, but floating point. This class provides the exact
// ground truth: big-naturals with addition, multiplication, comparison,
// and exact binomial/factorial constructors, used by tests to certify that
// every decision the CountingAdversary makes from lgamma values agrees
// with exact arithmetic at scales where enumeration (exact_adversary.h)
// is hopeless.
//
// Scope is deliberately small: unsigned only, no division beyond the small
// divisor needed by binomial(), magnitudes up to a few hundred thousand
// bits. Not a general bignum library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace oraclesize {

class BigNat {
 public:
  BigNat() = default;                      // zero
  explicit BigNat(std::uint64_t v);        // small value

  static BigNat factorial(std::uint64_t n);
  /// C(n, k); returns zero when k > n.
  static BigNat binomial(std::uint64_t n, std::uint64_t k);

  bool is_zero() const noexcept { return limbs_.empty(); }

  BigNat& operator+=(const BigNat& other);
  friend BigNat operator+(BigNat a, const BigNat& b) { return a += b; }

  BigNat& operator*=(std::uint64_t m);
  BigNat operator*(const BigNat& other) const;

  /// Exact division by a small divisor. Requires divisor != 0 and exact
  /// divisibility (checked; throws std::invalid_argument otherwise).
  BigNat& divide_exact(std::uint64_t divisor);

  /// Three-way comparison: -1, 0, +1.
  int compare(const BigNat& other) const noexcept;
  friend bool operator==(const BigNat& a, const BigNat& b) noexcept {
    return a.compare(b) == 0;
  }
  friend bool operator<(const BigNat& a, const BigNat& b) noexcept {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const BigNat& a, const BigNat& b) noexcept {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const BigNat& a, const BigNat& b) noexcept {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const BigNat& a, const BigNat& b) noexcept {
    return a.compare(b) >= 0;
  }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const noexcept;

  /// log2 of the value (-infinity for zero); used to cross-check the
  /// lgamma-based pipeline. Exact to double precision.
  double log2() const;

  /// Exact value if it fits in 64 bits; throws std::overflow_error else.
  std::uint64_t to_u64() const;

  /// Decimal rendering (for diagnostics; O(bits^2/64)).
  std::string to_string() const;

 private:
  void trim();
  // Little-endian base-2^64 limbs; empty means zero.
  std::vector<std::uint64_t> limbs_;
};

}  // namespace oraclesize
