#include "util/mathx.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace oraclesize {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kLn2 = 0.6931471805599453094172321214581766;
}  // namespace

int floor_log2(std::uint64_t x) noexcept {
  assert(x >= 1);
  return 63 - __builtin_clzll(x);
}

int ceil_log2(std::uint64_t x) noexcept {
  assert(x >= 1);
  const int f = floor_log2(x);
  return ((x & (x - 1)) == 0) ? f : f + 1;
}

int num_bits(std::uint64_t w) noexcept {
  if (w <= 1) return 1;
  return floor_log2(w) + 1;
}

double log2_factorial(std::uint64_t x) noexcept {
  return std::lgamma(static_cast<double>(x) + 1.0) / kLn2;
}

double log2_choose(std::uint64_t a, std::uint64_t b) noexcept {
  if (b > a) return kNegInf;
  return log2_factorial(a) - log2_factorial(b) - log2_factorial(a - b);
}

double log2_pow(std::uint64_t a, std::uint64_t b) noexcept {
  assert(a >= 1);
  return static_cast<double>(b) * std::log2(static_cast<double>(a));
}

double log2_add(double a, double b) noexcept {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  const double hi = (a > b) ? a : b;
  const double lo = (a > b) ? b : a;
  return hi + std::log2(1.0 + std::exp2(lo - hi));
}

double log2_sub(double a, double b) noexcept {
  assert(a >= b);
  if (b == kNegInf) return a;
  if (a == b) return kNegInf;
  return a + std::log2(1.0 - std::exp2(b - a));
}

bool claim21_holds(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t top = a * (1 + b);
  return log2_choose(top, a) <= static_cast<double>(a) *
                                    std::log2(6.0 * static_cast<double>(b));
}

}  // namespace oraclesize
