#include "util/rng.h"

#include <cassert>
#include <numeric>

namespace oraclesize {

std::uint64_t Rng::next_u64() noexcept {
  // SplitMix64 (Steele, Lea, Flood 2014). Public-domain reference constants.
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (width == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(below(width));
}

double Rng::unit() noexcept {
  // 53 random mantissa bits -> uniform double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return unit() < p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace oraclesize
