// Minimal aligned-table and CSV printer used by the benchmark harness to
// reproduce the paper's result tables in a readable form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <ostream>
#include <string>
#include <vector>

namespace oraclesize {

/// Accumulates rows of strings and renders them as an aligned ASCII table
/// or as CSV. Cells are stored as strings; numeric helpers format with a
/// fixed precision suited to the experiment tables.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row. Subsequent add_* calls append cells to it.
  Table& row();

  Table& cell(std::string value);
  Table& cell(const char* value) { return cell(std::string(value)); }
  /// Fixed-point double with the given number of decimals.
  Table& cell(double value, int decimals = 2);
  /// Any integral type.
  template <typename T>
    requires std::is_integral_v<T>
  Table& cell(T value) {
    return cell(std::to_string(value));
  }

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Renders with column alignment, a header rule, and an optional title.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Renders as RFC-4180-ish CSV (no quoting of commas; cells never
  /// contain commas in this code base).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace oraclesize
