// Sorted-vector set operations for the algorithms' hot paths.
//
// The paper's schemes keep tiny per-node port sets (K_x, H_x, S_x, pending
// children). std::set gives the right semantics but costs one heap node per
// element — fatal for a zero-allocation steady state. A sorted std::vector
// has identical iteration order (ascending) and set semantics via binary
// search, while its storage is one buffer that reset() can recycle across
// runs. These helpers keep call sites as readable as the std::set ones.
#pragma once

#include <algorithm>
#include <vector>

namespace oraclesize {

/// Inserts `value` into the sorted vector `v` if absent. Returns true when
/// the value was newly inserted (mirrors std::set::insert().second).
template <typename T>
bool insert_sorted(std::vector<T>& v, const T& value) {
  const auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it != v.end() && *it == value) return false;
  v.insert(it, value);
  return true;
}

/// Removes `value` from the sorted vector `v` if present. Returns true when
/// a value was removed (mirrors std::set::erase() != 0).
template <typename T>
bool erase_sorted(std::vector<T>& v, const T& value) {
  const auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it == v.end() || *it != value) return false;
  v.erase(it);
  return true;
}

/// Membership test on a sorted vector (mirrors std::set::count() != 0).
template <typename T>
bool contains_sorted(const std::vector<T>& v, const T& value) {
  return std::binary_search(v.begin(), v.end(), value);
}

}  // namespace oraclesize
