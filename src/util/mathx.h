// Log-space combinatorics and integer-log helpers.
//
// The lower-bound machinery of the paper (Lemma 2.1, Theorems 2.2 and 3.2)
// compares cardinalities of instance families that overflow any fixed-width
// integer long before the interesting range of n (e.g. |I| ~ n! * (n^2/2
// choose n)). All such quantities are therefore manipulated as base-2
// logarithms computed via lgamma, which is exact enough (relative error
// ~1e-14) for every comparison the adversary makes: the quantities compared
// differ by at least a factor of ~2 whenever a decision matters.
#pragma once

#include <cstdint>

namespace oraclesize {

/// ceil(log2(x)) for x >= 1. ceil_log2(1) == 0.
int ceil_log2(std::uint64_t x) noexcept;

/// floor(log2(x)) for x >= 1. floor_log2(1) == 0.
int floor_log2(std::uint64_t x) noexcept;

/// The paper's #2(w): number of bits in the standard binary representation
/// of w, with the convention #2(0) = #2(1) = 1.
/// #2(w) = floor(log2 w) + 1 for w > 1.
int num_bits(std::uint64_t w) noexcept;

/// log2(x!) via lgamma. Requires x >= 0; log2_factorial(0) == 0.
double log2_factorial(std::uint64_t x) noexcept;

/// log2(a choose b). Returns -infinity if b > a. log2_choose(a, 0) == 0.
double log2_choose(std::uint64_t a, std::uint64_t b) noexcept;

/// log2(a^b) = b * log2(a). Requires a >= 1.
double log2_pow(std::uint64_t a, std::uint64_t b) noexcept;

/// Numerically stable log2(2^a + 2^b).
double log2_add(double a, double b) noexcept;

/// Numerically stable log2(2^a - 2^b). Requires a >= b.
/// Returns -infinity when a == b.
double log2_sub(double a, double b) noexcept;

/// Verifies Claim 2.1 of the paper numerically:
/// (a(1+b) choose a) <= (6b)^a, i.e.
/// log2_choose(a*(1+b), a) <= a*log2(6b).
/// Returns true iff the inequality holds for the given a, b.
bool claim21_holds(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace oraclesize
