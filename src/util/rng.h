// Deterministic pseudo-random number generation for reproducible simulations.
//
// Every randomized component in this library (graph generators, asynchronous
// schedulers, probe strategies) draws from an explicitly seeded Rng so that
// experiments and tests are bit-for-bit reproducible across runs and
// platforms. We wrap a SplitMix64 generator: tiny state, excellent
// statistical quality for simulation purposes, and a stable, documented
// algorithm (unlike std::mt19937 distributions, whose mapping from engine
// output to values is implementation-defined for std::uniform_int_distribution).
#pragma once

#include <cstdint>
#include <vector>

namespace oraclesize {

/// SplitMix64 finalizer: the stateless mixer behind every counter-based
/// keying scheme in the library (fault prekeys, counter-keyed scheduler
/// delays). Same constants as Rng::next_u64, so the whole library stays on
/// one documented generator family.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic 64-bit PRNG (SplitMix64) with convenience samplers.
///
/// All samplers are defined purely in terms of next_u64(), so sequences are
/// identical on every standard-conforming platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double unit() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Fisher-Yates shuffle of a vector, using this generator.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) in uniformly random order.
  /// Requires k <= n. O(n) time, O(n) space (partial Fisher-Yates).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derive an independent child generator (for parallel or per-node use).
  Rng split() noexcept { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  std::uint64_t state_;
};

}  // namespace oraclesize
