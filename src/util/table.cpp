#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace oraclesize {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  rows_.back().push_back(std::move(value));
  return *this;
}


Table& Table::cell(double value, int decimals) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(decimals) << value;
  return cell(ss.str());
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = (c < cells.size()) ? cells[c] : std::string();
      os << "| " << std::setw(static_cast<int>(widths[c])) << v << ' ';
    }
    os << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < widths.size(); ++c)
    os << "|" << std::string(widths[c] + 2, '-');
  os << "|\n";
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace oraclesize
