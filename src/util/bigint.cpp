#include "util/bigint.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oraclesize {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;
}  // namespace

BigNat::BigNat(u64 v) {
  if (v != 0) limbs_.push_back(v);
}

void BigNat::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNat& BigNat::operator+=(const BigNat& other) {
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  limbs_.resize(n, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 rhs = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const u64 before = limbs_[i];
    limbs_[i] = before + rhs + carry;
    carry = (limbs_[i] < before || (carry && limbs_[i] == before)) ? 1 : 0;
  }
  if (carry) limbs_.push_back(1);
  return *this;
}

BigNat& BigNat::operator*=(u64 m) {
  if (m == 0 || is_zero()) {
    limbs_.clear();
    return *this;
  }
  u64 carry = 0;
  for (u64& limb : limbs_) {
    const u128 prod = static_cast<u128>(limb) * m + carry;
    limb = static_cast<u64>(prod);
    carry = static_cast<u64>(prod >> 64);
  }
  if (carry) limbs_.push_back(carry);
  return *this;
}

BigNat BigNat::operator*(const BigNat& other) const {
  if (is_zero() || other.is_zero()) return BigNat{};
  BigNat out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(limbs_[i]) * other.limbs_[j] +
                       out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    std::size_t k = i + other.limbs_.size();
    while (carry) {
      const u128 cur = static_cast<u128>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
      ++k;
    }
  }
  out.trim();
  return out;
}

BigNat& BigNat::divide_exact(u64 divisor) {
  if (divisor == 0) throw std::invalid_argument("BigNat: divide by zero");
  u64 remainder = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    const u128 cur = (static_cast<u128>(remainder) << 64) | limbs_[i];
    limbs_[i] = static_cast<u64>(cur / divisor);
    remainder = static_cast<u64>(cur % divisor);
  }
  if (remainder != 0) {
    throw std::invalid_argument("BigNat::divide_exact: not divisible");
  }
  trim();
  return *this;
}

int BigNat::compare(const BigNat& other) const noexcept {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

std::size_t BigNat::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  const u64 top = limbs_.back();
  return (limbs_.size() - 1) * 64 +
         static_cast<std::size_t>(64 - __builtin_clzll(top));
}

double BigNat::log2() const {
  if (is_zero()) return -std::numeric_limits<double>::infinity();
  // Top two limbs give a 128-bit mantissa; lower limbs only shift the
  // exponent (their contribution to log2 is below double precision).
  const std::size_t top = limbs_.size();
  const std::size_t consumed = std::min<std::size_t>(top, 2);
  double mantissa = 0.0;
  for (std::size_t i = top; i-- > top - consumed;) {
    mantissa =
        mantissa * std::ldexp(1.0, 64) + static_cast<double>(limbs_[i]);
  }
  return std::log2(mantissa) + static_cast<double>((top - consumed) * 64);
}

std::uint64_t BigNat::to_u64() const {
  if (limbs_.size() > 1) throw std::overflow_error("BigNat::to_u64");
  return limbs_.empty() ? 0 : limbs_[0];
}

std::string BigNat::to_string() const {
  if (is_zero()) return "0";
  BigNat tmp = *this;
  std::string out;
  while (!tmp.is_zero()) {
    // Divide by 10^19 (largest power of ten in a u64) and render remainder.
    constexpr u64 kChunk = 10'000'000'000'000'000'000ull;
    u64 remainder = 0;
    for (std::size_t i = tmp.limbs_.size(); i-- > 0;) {
      const u128 cur = (static_cast<u128>(remainder) << 64) | tmp.limbs_[i];
      tmp.limbs_[i] = static_cast<u64>(cur / kChunk);
      remainder = static_cast<u64>(cur % kChunk);
    }
    tmp.trim();
    std::string part = std::to_string(remainder);
    if (!tmp.is_zero()) part.insert(0, 19 - part.size(), '0');
    out.insert(0, part);
  }
  return out;
}

BigNat BigNat::factorial(u64 n) {
  BigNat out(1);
  for (u64 i = 2; i <= n; ++i) out *= i;
  return out;
}

BigNat BigNat::binomial(u64 n, u64 k) {
  if (k > n) return BigNat{};
  if (k > n - k) k = n - k;
  BigNat out(1);
  // Multiply/divide alternately; out stays integral because every prefix
  // product of C(n,k)'s factors is itself a binomial coefficient.
  for (u64 i = 1; i <= k; ++i) {
    out *= (n - k + i);
    out.divide_exact(i);
  }
  return out;
}

}  // namespace oraclesize
