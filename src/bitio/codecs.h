// Self-delimiting integer codes used by the paper's oracle constructions.
//
// Theorem 2.1 encodes the list of child-port numbers of a spanning-tree node
// as fixed-width fields preceded by a "doubled-bit" header carrying the field
// width; Theorem 3.1 packs a multiset of edge weights into one string where
// each weight costs O(#2(w)) bits. Both need uniquely decodable (prefix)
// codes; this header provides:
//
//  * doubled-bit code      — the paper's own construction: each bit of the
//                            binary representation written twice, terminated
//                            by "10". Length 2*#2(v) + 2.
//  * Elias gamma / delta   — classic universal codes, used by the encoding
//                            ablation (experiment E9).
//  * fixed-width fields    — via BitString::append_uint / BitReader::read_uint.
//
// All decode functions throw std::out_of_range on truncated input and
// std::invalid_argument on malformed input.
#pragma once

#include <cstdint>
#include <vector>

#include "bitio/bitstring.h"

namespace oraclesize {

// ---- Doubled-bit code (the paper's beta-sequence) -------------------------

/// Appends the doubled-bit encoding of v: b1 b1 b2 b2 ... br br 1 0 where
/// b1..br is the standard binary representation of v (r = #2(v); the value 0
/// is represented as the single bit "0"). Cost: 2*#2(v) + 2 bits.
void append_doubled(BitString& out, std::uint64_t v);

/// Inverse of append_doubled.
std::uint64_t read_doubled(BitReader& in);

/// Number of bits append_doubled will emit for v.
int doubled_length(std::uint64_t v) noexcept;

// ---- Elias universal codes -------------------------------------------------

/// Elias gamma code of v >= 1: floor(log2 v) zeros, then v in binary.
/// Cost: 2*floor(log2 v) + 1 bits.
void append_elias_gamma(BitString& out, std::uint64_t v);
std::uint64_t read_elias_gamma(BitReader& in);
int elias_gamma_length(std::uint64_t v) noexcept;

/// Elias delta code of v >= 1: gamma(#bits of v) then v without its leading
/// 1-bit. Cost: #2(v) + 2*floor(log2 #2(v)) bits.
void append_elias_delta(BitString& out, std::uint64_t v);
std::uint64_t read_elias_delta(BitReader& in);
int elias_delta_length(std::uint64_t v) noexcept;

// ---- Paper-specific composite codecs ---------------------------------------

/// Theorem 2.1 oracle payload: the list of ports (each < 2^width) leading to
/// a node's children in the spanning tree.
///
/// Layout (deviation #2 in DESIGN.md: header *prefixed* for forward
/// decodability): doubled(width) then each port in `width` fixed bits.
/// The empty list encodes as the empty string (leaves get no bits), exactly
/// matching the paper's "f(v) is empty if v is a leaf".
BitString encode_port_list(const std::vector<std::uint64_t>& ports, int width);

/// Inverse of encode_port_list. The whole string must be consumed;
/// leftover or missing bits raise std::invalid_argument.
std::vector<std::uint64_t> decode_port_list(const BitString& bits);

/// Sink form of decode_port_list: clears `out` and decodes into it, reusing
/// its capacity. Hot-path variant for behaviors that decode per run.
void decode_port_list_into(const BitString& bits,
                           std::vector<std::uint64_t>& out);

/// Theorem 3.1 oracle payload: the multiset of tree-edge weights assigned to
/// one node, each weight encoded with the doubled-bit code
/// (2*#2(w)+2 bits per weight; deviation #3 in DESIGN.md).
BitString encode_weight_list(const std::vector<std::uint64_t>& weights);

/// Inverse of encode_weight_list: decodes until the string is exhausted.
std::vector<std::uint64_t> decode_weight_list(const BitString& bits);

/// Sink form of decode_weight_list: clears `out` and decodes into it.
void decode_weight_list_into(const BitString& bits,
                             std::vector<std::uint64_t>& out);

}  // namespace oraclesize
