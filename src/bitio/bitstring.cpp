#include "bitio/bitstring.h"

#include <stdexcept>

namespace oraclesize {

BitString BitString::from_string(const std::string& bits) {
  BitString out;
  for (char c : bits) {
    if (c == '0') {
      out.append_bit(false);
    } else if (c == '1') {
      out.append_bit(true);
    } else {
      throw std::invalid_argument("BitString::from_string: bad character");
    }
  }
  return out;
}

void BitString::append_bit(bool b) {
  const std::size_t word = size_ / 64;
  const std::size_t off = size_ % 64;
  if (word >= words_.size()) words_.push_back(0);
  if (b) words_[word] |= (std::uint64_t{1} << off);
  ++size_;
}

void BitString::append_uint(std::uint64_t value, int width) {
  if (width < 0 || width > 64) {
    throw std::invalid_argument("BitString::append_uint: bad width");
  }
  if (width < 64 && value >= (std::uint64_t{1} << width)) {
    throw std::invalid_argument("BitString::append_uint: value too wide");
  }
  for (int i = width - 1; i >= 0; --i) {
    append_bit((value >> i) & 1);
  }
}

void BitString::append(const BitString& other) {
  for (std::size_t i = 0; i < other.size(); ++i) append_bit(other.bit(i));
}

bool BitString::bit(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("BitString::bit");
  return (words_[i / 64] >> (i % 64)) & 1;
}

std::string BitString::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(bit(i) ? '1' : '0');
  return s;
}

bool BitReader::read_bit() {
  if (exhausted()) throw std::out_of_range("BitReader: exhausted");
  return bits_->bit(pos_++);
}

std::uint64_t BitReader::read_uint(int width) {
  if (width < 0 || width > 64) {
    throw std::invalid_argument("BitReader::read_uint: bad width");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v = (v << 1) | (read_bit() ? 1u : 0u);
  }
  return v;
}

}  // namespace oraclesize
