#include "bitio/codecs.h"

#include <stdexcept>

#include "util/mathx.h"

namespace oraclesize {

void append_doubled(BitString& out, std::uint64_t v) {
  const int r = num_bits(v);
  for (int i = r - 1; i >= 0; --i) {
    const bool b = (v >> i) & 1;
    out.append_bit(b);
    out.append_bit(b);
  }
  out.append_bit(true);
  out.append_bit(false);
}

std::uint64_t read_doubled(BitReader& in) {
  std::uint64_t v = 0;
  int bits_read = 0;
  for (;;) {
    const bool a = in.read_bit();
    const bool b = in.read_bit();
    if (a && !b) {  // "10" terminator
      if (bits_read == 0) {
        throw std::invalid_argument("read_doubled: empty payload");
      }
      return v;
    }
    if (a != b) {  // "01" is not a valid pair
      throw std::invalid_argument("read_doubled: mismatched pair");
    }
    if (bits_read >= 64) {
      throw std::invalid_argument("read_doubled: value too wide");
    }
    v = (v << 1) | (a ? 1u : 0u);
    ++bits_read;
  }
}

int doubled_length(std::uint64_t v) noexcept { return 2 * num_bits(v) + 2; }

void append_elias_gamma(BitString& out, std::uint64_t v) {
  if (v == 0) throw std::invalid_argument("elias gamma: v must be >= 1");
  const int k = floor_log2(v);
  for (int i = 0; i < k; ++i) out.append_bit(false);
  out.append_uint(v, k + 1);
}

std::uint64_t read_elias_gamma(BitReader& in) {
  int k = 0;
  while (!in.read_bit()) {
    if (++k > 63) throw std::invalid_argument("elias gamma: run too long");
  }
  std::uint64_t v = 1;
  for (int i = 0; i < k; ++i) v = (v << 1) | (in.read_bit() ? 1u : 0u);
  return v;
}

int elias_gamma_length(std::uint64_t v) noexcept {
  return 2 * floor_log2(v) + 1;
}

void append_elias_delta(BitString& out, std::uint64_t v) {
  if (v == 0) throw std::invalid_argument("elias delta: v must be >= 1");
  const int n = num_bits(v);  // v >= 1 so this is floor_log2(v)+1
  append_elias_gamma(out, static_cast<std::uint64_t>(n));
  if (n > 1) out.append_uint(v & ((std::uint64_t{1} << (n - 1)) - 1), n - 1);
}

std::uint64_t read_elias_delta(BitReader& in) {
  const std::uint64_t n = read_elias_gamma(in);
  if (n == 0 || n > 64) throw std::invalid_argument("elias delta: bad length");
  std::uint64_t v = 1;
  for (std::uint64_t i = 1; i < n; ++i) {
    v = (v << 1) | (in.read_bit() ? 1u : 0u);
  }
  return v;
}

int elias_delta_length(std::uint64_t v) noexcept {
  const int n = num_bits(v);
  return (n - 1) + elias_gamma_length(static_cast<std::uint64_t>(n));
}

BitString encode_port_list(const std::vector<std::uint64_t>& ports,
                           int width) {
  BitString out;
  if (ports.empty()) return out;  // leaves get the empty string
  if (width <= 0) throw std::invalid_argument("encode_port_list: bad width");
  append_doubled(out, static_cast<std::uint64_t>(width));
  for (std::uint64_t p : ports) out.append_uint(p, width);
  return out;
}

std::vector<std::uint64_t> decode_port_list(const BitString& bits) {
  std::vector<std::uint64_t> ports;
  decode_port_list_into(bits, ports);
  return ports;
}

void decode_port_list_into(const BitString& bits,
                           std::vector<std::uint64_t>& out) {
  out.clear();
  if (bits.empty()) return;
  BitReader in(bits);
  const std::uint64_t width = read_doubled(in);
  if (width == 0 || width > 64) {
    throw std::invalid_argument("decode_port_list: bad width");
  }
  if (in.remaining() % width != 0 || in.remaining() == 0) {
    throw std::invalid_argument("decode_port_list: bad payload length");
  }
  while (!in.exhausted()) {
    out.push_back(in.read_uint(static_cast<int>(width)));
  }
}

BitString encode_weight_list(const std::vector<std::uint64_t>& weights) {
  BitString out;
  for (std::uint64_t w : weights) append_doubled(out, w);
  return out;
}

std::vector<std::uint64_t> decode_weight_list(const BitString& bits) {
  std::vector<std::uint64_t> weights;
  decode_weight_list_into(bits, weights);
  return weights;
}

void decode_weight_list_into(const BitString& bits,
                             std::vector<std::uint64_t>& out) {
  out.clear();
  BitReader in(bits);
  while (!in.exhausted()) out.push_back(read_doubled(in));
}

}  // namespace oraclesize
