// Bit-exact binary strings.
//
// Oracles in the paper assign each node a string in {0,1}*, and the whole
// point of the paper is to *count those bits*. std::string-of-'0'/'1' would
// work but makes size accounting accident-prone (bytes vs bits) and is 8x
// larger; we keep a packed bit vector with an explicit bit length, plus
// cursor-based readers/writers used by the codecs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace oraclesize {

/// An immutable-length-agnostic sequence of bits with append-only growth.
/// Bit i of the string is the i-th bit appended (big-endian within the
/// conceptual string, independent of byte packing).
class BitString {
 public:
  BitString() = default;

  /// Parses a string of '0'/'1' characters. Throws std::invalid_argument on
  /// any other character.
  static BitString from_string(const std::string& bits);

  void append_bit(bool b);

  /// Appends `width` bits holding `value`, most significant bit first.
  /// Requires value < 2^width (checked).
  void append_uint(std::uint64_t value, int width);

  /// Appends another bit string.
  void append(const BitString& other);

  /// Empties the string, retaining the word buffer's capacity — the
  /// building block for reusing one BitString as a scratch encoder across
  /// many events without reallocating.
  void clear() noexcept {
    words_.clear();
    size_ = 0;
  }

  /// Bit at index i (0-based). Requires i < size().
  bool bit(std::size_t i) const;

  /// Number of bits. This is the quantity the paper's "oracle size" sums.
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Renders as a '0'/'1' string (for tests and debugging).
  std::string to_string() const;

  friend bool operator==(const BitString& a, const BitString& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }
  friend bool operator!=(const BitString& a, const BitString& b) noexcept {
    return !(a == b);
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

/// Sequential reader over a BitString. All read_* methods throw
/// std::out_of_range when the string is exhausted mid-read, which the
/// decoding layer converts into "malformed oracle string" diagnostics.
class BitReader {
 public:
  explicit BitReader(const BitString& bits) noexcept : bits_(&bits) {}

  bool read_bit();

  /// Reads `width` bits, most significant first.
  std::uint64_t read_uint(int width);

  std::size_t position() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return bits_->size() - pos_; }
  bool exhausted() const noexcept { return pos_ >= bits_->size(); }

 private:
  const BitString* bits_;
  std::size_t pos_ = 0;
};

}  // namespace oraclesize
