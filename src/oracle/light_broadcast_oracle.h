// The Theorem 3.1 oracle: O(n) bits enabling broadcast with a linear number
// of messages.
//
// Take the Claim 3.1 light spanning tree T0 (sum of #2(w(e)) <= 4n for
// w(e) = min port). For every tree edge e = {u,v}, the binary representation
// of w(e) is handed to the endpoint x whose port number on e *is* w(e)
// (ties broken towards the smaller node id). A node holding several weights
// gets them packed into one self-delimiting string (encode_weight_list).
// Decoded at the node, each weight is literally one of its own port numbers
// that carries a tree edge — which is all scheme B (core/broadcast_b.h)
// needs.
#pragma once

#include "oracle/oracle.h"
#include "oracle/tree_wakeup_oracle.h"  // TreeKind

namespace oraclesize {

class LightBroadcastOracle final : public Oracle {
 public:
  /// TreeKind::kLight reproduces Theorem 3.1. Other kinds are ablations
  /// (E9): the same advice layout over a different tree — correct broadcast
  /// but without the 4n contribution guarantee.
  explicit LightBroadcastOracle(TreeKind tree = TreeKind::kLight)
      : tree_(tree) {}

  std::vector<BitString> advise(const PortGraph& g,
                                NodeId source) const override;
  std::string name() const override;

  /// The per-node *port lists* prior to encoding (exposed for tests).
  static std::vector<std::vector<std::uint64_t>> assigned_ports(
      const PortGraph& g, NodeId source, TreeKind tree);

 private:
  TreeKind tree_;
};

}  // namespace oraclesize
