#include "oracle/oracle.h"

#include <algorithm>

namespace oraclesize {

std::uint64_t oracle_size_bits(const std::vector<BitString>& advice) {
  std::uint64_t total = 0;
  for (const BitString& s : advice) total += s.size();
  return total;
}

std::uint64_t max_advice_bits(const std::vector<BitString>& advice) {
  std::uint64_t best = 0;
  for (const BitString& s : advice) {
    best = std::max<std::uint64_t>(best, s.size());
  }
  return best;
}

}  // namespace oraclesize
