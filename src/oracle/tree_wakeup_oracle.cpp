#include "oracle/tree_wakeup_oracle.h"

#include <cstdint>
#include <string>
#include <vector>

#include "bitio/codecs.h"
#include "graph/light_tree.h"
#include "util/mathx.h"

namespace oraclesize {

const char* to_string(TreeKind kind) {
  switch (kind) {
    case TreeKind::kBfs:
      return "bfs";
    case TreeKind::kDfs:
      return "dfs";
    case TreeKind::kKruskal:
      return "kruskal";
    case TreeKind::kLight:
      return "light";
  }
  return "unknown";
}

SpanningTree build_tree(const PortGraph& g, NodeId root, TreeKind kind) {
  switch (kind) {
    case TreeKind::kBfs:
      return bfs_tree(g, root);
    case TreeKind::kDfs:
      return dfs_tree(g, root);
    case TreeKind::kKruskal:
      return kruskal_mst(g, root);
    case TreeKind::kLight:
      return light_tree(g, root).tree;
  }
  return bfs_tree(g, root);
}

std::vector<BitString> TreeWakeupOracle::advise(const PortGraph& g,
                                                NodeId source) const {
  const std::size_t n = g.num_nodes();
  std::vector<BitString> advice(n);
  if (n <= 1) return advice;
  const SpanningTree tree = build_tree(g, source, tree_);
  // Port numbers are below n-1 < n, so ceil(log2 n) bits suffice.
  const int width = std::max(1, ceil_log2(static_cast<std::uint64_t>(n)));
  for (NodeId v = 0; v < n; ++v) {
    const std::vector<Port>& ports = tree.child_ports(v);
    if (ports.empty()) continue;  // leaves: empty string, as in the paper
    std::vector<std::uint64_t> wide(ports.begin(), ports.end());
    advice[v] = encode_port_list(wide, width);
  }
  return advice;
}

std::string TreeWakeupOracle::name() const {
  return std::string("tree-wakeup(") + to_string(tree_) + ")";
}

}  // namespace oraclesize
