// The oracle abstraction (Section 1.2 of the paper).
//
// An oracle is a function O whose argument is a labeled network G (with its
// distinguished source) and whose value O(G) is a function f : V -> {0,1}*
// assigning a binary string to every node. The *size* of the oracle on G is
// the sum of the lengths of all assigned strings — the total number of bits
// of information about the network made available to its nodes. Minimum
// oracle size for solving a task efficiently is the paper's difficulty
// measure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bitio/bitstring.h"
#include "graph/port_graph.h"

namespace oraclesize {

class Oracle {
 public:
  virtual ~Oracle() = default;

  /// Computes f = O(G): advice[v] is the string handed to node v.
  /// The oracle sees the entire labeled network, including which node is
  /// the source; the algorithm that later consumes the advice sees only
  /// one node's quadruple.
  virtual std::vector<BitString> advise(const PortGraph& g,
                                        NodeId source) const = 0;

  virtual std::string name() const = 0;
};

/// The paper's oracle size: total bits over all nodes.
std::uint64_t oracle_size_bits(const std::vector<BitString>& advice);

/// Largest single per-node string (useful for "balanced advice" reporting).
std::uint64_t max_advice_bits(const std::vector<BitString>& advice);

}  // namespace oraclesize
