#include "oracle/light_broadcast_oracle.h"

#include "bitio/codecs.h"

namespace oraclesize {

std::vector<std::vector<std::uint64_t>> LightBroadcastOracle::assigned_ports(
    const PortGraph& g, NodeId source, TreeKind tree) {
  std::vector<std::vector<std::uint64_t>> ports(g.num_nodes());
  if (g.num_nodes() <= 1) return ports;
  const SpanningTree t = build_tree(g, source, tree);
  for (const Edge& e : t.edges(g)) {
    // Give w(e) to the endpoint whose port equals w(e); tie -> smaller id
    // (e is normalized with e.u < e.v).
    const NodeId x = (e.port_u <= e.port_v) ? e.u : e.v;
    ports[x].push_back(e.weight());
  }
  return ports;
}

std::vector<BitString> LightBroadcastOracle::advise(const PortGraph& g,
                                                    NodeId source) const {
  const auto ports = assigned_ports(g, source, tree_);
  std::vector<BitString> advice(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!ports[v].empty()) advice[v] = encode_weight_list(ports[v]);
  }
  return advice;
}

std::string LightBroadcastOracle::name() const {
  return std::string("light-broadcast(") + to_string(tree_) + ")";
}

}  // namespace oraclesize
