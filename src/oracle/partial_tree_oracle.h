// Partial-advice wakeup oracle: the upper-bound side of the bits/messages
// tradeoff curve.
//
// Theorem 2.1 gives every internal tree node its child ports (Theta(n log n)
// bits total, n-1 messages); the null oracle gives nothing (0 bits, Theta(m)
// flooding messages). This oracle interpolates: each node keeps its tree
// advice independently with probability `fraction` (seeded, deterministic),
// and the paired HybridWakeupAlgorithm (core/hybrid_wakeup.h) has advised
// nodes relay along tree child ports while unadvised nodes fall back to
// flooding. Correctness holds for every kept-set (each node's tree parent is
// eventually informed and either tree-relays or floods towards it), so the
// fraction knob traces a real message-complexity-versus-oracle-size curve —
// the quantity the paper's difficulty measure is about (experiment E11).
//
// Advice layout: "1" + Theorem 2.1 port list for advised nodes (so an
// advised leaf gets the 1-bit string "1"), empty string for unadvised ones.
#pragma once

#include "oracle/oracle.h"
#include "oracle/tree_wakeup_oracle.h"

namespace oraclesize {

class PartialTreeOracle final : public Oracle {
 public:
  /// fraction in [0,1]: probability a node keeps its advice. 1.0 recovers
  /// (one flag bit more than) Theorem 2.1; 0.0 recovers the null oracle.
  PartialTreeOracle(double fraction, std::uint64_t seed,
                    TreeKind tree = TreeKind::kBfs)
      : fraction_(fraction), seed_(seed), tree_(tree) {}

  std::vector<BitString> advise(const PortGraph& g,
                                NodeId source) const override;
  std::string name() const override;

 private:
  double fraction_;
  std::uint64_t seed_;
  TreeKind tree_;
};

}  // namespace oraclesize
