#include "oracle/composite_oracle.h"

#include <sstream>
#include <stdexcept>

#include "bitio/codecs.h"

namespace oraclesize {

std::vector<BitString> split_composite_advice(const BitString& advice,
                                              std::size_t parts) {
  std::vector<BitString> out(parts);
  if (advice.empty()) return out;  // all parts empty
  BitReader in(advice);
  for (std::size_t i = 0; i < parts; ++i) {
    const std::uint64_t length = read_doubled(in);
    if (length > in.remaining()) {
      throw std::invalid_argument("split_composite_advice: truncated part");
    }
    for (std::uint64_t b = 0; b < length; ++b) {
      out[i].append_bit(in.read_bit());
    }
  }
  if (!in.exhausted()) {
    throw std::invalid_argument("split_composite_advice: trailing bits");
  }
  return out;
}

std::vector<BitString> CompositeOracle::advise(const PortGraph& g,
                                               NodeId source) const {
  std::vector<std::vector<BitString>> per_part;
  per_part.reserve(parts_.size());
  for (const Oracle* oracle : parts_) {
    per_part.push_back(oracle->advise(g, source));
  }
  std::vector<BitString> out(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    bool any = false;
    for (const auto& part : per_part) any = any || !part[v].empty();
    if (!any) continue;  // all-empty node keeps the empty string
    BitString s;
    for (const auto& part : per_part) {
      append_doubled(s, part[v].size());
      s.append(part[v]);
    }
    out[v] = s;
  }
  return out;
}

std::string CompositeOracle::name() const {
  std::ostringstream os;
  os << "composite(";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i) os << "+";
    os << parts_[i]->name();
  }
  os << ")";
  return os.str();
}

namespace {

// Owns its slice of the composite advice string: NodeInput carries a
// pointer to the advice, so the projected string must live as long as the
// behavior that reads it.
class ProjectedBehavior final : public NodeBehavior {
 public:
  ProjectedBehavior(const NodeInput& composite, BitString advice,
                    const Algorithm& inner_algorithm)
      : advice_(std::move(advice)) {
    projected_ = composite;
    projected_.advice = &advice_;
    inner_ = inner_algorithm.make_behavior(projected_);
  }

  void on_start(const NodeInput& /*composite*/,
                std::vector<Send>& out) override {
    inner_->on_start(projected_, out);
  }
  void on_receive(const NodeInput& /*composite*/, const Message& msg,
                  Port from_port, std::vector<Send>& out) override {
    inner_->on_receive(projected_, msg, from_port, out);
  }
  bool terminated() const override { return inner_->terminated(); }
  std::uint64_t output() const override { return inner_->output(); }

 private:
  BitString advice_;      // the projected slice, owned
  NodeInput projected_;   // composite input with advice -> &advice_
  std::unique_ptr<NodeBehavior> inner_;
};

}  // namespace

std::unique_ptr<NodeBehavior> AdviceProjection::make_behavior(
    const NodeInput& input) const {
  BitString slice =
      split_composite_advice(*input.advice, parts_).at(index_);
  return std::make_unique<ProjectedBehavior>(input, std::move(slice), inner_);
}

}  // namespace oraclesize
