#include "oracle/composite_oracle.h"

#include <sstream>
#include <stdexcept>

#include "bitio/codecs.h"

namespace oraclesize {

std::vector<BitString> split_composite_advice(const BitString& advice,
                                              std::size_t parts) {
  std::vector<BitString> out(parts);
  if (advice.empty()) return out;  // all parts empty
  BitReader in(advice);
  for (std::size_t i = 0; i < parts; ++i) {
    const std::uint64_t length = read_doubled(in);
    if (length > in.remaining()) {
      throw std::invalid_argument("split_composite_advice: truncated part");
    }
    for (std::uint64_t b = 0; b < length; ++b) {
      out[i].append_bit(in.read_bit());
    }
  }
  if (!in.exhausted()) {
    throw std::invalid_argument("split_composite_advice: trailing bits");
  }
  return out;
}

std::vector<BitString> CompositeOracle::advise(const PortGraph& g,
                                               NodeId source) const {
  std::vector<std::vector<BitString>> per_part;
  per_part.reserve(parts_.size());
  for (const Oracle* oracle : parts_) {
    per_part.push_back(oracle->advise(g, source));
  }
  std::vector<BitString> out(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    bool any = false;
    for (const auto& part : per_part) any = any || !part[v].empty();
    if (!any) continue;  // all-empty node keeps the empty string
    BitString s;
    for (const auto& part : per_part) {
      append_doubled(s, part[v].size());
      s.append(part[v]);
    }
    out[v] = s;
  }
  return out;
}

std::string CompositeOracle::name() const {
  std::ostringstream os;
  os << "composite(";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i) os << "+";
    os << parts_[i]->name();
  }
  os << ")";
  return os.str();
}

namespace {

class ProjectedBehavior final : public NodeBehavior {
 public:
  ProjectedBehavior(NodeInput projected, std::unique_ptr<NodeBehavior> inner)
      : projected_(std::move(projected)), inner_(std::move(inner)) {}

  std::vector<Send> on_start(const NodeInput& /*composite*/) override {
    return inner_->on_start(projected_);
  }
  std::vector<Send> on_receive(const NodeInput& /*composite*/,
                               const Message& msg, Port from_port) override {
    return inner_->on_receive(projected_, msg, from_port);
  }
  bool terminated() const override { return inner_->terminated(); }
  std::uint64_t output() const override { return inner_->output(); }

 private:
  NodeInput projected_;
  std::unique_ptr<NodeBehavior> inner_;
};

}  // namespace

std::unique_ptr<NodeBehavior> AdviceProjection::make_behavior(
    const NodeInput& input) const {
  NodeInput projected = input;
  projected.advice = split_composite_advice(input.advice, parts_).at(index_);
  auto inner = inner_.make_behavior(projected);
  return std::make_unique<ProjectedBehavior>(std::move(projected),
                                             std::move(inner));
}

}  // namespace oraclesize
