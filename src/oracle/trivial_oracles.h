// Reference oracles bracketing the interesting ones.
//
//  * NullOracle     — zero bits: the "no knowledge" extreme. Flooding still
//                     broadcasts/wakes up, at Theta(m) messages.
//  * FullMapOracle  — every node gets the complete labeled, ported map of
//                     the network: the "full knowledge" extreme of the
//                     pre-oracle literature, at Theta(n * m log n) bits.
//  * SourceMapOracle— only the source gets the full map (Theta(m log n)
//                     bits); a natural middle point used in the E6 table.
#pragma once

#include "oracle/oracle.h"

namespace oraclesize {

class NullOracle final : public Oracle {
 public:
  std::vector<BitString> advise(const PortGraph& g,
                                NodeId source) const override;
  std::string name() const override { return "null"; }
};

/// Uniquely decodable encoding of the entire port-labeled graph:
/// doubled(n), then for every node v in id order doubled(deg(v)) followed by
/// deg(v) fixed-width (neighbor id, neighbor port) pairs.
BitString encode_graph_map(const PortGraph& g);

class FullMapOracle final : public Oracle {
 public:
  std::vector<BitString> advise(const PortGraph& g,
                                NodeId source) const override;
  std::string name() const override { return "full-map"; }
};

class SourceMapOracle final : public Oracle {
 public:
  std::vector<BitString> advise(const PortGraph& g,
                                NodeId source) const override;
  std::string name() const override { return "source-map"; }
};

}  // namespace oraclesize
