#include "oracle/partial_tree_oracle.h"

#include <sstream>

#include "bitio/codecs.h"
#include "util/mathx.h"
#include "util/rng.h"

namespace oraclesize {

std::vector<BitString> PartialTreeOracle::advise(const PortGraph& g,
                                                 NodeId source) const {
  const std::size_t n = g.num_nodes();
  std::vector<BitString> advice(n);
  if (n <= 1) return advice;
  const SpanningTree tree = build_tree(g, source, tree_);
  const int width = std::max(1, ceil_log2(static_cast<std::uint64_t>(n)));
  Rng rng(seed_);
  for (NodeId v = 0; v < n; ++v) {
    // The source always keeps its advice: an unadvised source would flood
    // and pay deg(source) regardless of everyone else.
    if (v != source && !rng.chance(fraction_)) continue;
    BitString s;
    s.append_bit(true);  // "advised" flag
    const std::vector<Port>& ports = tree.child_ports(v);
    if (!ports.empty()) {
      s.append(encode_port_list(
          std::vector<std::uint64_t>(ports.begin(), ports.end()), width));
    }
    advice[v] = s;
  }
  return advice;
}

std::string PartialTreeOracle::name() const {
  std::ostringstream os;
  // The seed is part of the name: names must be parameter-complete so that
  // equal names imply equal advice (core/advice_cache.h keys on them).
  os << "partial-tree(" << fraction_ << "," << to_string(tree_) << ",seed="
     << seed_ << ")";
  return os.str();
}

}  // namespace oraclesize
