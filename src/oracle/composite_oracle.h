// Oracle composition: one advice assignment serving several tasks.
//
// Oracle size is a resource, and resources add: if task A needs f_A and
// task B needs f_B, a single oracle handing every node
// delim(f_A(v)) ++ delim(f_B(v)) serves both at size
// size(A) + size(B) + O(n log max-part) — so the difficulty measure is
// subadditive under task combination. CompositeOracle implements the
// combinator; AdviceProjection lets an unmodified Algorithm consume its
// slice of the composite string.
//
// Layout per node: for each part, doubled-bit(length) followed by the
// part's bits. (A part may be empty: doubled(0) costs 4 bits; nodes where
// ALL parts are empty get the empty string, preserving each component
// oracle's "leaves get nothing" frugality.)
#pragma once

#include <memory>
#include <vector>

#include "oracle/oracle.h"
#include "sim/scheme.h"

namespace oraclesize {

/// Splits a composite advice string into its parts. Inverse of the
/// CompositeOracle layout; the empty string yields `parts` empty strings.
std::vector<BitString> split_composite_advice(const BitString& advice,
                                              std::size_t parts);

class CompositeOracle final : public Oracle {
 public:
  /// The component oracles must outlive this object.
  explicit CompositeOracle(std::vector<const Oracle*> parts)
      : parts_(std::move(parts)) {}

  std::vector<BitString> advise(const PortGraph& g,
                                NodeId source) const override;
  std::string name() const override;

  std::size_t num_parts() const noexcept { return parts_.size(); }

 private:
  std::vector<const Oracle*> parts_;
};

/// Adapts an algorithm to read part `index` of a composite advice string
/// (of `parts` parts) as if it were the whole advice. Everything else —
/// scheme construction, wakeup flag, behavior — is delegated unchanged.
class AdviceProjection final : public Algorithm {
 public:
  AdviceProjection(const Algorithm& inner, std::size_t index,
                   std::size_t parts)
      : inner_(inner), index_(index), parts_(parts) {}

  std::unique_ptr<NodeBehavior> make_behavior(
      const NodeInput& input) const override;
  std::string name() const override {
    return inner_.name() + "@part" + std::to_string(index_);
  }
  bool is_wakeup() const override { return inner_.is_wakeup(); }

 private:
  const Algorithm& inner_;
  std::size_t index_;
  std::size_t parts_;
};

}  // namespace oraclesize
