// Plain-text serialization of oracle advice assignments.
//
// Format (line oriented, '#' comments allowed):
//
//   advice <num_nodes>
//   <node> <bits>        # e.g. "3 10110"; omitted nodes hold the empty
//                        # string (the common case: leaves get nothing)
//
// Lets the CLI separate the two halves of the model — `advise` runs the
// oracle (which sees the whole network), `run --advice-file` runs the
// algorithm (which sees only per-node strings) — so users can inspect or
// even hand-edit what the oracle said and watch the scheme react.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bitio/bitstring.h"

namespace oraclesize {

void write_advice(std::ostream& os, const std::vector<BitString>& advice);
std::string advice_to_text(const std::vector<BitString>& advice);

/// Throws std::invalid_argument (with a line number) on malformed input.
std::vector<BitString> read_advice(std::istream& is);
std::vector<BitString> advice_from_text(const std::string& text);

}  // namespace oraclesize
