#include "oracle/neighborhood_oracle.h"

#include <deque>
#include <span>
#include <string>

#include "bitio/codecs.h"
#include "util/mathx.h"

namespace oraclesize {

std::vector<BitString> NeighborhoodOracle::advise(const PortGraph& g,
                                                  NodeId /*source*/) const {
  const std::size_t n = g.num_nodes();
  std::vector<BitString> advice(n);
  if (n == 0 || radius_ == 0) return advice;
  const int width = std::max(1, ceil_log2(static_cast<std::uint64_t>(n)));

  std::vector<std::uint32_t> dist(n);
  for (NodeId x = 0; x < n; ++x) {
    // Bounded BFS from x.
    std::fill(dist.begin(), dist.end(), 0xffffffffu);
    std::deque<NodeId> queue{x};
    dist[x] = 0;
    std::vector<NodeId> inside;  // nodes with dist < radius
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      if (dist[v] >= radius_) continue;
      inside.push_back(v);
      for (const Endpoint& e : g.neighbors(v)) {
        if (dist[e.node] == 0xffffffffu) {
          dist[e.node] = dist[v] + 1;
          queue.push_back(e.node);
        }
      }
    }
    // The ball's edges: every edge with an endpoint strictly inside. Each is
    // recorded once, from the side that is inside (smaller id wins when both
    // are).
    std::vector<Edge> ball;
    for (const NodeId v : inside) {
      const std::span<const Endpoint> row = g.neighbors(v);
      for (Port p = 0; p < row.size(); ++p) {
        const Endpoint e = row[p];
        const bool other_inside = dist[e.node] < radius_;
        if (other_inside && e.node < v) continue;  // recorded from its side
        ball.push_back(v < e.node ? Edge{v, p, e.node, e.port}
                                  : Edge{e.node, e.port, v, p});
      }
    }
    BitString s;
    append_doubled(s, static_cast<std::uint64_t>(ball.size()));
    append_doubled(s, static_cast<std::uint64_t>(width));
    for (const Edge& e : ball) {
      s.append_uint(e.u, width);
      s.append_uint(e.port_u, width);
      s.append_uint(e.v, width);
      s.append_uint(e.port_v, width);
    }
    advice[x] = s;
  }
  return advice;
}

std::string NeighborhoodOracle::name() const {
  return "neighborhood(rho=" + std::to_string(radius_) + ")";
}

}  // namespace oraclesize
