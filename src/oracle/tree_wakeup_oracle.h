// The Theorem 2.1 oracle: O(n log n) bits enabling wakeup with exactly n-1
// messages.
//
// Fix a spanning tree T of G rooted at the source. Each internal node v of T
// receives the list of port numbers leading to its children, encoded as
// fixed-width fields of ceil(log2 n) bits preceded by a doubled-bit header
// carrying the width (codecs.h, encode_port_list); leaves receive the empty
// string. Total size n*ceil(log2 n) + O(n log log n). The matching wakeup
// algorithm lives in core/wakeup.h.
#pragma once

#include "graph/spanning_tree.h"
#include "oracle/oracle.h"

namespace oraclesize {

/// Which spanning tree the oracle encodes. kLight reuses the Claim 3.1
/// construction (an ablation; any tree meets the Theorem 2.1 bound).
enum class TreeKind { kBfs, kDfs, kKruskal, kLight };

const char* to_string(TreeKind kind);

/// Builds the requested tree for a given graph/root (shared helper).
SpanningTree build_tree(const PortGraph& g, NodeId root, TreeKind kind);

class TreeWakeupOracle final : public Oracle {
 public:
  explicit TreeWakeupOracle(TreeKind tree = TreeKind::kBfs) : tree_(tree) {}

  std::vector<BitString> advise(const PortGraph& g,
                                NodeId source) const override;
  std::string name() const override;

 private:
  TreeKind tree_;
};

}  // namespace oraclesize
