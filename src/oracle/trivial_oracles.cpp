#include "oracle/trivial_oracles.h"

#include "bitio/codecs.h"
#include "util/mathx.h"

namespace oraclesize {

std::vector<BitString> NullOracle::advise(const PortGraph& g,
                                          NodeId /*source*/) const {
  return std::vector<BitString>(g.num_nodes());
}

BitString encode_graph_map(const PortGraph& g) {
  const std::size_t n = g.num_nodes();
  BitString out;
  append_doubled(out, static_cast<std::uint64_t>(n));
  if (n == 0) return out;
  const int width = std::max(1, ceil_log2(static_cast<std::uint64_t>(n)));
  for (NodeId v = 0; v < n; ++v) {
    append_doubled(out, static_cast<std::uint64_t>(g.degree(v)));
    for (const Endpoint& e : g.neighbors(v)) {
      out.append_uint(e.node, width);
      out.append_uint(e.port, width);
    }
  }
  return out;
}

std::vector<BitString> FullMapOracle::advise(const PortGraph& g,
                                             NodeId /*source*/) const {
  const BitString map = encode_graph_map(g);
  return std::vector<BitString>(g.num_nodes(), map);
}

std::vector<BitString> SourceMapOracle::advise(const PortGraph& g,
                                               NodeId source) const {
  std::vector<BitString> advice(g.num_nodes());
  advice.at(source) = encode_graph_map(g);
  return advice;
}

}  // namespace oraclesize
