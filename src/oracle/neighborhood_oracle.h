// The "knowledge of the topology within radius rho" oracle.
//
// This is the kind of *particular* partial information the pre-oracle
// literature assumed (e.g. Awerbuch, Goldreich, Peleg, Vainish: with
// radius-rho knowledge, wakeup costs Theta(min{m, n^{1+Theta(1)/rho}})
// messages). Expressing it as an oracle lets the E6/E9 tables put the
// traditional assumptions and the paper's tailor-made advice on one axis:
// bits versus achievable message complexity.
//
// Each node receives the edge list of its distance-<=rho ball: for every
// edge {u,v} with min(dist(x,u), dist(x,v)) < rho, the tuple
// (u, port_u, v, port_v) in fixed-width fields, prefixed by a doubled-bit
// edge count and field width.
#pragma once

#include "oracle/oracle.h"

namespace oraclesize {

class NeighborhoodOracle final : public Oracle {
 public:
  explicit NeighborhoodOracle(std::uint32_t radius) : radius_(radius) {}

  std::vector<BitString> advise(const PortGraph& g,
                                NodeId source) const override;
  std::string name() const override;

 private:
  std::uint32_t radius_;
};

}  // namespace oraclesize
