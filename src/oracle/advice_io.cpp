#include "oracle/advice_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace oraclesize {

void write_advice(std::ostream& os, const std::vector<BitString>& advice) {
  os << "advice " << advice.size() << "\n";
  for (std::size_t v = 0; v < advice.size(); ++v) {
    if (!advice[v].empty()) {
      os << v << " " << advice[v].to_string() << "\n";
    }
  }
}

std::string advice_to_text(const std::vector<BitString>& advice) {
  std::ostringstream os;
  write_advice(os, advice);
  return os.str();
}

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  std::ostringstream os;
  os << "read_advice: line " << line << ": " << what;
  throw std::invalid_argument(os.str());
}

}  // namespace

std::vector<BitString> read_advice(std::istream& is) {
  std::vector<BitString> advice;
  bool seen_header = false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;

    if (first == "advice") {
      if (seen_header) fail(lineno, "duplicate header");
      std::size_t n = 0;
      if (!(ls >> n)) fail(lineno, "bad node count");
      advice.assign(n, BitString{});
      seen_header = true;
      continue;
    }
    if (!seen_header) fail(lineno, "entry before header");
    std::size_t v = 0;
    try {
      std::size_t pos = 0;
      v = std::stoull(first, &pos);
      if (pos != first.size()) throw std::invalid_argument("trailing");
    } catch (const std::exception&) {
      fail(lineno, "bad node index '" + first + "'");
    }
    if (v >= advice.size()) fail(lineno, "node index out of range");
    std::string bits;
    if (!(ls >> bits)) fail(lineno, "missing bit string");
    if (!advice[v].empty()) fail(lineno, "duplicate entry for node");
    try {
      advice[v] = BitString::from_string(bits);
    } catch (const std::exception& e) {
      fail(lineno, e.what());
    }
    if (advice[v].empty()) fail(lineno, "empty bit string entry");
    std::string extra;
    if (ls >> extra) fail(lineno, "trailing tokens");
  }
  if (!seen_header) {
    throw std::invalid_argument("read_advice: missing header");
  }
  return advice;
}

std::vector<BitString> advice_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_advice(is);
}

}  // namespace oraclesize
