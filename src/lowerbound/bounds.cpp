#include "lowerbound/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/mathx.h"

namespace oraclesize {

double log2_oracle_outputs(std::uint64_t oracle_bits, std::size_t nodes) {
  if (nodes == 0) throw std::invalid_argument("log2_oracle_outputs: nodes=0");
  double acc = -std::numeric_limits<double>::infinity();
  for (std::uint64_t q = 0; q <= oracle_bits; ++q) {
    const double term = static_cast<double>(q) +
                        log2_choose(q + nodes - 1, nodes - 1);
    acc = log2_add(acc, term);
  }
  return acc;
}

double log2_oracle_outputs_upper(std::uint64_t oracle_bits,
                                 std::size_t nodes) {
  const double q = static_cast<double>(oracle_bits);
  return std::log2(q + 1.0) + q + log2_choose(oracle_bits + nodes, nodes);
}

double log2_wakeup_family(std::size_t n, std::size_t c) {
  const std::uint64_t total_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  const std::uint64_t special = static_cast<std::uint64_t>(c) * n;
  return log2_factorial(special) + log2_choose(total_edges, special);
}

double wakeup_message_lower_bound(std::size_t n, std::size_t c,
                                  std::uint64_t oracle_bits) {
  const std::size_t nodes = (1 + c) * n;
  const std::uint64_t special = static_cast<std::uint64_t>(c) * n;
  const double bound = log2_wakeup_family(n, c) -
                       log2_oracle_outputs(oracle_bits, nodes) -
                       log2_factorial(special);
  return std::max(0.0, bound);
}

double log2_broadcast_family(std::size_t n, std::size_t k) {
  if (k == 0 || n % (4 * k) != 0) {
    throw std::invalid_argument("log2_broadcast_family: 4k must divide n");
  }
  const std::uint64_t total_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  const std::uint64_t x = n / (4 * k);   // cliques that must be found
  const std::uint64_t y = 3 * n / (4 * k);  // excluded edges
  return log2_choose(total_edges - y, x);
}

double broadcast_message_lower_bound(std::size_t n, std::size_t k,
                                     std::uint64_t oracle_bits) {
  const double bound = log2_broadcast_family(n, k) -
                       log2_oracle_outputs(oracle_bits, 2 * n);
  return std::max(0.0, bound);
}

double empirical_wakeup_threshold(std::size_t n, std::size_t c,
                                  double linear_slack, int steps) {
  const std::size_t network = (1 + c) * n;
  const double full =
      static_cast<double>(network) * std::log2(static_cast<double>(network));
  double best = 0.0;
  for (int i = 1; i < steps; ++i) {
    const double alpha = static_cast<double>(i) / steps;
    const auto bits = static_cast<std::uint64_t>(alpha * full);
    const double lb = wakeup_message_lower_bound(n, c, bits);
    if (lb > linear_slack * static_cast<double>(network)) {
      best = alpha;
    } else if (best > 0.0) {
      break;  // bound is monotone decreasing in alpha; we are past the edge
    }
  }
  return best;
}

}  // namespace oraclesize
