#include "lowerbound/strategies.h"

#include <numeric>
#include <stdexcept>

namespace oraclesize {

void SequentialStrategy::begin(const EdgeDiscoveryProblem& /*problem*/) {
  next_ = 0;
}

std::size_t SequentialStrategy::next_probe() { return next_++; }

void SequentialStrategy::observe(std::size_t /*edge*/,
                                 const ProbeResult& /*result*/) {}

void RandomStrategy::begin(const EdgeDiscoveryProblem& problem) {
  order_.resize(problem.num_candidates);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  Rng rng(seed_);
  rng.shuffle(order_);
  cursor_ = 0;
}

std::size_t RandomStrategy::next_probe() {
  if (cursor_ >= order_.size()) {
    throw std::logic_error("RandomStrategy: out of candidates");
  }
  return order_[cursor_++];
}

void RandomStrategy::observe(std::size_t /*edge*/,
                             const ProbeResult& /*result*/) {}

void FixedOrderStrategy::begin(const EdgeDiscoveryProblem& /*problem*/) {
  cursor_ = 0;
}

std::size_t FixedOrderStrategy::next_probe() {
  if (cursor_ >= order_.size()) {
    throw std::logic_error("FixedOrderStrategy: out of candidates");
  }
  return order_[cursor_++];
}

void FixedOrderStrategy::observe(std::size_t /*edge*/,
                                 const ProbeResult& /*result*/) {}

}  // namespace oraclesize
