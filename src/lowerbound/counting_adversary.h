// The production adversary of Lemma 2.1, with closed-form instance counting.
//
// The instance family is fully symmetric (every set of m specials over N
// candidates, every labeling), so after d regular answers and r revealed
// specials the active-family size is
//
//     |J| = C(U, m-r) * (m-r)!        with U = N - d - r unprobed candidates,
//
// and for a fresh probe the split is
//
//     |J_regular|        = C(U-1, m-r)   * (m-r)!
//     |J_special, total| = C(U-1, m-r-1) * (m-r)!   (summed over labels).
//
// The adversary answers by majority, exactly as in the proof, comparing the
// two counts in log-space; when it says "special" it reveals the smallest
// unused label (all labels give equal subfamilies, matching the proof's
// arg-max choice). Validated against an explicit enumeration adversary
// (exact_adversary.h) in tests.
#pragma once

#include "lowerbound/edge_discovery.h"

namespace oraclesize {

class CountingAdversary final : public Adversary {
 public:
  explicit CountingAdversary(const EdgeDiscoveryProblem& problem);

  ProbeResult answer(std::size_t edge) override;
  bool resolved() const override;
  double log2_active() const override;
  std::string name() const override { return "counting"; }

  std::size_t regulars() const noexcept { return regulars_; }
  std::size_t specials() const noexcept { return specials_; }

 private:
  std::size_t unprobed() const noexcept {
    return problem_.num_candidates - regulars_ - specials_;
  }

  EdgeDiscoveryProblem problem_;
  std::size_t regulars_ = 0;
  std::size_t specials_ = 0;
};

}  // namespace oraclesize
