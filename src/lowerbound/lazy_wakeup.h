// Theorem 2.2, executable: a wakeup algorithm versus a *lazily built*
// adversarial network.
//
// The proof pits the scheme against the family {G_{n,S}}: K*_n with n
// hidden nodes w_1..w_n subdivided into unknown edges. Here we play that
// game for real. The network starts as "K*_n with every edge undecided";
// whenever the algorithm under test pushes a message through an undecided
// edge, the majority adversary of Lemma 2.1 decides on the spot whether
// that edge is subdivided (and by which w_i):
//
//   * regular  — the message crosses to the far endpoint of K*_n;
//   * special  — a fresh degree-2 node materializes in the middle and
//                receives the message instead (waking it up).
//
// The run ends when every node of the now-fully-determined instance is
// informed — which cannot happen before the adversary has conceded all n
// hidden nodes, i.e. before the edge-discovery game is resolved. The
// measured message count therefore obeys Lemma 2.1's log2(|I|/n!) bound,
// and in practice sits near C(n,2): the concrete, runnable content of
// "no oracle of size < (1/2) N log N can make wakeup linear" — here the
// algorithm has *zero* advice and pays the full price.
//
// The algorithm under test sees exactly what the model allows: every base
// node gets (empty advice, s(v), id(v), deg = n-1); hidden nodes get
// (empty advice, 0, n+label, 2). Wakeup rules are enforced: a send by an
// uninformed non-source node aborts the game.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/port_graph.h"
#include "sim/scheme.h"

namespace oraclesize {

struct LazyWakeupResult {
  std::uint64_t messages = 0;       ///< messages the algorithm paid
  std::size_t hidden_found = 0;     ///< w_i conceded by the adversary
  std::size_t edges_probed = 0;     ///< distinct K*_n edges traversed
  double probe_lower_bound = 0;     ///< Lemma 2.1's log2(C(C(n,2), n))
  bool completed = false;           ///< all nodes of the instance informed
  std::string violation;            ///< wakeup violation / budget overrun
  /// The instance the adversary committed to, as S in label order:
  /// special_edges[i] hosts the node labeled n+i+1. Complete only when
  /// `completed` (otherwise it holds the specials conceded so far). Lets
  /// tests materialize the concrete G_{n,S} and replay the algorithm on it.
  std::vector<std::pair<NodeId, NodeId>> special_edges;
};

/// Plays `algorithm` (given NO oracle advice) from source node 0 on the
/// lazily-decided (2n)-node family. The execution is synchronous (the
/// lower bound holds even then). `max_messages` bounds runaway schemes.
LazyWakeupResult play_lazy_wakeup(std::size_t n, const Algorithm& algorithm,
                                  std::uint64_t max_messages = 100'000'000);

}  // namespace oraclesize
