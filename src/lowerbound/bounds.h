// Analytic lower-bound calculators — the quantitative content of
// Theorems 2.2 and 3.2 (Equations 2 through 7 of the paper), computed
// exactly in log-space rather than through the proofs' loose closed-form
// estimates.
//
// The common skeleton of both proofs:
//   1. P  = number of graphs in the adversarial family;
//   2. Q  = number of distinct advice functions an oracle of size <= q can
//           output on graphs with a given node count;
//   3. pigeonhole: some P/Q graphs share one advice function, hence one
//      scheme; Lemma 2.1 then forces at least log2((P/Q)/|X|!) messages.
//
// We expose each ingredient separately so benchmarks can print the full
// pipeline, and compose them into the headline message bounds.
#pragma once

#include <cstddef>
#include <cstdint>

namespace oraclesize {

/// log2 of the exact number of advice functions of total size at most
/// `oracle_bits` over `nodes` nodes:
///     Q = sum_{q'=0}^{q} 2^{q'} * C(q' + nodes - 1, nodes - 1).
/// (2^{q'} bit strings, split into `nodes` ordered, possibly empty pieces.)
double log2_oracle_outputs(std::uint64_t oracle_bits, std::size_t nodes);

/// log2 of the paper's closed-form over-estimate (Equation 3):
///     Q <= (q+1) * 2^q * C(q + nodes, nodes).
double log2_oracle_outputs_upper(std::uint64_t oracle_bits, std::size_t nodes);

/// log2 of the wakeup family size with c*n subdivided edges (Equation 2 is
/// the c = 1 case; the Remark after Theorem 2.2 uses general c):
///     P = (c*n)! * C(C(n,2), c*n).
double log2_wakeup_family(std::size_t n, std::size_t c);

/// Theorem 2.2 / Remark, end to end: the guaranteed worst-case number of
/// messages for ANY wakeup algorithm using at most `oracle_bits` bits of
/// advice on the ((1+c)n)-node family G_{n,S} with |S| = c*n:
///     max(0, log2 P - log2 Q - log2((c*n)!)).
/// With c = 1 and oracle_bits = alpha * (2n) log2(2n), alpha < 1/2, this is
/// Omega(n log n) — the paper's separation.
double wakeup_message_lower_bound(std::size_t n, std::size_t c,
                                  std::uint64_t oracle_bits);

/// log2 of the broadcast family size for fixed C = C* (Equation 6 without
/// the |X|! factor, which cancels in Lemma 2.1):
///     P' = C(C(n,2) - 3n/4k, n/4k).
/// Requires 4k | n.
double log2_broadcast_family(std::size_t n, std::size_t k);

/// Claim 3.3 / Theorem 3.2, end to end: guaranteed worst-case messages for
/// ANY broadcast algorithm using at most `oracle_bits` on the (2n)-node
/// family G_{n,k}: max(0, log2 P' - log2 Q).
double broadcast_message_lower_bound(std::size_t n, std::size_t k,
                                     std::uint64_t oracle_bits);

/// The oracle-size threshold ratio that c subdivisions certify (Remark after
/// Theorem 2.2): alpha below c/(c+1) forces superlinear wakeup. Returned as
/// the largest alpha (granularity `steps` points in (0,1)) for which
/// wakeup_message_lower_bound(n, c, alpha * N log2 N) still exceeds
/// `linear_slack * N` messages, where N = (1+c)n is the network size.
double empirical_wakeup_threshold(std::size_t n, std::size_t c,
                                  double linear_slack = 1.0, int steps = 200);

}  // namespace oraclesize
