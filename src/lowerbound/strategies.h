// Probe strategies for the edge-discovery game.
//
// Against the fully symmetric instance family every probe order is
// information-theoretically equivalent, so these strategies exist to
// demonstrate precisely that: Lemma 2.1's bound holds for each of them, and
// the measured probe counts coincide — no cleverness in the probe order can
// beat the adversary (experiment E7).
#pragma once

#include <vector>

#include "lowerbound/edge_discovery.h"
#include "util/rng.h"

namespace oraclesize {

/// Probes candidates 0, 1, 2, ... in order.
class SequentialStrategy final : public ProbeStrategy {
 public:
  void begin(const EdgeDiscoveryProblem& problem) override;
  std::size_t next_probe() override;
  void observe(std::size_t edge, const ProbeResult& result) override;
  std::string name() const override { return "sequential"; }

 private:
  std::size_t next_ = 0;
};

/// Probes candidates in a seeded uniformly random order.
class RandomStrategy final : public ProbeStrategy {
 public:
  explicit RandomStrategy(std::uint64_t seed) : seed_(seed) {}
  void begin(const EdgeDiscoveryProblem& problem) override;
  std::size_t next_probe() override;
  void observe(std::size_t edge, const ProbeResult& result) override;
  std::string name() const override { return "random"; }

 private:
  std::uint64_t seed_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

/// Probes in a caller-supplied order (used by tests to hit corner cases).
class FixedOrderStrategy final : public ProbeStrategy {
 public:
  explicit FixedOrderStrategy(std::vector<std::size_t> order)
      : order_(std::move(order)) {}
  void begin(const EdgeDiscoveryProblem& problem) override;
  std::size_t next_probe() override;
  void observe(std::size_t edge, const ProbeResult& result) override;
  std::string name() const override { return "fixed-order"; }

 private:
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace oraclesize
