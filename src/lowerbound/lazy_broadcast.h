// Theorem 3.2, executable: a broadcast algorithm versus the lazily built
// clique-replacement family G_{n,k}.
//
// The proof fixes the scheme first, observes its synchronous behavior in an
// advice-less k-clique with no external input, and picks the removed edge
// f* = {a, b} as one the scheme traverses last (or never). Cliques whose
// isolated execution never emits a message across f* cannot reveal
// themselves to the rest of the graph — they must be discovered from the
// outside, which is an edge-discovery problem with |X| = n/k hidden edges.
//
// This module plays that game for algorithms whose isolated-clique
// execution is *silent* (no spontaneous transmissions by nodes of degree
// k-1 holding empty advice — true of flooding, of scheme B without advice,
// and of every wakeup-legal scheme). For such schemes every clique index is
// "external" in the paper's terminology, the f* choice is free, and the
// lazy game is exact: whenever the algorithm pushes a message through an
// undecided K*_n edge, the majority adversary decides on the spot whether
// that edge hosts a clique (routing the message to the attachment node a/b)
// or not.
//
// Algorithms that DO chatter spontaneously in an isolated clique are
// detected by a pre-simulation (probe_isolated_clique) and rejected with a
// diagnostic — handling self-revealing cliques faithfully requires the
// proof's I_int bookkeeping, which costs the adversary at most 3/4 of the
// cliques and does not change the message-complexity shape.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/port_graph.h"
#include "sim/scheme.h"

namespace oraclesize {

/// Synchronously simulates `algorithm` (with empty advice, not the source)
/// on an isolated k-clique for `rounds` rounds with no external input.
/// Returns the number of messages the clique's nodes transmitted — zero
/// means the scheme is clique-silent and play_lazy_broadcast is exact.
std::uint64_t probe_isolated_clique(std::size_t k, const Algorithm& algorithm,
                                    std::size_t rounds = 64);

struct LazyBroadcastResult {
  std::uint64_t messages = 0;    ///< messages the algorithm paid
  std::size_t cliques_found = 0; ///< cliques conceded by the adversary
  std::size_t edges_probed = 0;  ///< distinct K*_n edges traversed
  double probe_lower_bound = 0;  ///< log2 C(C(n,2), n/k)
  bool completed = false;        ///< all 2n nodes informed
  std::string violation;         ///< invalid scheme / budget overrun
};

/// Plays `algorithm` (zero advice) from source node 0 against the lazily
/// decided (2n)-node family G_{n,k}. Requires 4k | n, k >= 2, and a
/// clique-silent algorithm (checked; throws std::invalid_argument with a
/// diagnostic otherwise).
LazyBroadcastResult play_lazy_broadcast(std::size_t n, std::size_t k,
                                        const Algorithm& algorithm,
                                        std::uint64_t max_messages =
                                            100'000'000);

}  // namespace oraclesize
