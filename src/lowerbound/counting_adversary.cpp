#include "lowerbound/counting_adversary.h"

#include <stdexcept>

#include "util/mathx.h"

namespace oraclesize {

CountingAdversary::CountingAdversary(const EdgeDiscoveryProblem& problem)
    : problem_(problem) {
  if (problem.num_special > problem.num_candidates) {
    throw std::invalid_argument("CountingAdversary: m > N");
  }
}

ProbeResult CountingAdversary::answer(std::size_t /*edge*/) {
  if (resolved()) {
    throw std::logic_error("CountingAdversary: already resolved");
  }
  const std::size_t remaining_special = problem_.num_special - specials_;
  const std::size_t u = unprobed();
  if (u == 0) throw std::logic_error("CountingAdversary: no candidates left");

  // |J_regular| / (m-r)! = C(u-1, m-r);  |J_special| / (m-r)! = C(u-1, m-r-1)
  const double log_regular = log2_choose(u - 1, remaining_special);
  const double log_special = log2_choose(u - 1, remaining_special - 1);
  // The proof's rule: |J_special| >= |J_regular| -> special. The 1e-9 slack
  // absorbs lgamma rounding on exact ties.
  if (log_special >= log_regular - 1e-9) {
    ++specials_;
    return ProbeResult{true, specials_};  // smallest unused label
  }
  ++regulars_;
  return ProbeResult{false, 0};
}

bool CountingAdversary::resolved() const { return log2_active() <= 1e-9; }

double CountingAdversary::log2_active() const {
  const std::size_t remaining_special = problem_.num_special - specials_;
  return log2_choose(unprobed(), remaining_special) +
         log2_factorial(remaining_special);
}

}  // namespace oraclesize
