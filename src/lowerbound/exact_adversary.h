// Brute-force reference adversary: explicit enumeration of the instance
// family.
//
// Feasible only for tiny (N, m) — C(N, m) * m! instances are materialized —
// but it implements Lemma 2.1's adversary literally (actual majority counts
// over actual instance sets, arg-max label choice) and so serves as the
// ground truth that the closed-form CountingAdversary is checked against.
#pragma once

#include <vector>

#include "lowerbound/edge_discovery.h"

namespace oraclesize {

class ExactAdversary final : public Adversary {
 public:
  /// Materializes all C(N,m)*m! instances. Throws std::invalid_argument when
  /// the family would exceed `max_instances` (default 2'000'000).
  explicit ExactAdversary(const EdgeDiscoveryProblem& problem,
                          std::size_t max_instances = 2'000'000);

  ProbeResult answer(std::size_t edge) override;
  bool resolved() const override;
  double log2_active() const override;
  std::string name() const override { return "exact"; }

  std::size_t active_count() const noexcept { return active_.size(); }

 private:
  // One instance: label_of[edge] in 1..m for specials, 0 for regulars.
  using Instance = std::vector<std::uint8_t>;

  EdgeDiscoveryProblem problem_;
  std::vector<Instance> active_;
};

}  // namespace oraclesize
