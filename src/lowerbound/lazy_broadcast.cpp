#include "lowerbound/lazy_broadcast.h"

#include <map>
#include <memory>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "graph/clique_replace.h"
#include "graph/complete_star.h"
#include "lowerbound/counting_adversary.h"
#include "util/mathx.h"

namespace oraclesize {

std::uint64_t probe_isolated_clique(std::size_t k, const Algorithm& algorithm,
                                    std::size_t /*rounds*/) {
  // With no external input, a scheme that is silent on the empty history
  // stays silent forever (nothing is ever received), so counting on_start
  // sends decides clique-silence exactly.
  std::uint64_t sends = 0;
  std::vector<Send> out;
  for (std::size_t a = 1; a <= k; ++a) {
    const NodeInput input{&kNoAdvice, false, static_cast<Label>(a), k - 1};
    auto behavior = algorithm.make_behavior(input);
    out.clear();
    behavior->on_start(input, out);
    sends += out.size();
  }
  return sends;
}

namespace {

struct PendingMessage {
  std::int64_t round = 0;
  std::uint64_t seq = 0;
  NodeId to = kNoNode;
  Port at_port = kNoPort;
  Message msg;
  bool sender_informed = false;
};

struct Later {
  bool operator()(const PendingMessage& a, const PendingMessage& b) const {
    if (a.round != b.round) return a.round > b.round;
    return a.seq > b.seq;
  }
};

/// The lazily decided G_{n,k} instance. The removed clique edge is fixed to
/// f* = {1, 2} for every clique (the paper's C*; any choice works for
/// clique-silent schemes).
class LazyCliqueInstance {
 public:
  LazyCliqueInstance(std::size_t n, std::size_t k)
      : n_(n),
        k_(k),
        problem_{n * (n - 1) / 2, n / k},
        adversary_(problem_) {}

  std::size_t cliques_found() const noexcept { return clique_of_edge_.size(); }
  std::size_t edges_probed() const noexcept { return probed_; }
  double probe_lower_bound() const { return problem_.log2_probe_bound(); }

  bool is_clique_node(NodeId v) const noexcept { return v >= n_; }
  /// Clique index and 1-based local index of a clique node id.
  std::pair<std::size_t, int> locate(NodeId v) const {
    const std::size_t off = v - n_;
    return {off / k_, static_cast<int>(off % k_) + 1};
  }
  NodeId clique_node(std::size_t i, int a) const {
    return static_cast<NodeId>(n_ + i * k_ + static_cast<std::size_t>(a) - 1);
  }

  Endpoint route(NodeId from, Port port) {
    if (is_clique_node(from)) return route_from_clique(from, port);
    const NodeId far = complete_star_neighbor(n_, from, port);
    const auto key = normalized(from, far);
    auto it = decided_.find(key);
    if (it == decided_.end()) it = decided_.emplace(key, decide(key)).first;
    if (it->second == kNoClique) {
      return Endpoint{far, complete_star_port(n_, far, from)};
    }
    // Smaller endpoint attaches to local 1, larger to local 2; the
    // attachment reuses f*'s ports (clique_port(k,1,2) / (k,2,1)).
    const std::size_t i = it->second;
    if (from == key.first) {
      return Endpoint{clique_node(i, 1), clique_port(k_, 1, 2)};
    }
    return Endpoint{clique_node(i, 2), clique_port(k_, 2, 1)};
  }

 private:
  static constexpr std::size_t kNoClique = ~std::size_t{0};

  static std::pair<NodeId, NodeId> normalized(NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  Endpoint route_from_clique(NodeId v, Port port) {
    const auto [i, a] = locate(v);
    // Invert the circulant: port p at local a leads to local b with
    // ((b - a) mod k) - 1 == p.
    const int b = static_cast<int>(
                      (static_cast<std::size_t>(a - 1) + port + 1) % k_) +
                  1;
    const bool is_fstar = (a == 1 && b == 2) || (a == 2 && b == 1);
    if (!is_fstar) {
      return Endpoint{clique_node(i, b), clique_port(k_, b, a)};
    }
    // The attachment edge: local 1 reaches the smaller K*_n endpoint,
    // local 2 the larger, at the ports the replaced edge e_i had.
    const auto& e = edge_of_clique_.at(i);
    const NodeId target = (a == 1) ? e.first : e.second;
    const NodeId other = (a == 1) ? e.second : e.first;
    return Endpoint{target, complete_star_port(n_, target, other)};
  }

  std::size_t decide(const std::pair<NodeId, NodeId>& key) {
    ++probed_;
    bool special;
    if (!adversary_.resolved()) {
      special = adversary_.answer(0).special;
    } else {
      special = clique_of_edge_.size() < problem_.num_special;
    }
    if (!special) return kNoClique;
    const std::size_t i = clique_of_edge_.size();
    clique_of_edge_.emplace(key, i);
    edge_of_clique_.emplace(i, key);
    return i;
  }

  std::size_t n_;
  std::size_t k_;
  EdgeDiscoveryProblem problem_;
  CountingAdversary adversary_;
  std::size_t probed_ = 0;
  std::map<std::pair<NodeId, NodeId>, std::size_t> decided_;
  std::map<std::pair<NodeId, NodeId>, std::size_t> clique_of_edge_;
  std::map<std::size_t, std::pair<NodeId, NodeId>> edge_of_clique_;
};

}  // namespace

LazyBroadcastResult play_lazy_broadcast(std::size_t n, std::size_t k,
                                        const Algorithm& algorithm,
                                        std::uint64_t max_messages) {
  if (k < 2 || n == 0 || n % (4 * k) != 0) {
    throw std::invalid_argument("play_lazy_broadcast: need k >= 2, 4k | n");
  }
  if (probe_isolated_clique(k, algorithm) != 0) {
    throw std::invalid_argument(
        "play_lazy_broadcast: algorithm is not clique-silent; the exact "
        "lazy game requires the paper's I_int bookkeeping");
  }

  LazyCliqueInstance instance(n, k);
  LazyBroadcastResult result;
  result.probe_lower_bound = instance.probe_lower_bound();

  const std::size_t max_nodes = 2 * n;
  std::vector<std::unique_ptr<NodeBehavior>> behaviors(max_nodes);
  std::vector<NodeInput> inputs(max_nodes);
  std::vector<bool> informed(max_nodes, false);
  informed[0] = true;

  std::priority_queue<PendingMessage, std::vector<PendingMessage>, Later>
      queue;
  std::uint64_t seq = 0;
  std::vector<Send> sends;  // per-event sink, capacity recycled

  auto ensure_behavior = [&](NodeId v, std::int64_t round) {
    if (behaviors[v]) return;
    inputs[v] = NodeInput{&kNoAdvice, v == 0, static_cast<Label>(v) + 1,
                          instance.is_clique_node(v) ? k - 1 : n - 1};
    behaviors[v] = algorithm.make_behavior(inputs[v]);
    // Clique-silence guarantees this returns no sends, but the scheme is
    // entitled to its empty-history activation; run it when the node
    // materializes.
    sends.clear();
    behaviors[v]->on_start(inputs[v], sends);
    if (!sends.empty()) {
      result.violation = "clique-silence violated at materialization";
    }
    (void)round;
  };

  auto submit = [&](NodeId v, const std::vector<Send>& sends,
                    std::int64_t round) {
    for (const Send& s : sends) {
      if (s.port >= inputs[v].degree) {
        result.violation = "invalid port";
        return;
      }
      ++result.messages;
      if (result.messages > max_messages) {
        result.violation = "message budget exceeded";
        return;
      }
      const Endpoint dst = instance.route(v, s.port);
      queue.push(PendingMessage{round + 1, seq++, dst.node, dst.port, s.msg,
                                informed[v]});
    }
  };

  for (NodeId v = 0; v < n && result.violation.empty(); ++v) {
    inputs[v] = NodeInput{&kNoAdvice, v == 0, static_cast<Label>(v) + 1,
                          n - 1};
    behaviors[v] = algorithm.make_behavior(inputs[v]);
    sends.clear();
    behaviors[v]->on_start(inputs[v], sends);
    submit(v, sends, 0);
  }

  auto completed = [&]() {
    if (instance.cliques_found() < n / k) return false;
    for (std::size_t v = 0; v < max_nodes; ++v) {
      if (!informed[v]) return false;
    }
    return true;
  };

  while (!queue.empty() && result.violation.empty() && !completed()) {
    const PendingMessage pm = queue.top();
    queue.pop();
    ensure_behavior(pm.to, pm.round);
    if (!result.violation.empty()) break;
    if (pm.sender_informed) informed[pm.to] = true;
    sends.clear();
    behaviors[pm.to]->on_receive(inputs[pm.to], pm.msg, pm.at_port, sends);
    submit(pm.to, sends, pm.round);
  }

  result.cliques_found = instance.cliques_found();
  result.edges_probed = instance.edges_probed();
  result.completed = result.violation.empty() && completed();
  return result;
}

}  // namespace oraclesize
