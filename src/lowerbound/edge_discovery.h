// The edge-discovery problem (Section 2) — the combinatorial engine behind
// both lower bounds.
//
// An instance is (n, X, Y): X a set of |X| *special* edges of K*_n, each
// carrying a distinct label in 1..|X|, and Y a disjoint set of excluded
// edges. A communication scheme knows n, |X| and Y, and must discover X:
// whenever an edge is traversed (probed), either its (edge, label) pair is
// revealed (special) or it is revealed non-special. Lemma 2.1: against the
// majority adversary, any scheme needs at least log2(|I| / |X|!) probes,
// where I is the family of a-priori-possible instances.
//
// We abstract the candidate edges as indices 0..N-1 (N = C(n,2) - |Y|): the
// adversary argument never looks at the graph structure, only at which
// candidates have been probed. The wakeup reduction (Theorem 2.2) maps
// subdivided edges of G_{n,S} to specials with label = position in S; the
// broadcast reduction (Theorem 3.2) maps the n/4k cliques that must be
// discovered from outside.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace oraclesize {

struct EdgeDiscoveryProblem {
  std::size_t num_candidates = 0;  ///< N: probe-able edges (not in Y)
  std::size_t num_special = 0;     ///< m = |X|

  /// log2 of the instance-family size |I| = C(N, m) * m!.
  double log2_instances() const;

  /// Lemma 2.1's probe lower bound log2(|I| / m!) = log2 C(N, m).
  double log2_probe_bound() const;
};

/// What a probe reveals.
struct ProbeResult {
  bool special = false;
  std::size_t label = 0;  ///< 1..m when special, 0 otherwise
};

/// An adaptive adversary: answers probes so as to keep the active instance
/// family as large as possible (the proof's halving argument).
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Answers a probe of candidate `edge` (must be unprobed so far).
  virtual ProbeResult answer(std::size_t edge) = 0;

  /// True when exactly one instance remains active — the scheme is done.
  virtual bool resolved() const = 0;

  /// log2 of the number of currently active instances.
  virtual double log2_active() const = 0;

  virtual std::string name() const = 0;
};

/// A probing scheme under test.
class ProbeStrategy {
 public:
  virtual ~ProbeStrategy() = default;

  virtual void begin(const EdgeDiscoveryProblem& problem) = 0;

  /// The next candidate to probe; must never repeat a probe.
  virtual std::size_t next_probe() = 0;

  /// Feedback for the probe just issued.
  virtual void observe(std::size_t edge, const ProbeResult& result) = 0;

  virtual std::string name() const = 0;
};

struct GameResult {
  std::uint64_t probes = 0;
  std::size_t specials_found = 0;
  double log2_initial_instances = 0;  ///< log2 |I|
  double probe_lower_bound = 0;       ///< Lemma 2.1's log2(|I|/m!)
};

/// Plays strategy vs adversary until the adversary is resolved.
/// Throws std::logic_error if the strategy repeats a probe or runs out of
/// candidates before resolution.
GameResult play_edge_discovery(const EdgeDiscoveryProblem& problem,
                               ProbeStrategy& strategy, Adversary& adversary);

}  // namespace oraclesize
