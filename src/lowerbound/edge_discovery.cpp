#include "lowerbound/edge_discovery.h"

#include <stdexcept>
#include <unordered_set>

#include "util/mathx.h"

namespace oraclesize {

double EdgeDiscoveryProblem::log2_instances() const {
  return log2_choose(num_candidates, num_special) +
         log2_factorial(num_special);
}

double EdgeDiscoveryProblem::log2_probe_bound() const {
  return log2_choose(num_candidates, num_special);
}

GameResult play_edge_discovery(const EdgeDiscoveryProblem& problem,
                               ProbeStrategy& strategy, Adversary& adversary) {
  GameResult result;
  result.log2_initial_instances = problem.log2_instances();
  result.probe_lower_bound = problem.log2_probe_bound();
  strategy.begin(problem);

  std::unordered_set<std::size_t> probed;
  while (!adversary.resolved()) {
    if (probed.size() >= problem.num_candidates) {
      throw std::logic_error(
          "play_edge_discovery: all candidates probed but not resolved");
    }
    const std::size_t edge = strategy.next_probe();
    if (edge >= problem.num_candidates || !probed.insert(edge).second) {
      throw std::logic_error("play_edge_discovery: invalid or repeated probe");
    }
    const ProbeResult answer = adversary.answer(edge);
    if (answer.special) ++result.specials_found;
    strategy.observe(edge, answer);
    ++result.probes;
  }
  return result;
}

}  // namespace oraclesize
