#include "lowerbound/lazy_wakeup.h"

#include <map>
#include <memory>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/complete_star.h"
#include "lowerbound/counting_adversary.h"
#include "util/mathx.h"

namespace oraclesize {

namespace {

struct PendingMessage {
  std::int64_t round = 0;
  std::uint64_t seq = 0;
  NodeId to = kNoNode;
  Port at_port = kNoPort;
  Message msg;
  bool sender_informed = false;
};

struct Later {
  bool operator()(const PendingMessage& a, const PendingMessage& b) const {
    if (a.round != b.round) return a.round > b.round;
    return a.seq > b.seq;
  }
};

/// The lazily decided instance: edge states of K*_n plus materialized
/// hidden nodes.
class LazyInstance {
 public:
  explicit LazyInstance(std::size_t n)
      : n_(n), problem_{n * (n - 1) / 2, n}, adversary_(problem_) {}

  std::size_t base_nodes() const noexcept { return n_; }
  std::size_t hidden_count() const noexcept { return hidden_of_edge_.size(); }
  std::size_t edges_probed() const noexcept { return probed_; }
  double probe_lower_bound() const { return problem_.log2_probe_bound(); }

  /// Routes a send from `from` (base or hidden) through local port `port`.
  /// Returns the destination (node, port), materializing a hidden node if
  /// the adversary so decides. Hidden node for label l has id n_ + l - 1.
  Endpoint route(NodeId from, Port port) {
    if (from >= n_) return route_from_hidden(from, port);
    const NodeId far = complete_star_neighbor(n_, from, port);
    const auto key = normalized(from, far);
    auto it = state_.find(key);
    if (it == state_.end()) {
      it = state_.emplace(key, decide(key)).first;
    }
    const EdgeState& st = it->second;
    if (!st.special) {
      return Endpoint{far, complete_star_port(n_, far, from)};
    }
    // Message from the smaller endpoint arrives at the hidden node's port
    // 0, from the larger at port 1 (the paper's subdivision ports).
    return Endpoint{st.hidden, from == key.first ? Port{0} : Port{1}};
  }

 private:
  struct EdgeState {
    bool special = false;
    NodeId hidden = kNoNode;
  };

  static std::pair<NodeId, NodeId> normalized(NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  Endpoint route_from_hidden(NodeId h, Port port) const {
    const auto& key = edge_of_hidden_.at(h);
    if (port == 0) {
      return Endpoint{key.first, complete_star_port(n_, key.first,
                                                    key.second)};
    }
    if (port == 1) {
      return Endpoint{key.second, complete_star_port(n_, key.second,
                                                     key.first)};
    }
    throw std::logic_error("lazy wakeup: hidden node has only ports 0/1");
  }

  EdgeState decide(const std::pair<NodeId, NodeId>& key) {
    ++probed_;
    ProbeResult answer;
    if (!adversary_.resolved()) {
      answer = adversary_.answer(0);  // symmetric family: identity is moot
    } else {
      // The family is down to one instance: unprobed edges are special
      // exactly when specials are still owed (then each remaining unprobed
      // edge is one of them — by resolution there are equally many).
      const std::size_t owed = n_ - hidden_of_edge_.size();
      answer.special = owed > 0;
      if (answer.special) answer.label = hidden_of_edge_.size() + 1;
    }
    EdgeState st;
    if (answer.special) {
      st.special = true;
      st.hidden = static_cast<NodeId>(n_ + answer.label - 1);
      hidden_of_edge_.emplace(key, st.hidden);
      edge_of_hidden_.emplace(st.hidden, key);
    }
    return st;
  }

  std::size_t n_;
  EdgeDiscoveryProblem problem_;
  CountingAdversary adversary_;
  std::size_t probed_ = 0;
  std::map<std::pair<NodeId, NodeId>, EdgeState> state_;
  std::map<std::pair<NodeId, NodeId>, NodeId> hidden_of_edge_;
  std::map<NodeId, std::pair<NodeId, NodeId>> edge_of_hidden_;

 public:
  /// The committed specials, in label order.
  std::vector<std::pair<NodeId, NodeId>> special_edges() const {
    std::vector<std::pair<NodeId, NodeId>> out;
    out.reserve(edge_of_hidden_.size());
    for (const auto& [hidden, edge] : edge_of_hidden_) out.push_back(edge);
    return out;  // std::map iterates hidden ids (= labels) in order
  }
};

}  // namespace

LazyWakeupResult play_lazy_wakeup(std::size_t n, const Algorithm& algorithm,
                                  std::uint64_t max_messages) {
  // C(n,2) >= n (so that n special edges fit) requires n >= 3.
  if (n < 3) throw std::invalid_argument("play_lazy_wakeup: n >= 3");
  LazyInstance instance(n);
  LazyWakeupResult result;
  result.probe_lower_bound = instance.probe_lower_bound();

  const std::size_t max_nodes = 2 * n;
  std::vector<std::unique_ptr<NodeBehavior>> behaviors(max_nodes);
  std::vector<NodeInput> inputs(max_nodes);
  std::vector<bool> informed(max_nodes, false);
  informed[0] = true;  // node 0 (label 1) is the source

  auto ensure_behavior = [&](NodeId v) {
    if (behaviors[v]) return;
    inputs[v] = NodeInput{&kNoAdvice, v == 0, static_cast<Label>(v) + 1,
                          v < n ? n - 1 : 2};
    behaviors[v] = algorithm.make_behavior(inputs[v]);
  };

  std::priority_queue<PendingMessage, std::vector<PendingMessage>, Later>
      queue;
  std::uint64_t seq = 0;
  std::vector<Send> sends;  // per-event sink, capacity recycled

  auto submit = [&](NodeId v, const std::vector<Send>& sends,
                    std::int64_t round) {
    if (sends.empty()) return;
    if (!informed[v]) {
      std::ostringstream os;
      os << "wakeup violation: uninformed node " << v << " transmitted";
      result.violation = os.str();
      return;
    }
    for (const Send& s : sends) {
      if (s.port >= inputs[v].degree) {
        result.violation = "invalid port";
        return;
      }
      ++result.messages;
      if (result.messages > max_messages) {
        result.violation = "message budget exceeded";
        return;
      }
      const Endpoint dst = instance.route(v, s.port);
      queue.push(PendingMessage{round + 1, seq++, dst.node, dst.port, s.msg,
                                informed[v]});
    }
  };

  for (NodeId v = 0; v < n && result.violation.empty(); ++v) {
    ensure_behavior(v);
    sends.clear();
    behaviors[v]->on_start(inputs[v], sends);
    submit(v, sends, 0);
  }

  auto completed = [&]() {
    if (instance.hidden_count() < n) return false;
    for (std::size_t v = 0; v < max_nodes; ++v) {
      if (!informed[v]) return false;
    }
    return true;
  };

  while (!queue.empty() && result.violation.empty() && !completed()) {
    const PendingMessage pm = queue.top();
    queue.pop();
    ensure_behavior(pm.to);
    if (pm.sender_informed) informed[pm.to] = true;
    sends.clear();
    behaviors[pm.to]->on_receive(inputs[pm.to], pm.msg, pm.at_port, sends);
    submit(pm.to, sends, pm.round);
  }

  result.hidden_found = instance.hidden_count();
  result.edges_probed = instance.edges_probed();
  result.completed = result.violation.empty() && completed();
  result.special_edges = instance.special_edges();
  return result;
}

}  // namespace oraclesize
