#include "lowerbound/exact_adversary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/mathx.h"

namespace oraclesize {

ExactAdversary::ExactAdversary(const EdgeDiscoveryProblem& problem,
                               std::size_t max_instances)
    : problem_(problem) {
  const double log_count = problem.log2_instances();
  if (log_count > std::log2(static_cast<double>(max_instances))) {
    throw std::invalid_argument("ExactAdversary: family too large");
  }
  const std::size_t n = problem.num_candidates;
  const std::size_t m = problem.num_special;

  // Enumerate subsets of size m via the classic combination walk, then all
  // label permutations of each.
  std::vector<std::size_t> comb(m);
  for (std::size_t i = 0; i < m; ++i) comb[i] = i;
  std::vector<std::uint8_t> labels(m);
  for (;;) {
    for (std::size_t i = 0; i < m; ++i) {
      labels[i] = static_cast<std::uint8_t>(i + 1);
    }
    do {
      Instance inst(n, 0);
      for (std::size_t i = 0; i < m; ++i) inst[comb[i]] = labels[i];
      active_.push_back(std::move(inst));
    } while (std::next_permutation(labels.begin(), labels.end()));

    if (m == 0) break;
    // Advance the combination.
    std::size_t i = m;
    while (i > 0 && comb[i - 1] == n - m + (i - 1)) --i;
    if (i == 0) break;
    ++comb[i - 1];
    for (std::size_t j = i; j < m; ++j) comb[j] = comb[j - 1] + 1;
  }
}

ProbeResult ExactAdversary::answer(std::size_t edge) {
  if (resolved()) throw std::logic_error("ExactAdversary: already resolved");
  const std::size_t m = problem_.num_special;

  std::size_t regular_count = 0;
  std::vector<std::size_t> special_count(m + 1, 0);  // by label
  for (const Instance& inst : active_) {
    if (inst[edge] == 0) {
      ++regular_count;
    } else {
      ++special_count[inst[edge]];
    }
  }
  std::size_t special_total = 0;
  for (std::size_t l = 1; l <= m; ++l) special_total += special_count[l];

  ProbeResult result;
  if (special_total >= regular_count) {  // the proof's majority rule
    result.special = true;
    // arg-max label; ties -> smallest (matches CountingAdversary).
    std::size_t best = 1;
    for (std::size_t l = 2; l <= m; ++l) {
      if (special_count[l] > special_count[best]) best = l;
    }
    result.label = best;
  }

  std::vector<Instance> survivors;
  survivors.reserve(active_.size());
  for (Instance& inst : active_) {
    const bool consistent = result.special
                                ? inst[edge] == result.label
                                : inst[edge] == 0;
    if (consistent) survivors.push_back(std::move(inst));
  }
  active_ = std::move(survivors);
  if (active_.empty()) {
    throw std::logic_error("ExactAdversary: family emptied (bug)");
  }
  return result;
}

bool ExactAdversary::resolved() const { return active_.size() <= 1; }

double ExactAdversary::log2_active() const {
  return std::log2(static_cast<double>(active_.size()));
}

}  // namespace oraclesize
