// Standard network topologies used as workloads in tests and benchmarks.
//
// Ports are assigned in construction order (dense, deterministic); callers
// that want adversarial or randomized port numberings apply shuffle_ports().
// All builders produce connected graphs with labels 1..n.
#pragma once

#include "graph/port_graph.h"
#include "util/rng.h"

namespace oraclesize {

/// Simple path v0 - v1 - ... - v{n-1}. Requires n >= 1.
PortGraph make_path(std::size_t n);

/// Cycle on n nodes. Requires n >= 3.
PortGraph make_cycle(std::size_t n);

/// Star with center node 0 and n-1 leaves. Requires n >= 2.
PortGraph make_star(std::size_t n);

/// rows x cols grid (4-neighbor). Requires rows, cols >= 1.
PortGraph make_grid(std::size_t rows, std::size_t cols);

/// d-dimensional hypercube (2^d nodes). Requires 0 <= d <= 20.
PortGraph make_hypercube(int d);

/// Complete binary tree with n nodes (heap-shaped). Requires n >= 1.
PortGraph make_binary_tree(std::size_t n);

/// Uniform random labeled tree on n nodes (random Prufer sequence).
/// Requires n >= 1.
PortGraph make_random_tree(std::size_t n, Rng& rng);

/// Connected Erdos-Renyi-style graph: a random spanning tree plus each
/// remaining pair joined independently with probability p.
PortGraph make_random_connected(std::size_t n, double p, Rng& rng);

/// Sparse random connected graph for large n: a random spanning tree plus
/// `extra` distinct non-tree edges drawn by rejection sampling. O(n + extra)
/// time and memory, unlike make_random_connected's O(n^2) pair scan, so it
/// reaches n = 10^6..10^7 (the sharded-engine bench families). Requires
/// n >= 1 and extra small enough to fit outside the tree
/// (extra <= n*(n-1)/2 - (n-1)).
PortGraph make_random_connected_sparse(std::size_t n, std::size_t extra,
                                       Rng& rng);

/// The classic lollipop: a clique on ceil(n/2) nodes with a path of the
/// remaining nodes attached. A stress case for message-complexity baselines
/// (flooding pays for the clique, tree-based schemes do not).
PortGraph make_lollipop(std::size_t n);

/// rows x cols torus (4-neighbor with wraparound). Requires rows, cols >= 3
/// (smaller wraps would create parallel edges).
PortGraph make_torus(std::size_t rows, std::size_t cols);

/// Complete bipartite graph K_{a,b} (left ids 0..a-1, right a..a+b-1).
/// Requires a, b >= 1.
PortGraph make_complete_bipartite(std::size_t a, std::size_t b);

/// Wheel: a cycle on n-1 nodes plus a hub adjacent to all. Requires n >= 4.
PortGraph make_wheel(std::size_t n);

/// Caterpillar: a spine path of `spine` nodes, each carrying `legs` pendant
/// leaves. Requires spine >= 1. n = spine * (1 + legs).
PortGraph make_caterpillar(std::size_t spine, std::size_t legs);

/// Random d-regular graph via the configuration model with restarts
/// (rejecting self-loops/parallel edges) until the sample is simple and
/// connected. Requires n*d even, d < n, and d >= 2 for connectivity to be
/// reachable. May try many times for awkward (n, d); throws
/// std::runtime_error after `max_attempts` failures.
PortGraph make_random_regular(std::size_t n, std::size_t d, Rng& rng,
                              int max_attempts = 200);

/// Returns a copy of g whose port numbers at every node are independently
/// and uniformly permuted. Structure and labels are unchanged. Used to check
/// that algorithms do not accidentally rely on a builder's port order.
PortGraph shuffle_ports(const PortGraph& g, Rng& rng);

}  // namespace oraclesize
