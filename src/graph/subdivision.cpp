#include "graph/subdivision.h"

#include <set>
#include <stdexcept>

#include "graph/complete_star.h"

namespace oraclesize {

SubdividedGraph subdivide_edges(const PortGraph& base,
                                const std::vector<Edge>& edges) {
  const std::size_t n = base.num_nodes();
  std::set<std::pair<NodeId, NodeId>> chosen;
  for (const Edge& e : edges) {
    if (e.u >= e.v) {
      throw std::invalid_argument("subdivide_edges: edge not normalized");
    }
    if (!base.has_port(e.u, e.port_u) ||
        base.neighbor(e.u, e.port_u) != Endpoint{e.v, e.port_v}) {
      throw std::invalid_argument("subdivide_edges: edge not in base graph");
    }
    if (!chosen.insert({e.u, e.v}).second) {
      throw std::invalid_argument("subdivide_edges: duplicate edge");
    }
  }

  SubdividedGraph out;
  out.subdivided = edges;
  out.graph = PortGraph(n + edges.size());
  for (NodeId v = 0; v < n; ++v) out.graph.set_label(v, base.label(v));

  // Copy every non-subdivided edge verbatim.
  for (const Edge& e : base.edges()) {
    if (!chosen.count({e.u, e.v})) {
      out.graph.add_edge(e.u, e.port_u, e.v, e.port_v);
    }
  }
  // Insert the middle nodes. Labels follow the paper: w_i gets label n+i
  // (1-based i); here ids are dense so w_i = n + i (0-based) with the
  // default label n+i+1.
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    const NodeId w = static_cast<NodeId>(n + i);
    out.hidden.push_back(w);
    // e.u has the smaller id, hence (with labels id+1) the smaller label:
    // w's port 0 goes to e.u, port 1 to e.v, per the paper.
    out.graph.add_edge(e.u, e.port_u, w, 0);
    out.graph.add_edge(e.v, e.port_v, w, 1);
  }
  out.graph.freeze();
  return out;
}

std::vector<Edge> random_complete_star_edges(std::size_t n, std::size_t count,
                                             Rng& rng) {
  const std::size_t total = n * (n - 1) / 2;
  if (count > total) {
    throw std::invalid_argument("random_complete_star_edges: count too big");
  }
  std::set<std::pair<NodeId, NodeId>> chosen;
  std::vector<Edge> out;
  out.reserve(count);
  while (out.size() < count) {
    const NodeId a = static_cast<NodeId>(rng.below(n));
    NodeId b = static_cast<NodeId>(rng.below(n - 1));
    if (b >= a) ++b;
    const NodeId u = a < b ? a : b;
    const NodeId v = a < b ? b : a;
    if (!chosen.insert({u, v}).second) continue;
    out.push_back(Edge{u, complete_star_port(n, u, v), v,
                       complete_star_port(n, v, u)});
  }
  return out;
}

SubdividedGraph make_gns(std::size_t n, std::size_t num_subdivided,
                         Rng& rng) {
  const PortGraph base = make_complete_star(n);
  return subdivide_edges(base,
                         random_complete_star_edges(n, num_subdivided, rng));
}

}  // namespace oraclesize
