#include "graph/port_graph.h"

#include <sstream>
#include <stdexcept>

namespace oraclesize {

PortGraph::PortGraph(std::size_t num_nodes)
    : adj_(num_nodes), labels_(num_nodes) {
  for (std::size_t v = 0; v < num_nodes; ++v) {
    labels_[v] = static_cast<Label>(v) + 1;  // paper-style labels 1..n
  }
}

void PortGraph::add_edge(NodeId u, Port pu, NodeId v, Port pv) {
  if (u >= num_nodes() || v >= num_nodes()) {
    throw std::invalid_argument("add_edge: node out of range");
  }
  if (u == v) throw std::invalid_argument("add_edge: self-loop");
  auto reserve = [](std::vector<Endpoint>& slots, Port p) {
    if (slots.size() <= p) slots.resize(p + 1);
    if (slots[p].node != kNoNode) {
      throw std::invalid_argument("add_edge: port already occupied");
    }
  };
  reserve(adj_[u], pu);
  reserve(adj_[v], pv);
  adj_[u][pu] = Endpoint{v, pv};
  adj_[v][pv] = Endpoint{u, pu};
  ++num_edges_;
}

std::pair<Port, Port> PortGraph::add_edge_auto(NodeId u, NodeId v) {
  const Port pu = static_cast<Port>(adj_.at(u).size());
  const Port pv = static_cast<Port>(adj_.at(v).size());
  add_edge(u, pu, v, pv);
  return {pu, pv};
}

std::size_t PortGraph::degree(NodeId v) const { return adj_.at(v).size(); }

Endpoint PortGraph::neighbor(NodeId v, Port p) const {
  const auto& slots = adj_.at(v);
  if (p >= slots.size() || slots[p].node == kNoNode) {
    throw std::out_of_range("neighbor: vacant port");
  }
  return slots[p];
}

bool PortGraph::has_port(NodeId v, Port p) const noexcept {
  if (v >= num_nodes()) return false;
  const auto& slots = adj_[v];
  return p < slots.size() && slots[p].node != kNoNode;
}

Port PortGraph::port_towards(NodeId u, NodeId v) const {
  const auto& slots = adj_.at(u);
  for (Port p = 0; p < slots.size(); ++p) {
    if (slots[p].node == v) return p;
  }
  return kNoPort;
}

Label PortGraph::label(NodeId v) const { return labels_.at(v); }

void PortGraph::set_label(NodeId v, Label label) { labels_.at(v) = label; }

std::vector<Edge> PortGraph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (Port p = 0; p < adj_[u].size(); ++p) {
      const Endpoint e = adj_[u][p];
      if (e.node != kNoNode && u < e.node) {
        out.push_back(Edge{u, p, e.node, e.port});
      }
    }
  }
  return out;
}

std::string PortGraph::to_dot() const {
  std::ostringstream os;
  os << "graph G {\n";
  for (NodeId v = 0; v < num_nodes(); ++v) {
    os << "  n" << v << " [label=\"" << labels_[v] << "\"];\n";
  }
  for (const Edge& e : edges()) {
    os << "  n" << e.u << " -- n" << e.v << " [taillabel=\"" << e.port_u
       << "\", headlabel=\"" << e.port_v << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string PortGraph::summary() const {
  std::ostringstream os;
  os << "PortGraph(n=" << num_nodes() << ", m=" << num_edges() << ")";
  return os.str();
}

}  // namespace oraclesize
