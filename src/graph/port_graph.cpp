#include "graph/port_graph.h"

#include <sstream>
#include <stdexcept>

namespace oraclesize {

namespace {

// Error-message formatting is hoisted into cold [[noreturn]] helpers so the
// checked accessors carry nothing but a compare + call on their hot path
// (no inline std::string construction, no ostringstream machinery).
[[gnu::cold]] [[noreturn]] void throw_bad_node(const char* where) {
  throw std::out_of_range(std::string(where) + ": node out of range");
}

[[gnu::cold]] [[noreturn]] void throw_vacant_port() {
  throw std::out_of_range("neighbor: vacant port");
}

[[gnu::cold]] [[noreturn]] void throw_frozen(const char* where) {
  throw std::logic_error(std::string(where) +
                         ": graph is frozen (immutable CSR)");
}

[[gnu::cold]] [[noreturn]] void throw_freeze_hole(NodeId v, Port p) {
  std::ostringstream os;
  os << "freeze: node " << v << " has a vacant port " << p
     << " below its top occupied slot";
  throw std::invalid_argument(os.str());
}

}  // namespace

PortGraph::PortGraph(std::size_t num_nodes)
    : adj_(num_nodes), next_free_(num_nodes, 0), labels_(num_nodes) {
  for (std::size_t v = 0; v < num_nodes; ++v) {
    labels_[v] = static_cast<Label>(v) + 1;  // paper-style labels 1..n
  }
}

void PortGraph::add_edge(NodeId u, Port pu, NodeId v, Port pv) {
  if (frozen_) throw_frozen("add_edge");
  if (u >= num_nodes() || v >= num_nodes()) {
    throw std::invalid_argument("add_edge: node out of range");
  }
  if (u == v) throw std::invalid_argument("add_edge: self-loop");
  auto reserve = [](std::vector<Endpoint>& slots, Port p) {
    if (slots.size() <= p) slots.resize(p + 1);
    if (slots[p].node != kNoNode) {
      throw std::invalid_argument("add_edge: port already occupied");
    }
  };
  reserve(adj_[u], pu);
  reserve(adj_[v], pv);
  adj_[u][pu] = Endpoint{v, pv};
  adj_[v][pv] = Endpoint{u, pu};
  ++num_edges_;
}

std::pair<Port, Port> PortGraph::add_edge_auto(NodeId u, NodeId v) {
  if (frozen_) throw_frozen("add_edge_auto");
  if (u >= num_nodes() || v >= num_nodes()) {
    throw std::invalid_argument("add_edge_auto: node out of range");
  }
  // Per-node cursors: each scan resumes where the last one stopped, so a
  // build made of add_edge_auto calls does amortized O(1) work per
  // endpoint (linear in m overall) instead of re-scanning filled slots.
  auto next_free = [this](NodeId x) {
    Port c = next_free_[x];
    const std::vector<Endpoint>& slots = adj_[x];
    while (c < slots.size() && slots[c].node != kNoNode) ++c;
    next_free_[x] = c;
    return c;
  };
  const Port pu = next_free(u);
  const Port pv = next_free(v);
  add_edge(u, pu, v, pv);
  ++next_free_[u];
  next_free_[v] = pv + 1;
  return {pu, pv};
}

void PortGraph::freeze() {
  if (frozen_) return;
  const std::size_t n = num_nodes();
  offsets_.resize(n + 1);
  std::uint64_t total = 0;
  for (NodeId v = 0; v < n; ++v) {
    offsets_[v] = total;
    for (Port p = 0; p < adj_[v].size(); ++p) {
      if (adj_[v][p].node == kNoNode) throw_freeze_hole(v, p);
    }
    total += adj_[v].size();
  }
  offsets_[n] = total;
  endpoints_.reserve(static_cast<std::size_t>(total));
  for (NodeId v = 0; v < n; ++v) {
    endpoints_.insert(endpoints_.end(), adj_[v].begin(), adj_[v].end());
  }
  // Release the builder storage; the CSR arrays are now the graph.
  adj_ = {};
  next_free_ = {};
  frozen_ = true;
}

std::size_t PortGraph::degree(NodeId v) const {
  if (v >= num_nodes()) throw_bad_node("degree");
  return frozen_ ? degree_u(v) : adj_[v].size();
}

Endpoint PortGraph::neighbor(NodeId v, Port p) const {
  if (v >= num_nodes()) throw_bad_node("neighbor");
  if (frozen_) {
    if (p >= degree_u(v)) throw_vacant_port();
    return neighbor_u(v, p);
  }
  const std::vector<Endpoint>& slots = adj_[v];
  if (p >= slots.size() || slots[p].node == kNoNode) throw_vacant_port();
  return slots[p];
}

bool PortGraph::has_port(NodeId v, Port p) const noexcept {
  if (v >= num_nodes()) return false;
  if (frozen_) return p < degree_u(v);
  const std::vector<Endpoint>& slots = adj_[v];
  return p < slots.size() && slots[p].node != kNoNode;
}

Port PortGraph::port_towards(NodeId u, NodeId v) const {
  if (u >= num_nodes()) throw_bad_node("port_towards");
  const std::span<const Endpoint> row = neighbors(u);
  for (std::size_t p = 0; p < row.size(); ++p) {
    if (row[p].node == v) return static_cast<Port>(p);
  }
  return kNoPort;
}

Label PortGraph::label(NodeId v) const {
  if (v >= num_nodes()) throw_bad_node("label");
  return labels_[v];
}

void PortGraph::set_label(NodeId v, Label label) {
  if (v >= num_nodes()) throw_bad_node("set_label");
  labels_[v] = label;
}

std::vector<Edge> PortGraph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < num_nodes(); ++u) {
    const std::span<const Endpoint> row = neighbors(u);
    for (std::size_t p = 0; p < row.size(); ++p) {
      const Endpoint e = row[p];
      if (e.node != kNoNode && u < e.node) {
        out.push_back(Edge{u, static_cast<Port>(p), e.node, e.port});
      }
    }
  }
  return out;
}

std::size_t PortGraph::memory_bytes() const noexcept {
  std::size_t bytes = labels_.capacity() * sizeof(Label);
  if (frozen_) {
    bytes += offsets_.capacity() * sizeof(std::uint64_t);
    bytes += endpoints_.capacity() * sizeof(Endpoint);
  } else {
    bytes += adj_.capacity() * sizeof(std::vector<Endpoint>);
    bytes += next_free_.capacity() * sizeof(Port);
    for (const std::vector<Endpoint>& slots : adj_) {
      bytes += slots.capacity() * sizeof(Endpoint);
    }
  }
  return bytes;
}

std::string PortGraph::to_dot() const {
  std::ostringstream os;
  os << "graph G {\n";
  for (NodeId v = 0; v < num_nodes(); ++v) {
    os << "  n" << v << " [label=\"" << labels_[v] << "\"];\n";
  }
  for (const Edge& e : edges()) {
    os << "  n" << e.u << " -- n" << e.v << " [taillabel=\"" << e.port_u
       << "\", headlabel=\"" << e.port_v << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string PortGraph::summary() const {
  std::ostringstream os;
  os << "PortGraph(n=" << num_nodes() << ", m=" << num_edges() << ")";
  return os.str();
}

}  // namespace oraclesize
