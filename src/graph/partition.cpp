#include "graph/partition.h"

#include <algorithm>
#include <thread>

namespace oraclesize {

namespace {

// The prefix-degree curve: entry v is the first directed-link id of node v.
// On a frozen graph this aliases the CSR offsets; a builder graph pays for a
// temporary copy (partitioning unfrozen graphs is a test-only path).
std::vector<std::uint64_t> prefix_degrees(const PortGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::uint64_t> prefix(n + 1);
  prefix[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    prefix[v + 1] = prefix[v] + g.degree(v);
  }
  return prefix;
}

}  // namespace

Partition make_partition(const PortGraph& g, const PartitionOptions& options) {
  const std::size_t n = g.num_nodes();

  std::uint32_t shards = options.shards;
  if (shards == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    shards = hw > 0 ? hw : 1;
  }
  const std::uint32_t min_nodes = std::max<std::uint32_t>(
      1, options.min_nodes_per_shard);
  if (n / min_nodes < shards) {
    shards = static_cast<std::uint32_t>(std::max<std::size_t>(
        1, n / min_nodes));
  }

  Partition p;
  if (n == 0 || shards <= 1) {
    p.bounds = {0, static_cast<NodeId>(n)};
    if (n == 0) p.bounds = {0, 0};
    return p;
  }

  const std::uint64_t* offsets = g.csr_offsets();
  std::vector<std::uint64_t> computed;
  if (offsets == nullptr) {
    computed = prefix_degrees(g);
    offsets = computed.data();
  }
  const std::uint64_t total_links = offsets[n];

  // Alignment only when it cannot starve shards of nodes; see partition.h.
  const std::uint64_t align =
      (options.alignment > 0 &&
       n >= static_cast<std::size_t>(shards) * options.alignment)
          ? options.alignment
          : 1;

  p.bounds.reserve(shards + 1);
  p.bounds.push_back(0);
  for (std::uint32_t s = 1; s < shards; ++s) {
    // Ideal equal-mass cut point for boundary s, found on the monotone
    // prefix curve; ties resolve to the first node at or past the target.
    const std::uint64_t target =
        total_links * static_cast<std::uint64_t>(s) / shards;
    const std::uint64_t* it =
        std::lower_bound(offsets, offsets + n + 1, target);
    std::uint64_t cut = static_cast<std::uint64_t>(it - offsets);
    cut = (cut / align) * align;
    // Keep bounds strictly increasing: an empty range would produce a shard
    // that exists but can never own work.
    const std::uint64_t prev = p.bounds.back();
    if (cut <= prev) cut = prev + 1;
    if (cut >= n) break;  // remaining mass all fits in the final shard
    p.bounds.push_back(static_cast<NodeId>(cut));
  }
  p.bounds.push_back(static_cast<NodeId>(n));
  return p;
}

ShardView make_shard_view(const PortGraph& g, const Partition& p,
                          std::uint32_t shard) {
  ShardView view;
  view.node_begin = p.begin(shard);
  view.node_end = p.end(shard);
  view.endpoints = g.csr_endpoints();
  view.offsets = g.csr_offsets();
  if (view.offsets != nullptr) {
    view.link_begin = view.offsets[view.node_begin];
    view.link_end = view.offsets[view.node_end];
  } else {
    std::uint64_t link = 0;
    for (NodeId v = 0; v < view.node_begin; ++v) link += g.degree(v);
    view.link_begin = link;
    for (NodeId v = view.node_begin; v < view.node_end; ++v) {
      link += g.degree(v);
    }
    view.link_end = link;
  }
  return view;
}

}  // namespace oraclesize
