// Edge-subdivision construction G_{n,S} (proof of Theorem 2.2).
//
// Given a base network and a tuple S = (e_1, ..., e_t) of distinct edges, a
// new node w_i is inserted in the middle of each e_i = {u_i, v_i}: the port
// numbers at u_i and v_i are unchanged, and w_i (of degree 2) uses port 0
// towards its smaller-labeled endpoint and port 1 towards the other. The
// inserted nodes receive labels n+1, ..., n+t in tuple order — for the
// wakeup lower bound the *label* of the hidden node encodes the position of
// its edge in S, which is exactly what makes the adversary's instance family
// of size n! * (C(n,2) choose n) possible.
#pragma once

#include <vector>

#include "graph/port_graph.h"
#include "util/rng.h"

namespace oraclesize {

/// A subdivided graph together with the bookkeeping the lower-bound
/// experiments need.
struct SubdividedGraph {
  PortGraph graph;                 ///< base nodes keep their ids; w_i appended
  std::vector<Edge> subdivided;    ///< S, as edges of the base graph
  std::vector<NodeId> hidden;      ///< hidden[i] = id of w_i (label base_n+i+1)
};

/// Subdivides the given (distinct, normalized u < v) edges of `base`.
/// Throws std::invalid_argument on duplicate or non-existent edges.
SubdividedGraph subdivide_edges(const PortGraph& base,
                                const std::vector<Edge>& edges);

/// Samples `count` distinct edges of K*_n uniformly at random, without
/// materializing the complete graph (ports computed by the circulant rule).
std::vector<Edge> random_complete_star_edges(std::size_t n, std::size_t count,
                                             Rng& rng);

/// The wakeup lower-bound family: K*_n with `num_subdivided` random distinct
/// edges subdivided (num_subdivided = n in Theorem 2.2; c*n in the Remark).
/// The source is node id 0 (label 1). Requires num_subdivided <= C(n,2).
SubdividedGraph make_gns(std::size_t n, std::size_t num_subdivided, Rng& rng);

}  // namespace oraclesize
