#include "graph/clique_replace.h"

#include <set>
#include <stdexcept>

#include "graph/complete_star.h"
#include "graph/subdivision.h"

namespace oraclesize {

Port clique_port(std::size_t k, int a, int b) {
  if (a < 1 || b < 1 || a > static_cast<int>(k) || b > static_cast<int>(k) ||
      a == b) {
    throw std::invalid_argument("clique_port: bad local indices");
  }
  const std::size_t diff =
      (static_cast<std::size_t>(b) + k - static_cast<std::size_t>(a)) % k;
  return static_cast<Port>(diff - 1);
}

CliqueReplacedGraph make_gnsc(std::size_t n, std::size_t k,
                              const std::vector<Edge>& s,
                              const std::vector<std::pair<int, int>>& c) {
  if (k < 2) throw std::invalid_argument("make_gnsc: k >= 2 required");
  if (n == 0 || n % (4 * k) != 0) {
    throw std::invalid_argument("make_gnsc: 4k must divide n");
  }
  const std::size_t q = n / k;  // number of cliques
  if (s.size() != q || c.size() != q) {
    throw std::invalid_argument("make_gnsc: |S| and |C| must equal n/k");
  }

  CliqueReplacedGraph out;
  out.n = n;
  out.k = k;
  out.s = s;
  out.c = c;
  out.graph = PortGraph(2 * n);

  // Replaced edges of K*_n, with validation.
  std::set<std::pair<NodeId, NodeId>> replaced;
  for (const Edge& e : s) {
    if (e.u >= e.v || e.v >= n ||
        e.port_u != complete_star_port(n, e.u, e.v) ||
        e.port_v != complete_star_port(n, e.v, e.u)) {
      throw std::invalid_argument("make_gnsc: S edge not an edge of K*_n");
    }
    if (!replaced.insert({e.u, e.v}).second) {
      throw std::invalid_argument("make_gnsc: duplicate edge in S");
    }
  }

  // K*_n edges that survive.
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (replaced.count({i, j})) continue;
      out.graph.add_edge(i, complete_star_port(n, i, j), j,
                         complete_star_port(n, j, i));
    }
  }

  // Cliques H_i with the edge f_i = {a_i, b_i} removed, then the two
  // attachment edges {a_i, u_i} and {b_i, v_i} with inherited ports.
  for (std::size_t i = 0; i < q; ++i) {
    const auto [ai, bi] = c[i];
    if (ai < 1 || bi <= ai || bi > static_cast<int>(k)) {
      throw std::invalid_argument("make_gnsc: bad (a_i, b_i) in C");
    }
    for (int a = 1; a <= static_cast<int>(k); ++a) {
      for (int b = a + 1; b <= static_cast<int>(k); ++b) {
        if (a == ai && b == bi) continue;  // f_i removed
        out.graph.add_edge(out.clique_node(i, a), clique_port(k, a, b),
                           out.clique_node(i, b), clique_port(k, b, a));
      }
    }
    const Edge& e = s[i];  // e.u = u_i (smaller label), e.v = v_i
    out.graph.add_edge(e.u, e.port_u, out.clique_node(i, ai),
                       clique_port(k, ai, bi));
    out.graph.add_edge(e.v, e.port_v, out.clique_node(i, bi),
                       clique_port(k, bi, ai));
  }
  out.graph.freeze();
  return out;
}

CliqueReplacedGraph make_random_gnsc(std::size_t n, std::size_t k, Rng& rng) {
  if (k < 2) throw std::invalid_argument("make_random_gnsc: k >= 2 required");
  if (n == 0 || n % (4 * k) != 0) {
    throw std::invalid_argument("make_random_gnsc: 4k must divide n");
  }
  const std::size_t q = n / k;
  std::vector<Edge> s = random_complete_star_edges(n, q, rng);
  std::vector<std::pair<int, int>> c;
  c.reserve(q);
  for (std::size_t i = 0; i < q; ++i) {
    int a = 1 + static_cast<int>(rng.below(k));
    int b = 1 + static_cast<int>(rng.below(k - 1));
    if (b >= a) ++b;
    if (a > b) std::swap(a, b);
    c.emplace_back(a, b);
  }
  return make_gnsc(n, k, s, c);
}

}  // namespace oraclesize
