#include "graph/io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace oraclesize {

void write_port_graph(std::ostream& os, const PortGraph& g) {
  os << "portgraph " << g.num_nodes() << "\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.label(v) != static_cast<Label>(v) + 1) {
      os << "label " << v << " " << g.label(v) << "\n";
    }
  }
  for (const Edge& e : g.edges()) {
    os << "edge " << e.u << " " << e.port_u << " " << e.v << " " << e.port_v
       << "\n";
  }
}

std::string to_text(const PortGraph& g) {
  std::ostringstream os;
  write_port_graph(os, g);
  return os.str();
}

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  std::ostringstream os;
  os << "read_port_graph: line " << line << ": " << what;
  throw std::invalid_argument(os.str());
}

}  // namespace

PortGraph read_port_graph(std::istream& is) {
  PortGraph g;
  bool seen_header = false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank or comment-only line

    if (keyword == "portgraph") {
      if (seen_header) fail(lineno, "duplicate header");
      std::size_t n = 0;
      if (!(ls >> n)) fail(lineno, "bad node count");
      g = PortGraph(n);
      seen_header = true;
    } else if (keyword == "label") {
      if (!seen_header) fail(lineno, "label before header");
      NodeId v = 0;
      Label label = 0;
      if (!(ls >> v >> label) || v >= g.num_nodes()) {
        fail(lineno, "bad label line");
      }
      g.set_label(v, label);
    } else if (keyword == "edge") {
      if (!seen_header) fail(lineno, "edge before header");
      NodeId u = 0, v = 0;
      Port pu = 0, pv = 0;
      if (!(ls >> u >> pu >> v >> pv)) fail(lineno, "bad edge line");
      try {
        g.add_edge(u, pu, v, pv);
      } catch (const std::exception& e) {
        fail(lineno, e.what());
      }
    } else {
      fail(lineno, "unknown keyword '" + keyword + "'");
    }
    std::string extra;
    if (ls >> extra) fail(lineno, "trailing tokens");
  }
  if (!seen_header) {
    throw std::invalid_argument("read_port_graph: missing header");
  }
  return g;
}

PortGraph from_text(const std::string& text) {
  std::istringstream is(text);
  return read_port_graph(is);
}

}  // namespace oraclesize
