#include "graph/io.h"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "graph/validate.h"

namespace oraclesize {

void write_port_graph(std::ostream& os, const PortGraph& g) {
  os << "portgraph " << g.num_nodes() << "\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.label(v) != static_cast<Label>(v) + 1) {
      os << "label " << v << " " << g.label(v) << "\n";
    }
  }
  for (const Edge& e : g.edges()) {
    os << "edge " << e.u << " " << e.port_u << " " << e.v << " " << e.port_v
       << "\n";
  }
}

std::string to_text(const PortGraph& g) {
  std::ostringstream os;
  write_port_graph(os, g);
  return os.str();
}

namespace {

std::string format_parse_error(std::size_t line, const std::string& detail) {
  std::ostringstream os;
  os << "read_port_graph: ";
  if (line > 0) os << "line " << line << ": ";
  os << detail;
  return os.str();
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw GraphParseError(line, what);
}

/// Strict unsigned parse: digits only. `operator>>` into an unsigned type
/// accepts "-5" and wraps it silently — that path must never see hostile
/// input. Rejects empty tokens, signs, hex/float syntax, and overflow.
bool parse_u64(const std::string& token, std::uint64_t& out) {
  if (token.empty()) return false;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (kMax - digit) / 10) return false;  // would overflow
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

/// Pulls the next whitespace-separated token off `ls` and strictly parses
/// it as a u64 below `bound` (exclusive); fails the line otherwise.
std::uint64_t next_number(std::istringstream& ls, std::size_t lineno,
                          const char* field, std::uint64_t bound,
                          const char* bound_what) {
  std::string token;
  std::uint64_t value = 0;
  if (!(ls >> token) || !parse_u64(token, value)) {
    fail(lineno, std::string("bad ") + field + " (expected an unsigned "
                     "integer, got '" + token + "')");
  }
  if (value >= bound) {
    fail(lineno, std::string(field) + " " + token + " out of range (" +
                     bound_what + ")");
  }
  return value;
}

}  // namespace

GraphParseError::GraphParseError(std::size_t line, const std::string& detail)
    : std::invalid_argument(format_parse_error(line, detail)),
      line_(line),
      detail_(detail) {}

PortGraph read_port_graph(std::istream& is, const ParseLimits& limits) {
  PortGraph g;
  bool seen_header = false;
  std::string line;
  std::size_t lineno = 0;
  constexpr std::uint64_t kNoBound = std::numeric_limits<std::uint64_t>::max();
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank or comment-only line

    if (keyword == "portgraph") {
      if (seen_header) fail(lineno, "duplicate header");
      // The limit check precedes construction: `portgraph 4000000000`
      // must fail here, not inside a giant PortGraph allocation.
      const std::uint64_t n =
          next_number(ls, lineno, "node count",
                      static_cast<std::uint64_t>(limits.max_nodes) + 1,
                      "exceeds ParseLimits::max_nodes");
      g = PortGraph(static_cast<std::size_t>(n));
      seen_header = true;
    } else if (keyword == "label") {
      if (!seen_header) fail(lineno, "label before header");
      const std::uint64_t v = next_number(ls, lineno, "label node",
                                          g.num_nodes(), "not a node");
      const std::uint64_t label =
          next_number(ls, lineno, "label value", kNoBound, "");
      g.set_label(static_cast<NodeId>(v), label);
    } else if (keyword == "edge") {
      if (!seen_header) fail(lineno, "edge before header");
      // Ports are bounded by the node count too: a node's ports are
      // 0..deg-1 and deg <= n-1 in a simple graph, so any port >= n is
      // malformed — and letting it through would let one line drive an
      // n-sized adjacency row to arbitrary length.
      const std::uint64_t u =
          next_number(ls, lineno, "edge endpoint", g.num_nodes(), "not a node");
      const std::uint64_t pu = next_number(ls, lineno, "edge port",
                                           g.num_nodes(), "port >= num nodes");
      const std::uint64_t v =
          next_number(ls, lineno, "edge endpoint", g.num_nodes(), "not a node");
      const std::uint64_t pv = next_number(ls, lineno, "edge port",
                                           g.num_nodes(), "port >= num nodes");
      try {
        g.add_edge(static_cast<NodeId>(u), static_cast<Port>(pu),
                   static_cast<NodeId>(v), static_cast<Port>(pv));
      } catch (const std::exception& e) {
        fail(lineno, e.what());
      }
    } else {
      fail(lineno, "unknown keyword '" + keyword + "'");
    }
    std::string extra;
    if (ls >> extra) fail(lineno, "trailing tokens");
  }
  if (!seen_header) fail(0, "missing header");
  // Structural post-check: the per-line checks cannot see port-map holes
  // (edge on port 2 with port 0 never filled) or any asymmetry a future
  // format extension might introduce. Nothing downstream has to defend
  // against a parsed-but-malformed graph.
  const std::string invalid = validate_ports(g);
  if (!invalid.empty()) fail(0, "invalid graph: " + invalid);
  g.freeze();  // validated: dense ports, so freeze cannot fail
  return g;
}

PortGraph from_text(const std::string& text, const ParseLimits& limits) {
  std::istringstream is(text);
  return read_port_graph(is, limits);
}

}  // namespace oraclesize
