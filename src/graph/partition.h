// Contiguous node-range partitions of a port graph, balanced on edge mass.
//
// The sharded engine (sim/sharded_engine.h) splits a run across shards that
// each own a contiguous range of node ids. Contiguity is what makes the
// scheme cheap and correct at once:
//
//  * ownership is a single upper_bound over S+1 boundaries (shard_of);
//  * every per-node array (inputs, behaviors, informed bits, outputs) is
//    carved into disjoint slices with no indirection table;
//  * the CSR rows of a shard's nodes are one contiguous span of the frozen
//    endpoint array — a ShardView is three pointers, not a subgraph copy.
//
// Boundaries are chosen by balancing *directed links* (edge endpoints), not
// node counts: the engine's per-event work is proportional to degree, so a
// degree-skewed graph partitioned by node count would leave one shard doing
// most of the work. make_partition walks the CSR offset array (the exact
// prefix-degree curve) and cuts at the nodes nearest the ideal equal-mass
// points. On machines with multiple memory domains this is also the
// cache/NUMA placement pass: each shard's slice of the CSR is touched only
// by the worker that owns it, so first-touch page placement localizes it.
//
// An optional alignment rounds boundaries down to a multiple (default 64)
// so two shards never share the cache line under neighboring per-node
// counters. Alignment is purely a performance knob: it is applied only when
// the graph is large enough (n >= shards * alignment) that it cannot starve
// shards, so small test graphs still shard at any requested count.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/port_graph.h"

namespace oraclesize {

struct PartitionOptions {
  /// Number of shards; 0 picks one per available hardware thread.
  std::uint32_t shards = 0;
  /// A graph with fewer nodes than shards * min_nodes_per_shard gets its
  /// shard count reduced (never below 1) so no shard is trivially empty.
  std::uint32_t min_nodes_per_shard = 1;
  /// Boundary alignment in nodes; see the header comment. 0 disables.
  std::uint32_t alignment = 64;
};

/// A partition of nodes 0..n-1 into contiguous ranges
/// [bounds[i], bounds[i+1]). bounds has num_shards()+1 strictly increasing
/// entries with bounds.front() == 0 and bounds.back() == n (except for the
/// empty graph, which partitions into one empty shard).
struct Partition {
  std::vector<NodeId> bounds;

  std::uint32_t num_shards() const noexcept {
    return bounds.size() < 2
               ? 1u
               : static_cast<std::uint32_t>(bounds.size() - 1);
  }
  NodeId begin(std::uint32_t shard) const noexcept { return bounds[shard]; }
  NodeId end(std::uint32_t shard) const noexcept { return bounds[shard + 1]; }
  std::size_t size(std::uint32_t shard) const noexcept {
    return end(shard) - begin(shard);
  }

  /// Owner shard of node v. Precondition: v < bounds.back().
  std::uint32_t shard_of(NodeId v) const noexcept {
    // upper_bound over at most a few dozen boundaries; branchy but cold
    // compared to the per-event work it gates.
    std::uint32_t lo = 0, hi = num_shards() - 1;
    while (lo < hi) {
      const std::uint32_t mid = (lo + hi) / 2;
      if (v < bounds[mid + 1]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }
};

/// A shard's window into a frozen graph's CSR: its node range plus the
/// contiguous slice of the endpoint array covering exactly those nodes'
/// adjacency rows. `link_begin + p` relative to `endpoints` recovers
/// endpoint(v, p) as endpoints[offsets[v] - link_begin + p]. For unfrozen
/// graphs (hand-built test graphs) `endpoints`/`offsets` are null and the
/// engine falls back to checked accessors.
struct ShardView {
  NodeId node_begin = 0;
  NodeId node_end = 0;
  std::uint64_t link_begin = 0;  ///< first directed-link id owned
  std::uint64_t link_end = 0;    ///< one past the last owned link id
  const Endpoint* endpoints = nullptr;    ///< full CSR array (global index)
  const std::uint64_t* offsets = nullptr; ///< full offset array (n + 1)

  std::size_t num_nodes() const noexcept { return node_end - node_begin; }
  std::size_t num_links() const noexcept {
    return static_cast<std::size_t>(link_end - link_begin);
  }
};

/// Builds an edge-mass-balanced contiguous partition of g. Works on both
/// frozen graphs (reads csr_offsets directly) and builder graphs (computes
/// the prefix-degree curve). The result always satisfies the Partition
/// invariants; requesting more shards than the graph supports yields fewer.
Partition make_partition(const PortGraph& g, const PartitionOptions& options);

/// The CSR window of one shard. Precondition: shard < p.num_shards() and p
/// was built for g.
ShardView make_shard_view(const PortGraph& g, const Partition& p,
                          std::uint32_t shard);

}  // namespace oraclesize
