// Plain-text serialization of port-labeled graphs.
//
// Format (line oriented, '#' comments allowed):
//
//   portgraph <num_nodes>
//   label <node> <label>            # optional; defaults to node+1
//   edge <u> <port_u> <v> <port_v>
//
// Round-trips every PortGraph exactly (structure, ports, labels). Used by
// the CLI to pipe networks between tools and by users to persist workloads.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/port_graph.h"

namespace oraclesize {

/// Writes g in the text format above.
void write_port_graph(std::ostream& os, const PortGraph& g);
std::string to_text(const PortGraph& g);

/// Parses the text format. Throws std::invalid_argument with a line number
/// on any malformed input.
PortGraph read_port_graph(std::istream& is);
PortGraph from_text(const std::string& text);

}  // namespace oraclesize
