// Plain-text serialization of port-labeled graphs.
//
// Format (line oriented, '#' comments allowed):
//
//   portgraph <num_nodes>
//   label <node> <label>            # optional; defaults to node+1
//   edge <u> <port_u> <v> <port_v>
//
// Round-trips every PortGraph exactly (structure, ports, labels). Used by
// the CLI to pipe networks between tools and by users to persist workloads.
//
// The parser is hardened against hostile input (tests/test_fuzz.cpp feeds
// it mutated files): every number is parsed strictly (digits only — no
// sign-wrapping through `operator>>` into unsigned), resource-exhausting
// node counts are rejected by ParseLimits BEFORE any allocation, ports are
// range-checked before they can drive adjacency growth, and the finished
// graph is structurally validated (no port holes, symmetric neighbor
// relation). Every rejection is a GraphParseError carrying the offending
// line number.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/port_graph.h"

namespace oraclesize {

/// Caps guarding the parser against resource exhaustion: a one-line file
/// `portgraph 4000000000` must not be able to drive a multi-gigabyte
/// allocation. Ports need no separate cap — a simple graph's ports are
/// strictly below its node count, and the parser enforces exactly that.
struct ParseLimits {
  std::size_t max_nodes = std::size_t{1} << 24;
};

/// Structured parse failure: the 1-based line of the offending input (0
/// when the failure is about the file as a whole, e.g. a missing header)
/// and the bare diagnostic. Derives from std::invalid_argument so existing
/// catch sites keep working; what() combines both parts.
class GraphParseError : public std::invalid_argument {
 public:
  GraphParseError(std::size_t line, const std::string& detail);

  std::size_t line() const noexcept { return line_; }
  const std::string& detail() const noexcept { return detail_; }

 private:
  std::size_t line_;
  std::string detail_;
};

/// Writes g in the text format above.
void write_port_graph(std::ostream& os, const PortGraph& g);
std::string to_text(const PortGraph& g);

/// Parses the text format. Throws GraphParseError (an
/// std::invalid_argument) with line context on any malformed input; never
/// asserts or invokes UB, whatever the bytes. The returned graph always
/// satisfies validate_ports (graph/validate.h).
PortGraph read_port_graph(std::istream& is, const ParseLimits& limits = {});
PortGraph from_text(const std::string& text, const ParseLimits& limits = {});

}  // namespace oraclesize
