// The light spanning tree of Claim 3.1 — the heart of the O(n) broadcast
// oracle (Theorem 3.1).
//
// With edge weights w(e) = min{port_u(e), port_v(e)} and #2(w) the binary
// length of w, Claim 3.1 constructs a spanning tree T0 with
//
//     sum over e in T0 of #2(w(e))  <=  4n.
//
// The construction is a phased Boruvka/Kruskal hybrid: in phase k every
// "small" tree (fewer than 2^k nodes) selects a minimum-weight edge leaving
// it; all selected edges are added and one edge per created cycle is erased.
// Small trees at phase k have fewer than 2^k nodes, so the port used never
// exceeds 2^k - 2, bounding that edge's contribution by k; with at most
// n/2^{k-1} trees in phase k the total telescopes to <= 4n.
#pragma once

#include "graph/port_graph.h"
#include "graph/spanning_tree.h"

namespace oraclesize {

/// Per-phase accounting of the construction (exported for tests and the E3
/// benchmark, which reproduces the telescoping bound).
struct LightTreePhase {
  int phase = 0;                   ///< k
  std::size_t trees_before = 0;    ///< trees at the start of the phase
  std::size_t small_trees = 0;     ///< |T_small(k)|
  std::size_t edges_added = 0;     ///< selected edges that merged trees
  std::size_t edges_erased = 0;    ///< selected edges erased (cycle-closing)
  std::uint64_t contribution = 0;  ///< C_k = sum of #2(w) over added edges
};

struct LightTreeResult {
  SpanningTree tree;
  std::vector<LightTreePhase> phases;
  std::uint64_t contribution = 0;  ///< sum of #2(w(e)) over tree edges
};

/// Runs the Claim 3.1 construction on a connected graph. O(m log n).
LightTreeResult light_tree(const PortGraph& g, NodeId root);

}  // namespace oraclesize
