#include "graph/light_tree.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>

#include "util/mathx.h"

namespace oraclesize {

namespace {

class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n), size_(n, 1), count_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --count_;
    return true;
  }
  std::size_t size_of(std::size_t x) { return size_[find(x)]; }
  std::size_t num_components() const noexcept { return count_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t count_;
};

}  // namespace

LightTreeResult light_tree(const PortGraph& g, NodeId root) {
  const std::size_t n = g.num_nodes();
  if (n == 0) throw std::invalid_argument("light_tree: empty graph");

  Dsu dsu(n);
  std::vector<Edge> forest;
  forest.reserve(n - 1);
  LightTreeResult result;

  // Edges in ascending-weight order (stable counting sort, weights are
  // ports bounded by the max degree), held as compact {u, port_u} handles
  // resolved against the graph's own adjacency — the O(m) Edge list is
  // never materialized, which on dense graphs halves the memory this pass
  // touches. The enumeration below (u ascending, port ascending, kept when
  // u < neighbor) IS g.edges() order, so scanning the sorted handles the
  // FIRST outgoing edge a component meets is its minimum-weight one with
  // exactly the historical tie-break (lowest g.edges() index among equal
  // weights) — a phase stops scanning as soon as every small tree has been
  // assigned an edge, instead of walking all m edges to keep running
  // minima.
  struct EdgeRef {
    NodeId u;
    Port pu;
  };
  std::vector<EdgeRef> order;
  {
    std::size_t max_deg = 0;
    for (NodeId u = 0; u < n; ++u) {
      max_deg = std::max(max_deg, g.neighbors(u).size());
    }
    std::vector<std::size_t> bucket_start(max_deg + 2, 0);
    std::size_t m = 0;
    for (NodeId u = 0; u < n; ++u) {
      const std::span<const Endpoint> row = g.neighbors(u);
      for (Port p = 0; p < row.size(); ++p) {
        const Endpoint e = row[p];
        if (e.node == kNoNode || u >= e.node) continue;
        ++bucket_start[std::min<Port>(p, e.port) + 1];
        ++m;
      }
    }
    for (std::size_t w = 1; w < bucket_start.size(); ++w) {
      bucket_start[w] += bucket_start[w - 1];
    }
    order.resize(m);
    for (NodeId u = 0; u < n; ++u) {
      const std::span<const Endpoint> row = g.neighbors(u);
      for (Port p = 0; p < row.size(); ++p) {
        const Endpoint e = row[p];
        if (e.node == kNoNode || u >= e.node) continue;
        order[bucket_start[std::min<Port>(p, e.port)]++] = EdgeRef{u, p};
      }
    }
  }
  // best[rep] holds the chosen edge as a packed (u << 32) | port_u key;
  // the packing is monotone in (u, port_u), i.e. in g.edges() order, so
  // sorting keys reproduces the historical pick-processing order.
  constexpr std::uint64_t kUnset = std::numeric_limits<std::uint64_t>::max();
  const auto pack = [](const EdgeRef r) {
    return (static_cast<std::uint64_t>(r.u) << 32) | r.pu;
  };
  // A flat best[] array (reps are node ids) reset via the touched list —
  // no hashing on the inner loop.
  std::vector<std::uint64_t> best(n, kUnset);
  std::vector<std::size_t> touched;

  // Phases k = 1, 2, ...: every tree of size < 2^k selects a minimum-weight
  // outgoing edge; selected edges are merged in, cycle-closing ones erased.
  // Components only grow, so after at most ceil(log2 n) + 1 phases every
  // tree is "small or alone" and the forest is a single spanning tree.
  for (int k = 1; dsu.num_components() > 1; ++k) {
    if (k > 64) throw std::logic_error("light_tree: disconnected graph?");
    LightTreePhase phase;
    phase.phase = k;
    phase.trees_before = dsu.num_components();
    const std::size_t small_limit = (k < 63) ? (std::size_t{1} << k) : n + 1;

    // In a connected graph every component (while there are >= 2) has an
    // outgoing edge, so exactly this many assignments will happen.
    std::size_t needed = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (dsu.find(v) == v && dsu.size_of(v) < small_limit) ++needed;
    }

    // The scan also permanently compacts internal edges out of `order`: an
    // edge whose endpoints share a component can never leave one again.
    // Relative (weight, index) order is preserved; on early exit the
    // unscanned tail is kept verbatim.
    touched.clear();
    std::size_t out = 0;
    std::size_t i = 0;
    for (; i < order.size() && touched.size() < needed; ++i) {
      const EdgeRef ref = order[i];
      const Endpoint other = g.neighbors(ref.u)[ref.pu];
      const std::size_t ru = dsu.find(ref.u);
      const std::size_t rv = dsu.find(other.node);
      if (ru == rv) continue;  // internal: compacted away for good
      order[out++] = ref;
      for (const std::size_t r : {ru, rv}) {
        if (dsu.size_of(r) >= small_limit) continue;
        if (best[r] == kUnset) {
          best[r] = pack(ref);  // first seen = lightest, earliest tie-break
          touched.push_back(r);
        }
      }
    }
    for (; i < order.size(); ++i) order[out++] = order[i];
    order.resize(out);
    phase.small_trees = touched.size();

    // Two trees may select the same edge; add it once (no cycle arises).
    std::vector<std::uint64_t> picks;
    picks.reserve(touched.size());
    for (const std::size_t rep : touched) {
      picks.push_back(best[rep]);
      best[rep] = kUnset;  // reset for the next phase
    }
    std::sort(picks.begin(), picks.end());
    picks.erase(std::unique(picks.begin(), picks.end()), picks.end());

    for (const std::uint64_t key : picks) {
      const NodeId u = static_cast<NodeId>(key >> 32);
      const Port pu = static_cast<Port>(key);
      const Endpoint other = g.neighbors(u)[pu];
      const Edge e{u, pu, other.node, other.port};
      if (dsu.unite(e.u, e.v)) {
        forest.push_back(e);
        ++phase.edges_added;
        phase.contribution += static_cast<std::uint64_t>(num_bits(e.weight()));
      } else {
        ++phase.edges_erased;  // closed a cycle among this phase's picks
      }
    }
    if (phase.small_trees > 0) result.phases.push_back(phase);
    if (phase.trees_before > 1 && phase.edges_added == 0 &&
        phase.small_trees > 0) {
      throw std::logic_error("light_tree: stuck (graph disconnected)");
    }
  }

  for (const LightTreePhase& p : result.phases) {
    result.contribution += p.contribution;
  }
  result.tree = SpanningTree::from_edges(g, root, forest);
  return result;
}

}  // namespace oraclesize
