#include "graph/light_tree.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "util/mathx.h"

namespace oraclesize {

namespace {

class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n), size_(n, 1), count_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --count_;
    return true;
  }
  std::size_t size_of(std::size_t x) { return size_[find(x)]; }
  std::size_t num_components() const noexcept { return count_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t count_;
};

}  // namespace

LightTreeResult light_tree(const PortGraph& g, NodeId root) {
  const std::size_t n = g.num_nodes();
  if (n == 0) throw std::invalid_argument("light_tree: empty graph");
  const std::vector<Edge> all_edges = g.edges();

  Dsu dsu(n);
  std::vector<Edge> forest;
  forest.reserve(n - 1);
  LightTreeResult result;

  // Phases k = 1, 2, ...: every tree of size < 2^k selects a minimum-weight
  // outgoing edge; selected edges are merged in, cycle-closing ones erased.
  // Components only grow, so after at most ceil(log2 n) + 1 phases every
  // tree is "small or alone" and the forest is a single spanning tree.
  for (int k = 1; dsu.num_components() > 1; ++k) {
    if (k > 64) throw std::logic_error("light_tree: disconnected graph?");
    LightTreePhase phase;
    phase.phase = k;
    phase.trees_before = dsu.num_components();
    const std::size_t small_limit = (k < 63) ? (std::size_t{1} << k) : n + 1;

    // best[rep] = index into all_edges of the lightest edge leaving the
    // small tree represented by rep.
    std::unordered_map<std::size_t, std::size_t> best;
    for (std::size_t idx = 0; idx < all_edges.size(); ++idx) {
      const Edge& e = all_edges[idx];
      const std::size_t ru = dsu.find(e.u);
      const std::size_t rv = dsu.find(e.v);
      if (ru == rv) continue;
      for (const std::size_t r : {ru, rv}) {
        if (dsu.size_of(r) >= small_limit) continue;
        auto [it, inserted] = best.emplace(r, idx);
        if (!inserted && e.weight() < all_edges[it->second].weight()) {
          it->second = idx;
        }
      }
    }
    phase.small_trees = best.size();

    // Two trees may select the same edge; add it once (no cycle arises).
    std::vector<std::size_t> picks;
    picks.reserve(best.size());
    for (const auto& [rep, idx] : best) picks.push_back(idx);
    std::sort(picks.begin(), picks.end());
    picks.erase(std::unique(picks.begin(), picks.end()), picks.end());

    for (const std::size_t idx : picks) {
      const Edge& e = all_edges[idx];
      if (dsu.unite(e.u, e.v)) {
        forest.push_back(e);
        ++phase.edges_added;
        phase.contribution += static_cast<std::uint64_t>(num_bits(e.weight()));
      } else {
        ++phase.edges_erased;  // closed a cycle among this phase's picks
      }
    }
    if (phase.small_trees > 0) result.phases.push_back(phase);
    if (phase.trees_before > 1 && phase.edges_added == 0 &&
        phase.small_trees > 0) {
      throw std::logic_error("light_tree: stuck (graph disconnected)");
    }
  }

  for (const LightTreePhase& p : result.phases) {
    result.contribution += p.contribution;
  }
  result.tree = SpanningTree::from_edges(g, root, forest);
  return result;
}

}  // namespace oraclesize
