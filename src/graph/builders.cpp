#include "graph/builders.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "graph/validate.h"

namespace oraclesize {

PortGraph make_path(std::size_t n) {
  if (n < 1) throw std::invalid_argument("make_path: n >= 1 required");
  PortGraph g(n);
  for (std::size_t v = 0; v + 1 < n; ++v) {
    g.add_edge_auto(static_cast<NodeId>(v), static_cast<NodeId>(v + 1));
  }
  g.freeze();
  return g;
}

PortGraph make_cycle(std::size_t n) {
  if (n < 3) throw std::invalid_argument("make_cycle: n >= 3 required");
  PortGraph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    g.add_edge_auto(static_cast<NodeId>(v), static_cast<NodeId>((v + 1) % n));
  }
  g.freeze();
  return g;
}

PortGraph make_star(std::size_t n) {
  if (n < 2) throw std::invalid_argument("make_star: n >= 2 required");
  PortGraph g(n);
  for (std::size_t v = 1; v < n; ++v) {
    g.add_edge_auto(0, static_cast<NodeId>(v));
  }
  g.freeze();
  return g;
}

PortGraph make_grid(std::size_t rows, std::size_t cols) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("make_grid: dimensions >= 1 required");
  }
  PortGraph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge_auto(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge_auto(id(r, c), id(r + 1, c));
    }
  }
  g.freeze();
  return g;
}

PortGraph make_hypercube(int d) {
  if (d < 0 || d > 20) throw std::invalid_argument("make_hypercube: bad d");
  const std::size_t n = std::size_t{1} << d;
  PortGraph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (int b = 0; b < d; ++b) {
      const std::size_t u = v ^ (std::size_t{1} << b);
      if (v < u) {
        // Port = dimension index on both sides: the canonical hypercube
        // port labeling.
        g.add_edge(static_cast<NodeId>(v), static_cast<Port>(b),
                   static_cast<NodeId>(u), static_cast<Port>(b));
      }
    }
  }
  g.freeze();
  return g;
}

PortGraph make_binary_tree(std::size_t n) {
  if (n < 1) throw std::invalid_argument("make_binary_tree: n >= 1 required");
  PortGraph g(n);
  for (std::size_t v = 1; v < n; ++v) {
    g.add_edge_auto(static_cast<NodeId>((v - 1) / 2), static_cast<NodeId>(v));
  }
  g.freeze();
  return g;
}

PortGraph make_random_tree(std::size_t n, Rng& rng) {
  if (n < 1) throw std::invalid_argument("make_random_tree: n >= 1 required");
  PortGraph g(n);
  if (n == 1) {
    g.freeze();
    return g;
  }
  if (n == 2) {
    g.add_edge_auto(0, 1);
    g.freeze();
    return g;
  }
  // Decode a uniformly random Prufer sequence of length n-2.
  std::vector<std::size_t> prufer(n - 2);
  for (auto& x : prufer) x = static_cast<std::size_t>(rng.below(n));
  std::vector<std::size_t> degree(n, 1);
  for (std::size_t x : prufer) ++degree[x];
  // Min-heap-free decoding: repeatedly attach the smallest leaf.
  std::vector<bool> used(n, false);
  std::size_t leaf_ptr = 0;
  auto next_leaf = [&]() {
    while (degree[leaf_ptr] != 1 || used[leaf_ptr]) ++leaf_ptr;
    return leaf_ptr;
  };
  std::size_t leaf = next_leaf();
  std::size_t cursor = leaf;
  for (std::size_t x : prufer) {
    g.add_edge_auto(static_cast<NodeId>(cursor), static_cast<NodeId>(x));
    used[cursor] = true;
    if (--degree[x] == 1 && x < leaf_ptr) {
      cursor = x;  // x became a leaf smaller than the scan frontier
    } else {
      leaf = next_leaf();
      cursor = leaf;
    }
  }
  // Two nodes remain; connect them.
  std::size_t a = kNoNode, b = kNoNode;
  for (std::size_t v = 0; v < n; ++v) {
    if (!used[v] && degree[v] == 1) {
      (a == kNoNode ? a : b) = v;
    }
  }
  g.add_edge_auto(static_cast<NodeId>(a), static_cast<NodeId>(b));
  g.freeze();
  return g;
}

PortGraph make_random_connected(std::size_t n, double p, Rng& rng) {
  PortGraph tree = make_random_tree(n, rng);
  // Re-add tree edges into a fresh graph, then sprinkle extras.
  PortGraph g(n);
  for (const Edge& e : tree.edges()) g.add_edge_auto(e.u, e.v);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (g.port_towards(u, v) != kNoPort) continue;
      if (rng.chance(p)) g.add_edge_auto(u, v);
    }
  }
  g.freeze();
  return g;
}

PortGraph make_random_connected_sparse(std::size_t n, std::size_t extra,
                                       Rng& rng) {
  if (n < 1) {
    throw std::invalid_argument(
        "make_random_connected_sparse: n >= 1 required");
  }
  const std::size_t tree_edges = n - 1;
  const std::size_t all_pairs = n * (n - 1) / 2;
  if (extra > all_pairs - tree_edges) {
    throw std::invalid_argument(
        "make_random_connected_sparse: extra exceeds the non-tree pairs");
  }
  PortGraph tree = make_random_tree(n, rng);
  PortGraph g(n);
  // Membership set over normalized pairs (u < v), seeded with the tree so
  // rejection sampling never re-adds a spanning edge. Sparse regimes
  // (extra = O(n)) reject rarely; dense requests degrade gracefully because
  // `extra` is capped well below the pair count above.
  std::unordered_set<std::uint64_t> present;
  present.reserve(tree_edges + extra);
  auto pair_key = [n](NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return static_cast<std::uint64_t>(u) * n + v;
  };
  for (const Edge& e : tree.edges()) {
    present.insert(pair_key(e.u, e.v));
    g.add_edge_auto(e.u, e.v);
  }
  std::size_t added = 0;
  while (added < extra) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    if (!present.insert(pair_key(u, v)).second) continue;
    g.add_edge_auto(u, v);
    ++added;
  }
  g.freeze();
  return g;
}

PortGraph make_lollipop(std::size_t n) {
  if (n < 2) throw std::invalid_argument("make_lollipop: n >= 2 required");
  const std::size_t clique = (n + 1) / 2;
  PortGraph g(n);
  for (NodeId u = 0; u < clique; ++u) {
    for (NodeId v = u + 1; v < clique; ++v) g.add_edge_auto(u, v);
  }
  for (std::size_t v = clique; v < n; ++v) {
    g.add_edge_auto(static_cast<NodeId>(v - 1), static_cast<NodeId>(v));
  }
  g.freeze();
  return g;
}

PortGraph make_torus(std::size_t rows, std::size_t cols) {
  if (rows < 3 || cols < 3) {
    throw std::invalid_argument("make_torus: dimensions >= 3 required");
  }
  PortGraph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_edge_auto(id(r, c), id(r, (c + 1) % cols));
      g.add_edge_auto(id(r, c), id((r + 1) % rows, c));
    }
  }
  g.freeze();
  return g;
}

PortGraph make_complete_bipartite(std::size_t a, std::size_t b) {
  if (a < 1 || b < 1) {
    throw std::invalid_argument("make_complete_bipartite: sides >= 1");
  }
  PortGraph g(a + b);
  for (NodeId u = 0; u < a; ++u) {
    for (std::size_t v = a; v < a + b; ++v) {
      g.add_edge_auto(u, static_cast<NodeId>(v));
    }
  }
  g.freeze();
  return g;
}

PortGraph make_wheel(std::size_t n) {
  if (n < 4) throw std::invalid_argument("make_wheel: n >= 4 required");
  PortGraph g(n);
  const std::size_t rim = n - 1;  // nodes 1..n-1; node 0 is the hub
  for (std::size_t i = 0; i < rim; ++i) {
    g.add_edge_auto(static_cast<NodeId>(1 + i),
                    static_cast<NodeId>(1 + (i + 1) % rim));
  }
  for (std::size_t i = 0; i < rim; ++i) {
    g.add_edge_auto(0, static_cast<NodeId>(1 + i));
  }
  g.freeze();
  return g;
}

PortGraph make_caterpillar(std::size_t spine, std::size_t legs) {
  if (spine < 1) throw std::invalid_argument("make_caterpillar: spine >= 1");
  const std::size_t n = spine * (1 + legs);
  PortGraph g(n);
  for (std::size_t s = 0; s + 1 < spine; ++s) {
    g.add_edge_auto(static_cast<NodeId>(s), static_cast<NodeId>(s + 1));
  }
  for (std::size_t s = 0; s < spine; ++s) {
    for (std::size_t l = 0; l < legs; ++l) {
      g.add_edge_auto(static_cast<NodeId>(s),
                      static_cast<NodeId>(spine + s * legs + l));
    }
  }
  g.freeze();
  return g;
}

namespace {

// One configuration-model draw followed by stub-rewiring repair: random
// double-edge swaps involving a defective pair (self-loop or duplicate)
// preserve the degree sequence and quickly drive the defect count to zero
// (the practical standard; plain whole-graph rejection has acceptance
// ~exp(-d^2/4) and dies already at d = 6).
bool try_random_regular(std::size_t n, std::size_t d, Rng& rng,
                        PortGraph& out) {
  std::vector<NodeId> stubs;
  stubs.reserve(n * d);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
  }
  rng.shuffle(stubs);

  const std::size_t m = stubs.size() / 2;
  std::vector<std::pair<NodeId, NodeId>> pairs(m);
  std::map<std::pair<NodeId, NodeId>, int> multiplicity;
  auto key = [](NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  };
  for (std::size_t i = 0; i < m; ++i) {
    pairs[i] = {stubs[2 * i], stubs[2 * i + 1]};
    ++multiplicity[key(pairs[i].first, pairs[i].second)];
  }
  auto defective = [&](std::size_t i) {
    const auto [a, b] = pairs[i];
    return a == b || multiplicity[key(a, b)] > 1;
  };

  // Repair loop: swap a defective pair against a random partner.
  for (std::size_t iter = 0; iter < 200 * m; ++iter) {
    std::size_t bad = m;
    // Scan from a random offset so repeated failures do not starve a pair.
    const std::size_t start = static_cast<std::size_t>(rng.below(m));
    for (std::size_t s = 0; s < m; ++s) {
      const std::size_t i = (start + s) % m;
      if (defective(i)) {
        bad = i;
        break;
      }
    }
    if (bad == m) break;  // simple!
    const std::size_t other = static_cast<std::size_t>(rng.below(m));
    if (other == bad) continue;
    auto& [a, b] = pairs[bad];
    auto& [c, e] = pairs[other];
    // Propose (a,b),(c,e) -> (a,e),(c,b).
    --multiplicity[key(a, b)];
    --multiplicity[key(c, e)];
    std::swap(b, e);
    ++multiplicity[key(a, b)];
    ++multiplicity[key(c, e)];
    if (defective(bad) || defective(other)) {
      // Roll back bad proposals that create new defects elsewhere only if
      // they also failed locally; keeping neutral moves mixes the state.
      --multiplicity[key(a, b)];
      --multiplicity[key(c, e)];
      std::swap(b, e);
      ++multiplicity[key(a, b)];
      ++multiplicity[key(c, e)];
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (defective(i)) return false;
  }
  PortGraph g(n);
  for (const auto& [a, b] : pairs) g.add_edge_auto(a, b);
  g.freeze();  // pure add_edge_auto build: dense ports, freeze cannot fail
  if (!is_connected(g)) return false;
  out = std::move(g);
  return true;
}

}  // namespace

PortGraph make_random_regular(std::size_t n, std::size_t d, Rng& rng,
                              int max_attempts) {
  if (d >= n || (n * d) % 2 != 0 || d < 2) {
    throw std::invalid_argument("make_random_regular: need d>=2, d<n, nd even");
  }
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    PortGraph g;
    if (try_random_regular(n, d, rng, g)) return g;
  }
  throw std::runtime_error("make_random_regular: too many rejected samples");
}

PortGraph shuffle_ports(const PortGraph& g, Rng& rng) {
  const std::size_t n = g.num_nodes();
  // Draw one independent port permutation per node.
  std::vector<std::vector<Port>> perm(n);
  for (NodeId v = 0; v < n; ++v) {
    perm[v].resize(g.degree(v));
    std::iota(perm[v].begin(), perm[v].end(), Port{0});
    rng.shuffle(perm[v]);
  }
  PortGraph out(n);
  for (NodeId v = 0; v < n; ++v) out.set_label(v, g.label(v));
  for (const Edge& e : g.edges()) {
    out.add_edge(e.u, perm[e.u][e.port_u], e.v, perm[e.v][e.port_v]);
  }
  out.freeze();
  return out;
}

}  // namespace oraclesize
