#include "graph/complete_star.h"

#include <stdexcept>

namespace oraclesize {

Port complete_star_port(std::size_t n, NodeId i, NodeId j) {
  if (i >= n || j >= n || i == j) {
    throw std::invalid_argument("complete_star_port: bad endpoints");
  }
  const std::size_t diff = (static_cast<std::size_t>(j) + n -
                            static_cast<std::size_t>(i)) % n;  // in 1..n-1
  return static_cast<Port>(diff - 1);
}

NodeId complete_star_neighbor(std::size_t n, NodeId i, Port p) {
  if (i >= n || p + 1 >= n) {
    throw std::invalid_argument("complete_star_neighbor: bad arguments");
  }
  return static_cast<NodeId>((static_cast<std::size_t>(i) + p + 1) % n);
}

PortGraph make_complete_star(std::size_t n) {
  if (n < 2) throw std::invalid_argument("make_complete_star: n >= 2");
  PortGraph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      g.add_edge(i, complete_star_port(n, i, j), j,
                 complete_star_port(n, j, i));
    }
  }
  g.freeze();
  return g;
}

}  // namespace oraclesize
