// Structural validation of port-labeled graphs.
//
// Every constructed network in tests and benchmarks is passed through these
// checks; the lower-bound families in particular have intricate port
// inheritance rules that are easy to get subtly wrong.
#pragma once

#include <string>
#include <vector>

#include "graph/port_graph.h"

namespace oraclesize {

/// Checks that (a) occupied ports at every node are exactly 0..deg-1 with no
/// holes, (b) the neighbor relation is symmetric, (c) node labels are
/// pairwise distinct, and (d) there are no parallel edges.
/// Returns an empty string if valid, otherwise a human-readable diagnosis of
/// the first violation found.
std::string validate_ports(const PortGraph& g);

/// True iff the graph is connected (every network in the paper is).
bool is_connected(const PortGraph& g);

/// BFS distances from `root`; unreachable nodes get kUnreachable.
inline constexpr std::uint32_t kUnreachable = 0xffffffffu;
std::vector<std::uint32_t> bfs_distances(const PortGraph& g, NodeId root);

}  // namespace oraclesize
