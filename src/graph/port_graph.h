// Port-labeled network model.
//
// The paper models a network as a connected undirected graph whose nodes
// carry distinct labels and whose edge endpoints carry *port numbers*: at a
// node v of degree deg(v) the incident edges are numbered 0..deg(v)-1, and a
// node addresses its neighbors only through these local port numbers (it
// does not a priori know who is at the other end). All algorithms, oracles,
// and lower-bound constructions in this library speak exclusively in terms
// of (node, port).
//
// A PortGraph has two storage states (docs/api.md "Graph storage & freeze"):
//
//  * BUILDER — a nested std::vector<std::vector<Endpoint>> that supports
//    incremental add_edge / add_edge_auto, including out-of-order port
//    slots with temporary holes;
//  * FROZEN — a compact CSR layout (flat offsets[] + endpoints[] arrays)
//    produced by freeze(). Frozen graphs are immutable: the builder
//    mutators throw std::logic_error, every per-port lookup is one array
//    index, and neighbors(v) exposes the whole adjacency row as a
//    contiguous span for allocation-free traversal.
//
// The checked accessors (degree/neighbor/has_port/port_towards/edges)
// answer identically in both states; all graph builders return frozen
// graphs. Hot loops should iterate neighbors(v) or use the _u accessors,
// which skip bounds checks (preconditions documented per member).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace oraclesize {

using NodeId = std::uint32_t;
using Port = std::uint32_t;
using Label = std::uint64_t;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr Port kNoPort = std::numeric_limits<Port>::max();

/// The far side of a port: which node it reaches and on which of *its* ports.
struct Endpoint {
  NodeId node = kNoNode;
  Port port = kNoPort;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// An undirected edge with both port numbers, normalized so that u < v.
struct Edge {
  NodeId u = kNoNode;
  Port port_u = kNoPort;
  NodeId v = kNoNode;
  Port port_v = kNoPort;

  /// The paper's edge weight w(e) = min{port_u(e), port_v(e)} (Section 3).
  Port weight() const noexcept { return port_u < port_v ? port_u : port_v; }

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// An undirected graph with per-endpoint port numbers and per-node labels.
///
/// Invariants (checked by validate_ports in graph/validate.h):
///  * at every node the occupied ports are exactly 0..deg-1;
///  * the port relation is symmetric: neighbor(u,p) == {v,q} iff
///    neighbor(v,q) == {u,p};
///  * labels are pairwise distinct.
///
/// Node ids are dense indices 0..num_nodes()-1; labels default to id+1 so
/// that a freshly built n-node graph is labeled 1..n as in the paper.
class PortGraph {
 public:
  PortGraph() = default;
  explicit PortGraph(std::size_t num_nodes);

  std::size_t num_nodes() const noexcept { return labels_.size(); }
  std::size_t num_edges() const noexcept { return num_edges_; }

  /// Adds an undirected edge between u (at port pu) and v (at port pv).
  /// Port slots may be created out of order; validate_ports() (or freeze())
  /// later checks there are no holes. Throws std::invalid_argument if a
  /// slot is occupied, u == v, or an endpoint is out of range, and
  /// std::logic_error on a frozen graph.
  void add_edge(NodeId u, Port pu, NodeId v, Port pv);

  /// Adds an undirected edge using the lowest free port at each endpoint
  /// (per-node next-free cursors make a pure add_edge_auto build linear in
  /// the edge count); returns the two assigned ports. Throws
  /// std::logic_error on a frozen graph.
  std::pair<Port, Port> add_edge_auto(NodeId u, NodeId v);

  /// Compacts the builder adjacency into the CSR layout and releases the
  /// nested vectors. Requires every node's occupied ports to be exactly
  /// 0..deg-1 (throws std::invalid_argument on a hole). Idempotent; all
  /// read accessors answer identically before and after.
  void freeze();

  /// True once freeze() has run: the graph is immutable CSR.
  bool frozen() const noexcept { return frozen_; }

  /// Degree of v. Throws std::out_of_range for an out-of-range node (via a
  /// cold helper — the hot path is a compare and an array index).
  std::size_t degree(NodeId v) const;

  /// Unchecked degree. Precondition: v < num_nodes() and the graph is
  /// frozen.
  std::size_t degree_u(NodeId v) const noexcept {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// The endpoint reached through port p of node v.
  /// Throws std::out_of_range for a vacant or out-of-range slot.
  Endpoint neighbor(NodeId v, Port p) const;

  /// Unchecked lookup. Precondition: the graph is frozen, v < num_nodes(),
  /// p < degree_u(v).
  Endpoint neighbor_u(NodeId v, Port p) const noexcept {
    return endpoints_[offsets_[v] + p];
  }

  /// The adjacency row of v as a contiguous span: element p is the far
  /// side of port p. Zero-cost on frozen graphs (a slice of the CSR
  /// array); on a builder graph it views the node's slot vector, where a
  /// not-yet-validated graph may still contain vacant slots
  /// (node == kNoNode). Precondition: v < num_nodes().
  std::span<const Endpoint> neighbors(NodeId v) const noexcept {
    if (frozen_) {
      return {endpoints_.data() + offsets_[v], degree_u(v)};
    }
    return {adj_[v].data(), adj_[v].size()};
  }

  /// Raw CSR endpoint array, or nullptr until frozen. Element
  /// offsets[v] + p is neighbor(v, p); the offsets are exactly the
  /// prefix-summed degrees, so the execution engine can index this array
  /// with the directed-link ids it already computes for its per-link
  /// clocks.
  const Endpoint* csr_endpoints() const noexcept {
    return frozen_ ? endpoints_.data() : nullptr;
  }

  /// Raw CSR offset array (n + 1 entries), or nullptr until frozen. Entry v
  /// is the first directed-link id of node v — the prefix-summed degrees the
  /// engine otherwise recomputes per run, and the edge-density curve
  /// graph/partition.h balances shard boundaries on.
  const std::uint64_t* csr_offsets() const noexcept {
    return frozen_ ? offsets_.data() : nullptr;
  }

  /// True iff the port slot exists and is occupied.
  bool has_port(NodeId v, Port p) const noexcept;

  /// Finds the port at u leading to v, or kNoPort if not adjacent.
  /// O(deg(u)).
  Port port_towards(NodeId u, NodeId v) const;

  Label label(NodeId v) const;
  void set_label(NodeId v, Label label);

  /// All edges, normalized (u < v), in ascending (u, port_u) order.
  std::vector<Edge> edges() const;

  /// Resident bytes of the adjacency + label storage in the CURRENT layout
  /// (vector headers and capacity slack included for the builder state; the
  /// flat CSR arrays for the frozen state). The quantity behind the
  /// bytes-per-edge columns of BENCH_perf_csr.json.
  std::size_t memory_bytes() const noexcept;

  /// Graphviz rendering with labels and port annotations (debugging aid).
  std::string to_dot() const;

  /// One-line summary: "PortGraph(n=8, m=12)".
  std::string summary() const;

 private:
  // Builder state (released by freeze()).
  std::vector<std::vector<Endpoint>> adj_;  // adj_[v][port]
  std::vector<Port> next_free_;             // add_edge_auto scan cursors
  // Frozen state: CSR over directed endpoints. offsets_ has n+1 entries;
  // the row of v is endpoints_[offsets_[v] .. offsets_[v+1]). The index
  // offsets_[v] + p is exactly the directed-link id the execution engine
  // keys its per-link clocks and fault decisions on.
  bool frozen_ = false;
  std::vector<std::uint64_t> offsets_;
  std::vector<Endpoint> endpoints_;

  std::vector<Label> labels_;
  std::size_t num_edges_ = 0;
};

}  // namespace oraclesize
