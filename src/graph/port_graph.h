// Port-labeled network model.
//
// The paper models a network as a connected undirected graph whose nodes
// carry distinct labels and whose edge endpoints carry *port numbers*: at a
// node v of degree deg(v) the incident edges are numbered 0..deg(v)-1, and a
// node addresses its neighbors only through these local port numbers (it
// does not a priori know who is at the other end). All algorithms, oracles,
// and lower-bound constructions in this library speak exclusively in terms
// of (node, port).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace oraclesize {

using NodeId = std::uint32_t;
using Port = std::uint32_t;
using Label = std::uint64_t;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr Port kNoPort = std::numeric_limits<Port>::max();

/// The far side of a port: which node it reaches and on which of *its* ports.
struct Endpoint {
  NodeId node = kNoNode;
  Port port = kNoPort;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// An undirected edge with both port numbers, normalized so that u < v.
struct Edge {
  NodeId u = kNoNode;
  Port port_u = kNoPort;
  NodeId v = kNoNode;
  Port port_v = kNoPort;

  /// The paper's edge weight w(e) = min{port_u(e), port_v(e)} (Section 3).
  Port weight() const noexcept { return port_u < port_v ? port_u : port_v; }

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// An undirected graph with per-endpoint port numbers and per-node labels.
///
/// Invariants (checked by validate_ports in graph/validate.h):
///  * at every node the occupied ports are exactly 0..deg-1;
///  * the port relation is symmetric: neighbor(u,p) == {v,q} iff
///    neighbor(v,q) == {u,p};
///  * labels are pairwise distinct.
///
/// Node ids are dense indices 0..num_nodes()-1; labels default to id+1 so
/// that a freshly built n-node graph is labeled 1..n as in the paper.
class PortGraph {
 public:
  PortGraph() = default;
  explicit PortGraph(std::size_t num_nodes);

  std::size_t num_nodes() const noexcept { return adj_.size(); }
  std::size_t num_edges() const noexcept { return num_edges_; }

  /// Adds an undirected edge between u (at port pu) and v (at port pv).
  /// Port slots may be created out of order; validate_ports() later checks
  /// there are no holes. Throws std::invalid_argument if a slot is occupied,
  /// u == v, or an endpoint is out of range.
  void add_edge(NodeId u, Port pu, NodeId v, Port pv);

  /// Adds an undirected edge using the next free (densely increasing) port
  /// at each endpoint; returns the two assigned ports.
  std::pair<Port, Port> add_edge_auto(NodeId u, NodeId v);

  std::size_t degree(NodeId v) const;

  /// The endpoint reached through port p of node v.
  /// Throws std::out_of_range for a vacant or out-of-range slot.
  Endpoint neighbor(NodeId v, Port p) const;

  /// True iff the port slot exists and is occupied.
  bool has_port(NodeId v, Port p) const noexcept;

  /// Finds the port at u leading to v, or kNoPort if not adjacent.
  /// O(deg(u)).
  Port port_towards(NodeId u, NodeId v) const;

  Label label(NodeId v) const;
  void set_label(NodeId v, Label label);

  /// All edges, normalized (u < v), in ascending (u, port_u) order.
  std::vector<Edge> edges() const;

  /// Graphviz rendering with labels and port annotations (debugging aid).
  std::string to_dot() const;

  /// One-line summary: "PortGraph(n=8, m=12)".
  std::string summary() const;

 private:
  std::vector<std::vector<Endpoint>> adj_;  // adj_[v][port]
  std::vector<Label> labels_;
  std::size_t num_edges_ = 0;
};

}  // namespace oraclesize
