// Clique-replacement construction G_{n,S,C} (proof of Theorem 3.2).
//
// For k with 4k | n and an (n/k)-tuple S = (e_1, ..., e_{n/k}) of distinct
// edges of K*_n, each e_i = {u_i, v_i} (label(u_i) < label(v_i)) is replaced
// by a k-clique H_i from which one edge f_i = {a_i, b_i} (local indices,
// a_i < b_i, drawn from the tuple C) is removed; a_i is attached to u_i and
// b_i to v_i, inheriting the port numbers of e_i on the K*_n side and of f_i
// on the clique side. The resulting graph has 2n nodes, every clique node
// has degree k-1, and the cliques are indistinguishable from the outside —
// which is what lets the adversary hide the "exit" edge and force a
// broadcast algorithm with an o(n)-bit oracle to pay a superlinear number of
// messages.
#pragma once

#include <utility>
#include <vector>

#include "graph/port_graph.h"
#include "util/rng.h"

namespace oraclesize {

/// A clique-replaced graph plus the parameters that generated it.
struct CliqueReplacedGraph {
  PortGraph graph;                           ///< 2n nodes
  std::size_t n = 0;                         ///< base K*_n size
  std::size_t k = 0;                         ///< clique size
  std::vector<Edge> s;                       ///< the replaced edges e_i
  std::vector<std::pair<int, int>> c;        ///< (a_i, b_i), 1-based locals

  std::size_t num_cliques() const noexcept { return n / k; }
  /// Node id of the local index a (1..k) of clique i (0-based).
  NodeId clique_node(std::size_t i, int a) const {
    return static_cast<NodeId>(n + i * k + static_cast<std::size_t>(a) - 1);
  }
};

/// Internal port labeling of a k-clique: the port at local node a of the
/// edge towards local node b is ((b - a) mod k) - 1, a bijection onto
/// 0..k-2 (same circulant fix as K*_n; DESIGN.md deviation #1).
Port clique_port(std::size_t k, int a, int b);

/// Builds G_{n,S,C}. Requirements (all checked): k >= 2, 4k divides n,
/// |S| == n/k distinct normalized edges of K*_n, |C| == n/k with
/// 1 <= a_i < b_i <= k. The source is node id 0 (label 1).
CliqueReplacedGraph make_gnsc(std::size_t n, std::size_t k,
                              const std::vector<Edge>& s,
                              const std::vector<std::pair<int, int>>& c);

/// Random member of the family G_{n,k}: S and C drawn uniformly.
CliqueReplacedGraph make_random_gnsc(std::size_t n, std::size_t k, Rng& rng);

}  // namespace oraclesize
