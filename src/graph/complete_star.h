// The canonically port-labeled complete graph K*_n (Section 2 of the paper).
//
// The lower-bound constructions of Theorems 2.2 and 3.2 hide nodes inside
// edges of a complete graph with a *fixed, structure-oblivious* port
// labeling, so that port numbers reveal nothing about where the hidden nodes
// are. The paper labels the port at node i of edge {i,j} as
// (i-j) mod (n-1); for labels 1..n that map is not injective (at node i the
// neighbors 1 and n collide whenever i is neither). We use the standard
// circulant labeling
//
//     port_i({i,j}) = ((j - i) mod n) - 1  in  {0, ..., n-2},
//
// which is a bijection from the n-1 neighbors of i onto its ports and plays
// exactly the same role in all proofs (DESIGN.md deviation #1).
#pragma once

#include "graph/port_graph.h"

namespace oraclesize {

/// Builds K*_n with labels 1..n and circulant ports. Requires n >= 2.
PortGraph make_complete_star(std::size_t n);

/// The circulant port number at node id `i` (0-based) of the edge towards
/// node id `j` (0-based) in K*_n. Requires i != j, both < n.
Port complete_star_port(std::size_t n, NodeId i, NodeId j);

/// Inverse map: which node id does port p of node id i lead to in K*_n.
NodeId complete_star_neighbor(std::size_t n, NodeId i, Port p);

}  // namespace oraclesize
