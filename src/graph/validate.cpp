#include "graph/validate.h"

#include <deque>
#include <sstream>
#include <unordered_set>

namespace oraclesize {

std::string validate_ports(const PortGraph& g) {
  std::ostringstream err;
  std::unordered_set<Label> labels;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!labels.insert(g.label(v)).second) {
      err << "duplicate label " << g.label(v) << " at node " << v;
      return err.str();
    }
    std::unordered_set<NodeId> seen_neighbors;
    const std::size_t deg = g.degree(v);
    for (Port p = 0; p < deg; ++p) {
      if (!g.has_port(v, p)) {
        err << "node " << v << " has a vacant port " << p << " below degree "
            << deg;
        return err.str();
      }
      const Endpoint e = g.neighbor(v, p);
      if (!g.has_port(e.node, e.port)) {
        err << "node " << v << " port " << p << " points to vacant slot";
        return err.str();
      }
      const Endpoint back = g.neighbor(e.node, e.port);
      if (back.node != v || back.port != p) {
        err << "asymmetric port relation at node " << v << " port " << p;
        return err.str();
      }
      if (!seen_neighbors.insert(e.node).second) {
        err << "parallel edge between " << v << " and " << e.node;
        return err.str();
      }
    }
  }
  return {};
}

std::vector<std::uint32_t> bfs_distances(const PortGraph& g, NodeId root) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> queue;
  dist.at(root) = 0;
  queue.push_back(root);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const Endpoint& e : g.neighbors(v)) {
      if (e.node == kNoNode) continue;  // vacant slot in a builder-state row
      if (dist[e.node] == kUnreachable) {
        dist[e.node] = dist[v] + 1;
        queue.push_back(e.node);
      }
    }
  }
  return dist;
}

bool is_connected(const PortGraph& g) {
  if (g.num_nodes() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  for (std::uint32_t d : dist) {
    if (d == kUnreachable) return false;
  }
  return true;
}

}  // namespace oraclesize
