#include "graph/spanning_tree.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>

#include "util/mathx.h"

namespace oraclesize {

namespace {

/// Plain union-find with union by size and path halving.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }
  std::size_t component_size(std::size_t x) { return size_[find(x)]; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace

SpanningTree SpanningTree::from_parent_ports(const PortGraph& g,
                                             NodeId root,
                                             std::vector<NodeId> parent,
                                             std::vector<Port> up_port) {
  const std::size_t n = g.num_nodes();
  SpanningTree t;
  t.root_ = root;
  t.parent_ = std::move(parent);
  t.up_port_ = std::move(up_port);
  t.child_ports_.assign(n, {});
  t.depth_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (v == root) continue;
    const NodeId p = t.parent_[v];
    if (p == kNoNode || p >= n) {
      throw std::invalid_argument("SpanningTree: node without valid parent");
    }
    const Port up = t.up_port_[v];
    if (up == kNoPort || !g.has_port(v, up) || g.neighbor(v, up).node != p) {
      throw std::invalid_argument("SpanningTree: parent edge not in graph");
    }
    t.child_ports_[p].push_back(g.neighbor(v, up).port);
  }
  // Depths; doubles as an acyclicity/spanning check.
  std::vector<std::vector<NodeId>> children(n);
  for (NodeId v = 0; v < n; ++v) {
    if (v != root) children[t.parent_[v]].push_back(v);
  }
  std::vector<bool> seen(n, false);
  std::deque<NodeId> queue{root};
  seen[root] = true;
  std::size_t visited = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (NodeId u : children[v]) {
      if (seen[u]) throw std::invalid_argument("SpanningTree: cycle");
      seen[u] = true;
      t.depth_[u] = t.depth_[v] + 1;
      ++visited;
      queue.push_back(u);
    }
  }
  if (visited != n) {
    throw std::invalid_argument("SpanningTree: parent array does not span");
  }
  return t;
}

SpanningTree SpanningTree::from_parents(const PortGraph& g, NodeId root,
                                        const std::vector<NodeId>& parent) {
  const std::size_t n = g.num_nodes();
  if (parent.size() != n || root >= n || parent[root] != kNoNode) {
    throw std::invalid_argument("SpanningTree: malformed parent array");
  }
  // The general entry point has to find each up port itself; the
  // traversal constructors below know theirs already and skip this scan.
  std::vector<Port> up_port(n, kNoPort);
  for (NodeId v = 0; v < n; ++v) {
    if (v == root) continue;
    const NodeId p = parent[v];
    if (p == kNoNode || p >= n) {
      throw std::invalid_argument("SpanningTree: node without valid parent");
    }
    const Port up = g.port_towards(v, p);
    if (up == kNoPort) {
      throw std::invalid_argument("SpanningTree: parent edge not in graph");
    }
    up_port[v] = up;
  }
  return from_parent_ports(g, root, parent, std::move(up_port));
}

SpanningTree SpanningTree::from_edges(const PortGraph& g, NodeId root,
                                      const std::vector<Edge>& edges) {
  const std::size_t n = g.num_nodes();
  if (edges.size() + 1 != n) {
    throw std::invalid_argument("SpanningTree::from_edges: wrong edge count");
  }
  // Forest edges carry both port numbers, so the BFS orientation can
  // record each node's up port as it goes instead of re-deriving it.
  struct Half {
    NodeId to;
    Port to_port;  // port AT `to` on this edge
  };
  std::vector<std::vector<Half>> adj(n);
  for (const Edge& e : edges) {
    if (e.u >= n || e.v >= n) {
      throw std::invalid_argument("SpanningTree::from_edges: bad edge");
    }
    adj[e.u].push_back(Half{e.v, e.port_v});
    adj[e.v].push_back(Half{e.u, e.port_u});
  }
  std::vector<NodeId> parent(n, kNoNode);
  std::vector<Port> up_port(n, kNoPort);
  std::vector<bool> seen(n, false);
  std::deque<NodeId> queue{root};
  seen.at(root) = true;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const Half& h : adj[v]) {
      if (!seen[h.to]) {
        seen[h.to] = true;
        parent[h.to] = v;
        up_port[h.to] = h.to_port;
        queue.push_back(h.to);
      }
    }
  }
  return from_parent_ports(g, root, std::move(parent),
                           std::move(up_port));
}

std::uint32_t SpanningTree::height() const {
  std::uint32_t h = 0;
  for (std::uint32_t d : depth_) h = std::max(h, d);
  return h;
}

std::vector<Edge> SpanningTree::edges(const PortGraph& g) const {
  std::vector<Edge> out;
  out.reserve(num_nodes() == 0 ? 0 : num_nodes() - 1);
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (is_root(v)) continue;
    const Port up = up_port_[v];
    const Endpoint pe = g.neighbor(v, up);
    const NodeId p = pe.node;
    if (v < p) {
      out.push_back(Edge{v, up, p, pe.port});
    } else {
      out.push_back(Edge{p, pe.port, v, up});
    }
  }
  return out;
}

SpanningTree bfs_tree(const PortGraph& g, NodeId root) {
  const std::size_t n = g.num_nodes();
  if (root >= n) {
    throw std::invalid_argument("bfs_tree: root out of range");
  }
  std::vector<NodeId> parent(n, kNoNode);
  std::vector<Port> up_port(n, kNoPort);
  std::vector<bool> seen(n, false);
  std::deque<NodeId> queue{root};
  seen[root] = true;
  // Once every node is discovered the remaining row scans cannot assign
  // another parent, so the traversal stops early — on dense graphs this
  // turns the O(m) BFS into an O(sum of scanned rows) one.
  std::size_t found = 1;
  while (!queue.empty() && found < n) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const Endpoint& e : g.neighbors(v)) {
      if (e.node == kNoNode) continue;  // vacant slot in a builder-state row
      if (!seen[e.node]) {
        seen[e.node] = true;
        parent[e.node] = v;
        up_port[e.node] = e.port;  // e.port is at e.node, pointing back to v
        queue.push_back(e.node);
        ++found;
      }
    }
  }
  return SpanningTree::from_parent_ports(g, root, std::move(parent),
                                         std::move(up_port));
}

SpanningTree dfs_tree(const PortGraph& g, NodeId root) {
  const std::size_t n = g.num_nodes();
  if (root >= n) {
    throw std::invalid_argument("dfs_tree: root out of range");
  }
  std::vector<NodeId> parent(n, kNoNode);
  std::vector<Port> up_port(n, kNoPort);
  std::vector<bool> seen(n, false);
  // Iterative DFS; stack of (node, next port to try). Ports are explored
  // in ascending order, exactly as the per-port loop did. As in bfs_tree,
  // the walk stops once every node has been discovered.
  std::vector<std::pair<NodeId, Port>> stack{{root, 0}};
  seen[root] = true;
  std::size_t found = 1;
  while (!stack.empty() && found < n) {
    auto& [v, p] = stack.back();
    const std::span<const Endpoint> row = g.neighbors(v);
    if (p >= row.size()) {
      stack.pop_back();
      continue;
    }
    const Endpoint e = row[p];
    ++p;
    if (e.node == kNoNode) continue;  // vacant slot in a builder-state row
    if (!seen[e.node]) {
      seen[e.node] = true;
      parent[e.node] = v;
      up_port[e.node] = e.port;
      stack.emplace_back(e.node, 0);
      ++found;
    }
  }
  return SpanningTree::from_parent_ports(g, root, std::move(parent),
                                         std::move(up_port));
}

std::vector<Edge> edges_by_weight(const PortGraph& g) {
  std::vector<Edge> all = g.edges();
  // The paper's weight w(e) = min port is bounded by the maximum degree, so
  // a counting sort bucketed by weight runs in O(m + Delta) — and, done as
  // prefix-sum + forward scatter, it is STABLE: within a weight bucket
  // edges keep their g.edges() order, which is exactly the tie-break the
  // previous std::stable_sort implementation applied.
  Port max_weight = 0;
  for (const Edge& e : all) max_weight = std::max(max_weight, e.weight());
  std::vector<std::size_t> bucket_start(static_cast<std::size_t>(max_weight) +
                                            2,
                                        0);
  for (const Edge& e : all) ++bucket_start[e.weight() + 1];
  for (std::size_t w = 1; w < bucket_start.size(); ++w) {
    bucket_start[w] += bucket_start[w - 1];
  }
  std::vector<Edge> sorted(all.size());
  for (const Edge& e : all) sorted[bucket_start[e.weight()]++] = e;
  return sorted;
}

SpanningTree kruskal_mst(const PortGraph& g, NodeId root) {
  const std::vector<Edge> all = edges_by_weight(g);
  Dsu dsu(g.num_nodes());
  std::vector<Edge> chosen;
  chosen.reserve(g.num_nodes() - 1);
  for (const Edge& e : all) {
    if (dsu.unite(e.u, e.v)) chosen.push_back(e);
  }
  return SpanningTree::from_edges(g, root, chosen);
}

std::uint64_t tree_contribution(const PortGraph& g, const SpanningTree& t) {
  std::uint64_t total = 0;
  for (const Edge& e : t.edges(g)) {
    total += static_cast<std::uint64_t>(num_bits(e.weight()));
  }
  return total;
}

}  // namespace oraclesize
