#include "graph/spanning_tree.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>

#include "util/mathx.h"

namespace oraclesize {

namespace {

/// Plain union-find with union by size and path halving.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }
  std::size_t component_size(std::size_t x) { return size_[find(x)]; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace

SpanningTree SpanningTree::from_parents(const PortGraph& g, NodeId root,
                                        const std::vector<NodeId>& parent) {
  const std::size_t n = g.num_nodes();
  if (parent.size() != n || root >= n || parent[root] != kNoNode) {
    throw std::invalid_argument("SpanningTree: malformed parent array");
  }
  SpanningTree t;
  t.root_ = root;
  t.parent_ = parent;
  t.up_port_.assign(n, kNoPort);
  t.child_ports_.assign(n, {});
  t.depth_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (v == root) continue;
    const NodeId p = parent[v];
    if (p == kNoNode || p >= n) {
      throw std::invalid_argument("SpanningTree: node without valid parent");
    }
    const Port up = g.port_towards(v, p);
    if (up == kNoPort) {
      throw std::invalid_argument("SpanningTree: parent edge not in graph");
    }
    t.up_port_[v] = up;
    t.child_ports_[p].push_back(g.neighbor(v, up).port);
  }
  // Depths; doubles as an acyclicity/spanning check.
  std::vector<std::vector<NodeId>> children(n);
  for (NodeId v = 0; v < n; ++v) {
    if (v != root) children[parent[v]].push_back(v);
  }
  std::vector<bool> seen(n, false);
  std::deque<NodeId> queue{root};
  seen[root] = true;
  std::size_t visited = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (NodeId u : children[v]) {
      if (seen[u]) throw std::invalid_argument("SpanningTree: cycle");
      seen[u] = true;
      t.depth_[u] = t.depth_[v] + 1;
      ++visited;
      queue.push_back(u);
    }
  }
  if (visited != n) {
    throw std::invalid_argument("SpanningTree: parent array does not span");
  }
  return t;
}

SpanningTree SpanningTree::from_edges(const PortGraph& g, NodeId root,
                                      const std::vector<Edge>& edges) {
  const std::size_t n = g.num_nodes();
  if (edges.size() + 1 != n) {
    throw std::invalid_argument("SpanningTree::from_edges: wrong edge count");
  }
  std::vector<std::vector<NodeId>> adj(n);
  for (const Edge& e : edges) {
    adj.at(e.u).push_back(e.v);
    adj.at(e.v).push_back(e.u);
  }
  std::vector<NodeId> parent(n, kNoNode);
  std::vector<bool> seen(n, false);
  std::deque<NodeId> queue{root};
  seen.at(root) = true;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (NodeId u : adj[v]) {
      if (!seen[u]) {
        seen[u] = true;
        parent[u] = v;
        queue.push_back(u);
      }
    }
  }
  return from_parents(g, root, parent);
}

std::uint32_t SpanningTree::height() const {
  std::uint32_t h = 0;
  for (std::uint32_t d : depth_) h = std::max(h, d);
  return h;
}

std::vector<Edge> SpanningTree::edges(const PortGraph& g) const {
  std::vector<Edge> out;
  out.reserve(num_nodes() == 0 ? 0 : num_nodes() - 1);
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (is_root(v)) continue;
    const Port up = up_port_[v];
    const Endpoint pe = g.neighbor(v, up);
    const NodeId p = pe.node;
    if (v < p) {
      out.push_back(Edge{v, up, p, pe.port});
    } else {
      out.push_back(Edge{p, pe.port, v, up});
    }
  }
  return out;
}

SpanningTree bfs_tree(const PortGraph& g, NodeId root) {
  const std::size_t n = g.num_nodes();
  std::vector<NodeId> parent(n, kNoNode);
  std::vector<bool> seen(n, false);
  std::deque<NodeId> queue{root};
  seen.at(root) = true;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (Port p = 0; p < g.degree(v); ++p) {
      const NodeId u = g.neighbor(v, p).node;
      if (!seen[u]) {
        seen[u] = true;
        parent[u] = v;
        queue.push_back(u);
      }
    }
  }
  return SpanningTree::from_parents(g, root, parent);
}

SpanningTree dfs_tree(const PortGraph& g, NodeId root) {
  const std::size_t n = g.num_nodes();
  std::vector<NodeId> parent(n, kNoNode);
  std::vector<bool> seen(n, false);
  // Iterative DFS; stack of (node, next port to try).
  std::vector<std::pair<NodeId, Port>> stack{{root, 0}};
  seen.at(root) = true;
  while (!stack.empty()) {
    auto& [v, p] = stack.back();
    if (p >= g.degree(v)) {
      stack.pop_back();
      continue;
    }
    const NodeId u = g.neighbor(v, p).node;
    ++p;
    if (!seen[u]) {
      seen[u] = true;
      parent[u] = v;
      stack.emplace_back(u, 0);
    }
  }
  return SpanningTree::from_parents(g, root, parent);
}

SpanningTree kruskal_mst(const PortGraph& g, NodeId root) {
  std::vector<Edge> all = g.edges();
  std::stable_sort(all.begin(), all.end(), [](const Edge& a, const Edge& b) {
    return a.weight() < b.weight();
  });
  Dsu dsu(g.num_nodes());
  std::vector<Edge> chosen;
  chosen.reserve(g.num_nodes() - 1);
  for (const Edge& e : all) {
    if (dsu.unite(e.u, e.v)) chosen.push_back(e);
  }
  return SpanningTree::from_edges(g, root, chosen);
}

std::uint64_t tree_contribution(const PortGraph& g, const SpanningTree& t) {
  std::uint64_t total = 0;
  for (const Edge& e : t.edges(g)) {
    total += static_cast<std::uint64_t>(num_bits(e.weight()));
  }
  return total;
}

}  // namespace oraclesize
