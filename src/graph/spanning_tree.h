// Rooted spanning trees over port-labeled graphs.
//
// Both oracle constructions in the paper hand out *ports of spanning-tree
// edges*: Theorem 2.1 gives each node the ports towards its children in an
// arbitrary spanning tree, Theorem 3.1 gives one endpoint of each edge of a
// specially chosen light tree the weight (= smaller port number) of that
// edge. This header provides the rooted-tree representation plus the classic
// constructions (BFS, DFS, Kruskal MST under the paper's min-port weight);
// the Claim 3.1 light tree lives in graph/light_tree.h.
#pragma once

#include <vector>

#include "graph/port_graph.h"

namespace oraclesize {

/// A spanning tree of a PortGraph, rooted, with the port numbers of every
/// tree edge recorded on both sides.
class SpanningTree {
 public:
  /// Builds from a parent array (parent[root] == kNoNode). Ports are looked
  /// up in g. Throws std::invalid_argument if the array is not a spanning
  /// tree of g.
  static SpanningTree from_parents(const PortGraph& g, NodeId root,
                                   const std::vector<NodeId>& parent);

  /// Builds from an (n-1)-element forest edge list that spans g.
  /// Orientation (parent/child) is chosen by a BFS from root.
  static SpanningTree from_edges(const PortGraph& g, NodeId root,
                                 const std::vector<Edge>& edges);

  /// As from_parents, but with each node's up port supplied by the caller —
  /// the traversal constructors (BFS/DFS/from_edges) learn it at discovery
  /// time, which saves from_parents' O(deg) port_towards scan per node.
  /// Every (parent, up port) pair is still verified against g, and the
  /// spanning/acyclicity check still runs.
  static SpanningTree from_parent_ports(const PortGraph& g, NodeId root,
                                        std::vector<NodeId> parent,
                                        std::vector<Port> up_port);

  NodeId root() const noexcept { return root_; }
  std::size_t num_nodes() const noexcept { return parent_.size(); }

  NodeId parent(NodeId v) const { return parent_.at(v); }
  bool is_root(NodeId v) const { return parent_.at(v) == kNoNode; }

  /// Port at v leading to its parent. Undefined (kNoPort) for the root.
  Port port_to_parent(NodeId v) const { return up_port_.at(v); }

  /// Ports at v leading to each of its children (construction order).
  const std::vector<Port>& child_ports(NodeId v) const {
    return child_ports_.at(v);
  }
  std::size_t num_children(NodeId v) const { return child_ports_.at(v).size(); }
  bool is_leaf(NodeId v) const { return child_ports_.at(v).empty(); }

  /// Depth of v (root has depth 0).
  std::uint32_t depth(NodeId v) const { return depth_.at(v); }
  std::uint32_t height() const;

  /// The n-1 tree edges, with both port numbers, normalized u < v.
  std::vector<Edge> edges(const PortGraph& g) const;

 private:
  NodeId root_ = kNoNode;
  std::vector<NodeId> parent_;
  std::vector<Port> up_port_;
  std::vector<std::vector<Port>> child_ports_;
  std::vector<std::uint32_t> depth_;
};

/// Breadth-first spanning tree (children discovered in port order).
SpanningTree bfs_tree(const PortGraph& g, NodeId root);

/// Depth-first spanning tree (children explored in port order).
SpanningTree dfs_tree(const PortGraph& g, NodeId root);

/// All edges of g sorted ascending by the paper's weight w(e) = min port,
/// ties broken by g.edges() order. Implemented as a stable counting sort
/// bucketed by weight (bounded by the max degree): O(m + Delta) instead of
/// the O(m log m) a comparison sort would pay.
std::vector<Edge> edges_by_weight(const PortGraph& g);

/// Minimum spanning tree under the paper's edge weight
/// w(e) = min{port_u(e), port_v(e)} (Kruskal; ties broken by edge order).
SpanningTree kruskal_mst(const PortGraph& g, NodeId root);

/// Sum over tree edges of #2(w(e)) — the quantity Claim 3.1 bounds by 4n.
std::uint64_t tree_contribution(const PortGraph& g, const SpanningTree& t);

}  // namespace oraclesize
