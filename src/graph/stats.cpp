#include "graph/stats.h"

#include <algorithm>
#include <stdexcept>

#include "graph/validate.h"

namespace oraclesize {

std::uint32_t eccentricity(const PortGraph& g, NodeId v) {
  const auto dist = bfs_distances(g, v);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d == kUnreachable) {
      throw std::invalid_argument("eccentricity: graph is disconnected");
    }
    ecc = std::max(ecc, d);
  }
  return ecc;
}

GraphStats compute_stats(const PortGraph& g) {
  GraphStats s;
  s.nodes = g.num_nodes();
  s.edges = g.num_edges();
  if (s.nodes == 0) return s;
  s.min_degree = g.degree(0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    s.min_degree = std::min(s.min_degree, g.degree(v));
    s.max_degree = std::max(s.max_degree, g.degree(v));
  }
  s.avg_degree = 2.0 * static_cast<double>(s.edges) /
                 static_cast<double>(s.nodes);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    s.diameter = std::max(s.diameter, eccentricity(g, v));
  }
  s.source_eccentricity = eccentricity(g, 0);
  return s;
}

}  // namespace oraclesize
