// Structural statistics of networks — the quantities experiment tables
// contextualize results with (diameter for time bounds, degree profile for
// flooding costs).
#pragma once

#include <cstdint>

#include "graph/port_graph.h"

namespace oraclesize {

struct GraphStats {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double avg_degree = 0;
  /// Exact diameter (max eccentricity); 0 for a single node. Computed by
  /// all-sources BFS: O(n * m), fine for the experiment scales.
  std::uint32_t diameter = 0;
  /// Eccentricity of node 0 (the conventional source in this repo).
  std::uint32_t source_eccentricity = 0;
};

/// Computes the statistics above. Requires a connected graph (diameter is
/// otherwise undefined); throws std::invalid_argument if disconnected.
GraphStats compute_stats(const PortGraph& g);

/// Eccentricity of one node (max BFS distance). Throws if some node is
/// unreachable.
std::uint32_t eccentricity(const PortGraph& g, NodeId v);

}  // namespace oraclesize
