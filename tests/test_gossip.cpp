#include "core/gossip.h"

#include <gtest/gtest.h>

#include "core/runner.h"
#include "graph/builders.h"
#include "graph/complete_star.h"
#include "oracle/tree_wakeup_oracle.h"

namespace oraclesize {
namespace {

// Sum of labels 1..n: the fingerprint every node must report.
std::uint64_t label_sum(std::size_t n) {
  return static_cast<std::uint64_t>(n) * (n + 1) / 2;
}

TEST(Gossip, EveryNodeLearnsEveryRumor) {
  Rng rng(701);
  struct Case {
    std::string name;
    PortGraph graph;
    NodeId source;
  };
  std::vector<Case> cases;
  cases.push_back({"path", make_path(20), 3});
  cases.push_back({"star", make_star(15), 0});
  cases.push_back({"grid", make_grid(4, 6), 10});
  cases.push_back({"complete", make_complete_star(20), 0});
  cases.push_back({"random", make_random_connected(40, 0.15, rng), 7});
  for (const Case& c : cases) {
    const TaskReport r = run_task(c.graph, c.source, TreeWakeupOracle(),
                                  GossipTreeAlgorithm());
    ASSERT_TRUE(r.ok()) << c.name << ": " << r.summary();
    const std::size_t n = c.graph.num_nodes();
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_TRUE(r.run.terminated[v]) << c.name << " node " << v;
      EXPECT_EQ(r.run.outputs[v], label_sum(n)) << c.name << " node " << v;
    }
  }
}

TEST(Gossip, ExactlyThreePhasesOfMessages) {
  Rng rng(702);
  const PortGraph g = make_random_connected(35, 0.2, rng);
  const TaskReport r =
      run_task(g, 0, TreeWakeupOracle(), GossipTreeAlgorithm());
  ASSERT_TRUE(r.ok());
  const std::size_t n = g.num_nodes();
  EXPECT_EQ(r.run.metrics.messages_source, n - 1);   // phase 1 down
  EXPECT_EQ(r.run.metrics.messages_control, n - 1);  // phase 2 up
  EXPECT_EQ(r.run.metrics.messages_hello, n - 1);    // phase 3 down
  EXPECT_EQ(r.run.metrics.messages_total, 3 * (n - 1));
}

TEST(Gossip, WorksUnderEveryScheduler) {
  Rng rng(703);
  const PortGraph g = make_random_connected(30, 0.2, rng);
  for (SchedulerKind kind :
       {SchedulerKind::kSynchronous, SchedulerKind::kAsyncRandom,
        SchedulerKind::kAsyncFifo, SchedulerKind::kAsyncLifo,
        SchedulerKind::kAsyncLinkFifo}) {
    RunOptions opts;
    opts.scheduler = kind;
    opts.seed = 13;
    const TaskReport r =
        run_task(g, 2, TreeWakeupOracle(), GossipTreeAlgorithm(), opts);
    EXPECT_TRUE(r.ok()) << to_string(kind);
    EXPECT_EQ(r.run.outputs[17], label_sum(g.num_nodes())) << to_string(kind);
  }
}

TEST(Gossip, RespectsWakeupConstraint) {
  const PortGraph g = make_grid(4, 4);
  const TaskReport r =
      run_task(g, 0, TreeWakeupOracle(), GossipTreeAlgorithm());
  EXPECT_TRUE(r.ok());  // run_task auto-enforces for is_wakeup()
}

TEST(Gossip, BitTrafficReflectsOutputSize) {
  // Gossip's output is Theta(n log n) bits per node, so total traffic must
  // exceed broadcast's constant-size-message regime by a growing factor.
  const PortGraph path = make_path(64);
  const TaskReport r =
      run_task(path, 0, TreeWakeupOracle(), GossipTreeAlgorithm());
  ASSERT_TRUE(r.ok());
  // Phase 3 alone ships ~n rumors to each of n-1 nodes along the path.
  EXPECT_GT(r.run.metrics.bits_sent,
            static_cast<std::uint64_t>(64) * 63);  // >> 3(n-1) messages * 8
}

TEST(Gossip, SingletonTerminatesWithOwnRumor) {
  const PortGraph g = make_path(1);
  const TaskReport r =
      run_task(g, 0, TreeWakeupOracle(), GossipTreeAlgorithm());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.run.terminated[0]);
  EXPECT_EQ(r.run.outputs[0], 1u);
  EXPECT_EQ(r.run.metrics.messages_total, 0u);
}

TEST(Gossip, MessageSizeAccountingCountsItems) {
  Message m = Message::bundle(MsgKind::kControl, {1, 2, 255});
  // 2 tag bits + (1+2) + (2+2) + (8+2).
  EXPECT_EQ(m.size_bits(), 2 + 3 + 4 + 10);
}

}  // namespace
}  // namespace oraclesize
