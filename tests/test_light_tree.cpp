#include "graph/light_tree.h"

#include <gtest/gtest.h>

#include "graph/builders.h"
#include "graph/complete_star.h"
#include "graph/subdivision.h"
#include "util/mathx.h"
#include "util/rng.h"

namespace oraclesize {
namespace {

void expect_claim31(const PortGraph& g, NodeId root) {
  const LightTreeResult r = light_tree(g, root);
  const std::size_t n = g.num_nodes();
  // It is a spanning tree...
  EXPECT_EQ(r.tree.num_nodes(), n);
  EXPECT_EQ(r.tree.edges(g).size(), n - 1);
  // ...whose contribution obeys Claim 3.1.
  EXPECT_LE(r.contribution, 4 * n) << g.summary();
  // Reported contribution matches an independent recount.
  EXPECT_EQ(r.contribution, tree_contribution(g, r.tree));
}

TEST(LightTree, Claim31OnCompleteGraphs) {
  for (std::size_t n : {2u, 3u, 8u, 32u, 100u, 256u}) {
    expect_claim31(make_complete_star(n), 0);
  }
}

TEST(LightTree, Claim31OnSparseFamilies) {
  expect_claim31(make_path(50), 0);
  expect_claim31(make_cycle(63), 5);
  expect_claim31(make_grid(9, 13), 0);
  expect_claim31(make_hypercube(7), 1);
  expect_claim31(make_star(100), 0);
  expect_claim31(make_lollipop(60), 59);
  expect_claim31(make_binary_tree(127), 0);
}

TEST(LightTree, Claim31OnRandomGraphs) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    const std::size_t n = 20 + 15 * static_cast<std::size_t>(i);
    expect_claim31(make_random_connected(n, 0.1, rng), 0);
  }
}

TEST(LightTree, Claim31OnShuffledPorts) {
  // Adversarial port numbering must not break the bound: the bound's proof
  // only uses tree sizes, not the builder's friendly port order.
  Rng rng(12);
  for (int i = 0; i < 5; ++i) {
    const PortGraph g =
        shuffle_ports(make_random_connected(80, 0.3, rng), rng);
    expect_claim31(g, 0);
  }
}

TEST(LightTree, Claim31OnLowerBoundFamilies) {
  Rng rng(13);
  const SubdividedGraph sg = make_gns(24, 24, rng);
  expect_claim31(sg.graph, 0);
}

TEST(LightTree, PhaseCountLogarithmic) {
  const PortGraph g = make_complete_star(128);
  const LightTreeResult r = light_tree(g, 0);
  EXPECT_LE(r.phases.size(), 8u);  // ceil(log2 128) = 7, +1 slack
  EXPECT_GE(r.phases.size(), 1u);
}

TEST(LightTree, PhaseAccountingConsistent) {
  Rng rng(14);
  const PortGraph g = make_random_connected(60, 0.2, rng);
  const LightTreeResult r = light_tree(g, 0);
  std::size_t total_added = 0;
  std::uint64_t total_contribution = 0;
  for (const LightTreePhase& p : r.phases) {
    EXPECT_GT(p.trees_before, 1u);
    EXPECT_LE(p.small_trees, p.trees_before);
    EXPECT_LE(p.edges_added, p.small_trees);
    total_added += p.edges_added;
    total_contribution += p.contribution;
  }
  EXPECT_EQ(total_added, g.num_nodes() - 1);
  EXPECT_EQ(total_contribution, r.contribution);
}

TEST(LightTree, PaperPerPhaseBound) {
  // The proof's per-phase bound: C_k <= k * |T_small(k)| (each added edge in
  // phase k contributes at most k bits).
  const PortGraph g = make_complete_star(200);
  const LightTreeResult r = light_tree(g, 0);
  for (const LightTreePhase& p : r.phases) {
    EXPECT_LE(p.contribution,
              static_cast<std::uint64_t>(p.phase) * p.small_trees);
  }
}

TEST(LightTree, TrivialGraphs) {
  const LightTreeResult single = light_tree(make_path(1), 0);
  EXPECT_EQ(single.contribution, 0u);
  EXPECT_TRUE(single.phases.empty());

  const LightTreeResult pair = light_tree(make_path(2), 0);
  EXPECT_EQ(pair.contribution, 1u);  // one edge with weight 0: #2(0) = 1
}

TEST(LightTree, BeatsBfsOnAdversarialStar) {
  // A star whose leaves sit on high ports at the center: BFS rooted at a
  // leaf must still use the same edges (a star has only one spanning tree),
  // so instead compare on the complete graph, where tree choice matters.
  const PortGraph g = make_complete_star(128);
  const LightTreeResult light = light_tree(g, 0);
  const SpanningTree bfs = bfs_tree(g, 0);
  EXPECT_LE(light.contribution, tree_contribution(g, bfs));
}

TEST(LightTree, RootChoiceDoesNotAffectContribution) {
  // The tree is built unrooted and then oriented; any root gives the same
  // edge set, hence the same contribution.
  const PortGraph g = make_complete_star(32);
  const std::uint64_t c0 = light_tree(g, 0).contribution;
  const std::uint64_t c7 = light_tree(g, 7).contribution;
  const std::uint64_t c31 = light_tree(g, 31).contribution;
  EXPECT_EQ(c0, c7);
  EXPECT_EQ(c0, c31);
}

}  // namespace
}  // namespace oraclesize
