// The trace recorder: capture fidelity, serialization, and zero-perturbation.
//
// A TraceSink must be a pure observer — attaching one cannot change a run's
// RunResult — and a RecordedTrace must survive save/load byte-exactly,
// reject corrupted or truncated artifacts with a structured error, filter
// node-state events at TraceLevel::kMessages, and keep only the LAST run
// when a recorder is re-entered (the batch runner's retry contract).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/broadcast_b.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "sim/execution_context.h"
#include "sim/trace_recorder.h"

namespace oraclesize {
namespace {

PortGraph trace_graph() {
  Rng rng(777777);
  return make_random_connected(40, 0.15, rng);
}

RecordedTrace record_broadcast(RunOptions opts = {},
                               TraceLevel level = TraceLevel::kFull) {
  const PortGraph g = trace_graph();
  TraceRecorder recorder(level);
  opts.trace_sink = &recorder;
  run_task(g, 2, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
  RecordedTrace t = recorder.take();
  t.header.oracle = LightBroadcastOracle().name();
  return t;
}

TEST(TraceRecorder, AttachingASinkDoesNotPerturbTheRun) {
  const PortGraph g = trace_graph();
  const LightBroadcastOracle oracle;
  const BroadcastBAlgorithm algorithm;
  const auto advice = oracle.advise(g, 2);

  RunOptions plain;
  const RunResult bare = run_execution(g, 2, advice, algorithm, plain);

  TraceRecorder recorder;
  RunOptions traced;
  traced.trace_sink = &recorder;
  const RunResult observed = run_execution(g, 2, advice, algorithm, traced);

  EXPECT_EQ(bare, observed);
  ASSERT_TRUE(recorder.complete());
  EXPECT_EQ(recorder.trace().status, observed.status);
  EXPECT_EQ(recorder.trace().metrics, observed.metrics);
}

TEST(TraceRecorder, SaveLoadRoundTripsEveryField) {
  RunOptions opts;
  opts.scheduler = SchedulerKind::kAsyncRandom;
  opts.seed = 90210;
  opts.fault.seed = 5;
  opts.fault.drop = 0.07;
  opts.fault.duplicate = 0.03;
  const RecordedTrace t = record_broadcast(opts);
  ASSERT_FALSE(t.events.empty());

  std::stringstream ss;
  save_trace(ss, t);
  const RecordedTrace loaded = load_trace(ss);

  EXPECT_EQ(loaded.header, t.header);
  EXPECT_EQ(loaded.graph_text, t.graph_text);
  EXPECT_EQ(loaded.advice, t.advice);
  EXPECT_EQ(loaded.events, t.events);
  EXPECT_EQ(loaded.status, t.status);
  EXPECT_EQ(loaded.metrics, t.metrics);
  EXPECT_EQ(loaded.faults, t.faults);
  EXPECT_EQ(loaded.digest(), t.digest());
}

TEST(TraceRecorder, HeaderRecordsKeyingAndDefaultsLegacyStream) {
  // The header pins the delivery-key mode so old artifacts stay
  // replayable: a counter-keyed recording round-trips its mode, and an
  // artifact WITHOUT a keying line (anything recorded before the mode
  // existed) must load as the legacy stream keying it was recorded under.
  RunOptions opts;
  opts.scheduler = SchedulerKind::kAsyncRandom;
  opts.seed = 90210;
  const RecordedTrace counter = record_broadcast(opts);
  EXPECT_EQ(counter.header.keying, SchedulerKeying::kCounter);

  opts.keying = SchedulerKeying::kStream;
  const RecordedTrace stream = record_broadcast(opts);
  EXPECT_EQ(stream.header.keying, SchedulerKeying::kStream);
  // The two modes genuinely diverge on this seeded scheduler.
  EXPECT_NE(counter.digest(), stream.digest());

  std::stringstream ss;
  save_trace(ss, counter);
  std::string text = ss.str();
  const std::size_t at = text.find("keying counter\n");
  ASSERT_NE(at, std::string::npos);
  text.erase(at, std::string("keying counter\n").size());
  std::istringstream in(text);
  const RecordedTrace legacy = load_trace(in);
  EXPECT_EQ(legacy.header.keying, SchedulerKeying::kStream);
  // The digest hashes events + outcome, not the header, so stripping the
  // line changes only the replay interpretation.
  EXPECT_EQ(legacy.digest(), counter.digest());
}

TEST(TraceRecorder, LoadRejectsTamperedAndTruncatedArtifacts) {
  const RecordedTrace t = record_broadcast();
  std::stringstream ss;
  save_trace(ss, t);
  const std::string text = ss.str();

  {
    // Flip one digit inside an event line: the stored digest no longer
    // matches the recomputed one.
    std::string tampered = text;
    const std::size_t at = tampered.find("\ne ");
    ASSERT_NE(at, std::string::npos);
    const std::size_t digit = tampered.find_first_of("0123456789", at + 3);
    ASSERT_NE(digit, std::string::npos);
    tampered[digit] = tampered[digit] == '9' ? '8' : '9';
    std::istringstream in(tampered);
    EXPECT_THROW(load_trace(in), std::runtime_error);
  }
  {
    // Truncation anywhere in the body loses the footer (or cuts a section
    // short); both are structured parse failures.
    std::istringstream in(text.substr(0, text.size() / 2));
    EXPECT_THROW(load_trace(in), std::runtime_error);
  }
  {
    std::istringstream in(std::string("not a trace\n"));
    EXPECT_THROW(load_trace(in), std::runtime_error);
  }
}

TEST(TraceRecorder, MessagesLevelDropsNodeStateEvents) {
  const RecordedTrace full = record_broadcast({}, TraceLevel::kFull);
  const RecordedTrace msgs = record_broadcast({}, TraceLevel::kMessages);

  bool full_has_state = false;
  for (const TraceEvent& e : full.events) {
    if (e.kind == TraceEventKind::kInformed ||
        e.kind == TraceEventKind::kAdviceRead) {
      full_has_state = true;
    }
  }
  EXPECT_TRUE(full_has_state);
  for (const TraceEvent& e : msgs.events) {
    EXPECT_NE(e.kind, TraceEventKind::kInformed);
    EXPECT_NE(e.kind, TraceEventKind::kAdviceRead);
  }
  EXPECT_LT(msgs.events.size(), full.events.size());
  // The filtered stream is exactly the full stream minus state events.
  std::vector<TraceEvent> filtered;
  for (const TraceEvent& e : full.events) {
    if (e.kind != TraceEventKind::kInformed &&
        e.kind != TraceEventKind::kAdviceRead) {
      filtered.push_back(e);
    }
  }
  EXPECT_EQ(msgs.events, filtered);
}

TEST(TraceRecorder, ReenteredRecorderKeepsTheLastRun) {
  const PortGraph g = trace_graph();
  const TreeWakeupOracle oracle;
  const WakeupTreeAlgorithm algorithm;
  const auto advice = oracle.advise(g, 0);
  const auto advice2 = oracle.advise(g, 9);

  TraceRecorder recorder;
  RunOptions opts;
  opts.enforce_wakeup = true;
  opts.trace_sink = &recorder;
  ExecutionContext context;
  context.run(g, 0, advice, algorithm, opts);
  const std::uint64_t first = recorder.trace().digest();
  context.run(g, 9, advice2, algorithm, opts);
  const RecordedTrace last = recorder.take();
  EXPECT_NE(last.digest(), first);
  EXPECT_EQ(last.header.source, 9u);

  // take() resets: the recorder is reusable afterwards.
  EXPECT_FALSE(recorder.complete());
  context.run(g, 0, advice, algorithm, opts);
  EXPECT_EQ(recorder.trace().digest(), first);
}

TEST(TraceRecorder, ChromeExportIsWellFormedJson) {
  const RecordedTrace t = record_broadcast();
  std::ostringstream out;
  write_chrome_trace(out, t);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity for the exporter.
  long depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceRecorder, SendEventsCarryFaultCounterCoordinates) {
  // kSend events are stamped with the exact (seq, link) the fault plan
  // keys on: sequence numbers strictly increase and links stay in range.
  const RecordedTrace t = record_broadcast();
  const PortGraph g = trace_graph();
  std::uint64_t last_seq = 0;
  bool first = true;
  std::uint64_t links = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) links += g.degree(v);
  for (const TraceEvent& e : t.events) {
    if (e.kind != TraceEventKind::kSend) continue;
    if (!first) EXPECT_GT(e.seq, last_seq);
    first = false;
    last_seq = e.seq;
    EXPECT_LT(e.link, links);
  }
  EXPECT_FALSE(first);
}

}  // namespace
}  // namespace oraclesize
