#include "core/batch_runner.h"

#include <gtest/gtest.h>

#include "core/broadcast_b.h"
#include "core/flooding.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "graph/complete_star.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "oracle/trivial_oracles.h"
#include "sim/engine.h"

namespace oraclesize {
namespace {

// The E1/E4 workload shapes at test-friendly sizes.
std::vector<PortGraph> test_workloads() {
  std::vector<PortGraph> graphs;
  Rng rng(0xbeefcafeULL);
  graphs.push_back(make_complete_star(128));
  graphs.push_back(make_random_connected(256, 8.0 / 256.0, rng));
  graphs.push_back(make_grid(16, 16));
  graphs.push_back(make_random_tree(256, rng));
  return graphs;
}

constexpr SchedulerKind kAllSchedulers[] = {
    SchedulerKind::kSynchronous, SchedulerKind::kAsyncRandom,
    SchedulerKind::kAsyncFifo, SchedulerKind::kAsyncLifo,
    SchedulerKind::kAsyncLinkFifo,
};

// The determinism contract: identical RunResults for jobs=1 vs jobs=8 on
// the E1 (wakeup) and E4 (broadcast) workloads under all five schedulers.
TEST(BatchRunner, DeterministicAcrossJobCounts) {
  const auto graphs = test_workloads();
  const TreeWakeupOracle wakeup_oracle;
  const WakeupTreeAlgorithm wakeup;
  const LightBroadcastOracle light_oracle;
  const BroadcastBAlgorithm broadcast;

  std::vector<TrialSpec> specs;
  for (const PortGraph& g : graphs) {
    for (SchedulerKind sched : kAllSchedulers) {
      RunOptions opts;
      opts.scheduler = sched;
      opts.seed = 42;
      opts.anonymous = true;
      specs.push_back(TrialSpec{&g, 0, &wakeup_oracle, &wakeup, opts});
      specs.push_back(TrialSpec{&g, 0, &light_oracle, &broadcast, opts});
    }
  }

  const auto serial = BatchRunner(1).run(specs);
  const auto parallel = BatchRunner(8).run(specs);
  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(serial[i].ok()) << i;
    EXPECT_EQ(serial[i].run, parallel[i].run) << i;
    EXPECT_EQ(serial[i].oracle_bits, parallel[i].oracle_bits) << i;
    EXPECT_EQ(serial[i].oracle_name, parallel[i].oracle_name) << i;
  }
}

// For a fixed TrialSpec, BatchRunner output is bit-identical to the
// single-trial engine path, whatever the worker count.
TEST(BatchRunner, MatchesSingleTrialEngine) {
  Rng rng(7);
  const PortGraph g = make_random_connected(200, 0.06, rng);
  const LightBroadcastOracle oracle;
  const BroadcastBAlgorithm algorithm;
  RunOptions opts;
  opts.scheduler = SchedulerKind::kAsyncRandom;
  opts.seed = 99;
  opts.trace = true;

  const auto advice = oracle.advise(g, 5);
  const RunResult direct = run_execution(g, 5, advice, algorithm, opts);

  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    const auto reports = BatchRunner(jobs).run(
        {TrialSpec{&g, 5, &oracle, &algorithm, opts}});
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].run, direct) << "jobs=" << jobs;
  }
}

TEST(BatchRunner, RunTaskIsAThinWrapper) {
  const PortGraph g = make_grid(8, 8);
  const TreeWakeupOracle oracle;
  const WakeupTreeAlgorithm algorithm;
  RunOptions opts;
  opts.scheduler = SchedulerKind::kAsyncLifo;

  const TaskReport via_task = run_task(g, 3, oracle, algorithm, opts);
  const auto via_batch =
      BatchRunner(2).run({TrialSpec{&g, 3, &oracle, &algorithm, opts}});
  EXPECT_EQ(via_task.run, via_batch[0].run);
  EXPECT_EQ(via_task.oracle_bits, via_batch[0].oracle_bits);
}

TEST(BatchRunner, ResultsStayInSpecOrder) {
  // Distinguishable graphs: trial i runs on a path of i+2 nodes, so the
  // result size identifies which spec produced it.
  std::vector<PortGraph> graphs;
  for (std::size_t i = 0; i < 32; ++i) graphs.push_back(make_path(i + 2));
  const NullOracle oracle;
  const FloodingAlgorithm algorithm;
  std::vector<TrialSpec> specs;
  for (const PortGraph& g : graphs) {
    specs.push_back(TrialSpec{&g, 0, &oracle, &algorithm, RunOptions{}});
  }
  const auto reports = BatchRunner(8).run(specs);
  ASSERT_EQ(reports.size(), specs.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].run.informed.size(), i + 2) << i;
    EXPECT_TRUE(reports[i].ok()) << i;
  }
}

TEST(BatchRunner, EnforcesWakeupAutomatically) {
  // BroadcastB transmits spontaneously; run as a wakeup algorithm it would
  // violate. WakeupTree must keep enforce_wakeup on through the batch path.
  const PortGraph g = make_path(6);
  const TreeWakeupOracle oracle;
  const WakeupTreeAlgorithm wakeup;
  const auto reports =
      BatchRunner(1).run({TrialSpec{&g, 0, &oracle, &wakeup, RunOptions{}}});
  EXPECT_TRUE(reports[0].ok());
  EXPECT_TRUE(reports[0].run.violation.empty());
}

TEST(BatchRunner, NullSpecPointersThrow) {
  const PortGraph g = make_path(3);
  const NullOracle oracle;
  const FloodingAlgorithm algorithm;
  EXPECT_THROW(
      BatchRunner(1).run({TrialSpec{nullptr, 0, &oracle, &algorithm, {}}}),
      std::invalid_argument);
  EXPECT_THROW(
      BatchRunner(1).run({TrialSpec{&g, 0, nullptr, &algorithm, {}}}),
      std::invalid_argument);
  EXPECT_THROW(BatchRunner(1).run({TrialSpec{&g, 0, &oracle, nullptr, {}}}),
               std::invalid_argument);
}

TEST(BatchRunner, BadSourceIsIsolatedToItsTrial) {
  const PortGraph g = make_path(4);
  const NullOracle oracle;
  const FloodingAlgorithm algorithm;
  std::vector<TrialSpec> specs;
  for (int i = 0; i < 8; ++i) {
    specs.push_back(TrialSpec{&g, 0, &oracle, &algorithm, RunOptions{}});
  }
  specs[3].source = 999;  // out of range -> the engine throws
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    BatchStats stats;
    const auto reports = BatchRunner(jobs).run(specs, &stats);
    ASSERT_EQ(reports.size(), specs.size()) << "jobs=" << jobs;
    EXPECT_EQ(stats.failed, 1u) << "jobs=" << jobs;
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (i == 3) {
        EXPECT_TRUE(reports[i].failed());
        EXPECT_FALSE(reports[i].ok());
        EXPECT_EQ(reports[i].run.status, RunStatus::kCrashed);
        EXPECT_NE(reports[i].error.find("bad source"), std::string::npos)
            << reports[i].error;
      } else {
        EXPECT_FALSE(reports[i].failed()) << i;
        EXPECT_TRUE(reports[i].ok()) << i;
      }
    }
  }
  // The single-trial convenience path keeps the legacy typed-throw contract.
  EXPECT_THROW(run_task(g, 999, oracle, algorithm), std::invalid_argument);
  EXPECT_THROW(BatchRunner(1).run_rethrow(specs), std::invalid_argument);
}

TEST(BatchRunner, EmptyBatchIsEmpty) {
  EXPECT_TRUE(BatchRunner(4).run({}).empty());
}

TEST(BatchRunner, ZeroJobsPicksHardwareConcurrency) {
  EXPECT_GE(BatchRunner(0).jobs(), 1u);
  EXPECT_EQ(BatchRunner(3).jobs(), 3u);
}

}  // namespace
}  // namespace oraclesize
