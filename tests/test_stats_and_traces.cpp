#include <gtest/gtest.h>

#include "core/broadcast_b.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "graph/complete_star.h"
#include "graph/stats.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "sim/trace_analysis.h"

namespace oraclesize {
namespace {

// ---- graph stats -----------------------------------------------------------

TEST(GraphStats, PathProfile) {
  const GraphStats s = compute_stats(make_path(10));
  EXPECT_EQ(s.nodes, 10u);
  EXPECT_EQ(s.edges, 9u);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_NEAR(s.avg_degree, 1.8, 1e-12);
  EXPECT_EQ(s.diameter, 9u);
  EXPECT_EQ(s.source_eccentricity, 9u);  // node 0 is an endpoint
}

TEST(GraphStats, CompleteGraphDiameterOne) {
  const GraphStats s = compute_stats(make_complete_star(9));
  EXPECT_EQ(s.diameter, 1u);
  EXPECT_EQ(s.min_degree, 8u);
  EXPECT_EQ(s.max_degree, 8u);
}

TEST(GraphStats, CycleDiameterIsHalf) {
  EXPECT_EQ(compute_stats(make_cycle(10)).diameter, 5u);
  EXPECT_EQ(compute_stats(make_cycle(11)).diameter, 5u);
}

TEST(GraphStats, HypercubeDiameterIsDimension) {
  EXPECT_EQ(compute_stats(make_hypercube(5)).diameter, 5u);
}

TEST(GraphStats, EccentricityDependsOnNode) {
  const PortGraph g = make_path(9);
  EXPECT_EQ(eccentricity(g, 0), 8u);
  EXPECT_EQ(eccentricity(g, 4), 4u);  // the middle
}

TEST(GraphStats, DisconnectedThrows) {
  PortGraph g(4);
  g.add_edge_auto(0, 1);
  g.add_edge_auto(2, 3);
  EXPECT_THROW(eccentricity(g, 0), std::invalid_argument);
  EXPECT_THROW(compute_stats(g), std::invalid_argument);
}

TEST(GraphStats, SingleNode) {
  const GraphStats s = compute_stats(make_path(1));
  EXPECT_EQ(s.diameter, 0u);
  EXPECT_EQ(s.edges, 0u);
}

// ---- trace analysis --------------------------------------------------------

TEST(TraceAnalysis, WakeupEdgeTrafficIsExactlyOneEachWay) {
  Rng rng(1001);
  const PortGraph g = make_random_connected(30, 0.2, rng);
  RunOptions opts;
  opts.trace = true;
  const TaskReport r =
      run_task(g, 0, TreeWakeupOracle(), WakeupTreeAlgorithm(), opts);
  ASSERT_TRUE(r.ok());
  const auto per_edge = traffic_per_edge(r.run.trace);
  EXPECT_EQ(per_edge.size(), g.num_nodes() - 1);  // exactly the tree edges
  for (const auto& [edge, count] : per_edge) {
    EXPECT_EQ(count, 1u);  // parent -> child, once
  }
  EXPECT_EQ(max_edge_traffic(r.run.trace), 1u);
  EXPECT_EQ(uninformed_sends(r.run.trace), 0u);
}

TEST(TraceAnalysis, BroadcastStaysWithinTreeAndBudgets) {
  Rng rng(1002);
  const PortGraph g = make_random_connected(40, 0.25, rng);
  const SpanningTree tree = build_tree(g, 2, TreeKind::kLight);
  std::set<EdgeKey> allowed;
  for (const Edge& e : tree.edges(g)) allowed.insert({e.u, e.v});

  RunOptions opts;
  opts.trace = true;
  opts.scheduler = SchedulerKind::kAsyncLifo;
  const TaskReport r =
      run_task(g, 2, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(traffic_within(r.run.trace, allowed));
  // Hellos: at most once per edge; M: at most twice per edge.
  for (const auto& [edge, count] :
       traffic_per_edge(r.run.trace, MsgKind::kHello)) {
    EXPECT_LE(count, 1u);
  }
  for (const auto& [edge, count] :
       traffic_per_edge(r.run.trace, MsgKind::kSource)) {
    EXPECT_LE(count, 2u);
  }
  // Spontaneous hellos are exactly the uninformed sends.
  EXPECT_GT(uninformed_sends(r.run.trace), 0u);
}

TEST(TraceAnalysis, DirectedCountsSumToTotal) {
  const PortGraph g = make_star(12);
  RunOptions opts;
  opts.trace = true;
  const TaskReport r =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
  ASSERT_TRUE(r.ok());
  std::uint64_t sum = 0;
  for (const auto& [dir, count] : traffic_per_direction(r.run.trace)) {
    sum += count;
  }
  EXPECT_EQ(sum, r.run.metrics.messages_total);
}

TEST(TraceAnalysis, EmptyTrace) {
  const std::vector<SentRecord> empty;
  EXPECT_TRUE(traffic_per_edge(empty).empty());
  EXPECT_EQ(max_edge_traffic(empty), 0u);
  EXPECT_TRUE(traffic_within(empty, {}));
  EXPECT_EQ(uninformed_sends(empty), 0u);
}

}  // namespace
}  // namespace oraclesize
