// Coverage for the extended family builders (torus, bipartite, wheel,
// caterpillar, random regular) and their use as algorithm workloads.
#include <gtest/gtest.h>

#include "core/broadcast_b.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "graph/light_tree.h"
#include "graph/validate.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/tree_wakeup_oracle.h"

namespace oraclesize {
namespace {

void expect_valid_connected(const PortGraph& g) {
  EXPECT_EQ(validate_ports(g), "");
  EXPECT_TRUE(is_connected(g));
}

TEST(BuildersExtra, Torus) {
  const PortGraph g = make_torus(4, 5);
  expect_valid_connected(g);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_EQ(g.num_edges(), 40u);  // 2 edges per node
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(BuildersExtra, TorusRejectsSmallWrap) {
  EXPECT_THROW(make_torus(2, 5), std::invalid_argument);
  EXPECT_THROW(make_torus(5, 2), std::invalid_argument);
}

TEST(BuildersExtra, CompleteBipartite) {
  const PortGraph g = make_complete_bipartite(3, 4);
  expect_valid_connected(g);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 4u);
  for (NodeId v = 3; v < 7; ++v) EXPECT_EQ(g.degree(v), 3u);
  // No edge within a side.
  EXPECT_EQ(g.port_towards(0, 1), kNoPort);
  EXPECT_EQ(g.port_towards(3, 4), kNoPort);
}

TEST(BuildersExtra, Star1KIsBipartite) {
  const PortGraph g = make_complete_bipartite(1, 6);
  EXPECT_EQ(g.degree(0), 6u);
  expect_valid_connected(g);
}

TEST(BuildersExtra, Wheel) {
  const PortGraph g = make_wheel(8);
  expect_valid_connected(g);
  EXPECT_EQ(g.num_edges(), 14u);  // 7 rim + 7 spokes
  EXPECT_EQ(g.degree(0), 7u);
  for (NodeId v = 1; v < 8; ++v) EXPECT_EQ(g.degree(v), 3u);
}

TEST(BuildersExtra, Caterpillar) {
  const PortGraph g = make_caterpillar(5, 3);
  expect_valid_connected(g);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_EQ(g.num_edges(), 19u);  // a tree
  // Spine interior nodes: 2 spine neighbors + 3 legs.
  EXPECT_EQ(g.degree(2), 5u);
  // Legs are leaves.
  EXPECT_EQ(g.degree(19), 1u);
}

TEST(BuildersExtra, CaterpillarNoLegsIsPath) {
  const PortGraph g = make_caterpillar(6, 0);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
}

TEST(BuildersExtra, RandomRegular) {
  Rng rng(81);
  for (auto [n, d] : {std::pair<std::size_t, std::size_t>{20, 3},
                      {30, 4}, {50, 6}}) {
    const PortGraph g = make_random_regular(n, d, rng);
    expect_valid_connected(g);
    EXPECT_EQ(g.num_nodes(), n);
    for (NodeId v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), d);
  }
}

TEST(BuildersExtra, RandomRegularRejectsImpossible) {
  Rng rng(82);
  EXPECT_THROW(make_random_regular(5, 3, rng), std::invalid_argument);  // nd odd
  EXPECT_THROW(make_random_regular(4, 4, rng), std::invalid_argument);  // d>=n
  EXPECT_THROW(make_random_regular(10, 1, rng), std::invalid_argument);  // d<2
}

TEST(BuildersExtra, NewFamiliesRunBothPrimitives) {
  Rng rng(83);
  std::vector<PortGraph> graphs;
  graphs.push_back(make_torus(5, 6));
  graphs.push_back(make_complete_bipartite(6, 9));
  graphs.push_back(make_wheel(25));
  graphs.push_back(make_caterpillar(8, 4));
  graphs.push_back(make_random_regular(40, 4, rng));
  for (const PortGraph& g : graphs) {
    const std::size_t n = g.num_nodes();
    const TaskReport w =
        run_task(g, 0, TreeWakeupOracle(), WakeupTreeAlgorithm());
    ASSERT_TRUE(w.ok()) << g.summary();
    EXPECT_EQ(w.run.metrics.messages_total, n - 1);
    const TaskReport b =
        run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm());
    ASSERT_TRUE(b.ok()) << g.summary();
    EXPECT_LE(b.run.metrics.messages_total, 3 * (n - 1));
    EXPECT_LE(b.oracle_bits, 10 * n);
    EXPECT_LE(light_tree(g, 0).contribution, 4 * n);
  }
}

}  // namespace
}  // namespace oraclesize
