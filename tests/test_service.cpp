// End-to-end tests of the advice service (src/service/): the frame
// protocol, content-addressed uploads, the run identity contract against a
// direct BatchRunner, malformed-frame rejection, backpressure, queue
// deadlines, graceful drain, and the Prometheus exposer. Every test runs
// an in-process AdviceService on a throwaway unix socket under /tmp (the
// 108-char sun_path limit rules out deep build trees).
#include "service/advice_service.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_runner.h"
#include "graph/builders.h"
#include "graph/io.h"
#include "service/client.h"
#include "sim/metrics_registry.h"

namespace oraclesize::service {
namespace {

// One temporary socket directory per fixture instance; mkdtemp under /tmp
// keeps sun_path comfortably short.
class ServiceFixture {
 public:
  explicit ServiceFixture(ServiceConfig config = {}) {
    char tmpl[] = "/tmp/oracled_test_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    dir_ = dir;
    config.socket_path = dir_ + "/s";
    service_ = std::make_unique<AdviceService>(std::move(config));
    service_->start();
  }

  ~ServiceFixture() {
    service_->shutdown();
    service_->wait();
    service_.reset();
    ::rmdir(dir_.c_str());
  }

  AdviceService& service() { return *service_; }
  const std::string& socket_path() { return service_->config().socket_path; }
  const std::string& metrics_socket_path() {
    return service_->config().metrics_socket_path;
  }

  /// Polls until `cond` holds (the staging seams are asynchronous: a raw
  /// send is enqueued by a connection thread we do not control).
  template <typename Cond>
  bool eventually(Cond cond, int timeout_ms = 5000) {
    for (int waited = 0; waited < timeout_ms; ++waited) {
      if (cond()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return cond();
  }

 private:
  std::string dir_;
  std::unique_ptr<AdviceService> service_;
};

std::string upload_grid(ServiceClient& client, std::size_t rows,
                        std::size_t cols) {
  const auto reply = client.upload(to_text(make_grid(rows, cols)));
  EXPECT_TRUE(reply.ok()) << reply.body;
  return reply.field("digest");
}

/// The request frame for an advise/run body, built the same way the client
/// does — used with send_raw to stage requests without blocking on the
/// reply.
std::string raw_frame(std::uint8_t opcode, const std::string& body) {
  std::string payload(1, static_cast<char>(opcode));
  payload += body;
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.push_back(static_cast<char>(n & 0xff));
  frame.push_back(static_cast<char>((n >> 8) & 0xff));
  frame.push_back(static_cast<char>((n >> 16) & 0xff));
  frame.push_back(static_cast<char>((n >> 24) & 0xff));
  frame += payload;
  return frame;
}

TEST(ServiceProtocol, DigestAndKvPrimitives) {
  // FNV-1a 64 known vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(digest_hex(0xaf63dc4c8601ec8cull), "af63dc4c8601ec8c");
  EXPECT_EQ(digest_hex(0x1ull), "0000000000000001");

  std::string body;
  append_kv(body, "task", "wakeup");
  append_kv(body, "seed", std::uint64_t{42});
  const auto kv = parse_kv(body + "garbage line\n=nokey\nseed=43\n");
  EXPECT_EQ(kv.at("task"), "wakeup");
  EXPECT_EQ(kv.at("seed"), "43");  // last value wins
  EXPECT_EQ(kv.count(""), 0u);    // empty keys dropped
}

TEST(ServiceRoundTrip, PingUploadAdviseRunStats) {
  ServiceFixture fx;
  ServiceClient client(fx.socket_path());

  const auto pong = client.ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.field("service"), "oracled");

  const std::string text = to_text(make_grid(6, 6));
  const auto up1 = client.upload(text);
  ASSERT_TRUE(up1.ok()) << up1.body;
  EXPECT_EQ(up1.field_u64("fresh"), 1u);
  EXPECT_EQ(up1.field_u64("nodes"), 36u);
  const std::string digest = up1.field("digest");
  ASSERT_EQ(digest.size(), 16u);

  // Content addressing: a re-upload and a cosmetic variant (leading
  // comment, trailing blank lines) both land on the same digest.
  const auto up2 = client.upload(text);
  EXPECT_EQ(up2.field_u64("fresh"), 0u);
  EXPECT_EQ(up2.field("digest"), digest);
  const auto up3 = client.upload("# a comment\n" + text + "\n\n");
  EXPECT_EQ(up3.field("digest"), digest);
  EXPECT_EQ(fx.service().graphs_resident(), 1u);

  TaskRequest req;
  req.digest = digest;
  req.task = "wakeup";
  const auto advised = client.advise(req);
  ASSERT_TRUE(advised.ok()) << advised.body;
  EXPECT_GT(advised.field_u64("oracle_bits"), 0u);
  EXPECT_EQ(advised.field_u64("cached"), 0u);
  const auto advised_again = client.advise(req);
  EXPECT_EQ(advised_again.field_u64("cached"), 1u);
  EXPECT_EQ(advised_again.field_u64("oracle_bits"),
            advised.field_u64("oracle_bits"));

  const auto ran = client.run(req);
  ASSERT_TRUE(ran.ok()) << ran.body;
  EXPECT_EQ(ran.field("status"), "completed");
  EXPECT_EQ(ran.field_u64("advice_cached"), 1u);  // advise() warmed it
  EXPECT_EQ(ran.field_u64("all_informed"), 1u);

  const auto stats = client.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.field_u64("graphs"), 1u);
  EXPECT_GE(stats.field_u64("cache_hits"), 2u);
  EXPECT_EQ(stats.field_u64("jobs"), 1u);
}

TEST(ServiceRoundTrip, RunMatchesDirectBatchRunner) {
  ServiceFixture fx;
  ServiceClient client(fx.socket_path());
  const PortGraph g = make_grid(6, 6);
  const auto up = client.upload(to_text(g));
  ASSERT_TRUE(up.ok());

  std::vector<TaskRequest> requests;
  for (const char* task : {"wakeup", "broadcast", "flooding", "census"}) {
    TaskRequest req;
    req.digest = up.field("digest");
    req.task = task;
    req.source = 7;
    req.scheduler = "fifo";
    req.seed = 11;
    requests.push_back(req);
  }
  requests.push_back(requests[2]);
  requests.back().fault_drop = 0.2;  // a faulty flooding run
  requests.back().fault_seed = 5;

  BatchRunner direct(1);
  for (const auto& req : requests) {
    const auto reply = client.run(req);
    ASSERT_LE(reply.status, kStatusTaskFailed) << reply.body;

    const TaskBinding binding = bind_task(req);
    const auto reports = direct.run(
        {TrialSpec(&g, req.source, binding.oracle.get(), binding.algorithm,
                   run_options_for(req))});
    ASSERT_EQ(reports.size(), 1u);
    const TaskReport& want = reports[0];
    ASSERT_FALSE(want.failed()) << want.error;

    // The identity contract: every result-bearing field the service
    // reports equals the direct execution, bit for bit.
    EXPECT_EQ(reply.field("status"), to_string(want.run.status)) << req.task;
    EXPECT_EQ(reply.field("oracle"), want.oracle_name);
    EXPECT_EQ(reply.field("algorithm"), want.algorithm_name);
    EXPECT_EQ(reply.field_u64("oracle_bits"), want.oracle_bits) << req.task;
    EXPECT_EQ(reply.field_u64("max_advice_bits"), want.max_advice_bits);
    EXPECT_EQ(reply.field_u64("messages_total"),
              want.run.metrics.messages_total)
        << req.task;
    EXPECT_EQ(reply.field_u64("bits_sent"), want.run.metrics.bits_sent);
    EXPECT_EQ(reply.field_u64("deliveries"), want.run.metrics.deliveries);
    EXPECT_EQ(reply.field_u64("completion_key"),
              want.run.metrics.completion_key)
        << req.task;
    EXPECT_EQ(reply.field_u64("informed"),
              static_cast<std::uint64_t>(want.run.informed_count()));
    EXPECT_EQ(reply.status, want.ok() ? kStatusOk : kStatusTaskFailed);
  }
}

TEST(ServiceErrors, BadRequestsGetInfrastructureStatus) {
  ServiceFixture fx;
  ServiceClient client(fx.socket_path());
  const std::string digest = upload_grid(client, 4, 4);

  TaskRequest req;
  req.digest = "00000000deadbeef";  // never uploaded
  auto reply = client.run(req);
  EXPECT_EQ(reply.status, kStatusError);
  EXPECT_NE(reply.field("error").find("unknown digest"), std::string::npos)
      << reply.body;

  req.digest = digest;
  req.task = "teleportation";
  reply = client.run(req);
  EXPECT_EQ(reply.status, kStatusError);

  req.task = "wakeup";
  req.source = 16;  // one past the last node
  reply = client.run(req);
  EXPECT_EQ(reply.status, kStatusError);

  // Unparseable upload.
  reply = client.upload("this is not a network\n");
  EXPECT_EQ(reply.status, kStatusError);

  // A request error must not poison the connection.
  EXPECT_TRUE(client.ping().ok());
}

TEST(ServiceErrors, MalformedFramesCloseTheConnection) {
  ServiceFixture fx;

  {  // Oversized length prefix: rejected before any allocation.
    ServiceClient client(fx.socket_path());
    const std::uint32_t huge = kDefaultMaxFrameBytes + 1;
    client.send_raw(&huge, sizeof huge);
    ServiceClient::Reply reply;
    ASSERT_TRUE(client.read_reply(reply));
    EXPECT_EQ(reply.status, kStatusError);
    EXPECT_NE(reply.body.find("oversized"), std::string::npos) << reply.body;
    EXPECT_FALSE(client.read_reply(reply));  // server hung up
  }
  {  // Empty frame (length 0).
    ServiceClient client(fx.socket_path());
    const std::uint32_t zero = 0;
    client.send_raw(&zero, sizeof zero);
    ServiceClient::Reply reply;
    ASSERT_TRUE(client.read_reply(reply));
    EXPECT_EQ(reply.status, kStatusError);
    EXPECT_FALSE(client.read_reply(reply));
  }
  {  // Truncated payload: promise 64 bytes, deliver 3, hang up.
    ServiceClient client(fx.socket_path());
    const std::uint32_t length = 64;
    client.send_raw(&length, sizeof length);
    client.send_raw("abc", 3);
    ::shutdown(client.fd(), SHUT_WR);
    ServiceClient::Reply reply;
    ASSERT_TRUE(client.read_reply(reply));
    EXPECT_EQ(reply.status, kStatusError);
    EXPECT_NE(reply.body.find("truncated"), std::string::npos) << reply.body;
    EXPECT_FALSE(client.read_reply(reply));
  }
  {  // Unknown opcode is a REQUEST error: answered, connection kept.
    ServiceClient client(fx.socket_path());
    const auto reply = client.request(99, "");
    EXPECT_EQ(reply.status, kStatusError);
    EXPECT_TRUE(client.ping().ok());
  }
  // The daemon survived all of it.
  ServiceClient client(fx.socket_path());
  EXPECT_TRUE(client.ping().ok());
  EXPECT_GE(fx.service().cache_stats().entries, 0u);
}

TEST(ServiceFlow, BackpressureRejectsWhenQueueIsFull) {
  ServiceConfig config;
  config.queue_limit = 1;
  ServiceFixture fx(std::move(config));
  ServiceClient staged(fx.socket_path());
  const std::string digest = upload_grid(staged, 4, 4);

  TaskRequest req;
  req.digest = digest;

  // Hold the dispatcher, stage one request to fill the queue (raw send —
  // reading the reply now would block), then watch the next one bounce.
  fx.service().pause_dispatching();
  const std::string frame =
      raw_frame(kOpAdvise, encode_task_request(req, false));
  staged.send_raw(frame.data(), frame.size());
  ASSERT_TRUE(fx.eventually([&] { return fx.service().queue_depth() == 1; }));

  ServiceClient bounced(fx.socket_path());
  const auto reply = bounced.advise(req);
  EXPECT_EQ(reply.status, kStatusError);
  EXPECT_NE(reply.field("error").find("overloaded"), std::string::npos)
      << reply.body;

  // Release the dispatcher: the staged request completes normally.
  fx.service().resume_dispatching();
  ServiceClient::Reply ok_reply;
  ASSERT_TRUE(staged.read_reply(ok_reply));
  EXPECT_TRUE(ok_reply.ok()) << ok_reply.body;
}

TEST(ServiceFlow, QueueDeadlineExpiresBeforeExecution) {
  ServiceFixture fx;
  ServiceClient client(fx.socket_path());
  const std::string digest = upload_grid(client, 4, 4);

  TaskRequest req;
  req.digest = digest;
  req.deadline_ms = 1;

  fx.service().pause_dispatching();
  const std::string frame = raw_frame(kOpRun, encode_task_request(req, true));
  client.send_raw(frame.data(), frame.size());
  ASSERT_TRUE(fx.eventually([&] { return fx.service().queue_depth() == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  fx.service().resume_dispatching();

  ServiceClient::Reply reply;
  ASSERT_TRUE(client.read_reply(reply));
  EXPECT_EQ(reply.status, kStatusError);
  EXPECT_NE(reply.field("error").find("deadline expired"), std::string::npos)
      << reply.body;

  // Without the artificial stall the same request sails through.
  const auto fine = client.run(req);
  EXPECT_TRUE(fine.ok()) << fine.body;
}

TEST(ServiceFlow, GracefulDrainFinishesQueuedWork) {
  ServiceFixture fx;
  ServiceClient uploader(fx.socket_path());
  const std::string digest = upload_grid(uploader, 6, 6);

  TaskRequest req;
  req.digest = digest;
  const std::string frame = raw_frame(kOpRun, encode_task_request(req, true));

  // Three queued runs on three connections, dispatcher held.
  fx.service().pause_dispatching();
  std::vector<std::unique_ptr<ServiceClient>> clients;
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<ServiceClient>(fx.socket_path()));
    clients.back()->send_raw(frame.data(), frame.size());
  }
  ASSERT_TRUE(fx.eventually([&] { return fx.service().queue_depth() == 3; }));

  // Drain. Every queued request still gets its full answer.
  fx.service().shutdown();
  for (auto& client : clients) {
    ServiceClient::Reply reply;
    ASSERT_TRUE(client->read_reply(reply));
    EXPECT_TRUE(reply.ok()) << reply.body;
    EXPECT_EQ(reply.field("status"), "completed");
    ASSERT_FALSE(client->read_reply(reply));  // then EOF
  }
  fx.service().wait();
  // Post-drain the socket is gone: new connections are refused.
  EXPECT_THROW(ServiceClient{fx.socket_path()}, ServiceError);
}

TEST(ServiceFlow, ShutdownRequestAnswersThenDrains) {
  ServiceFixture fx;
  ServiceClient client(fx.socket_path());
  const auto reply = client.shutdown_server();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.field_u64("draining"), 1u);
  fx.service().wait();  // returns: the request really did stop the service
}

TEST(ServiceMetrics, PrometheusTextFormat) {
  MetricsRegistry registry;
  auto& hits = registry.counter("demo_hits");
  auto& latency = registry.histogram("demo latency.ns");  // needs sanitizing
  hits.add(3);
  latency.observe(0);
  latency.observe(1);
  latency.observe(900);  // bucket [512, 1024)

  std::ostringstream out;
  registry.snapshot().write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE demo_hits counter\ndemo_hits 3\n"),
            std::string::npos)
      << text;
  // Name sanitized, buckets cumulative, +Inf closes the histogram.
  EXPECT_NE(text.find("demo_latency_ns_bucket{le=\"0\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("demo_latency_ns_bucket{le=\"1023\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("demo_latency_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("demo_latency_ns_sum 901\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("demo_latency_ns_count 3\n"), std::string::npos) << text;
}

TEST(ServiceMetrics, ExposerServesScrapeOverHttp) {
  ServiceFixture fx;
  ServiceClient client(fx.socket_path());
  const std::string digest = upload_grid(client, 5, 5);
  TaskRequest req;
  req.digest = digest;
  ASSERT_TRUE(client.advise(req).ok());
  ASSERT_TRUE(client.advise(req).ok());  // second one is a cache hit

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(fx.metrics_socket_path().size(), sizeof(addr.sun_path));
  std::strncpy(addr.sun_path, fx.metrics_socket_path().c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const char get[] = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, get, sizeof get - 1, 0),
            static_cast<ssize_t>(sizeof get - 1));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) response.append(buf, n);
  ::close(fd);

  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("oracled_requests_total"), std::string::npos);
  EXPECT_NE(response.find("oracled_advice_cache_bytes"), std::string::npos);
  // The repeat advise above registered as a hit.
  EXPECT_NE(response.find("oracled_advice_cache_hits 1"), std::string::npos)
      << response;
  // The in-process document matches what the exposer serves (modulo the
  // HTTP envelope): spot-check a line.
  EXPECT_NE(fx.service().metrics_text().find("oracled_advice_cache_hits 1"),
            std::string::npos);
}

TEST(ServiceMetrics, LruBudgetEvictsAndCounts) {
  // A deliberately starved cache: every advise recomputes, evictions tick.
  ServiceConfig config;
  config.cache_budget_bytes = 1;
  ServiceFixture fx(std::move(config));
  ServiceClient client(fx.socket_path());
  const std::string digest = upload_grid(client, 5, 5);

  TaskRequest req;
  req.digest = digest;
  const auto first = client.advise(req);
  ASSERT_TRUE(first.ok());
  const auto second = client.advise(req);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.field_u64("cached"), 0u);  // evicted in between
  EXPECT_EQ(second.field_u64("oracle_bits"), first.field_u64("oracle_bits"));

  const auto stats = client.stats();
  EXPECT_EQ(stats.field_u64("cache_budget_bytes"), 1u);
  EXPECT_GE(stats.field_u64("cache_evictions"), 2u);
  EXPECT_EQ(stats.field_u64("cache_hits"), 0u);
}

}  // namespace
}  // namespace oraclesize::service
