#!/usr/bin/env bash
# End-to-end smoke test of oraclesize_cli, run by ctest. First argument:
# path to the CLI binary.
set -euo pipefail

CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

# gen -> run for every task on a sparse network.
"$CLI" gen random 80 0.08 --seed 5 > "$TMP/net.txt"
grep -q '^portgraph 80$' "$TMP/net.txt" || fail "gen header"

for task in wakeup broadcast flooding census gossip hybrid; do
  "$CLI" run "$task" < "$TMP/net.txt" > "$TMP/out.txt" || fail "run $task"
  grep -q ': ok,' "$TMP/out.txt" || fail "$task not ok"
done

# advise | run --advice-file round trip.
"$CLI" advise light < "$TMP/net.txt" > "$TMP/advice.txt"
grep -q '^advice 80$' "$TMP/advice.txt" || fail "advise header"
"$CLI" run broadcast --advice-file "$TMP/advice.txt" < "$TMP/net.txt" \
  > "$TMP/out.txt"
grep -q 'file:' "$TMP/out.txt" || fail "advice-file oracle name"
grep -q ': ok,' "$TMP/out.txt" || fail "advice-file run"

# Census reports the node count.
"$CLI" gen grid 6 7 | "$CLI" run census > "$TMP/out.txt"
grep -q 'census output at source: 42' "$TMP/out.txt" || fail "census output"

# Deterministic generation: same seed, same bytes.
"$CLI" gen random 50 0.1 --seed 9 > "$TMP/a.txt"
"$CLI" gen random 50 0.1 --seed 9 > "$TMP/b.txt"
cmp -s "$TMP/a.txt" "$TMP/b.txt" || fail "gen determinism"

# tree and bounds and game produce their key lines.
"$CLI" gen complete 32 | "$CLI" tree light | grep -q 'contribution' \
  || fail "tree"
"$CLI" bounds wakeup 256 1 500 | grep -q 'guaranteed wakeup messages' \
  || fail "bounds wakeup"
"$CLI" bounds broadcast 256 4 64 | grep -q 'guaranteed broadcast messages' \
  || fail "bounds broadcast"
"$CLI" game 60 4 | grep -q 'measured probes' || fail "game"

# Failure paths exit non-zero.
if "$CLI" run wakeup --source 999 < "$TMP/net.txt" >/dev/null 2>&1; then
  fail "out-of-range source accepted"
fi
if echo "garbage" | "$CLI" run wakeup >/dev/null 2>&1; then
  fail "garbage network accepted"
fi
if "$CLI" gen bogus 5 >/dev/null 2>&1; then
  fail "unknown family accepted"
fi

"$CLI" gen torus 5 5 | "$CLI" stats | grep -q "diameter" || fail "stats"

echo "cli smoke: all checks passed"
