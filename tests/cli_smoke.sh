#!/usr/bin/env bash
# End-to-end smoke test of oraclesize_cli, run by ctest. First argument:
# path to the CLI binary.
set -euo pipefail

CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

# gen -> run for every task on a sparse network.
"$CLI" gen random 80 0.08 --seed 5 > "$TMP/net.txt"
grep -q '^portgraph 80$' "$TMP/net.txt" || fail "gen header"

for task in wakeup broadcast flooding census gossip hybrid; do
  "$CLI" run "$task" < "$TMP/net.txt" > "$TMP/out.txt" || fail "run $task"
  grep -q ': ok,' "$TMP/out.txt" || fail "$task not ok"
done

# advise | run --advice-file round trip.
"$CLI" advise light < "$TMP/net.txt" > "$TMP/advice.txt"
grep -q '^advice 80$' "$TMP/advice.txt" || fail "advise header"
"$CLI" run broadcast --advice-file "$TMP/advice.txt" < "$TMP/net.txt" \
  > "$TMP/out.txt"
grep -q 'file:' "$TMP/out.txt" || fail "advice-file oracle name"
grep -q ': ok,' "$TMP/out.txt" || fail "advice-file run"

# Census reports the node count.
"$CLI" gen grid 6 7 | "$CLI" run census > "$TMP/out.txt"
grep -q 'census output at source: 42' "$TMP/out.txt" || fail "census output"

# Deterministic generation: same seed, same bytes.
"$CLI" gen random 50 0.1 --seed 9 > "$TMP/a.txt"
"$CLI" gen random 50 0.1 --seed 9 > "$TMP/b.txt"
cmp -s "$TMP/a.txt" "$TMP/b.txt" || fail "gen determinism"

# tree and bounds and game produce their key lines.
"$CLI" gen complete 32 | "$CLI" tree light | grep -q 'contribution' \
  || fail "tree"
"$CLI" bounds wakeup 256 1 500 | grep -q 'guaranteed wakeup messages' \
  || fail "bounds wakeup"
"$CLI" bounds broadcast 256 4 64 | grep -q 'guaranteed broadcast messages' \
  || fail "bounds broadcast"
"$CLI" game 60 4 | grep -q 'measured probes' || fail "game"

# Failure paths exit non-zero.
if "$CLI" run wakeup --source 999 < "$TMP/net.txt" >/dev/null 2>&1; then
  fail "out-of-range source accepted"
fi
if echo "garbage" | "$CLI" run wakeup >/dev/null 2>&1; then
  fail "garbage network accepted"
fi
if "$CLI" gen bogus 5 >/dev/null 2>&1; then
  fail "unknown family accepted"
fi

"$CLI" gen torus 5 5 | "$CLI" stats | grep -q "diameter" || fail "stats"

# Fault-injection flags. Rate 0 is the reliable network and must stay ok.
"$CLI" run broadcast --fault-rate 0 --fault-seed 7 < "$TMP/net.txt" \
  > "$TMP/out.txt" || fail "fault-rate 0"
grep -q ': ok,' "$TMP/out.txt" || fail "fault-rate 0 not ok"

# Dropping every message fails the task: a REPORTABLE result (exit 1),
# distinct from an infrastructure error (exit 2).
set +e
"$CLI" run flooding --fault-rate 1 --fault-seed 7 < "$TMP/net.txt" \
  > "$TMP/out.txt" 2>&1
rc=$?
set -e
[ "$rc" -eq 1 ] || fail "full drop should exit 1 (got $rc)"
grep -q 'status: task_failed' "$TMP/out.txt" || fail "full drop status"

# JSON records carry status and (retried) attempt counts; the same seeds
# must reproduce the same records.
set +e
"$CLI" run flooding --fault-rate 0.4 --fault-seed 3 --retries 2 --json \
  < "$TMP/net.txt" > "$TMP/f1.json" 2>&1
"$CLI" run flooding --fault-rate 0.4 --fault-seed 3 --retries 2 --json \
  < "$TMP/net.txt" > "$TMP/f2.json" 2>&1
set -e
grep -q '"status":' "$TMP/f1.json" || fail "json status field"
grep -q '"attempts":' "$TMP/f1.json" || fail "json attempts field"
strip_timing() { sed -E 's/"(wall|advise|run)_ns": [0-9]+/"\1_ns": X/g' "$1"; }
[ "$(strip_timing "$TMP/f1.json")" = "$(strip_timing "$TMP/f2.json")" ] \
  || fail "faulty run not reproducible"

# --seed-sweep K fans one trial out into K fault seeds and reports the
# seed-family batching; --no-seed-batch must reproduce the same records on
# the scalar path (the lockstep executor's determinism contract).
"$CLI" run broadcast --fault-rate 0.05 --fault-seed 5 --seed-sweep 6 \
  < "$TMP/net.txt" > "$TMP/sweep.txt" 2>&1 || true
[ "$(grep -c '^source 0 fault-seed' "$TMP/sweep.txt")" -eq 6 ] \
  || fail "seed-sweep trial count"
grep -q '^seed batching: 1 family, 6 lanes' "$TMP/sweep.txt" \
  || fail "seed-sweep batching banner"
"$CLI" run broadcast --fault-rate 0.05 --fault-seed 5 --seed-sweep 6 --json \
  < "$TMP/net.txt" > "$TMP/s1.json" 2>&1 || true
"$CLI" run broadcast --fault-rate 0.05 --fault-seed 5 --seed-sweep 6 --json \
  --no-seed-batch < "$TMP/net.txt" > "$TMP/s2.json" 2>&1 || true
grep -q '"fault_seed": 5' "$TMP/s1.json" || fail "json fault_seed field"
[ "$(strip_timing "$TMP/s1.json")" = "$(strip_timing "$TMP/s2.json")" ] \
  || fail "seed-sweep batched vs scalar records differ"

# A deadline terminates structurally (timeout is a failed task, not a crash).
set +e
"$CLI" run broadcast --deadline-ms 1 < "$TMP/net.txt" >/dev/null 2>&1
[ $? -le 1 ] || fail "deadline should not be an infrastructure error"
set -e

# Trace record -> replay -> diff -> export round trip.
"$CLI" trace record wakeup --trace-file "$TMP/w.trace" < "$TMP/net.txt" \
  > /dev/null 2> "$TMP/out.txt" || fail "trace record"
grep -q '^\[trace\] wrote' "$TMP/out.txt" || fail "trace record banner"
grep -q '^oracletrace 1$' "$TMP/w.trace" || fail "trace file magic"
"$CLI" trace replay "$TMP/w.trace" | grep -q 'replay OK' \
  || fail "trace replay"
"$CLI" trace diff "$TMP/w.trace" "$TMP/w.trace" | grep -q 'identical' \
  || fail "trace self-diff"
"$CLI" trace export "$TMP/w.trace" > "$TMP/w.json" || fail "trace export"
grep -q '"traceEvents"' "$TMP/w.json" || fail "chrome export shape"

# Two different recordings diff as different (exit 1, still reportable).
"$CLI" trace record census --seed 1 --scheduler random \
  --trace-file "$TMP/c1.trace" < "$TMP/net.txt" >/dev/null 2>&1
"$CLI" trace record census --seed 2 --scheduler random \
  --trace-file "$TMP/c2.trace" < "$TMP/net.txt" >/dev/null 2>&1
set +e
"$CLI" trace diff "$TMP/c1.trace" "$TMP/c2.trace" > "$TMP/out.txt" 2>&1
rc=$?
set -e
[ "$rc" -eq 1 ] || fail "divergent diff should exit 1 (got $rc)"

# A tampered artifact is rejected as an infrastructure error (exit 2).
sed 's/^e \([0-9]*\)/e 9\1/' "$TMP/w.trace" > "$TMP/bad.trace"
set +e
"$CLI" trace replay "$TMP/bad.trace" >/dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "tampered trace should exit 2 (got $rc)"

# --trace-file on plain run records too, and faulty replays stay exact.
"$CLI" run flooding --fault-rate 0.3 --fault-seed 11 \
  --trace-file "$TMP/f.trace" < "$TMP/net.txt" >/dev/null 2>&1 || true
"$CLI" trace replay "$TMP/f.trace" | grep -q 'replay OK' \
  || fail "faulty trace replay"

# Byzantine adversary flags. Rate 0 is the honest network: exit 0, and the
# JSON record must be byte-identical to a run without any --byz flag (the
# byz_* fields only appear once the adversary is enabled).
"$CLI" run broadcast --byz-rate 0 --byz-seed 99 --json < "$TMP/net.txt" \
  > "$TMP/z.json" || fail "byz-rate 0"
"$CLI" run broadcast --json < "$TMP/net.txt" > "$TMP/plain.json"
[ "$(strip_timing "$TMP/z.json")" = "$(strip_timing "$TMP/plain.json")" ] \
  || fail "byz-rate 0 record differs from plain run"
grep -q byz "$TMP/z.json" && fail "byz fields leaked into a zero-byz record"

# Random-bits forging hands scheme B a control message it can prove no
# honest node sends: a DETECTED Byzantine failure, reportable (exit 1).
set +e
"$CLI" run broadcast --byz-rate 0.3 --byz-seed 7 < "$TMP/net.txt" \
  > "$TMP/out.txt" 2>&1
rc=$?
set -e
[ "$rc" -eq 1 ] || fail "detected byz run should exit 1 (got $rc)"
grep -q 'status: byzantine_detected' "$TMP/out.txt" || fail "byz status"

# Structured lies against flooding on a tree (every path runs through the
# liars) fail SILENTLY: task_failed, no violation — the fooled case.
"$CLI" gen tree 64 --seed 5 > "$TMP/tree.txt"
set +e
"$CLI" run flooding --byz-rate 0.3 --byz-seed 7 \
  --byz-strategy structured-lie < "$TMP/tree.txt" > "$TMP/out.txt" 2>&1
rc=$?
set -e
[ "$rc" -eq 1 ] || fail "fooled byz run should exit 1 (got $rc)"
grep -q 'status: task_failed' "$TMP/out.txt" || fail "fooled byz status"
grep -q 'byzantine_detected' "$TMP/out.txt" && fail "fooled run not silent"

# A fooled/detected run is a reproducible experiment: same seeds, same
# record, adversary counters included.
set +e
"$CLI" run broadcast --byz-rate 0.3 --byz-seed 7 --json < "$TMP/net.txt" \
  > "$TMP/y1.json" 2>&1
"$CLI" run broadcast --byz-rate 0.3 --byz-seed 7 --json < "$TMP/net.txt" \
  > "$TMP/y2.json" 2>&1
set -e
grep -q '"byz_lying_nodes":' "$TMP/y1.json" || fail "json byz counters"
grep -q '"byz_forged":' "$TMP/y1.json" || fail "json byz_forged field"
[ "$(strip_timing "$TMP/y1.json")" = "$(strip_timing "$TMP/y2.json")" ] \
  || fail "byzantine run not reproducible"

# --byz-nodes pins an exact colluding-set size; strategies parse.
set +e
"$CLI" run broadcast --byz-nodes 8 --byz-seed 7 --byz-strategy replay \
  < "$TMP/net.txt" > "$TMP/out.txt" 2>&1
rc=$?
set -e
[ "$rc" -le 1 ] || fail "byz-nodes run should be reportable (got $rc)"
if "$CLI" run broadcast --byz-strategy bogus --byz-rate 0.1 \
    < "$TMP/net.txt" >/dev/null 2>&1; then
  fail "unknown byz strategy accepted"
fi

# Byzantine traces replay bit-identically (forge events included).
"$CLI" run broadcast --byz-rate 0.3 --byz-seed 7 \
  --trace-file "$TMP/byz.trace" < "$TMP/net.txt" >/dev/null 2>&1 || true
"$CLI" trace replay "$TMP/byz.trace" | grep -q 'replay OK' \
  || fail "byzantine trace replay"
"$CLI" trace diff "$TMP/byz.trace" "$TMP/byz.trace" | grep -q 'identical' \
  || fail "byzantine trace self-diff"

echo "cli smoke: all checks passed"
