#include "util/mathx.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace oraclesize {
namespace {

TEST(Mathx, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(7), 2);
  EXPECT_EQ(floor_log2(8), 3);
  EXPECT_EQ(floor_log2((1ull << 40) - 1), 39);
  EXPECT_EQ(floor_log2(1ull << 40), 40);
}

TEST(Mathx, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1023), 10);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Mathx, NumBitsMatchesPaperConvention) {
  // #2(w) = 1 for w <= 1, floor(log2 w) + 1 otherwise.
  EXPECT_EQ(num_bits(0), 1);
  EXPECT_EQ(num_bits(1), 1);
  EXPECT_EQ(num_bits(2), 2);
  EXPECT_EQ(num_bits(3), 2);
  EXPECT_EQ(num_bits(4), 3);
  EXPECT_EQ(num_bits(255), 8);
  EXPECT_EQ(num_bits(256), 9);
}

TEST(Mathx, Log2FactorialSmallExact) {
  EXPECT_NEAR(log2_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log2_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(log2_factorial(2), 1.0, 1e-10);
  EXPECT_NEAR(log2_factorial(4), std::log2(24.0), 1e-10);
  EXPECT_NEAR(log2_factorial(10), std::log2(3628800.0), 1e-9);
}

TEST(Mathx, Log2FactorialStirlingShape) {
  // log2(n!) ~ n log2 n - n log2 e; check to 1% at n = 10^6.
  const double n = 1e6;
  const double stirling = n * std::log2(n) - n / std::log(2.0);
  EXPECT_NEAR(log2_factorial(1000000) / stirling, 1.0, 0.01);
}

TEST(Mathx, Log2ChooseExactSmall) {
  EXPECT_NEAR(log2_choose(5, 2), std::log2(10.0), 1e-10);
  EXPECT_NEAR(log2_choose(10, 5), std::log2(252.0), 1e-10);
  EXPECT_NEAR(log2_choose(7, 0), 0.0, 1e-12);
  EXPECT_NEAR(log2_choose(7, 7), 0.0, 1e-10);
}

TEST(Mathx, Log2ChooseOutOfRangeIsNegInfinity) {
  EXPECT_TRUE(std::isinf(log2_choose(3, 5)));
  EXPECT_LT(log2_choose(3, 5), 0);
}

TEST(Mathx, Log2ChooseSymmetry) {
  for (std::uint64_t a : {10ull, 100ull, 1000ull}) {
    for (std::uint64_t b = 0; b <= a; b += a / 5) {
      EXPECT_NEAR(log2_choose(a, b), log2_choose(a, a - b), 1e-8);
    }
  }
}

TEST(Mathx, Log2ChoosePascalIdentity) {
  // C(a,b) = C(a-1,b-1) + C(a-1,b), verified in log space.
  for (std::uint64_t a : {20ull, 57ull, 300ull}) {
    for (std::uint64_t b = 1; b < a; b += 7) {
      const double lhs = log2_choose(a, b);
      const double rhs = log2_add(log2_choose(a - 1, b - 1),
                                  log2_choose(a - 1, b));
      EXPECT_NEAR(lhs, rhs, 1e-8) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Mathx, Log2AddBasics) {
  EXPECT_NEAR(log2_add(3.0, 3.0), 4.0, 1e-12);  // 8 + 8 = 16
  EXPECT_NEAR(log2_add(0.0, 0.0), 1.0, 1e-12);  // 1 + 1 = 2
  EXPECT_NEAR(log2_add(10.0, -std::numeric_limits<double>::infinity()), 10.0,
              1e-12);
  // Dominance: adding a tiny term barely moves a large one.
  EXPECT_NEAR(log2_add(100.0, 0.0), 100.0, 1e-10);
}

TEST(Mathx, Log2SubInverseOfAdd) {
  const double a = 12.7, b = 9.1;
  const double sum = log2_add(a, b);
  EXPECT_NEAR(log2_sub(sum, b), a, 1e-9);
  EXPECT_TRUE(std::isinf(log2_sub(5.0, 5.0)));
}

TEST(Mathx, Claim21HoldsInPaperRegime) {
  // Claim 2.1: C(a(1+b), a) <= (6b)^a for a, b large enough. The proof needs
  // a > some A and b > some B; b >= 3 and a >= 2 already work numerically.
  for (std::uint64_t a : {2ull, 5ull, 10ull, 100ull, 1000ull}) {
    for (std::uint64_t b : {3ull, 4ull, 10ull, 64ull, 1000ull}) {
      EXPECT_TRUE(claim21_holds(a, b)) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Mathx, Claim21Tightness) {
  // The bound is loose but not absurdly so: the ratio
  // a*log2(6b) - log2 C(a(1+b), a) stays positive and grows mildly.
  const double gap = 100.0 * std::log2(6.0 * 50.0) - log2_choose(100 * 51, 100);
  EXPECT_GT(gap, 0.0);
  EXPECT_LT(gap, 100.0 * 3.0);  // within a constant factor per unit a
}

}  // namespace
}  // namespace oraclesize
