// Theorem 3.1 end to end: the O(n)-bit light-tree oracle + scheme B
// broadcasts with a linear number of messages under every scheduler,
// anonymously, with constant-size messages.
#include "core/broadcast_b.h"

#include <gtest/gtest.h>

#include <algorithm>

#include <set>

#include "core/runner.h"
#include "graph/builders.h"
#include "graph/clique_replace.h"
#include "graph/complete_star.h"
#include "graph/light_tree.h"
#include "graph/subdivision.h"
#include "oracle/light_broadcast_oracle.h"

namespace oraclesize {
namespace {

struct BroadcastCase {
  std::string name;
  PortGraph graph;
  NodeId source;
};

std::vector<BroadcastCase> broadcast_cases() {
  Rng rng(201);
  std::vector<BroadcastCase> cases;
  cases.push_back({"path", make_path(20), 0});
  cases.push_back({"cycle", make_cycle(18), 9});
  cases.push_back({"star-leaf", make_star(22), 5});
  cases.push_back({"grid", make_grid(7, 6), 0});
  cases.push_back({"hypercube", make_hypercube(6), 63});
  cases.push_back({"complete", make_complete_star(28), 0});
  cases.push_back({"lollipop", make_lollipop(32), 31});
  cases.push_back({"random-sparse", make_random_connected(60, 0.05, rng), 7});
  cases.push_back({"random-dense", make_random_connected(40, 0.5, rng), 0});
  cases.push_back(
      {"shuffled", shuffle_ports(make_random_connected(40, 0.2, rng), rng),
       3});
  cases.push_back({"gns", make_gns(12, 12, rng).graph, 0});
  cases.push_back({"gnsc", make_random_gnsc(16, 4, rng).graph, 0});
  cases.push_back({"singleton", make_path(1), 0});
  cases.push_back({"pair", make_path(2), 0});
  return cases;
}

class BroadcastEndToEnd : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(BroadcastEndToEnd, LinearMessagesEverywhere) {
  for (const BroadcastCase& c : broadcast_cases()) {
    RunOptions opts;
    opts.scheduler = GetParam();
    opts.seed = 5;
    const TaskReport report = run_task(c.graph, c.source,
                                       LightBroadcastOracle(),
                                       BroadcastBAlgorithm(), opts);
    const std::size_t n = c.graph.num_nodes();
    EXPECT_TRUE(report.ok()) << c.name << ": " << report.summary();
    // M <= 2(n-1) (at most twice per tree edge under races),
    // hello <= n-1 (once per tree edge, from one side).
    EXPECT_LE(report.run.metrics.messages_source, n <= 1 ? 0 : 2 * (n - 1))
        << c.name;
    EXPECT_LE(report.run.metrics.messages_hello, n <= 1 ? 0 : n - 1)
        << c.name;
    EXPECT_LE(report.run.metrics.messages_total, n <= 1 ? 0 : 3 * (n - 1))
        << c.name;
    EXPECT_EQ(report.run.metrics.messages_control, 0u) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, BroadcastEndToEnd,
    ::testing::Values(SchedulerKind::kSynchronous, SchedulerKind::kAsyncRandom,
                      SchedulerKind::kAsyncFifo, SchedulerKind::kAsyncLifo,
                      SchedulerKind::kAsyncLinkFifo),
    [](const ::testing::TestParamInfo<SchedulerKind>& info) {
      std::string name = to_string(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(BroadcastB, ManyAsyncSeedsNeverExceedLinear) {
  // Property sweep: random asynchronous schedules are exactly where the
  // hello-after-M race (DESIGN.md deviation #4) lives.
  Rng rng(202);
  const PortGraph g = make_random_connected(50, 0.15, rng);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    RunOptions opts;
    opts.scheduler = SchedulerKind::kAsyncRandom;
    opts.seed = seed;
    opts.max_delay = 64;  // exaggerate reordering
    const TaskReport report =
        run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
    EXPECT_TRUE(report.ok()) << "seed " << seed;
    EXPECT_LE(report.run.metrics.messages_total, 3 * (g.num_nodes() - 1))
        << "seed " << seed;
  }
}

TEST(BroadcastB, AllTrafficRidesTreeEdges) {
  Rng rng(203);
  const PortGraph g = make_random_connected(40, 0.3, rng);
  const SpanningTree tree = build_tree(g, 6, TreeKind::kLight);
  std::set<std::pair<NodeId, NodeId>> tree_edges;
  for (const Edge& e : tree.edges(g)) tree_edges.insert({e.u, e.v});

  RunOptions opts;
  opts.trace = true;
  opts.scheduler = SchedulerKind::kAsyncLifo;
  const TaskReport report =
      run_task(g, 6, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
  ASSERT_TRUE(report.ok());
  for (const SentRecord& s : report.run.trace) {
    const NodeId a = std::min(s.from, s.to);
    const NodeId b = std::max(s.from, s.to);
    EXPECT_TRUE(tree_edges.count({a, b}))
        << "non-tree traffic " << a << "-" << b;
  }
}

TEST(BroadcastB, HelloAtMostOncePerEdgeAndOneDirection) {
  Rng rng(204);
  const PortGraph g = make_random_connected(45, 0.2, rng);
  RunOptions opts;
  opts.trace = true;
  const TaskReport report =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
  ASSERT_TRUE(report.ok());
  std::set<std::pair<NodeId, NodeId>> hello_edges;
  for (const SentRecord& s : report.run.trace) {
    if (s.kind != MsgKind::kHello) continue;
    const auto key = std::pair{std::min(s.from, s.to), std::max(s.from, s.to)};
    EXPECT_TRUE(hello_edges.insert(key).second)
        << "duplicate hello on " << key.first << "-" << key.second;
  }
}

TEST(BroadcastB, SourceMessagePerEdgePerDirectionAtMostOnce) {
  Rng rng(205);
  const PortGraph g = make_random_connected(45, 0.25, rng);
  RunOptions opts;
  opts.trace = true;
  opts.scheduler = SchedulerKind::kAsyncLifo;
  const TaskReport report =
      run_task(g, 2, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
  ASSERT_TRUE(report.ok());
  std::set<std::pair<NodeId, NodeId>> directed;
  for (const SentRecord& s : report.run.trace) {
    if (s.kind != MsgKind::kSource) continue;
    EXPECT_TRUE(directed.insert({s.from, s.to}).second)
        << "M resent " << s.from << "->" << s.to;
  }
}

TEST(BroadcastB, AnonymousRunIsBitIdentical) {
  Rng rng(206);
  const PortGraph g = make_random_connected(35, 0.2, rng);
  RunOptions named;
  named.trace = true;
  RunOptions anon = named;
  anon.anonymous = true;
  const TaskReport a =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm(), named);
  const TaskReport b =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm(), anon);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.run.trace.size(), b.run.trace.size());
  for (std::size_t i = 0; i < a.run.trace.size(); ++i) {
    EXPECT_EQ(a.run.trace[i].from, b.run.trace[i].from);
    EXPECT_EQ(a.run.trace[i].port, b.run.trace[i].port);
    EXPECT_EQ(a.run.trace[i].kind, b.run.trace[i].kind);
  }
}

TEST(BroadcastB, ConstantSizeMessages) {
  const PortGraph g = make_complete_star(30);
  const TaskReport report =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.run.metrics.bits_sent,
            2 * report.run.metrics.messages_total);
}

TEST(BroadcastB, IsNotAWakeupScheme) {
  // Scheme B transmits hellos spontaneously — enforcing the wakeup
  // constraint must flag it. This is the behavioral heart of the paper's
  // separation: B's linearity *requires* pre-M transmissions.
  Rng rng(207);
  const PortGraph g = make_random_connected(20, 0.3, rng);
  RunOptions opts;
  opts.enforce_wakeup = true;
  const auto advice = LightBroadcastOracle().advise(g, 0);
  const RunResult r =
      run_execution(g, 0, advice, BroadcastBAlgorithm(), opts);
  EXPECT_FALSE(r.violation.empty());
}

TEST(BroadcastB, WorksWithNonLightTreeOracles) {
  // Any spanning-tree advice is *correct* for scheme B; only the size bound
  // needs the light tree.
  Rng rng(208);
  const PortGraph g = make_random_connected(30, 0.2, rng);
  for (TreeKind kind : {TreeKind::kBfs, TreeKind::kDfs, TreeKind::kKruskal}) {
    const TaskReport report = run_task(g, 0, LightBroadcastOracle(kind),
                                       BroadcastBAlgorithm());
    EXPECT_TRUE(report.ok()) << to_string(kind);
    EXPECT_LE(report.run.metrics.messages_total, 3 * (g.num_nodes() - 1));
  }
}

TEST(BroadcastB, DeepAsyncStress) {
  // A long path under LIFO scheduling maximizes hello/M interleaving depth.
  const PortGraph g = make_path(200);
  RunOptions opts;
  opts.scheduler = SchedulerKind::kAsyncLifo;
  const TaskReport report =
      run_task(g, 100, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
  EXPECT_TRUE(report.ok());
  EXPECT_LE(report.run.metrics.messages_total, 3 * 199u);
}

}  // namespace
}  // namespace oraclesize
