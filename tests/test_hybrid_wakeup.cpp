// The partial-advice interpolation: correct at every advice fraction, with
// message counts pinned at the two known endpoints.
#include "core/hybrid_wakeup.h"

#include <gtest/gtest.h>

#include "core/runner.h"
#include "graph/builders.h"
#include "graph/complete_star.h"
#include "oracle/partial_tree_oracle.h"

namespace oraclesize {
namespace {

TEST(HybridWakeup, FullAdviceMatchesTreeWakeup) {
  Rng rng(601);
  const PortGraph g = make_random_connected(50, 0.2, rng);
  const TaskReport r =
      run_task(g, 0, PartialTreeOracle(1.0, 7), HybridWakeupAlgorithm());
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.run.metrics.messages_total, g.num_nodes() - 1);
}

TEST(HybridWakeup, ZeroAdviceMatchesFlooding) {
  Rng rng(602);
  const PortGraph g = make_random_connected(40, 0.25, rng);
  const TaskReport r =
      run_task(g, 0, PartialTreeOracle(0.0, 7), HybridWakeupAlgorithm());
  ASSERT_TRUE(r.ok()) << r.summary();
  // Only the source keeps advice at q=0 (by construction), so it relays on
  // tree child ports; everyone else floods:
  // messages = c(source) + sum_{v != source} (deg(v) - 1).
  const SpanningTree tree = bfs_tree(g, 0);
  std::uint64_t expected = tree.num_children(0);
  for (NodeId v = 1; v < g.num_nodes(); ++v) expected += g.degree(v) - 1;
  EXPECT_EQ(r.run.metrics.messages_total, expected);
}

TEST(HybridWakeup, CorrectAtEveryFraction) {
  Rng rng(603);
  const PortGraph g = make_random_connected(60, 0.15, rng);
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      for (SchedulerKind sched :
           {SchedulerKind::kSynchronous, SchedulerKind::kAsyncLifo}) {
        RunOptions opts;
        opts.scheduler = sched;
        const TaskReport r = run_task(g, 5, PartialTreeOracle(q, seed),
                                      HybridWakeupAlgorithm(), opts);
        EXPECT_TRUE(r.ok()) << "q=" << q << " seed=" << seed << " "
                            << r.summary();
      }
    }
  }
}

TEST(HybridWakeup, MessagesDecreaseAsAdviceGrows) {
  const PortGraph g = make_complete_star(128);
  std::uint64_t prev = ~0ull;
  for (double q : {0.0, 0.5, 1.0}) {
    // Average across draws (a single draw can be non-monotone by luck).
    std::uint64_t total = 0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const TaskReport r = run_task(g, 0, PartialTreeOracle(q, seed),
                                    HybridWakeupAlgorithm());
      ASSERT_TRUE(r.ok());
      total += r.run.metrics.messages_total;
    }
    EXPECT_LT(total / 5, prev) << "q=" << q;
    prev = total / 5;
  }
}

TEST(HybridWakeup, OracleBitsGrowWithFraction) {
  const PortGraph g = make_complete_star(128);
  std::uint64_t prev = 0;
  for (double q : {0.0, 0.3, 0.6, 1.0}) {
    const auto advice = PartialTreeOracle(q, 11).advise(g, 0);
    const std::uint64_t bits = oracle_size_bits(advice);
    EXPECT_GE(bits, prev) << "q=" << q;
    prev = bits;
  }
}

TEST(HybridWakeup, RespectsWakeupConstraint) {
  // run_task auto-enforces; success at an intermediate fraction proves no
  // pre-M transmission from either advised or unadvised nodes.
  Rng rng(604);
  const PortGraph g = make_random_connected(30, 0.3, rng);
  const TaskReport r =
      run_task(g, 0, PartialTreeOracle(0.5, 9), HybridWakeupAlgorithm());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.run.violation.empty());
}

TEST(HybridWakeup, AdvisedLeafCostsOneBit) {
  // A leaf that keeps its advice receives just the flag bit "1".
  const PortGraph g = make_star(10);
  const auto advice = PartialTreeOracle(1.0, 3).advise(g, 0);
  for (NodeId v = 1; v < 10; ++v) {
    EXPECT_EQ(advice[v].to_string(), "1");
  }
}

}  // namespace
}  // namespace oraclesize
