#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace oraclesize {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UnitMeanIsRoughlyHalf) {
  Rng rng(17);
  double sum = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.unit();
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const std::vector<int> original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // identity has probability 1/100!
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 20u);
  for (std::size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(Rng, SampleFullRangeIsPermutation) {
  Rng rng(37);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SplitIsIndependent) {
  Rng parent(41);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace oraclesize
