#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace oraclesize {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"n", "messages", "ratio"});
  t.row().cell(std::uint64_t{128}).cell(std::uint64_t{127}).cell(0.992, 3);
  t.row().cell(std::uint64_t{256}).cell(std::uint64_t{255}).cell(0.996, 3);
  std::ostringstream os;
  t.print(os, "demo");
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("messages"), std::string::npos);
  EXPECT_NE(s.find("0.992"), std::string::npos);
  EXPECT_NE(s.find("256"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  Table t({"a", "b"});
  t.row().cell("x").cell("yyyyyy");
  t.row().cell("xxxxxx").cell("y");
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string first;
  std::getline(is, first);
  std::string line;
  // Every line has equal length in an aligned table.
  while (std::getline(is, line)) {
    EXPECT_EQ(line.size(), first.size());
  }
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.row().cell(std::uint64_t{1}).cell(2.5, 1);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2.5\n");
}

TEST(Table, NumRows) {
  Table t({"only"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.row().cell("a");
  t.row().cell("b");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, IntegralOverloadsCompile) {
  Table t({"i", "u", "s"});
  t.row().cell(-5).cell(std::uint64_t{7}).cell(std::size_t{9});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "i,u,s\n-5,7,9\n");
}

}  // namespace
}  // namespace oraclesize
