// Property tests for the two-state (builder / frozen-CSR) PortGraph:
// every checked accessor must answer identically in both states, freeze()
// must enforce its preconditions, and the counting-sort edge order must
// match the std::stable_sort it replaced.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/builders.h"
#include "graph/complete_star.h"
#include "graph/light_tree.h"
#include "graph/port_graph.h"
#include "graph/spanning_tree.h"
#include "util/rng.h"

namespace oraclesize {
namespace {

/// Rebuilds g as a never-frozen builder-state graph with the same edges,
/// ports, and labels.
PortGraph builder_copy(const PortGraph& g) {
  PortGraph out(g.num_nodes());
  for (const Edge& e : g.edges()) out.add_edge(e.u, e.port_u, e.v, e.port_v);
  for (NodeId v = 0; v < g.num_nodes(); ++v) out.set_label(v, g.label(v));
  return out;
}

std::vector<PortGraph> sample_graphs() {
  Rng rng(20260806);
  std::vector<PortGraph> out;
  out.push_back(make_path(17));
  out.push_back(make_cycle(12));
  out.push_back(make_star(9));
  out.push_back(make_grid(4, 6));
  out.push_back(make_hypercube(4));
  out.push_back(make_binary_tree(21));
  out.push_back(make_lollipop(14));
  out.push_back(make_torus(3, 5));
  out.push_back(make_complete_bipartite(4, 7));
  out.push_back(make_complete_star(13));
  out.push_back(make_random_tree(25, rng));
  out.push_back(make_random_connected(24, 0.3, rng));
  return out;
}

TEST(CsrGraph, BuildersReturnFrozenGraphs) {
  for (const PortGraph& g : sample_graphs()) {
    EXPECT_TRUE(g.frozen()) << g.summary();
    EXPECT_NE(g.csr_endpoints(), nullptr) << g.summary();
  }
}

TEST(CsrGraph, FrozenAndBuilderStatesAnswerIdentically) {
  for (const PortGraph& g : sample_graphs()) {
    const PortGraph b = builder_copy(g);
    ASSERT_FALSE(b.frozen());
    EXPECT_EQ(b.csr_endpoints(), nullptr);
    ASSERT_EQ(b.num_nodes(), g.num_nodes());
    EXPECT_EQ(b.num_edges(), g.num_edges());
    EXPECT_EQ(b.edges(), g.edges());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(b.degree(v), g.degree(v)) << g.summary() << " v=" << v;
      EXPECT_EQ(b.label(v), g.label(v));
      const auto grow = g.neighbors(v);
      const auto brow = b.neighbors(v);
      ASSERT_EQ(grow.size(), brow.size());
      for (Port p = 0; p < grow.size(); ++p) {
        EXPECT_EQ(grow[p], brow[p]);
        EXPECT_EQ(b.neighbor(v, p), g.neighbor(v, p));
        EXPECT_EQ(b.has_port(v, p), g.has_port(v, p));
      }
      for (const Endpoint& e : grow) {
        EXPECT_EQ(b.port_towards(v, e.node), g.port_towards(v, e.node));
      }
    }
  }
}

TEST(CsrGraph, UncheckedAccessorsMatchCheckedOnFrozen) {
  for (const PortGraph& g : sample_graphs()) {
    const Endpoint* csr = g.csr_endpoints();
    std::size_t link = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(g.degree_u(v), g.degree(v));
      for (Port p = 0; p < g.degree_u(v); ++p, ++link) {
        EXPECT_EQ(g.neighbor_u(v, p), g.neighbor(v, p));
        // CSR index offsets[v] + p doubles as the directed-link id.
        EXPECT_EQ(csr[link], g.neighbor(v, p));
      }
    }
    EXPECT_EQ(link, 2 * g.num_edges());
  }
}

TEST(CsrGraph, FreezeRejectsMutationAndIsIdempotent) {
  PortGraph g(4);
  g.add_edge_auto(0, 1);
  g.add_edge_auto(1, 2);
  g.add_edge_auto(2, 3);
  g.freeze();
  ASSERT_TRUE(g.frozen());
  EXPECT_THROW(g.add_edge(0, 1, 3, 1), std::logic_error);
  EXPECT_THROW(g.add_edge_auto(0, 3), std::logic_error);
  const std::vector<Edge> before = g.edges();
  g.freeze();  // idempotent
  EXPECT_TRUE(g.frozen());
  EXPECT_EQ(g.edges(), before);
}

TEST(CsrGraph, FreezeRejectsPortHoles) {
  PortGraph g(3);
  g.add_edge(0, 1, 1, 0);  // port 0 of node 0 left vacant
  EXPECT_THROW(g.freeze(), std::invalid_argument);
  EXPECT_FALSE(g.frozen());
}

TEST(CsrGraph, AddEdgeAutoFillsHolesLeftByExplicitPorts) {
  PortGraph g(4);
  g.add_edge(0, 2, 1, 1);  // node 0: ports 0 and 1 still free
  auto [p1, q1] = g.add_edge_auto(0, 2);
  EXPECT_EQ(p1, 0u);
  EXPECT_EQ(q1, 0u);
  auto [p2, q2] = g.add_edge_auto(0, 3);
  EXPECT_EQ(p2, 1u);
  EXPECT_EQ(q2, 0u);
  auto [p3, q3] = g.add_edge_auto(0, 1);  // next free after explicit port 2
  EXPECT_EQ(p3, 3u);
  EXPECT_EQ(q3, 0u);
  EXPECT_NO_THROW(g.freeze());
}

TEST(CsrGraph, MemoryBytesShrinkOnFreeze) {
  const PortGraph g = make_complete_star(64);
  const PortGraph b = builder_copy(g);
  EXPECT_LT(g.memory_bytes(), b.memory_bytes());
}

// ---- counting sort vs the std::stable_sort it replaced ----

TEST(CsrGraph, EdgesByWeightMatchesStableSort) {
  for (const PortGraph& g : sample_graphs()) {
    std::vector<Edge> expect = g.edges();
    std::stable_sort(expect.begin(), expect.end(),
                     [](const Edge& a, const Edge& b) {
                       return a.weight() < b.weight();
                     });
    EXPECT_EQ(edges_by_weight(g), expect) << g.summary();
  }
}

TEST(CsrGraph, KruskalMatchesStableSortReference) {
  for (const PortGraph& g : sample_graphs()) {
    // Reference Kruskal: stable_sort by weight + plain union-find.
    std::vector<Edge> sorted = g.edges();
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Edge& a, const Edge& b) {
                       return a.weight() < b.weight();
                     });
    std::vector<NodeId> parent(g.num_nodes());
    std::iota(parent.begin(), parent.end(), NodeId{0});
    const auto find = [&](NodeId x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    std::vector<Edge> expect;
    for (const Edge& e : sorted) {
      const NodeId a = find(e.u);
      const NodeId b = find(e.v);
      if (a == b) continue;
      parent[a] = b;
      expect.push_back(e);
    }
    const SpanningTree t = kruskal_mst(g, 0);
    std::vector<Edge> got = t.edges(g);
    std::sort(got.begin(), got.end(), [](const Edge& a, const Edge& b) {
      return a.u < b.u || (a.u == b.u && a.port_u < b.port_u);
    });
    std::sort(expect.begin(), expect.end(), [](const Edge& a, const Edge& b) {
      return a.u < b.u || (a.u == b.u && a.port_u < b.port_u);
    });
    EXPECT_EQ(got, expect) << g.summary();
  }
}

// ---- tree constructions must not care about the storage state ----

void expect_same_tree(const SpanningTree& a, const SpanningTree& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.root(), b.root());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.parent(v), b.parent(v));
    EXPECT_EQ(a.port_to_parent(v), b.port_to_parent(v));
    EXPECT_EQ(a.child_ports(v), b.child_ports(v));
    EXPECT_EQ(a.depth(v), b.depth(v));
  }
}

TEST(CsrGraph, TreesIdenticalOnFrozenAndBuilderGraphs) {
  for (const PortGraph& g : sample_graphs()) {
    const PortGraph b = builder_copy(g);
    expect_same_tree(bfs_tree(g, 0), bfs_tree(b, 0));
    expect_same_tree(dfs_tree(g, 0), dfs_tree(b, 0));
    expect_same_tree(kruskal_mst(g, 0), kruskal_mst(b, 0));
    const LightTreeResult lg = light_tree(g, 0);
    const LightTreeResult lb = light_tree(b, 0);
    expect_same_tree(lg.tree, lb.tree);
    EXPECT_EQ(lg.contribution, lb.contribution);
  }
}

}  // namespace
}  // namespace oraclesize
