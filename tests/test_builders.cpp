#include "graph/builders.h"

#include <gtest/gtest.h>

#include "graph/validate.h"

namespace oraclesize {
namespace {

void expect_valid_connected(const PortGraph& g) {
  EXPECT_EQ(validate_ports(g), "");
  EXPECT_TRUE(is_connected(g));
}

TEST(Builders, Path) {
  const PortGraph g = make_path(6);
  expect_valid_connected(g);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(3), 2u);
  EXPECT_EQ(g.degree(5), 1u);
}

TEST(Builders, SingletonPath) {
  const PortGraph g = make_path(1);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
  expect_valid_connected(g);
}

TEST(Builders, Cycle) {
  const PortGraph g = make_cycle(7);
  expect_valid_connected(g);
  EXPECT_EQ(g.num_edges(), 7u);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Builders, CycleRejectsTooSmall) {
  EXPECT_THROW(make_cycle(2), std::invalid_argument);
}

TEST(Builders, Star) {
  const PortGraph g = make_star(9);
  expect_valid_connected(g);
  EXPECT_EQ(g.degree(0), 8u);
  for (NodeId v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Builders, Grid) {
  const PortGraph g = make_grid(3, 4);
  expect_valid_connected(g);
  EXPECT_EQ(g.num_nodes(), 12u);
  // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8.
  EXPECT_EQ(g.num_edges(), 17u);
}

TEST(Builders, DegenerateGridIsPath) {
  const PortGraph g = make_grid(1, 5);
  expect_valid_connected(g);
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(Builders, Hypercube) {
  const PortGraph g = make_hypercube(4);
  expect_valid_connected(g);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  // Canonical labeling: port = dimension, symmetric across each edge.
  for (NodeId v = 0; v < 16; ++v) {
    for (Port p = 0; p < 4; ++p) {
      const Endpoint e = g.neighbor(v, p);
      EXPECT_EQ(e.node, v ^ (1u << p));
      EXPECT_EQ(e.port, p);
    }
  }
}

TEST(Builders, HypercubeDimZero) {
  const PortGraph g = make_hypercube(0);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Builders, BinaryTree) {
  const PortGraph g = make_binary_tree(10);
  expect_valid_connected(g);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.degree(0), 2u);  // children 1, 2
}

TEST(Builders, RandomTreeIsTree) {
  Rng rng(5);
  for (std::size_t n : {1u, 2u, 3u, 10u, 57u, 256u}) {
    const PortGraph g = make_random_tree(n, rng);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(g.num_edges(), n - (n > 0 ? 1 : 0));
    expect_valid_connected(g);
  }
}

TEST(Builders, RandomTreesVary) {
  Rng rng(6);
  const PortGraph a = make_random_tree(40, rng);
  const PortGraph b = make_random_tree(40, rng);
  // Two independent uniform trees on 40 nodes almost surely differ.
  EXPECT_NE(a.edges(), b.edges());
}

TEST(Builders, RandomConnectedIsConnectedAcrossDensities) {
  Rng rng(7);
  for (double p : {0.0, 0.05, 0.3, 1.0}) {
    const PortGraph g = make_random_connected(30, p, rng);
    expect_valid_connected(g);
    EXPECT_GE(g.num_edges(), 29u);
  }
}

TEST(Builders, RandomConnectedFullDensityIsComplete) {
  Rng rng(8);
  const PortGraph g = make_random_connected(12, 1.0, rng);
  EXPECT_EQ(g.num_edges(), 12u * 11 / 2);
}

TEST(Builders, Lollipop) {
  const PortGraph g = make_lollipop(10);
  expect_valid_connected(g);
  // Clique on 5 nodes (10 edges) + path of 5 more edges.
  EXPECT_EQ(g.num_edges(), 10u + 5u);
}

TEST(Builders, ShufflePortsPreservesStructure) {
  Rng rng(9);
  const PortGraph g = make_random_connected(25, 0.2, rng);
  const PortGraph h = shuffle_ports(g, rng);
  EXPECT_EQ(validate_ports(h), "");
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(h.degree(v), g.degree(v));
    EXPECT_EQ(h.label(v), g.label(v));
  }
  // Same adjacency relation, node by node.
  for (const Edge& e : g.edges()) {
    EXPECT_NE(h.port_towards(e.u, e.v), kNoPort);
  }
}

TEST(Builders, ShufflePortsActuallyShuffles) {
  Rng rng(10);
  const PortGraph g = make_star(40);  // center has 39 ports to permute
  const PortGraph h = shuffle_ports(g, rng);
  std::size_t moved = 0;
  for (Port p = 0; p < g.degree(0); ++p) {
    if (g.neighbor(0, p).node != h.neighbor(0, p).node) ++moved;
  }
  EXPECT_GT(moved, 0u);
}

}  // namespace
}  // namespace oraclesize
