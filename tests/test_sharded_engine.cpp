// The sharded engine's whole contract is a single sentence — bit-identical
// to the single-threaded engine at any shard count — so every test here is
// some variant of "run both, compare everything". RunResult's defaulted
// operator== covers metrics, faults, statuses, traces, and per-node
// vectors in one expression; the sink tests extend the comparison to the
// structured event stream via trace digests.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/batch_runner.h"
#include "core/census.h"
#include "core/flooding.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "oracle/tree_wakeup_oracle.h"
#include "oracle/trivial_oracles.h"
#include "sim/execution_context.h"
#include "sim/sharded_engine.h"
#include "sim/trace_recorder.h"

namespace oraclesize {
namespace {

std::vector<BitString> advice_for(const PortGraph& g, NodeId source,
                                  const Oracle& oracle) {
  return oracle.advise(g, source);
}

RunOptions faulty_options(SchedulerKind sched, double duplicate) {
  RunOptions opts;
  opts.scheduler = sched;
  opts.seed = 1234;
  opts.fault.seed = 88;
  opts.fault.drop = 0.05;
  opts.fault.duplicate = duplicate;
  opts.fault.delay = 0.08;
  opts.fault.crash = 0.04;
  opts.fault.advice_flip = 0.02;
  return opts;
}

// Floods like FloodingAlgorithm, but every node also transmits a control
// message at start — an uninformed transmission that trips wakeup
// enforcement (the engine's violation path).
class SpontaneousFlood final : public Algorithm {
 public:
  class Behavior final : public NodeBehavior {
   public:
    void on_start(const NodeInput& input, std::vector<Send>& out) override {
      for (Port p = 0; p < input.degree; ++p) {
        out.push_back(Send{input.is_source ? Message::source()
                                           : Message::control(1),
                           p});
      }
    }
    void on_receive(const NodeInput& input, const Message& msg, Port from,
                    std::vector<Send>& out) override {
      if (msg.kind != MsgKind::kSource || relayed_) return;
      relayed_ = true;
      for (Port p = 0; p < input.degree; ++p) {
        if (p != from) out.push_back(Send{Message::source(), p});
      }
    }

   private:
    bool relayed_ = false;
  };
  std::unique_ptr<NodeBehavior> make_behavior(
      const NodeInput&) const override {
    return std::make_unique<Behavior>();
  }
  std::string name() const override { return "spontaneous-flood"; }
};

/// Runs the same execution on the legacy engine and on `sharded`, and
/// demands field-by-field identical results.
RunResult expect_identical(const PortGraph& g, NodeId source,
                           const std::vector<BitString>& advice,
                           const Algorithm& algorithm,
                           const RunOptions& options,
                           ShardedExecutionContext& sharded,
                           const std::string& context_msg) {
  ExecutionContext legacy;
  const RunResult want = legacy.run(g, source, advice, algorithm, options);
  const RunResult got = sharded.run(g, source, advice, algorithm, options);
  EXPECT_EQ(got, want) << context_msg;
  return want;
}

TEST(ShardedEngine, MatchesLegacyAcrossSchedulersAndShardCounts) {
  Rng rng(20260808);
  std::vector<PortGraph> graphs;
  graphs.push_back(make_grid(6, 7));
  graphs.push_back(make_random_connected(60, 0.12, rng));
  graphs.push_back(make_star(40));
  graphs.push_back(make_random_connected_sparse(90, 60, rng));
  const NullOracle null_oracle;
  const FloodingAlgorithm flooding;
  const TreeWakeupOracle wakeup_oracle;
  const WakeupTreeAlgorithm wakeup;

  for (const std::uint32_t shards : {2u, 3u, 8u}) {
    ShardedExecutionContext engine(shards);
    EXPECT_EQ(engine.configured_shards(), shards);
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const PortGraph& g = graphs[gi];
      const std::vector<BitString> flood_advice =
          advice_for(g, 1, null_oracle);
      const std::vector<BitString> wake_advice =
          advice_for(g, 1, wakeup_oracle);
      for (const SchedulerKind sched :
           {SchedulerKind::kSynchronous, SchedulerKind::kAsyncRandom,
            SchedulerKind::kAsyncFifo, SchedulerKind::kAsyncLifo,
            SchedulerKind::kAsyncLinkFifo}) {
        RunOptions opts;
        opts.scheduler = sched;
        opts.seed = 99 + gi;
        const std::string msg = "graph " + std::to_string(gi) + " sched " +
                                to_string(sched) + " shards " +
                                std::to_string(shards);
        expect_identical(g, 1, flood_advice, flooding, opts, engine, msg);
        RunOptions wopts = opts;
        wopts.enforce_wakeup = true;
        expect_identical(g, 1, wake_advice, wakeup, wopts, engine,
                         msg + " wakeup");
      }
    }
  }
}

TEST(ShardedEngine, StatsReportShardsEpochsAndCrossTraffic) {
  // A reliable synchronous flood on a connected graph must cross shard
  // boundaries (the partition is contiguous, the graph is not), and every
  // delivered event lives in some epoch.
  Rng rng(5);
  const PortGraph g = make_random_connected(64, 0.15, rng);
  const std::vector<BitString> advice = advice_for(g, 0, NullOracle());
  ShardedExecutionContext engine(4);
  RunOptions opts;
  const RunResult got =
      engine.run(g, 0, advice, FloodingAlgorithm(), opts);
  EXPECT_EQ(got.status, RunStatus::kCompleted);
  const ShardedRunStats& st = engine.last_stats();
  EXPECT_FALSE(st.fell_back);
  EXPECT_EQ(st.shards, 4u);
  EXPECT_GT(st.epochs, 0u);
  EXPECT_GT(st.cross_shard_messages, 0u);
  EXPECT_LE(st.cross_shard_messages, got.metrics.messages_total);
}

TEST(ShardedEngine, FaultMatrixMatchesOnBothFinalizePaths) {
  // duplicate = 0 keeps synchronous runs on the fast (parallel) finalizer;
  // duplicate > 0 and the random scheduler force the serial one. All four
  // combinations must agree with the legacy engine bit for bit.
  Rng rng(21);
  const PortGraph g = make_random_connected(48, 0.12, rng);
  const NullOracle oracle;
  const FloodingAlgorithm flooding;
  const std::vector<BitString> advice = advice_for(g, 3, oracle);
  ShardedExecutionContext engine(3);
  for (const SchedulerKind sched :
       {SchedulerKind::kSynchronous, SchedulerKind::kAsyncRandom}) {
    for (const double duplicate : {0.0, 0.05}) {
      const RunOptions opts = faulty_options(sched, duplicate);
      expect_identical(g, 3, advice, flooding, opts, engine,
                       std::string(to_string(sched)) + " dup=" +
                           std::to_string(duplicate));
    }
  }
}

TEST(ShardedEngine, LegacyTraceVectorMatches) {
  Rng rng(77);
  const PortGraph g = make_random_connected(50, 0.1, rng);
  const std::vector<BitString> advice = advice_for(g, 0, NullOracle());
  ShardedExecutionContext engine(4);
  RunOptions opts;
  opts.trace = true;  // SentRecord capture → serial finalizer
  opts.scheduler = SchedulerKind::kAsyncFifo;
  const RunResult want =
      expect_identical(g, 0, advice, FloodingAlgorithm(), opts, engine,
                       "trace vector");
  EXPECT_FALSE(want.trace.empty());  // the comparison actually saw a trace
  EXPECT_FALSE(engine.last_stats().fell_back);
}

TEST(ShardedEngine, SinkStreamDigestsMatch) {
  // The structured event stream — deliveries, fault decisions, informed
  // transitions, with their keys and seqs — must hash identically, both on
  // a clean run and under an armed fault plan.
  Rng rng(31);
  const PortGraph g = make_random_connected(40, 0.15, rng);
  const TreeWakeupOracle oracle;
  const CensusAlgorithm census;
  const std::vector<BitString> advice = advice_for(g, 2, oracle);
  for (const bool faulty : {false, true}) {
    RunOptions opts = faulty ? faulty_options(SchedulerKind::kAsyncRandom, 0.05)
                             : RunOptions{};
    auto digest_of = [&](auto& engine) {
      TraceRecorder recorder;
      RunOptions with_sink = opts;
      with_sink.trace_sink = &recorder;
      engine.run(g, 2, advice, census, with_sink);
      return recorder.take().digest();
    };
    ExecutionContext legacy;
    ShardedExecutionContext sharded(3);
    EXPECT_EQ(digest_of(sharded), digest_of(legacy))
        << (faulty ? "faulty" : "reliable");
  }
}

TEST(ShardedEngine, BudgetViolationFallsBackToIdenticalResult) {
  Rng rng(13);
  const PortGraph g = make_random_connected(40, 0.2, rng);
  const std::vector<BitString> advice = advice_for(g, 0, NullOracle());
  ShardedExecutionContext engine(4);
  RunOptions opts;
  opts.max_messages = 25;  // mid-run budget crossing → violation
  const RunResult want =
      expect_identical(g, 0, advice, FloodingAlgorithm(), opts, engine,
                       "message budget");
  EXPECT_EQ(want.status, RunStatus::kBudgetExhausted);
  EXPECT_TRUE(engine.last_stats().fell_back);
  EXPECT_EQ(engine.last_stats().epochs, 0u);
}

TEST(ShardedEngine, MaxEventsSweepMatchesAtEveryCutoff) {
  // max_events can land exactly on an epoch boundary (handled in place) or
  // inside one (fallback). Sweeping every cutoff exercises both, and the
  // result must match the legacy engine at each.
  const PortGraph g = make_grid(4, 5);
  const std::vector<BitString> advice = advice_for(g, 0, NullOracle());
  ShardedExecutionContext engine(3);
  ExecutionContext legacy;
  RunOptions probe;
  const std::uint64_t total_events =
      legacy.run(g, 0, advice, FloodingAlgorithm(), probe).metrics.deliveries;
  ASSERT_GT(total_events, 10u);
  for (std::uint64_t cap = 1; cap <= total_events + 1; ++cap) {
    RunOptions opts;
    opts.max_events = cap;
    expect_identical(g, 0, advice, FloodingAlgorithm(), opts, engine,
                     "max_events=" + std::to_string(cap));
  }
}

TEST(ShardedEngine, WakeupViolationFallsBackToIdenticalResult) {
  // SpontaneousFlood transmits before being informed, so enforcing wakeup
  // trips a violation in the very first barrier: the sharded attempt aborts
  // and the replay must reproduce the violating run exactly (including the
  // violation string).
  Rng rng(9);
  const PortGraph g = make_random_connected(36, 0.15, rng);
  const std::vector<BitString> advice = advice_for(g, 0, NullOracle());
  ShardedExecutionContext engine(4);
  RunOptions opts;
  opts.enforce_wakeup = true;
  const RunResult want =
      expect_identical(g, 0, advice, SpontaneousFlood(), opts, engine,
                       "wakeup violation");
  EXPECT_EQ(want.status, RunStatus::kTaskFailed);
  EXPECT_FALSE(want.violation.empty());
  EXPECT_TRUE(engine.last_stats().fell_back);
}

TEST(ShardedEngine, PreconditionExceptionsMatchLegacy) {
  const PortGraph g = make_path(10);
  const std::vector<BitString> advice(9);  // wrong size
  ShardedExecutionContext engine(2);
  EXPECT_THROW(engine.run(g, 0, advice, FloodingAlgorithm(), RunOptions{}),
               std::invalid_argument);
  const std::vector<BitString> ok(10);
  EXPECT_THROW(engine.run(g, 99, ok, FloodingAlgorithm(), RunOptions{}),
               std::invalid_argument);
}

TEST(ShardedEngine, ContextReusesAcrossHeterogeneousRuns) {
  // One engine, many graphs/algorithms/schedulers in sequence — behavior
  // pools, heaps, and partitions must all reset correctly between runs.
  Rng rng(55);
  ShardedExecutionContext engine(3);
  const std::vector<PortGraph> graphs = {make_grid(5, 8),
                                         make_random_connected(45, 0.1, rng),
                                         make_path(30)};
  for (int round = 0; round < 2; ++round) {
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const PortGraph& g = graphs[gi];
      RunOptions opts;
      opts.scheduler = (gi % 2 == 0) ? SchedulerKind::kSynchronous
                                     : SchedulerKind::kAsyncRandom;
      opts.seed = 7 * (round + 1);
      expect_identical(g, 0, advice_for(g, 0, NullOracle()),
                       FloodingAlgorithm(), opts, engine,
                       "reuse round " + std::to_string(round) + " graph " +
                           std::to_string(gi));
    }
  }
}

TEST(ShardedEngine, ManyEpochHandoffsStayIdentical) {
  // A long path floods one hop per epoch: thousands of worker-pool handoffs
  // in a single run. This is the regression surface for pool-generation
  // bugs — a worker that oversleeps one barrier must neither call a
  // destroyed task closure nor disturb the next cycle's claim counters
  // (originally found by ASan only at bench scale).
  const PortGraph g = make_path(1500);
  const std::vector<BitString> advice = advice_for(g, 0, NullOracle());
  ShardedExecutionContext engine(4);
  expect_identical(g, 0, advice, FloodingAlgorithm(), RunOptions{}, engine,
                   "long path");
  EXPECT_FALSE(engine.last_stats().fell_back);
  EXPECT_GT(engine.last_stats().epochs, 1000u);
}

TEST(ShardedEngine, TinyGraphRunsOnLegacyPath) {
  // A graph too small to shard (partition collapses to 1) must still run —
  // through the embedded single-threaded engine — and report shards = 1.
  const PortGraph g = make_path(1);
  const std::vector<BitString> advice(1);
  ShardedExecutionContext engine(8);
  const RunResult got =
      engine.run(g, 0, advice, FloodingAlgorithm(), RunOptions{});
  EXPECT_EQ(got.status, RunStatus::kCompleted);
  EXPECT_EQ(engine.last_stats().shards, 1u);
  EXPECT_FALSE(engine.last_stats().fell_back);
}

TEST(ShardedEngine, BatchRunnerRoutesBigTrialsThroughShardPolicy) {
  Rng rng(66);
  const PortGraph big = make_random_connected(80, 0.1, rng);
  const PortGraph small = make_grid(3, 4);
  const NullOracle oracle;
  const FloodingAlgorithm flooding;
  std::vector<TrialSpec> specs;
  for (NodeId src : {0u, 5u, 11u}) specs.push_back({&big, src, &oracle,
                                                    &flooding});
  for (NodeId src : {0u, 3u}) specs.push_back({&small, src, &oracle,
                                               &flooding});

  ShardPolicy policy;
  policy.shards = 3;
  policy.min_nodes = 50;
  BatchStats plain_stats, sharded_stats;
  const std::vector<TaskReport> plain =
      BatchRunner(2).run(specs, &plain_stats);
  const std::vector<TaskReport> sharded =
      BatchRunner(2, true, RetryPolicy{}, policy).run(specs, &sharded_stats);
  ASSERT_EQ(plain.size(), sharded.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(sharded[i].run, plain[i].run) << "spec " << i;
    EXPECT_EQ(plain[i].shards, 1u);
    if (specs[i].graph == &big) {
      EXPECT_EQ(sharded[i].shards, 3u) << "spec " << i;
      EXPECT_GT(sharded[i].epochs, 0u);
    } else {
      EXPECT_EQ(sharded[i].shards, 1u) << "spec " << i;
      EXPECT_EQ(sharded[i].epochs, 0u);
    }
  }
  // The new aggregate counters surface in the metrics snapshot (new keys
  // only — plain batches carry zeros).
  EXPECT_EQ(sharded_stats.metrics.counters.at("sharded_trials"), 3u);
  EXPECT_EQ(plain_stats.metrics.counters.at("sharded_trials"), 0u);
  EXPECT_GT(sharded_stats.metrics.counters.at("sharded_epochs"), 0u);
  EXPECT_GT(sharded_stats.metrics.counters.at("cross_shard_messages"), 0u);
}

TEST(ShardedEngine, ShardPolicyDisabledByDefault) {
  const ShardPolicy policy;
  EXPECT_FALSE(policy.enabled());
  EXPECT_EQ(BatchRunner().shard().min_nodes, 0u);
}

}  // namespace
}  // namespace oraclesize
