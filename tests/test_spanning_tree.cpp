#include "graph/spanning_tree.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "graph/builders.h"
#include "graph/complete_star.h"
#include "util/mathx.h"
#include "util/rng.h"

namespace oraclesize {
namespace {

// A tree over g is spanning iff it has n-1 edges all in g and touches all
// nodes; from_parents/from_edges already throw otherwise, so tests focus on
// structural properties.

void expect_spanning(const PortGraph& g, const SpanningTree& t) {
  EXPECT_EQ(t.num_nodes(), g.num_nodes());
  std::size_t child_edges = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    child_edges += t.num_children(v);
    if (!t.is_root(v)) {
      // up-port really leads to the parent.
      EXPECT_EQ(g.neighbor(v, t.port_to_parent(v)).node, t.parent(v));
      EXPECT_EQ(t.depth(v), t.depth(t.parent(v)) + 1);
    }
  }
  EXPECT_EQ(child_edges, g.num_nodes() - 1);
  EXPECT_EQ(t.edges(g).size(), g.num_nodes() - 1);
}

TEST(SpanningTree, BfsOnPath) {
  const PortGraph g = make_path(5);
  const SpanningTree t = bfs_tree(g, 0);
  expect_spanning(g, t);
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.height(), 4u);
  for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(t.parent(v), v - 1);
}

TEST(SpanningTree, BfsDepthIsGraphDistance) {
  Rng rng(3);
  const PortGraph g = make_random_connected(40, 0.1, rng);
  const SpanningTree t = bfs_tree(g, 7);
  expect_spanning(g, t);
  // BFS tree depth == BFS distance; check via independent traversal.
  const PortGraph& gr = g;
  std::vector<int> dist(gr.num_nodes(), -1);
  std::vector<NodeId> frontier{7};
  dist[7] = 0;
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      for (Port p = 0; p < gr.degree(v); ++p) {
        const NodeId u = gr.neighbor(v, p).node;
        if (dist[u] < 0) {
          dist[u] = dist[v] + 1;
          next.push_back(u);
        }
      }
    }
    frontier = std::move(next);
  }
  for (NodeId v = 0; v < gr.num_nodes(); ++v) {
    EXPECT_EQ(static_cast<int>(t.depth(v)), dist[v]);
  }
}

TEST(SpanningTree, DfsOnCycleIsHamiltonianPath) {
  const PortGraph g = make_cycle(8);
  const SpanningTree t = dfs_tree(g, 0);
  expect_spanning(g, t);
  EXPECT_EQ(t.height(), 7u);  // DFS on a cycle walks all the way round
}

TEST(SpanningTree, ChildPortsLeadToChildren) {
  Rng rng(4);
  const PortGraph g = make_random_connected(30, 0.15, rng);
  const SpanningTree t = bfs_tree(g, 0);
  std::size_t counted = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (Port p : t.child_ports(v)) {
      const NodeId child = g.neighbor(v, p).node;
      EXPECT_EQ(t.parent(child), v);
      ++counted;
    }
  }
  EXPECT_EQ(counted, g.num_nodes() - 1);
}

TEST(SpanningTree, FromParentsRejectsNonTree) {
  const PortGraph g = make_cycle(4);
  // Two roots.
  EXPECT_THROW(
      SpanningTree::from_parents(g, 0, {kNoNode, kNoNode, 1, 2}),
      std::invalid_argument);
  // Parent edge not in graph (0-2 is a chord of the 4-cycle).
  EXPECT_THROW(SpanningTree::from_parents(g, 0, {kNoNode, 0, 0, 2}),
               std::invalid_argument);
}

TEST(SpanningTree, FromEdgesRejectsWrongCount) {
  const PortGraph g = make_path(4);
  EXPECT_THROW(SpanningTree::from_edges(g, 0, {}), std::invalid_argument);
  // n-1 edges that do not span (one edge repeated) must also fail.
  const Edge e = g.edges()[0];
  EXPECT_THROW(SpanningTree::from_edges(g, 0, {e, e, e}),
               std::invalid_argument);
}

TEST(SpanningTree, FromEdgesRoundTrip) {
  Rng rng(5);
  const PortGraph g = make_random_connected(25, 0.2, rng);
  const SpanningTree t = bfs_tree(g, 3);
  const SpanningTree u = SpanningTree::from_edges(g, 3, t.edges(g));
  expect_spanning(g, u);
  // Same edge set regardless of orientation bookkeeping.
  auto key = [](const Edge& e) { return std::pair{e.u, e.v}; };
  std::set<std::pair<NodeId, NodeId>> te, ue;
  for (const Edge& e : t.edges(g)) te.insert(key(e));
  for (const Edge& e : u.edges(g)) ue.insert(key(e));
  EXPECT_EQ(te, ue);
}

TEST(SpanningTree, KruskalMinimizesTotalWeight) {
  // On K*_n, Kruskal under w(e) = min port picks globally light edges; its
  // total weight must not exceed BFS's.
  const PortGraph g = make_complete_star(12);
  const SpanningTree mst = kruskal_mst(g, 0);
  const SpanningTree bfs = bfs_tree(g, 0);
  auto total = [&](const SpanningTree& t) {
    std::uint64_t w = 0;
    for (const Edge& e : t.edges(g)) w += e.weight();
    return w;
  };
  expect_spanning(g, mst);
  EXPECT_LE(total(mst), total(bfs));
}

TEST(SpanningTree, SingletonGraph) {
  const PortGraph g = make_path(1);
  const SpanningTree t = bfs_tree(g, 0);
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_TRUE(t.is_root(0));
  EXPECT_TRUE(t.is_leaf(0));
  EXPECT_EQ(t.edges(g).size(), 0u);
}

TEST(SpanningTree, ContributionMatchesManualSum) {
  const PortGraph g = make_path(6);  // all ports 0/1, each edge weight 0
  const SpanningTree t = bfs_tree(g, 0);
  // Path edges: at interior nodes ports are 0 (to prev) and 1 (to next);
  // weight of each edge = min(1, 0) = 0 except the first edge (0,0).
  std::uint64_t expected = 0;
  for (const Edge& e : t.edges(g)) {
    expected += static_cast<std::uint64_t>(num_bits(e.weight()));
  }
  EXPECT_EQ(tree_contribution(g, t), expected);
  EXPECT_EQ(tree_contribution(g, t), 5u);  // every weight is 0 or 1 -> 1 bit
}

}  // namespace
}  // namespace oraclesize
