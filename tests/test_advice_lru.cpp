// The LRU byte-budget extension of core/advice_cache.h: accounting,
// least-recently-used eviction order, shared_ptr pinning across eviction,
// the exactly-once-per-generation recompute guarantee, and the regression
// pin that the unbounded default behaves exactly like the historical
// cache. The multi-thread churn tests are in the TSan/ASan CI net (the
// sanitizer jobs run everything matching 'Lru').
#include "core/advice_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "graph/builders.h"
#include "oracle/tree_wakeup_oracle.h"
#include "oracle/trivial_oracles.h"

namespace oraclesize {
namespace {

// Counts advise() calls so tests can pin per-generation recompute counts.
class CountingOracle final : public Oracle {
 public:
  explicit CountingOracle(const Oracle& inner) : inner_(inner) {}
  std::vector<BitString> advise(const PortGraph& g,
                                NodeId source) const override {
    ++calls;
    return inner_.advise(g, source);
  }
  std::string name() const override { return inner_.name(); }

  mutable std::atomic<std::size_t> calls{0};

 private:
  const Oracle& inner_;
};

/// The accounted cost of one (graph, oracle, source) entry, measured on a
/// throwaway unbounded cache. NullOracle advice is size-uniform across
/// sources, so every key of the same graph costs the same.
std::uint64_t measured_entry_bytes(const PortGraph& g, const Oracle& oracle) {
  AdviceCache probe;
  probe.lookup(g, oracle, 0);
  return probe.bytes();
}

TEST(AdviceCacheLru, UnboundedDefaultKeepsLegacyBehavior) {
  const PortGraph g = make_grid(6, 6);
  const TreeWakeupOracle inner;
  const CountingOracle oracle(inner);

  AdviceCache cache;  // default: budget 0, no eviction ever
  EXPECT_EQ(cache.byte_budget(), 0u);
  const auto first = cache.lookup(g, oracle, 0);
  std::vector<AdvicePtr> seen;
  for (NodeId src = 0; src < 12; ++src) {
    cache.lookup(g, oracle, src);
  }
  for (NodeId src = 0; src < 12; ++src) {
    seen.push_back(cache.lookup(g, oracle, src).advice);
  }
  // Every repeat lookup is a hit on the ORIGINAL entry — same shared
  // vector, one advise() per key, nothing ever dropped.
  EXPECT_EQ(seen[0], first.advice);
  EXPECT_EQ(oracle.calls.load(), 12u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 12u);
  EXPECT_EQ(stats.misses, 12u);
  EXPECT_EQ(stats.hits, 13u);
  EXPECT_EQ(stats.evictions, 0u);
  // And the content matches a fresh advise bit for bit.
  const auto fresh = inner.advise(g, 0);
  ASSERT_EQ(first.advice->size(), fresh.size());
  for (std::size_t v = 0; v < fresh.size(); ++v) {
    EXPECT_EQ((*first.advice)[v], fresh[v]) << "node " << v;
  }
}

TEST(AdviceCacheLru, ByteAccountingIsDeterministicAndResets) {
  const PortGraph g = make_grid(5, 5);
  const TreeWakeupOracle oracle;

  AdviceCache a;
  AdviceCache b;
  const auto lookup = a.lookup(g, oracle, 0);
  b.lookup(g, oracle, 0);
  // Identical inserts account identical bytes, and the charge covers at
  // least the advice payload itself.
  EXPECT_EQ(a.bytes(), b.bytes());
  EXPECT_GE(a.bytes(), AdviceCache::advice_bytes(*lookup.advice));
  EXPECT_EQ(a.stats().bytes, a.bytes());

  a.lookup(g, oracle, 1);
  EXPECT_GT(a.bytes(), b.bytes());  // two entries cost more than one
  a.clear();
  EXPECT_EQ(a.bytes(), 0u);
  EXPECT_EQ(a.stats().entries, 0u);
}

TEST(AdviceCacheLru, EvictsLeastRecentlyUsedFirst) {
  const PortGraph g = make_path(16);
  const NullOracle inner;
  const CountingOracle oracle(inner);
  const std::uint64_t entry = measured_entry_bytes(g, inner);

  // Room for two entries, not three.
  AdviceCache cache(2 * entry + entry / 2);
  cache.lookup(g, oracle, 0);  // A
  cache.lookup(g, oracle, 1);  // B
  cache.lookup(g, oracle, 0);  // touch A: B is now the LRU entry
  cache.lookup(g, oracle, 2);  // C evicts B
  EXPECT_EQ(cache.stats().evictions, 1u);

  const std::size_t calls_before = oracle.calls.load();
  EXPECT_TRUE(cache.lookup(g, oracle, 0).hit);   // A survived
  EXPECT_TRUE(cache.lookup(g, oracle, 2).hit);   // C survived
  EXPECT_FALSE(cache.lookup(g, oracle, 1).hit);  // B was evicted: recompute
  EXPECT_EQ(oracle.calls.load(), calls_before + 1);
}

TEST(AdviceCacheLru, PinnedAdviceSurvivesEviction) {
  const PortGraph g = make_grid(4, 4);
  const TreeWakeupOracle inner;
  const std::uint64_t entry = measured_entry_bytes(g, inner);

  // Budget below a single entry: every insert is immediately evicted —
  // maximal churn. A holder's shared_ptr must keep its artifact alive.
  AdviceCache cache(entry / 2);
  const AdvicePtr pinned = cache.lookup(g, inner, 0).advice;
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.bytes(), 0u);

  cache.lookup(g, inner, 1);  // more churn while we hold the pin
  cache.lookup(g, inner, 2);

  const auto fresh = inner.advise(g, 0);
  ASSERT_EQ(pinned->size(), fresh.size());
  for (std::size_t v = 0; v < fresh.size(); ++v) {
    EXPECT_EQ((*pinned)[v], fresh[v]) << "node " << v;
  }
  // A re-lookup is a new generation: a distinct vector with equal content.
  const AdvicePtr regenerated = cache.lookup(g, inner, 0).advice;
  EXPECT_NE(regenerated, pinned);
  EXPECT_EQ(*regenerated, *pinned);
}

TEST(AdviceCacheLru, ExactlyOnceRecomputePerGeneration) {
  const PortGraph g = make_path(24);
  const NullOracle inner;
  const CountingOracle oracle(inner);
  const std::uint64_t entry = measured_entry_bytes(g, inner);

  // One-entry budget over three keys: every round-robin lookup is a fresh
  // generation, and generations map 1:1 onto advise() calls.
  AdviceCache cache(entry + entry / 2);
  for (int round = 0; round < 5; ++round) {
    for (NodeId src = 0; src < 3; ++src) {
      EXPECT_FALSE(cache.lookup(g, oracle, src).hit);
    }
  }
  const auto stats = cache.stats();
  EXPECT_EQ(oracle.calls.load(), stats.misses);
  EXPECT_EQ(stats.misses, 15u);
  EXPECT_GE(stats.evictions, 14u);
}

TEST(AdviceCacheLru, TinyBudgetChurnStress) {
  const PortGraph g = make_grid(6, 6);
  const TreeWakeupOracle inner;
  const CountingOracle oracle(inner);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kKeys = 4;
  constexpr int kRounds = 40;

  // Reference advice per key, computed uncached.
  std::vector<std::vector<BitString>> reference;
  for (NodeId src = 0; src < kKeys; ++src) {
    reference.push_back(inner.advise(g, src));
  }

  // Budget of roughly one entry across four hot keys hammered by eight
  // threads: constant evict/recompute churn. The sanitizers watch for
  // use-after-evict; the assertions pin determinism and exactly-once.
  const std::uint64_t entry = measured_entry_bytes(g, inner);
  AdviceCache cache(entry + entry / 2);
  std::atomic<std::size_t> mismatches{0};
  {
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        for (int round = 0; round < kRounds; ++round) {
          const NodeId src = static_cast<NodeId>((t + round) % kKeys);
          const AdvicePtr advice = cache.lookup(g, oracle, src).advice;
          // Deterministic responses: whatever generation served us, the
          // content is the reference advice, bit for bit.
          if (*advice != reference[src]) ++mismatches;
        }
      });
    }
    for (auto& th : pool) th.join();
  }
  EXPECT_EQ(mismatches.load(), 0u);
  const auto stats = cache.stats();
  // Exactly-once per generation: each miss elected one computing owner,
  // and nobody advised outside the cache's election.
  EXPECT_EQ(oracle.calls.load(), stats.misses);
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kRounds);
  EXPECT_GT(stats.evictions, 0u);
}

}  // namespace
}  // namespace oraclesize
