// Steady-state allocation audit for ExecutionContext::run.
//
// Standalone binary (not gtest: the framework's own allocations would
// pollute the counters). Global operator new is replaced with a counting
// shim; after warming a context twice, a third run is counted, and the
// count must be INDEPENDENT of n for the paper's two schemes (wakeup via
// tree advice, broadcast via scheme B). A per-node allocation in the hot
// path — behavior churn, per-event vectors, advice copies — shows up as an
// O(n) gap between the n=256 and n=1024 counts and fails the audit.
// (Counts, not bytes: an n-element vector is one allocation either way;
// the RunResult's per-node output vectors are a fixed number of calls.)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/broadcast_b.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "sim/execution_context.h"
#include "util/rng.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_news{0};

void* counted_alloc(std::size_t size) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_news.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) std::abort();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace oraclesize {
namespace {

/// Warm a context on the exact workload, then count one more run.
std::size_t count_steady_run(const PortGraph& g,
                             const std::vector<BitString>& advice,
                             const Algorithm& algorithm,
                             const RunOptions& opts) {
  ExecutionContext context;
  for (int warm = 0; warm < 2; ++warm) {
    (void)context.run(g, 0, advice, algorithm, opts);
  }
  g_news.store(0);
  g_counting.store(true);
  const RunResult r = context.run(g, 0, advice, algorithm, opts);
  g_counting.store(false);
  if (!r.all_informed || !r.violation.empty()) {
    std::fprintf(stderr, "FAIL: %s run did not complete cleanly (%s)\n",
                 algorithm.name().c_str(), r.violation.c_str());
    std::exit(1);
  }
  return g_news.load();
}

int audit() {
  // Same sparse family at two sizes; identical construction seeds so the
  // only variable is n.
  Rng rng_small(0xfeedULL), rng_big(0xfeedULL);
  const PortGraph small = make_random_connected(256, 8.0 / 256.0, rng_small);
  const PortGraph big = make_random_connected(1024, 8.0 / 1024.0, rng_big);

  int failures = 0;
  const auto check = [&failures](const char* label, std::size_t at_small,
                                 std::size_t at_big) {
    // Allow a handful of calls of jitter (container regrowth rounding);
    // a per-node leak would show up as hundreds.
    const std::size_t hi = at_small > at_big ? at_small : at_big;
    const std::size_t lo = at_small > at_big ? at_big : at_small;
    const bool ok = hi - lo <= 8;
    std::printf("%-12s n=256: %zu allocs   n=1024: %zu allocs   %s\n",
                label, at_small, at_big, ok ? "ok" : "FAIL (n-dependent)");
    if (!ok) ++failures;
  };

  {
    const TreeWakeupOracle oracle;
    const WakeupTreeAlgorithm algorithm;
    RunOptions opts;
    opts.scheduler = SchedulerKind::kSynchronous;
    opts.enforce_wakeup = true;
    const auto advice_small = oracle.advise(small, 0);
    const auto advice_big = oracle.advise(big, 0);
    const std::size_t w_small =
        count_steady_run(small, advice_small, algorithm, opts);
    const std::size_t w_big =
        count_steady_run(big, advice_big, algorithm, opts);
    check("wakeup", w_small, w_big);

    // A seeded-but-empty adversary plan must be allocation-free too: the
    // disabled plan is never consulted, so the steady state is the SAME
    // workload, not merely a similarly-flat one.
    RunOptions zeroed = opts;
    zeroed.adversary.seed = 123456789;  // junk seed, zero rates: disabled
    const std::size_t z_small =
        count_steady_run(small, advice_small, algorithm, zeroed);
    const std::size_t z_big =
        count_steady_run(big, advice_big, algorithm, zeroed);
    check("wakeup+0byz", z_small, z_big);
    check("0byz==off", w_big, z_big);
  }
  {
    const LightBroadcastOracle oracle;
    const BroadcastBAlgorithm algorithm;
    RunOptions opts;
    opts.scheduler = SchedulerKind::kAsyncRandom;
    opts.seed = 9;
    const auto advice_small = oracle.advise(small, 0);
    const auto advice_big = oracle.advise(big, 0);
    check("broadcast-b",
          count_steady_run(small, advice_small, algorithm, opts),
          count_steady_run(big, advice_big, algorithm, opts));

    // The link-fifo clock table is sized once in reset(), never grown in
    // delivery_key — the per-link clamp in the hot path must be free.
    RunOptions fifo = opts;
    fifo.scheduler = SchedulerKind::kAsyncLinkFifo;
    check("link-fifo",
          count_steady_run(small, advice_small, algorithm, fifo),
          count_steady_run(big, advice_big, algorithm, fifo));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace oraclesize

int main() { return oraclesize::audit(); }
