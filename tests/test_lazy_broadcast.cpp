// The executable Theorem 3.2 game: clique-silent broadcast algorithms vs
// the lazily decided G_{n,k}.
#include "lowerbound/lazy_broadcast.h"

#include <gtest/gtest.h>

#include "core/broadcast_b.h"
#include "core/flooding.h"
#include "util/mathx.h"

namespace oraclesize {
namespace {

// A chatty scheme: every node transmits spontaneously (legal for broadcast,
// but outside the exact lazy game's supported class).
class Chatty final : public Algorithm {
 public:
  class Behavior final : public NodeBehavior {
   public:
    void on_start(const NodeInput&, std::vector<Send>& out) override {
      out.push_back(Send{Message::control(1), 0});
    }
    void on_receive(const NodeInput&, const Message&, Port,
                    std::vector<Send>&) override {}
  };
  std::unique_ptr<NodeBehavior> make_behavior(
      const NodeInput&) const override {
    return std::make_unique<Behavior>();
  }
  std::string name() const override { return "chatty"; }
};

TEST(LazyBroadcast, IsolatedCliqueProbe) {
  EXPECT_EQ(probe_isolated_clique(4, FloodingAlgorithm()), 0u);
  EXPECT_EQ(probe_isolated_clique(4, BroadcastBAlgorithm()), 0u);
  EXPECT_EQ(probe_isolated_clique(4, Chatty()), 4u);  // one send per node
}

TEST(LazyBroadcast, RejectsChattySchemes) {
  EXPECT_THROW(play_lazy_broadcast(16, 4, Chatty()), std::invalid_argument);
}

TEST(LazyBroadcast, RejectsBadShape) {
  EXPECT_THROW(play_lazy_broadcast(10, 4, FloodingAlgorithm()),
               std::invalid_argument);
  EXPECT_THROW(play_lazy_broadcast(16, 1, FloodingAlgorithm()),
               std::invalid_argument);
}

TEST(LazyBroadcast, FloodingCompletesQuadratically) {
  for (auto [n, k] : {std::pair<std::size_t, std::size_t>{16, 2},
                      {16, 4}, {32, 4}, {64, 4}}) {
    const LazyBroadcastResult r = play_lazy_broadcast(n, k,
                                                      FloodingAlgorithm());
    EXPECT_TRUE(r.completed) << "n=" << n << " k=" << k << " " << r.violation;
    EXPECT_EQ(r.cliques_found, n / k);
    EXPECT_GE(static_cast<double>(r.messages), r.probe_lower_bound);
    // Every K*_n edge must be probed before the adversary yields the last
    // clique: quadratic messages on a (2n)-node network.
    EXPECT_GE(r.edges_probed, n * (n - 1) / 2 - 1);
    EXPECT_GT(r.messages, 2 * (2 * n));
  }
}

TEST(LazyBroadcast, SchemeBWithNoAdviceNeverCompletes) {
  // Scheme B is clique-silent with empty advice and, without its bits,
  // relays nothing: the strongest illustration that Theorem 3.1's oracle
  // size is load-bearing.
  const LazyBroadcastResult r =
      play_lazy_broadcast(16, 4, BroadcastBAlgorithm());
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.violation.empty());
  EXPECT_EQ(r.messages, 0u);
  EXPECT_EQ(r.cliques_found, 0u);
}

TEST(LazyBroadcast, QuadraticGrowth) {
  const std::uint64_t m16 =
      play_lazy_broadcast(16, 4, FloodingAlgorithm()).messages;
  const std::uint64_t m32 =
      play_lazy_broadcast(32, 4, FloodingAlgorithm()).messages;
  const std::uint64_t m64 =
      play_lazy_broadcast(64, 4, FloodingAlgorithm()).messages;
  EXPECT_GT(m32, 3 * m16);
  EXPECT_GT(m64, 3 * m32);
}

TEST(LazyBroadcast, BoundMatchesFormula) {
  const LazyBroadcastResult r =
      play_lazy_broadcast(16, 4, FloodingAlgorithm());
  EXPECT_NEAR(r.probe_lower_bound, log2_choose(120, 4), 1e-9);
}

TEST(LazyBroadcast, Deterministic) {
  const LazyBroadcastResult a =
      play_lazy_broadcast(32, 4, FloodingAlgorithm());
  const LazyBroadcastResult b =
      play_lazy_broadcast(32, 4, FloodingAlgorithm());
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.edges_probed, b.edges_probed);
}

TEST(LazyBroadcast, BudgetValve) {
  const LazyBroadcastResult r =
      play_lazy_broadcast(32, 4, FloodingAlgorithm(), /*max_messages=*/40);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.violation.find("budget"), std::string::npos);
}

}  // namespace
}  // namespace oraclesize
