// Oracle composition: subadditivity of the difficulty measure, executable.
#include "oracle/composite_oracle.h"

#include "bitio/codecs.h"

#include <gtest/gtest.h>

#include "core/broadcast_b.h"
#include "core/census.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "graph/complete_star.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "util/mathx.h"

namespace oraclesize {
namespace {

TEST(CompositeOracle, SplitRoundTrip) {
  std::vector<BitString> parts(3);
  parts[0] = BitString::from_string("1011");
  parts[2] = BitString::from_string("0");
  // Compose by hand using the documented layout.
  BitString composite;
  for (const BitString& p : parts) {
    append_doubled(composite, p.size());
    composite.append(p);
  }
  const auto back = split_composite_advice(composite, 3);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], parts[0]);
  EXPECT_TRUE(back[1].empty());
  EXPECT_EQ(back[2], parts[2]);
}

TEST(CompositeOracle, EmptyStringSplitsToAllEmpty) {
  const auto parts = split_composite_advice(BitString{}, 4);
  for (const BitString& p : parts) EXPECT_TRUE(p.empty());
}

TEST(CompositeOracle, SplitRejectsMalformed) {
  BitString bad;
  append_doubled(bad, 10);  // announces 10 bits, provides none
  EXPECT_THROW(split_composite_advice(bad, 1), std::invalid_argument);
  BitString trailing;
  append_doubled(trailing, 0);
  trailing.append_bit(true);  // extra bit after the last part
  EXPECT_THROW(split_composite_advice(trailing, 1), std::invalid_argument);
}

TEST(CompositeOracle, SizeIsSumPlusDelimiters) {
  Rng rng(901);
  const PortGraph g = make_random_connected(40, 0.2, rng);
  const TreeWakeupOracle wakeup;
  const LightBroadcastOracle light;
  const CompositeOracle both({&wakeup, &light});
  const auto advice = both.advise(g, 0);
  const auto wa = oracle_size_bits(wakeup.advise(g, 0));
  const auto la = oracle_size_bits(light.advise(g, 0));
  const auto ca = oracle_size_bits(advice);
  EXPECT_GE(ca, wa + la);
  // Delimiter overhead: at most 2 * (2*#2(maxlen) + 2) per node.
  EXPECT_LE(ca, wa + la + g.num_nodes() * 2 *
                              (2 * static_cast<std::uint64_t>(
                                       num_bits(1 << 20)) +
                               2));
}

TEST(CompositeOracle, BothTasksRunFromOneAdvice) {
  Rng rng(902);
  const PortGraph g = make_random_connected(50, 0.15, rng);
  const std::size_t n = g.num_nodes();
  const TreeWakeupOracle wakeup_oracle;
  const LightBroadcastOracle light_oracle;
  const CompositeOracle both({&wakeup_oracle, &light_oracle});

  const WakeupTreeAlgorithm wakeup;
  const BroadcastBAlgorithm broadcast;
  const AdviceProjection wakeup_part(wakeup, 0, 2);
  const AdviceProjection broadcast_part(broadcast, 1, 2);

  const TaskReport w = run_task(g, 0, both, wakeup_part);
  ASSERT_TRUE(w.ok()) << w.summary();
  EXPECT_EQ(w.run.metrics.messages_total, n - 1);

  const TaskReport b = run_task(g, 0, both, broadcast_part);
  ASSERT_TRUE(b.ok()) << b.summary();
  EXPECT_LE(b.run.metrics.messages_total, 3 * (n - 1));
}

TEST(CompositeOracle, ProjectionPreservesWakeupFlag) {
  const WakeupTreeAlgorithm wakeup;
  const BroadcastBAlgorithm broadcast;
  EXPECT_TRUE(AdviceProjection(wakeup, 0, 2).is_wakeup());
  EXPECT_FALSE(AdviceProjection(broadcast, 1, 2).is_wakeup());
}

TEST(CompositeOracle, ThreeWayComposite) {
  // Wakeup advice twice (two tasks sharing a tree) plus broadcast advice.
  const PortGraph g = make_complete_star(24);
  const TreeWakeupOracle tree;
  const LightBroadcastOracle light;
  const CompositeOracle triple({&tree, &tree, &light});
  EXPECT_EQ(triple.num_parts(), 3u);
  const auto advice = triple.advise(g, 0);

  const CensusAlgorithm census;
  const TaskReport c = run_task(g, 0, triple, AdviceProjection(census, 1, 3));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.run.outputs[0], 24u);
}

TEST(CompositeOracle, NameListsParts) {
  const TreeWakeupOracle tree;
  const LightBroadcastOracle light;
  const CompositeOracle both({&tree, &light});
  EXPECT_EQ(both.name(),
            "composite(tree-wakeup(bfs)+light-broadcast(light))");
}

}  // namespace
}  // namespace oraclesize
