// The fault-injection layer's contracts (sim/fault_plan.h):
//
//  * the zero plan is invisible — bit-identical RunResults to a run that
//    never heard of faults;
//  * a faulty execution is a pure function of (spec, plan): same seed →
//    same traces and counters, on one worker or eight;
//  * each fault family does what it says (drop silences, duplicate
//    re-delivers, crash-stop freezes a node, advice corruption never
//    touches the shared advice vector);
//  * the run-hardening knobs (deadline, event budget) terminate with the
//    right structured RunStatus;
//  * BatchRunner's RetryPolicy re-seeds deterministically and reports
//    attempt counts.
#include "sim/fault_plan.h"

#include <gtest/gtest.h>

#include "core/batch_runner.h"
#include "core/flooding.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "graph/complete_star.h"
#include "oracle/tree_wakeup_oracle.h"
#include "oracle/trivial_oracles.h"
#include "sim/execution_context.h"

namespace oraclesize {
namespace {

PortGraph fault_graph() {
  Rng rng(4242);
  return make_random_connected(60, 0.12, rng);
}

RunOptions traced() {
  RunOptions opts;
  opts.trace = true;
  return opts;
}

TEST(FaultPlan, ZeroPlanBitIdenticalToDefaultRun) {
  const PortGraph g = fault_graph();
  const TreeWakeupOracle oracle;
  const WakeupTreeAlgorithm algorithm;
  const auto advice = oracle.advise(g, 0);

  RunOptions base = traced();
  RunOptions zero = base;
  zero.fault.seed = 0xfeedface;  // a seed alone must not enable anything
  ASSERT_FALSE(zero.fault.enabled());

  ExecutionContext ctx;
  const RunResult a = ctx.run(g, 0, advice, algorithm, base);
  const RunResult b = ctx.run(g, 0, advice, algorithm, zero);
  EXPECT_EQ(a, b);  // full field-by-field equality, trace included
  EXPECT_EQ(a.status, RunStatus::kCompleted);
  EXPECT_EQ(a.faults, FaultCounters{});
}

TEST(FaultPlan, SameSeedSamePlanIsBitIdentical) {
  const PortGraph g = fault_graph();
  const NullOracle oracle;
  const FloodingAlgorithm algorithm;
  const auto advice = oracle.advise(g, 0);

  RunOptions opts = traced();
  opts.fault.seed = 99;
  opts.fault.drop = 0.1;
  opts.fault.duplicate = 0.1;
  opts.fault.delay = 0.2;
  opts.fault.crash = 0.1;

  ExecutionContext ctx1, ctx2;
  const RunResult a = ctx1.run(g, 0, advice, algorithm, opts);
  const RunResult b = ctx2.run(g, 0, advice, algorithm, opts);
  EXPECT_EQ(a, b);
  // A fresh context after unrelated runs must reproduce it too (pooled
  // state cannot leak into fault decisions).
  ctx1.run(g, 3, advice, algorithm, traced());
  const RunResult c = ctx1.run(g, 0, advice, algorithm, opts);
  EXPECT_EQ(a, c);
  // The regime actually exercised something.
  EXPECT_GT(a.faults.dropped + a.faults.duplicated + a.faults.delayed, 0u);
}

TEST(FaultPlan, ResultsIndependentOfJobsUnderFaults) {
  const PortGraph g = fault_graph();
  const NullOracle null;
  const TreeWakeupOracle tree;
  const FloodingAlgorithm flooding;
  const WakeupTreeAlgorithm wakeup;

  std::vector<TrialSpec> specs;
  for (std::uint64_t s = 0; s < 6; ++s) {
    RunOptions opts;
    opts.seed = s + 1;
    opts.fault.seed = 1000 + s;
    opts.fault.drop = 0.05 * static_cast<double>(s % 3);
    opts.fault.duplicate = (s % 2) ? 0.1 : 0.0;
    opts.fault.crash = (s >= 4) ? 0.2 : 0.0;
    specs.push_back(
        TrialSpec{&g, static_cast<NodeId>(s % 5), &null, &flooding, opts});
    opts.fault.advice_flip = (s % 2) ? 0.05 : 0.0;
    specs.push_back(
        TrialSpec{&g, static_cast<NodeId>(s % 5), &tree, &wakeup, opts});
  }

  const RetryPolicy retry{2, 0x9e3779b97f4a7c15ULL, true};
  const auto one = BatchRunner(1, true, retry).run(specs);
  const auto eight = BatchRunner(8, true, retry).run(specs);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].run, eight[i].run) << i;
    EXPECT_EQ(one[i].attempts, eight[i].attempts) << i;
    EXPECT_EQ(one[i].error, eight[i].error) << i;
  }
}

TEST(FaultPlan, CrashStopFreezesEveryNonSourceNode) {
  const PortGraph g = make_complete_star(8);
  const NullOracle oracle;
  const FloodingAlgorithm algorithm;
  const auto advice = oracle.advise(g, 0);

  RunOptions opts;
  opts.fault.seed = 7;
  opts.fault.crash = 1.0;
  opts.fault.max_crash_key = 0;  // everyone (but the source) down at key 0

  ExecutionContext ctx;
  const RunResult r = ctx.run(g, 0, advice, algorithm, opts);
  EXPECT_EQ(r.status, RunStatus::kTaskFailed);
  EXPECT_EQ(r.faults.crashed_nodes, 7u);
  EXPECT_EQ(r.informed_count(), 1u);   // only the source
  EXPECT_GT(r.faults.dead_deliveries, 0u);
  EXPECT_EQ(r.metrics.deliveries, 0u);  // every delivery hit a dead node
  // The source is exempt by default: it still flooded its ports.
  EXPECT_EQ(r.metrics.messages_total, 7u);
}

TEST(FaultPlan, DropEverythingInformsNobody) {
  const PortGraph g = make_complete_star(6);
  const NullOracle oracle;
  const FloodingAlgorithm algorithm;
  const auto advice = oracle.advise(g, 0);

  RunOptions opts;
  opts.fault.seed = 1;
  opts.fault.drop = 1.0;

  ExecutionContext ctx;
  const RunResult r = ctx.run(g, 0, advice, algorithm, opts);
  EXPECT_EQ(r.status, RunStatus::kTaskFailed);
  EXPECT_EQ(r.informed_count(), 1u);
  EXPECT_GT(r.metrics.messages_total, 0u);  // sends still count as sends
  EXPECT_EQ(r.faults.dropped, r.metrics.messages_total);
  EXPECT_EQ(r.metrics.deliveries, 0u);
}

TEST(FaultPlan, DuplicateEverythingStillCompletes) {
  const PortGraph g = make_complete_star(6);
  const NullOracle oracle;
  const FloodingAlgorithm algorithm;
  const auto advice = oracle.advise(g, 0);

  RunOptions opts;
  opts.fault.seed = 2;
  opts.fault.duplicate = 1.0;

  ExecutionContext ctx;
  const RunResult r = ctx.run(g, 0, advice, algorithm, opts);
  EXPECT_EQ(r.status, RunStatus::kCompleted);
  EXPECT_TRUE(r.all_informed);
  EXPECT_EQ(r.faults.duplicated, r.metrics.messages_total);
  // Every send delivered twice.
  EXPECT_EQ(r.metrics.deliveries, 2 * r.metrics.messages_total);
}

TEST(FaultPlan, DelayedMessagesStillComplete) {
  const PortGraph g = fault_graph();
  const NullOracle oracle;
  const FloodingAlgorithm algorithm;
  const auto advice = oracle.advise(g, 0);

  RunOptions opts;
  opts.fault.seed = 3;
  opts.fault.delay = 1.0;
  opts.fault.max_extra_delay = 5;

  ExecutionContext ctx;
  const RunResult ref = ctx.run(g, 0, advice, algorithm, RunOptions{});
  const RunResult r = ctx.run(g, 0, advice, algorithm, opts);
  EXPECT_EQ(r.status, RunStatus::kCompleted);
  EXPECT_EQ(r.faults.delayed, r.metrics.messages_total);
  // Flooding is delay-tolerant: delays reorder, they don't change totals.
  EXPECT_EQ(r.metrics.messages_total, ref.metrics.messages_total);
  EXPECT_GE(r.metrics.completion_key, ref.metrics.completion_key);
}

TEST(FaultPlan, AdviceCorruptionNeverTouchesTheInput) {
  const PortGraph g = fault_graph();
  const TreeWakeupOracle oracle;
  const WakeupTreeAlgorithm algorithm;
  const auto advice = oracle.advise(g, 0);
  const auto pristine = advice;  // deep copy to compare against

  RunOptions opts;
  opts.fault.seed = 5;
  opts.fault.advice_flip = 0.25;

  ExecutionContext ctx;
  const RunResult r = ctx.run(g, 0, advice, algorithm, opts);
  EXPECT_GT(r.faults.advice_bits_flipped, 0u);
  EXPECT_EQ(advice, pristine);  // shared advice must stay immutable
  // Whatever corruption did — decode failure or a wrong tree — the engine
  // absorbed it into a structured outcome instead of throwing.
  EXPECT_TRUE(r.status == RunStatus::kCompleted ||
              r.status == RunStatus::kTaskFailed);
  // Same corruption seed, same outcome.
  ExecutionContext ctx2;
  EXPECT_EQ(ctx2.run(g, 0, advice, algorithm, opts), r);
}

TEST(FaultPlan, EventBudgetExhaustsStructurally) {
  const PortGraph g = make_complete_star(8);
  const NullOracle oracle;
  const FloodingAlgorithm algorithm;
  const auto advice = oracle.advise(g, 0);

  RunOptions opts;
  opts.max_events = 5;
  ExecutionContext ctx;
  const RunResult r = ctx.run(g, 0, advice, algorithm, opts);
  EXPECT_EQ(r.status, RunStatus::kBudgetExhausted);
  EXPECT_EQ(r.metrics.deliveries, 5u);
  EXPECT_FALSE(r.all_informed);
}

TEST(FaultPlan, DeadlineTimesOut) {
  const PortGraph g = make_grid(20, 20);  // > 1024 deliveries when healthy
  const NullOracle oracle;
  const FloodingAlgorithm algorithm;
  const auto advice = oracle.advise(g, 0);

  RunOptions opts;
  opts.deadline_ns = 1;  // expires before the first amortized check
  ExecutionContext ctx;
  const RunResult r = ctx.run(g, 0, advice, algorithm, opts);
  EXPECT_EQ(r.status, RunStatus::kTimeout);
  EXPECT_FALSE(r.all_informed);
}

TEST(FaultPlan, MessageBudgetNowReportsBudgetExhausted) {
  const PortGraph g = make_complete_star(10);
  const NullOracle oracle;
  const FloodingAlgorithm algorithm;

  RunOptions opts;
  opts.max_messages = 4;
  const TaskReport r = run_task(g, 0, oracle, algorithm, opts);
  EXPECT_EQ(r.run.status, RunStatus::kBudgetExhausted);
  EXPECT_EQ(r.run.violation, "message budget exceeded");
  EXPECT_FALSE(r.ok());
}

TEST(FaultPlan, RetryReseedsDeterministically) {
  const PortGraph g = make_complete_star(8);
  const NullOracle oracle;
  const FloodingAlgorithm algorithm;

  RunOptions opts;
  opts.max_events = 3;  // exhausts on every attempt — a permanent transient
  const std::vector<TrialSpec> specs{
      TrialSpec{&g, 0, &oracle, &algorithm, opts}};

  const RetryPolicy retry{2};
  for (int round = 0; round < 2; ++round) {
    BatchStats stats;
    const auto reports = BatchRunner(1, true, retry).run(specs, &stats);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].attempts, 3u);  // 1 + max_retries, then give up
    EXPECT_EQ(reports[0].run.status, RunStatus::kBudgetExhausted);
    EXPECT_FALSE(reports[0].failed());  // structured, not an exception
    EXPECT_EQ(stats.retries, 2u);
    EXPECT_EQ(stats.failed, 0u);
  }
}

TEST(FaultPlan, RetryTaskFailuresOnlyWhenAsked) {
  const PortGraph g = make_complete_star(6);
  const NullOracle oracle;
  const FloodingAlgorithm algorithm;

  RunOptions opts;
  opts.fault.seed = 11;
  opts.fault.drop = 1.0;  // fails the task on every attempt
  const std::vector<TrialSpec> specs{
      TrialSpec{&g, 0, &oracle, &algorithm, opts}};

  BatchStats stats;
  auto reports =
      BatchRunner(1, true, RetryPolicy{3}).run(specs, &stats);
  EXPECT_EQ(reports[0].attempts, 1u);  // kTaskFailed is final by default
  EXPECT_EQ(stats.retries, 0u);

  reports = BatchRunner(1, true, RetryPolicy{3, 0x9e3779b97f4a7c15ULL, true})
                .run(specs, &stats);
  EXPECT_EQ(reports[0].attempts, 4u);  // retried, every fault seed drops all
  EXPECT_EQ(reports[0].run.status, RunStatus::kTaskFailed);
  EXPECT_EQ(stats.retries, 3u);
}

}  // namespace
}  // namespace oraclesize
