// Deterministic replay: the full matrix.
//
// For every core algorithm, under the synchronous and the async-random
// scheduler, with and without an armed fault plan: record a trace, push it
// through the save/load text format, re-execute it from the artifact's
// embedded inputs alone, and demand a bit-identical event stream, status,
// metrics, and fault counters. This is the PR's determinism contract made
// exhaustive — 24 recorded executions, each replayed from scratch.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/replay.h"
#include "core/runner.h"
#include "graph/builders.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/partial_tree_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "oracle/trivial_oracles.h"

namespace oraclesize {
namespace {

PortGraph replay_graph() {
  Rng rng(515151);
  return make_random_connected(48, 0.12, rng);
}

/// The oracle each algorithm is designed to pair with.
std::unique_ptr<Oracle> oracle_for(const std::string& algorithm) {
  if (algorithm == "broadcast-B") {
    return std::make_unique<LightBroadcastOracle>();
  }
  if (algorithm == "flooding") return std::make_unique<NullOracle>();
  if (algorithm == "hybrid-wakeup") {
    return std::make_unique<PartialTreeOracle>(0.5, 7);
  }
  return std::make_unique<TreeWakeupOracle>();
}

TEST(TraceReplay, FullMatrixRoundTripsBitIdentically) {
  const PortGraph g = replay_graph();
  int replayed = 0;
  for (const std::string& name : known_algorithms()) {
    const Algorithm* algorithm = algorithm_by_name(name);
    ASSERT_NE(algorithm, nullptr) << name;
    const std::unique_ptr<Oracle> oracle = oracle_for(name);
    for (const SchedulerKind sched :
         {SchedulerKind::kSynchronous, SchedulerKind::kAsyncRandom}) {
      for (const bool faulty : {false, true}) {
        RunOptions opts;
        opts.scheduler = sched;
        opts.seed = 1234;
        if (faulty) {
          opts.fault.seed = 88;
          opts.fault.drop = 0.05;
          opts.fault.duplicate = 0.05;
          opts.fault.delay = 0.08;
          opts.fault.crash = 0.04;
          opts.fault.advice_flip = 0.02;
        }
        TraceRecorder recorder;
        opts.trace_sink = &recorder;
        run_task(g, 3, *oracle, *algorithm, opts);
        RecordedTrace t = recorder.take();
        t.header.oracle = oracle->name();

        std::stringstream ss;
        save_trace(ss, t);
        const RecordedTrace loaded = load_trace(ss);
        const ReplayReport report = replay_trace(loaded);
        EXPECT_TRUE(report.match)
            << name << " / " << to_string(sched)
            << (faulty ? " / faulty: " : " / reliable: ")
            << (report.mismatches.empty() ? "?" : report.mismatches.front());
        EXPECT_EQ(report.replayed.digest(), t.digest());
        ++replayed;
      }
    }
  }
  EXPECT_EQ(replayed, 24);
}

TEST(TraceReplay, ReplayReportsUnknownAlgorithm) {
  RecordedTrace t;
  t.header.algorithm = "no-such-scheme";
  EXPECT_THROW(replay_trace(t), std::runtime_error);
}

TEST(TraceReplay, KnownAlgorithmsResolveBothWays) {
  for (const std::string& name : known_algorithms()) {
    const Algorithm* a = algorithm_by_name(name);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->name(), name);
  }
  EXPECT_EQ(known_algorithms().size(), 6u);
  EXPECT_EQ(algorithm_by_name("definitely-not"), nullptr);
}

TEST(TraceReplay, DivergenceIsLocalizedNotJustDetected) {
  // Change the recorded seed under the async scheduler: the replay explores
  // a different schedule and the report names the first divergent event
  // (or a metric) rather than merely failing.
  const PortGraph g = replay_graph();
  const TreeWakeupOracle oracle;
  RunOptions opts;
  opts.scheduler = SchedulerKind::kAsyncRandom;
  opts.seed = 42;
  TraceRecorder recorder;
  opts.trace_sink = &recorder;
  run_task(g, 3, oracle, *algorithm_by_name("census-echo"), opts);
  RecordedTrace t = recorder.take();
  t.header.oracle = oracle.name();

  t.header.seed = 43;  // forge a different schedule
  const ReplayReport report = replay_trace(t);
  EXPECT_FALSE(report.match);
  ASSERT_FALSE(report.mismatches.empty());
  bool localized = false;
  for (const std::string& m : report.mismatches) {
    if (m.find("events[") != std::string::npos ||
        m.find("metrics.") != std::string::npos) {
      localized = true;
    }
  }
  EXPECT_TRUE(localized) << report.mismatches.front();
}

TEST(TraceReplay, DiffFindsFirstDivergentEvent) {
  const PortGraph g = replay_graph();
  const TreeWakeupOracle oracle;
  auto record_with_seed = [&](std::uint64_t seed) {
    RunOptions opts;
    opts.scheduler = SchedulerKind::kAsyncRandom;
    opts.seed = seed;
    TraceRecorder recorder;
    opts.trace_sink = &recorder;
    run_task(g, 0, oracle, *algorithm_by_name("gossip-tree"), opts);
    RecordedTrace t = recorder.take();
    t.header.oracle = oracle.name();
    return t;
  };
  const RecordedTrace a = record_with_seed(1);
  const RecordedTrace b = record_with_seed(2);

  const TraceDiff self = diff_traces(a, a);
  EXPECT_TRUE(self.equal);
  EXPECT_TRUE(self.differences.empty());

  const TraceDiff diff = diff_traces(a, b);
  EXPECT_FALSE(diff.equal);
  bool event_line = false;
  for (const std::string& d : diff.differences) {
    if (d.find("events") != std::string::npos) event_line = true;
  }
  EXPECT_TRUE(event_line);
}

}  // namespace
}  // namespace oraclesize
