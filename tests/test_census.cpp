// The census/echo extension: same Theorem 2.1 oracle, richer task —
// the source learns n and detects termination, at 2(n-1) messages.
#include "core/census.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/runner.h"
#include "graph/builders.h"
#include "graph/complete_star.h"
#include "graph/subdivision.h"
#include "oracle/tree_wakeup_oracle.h"

namespace oraclesize {
namespace {

struct CensusCase {
  std::string name;
  PortGraph graph;
  NodeId source;
};

std::vector<CensusCase> census_cases() {
  Rng rng(501);
  std::vector<CensusCase> cases;
  cases.push_back({"singleton", make_path(1), 0});
  cases.push_back({"pair", make_path(2), 1});
  cases.push_back({"path", make_path(30), 7});
  cases.push_back({"star-center", make_star(20), 0});
  cases.push_back({"star-leaf", make_star(20), 3});
  cases.push_back({"grid", make_grid(5, 8), 0});
  cases.push_back({"complete", make_complete_star(25), 0});
  cases.push_back({"random", make_random_connected(60, 0.1, rng), 11});
  cases.push_back({"gns", make_gns(10, 10, rng).graph, 0});
  return cases;
}

class CensusEndToEnd : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(CensusEndToEnd, SourceLearnsNWithTwoNMessages) {
  for (const CensusCase& c : census_cases()) {
    RunOptions opts;
    opts.scheduler = GetParam();
    opts.seed = 3;
    const TaskReport r = run_task(c.graph, c.source, TreeWakeupOracle(),
                                  CensusAlgorithm(), opts);
    const std::size_t n = c.graph.num_nodes();
    ASSERT_TRUE(r.ok()) << c.name << ": " << r.summary();
    // The source terminated and counted everyone.
    EXPECT_TRUE(r.run.terminated[c.source]) << c.name;
    EXPECT_EQ(r.run.outputs[c.source], n) << c.name;
    // Exactly n-1 source messages down and n-1 count reports up.
    EXPECT_EQ(r.run.metrics.messages_source, n - 1) << c.name;
    EXPECT_EQ(r.run.metrics.messages_control, n - 1) << c.name;
    EXPECT_EQ(r.run.metrics.messages_total, 2 * (n - 1)) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, CensusEndToEnd,
    ::testing::Values(SchedulerKind::kSynchronous, SchedulerKind::kAsyncRandom,
                      SchedulerKind::kAsyncFifo, SchedulerKind::kAsyncLifo,
                      SchedulerKind::kAsyncLinkFifo),
    [](const ::testing::TestParamInfo<SchedulerKind>& info) {
      std::string name = to_string(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(Census, EveryNodeOutputsItsSubtreeSize) {
  Rng rng(502);
  const PortGraph g = make_random_connected(40, 0.15, rng);
  const NodeId source = 5;
  const TaskReport r =
      run_task(g, source, TreeWakeupOracle(TreeKind::kBfs), CensusAlgorithm());
  ASSERT_TRUE(r.ok());
  const SpanningTree tree = bfs_tree(g, source);
  // Subtree sizes, computed independently.
  std::vector<std::uint64_t> subtree(g.num_nodes(), 1);
  // Process nodes in decreasing depth.
  std::vector<NodeId> order(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return tree.depth(a) > tree.depth(b);
  });
  for (NodeId v : order) {
    if (!tree.is_root(v)) subtree[tree.parent(v)] += subtree[v];
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(r.run.terminated[v]) << v;
    EXPECT_EQ(r.run.outputs[v], subtree[v]) << v;
  }
}

TEST(Census, RespectsWakeupConstraint) {
  // run_task auto-enforces (is_wakeup); a clean report is the proof.
  const PortGraph g = make_star(12);
  const TaskReport r =
      run_task(g, 4, TreeWakeupOracle(), CensusAlgorithm());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.run.violation.empty());
}

TEST(Census, CountPayloadsAreLogBounded) {
  const PortGraph g = make_path(64);
  const TaskReport r =
      run_task(g, 0, TreeWakeupOracle(), CensusAlgorithm());
  ASSERT_TRUE(r.ok());
  // 63 bare M messages (2 bits) + count reports carrying <= #2(63) bits
  // each: total strictly below messages * (2 + 6).
  EXPECT_LE(r.run.metrics.bits_sent, r.run.metrics.messages_total * 8);
}

TEST(Census, SameOracleAsWakeup) {
  // The entire point: census needs not one bit more of advice.
  Rng rng(503);
  const PortGraph g = make_random_connected(50, 0.2, rng);
  const auto advice = TreeWakeupOracle().advise(g, 0);
  RunOptions opts;
  opts.enforce_wakeup = true;
  const RunResult r = run_execution(g, 0, advice, CensusAlgorithm(), opts);
  EXPECT_TRUE(r.violation.empty());
  EXPECT_EQ(r.outputs[0], g.num_nodes());
}

TEST(Census, SingletonTerminatesInstantly) {
  const PortGraph g = make_path(1);
  const TaskReport r =
      run_task(g, 0, TreeWakeupOracle(), CensusAlgorithm());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.run.terminated[0]);
  EXPECT_EQ(r.run.outputs[0], 1u);
  EXPECT_EQ(r.run.metrics.messages_total, 0u);
}

}  // namespace
}  // namespace oraclesize
