// The seed-batched lockstep executor's contract, made exhaustive.
//
// Three layers, mirroring how the engine is used:
//
//  * SeedBatchEngine.*      — the engine itself: a 40-seed fuzz sweep over
//    every algorithm x {sync, async-random, async-lifo, async-link-fifo} x
//    fault rates {0, 0.01} demanding bit-identity with the scalar
//    ExecutionContext per lane (the seeded schedulers run counter-keyed,
//    with options.seed varying per lane — the key-class machinery), plus
//    the lane-retirement edge cases (first lane dies, last lane dies,
//    all-but-one die, all die), key-class order-split retirement,
//    eligibility fallbacks, budget statuses, and the behavior-exception
//    split.
//  * SeedFamily.*           — seed_family_key: seed-blind, everything-else
//    sensitive.
//  * SeedBatchRunner.*      — BatchRunner's family collapsing: batched
//    batches reproduce scalar batches report for report (including retried
//    attempts — the RetryPolicy re-seeding fix), stats account for lanes,
//    and the cache-off/sharded paths stay scalar.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/batch_runner.h"
#include "core/replay.h"
#include "graph/builders.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/partial_tree_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "oracle/trivial_oracles.h"
#include "sim/execution_context.h"
#include "sim/seed_batch_engine.h"

namespace oraclesize {
namespace {

using Lane = SeedBatchExecutionContext::Lane;
using Disposition = SeedBatchExecutionContext::LaneDisposition;

PortGraph fuzz_graph() {
  Rng rng(515151);
  return make_random_connected(48, 0.12, rng);
}

/// The oracle each algorithm is designed to pair with (the replay matrix's
/// pairing).
std::unique_ptr<Oracle> oracle_for(const std::string& algorithm) {
  if (algorithm == "broadcast-B") {
    return std::make_unique<LightBroadcastOracle>();
  }
  if (algorithm == "flooding") return std::make_unique<NullOracle>();
  if (algorithm == "hybrid-wakeup") {
    return std::make_unique<PartialTreeOracle>(0.5, 7);
  }
  return std::make_unique<TreeWakeupOracle>();
}

/// Whether a scalar run consumed any fault at all — exactly the engine's
/// shared/replay split: a lane stays on the clean stream iff nothing
/// materialized in its own stream.
bool fault_free(const RunResult& r) {
  const FaultCounters& f = r.faults;
  return f.dropped == 0 && f.duplicated == 0 && f.delayed == 0 &&
         f.crashed_nodes == 0 && f.advice_bits_flipped == 0;
}

TEST(SeedBatchEngine, FuzzFortySeedsBitIdenticalAcrossMatrix) {
  const PortGraph g = fuzz_graph();
  constexpr NodeId kSource = 3;
  constexpr std::size_t kLanes = 40;
  SeedBatchExecutionContext batched;
  ExecutionContext scalar;
  int cells = 0;
  for (const std::string& name : known_algorithms()) {
    const Algorithm* algorithm = algorithm_by_name(name);
    ASSERT_NE(algorithm, nullptr) << name;
    const std::unique_ptr<Oracle> oracle = oracle_for(name);
    const std::vector<BitString> advice = oracle->advise(g, kSource);
    for (const SchedulerKind sched :
         {SchedulerKind::kSynchronous, SchedulerKind::kAsyncRandom,
          SchedulerKind::kAsyncLifo, SchedulerKind::kAsyncLinkFifo}) {
      for (const double rate : {0.0, 0.01}) {
        RunOptions base;
        base.scheduler = sched;
        base.enforce_wakeup = algorithm->is_wakeup();
        base.fault.drop = rate;
        base.fault.duplicate = rate;
        base.fault.delay = rate;
        base.fault.crash = rate;
        base.fault.advice_flip = rate / 2;
        std::vector<Lane> lanes;
        for (std::size_t l = 0; l < kLanes; ++l) {
          lanes.push_back({1000 + 7 * l, 90000 + 13 * l});
        }
        const std::vector<RunResult> got =
            batched.run(g, kSource, advice, *algorithm, base, lanes);
        ASSERT_EQ(got.size(), kLanes);
        const SeedBatchStats stats = batched.last_stats();
        EXPECT_EQ(stats.lanes, kLanes);
        EXPECT_EQ(stats.shared + stats.replayed, kLanes);
        if (sched == SchedulerKind::kAsyncRandom ||
            sched == SchedulerKind::kAsyncLinkFifo) {
          // Counter-keyed seeded scheduler: the pass runs with one key
          // class per scheduler seed. On this branching graph most
          // classes split from the driver's order and retire, but the
          // driver class itself always survives a fault-free pass.
          EXPECT_TRUE(stats.lockstep_ran);
          if (rate == 0.0) EXPECT_GE(stats.shared, 1u);
        } else if (rate == 0.0) {
          // Fault-free family on a pure scheduler: one pass serves all.
          EXPECT_TRUE(stats.lockstep_ran);
          EXPECT_EQ(stats.shared, kLanes);
        }
        for (std::size_t l = 0; l < kLanes; ++l) {
          RunOptions options = base;
          options.seed = lanes[l].seed;
          options.fault.seed = lanes[l].fault_seed;
          const RunResult want =
              scalar.run(g, kSource, advice, *algorithm, options);
          EXPECT_EQ(got[l], want)
              << name << " " << to_string(sched) << " rate=" << rate
              << " lane=" << l;
        }
        ++cells;
      }
    }
  }
  EXPECT_EQ(cells, 48);  // 6 algorithms x 4 schedulers x 2 rates
}

TEST(SeedBatchEngine, CounterKeyedSeedAxisSharesOnSequentialWorkloads) {
  // A tree-cast down a path keeps exactly one message in flight, so every
  // scheduler-seed key class agrees on the delivery ORDER even though each
  // assigns different delivery KEYS — the whole 40-wide seed axis rides a
  // single pass. This is the workload shape behind the perf_schedbatch
  // floor rows.
  const PortGraph g = make_path(64);
  const TreeWakeupOracle oracle;
  const std::vector<BitString> advice = oracle.advise(g, 0);
  const Algorithm* wakeup = algorithm_by_name("wakeup-tree");
  ASSERT_NE(wakeup, nullptr);
  ExecutionContext scalar;
  for (const SchedulerKind sched :
       {SchedulerKind::kAsyncRandom, SchedulerKind::kAsyncLinkFifo}) {
    RunOptions base;
    base.scheduler = sched;
    base.enforce_wakeup = true;
    std::vector<Lane> lanes;
    for (std::size_t l = 0; l < 40; ++l) lanes.push_back({1 + 13 * l, 0});
    SeedBatchExecutionContext batched;
    const std::vector<RunResult> got =
        batched.run(g, 0, advice, *wakeup, base, lanes);
    const SeedBatchStats stats = batched.last_stats();
    EXPECT_TRUE(stats.lockstep_ran) << to_string(sched);
    EXPECT_EQ(stats.shared, 40u) << to_string(sched);
    std::map<std::int64_t, int> completion_keys;
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      RunOptions options = base;
      options.seed = lanes[l].seed;
      const RunResult want = scalar.run(g, 0, advice, *wakeup, options);
      EXPECT_EQ(got[l], want) << to_string(sched) << " lane " << l;
      ++completion_keys[got[l].metrics.completion_key];
    }
    // The per-class patching is real: different scheduler seeds yield
    // genuinely different completion keys out of the one shared pass.
    EXPECT_GT(completion_keys.size(), 1u) << to_string(sched);
  }
}

TEST(SeedBatchEngine, KeyClassOrderSplitRetiresToScalarReplay) {
  // A star's source fans out to every leaf at once, so the pending set is
  // wide and scheduler-seed classes disagree on pop order almost surely.
  // Disagreeing classes must retire to bit-exact scalar replays while the
  // driver class keeps the pass.
  const PortGraph g = make_star(9);
  const TreeWakeupOracle oracle;
  const std::vector<BitString> advice = oracle.advise(g, 0);
  const Algorithm* wakeup = algorithm_by_name("wakeup-tree");
  ASSERT_NE(wakeup, nullptr);
  RunOptions base;
  base.scheduler = SchedulerKind::kAsyncRandom;
  base.max_delay = 64;
  base.enforce_wakeup = true;
  std::vector<Lane> lanes;
  for (std::size_t l = 0; l < 40; ++l) lanes.push_back({7 + 31 * l, 0});
  SeedBatchExecutionContext batched;
  const std::vector<RunResult> got =
      batched.run(g, 0, advice, *wakeup, base, lanes);
  const SeedBatchStats stats = batched.last_stats();
  EXPECT_TRUE(stats.lockstep_ran);
  EXPECT_GE(stats.shared, 1u);
  EXPECT_GT(stats.replayed, 0u);
  EXPECT_EQ(stats.shared + stats.replayed, 40u);
  ExecutionContext scalar;
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    RunOptions options = base;
    options.seed = lanes[l].seed;
    EXPECT_EQ(got[l], scalar.run(g, 0, advice, *wakeup, options))
        << "lane " << l;
  }
}

/// Scans fault seeds on a small drop-only regime and splits them into
/// lanes that stay clean vs lanes that diverge, then exercises every
/// retirement shape. Deterministic: the classification is a pure function
/// of the seeds.
class SeedBatchRetirementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(99);
    graph_ = make_random_tree(12, rng);
    oracle_ = std::make_unique<TreeWakeupOracle>();
    algorithm_ = algorithm_by_name("wakeup-tree");
    ASSERT_NE(algorithm_, nullptr);
    advice_ = oracle_->advise(graph_, 0);
    base_.enforce_wakeup = true;
    base_.fault.drop = 0.02;
    ExecutionContext scalar;
    for (std::uint64_t s = 1; s <= 400; ++s) {
      RunOptions options = base_;
      options.fault.seed = s;
      const RunResult r =
          scalar.run(graph_, 0, advice_, *algorithm_, options);
      (fault_free(r) ? clean_ : diverging_).push_back(s);
      if (clean_.size() >= 4 && diverging_.size() >= 4) break;
    }
    ASSERT_GE(clean_.size(), 4u) << "seed scan found too few clean lanes";
    ASSERT_GE(diverging_.size(), 4u)
        << "seed scan found too few diverging lanes";
  }

  void check(const std::vector<std::uint64_t>& fault_seeds,
             const std::vector<Disposition>& want_disp) {
    std::vector<Lane> lanes;
    for (const std::uint64_t s : fault_seeds) lanes.push_back({1, s});
    std::vector<Disposition> disp;
    SeedBatchExecutionContext batched;
    batched.run_lockstep(graph_, 0, advice_, *algorithm_, base_, lanes,
                         disp);
    EXPECT_EQ(disp, want_disp);
    // And the full per-lane results still match scalar bit for bit.
    const std::vector<RunResult> got =
        batched.run(graph_, 0, advice_, *algorithm_, base_, lanes);
    ExecutionContext scalar;
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      RunOptions options = base_;
      options.fault.seed = lanes[l].fault_seed;
      EXPECT_EQ(got[l], scalar.run(graph_, 0, advice_, *algorithm_, options))
          << "lane " << l;
    }
  }

  PortGraph graph_;
  std::unique_ptr<Oracle> oracle_;
  const Algorithm* algorithm_ = nullptr;
  std::vector<BitString> advice_;
  RunOptions base_;
  std::vector<std::uint64_t> clean_;
  std::vector<std::uint64_t> diverging_;
};

TEST_F(SeedBatchRetirementTest, FirstLaneDies) {
  check({diverging_[0], clean_[0], clean_[1], clean_[2]},
        {Disposition::kReplay, Disposition::kShared, Disposition::kShared,
         Disposition::kShared});
}

TEST_F(SeedBatchRetirementTest, LastLaneDies) {
  check({clean_[0], clean_[1], clean_[2], diverging_[1]},
        {Disposition::kShared, Disposition::kShared, Disposition::kShared,
         Disposition::kReplay});
}

TEST_F(SeedBatchRetirementTest, AllButOneDie) {
  check({diverging_[0], diverging_[1], diverging_[2], clean_[3]},
        {Disposition::kReplay, Disposition::kReplay, Disposition::kReplay,
         Disposition::kShared});
}

TEST_F(SeedBatchRetirementTest, AllLanesDieAndThePassAborts) {
  std::vector<Lane> lanes;
  for (int k = 0; k < 3; ++k) lanes.push_back({1, diverging_[k]});
  std::vector<Disposition> disp;
  SeedBatchExecutionContext batched;
  batched.run_lockstep(graph_, 0, advice_, *algorithm_, base_, lanes, disp);
  EXPECT_EQ(batched.last_stats().shared, 0u);
  EXPECT_EQ(batched.last_stats().replayed, 3u);
  for (const Disposition d : disp) EXPECT_EQ(d, Disposition::kReplay);
  // The convenience path still produces every lane correctly via replays.
  const std::vector<RunResult> got =
      batched.run(graph_, 0, advice_, *algorithm_, base_, lanes);
  ExecutionContext scalar;
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    RunOptions options = base_;
    options.fault.seed = lanes[l].fault_seed;
    EXPECT_EQ(got[l], scalar.run(graph_, 0, advice_, *algorithm_, options));
  }
}

TEST(SeedBatchEngine, EligibilityGates) {
  RunOptions base;
  EXPECT_TRUE(SeedBatchExecutionContext::lockstep_eligible(base));
  base.scheduler = SchedulerKind::kAsyncFifo;
  EXPECT_TRUE(SeedBatchExecutionContext::lockstep_eligible(base));
  base.scheduler = SchedulerKind::kAsyncLifo;
  EXPECT_TRUE(SeedBatchExecutionContext::lockstep_eligible(base));
  // Counter-keyed seeded schedulers batch; the legacy stream keying keeps
  // its draw-order RNG state and must stay scalar.
  base.scheduler = SchedulerKind::kAsyncRandom;
  EXPECT_TRUE(SeedBatchExecutionContext::lockstep_eligible(base));
  base.keying = SchedulerKeying::kStream;
  EXPECT_FALSE(SeedBatchExecutionContext::lockstep_eligible(base));
  base.keying = SchedulerKeying::kCounter;
  base.scheduler = SchedulerKind::kAsyncLinkFifo;
  EXPECT_TRUE(SeedBatchExecutionContext::lockstep_eligible(base));
  base.keying = SchedulerKeying::kStream;
  EXPECT_FALSE(SeedBatchExecutionContext::lockstep_eligible(base));
  base = RunOptions{};
  base.trace = true;
  EXPECT_FALSE(SeedBatchExecutionContext::lockstep_eligible(base));
  base = RunOptions{};
  base.deadline_ns = 1;
  EXPECT_FALSE(SeedBatchExecutionContext::lockstep_eligible(base));
  // Byzantine runs always execute scalar: forged content depends on the
  // delivery order of observed traffic, which lockstep cannot share.
  base = RunOptions{};
  base.adversary.byz_rate = 0.1;
  EXPECT_FALSE(SeedBatchExecutionContext::lockstep_eligible(base));
  base = RunOptions{};
  base.adversary.byz_nodes = 2;
  EXPECT_FALSE(SeedBatchExecutionContext::lockstep_eligible(base));
  base = RunOptions{};
  base.adversary.seed = 99;  // seeded but empty: still the honest network
  EXPECT_TRUE(SeedBatchExecutionContext::lockstep_eligible(base));
}

TEST(SeedBatchEngine, ByzantineFamilyReplaysEveryLaneIdenticallyToScalar) {
  const PortGraph g = fuzz_graph();
  const LightBroadcastOracle oracle;
  const std::vector<BitString> advice = oracle.advise(g, 0);
  const Algorithm* broadcast = algorithm_by_name("broadcast-B");
  ASSERT_NE(broadcast, nullptr);
  RunOptions base;
  base.adversary.seed = 42;
  base.adversary.byz_rate = 0.2;
  std::vector<Lane> lanes = {{1, 0}, {2, 0}, {3, 0}};
  SeedBatchExecutionContext batched;
  const std::vector<RunResult> got =
      batched.run(g, 0, advice, *broadcast, base, lanes);
  EXPECT_FALSE(batched.last_stats().lockstep_ran);
  EXPECT_EQ(batched.last_stats().replayed, 3u);
  ExecutionContext scalar;
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    RunOptions options = base;
    options.seed = lanes[l].seed;
    const RunResult want = scalar.run(g, 0, advice, *broadcast, options);
    EXPECT_EQ(got[l], want) << "lane " << l;
    EXPECT_GT(want.adversary.lying_nodes, 0u) << "lane " << l;
  }
}

TEST(SeedBatchEngine, IneligibleFamilyReplaysEveryLane) {
  const PortGraph g = fuzz_graph();
  const NullOracle oracle;
  const std::vector<BitString> advice = oracle.advise(g, 0);
  const Algorithm* flooding = algorithm_by_name("flooding");
  RunOptions base;
  base.trace = true;  // legacy tracing: an unsupported feature
  std::vector<Lane> lanes = {{1, 0}, {2, 0}, {3, 0}};
  std::vector<Disposition> disp;
  SeedBatchExecutionContext batched;
  batched.run_lockstep(g, 0, advice, *flooding, base, lanes, disp);
  EXPECT_FALSE(batched.last_stats().lockstep_ran);
  EXPECT_EQ(batched.last_stats().replayed, 3u);
  // Replays honor the unsupported feature: the recorded traces match.
  const std::vector<RunResult> got =
      batched.run(g, 0, advice, *flooding, base, lanes);
  ExecutionContext scalar;
  RunOptions options = base;
  options.seed = lanes[0].seed;
  const RunResult want = scalar.run(g, 0, advice, *flooding, options);
  EXPECT_FALSE(want.trace.empty());
  EXPECT_EQ(got[0], want);
}

TEST(SeedBatchEngine, EmptyLanesAndPreconditionErrors) {
  const PortGraph g = fuzz_graph();
  const NullOracle oracle;
  const std::vector<BitString> advice = oracle.advise(g, 0);
  const Algorithm* flooding = algorithm_by_name("flooding");
  SeedBatchExecutionContext batched;
  std::vector<Disposition> disp;
  batched.run_lockstep(g, 0, advice, *flooding, RunOptions{}, {}, disp);
  EXPECT_TRUE(disp.empty());
  EXPECT_EQ(batched.last_stats().lanes, 0u);
  const std::vector<BitString> short_advice(3);
  EXPECT_THROW(batched.run_lockstep(g, 0, short_advice, *flooding,
                                    RunOptions{}, {{1, 0}}, disp),
               std::invalid_argument);
  EXPECT_THROW(batched.run_lockstep(g, g.num_nodes(), advice, *flooding,
                                    RunOptions{}, {{1, 0}}, disp),
               std::invalid_argument);
}

TEST(SeedBatchEngine, BudgetStatusesMatchScalar) {
  const PortGraph g = fuzz_graph();
  const NullOracle oracle;
  const std::vector<BitString> advice = oracle.advise(g, 0);
  const Algorithm* flooding = algorithm_by_name("flooding");
  ExecutionContext scalar;
  SeedBatchExecutionContext batched;
  for (const bool by_events : {false, true}) {
    RunOptions base;
    if (by_events) {
      base.max_events = 5;
    } else {
      base.max_messages = 5;
    }
    std::vector<Lane> lanes = {{1, 0}, {2, 0}};
    const std::vector<RunResult> got =
        batched.run(g, 0, advice, *flooding, base, lanes);
    EXPECT_EQ(batched.last_stats().shared, 2u);
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      RunOptions options = base;
      options.seed = lanes[l].seed;
      const RunResult want = scalar.run(g, 0, advice, *flooding, options);
      EXPECT_EQ(want.status, RunStatus::kBudgetExhausted);
      EXPECT_EQ(got[l], want);
    }
  }
}

/// Deliberately breaks the wakeup rule: every node transmits on the empty
/// history, source or not.
class EagerBehavior : public NodeBehavior {
 public:
  void on_start(const NodeInput& input, std::vector<Send>& out) override {
    for (Port p = 0; p < static_cast<Port>(input.degree); ++p) {
      out.push_back({Message{}, p});
    }
  }
  void on_receive(const NodeInput&, const Message&, Port,
                  std::vector<Send>&) override {}
};

class EagerAlgorithm : public Algorithm {
 public:
  std::unique_ptr<NodeBehavior> make_behavior(const NodeInput&) const override {
    return std::make_unique<EagerBehavior>();
  }
  std::string name() const override { return "eager-violator"; }
  bool is_wakeup() const override { return true; }
};

TEST(SeedBatchEngine, WakeupViolationIsSharedAndIdentical) {
  const PortGraph g = fuzz_graph();
  const NullOracle oracle;
  const std::vector<BitString> advice = oracle.advise(g, 0);
  const EagerAlgorithm eager;
  RunOptions base;
  base.enforce_wakeup = true;
  std::vector<Lane> lanes = {{1, 0}, {2, 0}, {3, 0}};
  SeedBatchExecutionContext batched;
  const std::vector<RunResult> got =
      batched.run(g, 0, advice, eager, base, lanes);
  EXPECT_EQ(batched.last_stats().shared, 3u);
  ExecutionContext scalar;
  RunOptions options = base;
  options.seed = 1;
  const RunResult want = scalar.run(g, 0, advice, eager, options);
  EXPECT_EQ(want.status, RunStatus::kTaskFailed);
  EXPECT_FALSE(want.violation.empty());
  EXPECT_EQ(got[0], want);
}

/// Behaviors that throw, from on_start or from the constructor — the two
/// scalar-engine exception sites whose fault/clean split the lockstep pass
/// must reproduce.
class ThrowingBehavior : public NodeBehavior {
 public:
  void on_start(const NodeInput&, std::vector<Send>&) override {
    throw std::runtime_error("scripted on_start failure");
  }
  void on_receive(const NodeInput&, const Message&, Port,
                  std::vector<Send>&) override {}
};

class ThrowOnStartAlgorithm : public Algorithm {
 public:
  std::unique_ptr<NodeBehavior> make_behavior(const NodeInput&) const override {
    return std::make_unique<ThrowingBehavior>();
  }
  std::string name() const override { return "throw-on-start"; }
};

class ThrowOnMakeAlgorithm : public Algorithm {
 public:
  std::unique_ptr<NodeBehavior> make_behavior(const NodeInput&) const override {
    throw std::runtime_error("scripted make_behavior failure");
  }
  std::string name() const override { return "throw-on-make"; }
};

TEST(SeedBatchEngine, BehaviorExceptionsFollowTheFaultSplit) {
  const PortGraph g = fuzz_graph();
  const NullOracle oracle;
  const std::vector<BitString> advice = oracle.advise(g, 0);
  ExecutionContext scalar;
  for (const bool at_make : {false, true}) {
    const ThrowOnStartAlgorithm on_start;
    const ThrowOnMakeAlgorithm on_make;
    const Algorithm& algorithm =
        at_make ? static_cast<const Algorithm&>(on_make)
                : static_cast<const Algorithm&>(on_start);
    std::vector<Lane> lanes = {{1, 0}, {2, 0}};

    // Fault-free family: the scalar engine propagates, so replays must too.
    SeedBatchExecutionContext batched;
    EXPECT_THROW(batched.run(g, 0, advice, algorithm, RunOptions{}, lanes),
                 std::runtime_error);
    EXPECT_EQ(batched.last_stats().shared, 0u);

    // Fault-enabled family: the scalar engine absorbs the exception into a
    // kTaskFailed result; the shared pass serves it to every lane.
    RunOptions faulty;
    faulty.fault.delay = 0.01;
    const std::vector<RunResult> got =
        batched.run(g, 0, advice, algorithm, faulty, lanes);
    EXPECT_EQ(batched.last_stats().shared, 2u);
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      RunOptions options = faulty;
      options.seed = lanes[l].seed;
      options.fault.seed = lanes[l].fault_seed;
      const RunResult want = scalar.run(g, 0, advice, algorithm, options);
      EXPECT_EQ(want.status, RunStatus::kTaskFailed);
      EXPECT_EQ(got[l], want);
    }
  }
}

TEST(SeedBatchEngine, CrashAndAdviceFlipLanesRetireAtArm) {
  const PortGraph g = fuzz_graph();
  const TreeWakeupOracle oracle;
  const std::vector<BitString> advice = oracle.advise(g, 3);
  const Algorithm* wakeup = algorithm_by_name("wakeup-tree");
  ExecutionContext scalar;
  for (const bool by_flip : {false, true}) {
    RunOptions base;
    base.enforce_wakeup = true;
    if (by_flip) {
      base.fault.advice_flip = 0.2;
    } else {
      base.fault.crash = 0.5;
    }
    std::vector<Lane> lanes;
    for (std::uint64_t s = 1; s <= 12; ++s) lanes.push_back({1, s});
    SeedBatchExecutionContext batched;
    const std::vector<RunResult> got =
        batched.run(g, 3, advice, *wakeup, base, lanes);
    // At these rates some lanes must retire before the pass starts.
    EXPECT_GT(batched.last_stats().replayed, 0u);
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      RunOptions options = base;
      options.fault.seed = lanes[l].fault_seed;
      EXPECT_EQ(got[l], scalar.run(g, 3, advice, *wakeup, options))
          << (by_flip ? "advice_flip" : "crash") << " lane " << l;
    }
  }
}

TEST(SeedFamily, KeyIsSeedBlindAndOtherwiseSensitive) {
  const PortGraph g = fuzz_graph();
  Rng rng(7);
  const PortGraph h = make_random_tree(10, rng);
  const TreeWakeupOracle oracle;
  const NullOracle null_oracle;
  const Algorithm* wakeup = algorithm_by_name("wakeup-tree");
  const Algorithm* flooding = algorithm_by_name("flooding");

  TrialSpec a(&g, 3, &oracle, wakeup);
  TrialSpec b = a;
  b.options.seed = 999;
  b.options.fault.seed = 777;
  EXPECT_EQ(seed_family_key(a), seed_family_key(b));
  EXPECT_FALSE(seed_family_key(a) < seed_family_key(b));
  EXPECT_FALSE(seed_family_key(b) < seed_family_key(a));

  TrialSpec c = a;
  c.options.fault.drop = 0.5;
  EXPECT_NE(seed_family_key(a), seed_family_key(c));
  TrialSpec d = a;
  d.options.scheduler = SchedulerKind::kAsyncLifo;
  EXPECT_NE(seed_family_key(a), seed_family_key(d));
  TrialSpec q = a;
  q.options.keying = SchedulerKeying::kStream;
  EXPECT_NE(seed_family_key(a), seed_family_key(q));
  TrialSpec e = a;
  e.graph = &h;
  EXPECT_NE(seed_family_key(a), seed_family_key(e));
  TrialSpec f = a;
  f.source = 4;
  EXPECT_NE(seed_family_key(a), seed_family_key(f));
  TrialSpec i = a;
  i.oracle = &null_oracle;
  EXPECT_NE(seed_family_key(a), seed_family_key(i));
  TrialSpec j = a;
  j.algorithm = flooding;
  EXPECT_NE(seed_family_key(a), seed_family_key(j));
  TrialSpec k = a;
  k.options.max_events = 123;
  EXPECT_NE(seed_family_key(a), seed_family_key(k));
  TrialSpec l = a;
  l.advice = std::make_shared<const std::vector<BitString>>(
      oracle.advise(g, 3));
  EXPECT_NE(seed_family_key(a), seed_family_key(l));

  // The Byzantine regime is part of the family identity — INCLUDING its
  // seed (different adversary seeds mean different colluding sets, which
  // lockstep could never share even if Byzantine families were eligible).
  TrialSpec m = a;
  m.options.adversary.byz_rate = 0.1;
  EXPECT_NE(seed_family_key(a), seed_family_key(m));
  TrialSpec n = m;
  n.options.adversary.seed = 1;
  EXPECT_NE(seed_family_key(m), seed_family_key(n));
  TrialSpec o = m;
  o.options.adversary.strategy = ByzantineStrategy::kStructuredLie;
  EXPECT_NE(seed_family_key(m), seed_family_key(o));
  TrialSpec p = m;
  p.options.adversary.byz_nodes = 3;
  EXPECT_NE(seed_family_key(m), seed_family_key(p));
}

/// Everything deterministic in a TaskReport (the timing fields are the
/// documented exception to batch determinism).
void expect_reports_equal(const TaskReport& a, const TaskReport& b,
                          const std::string& label) {
  EXPECT_EQ(a.run, b.run) << label;
  EXPECT_EQ(a.oracle_name, b.oracle_name) << label;
  EXPECT_EQ(a.algorithm_name, b.algorithm_name) << label;
  EXPECT_EQ(a.oracle_bits, b.oracle_bits) << label;
  EXPECT_EQ(a.max_advice_bits, b.max_advice_bits) << label;
  EXPECT_EQ(a.advice_cached, b.advice_cached) << label;
  EXPECT_EQ(a.attempts, b.attempts) << label;
  EXPECT_EQ(a.error, b.error) << label;
  EXPECT_EQ(a.shards, b.shards) << label;
}

std::vector<TrialSpec> family_specs(const PortGraph& g, const Oracle& oracle,
                                    const Algorithm& algorithm,
                                    std::size_t lanes, double drop) {
  std::vector<TrialSpec> specs;
  for (std::size_t l = 0; l < lanes; ++l) {
    RunOptions options;
    options.fault.drop = drop;
    options.fault.seed = 1000 + 17 * l;
    specs.emplace_back(&g, 3, &oracle, &algorithm, options);
  }
  return specs;
}

TEST(SeedBatchRunner, BatchedFamilyReproducesScalarBatch) {
  const PortGraph g = fuzz_graph();
  const TreeWakeupOracle oracle;
  const Algorithm* wakeup = algorithm_by_name("wakeup-tree");
  const std::vector<TrialSpec> specs =
      family_specs(g, oracle, *wakeup, 16, 0.02);

  BatchStats batched_stats;
  const std::vector<TaskReport> batched =
      BatchRunner(2).run(specs, &batched_stats);
  BatchStats scalar_stats;
  const std::vector<TaskReport> scalar =
      BatchRunner(2, true, {}, {}, SeedBatchPolicy{false, 2})
          .run(specs, &scalar_stats);

  ASSERT_EQ(batched.size(), scalar.size());
  std::size_t fault_free_lanes = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_reports_equal(batched[i], scalar[i], "spec " + std::to_string(i));
    fault_free_lanes += fault_free(scalar[i].run);
  }
  EXPECT_EQ(batched_stats.seed_families, 1u);
  EXPECT_EQ(batched_stats.batched_lanes, specs.size());
  // The shared/replayed split is exactly the fault-free/faulted split of
  // the scalar runs.
  EXPECT_EQ(batched_stats.lockstep_shared, fault_free_lanes);
  EXPECT_GT(fault_free_lanes, 0u);
  EXPECT_LT(fault_free_lanes, specs.size());
  EXPECT_EQ(scalar_stats.seed_families, 0u);
  EXPECT_EQ(scalar_stats.batched_lanes, 0u);
  // The new accounting reaches the metrics snapshot as plain counters.
  EXPECT_EQ(batched_stats.metrics.counters.at("seed_families"), 1u);
  EXPECT_EQ(batched_stats.metrics.counters.at("batched_lanes"),
            specs.size());
  EXPECT_EQ(batched_stats.metrics.counters.at("lockstep_shared_lanes"),
            fault_free_lanes);
}

TEST(SeedBatchRunner, RetriedAttemptsStayInFamilyAndMatchScalar) {
  const PortGraph g = fuzz_graph();
  const TreeWakeupOracle oracle;
  const Algorithm* wakeup = algorithm_by_name("wakeup-tree");
  // A drop rate high enough that several lanes fail the task and retry.
  const std::vector<TrialSpec> specs =
      family_specs(g, oracle, *wakeup, 12, 0.15);
  RetryPolicy retry;
  retry.max_retries = 2;
  retry.retry_task_failures = true;

  BatchStats batched_stats;
  const std::vector<TaskReport> batched =
      BatchRunner(2, true, retry).run(specs, &batched_stats);
  const std::vector<TaskReport> scalar =
      BatchRunner(2, true, retry, {}, SeedBatchPolicy{false, 2}).run(specs);

  bool any_retried = false;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_reports_equal(batched[i], scalar[i], "spec " + std::to_string(i));
    any_retried |= batched[i].attempts > 1;
  }
  EXPECT_TRUE(any_retried) << "the retry path was not exercised";
  EXPECT_EQ(batched_stats.seed_families, 1u);
}

TEST(SeedBatchRunner, MixedBatchIsJobsInvariant) {
  const PortGraph g = fuzz_graph();
  const TreeWakeupOracle oracle;
  const NullOracle null_oracle;
  const Algorithm* wakeup = algorithm_by_name("wakeup-tree");
  const Algorithm* flooding = algorithm_by_name("flooding");
  std::vector<TrialSpec> specs = family_specs(g, oracle, *wakeup, 8, 0.02);
  // Singles that must stay scalar: a different algorithm, a different
  // source, and a stream-keyed async-random pair (ineligible keying).
  specs.emplace_back(&g, 3, &null_oracle, flooding);
  specs.emplace_back(&g, 5, &oracle, wakeup);
  for (int k = 0; k < 2; ++k) {
    RunOptions options;
    options.scheduler = SchedulerKind::kAsyncRandom;
    options.keying = SchedulerKeying::kStream;
    options.seed = 40 + k;
    specs.emplace_back(&g, 3, &oracle, wakeup, options);
  }
  // Counter-keyed async-random pair: options.seed is now a lane axis, so
  // these two collapse into a second family.
  for (int k = 0; k < 2; ++k) {
    RunOptions options;
    options.scheduler = SchedulerKind::kAsyncRandom;
    options.seed = 40 + k;
    specs.emplace_back(&g, 3, &oracle, wakeup, options);
  }

  BatchStats stats1, stats3;
  const std::vector<TaskReport> at1 = BatchRunner(1).run(specs, &stats1);
  const std::vector<TaskReport> at3 = BatchRunner(3).run(specs, &stats3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_reports_equal(at1[i], at3[i], "spec " + std::to_string(i));
  }
  EXPECT_EQ(stats1.metrics.counters, stats3.metrics.counters);
  EXPECT_EQ(stats1.seed_families, 2u);
  EXPECT_EQ(stats1.batched_lanes, 10u);
}

TEST(SeedBatchRunner, CacheOffAndShardedTrialsStayScalar) {
  const PortGraph g = fuzz_graph();
  const TreeWakeupOracle oracle;
  const Algorithm* wakeup = algorithm_by_name("wakeup-tree");
  const std::vector<TrialSpec> specs =
      family_specs(g, oracle, *wakeup, 6, 0.0);

  BatchStats no_cache_stats;
  BatchRunner(1, false).run(specs, &no_cache_stats);
  EXPECT_EQ(no_cache_stats.seed_families, 0u);

  ShardPolicy shard;
  shard.shards = 2;
  shard.min_nodes = 1;  // everything big enough: ShardPolicy wins
  BatchStats sharded_stats;
  BatchRunner(1, true, {}, shard).run(specs, &sharded_stats);
  EXPECT_EQ(sharded_stats.seed_families, 0u);

  SeedBatchPolicy min_lanes;
  min_lanes.min_lanes = 7;  // family of 6 stays below the routing floor
  BatchStats floor_stats;
  BatchRunner(1, true, {}, {}, min_lanes).run(specs, &floor_stats);
  EXPECT_EQ(floor_stats.seed_families, 0u);
}

}  // namespace
}  // namespace oraclesize
