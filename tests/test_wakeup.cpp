// Theorem 2.1 end to end: the tree oracle + tree wakeup scheme performs
// wakeup with exactly n-1 messages, asynchronously, anonymously, with
// constant-size messages — and never violates the wakeup constraint.
#include "core/wakeup.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/runner.h"
#include "graph/builders.h"
#include "graph/complete_star.h"
#include "graph/subdivision.h"
#include "oracle/tree_wakeup_oracle.h"
#include "util/mathx.h"

namespace oraclesize {
namespace {

struct WakeupCase {
  std::string name;
  PortGraph graph;
  NodeId source;
};

std::vector<WakeupCase> wakeup_cases() {
  Rng rng(101);
  std::vector<WakeupCase> cases;
  cases.push_back({"path", make_path(20), 0});
  cases.push_back({"path-mid-source", make_path(21), 10});
  cases.push_back({"cycle", make_cycle(17), 3});
  cases.push_back({"star-center", make_star(25), 0});
  cases.push_back({"star-leaf", make_star(25), 7});
  cases.push_back({"grid", make_grid(6, 7), 11});
  cases.push_back({"hypercube", make_hypercube(6), 0});
  cases.push_back({"complete", make_complete_star(30), 0});
  cases.push_back({"lollipop", make_lollipop(30), 29});
  cases.push_back({"random", make_random_connected(50, 0.1, rng), 13});
  cases.push_back(
      {"shuffled", shuffle_ports(make_random_connected(40, 0.3, rng), rng),
       0});
  cases.push_back({"gns", make_gns(12, 12, rng).graph, 0});
  cases.push_back({"singleton", make_path(1), 0});
  cases.push_back({"pair", make_path(2), 1});
  return cases;
}

class WakeupEndToEnd : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(WakeupEndToEnd, ExactlyNMinusOneMessagesEverywhere) {
  for (const WakeupCase& c : wakeup_cases()) {
    RunOptions opts;
    opts.scheduler = GetParam();
    opts.seed = 7;
    const TaskReport report = run_task(c.graph, c.source, TreeWakeupOracle(),
                                       WakeupTreeAlgorithm(), opts);
    EXPECT_TRUE(report.ok()) << c.name << ": " << report.summary();
    EXPECT_EQ(report.run.metrics.messages_total, c.graph.num_nodes() - 1)
        << c.name;
    // Wakeup only ever sends the source message M.
    EXPECT_EQ(report.run.metrics.messages_source,
              report.run.metrics.messages_total);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, WakeupEndToEnd,
    ::testing::Values(SchedulerKind::kSynchronous, SchedulerKind::kAsyncRandom,
                      SchedulerKind::kAsyncFifo, SchedulerKind::kAsyncLifo,
                      SchedulerKind::kAsyncLinkFifo),
    [](const ::testing::TestParamInfo<SchedulerKind>& info) {
      std::string name = to_string(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(Wakeup, WorksAnonymously) {
  // The paper's upper bound holds for anonymous nodes: hiding ids must not
  // change a single message.
  Rng rng(102);
  const PortGraph g = make_random_connected(40, 0.2, rng);
  RunOptions named;
  named.trace = true;
  RunOptions anon = named;
  anon.anonymous = true;
  const TaskReport a =
      run_task(g, 0, TreeWakeupOracle(), WakeupTreeAlgorithm(), named);
  const TaskReport b =
      run_task(g, 0, TreeWakeupOracle(), WakeupTreeAlgorithm(), anon);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.run.trace.size(), b.run.trace.size());
  for (std::size_t i = 0; i < a.run.trace.size(); ++i) {
    EXPECT_EQ(a.run.trace[i].from, b.run.trace[i].from);
    EXPECT_EQ(a.run.trace[i].port, b.run.trace[i].port);
  }
}

TEST(Wakeup, MessagesAreBoundedSize) {
  const PortGraph g = make_complete_star(40);
  const TaskReport report =
      run_task(g, 0, TreeWakeupOracle(), WakeupTreeAlgorithm());
  ASSERT_TRUE(report.ok());
  // Every message is the bare source tag: 2 bits.
  EXPECT_EQ(report.run.metrics.bits_sent,
            2 * report.run.metrics.messages_total);
}

TEST(Wakeup, OracleSizeWithinTheorem21Bound) {
  for (std::size_t n : {32u, 128u, 512u, 2048u}) {
    const PortGraph g = make_complete_star(n);
    const TaskReport report =
        run_task(g, 0, TreeWakeupOracle(), WakeupTreeAlgorithm());
    ASSERT_TRUE(report.ok());
    const double nlogn =
        static_cast<double>(n) * ceil_log2(static_cast<std::uint64_t>(n));
    // n log n + o(n log n): allow 1.5x to cover the O(n log log n) headers.
    EXPECT_LE(static_cast<double>(report.oracle_bits), 1.5 * nlogn);
  }
}

TEST(Wakeup, EveryTreeKindWorks) {
  Rng rng(103);
  const PortGraph g = make_random_connected(35, 0.2, rng);
  for (TreeKind kind : {TreeKind::kBfs, TreeKind::kDfs, TreeKind::kKruskal,
                        TreeKind::kLight}) {
    const TaskReport report =
        run_task(g, 4, TreeWakeupOracle(kind), WakeupTreeAlgorithm());
    EXPECT_TRUE(report.ok()) << to_string(kind);
    EXPECT_EQ(report.run.metrics.messages_total, g.num_nodes() - 1);
  }
}

TEST(Wakeup, TrafficFollowsTheTree) {
  Rng rng(104);
  const PortGraph g = make_random_connected(30, 0.3, rng);
  const SpanningTree tree = bfs_tree(g, 0);
  RunOptions opts;
  opts.trace = true;
  const TaskReport report =
      run_task(g, 0, TreeWakeupOracle(TreeKind::kBfs), WakeupTreeAlgorithm(),
               opts);
  ASSERT_TRUE(report.ok());
  for (const SentRecord& s : report.run.trace) {
    // Each message goes parent -> child along a tree edge.
    const NodeId child = g.neighbor(s.from, s.port).node;
    EXPECT_EQ(tree.parent(child), s.from);
  }
}

TEST(Wakeup, SourceMessageNeverDuplicated) {
  // Each node receives M exactly once (n-1 messages, n-1 receivers).
  Rng rng(105);
  const PortGraph g = make_random_connected(45, 0.15, rng);
  RunOptions opts;
  opts.trace = true;
  const TaskReport report =
      run_task(g, 9, TreeWakeupOracle(), WakeupTreeAlgorithm(), opts);
  ASSERT_TRUE(report.ok());
  std::vector<int> received(g.num_nodes(), 0);
  for (const SentRecord& s : report.run.trace) ++received[s.to];
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(received[v], v == 9 ? 0 : 1);
  }
}

TEST(Wakeup, CorruptAdviceIsDetectedNotMisexecuted) {
  // A truncated advice string must raise a decode error, not silently send
  // garbage.
  const PortGraph g = make_star(5);
  auto advice = TreeWakeupOracle().advise(g, 0);
  BitString truncated;
  for (std::size_t i = 0; i + 1 < advice[0].size(); ++i) {
    truncated.append_bit(advice[0].bit(i));
  }
  advice[0] = truncated;
  EXPECT_THROW(run_execution(g, 0, advice, WakeupTreeAlgorithm(),
                             RunOptions{}),
               std::exception);
}

}  // namespace
}  // namespace oraclesize
