#include "oracle/advice_io.h"

#include <gtest/gtest.h>

#include "graph/builders.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "util/rng.h"

namespace oraclesize {
namespace {

TEST(AdviceIo, RoundTripSimple) {
  std::vector<BitString> advice(4);
  advice[0] = BitString::from_string("101");
  advice[3] = BitString::from_string("1");
  const auto back = advice_from_text(advice_to_text(advice));
  ASSERT_EQ(back.size(), 4u);
  EXPECT_EQ(back[0], advice[0]);
  EXPECT_TRUE(back[1].empty());
  EXPECT_TRUE(back[2].empty());
  EXPECT_EQ(back[3], advice[3]);
}

TEST(AdviceIo, RoundTripRealOracles) {
  Rng rng(91);
  const PortGraph g = make_random_connected(40, 0.2, rng);
  for (const auto& advice :
       {TreeWakeupOracle().advise(g, 0), LightBroadcastOracle().advise(g, 0)}) {
    const auto back = advice_from_text(advice_to_text(advice));
    ASSERT_EQ(back.size(), advice.size());
    for (std::size_t v = 0; v < advice.size(); ++v) {
      EXPECT_EQ(back[v], advice[v]) << v;
    }
  }
}

TEST(AdviceIo, CommentsAndBlanks) {
  const auto advice = advice_from_text(
      "# header comment\nadvice 3\n\n1 11  # node one\n");
  ASSERT_EQ(advice.size(), 3u);
  EXPECT_EQ(advice[1].to_string(), "11");
}

TEST(AdviceIo, Rejections) {
  EXPECT_THROW(advice_from_text("1 01\n"), std::invalid_argument);  // no header
  EXPECT_THROW(advice_from_text("advice 2\nadvice 2\n"),
               std::invalid_argument);
  EXPECT_THROW(advice_from_text("advice 2\n5 01\n"), std::invalid_argument);
  EXPECT_THROW(advice_from_text("advice 2\n0 01x\n"), std::invalid_argument);
  EXPECT_THROW(advice_from_text("advice 2\n0\n"), std::invalid_argument);
  EXPECT_THROW(advice_from_text("advice 2\n0 01\n0 1\n"),
               std::invalid_argument);
  EXPECT_THROW(advice_from_text("advice 2\n0 01 junk\n"),
               std::invalid_argument);
}

TEST(AdviceIo, ErrorsCarryLineNumbers) {
  try {
    advice_from_text("advice 2\n\nbogus 01\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(AdviceIo, EmptyAdviceVector) {
  const auto advice = advice_from_text("advice 0\n");
  EXPECT_TRUE(advice.empty());
}

}  // namespace
}  // namespace oraclesize
