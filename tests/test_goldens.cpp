// Golden regression pins.
//
// Every component in this library is deterministic given its seeds, so the
// exact numbers below are stable across platforms and builds. They exist to
// catch *silent semantic drift*: a refactor that changes an encoding, a
// tree tie-break, or the scheduler's ordering will move these values even
// when all behavioral invariants still hold. If a change legitimately
// alters them (e.g. an intentional codec improvement), update the constants
// and say why in the commit.
#include <gtest/gtest.h>

#include "core/broadcast_b.h"
#include "core/census.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "graph/complete_star.h"
#include "graph/light_tree.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/tree_wakeup_oracle.h"

namespace oraclesize {
namespace {

PortGraph golden_graph() {
  Rng rng(20260706);
  return make_random_connected(100, 0.08, rng);
}

TEST(Goldens, GraphGeneration) {
  const PortGraph g = golden_graph();
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 482u);
}

TEST(Goldens, WakeupOracleAndRun) {
  const PortGraph g = golden_graph();
  const TaskReport w =
      run_task(g, 0, TreeWakeupOracle(), WakeupTreeAlgorithm());
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.oracle_bits, 909u);
  EXPECT_EQ(w.run.metrics.messages_total, 99u);
}

TEST(Goldens, BroadcastOracleAndRun) {
  const PortGraph g = golden_graph();
  const TaskReport b =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.oracle_bits, 396u);
  EXPECT_EQ(b.run.metrics.messages_total, 197u);
  EXPECT_EQ(b.run.metrics.messages_hello, 98u);
}

TEST(Goldens, LightTreeContribution) {
  EXPECT_EQ(light_tree(golden_graph(), 0).contribution, 99u);
}

TEST(Goldens, CompleteGraphOracleSizes) {
  const PortGraph k = make_complete_star(64);
  EXPECT_EQ(oracle_size_bits(TreeWakeupOracle().advise(k, 0)), 386u);
  EXPECT_EQ(oracle_size_bits(LightBroadcastOracle().advise(k, 0)), 252u);
}

TEST(Goldens, ZeroFaultPlanIsInvisible) {
  // A fault plan with a seed but all probabilities zero must leave every
  // golden above untouched — the fault layer's "costs nothing, changes
  // nothing" contract at the report level.
  const PortGraph g = golden_graph();
  RunOptions opts;
  opts.fault.seed = 123456789;
  const TaskReport b =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.run.status, RunStatus::kCompleted);
  EXPECT_EQ(b.oracle_bits, 396u);
  EXPECT_EQ(b.run.metrics.messages_total, 197u);
  EXPECT_EQ(b.run.metrics.messages_hello, 98u);
  EXPECT_EQ(b.run.faults, FaultCounters{});
}

TEST(Goldens, FaultyBroadcastRun) {
  // One pinned faulty execution: moves only if the fault keying, the
  // scheduler interaction, or the engine's delivery order changes.
  const PortGraph g = golden_graph();
  RunOptions opts;
  opts.fault.seed = 2026;
  opts.fault.drop = 0.05;
  opts.fault.duplicate = 0.05;
  opts.fault.delay = 0.1;
  const TaskReport b =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
  EXPECT_EQ(b.run.status, RunStatus::kTaskFailed);
  EXPECT_EQ(b.run.metrics.messages_total, 194u);
  EXPECT_EQ(b.run.faults.dropped, 2u);
  EXPECT_EQ(b.run.faults.duplicated, 7u);
  EXPECT_EQ(b.run.faults.delayed, 21u);
  EXPECT_EQ(b.run.informed_count(), 97u);
}

TEST(Goldens, AsyncCensusBits) {
  const PortGraph g = golden_graph();
  RunOptions opts;
  opts.scheduler = SchedulerKind::kAsyncRandom;
  opts.seed = 777;
  const TaskReport c =
      run_task(g, 13, TreeWakeupOracle(), CensusAlgorithm(), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.run.outputs[13], 100u);
  EXPECT_EQ(c.run.metrics.bits_sent, 548u);
}

}  // namespace
}  // namespace oraclesize
