// Golden regression pins.
//
// Every component in this library is deterministic given its seeds, so the
// exact numbers below are stable across platforms and builds. They exist to
// catch *silent semantic drift*: a refactor that changes an encoding, a
// tree tie-break, or the scheduler's ordering will move these values even
// when all behavioral invariants still hold. If a change legitimately
// alters them (e.g. an intentional codec improvement), update the constants
// and say why in the commit.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/batch_runner.h"
#include "core/broadcast_b.h"
#include "core/census.h"
#include "core/flooding.h"
#include "core/gossip.h"
#include "core/hybrid_wakeup.h"
#include "core/replay.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "graph/complete_star.h"
#include "graph/light_tree.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/partial_tree_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "oracle/trivial_oracles.h"
#include "sim/trace_recorder.h"

namespace oraclesize {
namespace {

PortGraph golden_graph() {
  Rng rng(20260706);
  return make_random_connected(100, 0.08, rng);
}

TEST(Goldens, GraphGeneration) {
  const PortGraph g = golden_graph();
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 482u);
}

TEST(Goldens, WakeupOracleAndRun) {
  const PortGraph g = golden_graph();
  const TaskReport w =
      run_task(g, 0, TreeWakeupOracle(), WakeupTreeAlgorithm());
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.oracle_bits, 909u);
  EXPECT_EQ(w.run.metrics.messages_total, 99u);
}

TEST(Goldens, BroadcastOracleAndRun) {
  const PortGraph g = golden_graph();
  const TaskReport b =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.oracle_bits, 396u);
  EXPECT_EQ(b.run.metrics.messages_total, 197u);
  EXPECT_EQ(b.run.metrics.messages_hello, 98u);
}

TEST(Goldens, LightTreeContribution) {
  EXPECT_EQ(light_tree(golden_graph(), 0).contribution, 99u);
}

TEST(Goldens, CompleteGraphOracleSizes) {
  const PortGraph k = make_complete_star(64);
  EXPECT_EQ(oracle_size_bits(TreeWakeupOracle().advise(k, 0)), 386u);
  EXPECT_EQ(oracle_size_bits(LightBroadcastOracle().advise(k, 0)), 252u);
}

TEST(Goldens, ZeroFaultPlanIsInvisible) {
  // A fault plan with a seed but all probabilities zero must leave every
  // golden above untouched — the fault layer's "costs nothing, changes
  // nothing" contract at the report level.
  const PortGraph g = golden_graph();
  RunOptions opts;
  opts.fault.seed = 123456789;
  const TaskReport b =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.run.status, RunStatus::kCompleted);
  EXPECT_EQ(b.oracle_bits, 396u);
  EXPECT_EQ(b.run.metrics.messages_total, 197u);
  EXPECT_EQ(b.run.metrics.messages_hello, 98u);
  EXPECT_EQ(b.run.faults, FaultCounters{});
}

TEST(Goldens, ZeroAdversaryPlanIsInvisible) {
  // The Byzantine layer's "costs nothing, changes nothing" contract: an
  // adversary plan with a seed but no colluding set (zero rate, zero node
  // count) must leave every golden above untouched.
  const PortGraph g = golden_graph();
  RunOptions opts;
  opts.adversary.seed = 123456789;
  const TaskReport b =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.run.status, RunStatus::kCompleted);
  EXPECT_EQ(b.oracle_bits, 396u);
  EXPECT_EQ(b.run.metrics.messages_total, 197u);
  EXPECT_EQ(b.run.metrics.messages_hello, 98u);
  EXPECT_EQ(b.run.adversary, AdversaryCounters{});
}

TEST(Goldens, ByzantineBroadcastRun) {
  // One pinned Byzantine execution: moves only if the adversary keying
  // (colluding-set selection, forge/equivocation draws) or the engine's
  // delivery order changes. Random-bits forging eventually hands scheme B
  // a control message, which it treats as proof of misbehavior.
  const PortGraph g = golden_graph();
  RunOptions opts;
  opts.adversary.seed = 2026;
  opts.adversary.byz_rate = 0.1;
  const TaskReport b =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
  EXPECT_EQ(b.run.status, RunStatus::kByzantineDetected);
  EXPECT_EQ(b.run.adversary.lying_nodes, 10u);
  EXPECT_EQ(b.run.adversary.forged, 10u);
  EXPECT_EQ(b.run.adversary.equivocated, 1u);
  EXPECT_EQ(b.run.adversary.advice_lies, 2u);
  EXPECT_EQ(b.run.metrics.messages_total, 99u);
}

TEST(Goldens, FaultyBroadcastRun) {
  // One pinned faulty execution: moves only if the fault keying, the
  // scheduler interaction, or the engine's delivery order changes.
  const PortGraph g = golden_graph();
  RunOptions opts;
  opts.fault.seed = 2026;
  opts.fault.drop = 0.05;
  opts.fault.duplicate = 0.05;
  opts.fault.delay = 0.1;
  const TaskReport b =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
  EXPECT_EQ(b.run.status, RunStatus::kTaskFailed);
  EXPECT_EQ(b.run.metrics.messages_total, 194u);
  EXPECT_EQ(b.run.faults.dropped, 2u);
  EXPECT_EQ(b.run.faults.duplicated, 7u);
  EXPECT_EQ(b.run.faults.delayed, 21u);
  EXPECT_EQ(b.run.informed_count(), 97u);
}

TEST(Goldens, AsyncCensusBits) {
  // Counter-keyed async delivery (the canonical mode since the keying
  // split): delays are a pure function of (seed, seq, link), so this pin
  // moves only if the keying mix or the engine's ordering changes.
  const PortGraph g = golden_graph();
  RunOptions opts;
  opts.scheduler = SchedulerKind::kAsyncRandom;
  opts.seed = 777;
  const TaskReport c =
      run_task(g, 13, TreeWakeupOracle(), CensusAlgorithm(), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.run.outputs[13], 100u);
  EXPECT_EQ(c.run.metrics.bits_sent, 548u);
}

TEST(Goldens, LegacyStreamCensusBitsUnchanged) {
  // The legacy stream keying must keep producing the numbers it produced
  // before the counter mode existed — these are the values AsyncCensusBits
  // pinned historically, frozen here so old artifacts keep replaying.
  const PortGraph g = golden_graph();
  RunOptions opts;
  opts.scheduler = SchedulerKind::kAsyncRandom;
  opts.keying = SchedulerKeying::kStream;
  opts.seed = 777;
  const TaskReport c =
      run_task(g, 13, TreeWakeupOracle(), CensusAlgorithm(), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.run.outputs[13], 100u);
  EXPECT_EQ(c.run.metrics.bits_sent, 548u);
}

// ---- Golden traces ---------------------------------------------------------
//
// One digest per core algorithm on the golden graph: a 64-bit FNV-1a over
// the full event stream + outcome. These move only when the engine's
// observable behavior moves — scheduler ordering, fault keying, message
// sizing, or the informed-transition logic. If a change legitimately moves
// one, re-pin and justify in the commit (the `trace diff` CLI localizes
// exactly what changed).

RecordedTrace record_golden_trace(const Oracle& oracle,
                                  const Algorithm& algorithm,
                                  RunOptions opts = {}) {
  const PortGraph g = golden_graph();
  TraceRecorder recorder;
  opts.trace_sink = &recorder;
  run_task(g, 0, oracle, algorithm, opts);
  RecordedTrace t = recorder.take();
  t.header.oracle = oracle.name();
  return t;
}

TEST(GoldenTraces, DigestsPinAllSixAlgorithms) {
  EXPECT_EQ(record_golden_trace(TreeWakeupOracle(), WakeupTreeAlgorithm())
                .digest(),
            12482672791752212186ULL);
  EXPECT_EQ(record_golden_trace(LightBroadcastOracle(), BroadcastBAlgorithm())
                .digest(),
            4152892400039325060ULL);
  EXPECT_EQ(record_golden_trace(NullOracle(), FloodingAlgorithm()).digest(),
            10675381301312508844ULL);
  EXPECT_EQ(record_golden_trace(TreeWakeupOracle(), CensusAlgorithm())
                .digest(),
            13703897230507141977ULL);
  EXPECT_EQ(record_golden_trace(TreeWakeupOracle(), GossipTreeAlgorithm())
                .digest(),
            990213898690826506ULL);
  EXPECT_EQ(record_golden_trace(PartialTreeOracle(0.5, 7),
                                HybridWakeupAlgorithm())
                .digest(),
            10095278961887261379ULL);
}

TEST(GoldenTraces, EveryGoldenTraceReplaysBitIdentically) {
  // Save → load → re-execute: the full artifact round trip must reproduce
  // every stream. Covers the async scheduler and an armed fault plan too.
  std::vector<RecordedTrace> traces;
  traces.push_back(
      record_golden_trace(TreeWakeupOracle(), WakeupTreeAlgorithm()));
  RunOptions async;
  async.scheduler = SchedulerKind::kAsyncRandom;
  async.seed = 777;
  traces.push_back(
      record_golden_trace(TreeWakeupOracle(), CensusAlgorithm(), async));
  RunOptions faulty;
  faulty.fault.seed = 2026;
  faulty.fault.drop = 0.05;
  faulty.fault.duplicate = 0.05;
  faulty.fault.delay = 0.1;
  traces.push_back(record_golden_trace(LightBroadcastOracle(),
                                       BroadcastBAlgorithm(), faulty));
  // Legacy stream keying: the header carries the mode, so an old-style
  // artifact replays on the kept draw-order RNG path bit-exactly.
  RunOptions stream = async;
  stream.keying = SchedulerKeying::kStream;
  traces.push_back(
      record_golden_trace(TreeWakeupOracle(), CensusAlgorithm(), stream));
  for (const RecordedTrace& t : traces) {
    std::stringstream ss;
    save_trace(ss, t);
    const RecordedTrace loaded = load_trace(ss);
    const ReplayReport report = replay_trace(loaded);
    EXPECT_TRUE(report.match) << t.header.algorithm << ": "
                              << (report.mismatches.empty()
                                      ? ""
                                      : report.mismatches.front());
  }
}

TEST(GoldenTraces, BatchTracesIdenticalAcrossJobs) {
  // The batch determinism contract, at event-stream granularity: per-spec
  // recorders capture bit-identical traces whether the batch runs on one
  // worker or eight.
  const PortGraph g = golden_graph();
  const TreeWakeupOracle oracle;
  const CensusAlgorithm algorithm;
  auto digests_at = [&](std::size_t jobs) {
    constexpr std::size_t kTrials = 12;
    std::vector<TraceRecorder> recorders(kTrials);
    std::vector<TrialSpec> specs;
    for (std::size_t i = 0; i < kTrials; ++i) {
      RunOptions opts;
      opts.scheduler = SchedulerKind::kAsyncRandom;
      opts.seed = 1000 + i;
      opts.trace_sink = &recorders[i];
      specs.push_back({&g, static_cast<NodeId>(i * 7 % g.num_nodes()),
                       &oracle, &algorithm, opts});
    }
    BatchRunner(jobs).run(specs);
    std::vector<std::uint64_t> digests;
    for (TraceRecorder& r : recorders) digests.push_back(r.take().digest());
    return digests;
  };
  EXPECT_EQ(digests_at(1), digests_at(8));
}

TEST(GoldenTraces, ZeroFaultRateTraceMatchesDisabledPlan) {
  // A plan with a seed but all-zero probabilities must not only leave the
  // report untouched (ZeroFaultPlanIsInvisible above) — it must produce the
  // SAME event stream as no plan at all. Digests cover events + outcome
  // (not the header), so the two recordings hash identically.
  RunOptions zero;
  zero.fault.seed = 987654321;  // armed seed, zero probabilities
  const std::uint64_t with_zero_plan =
      record_golden_trace(LightBroadcastOracle(), BroadcastBAlgorithm(), zero)
          .digest();
  const std::uint64_t with_no_plan =
      record_golden_trace(LightBroadcastOracle(), BroadcastBAlgorithm())
          .digest();
  EXPECT_EQ(with_zero_plan, with_no_plan);
}

TEST(GoldenTraces, ZeroAdversaryTraceMatchesDisabledPlan) {
  // Same stream-level contract for the Byzantine layer: a seeded but empty
  // adversary plan (no rate, no node count) produces the SAME event stream
  // as no plan at all — no forge events, no digest movement.
  RunOptions zero;
  zero.adversary.seed = 987654321;  // junk seed, zero rates: disabled
  const std::uint64_t with_zero_plan =
      record_golden_trace(LightBroadcastOracle(), BroadcastBAlgorithm(), zero)
          .digest();
  const std::uint64_t with_no_plan =
      record_golden_trace(LightBroadcastOracle(), BroadcastBAlgorithm())
          .digest();
  EXPECT_EQ(with_zero_plan, with_no_plan);
}

}  // namespace
}  // namespace oraclesize
