#include "graph/complete_star.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/validate.h"

namespace oraclesize {
namespace {

TEST(CompleteStar, BasicShape) {
  const PortGraph g = make_complete_star(6);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(validate_ports(g), "");
  EXPECT_TRUE(is_connected(g));
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(CompleteStar, PortFormulaIsBijectivePerNode) {
  // This is exactly the property the paper's (i-j) mod (n-1) formula lacks
  // (DESIGN.md deviation #1): at every node the ports of the n-1 incident
  // edges must be a permutation of 0..n-2.
  for (std::size_t n : {2u, 3u, 4u, 5u, 9u, 16u, 33u}) {
    for (NodeId i = 0; i < n; ++i) {
      std::set<Port> ports;
      for (NodeId j = 0; j < n; ++j) {
        if (i == j) continue;
        const Port p = complete_star_port(n, i, j);
        EXPECT_LT(p, n - 1);
        EXPECT_TRUE(ports.insert(p).second)
            << "collision at n=" << n << " i=" << i << " j=" << j;
      }
      EXPECT_EQ(ports.size(), n - 1);
    }
  }
}

TEST(CompleteStar, NeighborIsInverseOfPort) {
  const std::size_t n = 11;
  for (NodeId i = 0; i < n; ++i) {
    for (Port p = 0; p + 1 < n; ++p) {
      const NodeId j = complete_star_neighbor(n, i, p);
      EXPECT_EQ(complete_star_port(n, i, j), p);
    }
  }
}

TEST(CompleteStar, GraphAgreesWithFormula) {
  const std::size_t n = 9;
  const PortGraph g = make_complete_star(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const Port p = complete_star_port(n, i, j);
      EXPECT_EQ(g.neighbor(i, p).node, j);
    }
  }
}

TEST(CompleteStar, PortLabelingIsStructureOblivious) {
  // The port at i towards j depends only on (j - i) mod n: the rotation
  // invariance that makes the labeling reveal nothing about S.
  const std::size_t n = 10;
  for (NodeId i = 0; i + 1 < n; ++i) {
    for (NodeId j = 0; j + 1 < n; ++j) {
      if (i == j) continue;
      EXPECT_EQ(complete_star_port(n, i, j),
                complete_star_port(n, i + 1, j + 1));
    }
  }
}

TEST(CompleteStar, RejectsBadArguments) {
  EXPECT_THROW(make_complete_star(1), std::invalid_argument);
  EXPECT_THROW(complete_star_port(5, 2, 2), std::invalid_argument);
  EXPECT_THROW(complete_star_port(5, 2, 9), std::invalid_argument);
  EXPECT_THROW(complete_star_neighbor(5, 0, 4), std::invalid_argument);
}

TEST(CompleteStar, SmallestCase) {
  const PortGraph g = make_complete_star(2);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.neighbor(0, 0), (Endpoint{1, 0}));
}

}  // namespace
}  // namespace oraclesize
