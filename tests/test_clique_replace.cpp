#include "graph/clique_replace.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/complete_star.h"
#include "graph/subdivision.h"
#include "graph/validate.h"

namespace oraclesize {
namespace {

TEST(CliqueReplace, PaperShapeInvariants) {
  Rng rng(1);
  const std::size_t n = 16, k = 4;  // 4k = 16 divides n
  const CliqueReplacedGraph g = make_random_gnsc(n, k, rng);
  EXPECT_EQ(validate_ports(g.graph), "");
  EXPECT_TRUE(is_connected(g.graph));
  // "every graph in G_{n,k} has 2n nodes"
  EXPECT_EQ(g.graph.num_nodes(), 2 * n);
  // "all nodes with labels larger than n have degree k-1"
  for (NodeId v = static_cast<NodeId>(n); v < 2 * n; ++v) {
    EXPECT_EQ(g.graph.degree(v), k - 1) << "clique node " << v;
  }
  // Base nodes keep degree n-1.
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(g.graph.degree(v), n - 1);
  }
}

TEST(CliqueReplace, CliqueNodeLabels) {
  Rng rng(2);
  const std::size_t n = 8, k = 2;
  const CliqueReplacedGraph g = make_random_gnsc(n, k, rng);
  // Clique i (1-based) nodes are labeled n+(i-1)k+1 .. n+ik.
  for (std::size_t i = 0; i < g.num_cliques(); ++i) {
    for (int a = 1; a <= static_cast<int>(k); ++a) {
      const NodeId v = g.clique_node(i, a);
      EXPECT_EQ(g.graph.label(v), n + i * k + static_cast<std::size_t>(a));
    }
  }
}

TEST(CliqueReplace, CliquePortBijection) {
  for (std::size_t k : {2u, 3u, 5u, 8u}) {
    for (int a = 1; a <= static_cast<int>(k); ++a) {
      std::set<Port> ports;
      for (int b = 1; b <= static_cast<int>(k); ++b) {
        if (a == b) continue;
        const Port p = clique_port(k, a, b);
        EXPECT_LT(p, k - 1);
        EXPECT_TRUE(ports.insert(p).second);
      }
    }
  }
}

TEST(CliqueReplace, AttachmentInheritsPorts) {
  Rng rng(3);
  const std::size_t n = 16, k = 4;
  const CliqueReplacedGraph g = make_random_gnsc(n, k, rng);
  for (std::size_t i = 0; i < g.num_cliques(); ++i) {
    const Edge& e = g.s[i];
    const auto [ai, bi] = g.c[i];
    const NodeId na = g.clique_node(i, ai);
    const NodeId nb = g.clique_node(i, bi);
    // u_i's old port for e_i now reaches a_i, on f_i's port at a_i.
    EXPECT_EQ(g.graph.neighbor(e.u, e.port_u),
              (Endpoint{na, clique_port(k, ai, bi)}));
    EXPECT_EQ(g.graph.neighbor(e.v, e.port_v),
              (Endpoint{nb, clique_port(k, bi, ai)}));
  }
}

TEST(CliqueReplace, RemovedEdgeIsAbsentInsideClique) {
  Rng rng(4);
  const std::size_t n = 16, k = 4;
  const CliqueReplacedGraph g = make_random_gnsc(n, k, rng);
  for (std::size_t i = 0; i < g.num_cliques(); ++i) {
    const auto [ai, bi] = g.c[i];
    EXPECT_EQ(g.graph.port_towards(g.clique_node(i, ai),
                                   g.clique_node(i, bi)),
              kNoPort);
    // All other intra-clique pairs are adjacent.
    for (int a = 1; a <= static_cast<int>(k); ++a) {
      for (int b = a + 1; b <= static_cast<int>(k); ++b) {
        if (a == ai && b == bi) continue;
        EXPECT_NE(g.graph.port_towards(g.clique_node(i, a),
                                       g.clique_node(i, b)),
                  kNoPort);
      }
    }
  }
}

TEST(CliqueReplace, SurvivingCompleteEdgesUntouched) {
  Rng rng(5);
  const std::size_t n = 16, k = 4;
  const CliqueReplacedGraph g = make_random_gnsc(n, k, rng);
  std::set<std::pair<NodeId, NodeId>> replaced;
  for (const Edge& e : g.s) replaced.insert({e.u, e.v});
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (replaced.count({i, j})) continue;
      EXPECT_EQ(g.graph.neighbor(i, complete_star_port(n, i, j)).node, j);
    }
  }
}

TEST(CliqueReplace, EdgeCount) {
  Rng rng(6);
  const std::size_t n = 24, k = 3;
  const CliqueReplacedGraph g = make_random_gnsc(n, k, rng);
  const std::size_t q = n / k;
  // C(n,2) - q (replaced) + q * (C(k,2) - 1) (clique minus f_i) + 2q
  // (attachments).
  const std::size_t expected =
      n * (n - 1) / 2 - q + q * (k * (k - 1) / 2 - 1) + 2 * q;
  EXPECT_EQ(g.graph.num_edges(), expected);
}

TEST(CliqueReplace, MinimalCliqueSizeTwo) {
  // k = 2: H_i is a single edge that gets removed; its two endpoints hang
  // off u_i and v_i as pendant nodes of degree k-1 = 1.
  Rng rng(7);
  const std::size_t n = 8, k = 2;
  const CliqueReplacedGraph g = make_random_gnsc(n, k, rng);
  EXPECT_EQ(validate_ports(g.graph), "");
  EXPECT_TRUE(is_connected(g.graph));
  for (NodeId v = static_cast<NodeId>(n); v < 2 * n; ++v) {
    EXPECT_EQ(g.graph.degree(v), 1u);
  }
}

TEST(CliqueReplace, RejectsBadDivisibility) {
  Rng rng(8);
  EXPECT_THROW(make_random_gnsc(10, 4, rng), std::invalid_argument);
  EXPECT_THROW(make_random_gnsc(16, 1, rng), std::invalid_argument);
}

TEST(CliqueReplace, RejectsMalformedExplicitInputs) {
  const std::size_t n = 8, k = 2;
  Rng rng(9);
  auto s = random_complete_star_edges(n, n / k, rng);
  std::vector<std::pair<int, int>> c(n / k, {1, 2});
  // Wrong |S|.
  EXPECT_THROW(make_gnsc(n, k, std::vector<Edge>{s[0]}, c),
               std::invalid_argument);
  // Bad (a,b) with a >= b.
  std::vector<std::pair<int, int>> bad_c(n / k, {2, 2});
  EXPECT_THROW(make_gnsc(n, k, s, bad_c), std::invalid_argument);
  // Duplicate S edge.
  auto dup = s;
  dup[1] = dup[0];
  EXPECT_THROW(make_gnsc(n, k, dup, c), std::invalid_argument);
}

TEST(CliqueReplace, DeterministicForExplicitInputs) {
  const std::size_t n = 8, k = 2;
  Rng rng(10);
  const auto s = random_complete_star_edges(n, n / k, rng);
  const std::vector<std::pair<int, int>> c(n / k, {1, 2});
  const CliqueReplacedGraph a = make_gnsc(n, k, s, c);
  const CliqueReplacedGraph b = make_gnsc(n, k, s, c);
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
}

}  // namespace
}  // namespace oraclesize
