#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/builders.h"
#include "graph/complete_star.h"
#include "graph/validate.h"

namespace oraclesize {
namespace {

void expect_same_graph(const PortGraph& a, const PortGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.label(v), b.label(v));
    ASSERT_EQ(a.degree(v), b.degree(v));
    for (Port p = 0; p < a.degree(v); ++p) {
      EXPECT_EQ(a.neighbor(v, p), b.neighbor(v, p));
    }
  }
}

TEST(GraphIo, RoundTripSmall) {
  const PortGraph g = make_cycle(5);
  expect_same_graph(g, from_text(to_text(g)));
}

TEST(GraphIo, RoundTripEveryFamily) {
  Rng rng(61);
  expect_same_graph(make_path(1), from_text(to_text(make_path(1))));
  expect_same_graph(make_grid(4, 7), from_text(to_text(make_grid(4, 7))));
  expect_same_graph(make_complete_star(9),
                    from_text(to_text(make_complete_star(9))));
  const PortGraph shuffled =
      shuffle_ports(make_random_connected(30, 0.2, rng), rng);
  expect_same_graph(shuffled, from_text(to_text(shuffled)));
}

TEST(GraphIo, RoundTripCustomLabels) {
  PortGraph g = make_path(3);
  g.set_label(0, 100);
  g.set_label(2, 7);
  const PortGraph h = from_text(to_text(g));
  EXPECT_EQ(h.label(0), 100u);
  EXPECT_EQ(h.label(1), 2u);
  EXPECT_EQ(h.label(2), 7u);
}

TEST(GraphIo, ParsesCommentsAndBlankLines) {
  const std::string text =
      "# a triangle\n"
      "portgraph 3\n"
      "\n"
      "edge 0 0 1 0   # first edge\n"
      "edge 1 1 2 0\n"
      "edge 2 1 0 1\n";
  const PortGraph g = from_text(text);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(validate_ports(g), "");
}

TEST(GraphIo, RejectsMissingHeader) {
  EXPECT_THROW(from_text("edge 0 0 1 0\n"), std::invalid_argument);
  EXPECT_THROW(from_text("# nothing\n"), std::invalid_argument);
}

TEST(GraphIo, RejectsDuplicateHeader) {
  EXPECT_THROW(from_text("portgraph 2\nportgraph 2\n"),
               std::invalid_argument);
}

TEST(GraphIo, RejectsUnknownKeyword) {
  EXPECT_THROW(from_text("portgraph 2\nvertex 0\n"), std::invalid_argument);
}

TEST(GraphIo, RejectsMalformedEdge) {
  EXPECT_THROW(from_text("portgraph 2\nedge 0 0 1\n"), std::invalid_argument);
  EXPECT_THROW(from_text("portgraph 2\nedge 0 0 9 0\n"),
               std::invalid_argument);
  // Occupied port reported with the offending line.
  EXPECT_THROW(from_text("portgraph 3\nedge 0 0 1 0\nedge 0 0 2 0\n"),
               std::invalid_argument);
}

TEST(GraphIo, RejectsTrailingTokens) {
  EXPECT_THROW(from_text("portgraph 2 extra\n"), std::invalid_argument);
  EXPECT_THROW(from_text("portgraph 2\nedge 0 0 1 0 junk\n"),
               std::invalid_argument);
}

TEST(GraphIo, RejectsOutOfRangeLabelNode) {
  EXPECT_THROW(from_text("portgraph 2\nlabel 5 77\n"), std::invalid_argument);
}

TEST(GraphIo, ErrorsCarryLineNumbers) {
  try {
    from_text("portgraph 2\n\nedge 0 0 1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(GraphIo, DefaultLabelsAreOmittedFromOutput) {
  const std::string text = to_text(make_path(4));
  EXPECT_EQ(text.find("label"), std::string::npos);
}

}  // namespace
}  // namespace oraclesize
