// The Byzantine adversary layer's contract (sim/adversary_plan.h).
//
// Three layers:
//  * AdversaryPlan.*    — the plan in isolation: colluding-set selection
//    (exact counts, source exclusion, seed determinism), the bounded
//    replay buffer, per-link equivocation divergence, and the persistence
//    of inconsistent-advice lies.
//  * ByzantineEngine.*  — the plan threaded through ExecutionContext:
//    detected-vs-silent status split, zero-plan invisibility, advice-
//    certified immunity of the tree-cast, determinism at any --jobs /
//    --shards (Byzantine families route to the scalar engine), and the
//    online adversarial scheduler.
//  * ByzantineTrace.*   — record -> save -> load -> replay -> diff round
//    trip of a Byzantine run, forge events and counters included.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/batch_runner.h"
#include "core/broadcast_b.h"
#include "core/flooding.h"
#include "core/replay.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "oracle/trivial_oracles.h"
#include "sim/adversary_plan.h"
#include "sim/execution_context.h"
#include "sim/trace_recorder.h"
#include "util/rng.h"

namespace oraclesize {
namespace {

PortGraph byz_graph() {
  Rng rng(424242);
  return make_random_connected(64, 0.1, rng);
}

PortGraph byz_tree() {
  Rng rng(515151);
  return make_random_tree(64, rng);
}

std::vector<bool> membership(const AdversaryPlan& plan, std::size_t n) {
  std::vector<bool> out(n);
  for (NodeId v = 0; v < n; ++v) out[v] = plan.lying(v);
  return out;
}

TEST(AdversaryPlan, ExplicitColludingSetIsExactAndExcludesTheSource) {
  AdversaryPlanParams params;
  params.seed = 7;
  params.byz_nodes = 10;
  AdversaryPlan plan;
  plan.arm(params, 64, /*source=*/3);
  EXPECT_EQ(plan.num_lying(), 10u);
  EXPECT_FALSE(plan.lying(3));
  std::size_t count = 0;
  for (NodeId v = 0; v < 64; ++v) count += plan.lying(v) ? 1 : 0;
  EXPECT_EQ(count, 10u);

  // Asking for more liars than eligible nodes clamps: the source still
  // never lies unless byz_source opts it in.
  params.byz_nodes = 64;
  plan.arm(params, 64, 3);
  EXPECT_EQ(plan.num_lying(), 63u);
  EXPECT_FALSE(plan.lying(3));
  params.byz_source = true;
  plan.arm(params, 64, 3);
  EXPECT_EQ(plan.num_lying(), 64u);
  EXPECT_TRUE(plan.lying(3));
}

TEST(AdversaryPlan, ColludingSetIsSeedKeyed) {
  AdversaryPlanParams params;
  params.seed = 7;
  params.byz_nodes = 10;
  AdversaryPlan a, b;
  a.arm(params, 64, 0);
  b.arm(params, 64, 0);
  EXPECT_EQ(membership(a, 64), membership(b, 64));
  params.seed = 8;
  b.arm(params, 64, 0);
  EXPECT_NE(membership(a, 64), membership(b, 64));
}

TEST(AdversaryPlan, RateMembershipIsPerNodeKeyedAndDeterministic) {
  AdversaryPlanParams params;
  params.seed = 11;
  params.byz_rate = 0.5;
  AdversaryPlan a, b;
  a.arm(params, 256, 0);
  b.arm(params, 256, 0);
  EXPECT_EQ(membership(a, 256), membership(b, 256));
  EXPECT_FALSE(a.lying(0));  // source
  EXPECT_GT(a.num_lying(), 64u);  // ~128 expected; far from degenerate
  EXPECT_LT(a.num_lying(), 192u);
}

TEST(AdversaryPlan, ReplayBufferIsBoundedAndServesStaleTraffic) {
  AdversaryPlanParams params;
  params.seed = 5;
  params.byz_nodes = 8;
  params.strategy = ByzantineStrategy::kReplay;
  params.replay_window = 4;
  params.advice_lie = 0.0;
  AdversaryPlan plan;
  plan.arm(params, 16, 0);
  for (std::uint64_t i = 0; i < 10; ++i) {
    plan.observe(Message::control(100 + i));
  }
  EXPECT_EQ(plan.replay_buffer_size(), 4u);

  NodeId liar = 0;
  for (NodeId v = 0; v < 16; ++v) {
    if (plan.lying(v)) liar = v;
  }
  Message msg = Message::source();
  const AdversaryPlan::ForgeOutcome fo = plan.forge(liar, 0, 0, 4, msg);
  EXPECT_TRUE(fo.forged);
  EXPECT_TRUE(fo.replayed);
  // The ring keeps the LAST window observations (payloads 106..109).
  EXPECT_GE(msg.payload, 106u);
  EXPECT_LE(msg.payload, 109u);
}

TEST(AdversaryPlan, EquivocationDivergesPerLinkAndReproduces) {
  AdversaryPlanParams params;
  params.seed = 13;
  params.byz_nodes = 1;
  params.forge = 1.0;
  params.equivocate = 1.0;
  params.advice_lie = 0.0;
  AdversaryPlan plan;
  plan.arm(params, 8, 0);
  NodeId liar = 0;
  for (NodeId v = 0; v < 8; ++v) {
    if (plan.lying(v)) liar = v;
  }

  // Same logical send, two links: different content per neighbor.
  Message a = Message::source();
  Message b = Message::source();
  const AdversaryPlan::ForgeOutcome fa = plan.forge(liar, 0, 100, 4, a);
  const AdversaryPlan::ForgeOutcome fb = plan.forge(liar, 0, 101, 4, b);
  EXPECT_TRUE(fa.forged);
  EXPECT_TRUE(fa.equivocated);
  EXPECT_TRUE(fb.equivocated);
  EXPECT_NE(a, b);

  // Pure counter keying: the same coordinates reproduce the same lie.
  Message c = Message::source();
  plan.forge(liar, 0, 100, 4, c);
  EXPECT_EQ(a, c);
}

TEST(AdversaryPlan, AdviceLiesArePersistentPerLink) {
  AdversaryPlanParams params;
  params.seed = 21;
  params.byz_nodes = 1;
  params.forge = 0.0;  // isolate the advice-lie mechanism
  params.advice_lie = 1.0;
  AdversaryPlan plan;
  plan.arm(params, 8, 0);
  NodeId liar = 0;
  for (NodeId v = 0; v < 8; ++v) {
    if (plan.lying(v)) liar = v;
  }

  Message first = Message::control(42);
  Message later = Message::control(42);
  const AdversaryPlan::ForgeOutcome f1 = plan.forge(liar, 0, 7, 4, first);
  const AdversaryPlan::ForgeOutcome f2 = plan.forge(liar, 99, 7, 4, later);
  EXPECT_TRUE(f1.advice_lie);
  EXPECT_FALSE(f1.forged);
  EXPECT_NE(first.payload, 42u);     // the lie applied...
  EXPECT_EQ(first, later);           // ...identically, any group, same link
  EXPECT_TRUE(f2.advice_lie);

  Message other = Message::control(42);
  plan.forge(liar, 0, 8, 4, other);  // a different neighbor
  EXPECT_NE(other.payload, first.payload);
}

TEST(ByzantineEngine, ClumsyLiesAreDetectedTargetedLiesStaySilent) {
  // Broadcast scheme B owns a checkable invariant (no honest node sends
  // control messages), so random-bits forging is caught red-handed...
  const PortGraph g = byz_graph();
  RunOptions opts;
  opts.adversary.seed = 2026;
  opts.adversary.byz_rate = 0.2;
  opts.adversary.strategy = ByzantineStrategy::kRandomBits;
  const TaskReport detected =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
  EXPECT_FALSE(detected.ok());
  EXPECT_EQ(detected.run.status, RunStatus::kByzantineDetected);
  EXPECT_FALSE(detected.run.violation.empty());
  EXPECT_GT(detected.run.adversary.lying_nodes, 0u);
  EXPECT_GT(detected.run.adversary.forged, 0u);

  // ...while structured lies against flooding on a tree keep every message
  // well-formed: the run ends as a quiet wrong answer, not a detection.
  const PortGraph t = byz_tree();
  RunOptions silent_opts;
  silent_opts.adversary.seed = 5;
  silent_opts.adversary.byz_rate = 0.3;
  silent_opts.adversary.strategy = ByzantineStrategy::kStructuredLie;
  const TaskReport silent =
      run_task(t, 0, NullOracle(), FloodingAlgorithm(), silent_opts);
  EXPECT_FALSE(silent.ok());
  EXPECT_EQ(silent.run.status, RunStatus::kTaskFailed);
  EXPECT_TRUE(silent.run.violation.empty());
  EXPECT_GT(silent.run.adversary.structured_lies, 0u);
}

TEST(ByzantineEngine, ZeroPlanIsInvisible) {
  const PortGraph g = byz_graph();
  RunOptions plain;
  RunOptions zeroed;
  zeroed.adversary.seed = 123456789;  // junk seed, zero rates: disabled
  const TaskReport a = run_task(g, 0, NullOracle(), FloodingAlgorithm(), plain);
  const TaskReport b =
      run_task(g, 0, NullOracle(), FloodingAlgorithm(), zeroed);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.run, b.run);
}

TEST(ByzantineEngine, AdviceCertifiedTreeCastIsImmuneToContentForging) {
  // The buyback mechanism E16 measures: the full-advice tree-cast relays on
  // delivery, not on content, so a heavily Byzantine network still wakes
  // everyone — while zero-advice flooding on the same tree does not (the
  // silent case above).
  const PortGraph t = byz_tree();
  RunOptions opts;
  opts.adversary.seed = 5;
  opts.adversary.byz_rate = 0.3;
  opts.adversary.strategy = ByzantineStrategy::kStructuredLie;
  const TaskReport w =
      run_task(t, 0, TreeWakeupOracle(), WakeupTreeAlgorithm(), opts);
  EXPECT_TRUE(w.ok()) << to_string(w.run.status);
  EXPECT_GT(w.run.adversary.forged, 0u);  // lies happened; they were inert
}

TEST(ByzantineEngine, DeterministicAcrossJobsAndShards) {
  const PortGraph g = byz_graph();
  const LightBroadcastOracle broadcast_oracle;
  const BroadcastBAlgorithm broadcast_algorithm;
  const NullOracle null_oracle;
  const FloodingAlgorithm flooding_algorithm;
  std::vector<TrialSpec> specs;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    RunOptions opts;
    opts.adversary.seed = seed;
    opts.adversary.byz_rate = 0.25;
    specs.emplace_back(&g, 0, &broadcast_oracle, &broadcast_algorithm, opts);
    opts.adversary.strategy = ByzantineStrategy::kStructuredLie;
    specs.emplace_back(&g, 0, &null_oracle, &flooding_algorithm, opts);
  }
  const BatchRunner serial(1);
  const BatchRunner parallel(4);
  const BatchRunner sharded(4, true, RetryPolicy{0}, ShardPolicy{4, 2});
  const std::vector<TaskReport> a = serial.run(specs);
  const std::vector<TaskReport> b = parallel.run(specs);
  const std::vector<TaskReport> c = sharded.run(specs);
  ASSERT_EQ(a.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(a[i].run, b[i].run) << i;
    EXPECT_EQ(a[i].run, c[i].run) << i;
    // Byzantine runs fall back to the scalar engine rather than diverge.
    EXPECT_EQ(c[i].shards, 1u) << i;
  }
}

TEST(ByzantineEngine, AdversarialSchedulerIsDeterministicAndOnlyDelays) {
  const PortGraph g = byz_graph();
  RunOptions opts;
  opts.scheduler = SchedulerKind::kAsyncAdversarial;
  const TaskReport a = run_task(g, 0, NullOracle(), FloodingAlgorithm(), opts);
  const TaskReport b = run_task(g, 0, NullOracle(), FloodingAlgorithm(), opts);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.run, b.run);

  // The online Lemma 2.1 game answers first-use probes "special" while
  // candidates remain, so the schedule completes later than unbiased
  // random asynchrony — but it can only reorder and delay, never break
  // the task.
  RunOptions rnd;
  rnd.scheduler = SchedulerKind::kAsyncRandom;
  const TaskReport f = run_task(g, 0, NullOracle(), FloodingAlgorithm(), rnd);
  ASSERT_TRUE(f.ok());
  EXPECT_GT(a.run.metrics.completion_key, f.run.metrics.completion_key);

  // Byzantine content under the adversarial schedule stays reproducible.
  RunOptions both = opts;
  both.adversary.seed = 3;
  both.adversary.byz_rate = 0.2;
  const TaskReport c =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm(), both);
  const TaskReport d =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm(), both);
  EXPECT_EQ(c.run, d.run);
  EXPECT_GT(c.run.adversary.forged, 0u);
}

TEST(ByzantineTrace, RecordSaveLoadReplayDiffRoundTrip) {
  const PortGraph g = byz_graph();
  RunOptions opts;
  opts.adversary.seed = 2026;
  opts.adversary.byz_rate = 0.2;
  TraceRecorder recorder;
  opts.trace_sink = &recorder;
  const TaskReport r =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm(), opts);
  EXPECT_EQ(r.run.status, RunStatus::kByzantineDetected);
  RecordedTrace t = recorder.take();
  t.header.oracle = LightBroadcastOracle().name();
  EXPECT_EQ(t.header.adversary, opts.adversary);
  EXPECT_GT(t.adversary.forged, 0u);

  // The artifact round trip preserves the adversary header and counters.
  std::stringstream ss;
  save_trace(ss, t);
  const RecordedTrace loaded = load_trace(ss);
  EXPECT_TRUE(diff_traces(t, loaded).equal);
  EXPECT_EQ(loaded.header.adversary, t.header.adversary);
  EXPECT_EQ(loaded.adversary, t.adversary);
  EXPECT_EQ(loaded.digest(), t.digest());

  // Re-executing the loaded trace reproduces every stream, forge events
  // and Byzantine outcome included.
  const ReplayReport replayed = replay_trace(loaded);
  EXPECT_TRUE(replayed.match)
      << (replayed.mismatches.empty() ? "" : replayed.mismatches.front());
}

TEST(ByzantineTrace, ForgeEventsAppearOnlyWhenTheAdversaryActs) {
  const PortGraph g = byz_graph();
  auto count_forge_events = [&](const RunOptions& base) {
    RunOptions opts = base;
    TraceRecorder recorder;
    opts.trace_sink = &recorder;
    run_task(g, 0, NullOracle(), FloodingAlgorithm(), opts);
    const RecordedTrace t = recorder.take();
    std::size_t forged = 0;
    for (const TraceEvent& e : t.events) {
      if (e.kind == TraceEventKind::kForge ||
          e.kind == TraceEventKind::kEquivocate ||
          e.kind == TraceEventKind::kReplayAttack ||
          e.kind == TraceEventKind::kAdviceLie) {
        ++forged;
      }
    }
    return forged;
  };
  RunOptions clean;
  EXPECT_EQ(count_forge_events(clean), 0u);
  RunOptions byz;
  byz.adversary.seed = 9;
  byz.adversary.byz_rate = 0.3;
  EXPECT_GT(count_forge_events(byz), 0u);
}

}  // namespace
}  // namespace oraclesize
