#include "bitio/codecs.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/mathx.h"

namespace oraclesize {
namespace {

// ---- doubled-bit code ------------------------------------------------------

TEST(DoubledCode, PaperExampleShape) {
  // Encoding of 5 (binary 101): 11 00 11 then terminator 10.
  BitString s;
  append_doubled(s, 5);
  EXPECT_EQ(s.to_string(), "11001110");
}

TEST(DoubledCode, ZeroIsRepresentable) {
  BitString s;
  append_doubled(s, 0);
  EXPECT_EQ(s.to_string(), "0010");
  BitReader r(s);
  EXPECT_EQ(read_doubled(r), 0u);
}

TEST(DoubledCode, LengthFormula) {
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 7ull, 8ull, 1000ull,
                          (1ull << 32) + 17}) {
    BitString s;
    append_doubled(s, v);
    EXPECT_EQ(static_cast<int>(s.size()), doubled_length(v)) << v;
    EXPECT_EQ(doubled_length(v), 2 * num_bits(v) + 2) << v;
  }
}

TEST(DoubledCode, RoundTripSweep) {
  for (std::uint64_t v = 0; v < 2000; ++v) {
    BitString s;
    append_doubled(s, v);
    BitReader r(s);
    EXPECT_EQ(read_doubled(r), v);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(DoubledCode, SelfDelimitingInConcatenation) {
  BitString s;
  const std::vector<std::uint64_t> values{0, 1, 5, 1023, 42, 0, 7};
  for (std::uint64_t v : values) append_doubled(s, v);
  BitReader r(s);
  for (std::uint64_t v : values) EXPECT_EQ(read_doubled(r), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(DoubledCode, RejectsMalformedInput) {
  // "01" as first pair is invalid.
  const BitString bad = BitString::from_string("0110");
  BitReader r(bad);
  EXPECT_THROW(read_doubled(r), std::invalid_argument);
  // Immediate terminator with no payload.
  const BitString empty_payload = BitString::from_string("10");
  BitReader r2(empty_payload);
  EXPECT_THROW(read_doubled(r2), std::invalid_argument);
  // Truncated mid-pair.
  const BitString truncated = BitString::from_string("110");
  BitReader r3(truncated);
  EXPECT_THROW(read_doubled(r3), std::out_of_range);
}

// ---- Elias gamma / delta ---------------------------------------------------

TEST(EliasGamma, KnownCodewords) {
  BitString s1;
  append_elias_gamma(s1, 1);
  EXPECT_EQ(s1.to_string(), "1");
  BitString s2;
  append_elias_gamma(s2, 2);
  EXPECT_EQ(s2.to_string(), "010");
  BitString s5;
  append_elias_gamma(s5, 5);
  EXPECT_EQ(s5.to_string(), "00101");
}

TEST(EliasGamma, RoundTripSweep) {
  for (std::uint64_t v = 1; v < 3000; ++v) {
    BitString s;
    append_elias_gamma(s, v);
    EXPECT_EQ(static_cast<int>(s.size()), elias_gamma_length(v));
    BitReader r(s);
    EXPECT_EQ(read_elias_gamma(r), v);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(EliasGamma, RejectsZero) {
  BitString s;
  EXPECT_THROW(append_elias_gamma(s, 0), std::invalid_argument);
}

TEST(EliasDelta, RoundTripSweep) {
  for (std::uint64_t v = 1; v < 3000; ++v) {
    BitString s;
    append_elias_delta(s, v);
    EXPECT_EQ(static_cast<int>(s.size()), elias_delta_length(v));
    BitReader r(s);
    EXPECT_EQ(read_elias_delta(r), v);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(EliasDelta, ShorterThanGammaForLargeValues) {
  EXPECT_LT(elias_delta_length(1u << 20), elias_gamma_length(1u << 20));
}

TEST(EliasDelta, LargeValueRoundTrip) {
  for (std::uint64_t v : {1ull << 31, (1ull << 52) + 12345, ~0ull >> 1}) {
    BitString s;
    append_elias_delta(s, v);
    BitReader r(s);
    EXPECT_EQ(read_elias_delta(r), v);
  }
}

// ---- port-list codec (Theorem 2.1 payload) ---------------------------------

TEST(PortList, EmptyListIsEmptyString) {
  // Leaves of the spanning tree receive the empty string, verbatim from the
  // paper.
  const BitString s = encode_port_list({}, 10);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(decode_port_list(s).empty());
}

TEST(PortList, RoundTrip) {
  const std::vector<std::uint64_t> ports{0, 5, 1023, 7};
  const BitString s = encode_port_list(ports, 10);
  EXPECT_EQ(decode_port_list(s), ports);
}

TEST(PortList, LengthMatchesTheorem21) {
  // c(v) * ceil(log2 n) + O(log log n): header is 2*#2(width)+2 bits.
  const int width = 13;  // ceil(log2 n) for n = 8192
  const std::vector<std::uint64_t> ports{1, 2, 3, 4, 5};
  const BitString s = encode_port_list(ports, width);
  EXPECT_EQ(s.size(), ports.size() * width +
                          static_cast<std::size_t>(doubled_length(width)));
}

TEST(PortList, SingleChild) {
  const BitString s = encode_port_list({3}, 2);
  EXPECT_EQ(decode_port_list(s), std::vector<std::uint64_t>{3});
}

TEST(PortList, RejectsGarbageTail) {
  BitString s = encode_port_list({1, 2}, 4);
  s.append_bit(true);  // leftover bit no longer divisible by the width
  EXPECT_THROW(decode_port_list(s), std::invalid_argument);
}

TEST(PortList, RejectsBadWidth) {
  EXPECT_THROW(encode_port_list({1}, 0), std::invalid_argument);
}

// ---- weight-list codec (Theorem 3.1 payload) -------------------------------

TEST(WeightList, EmptyRoundTrip) {
  const BitString s = encode_weight_list({});
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(decode_weight_list(s).empty());
}

TEST(WeightList, MultisetRoundTripWithDuplicates) {
  const std::vector<std::uint64_t> weights{0, 0, 1, 5, 5, 128};
  EXPECT_EQ(decode_weight_list(encode_weight_list(weights)), weights);
}

TEST(WeightList, SizeIsLinearInContribution) {
  // Each weight costs 2*#2(w) + 2 bits (DESIGN.md deviation #3).
  const std::vector<std::uint64_t> weights{0, 3, 9, 1000};
  std::size_t expected = 0;
  for (std::uint64_t w : weights) {
    expected += static_cast<std::size_t>(2 * num_bits(w) + 2);
  }
  EXPECT_EQ(encode_weight_list(weights).size(), expected);
}

TEST(WeightList, OrderPreserved) {
  const std::vector<std::uint64_t> weights{9, 1, 4};
  EXPECT_EQ(decode_weight_list(encode_weight_list(weights)), weights);
}

}  // namespace
}  // namespace oraclesize
