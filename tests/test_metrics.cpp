// Metamorphic metric invariants.
//
// The metrics layer reports the same execution three ways — per-run Metrics,
// per-event trace streams, and batch-wide MetricsSnapshot aggregates — so
// internal consistency between the three is a free oracle: no golden values
// needed, any disagreement is a bug. Pinned here:
//
//  * per-node delivered-event counts (from a full trace) sum to
//    Metrics::deliveries, and on reliable runs deliveries == messages_total,
//    under EVERY scheduler;
//  * wall_ns == advise_ns + run_ns in every TaskReport;
//  * a BatchStats::metrics snapshot is bit-identical at jobs=1 and jobs=8,
//    and its counters agree with the summed per-report Metrics.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "core/batch_runner.h"
#include "core/broadcast_b.h"
#include "core/census.h"
#include "core/flooding.h"
#include "core/gossip.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "oracle/trivial_oracles.h"
#include "sim/metrics_registry.h"
#include "sim/trace_recorder.h"

namespace oraclesize {
namespace {

PortGraph metrics_graph() {
  Rng rng(424242);
  return make_random_connected(64, 0.12, rng);
}

TEST(MetricsInvariants, PerNodeDeliveredCountsSumToTotalsEveryScheduler) {
  const PortGraph g = metrics_graph();
  const LightBroadcastOracle oracle;
  const BroadcastBAlgorithm algorithm;
  const SchedulerKind kinds[] = {
      SchedulerKind::kSynchronous, SchedulerKind::kAsyncRandom,
      SchedulerKind::kAsyncFifo, SchedulerKind::kAsyncLifo,
      SchedulerKind::kAsyncLinkFifo};
  for (const SchedulerKind sched : kinds) {
    RunOptions opts;
    opts.scheduler = sched;
    opts.seed = 31337;
    TraceRecorder recorder(TraceLevel::kFull);
    opts.trace_sink = &recorder;
    const TaskReport report = run_task(g, 5, oracle, algorithm, opts);
    ASSERT_TRUE(report.ok()) << to_string(sched);
    const RecordedTrace trace = recorder.take();

    std::map<NodeId, std::uint64_t> delivered_at;
    std::uint64_t sends = 0;
    for (const TraceEvent& e : trace.events) {
      if (e.kind == TraceEventKind::kDeliver) ++delivered_at[e.node];
      if (e.kind == TraceEventKind::kSend) ++sends;
    }
    std::uint64_t delivered_sum = 0;
    for (const auto& [node, count] : delivered_at) delivered_sum += count;

    EXPECT_EQ(delivered_sum, report.run.metrics.deliveries)
        << to_string(sched);
    EXPECT_EQ(sends, report.run.metrics.messages_total) << to_string(sched);
    // Reliable network: every sent message is delivered exactly once.
    EXPECT_EQ(report.run.metrics.deliveries,
              report.run.metrics.messages_total)
        << to_string(sched);
  }
}

TEST(MetricsInvariants, WallTimeIsExactlyAdvisePlusRunInEveryReport) {
  const PortGraph g = metrics_graph();
  const TreeWakeupOracle tree_oracle;
  const LightBroadcastOracle light_oracle;
  const WakeupTreeAlgorithm wakeup;
  const CensusAlgorithm census;
  const BroadcastBAlgorithm broadcast;
  std::vector<TrialSpec> specs;
  for (NodeId s = 0; s < 12; ++s) {
    specs.push_back({&g, s, &tree_oracle, &wakeup});
    specs.push_back({&g, s, &tree_oracle, &census});
    specs.push_back({&g, s, &light_oracle, &broadcast});
  }
  for (const bool cache : {true, false}) {
    const std::vector<TaskReport> reports =
        BatchRunner(4, cache).run(specs);
    for (const TaskReport& r : reports) {
      EXPECT_EQ(r.wall_ns, r.advise_ns + r.run_ns)
          << r.algorithm_name << " cache=" << cache;
    }
  }
}

std::vector<TrialSpec> mixed_specs(const PortGraph& g, const Oracle& tree,
                                   const Oracle& light, const Oracle& null,
                                   const Algorithm& wakeup,
                                   const Algorithm& broadcast,
                                   const Algorithm& flooding,
                                   const Algorithm& gossip) {
  std::vector<TrialSpec> specs;
  for (NodeId s = 0; s < 6; ++s) {
    RunOptions async;
    async.scheduler = SchedulerKind::kAsyncRandom;
    async.seed = 100 + s;
    specs.push_back({&g, s, &tree, &wakeup});
    specs.push_back({&g, s, &tree, &gossip, async});
    specs.push_back({&g, s, &light, &broadcast});
    RunOptions faulty;
    faulty.fault.seed = 55 + s;
    faulty.fault.drop = 0.08;
    specs.push_back({&g, s, &null, &flooding, faulty});
  }
  return specs;
}

TEST(MetricsInvariants, SnapshotBitIdenticalAcrossJobs) {
  const PortGraph g = metrics_graph();
  const TreeWakeupOracle tree;
  const LightBroadcastOracle light;
  const NullOracle null;
  const WakeupTreeAlgorithm wakeup;
  const BroadcastBAlgorithm broadcast;
  const FloodingAlgorithm flooding;
  const GossipTreeAlgorithm gossip;
  const std::vector<TrialSpec> specs =
      mixed_specs(g, tree, light, null, wakeup, broadcast, flooding, gossip);

  BatchStats serial;
  BatchStats parallel;
  BatchRunner(1).run(specs, &serial);
  BatchRunner(8).run(specs, &parallel);
  EXPECT_FALSE(serial.metrics.empty());
  EXPECT_EQ(serial.metrics, parallel.metrics);

  // Equal snapshots must serialize byte-identically (sorted keys).
  std::ostringstream a;
  std::ostringstream b;
  serial.metrics.write_json(a);
  parallel.metrics.write_json(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(MetricsInvariants, SnapshotAgreesWithSummedReports) {
  const PortGraph g = metrics_graph();
  const TreeWakeupOracle tree;
  const LightBroadcastOracle light;
  const NullOracle null;
  const WakeupTreeAlgorithm wakeup;
  const BroadcastBAlgorithm broadcast;
  const FloodingAlgorithm flooding;
  const GossipTreeAlgorithm gossip;
  const std::vector<TrialSpec> specs =
      mixed_specs(g, tree, light, null, wakeup, broadcast, flooding, gossip);

  BatchStats stats;
  const std::vector<TaskReport> reports = BatchRunner(3).run(specs, &stats);

  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t dropped = 0;
  std::uint64_t informed = 0;
  std::uint64_t completed = 0;
  for (const TaskReport& r : reports) {
    messages += r.run.metrics.messages_total;
    bits += r.run.metrics.bits_sent;
    deliveries += r.run.metrics.deliveries;
    dropped += r.run.faults.dropped;
    informed += r.run.informed_count();
    if (r.run.status == RunStatus::kCompleted) ++completed;
  }
  const std::map<std::string, std::uint64_t>& c = stats.metrics.counters;
  EXPECT_EQ(c.at("trials"), specs.size());
  EXPECT_EQ(c.at("trials_completed"), completed);
  EXPECT_EQ(c.at("messages_total"), messages);
  EXPECT_EQ(c.at("bits_on_wire"), bits);
  EXPECT_EQ(c.at("deliveries"), deliveries);
  EXPECT_EQ(c.at("faults_dropped"), dropped);
  EXPECT_EQ(c.at("advice_cache_hits"), stats.cache_hits);

  const HistogramStats& per_trial =
      stats.metrics.histograms.at("messages_per_trial");
  EXPECT_EQ(per_trial.count, specs.size());
  EXPECT_EQ(per_trial.sum, messages);
  const HistogramStats& latency =
      stats.metrics.histograms.at("wakeup_latency");
  EXPECT_EQ(latency.count, informed);
  EXPECT_EQ(stats.metrics.histograms.at("queue_depth_peak").count,
            specs.size());
}

// ---- Registry unit behavior ------------------------------------------------

TEST(MetricsRegistry, HistogramBucketsByBitWidth) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h");
  for (const std::uint64_t v : {0ULL, 1ULL, 2ULL, 3ULL, 8ULL, 1023ULL}) {
    h.observe(v);
  }
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramStats& s = snap.histograms.at("h");
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.sum, 1037u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1023u);
  // bit_width: 0→0, 1→1, {2,3}→2, 8→4, 1023→10.
  const std::vector<std::pair<std::uint32_t, std::uint64_t>> want = {
      {0, 1}, {1, 1}, {2, 2}, {4, 1}, {10, 1}};
  EXPECT_EQ(s.buckets, want);
}

TEST(MetricsRegistry, SnapshotMergeSumsEverything) {
  MetricsRegistry a;
  a.counter("c").add(3);
  a.histogram("h").observe(4);
  MetricsRegistry b;
  b.counter("c").add(5);
  b.counter("only_b").add(1);
  b.histogram("h").observe(16);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counters.at("c"), 8u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  const HistogramStats& h = merged.histograms.at("h");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 20u);
  EXPECT_EQ(h.min, 4u);
  EXPECT_EQ(h.max, 16u);
}

TEST(MetricsRegistry, WriteJsonShape) {
  MetricsRegistry reg;
  reg.counter("beta").add(2);
  reg.counter("alpha").add(1);
  reg.histogram("lat").observe(5);
  std::ostringstream out;
  reg.snapshot().write_json(out);
  const std::string json = out.str();
  // Sorted keys, both sections present.
  EXPECT_NE(json.find("\"alpha\": 1"), std::string::npos);
  EXPECT_LT(json.find("\"alpha\""), json.find("\"beta\""));
  EXPECT_NE(json.find("\"lat\": {\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [[3, 1]]"), std::string::npos);
}

}  // namespace
}  // namespace oraclesize
