// Cross-module integration tests: the paper's storyline end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "core/broadcast_b.h"
#include "core/flooding.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "graph/clique_replace.h"
#include "graph/complete_star.h"
#include "graph/subdivision.h"
#include "lowerbound/bounds.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "oracle/trivial_oracles.h"
#include "util/mathx.h"

namespace oraclesize {
namespace {

TEST(Integration, OracleSizeSeparationGrowsWithN) {
  // The headline, measured on real constructions: the Theorem 2.1 wakeup
  // oracle costs Theta(n log n) bits, the Theorem 3.1 broadcast oracle
  // Theta(n); their ratio must grow with n roughly like log n.
  double prev_ratio = 0.0;
  for (std::size_t n : {64u, 256u, 1024u}) {
    const PortGraph g = make_complete_star(n);
    const auto wakeup_bits =
        oracle_size_bits(TreeWakeupOracle().advise(g, 0));
    const auto broadcast_bits =
        oracle_size_bits(LightBroadcastOracle().advise(g, 0));
    const double ratio = static_cast<double>(wakeup_bits) /
                         static_cast<double>(broadcast_bits);
    EXPECT_GT(ratio, prev_ratio) << "n=" << n;
    prev_ratio = ratio;
    // Broadcast advice is linear, wakeup advice superlinear.
    EXPECT_LE(broadcast_bits, 10 * n);
    EXPECT_GE(wakeup_bits, (n - 1) * static_cast<std::uint64_t>(
                                         ceil_log2(n)));
  }
  EXPECT_GT(prev_ratio, 2.0);
}

TEST(Integration, BothPrimitivesSolveEveryFamilyLinearly) {
  Rng rng(401);
  std::vector<PortGraph> graphs;
  graphs.push_back(make_complete_star(40));
  graphs.push_back(make_grid(6, 8));
  graphs.push_back(make_random_connected(64, 0.15, rng));
  graphs.push_back(make_gns(10, 10, rng).graph);
  graphs.push_back(make_random_gnsc(16, 4, rng).graph);
  for (const PortGraph& g : graphs) {
    const std::size_t n = g.num_nodes();
    const TaskReport w =
        run_task(g, 0, TreeWakeupOracle(), WakeupTreeAlgorithm());
    ASSERT_TRUE(w.ok()) << g.summary();
    EXPECT_EQ(w.run.metrics.messages_total, n - 1);

    const TaskReport b =
        run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm());
    ASSERT_TRUE(b.ok()) << g.summary();
    EXPECT_LE(b.run.metrics.messages_total, 3 * (n - 1));

    // Both use strictly less advice+traffic than knowing the whole map.
    const auto map_bits = oracle_size_bits(SourceMapOracle().advise(g, 0));
    EXPECT_LT(w.oracle_bits, map_bits);
    EXPECT_LT(b.oracle_bits, map_bits);
  }
}

TEST(Integration, FloodingPaysQuadraticWhereSchemeBStaysLinear) {
  // The motivation table: on dense networks, zero-advice flooding costs
  // Theta(n^2) while 10n bits of advice buy 3n messages.
  const std::size_t n = 128;
  const PortGraph g = make_complete_star(n);
  const TaskReport flood = run_task(g, 0, NullOracle(), FloodingAlgorithm());
  const TaskReport b =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm());
  ASSERT_TRUE(flood.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(flood.run.metrics.messages_total,
            20 * b.run.metrics.messages_total);
}

TEST(Integration, LowerBoundFamiliesAreSolvedByTheUpperBoundOracles) {
  // Consistency: the adversarial graphs are still just networks; with the
  // *right-sized* oracles both tasks complete linearly on them. (The lower
  // bounds say no *smaller* oracle can do it, not that these graphs are
  // hard with good advice.)
  Rng rng(402);
  const SubdividedGraph gns = make_gns(16, 16, rng);
  const CliqueReplacedGraph gnsc = make_random_gnsc(16, 2, rng);
  for (const PortGraph* g : {&gns.graph, &gnsc.graph}) {
    for (SchedulerKind kind :
         {SchedulerKind::kSynchronous, SchedulerKind::kAsyncLifo}) {
      RunOptions opts;
      opts.scheduler = kind;
      const TaskReport w =
          run_task(*g, 0, TreeWakeupOracle(), WakeupTreeAlgorithm(), opts);
      EXPECT_TRUE(w.ok());
      EXPECT_EQ(w.run.metrics.messages_total, g->num_nodes() - 1);
      const TaskReport b = run_task(*g, 0, LightBroadcastOracle(),
                                    BroadcastBAlgorithm(), opts);
      EXPECT_TRUE(b.ok());
      EXPECT_LE(b.run.metrics.messages_total, 3 * (g->num_nodes() - 1));
    }
  }
}

TEST(Integration, MeasuredWakeupOracleSitsUnderTheFamilyEntropy) {
  // The Theorem 2.1 oracle on the (2n)-node G_{n,S} family: its size must
  // (of course) exceed the lower-bound machinery's requirement for linear
  // wakeup... i.e. the bound evaluated AT the oracle's size must be small,
  // while at half that size it is already superlinear for large n. This
  // wires the upper and lower bound modules against each other.
  Rng rng(403);
  const std::size_t n = 512;
  const SubdividedGraph sg = make_gns(n, n, rng);
  const auto advice = TreeWakeupOracle().advise(sg.graph, 0);
  const auto oracle_bits = oracle_size_bits(advice);
  // At a tenth of the real oracle's size, the adversary already forces
  // more messages than the wakeup scheme ever sends.
  const double lb = wakeup_message_lower_bound(n, 1, oracle_bits / 10);
  const TaskReport w =
      run_task(sg.graph, 0, TreeWakeupOracle(), WakeupTreeAlgorithm());
  ASSERT_TRUE(w.ok());
  EXPECT_GT(lb, static_cast<double>(w.run.metrics.messages_total));
}

TEST(Integration, BroadcastOracleIsSublinearInWakeupThresholdBudget) {
  // Theorem 3.1's oracle uses o(n log n) bits — far below the wakeup
  // threshold alpha * N log N for any fixed alpha once n is large.
  for (std::size_t n : {256u, 1024u, 4096u}) {
    const PortGraph g = make_complete_star(n);
    const auto bits = oracle_size_bits(LightBroadcastOracle().advise(g, 0));
    const double budget =
        0.25 * (2.0 * n) * std::log2(2.0 * n);  // alpha = 1/4 threshold
    if (n >= 1024) {
      EXPECT_LT(static_cast<double>(bits), budget) << "n=" << n;
    }
  }
}

TEST(Integration, PerNodeLoadAccounting) {
  // The wakeup scheme's heaviest sender is the node with the most tree
  // children; flooding's is the highest-degree node. Totals must equal the
  // per-node sums.
  const PortGraph g = make_star(20);
  const TaskReport w =
      run_task(g, 0, TreeWakeupOracle(), WakeupTreeAlgorithm());
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.run.max_node_sends(), 19u);  // the hub relays to every leaf
  std::uint64_t total = 0;
  for (std::uint64_t s : w.run.sends_by_node) total += s;
  EXPECT_EQ(total, w.run.metrics.messages_total);

  const TaskReport b =
      run_task(g, 5, LightBroadcastOracle(), BroadcastBAlgorithm());
  ASSERT_TRUE(b.ok());
  total = 0;
  for (std::uint64_t s : b.run.sends_by_node) total += s;
  EXPECT_EQ(total, b.run.metrics.messages_total);
}

TEST(Integration, SchemeBStarvesWithoutItsAdvice) {
  // The other face of Theorem 3.2 at the scheme level: strip scheme B's
  // advice (null oracle) and it cannot broadcast at all — K_x stays empty,
  // nothing is ever relayed. The bits are load-bearing.
  const PortGraph g = make_complete_star(32);
  const auto advice = NullOracle().advise(g, 0);
  const RunResult r =
      run_execution(g, 0, advice, BroadcastBAlgorithm(), RunOptions{});
  EXPECT_TRUE(r.violation.empty());
  EXPECT_FALSE(r.all_informed);
  EXPECT_EQ(r.informed_count(), 1u);  // only the source
  EXPECT_EQ(r.metrics.messages_total, 0u);
}

TEST(Integration, SchemeBPartialAdviceInformsExactlyTheReachable) {
  // Keep only the advice of nodes 'near' the source in the light tree:
  // scheme B must inform exactly the component of tree edges it can still
  // discover, never a node beyond it.
  Rng rng(405);
  const PortGraph g = make_random_connected(40, 0.15, rng);
  auto advice = LightBroadcastOracle().advise(g, 0);
  // Zero out the advice of the upper half of node ids.
  for (NodeId v = 20; v < 40; ++v) advice[v] = BitString{};
  const RunResult r =
      run_execution(g, 0, advice, BroadcastBAlgorithm(), RunOptions{});
  EXPECT_TRUE(r.violation.empty());
  // Fewer nodes informed than with full advice, but at least the source.
  EXPECT_GE(r.informed_count(), 1u);
  EXPECT_LE(r.informed_count(), 40u);
  // Messages stay within the linear budget even on partial advice.
  EXPECT_LE(r.metrics.messages_total, 3 * 39u);
}

TEST(Integration, RunnerReportsAreSelfConsistent) {
  Rng rng(404);
  const PortGraph g = make_random_connected(30, 0.2, rng);
  const TaskReport r =
      run_task(g, 0, LightBroadcastOracle(), BroadcastBAlgorithm());
  EXPECT_EQ(r.oracle_name, "light-broadcast(light)");
  EXPECT_EQ(r.algorithm_name, "broadcast-B");
  EXPECT_LE(r.max_advice_bits, r.oracle_bits);
  EXPECT_NE(r.summary().find("ok"), std::string::npos);
}

}  // namespace
}  // namespace oraclesize
