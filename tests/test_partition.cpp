// Invariant tests for graph/partition.h: every partition is a strictly
// increasing cover of [0, n), shard_of inverts the bounds, edge mass is
// balanced within the granularity the node-boundary cuts allow, and shard
// views window the frozen CSR exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/builders.h"
#include "graph/partition.h"
#include "graph/port_graph.h"
#include "util/rng.h"

namespace oraclesize {
namespace {

PartitionOptions opts(std::uint32_t shards, std::uint32_t alignment = 64,
                      std::uint32_t min_nodes = 1) {
  PartitionOptions o;
  o.shards = shards;
  o.alignment = alignment;
  o.min_nodes_per_shard = min_nodes;
  return o;
}

/// Checks the structural invariants every partition must satisfy.
void check_invariants(const PortGraph& g, const Partition& p) {
  const std::size_t n = g.num_nodes();
  ASSERT_GE(p.bounds.size(), 2u);
  EXPECT_EQ(p.bounds.front(), 0u);
  EXPECT_EQ(p.bounds.back(), n);
  for (std::size_t i = 0; i + 1 < p.bounds.size(); ++i) {
    if (n > 0) EXPECT_LT(p.bounds[i], p.bounds[i + 1]);
  }
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t s = p.shard_of(v);
    EXPECT_GE(v, p.begin(s));
    EXPECT_LT(v, p.end(s));
  }
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < p.num_shards(); ++s) total += p.size(s);
  EXPECT_EQ(total, n);
}

std::vector<PortGraph> sample_graphs() {
  Rng rng(20260807);
  std::vector<PortGraph> out;
  out.push_back(make_path(40));
  out.push_back(make_cycle(33));
  out.push_back(make_star(50));  // all mass at node 0: worst skew
  out.push_back(make_grid(8, 9));
  out.push_back(make_hypercube(6));
  out.push_back(make_lollipop(30));
  out.push_back(make_random_connected(64, 0.1, rng));
  out.push_back(make_random_tree(57, rng));
  return out;
}

TEST(Partition, InvariantsAcrossGraphsAndShardCounts) {
  for (const PortGraph& g : sample_graphs()) {
    for (const std::uint32_t shards : {1u, 2u, 3u, 5u, 8u, 64u}) {
      const Partition p = make_partition(g, opts(shards, 0));
      check_invariants(g, p);
      EXPECT_LE(p.num_shards(), shards);
      EXPECT_GE(p.num_shards(), 1u);
    }
  }
}

TEST(Partition, SingleShardIsWholeRange) {
  const PortGraph g = make_grid(5, 5);
  const Partition p = make_partition(g, opts(1));
  EXPECT_EQ(p.num_shards(), 1u);
  EXPECT_EQ(p.begin(0), 0u);
  EXPECT_EQ(p.end(0), g.num_nodes());
}

TEST(Partition, EmptyAndTinyGraphs) {
  const Partition empty = make_partition(PortGraph(0), opts(4));
  EXPECT_EQ(empty.num_shards(), 1u);
  EXPECT_EQ(empty.bounds.back(), 0u);

  const PortGraph one(1);
  const Partition p1 = make_partition(one, opts(4, 0));
  check_invariants(one, p1);
  EXPECT_EQ(p1.num_shards(), 1u);

  // More shards than nodes: every shard still owns at least one node.
  const PortGraph path = make_path(3);
  const Partition p3 = make_partition(path, opts(8, 0));
  check_invariants(path, p3);
  EXPECT_LE(p3.num_shards(), 3u);
}

TEST(Partition, MinNodesPerShardReducesShardCount) {
  const PortGraph g = make_path(20);
  const Partition p = make_partition(g, opts(8, 0, 10));
  check_invariants(g, p);
  EXPECT_LE(p.num_shards(), 2u);
}

TEST(Partition, EdgeMassIsBalancedOnRegularGraphs) {
  // On a cycle every node has degree 2, so equal mass = equal node counts:
  // with alignment off, shard sizes may differ by at most one node.
  const PortGraph g = make_cycle(97);
  const Partition p = make_partition(g, opts(4, 0));
  ASSERT_EQ(p.num_shards(), 4u);
  std::size_t lo = g.num_nodes(), hi = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    lo = std::min(lo, p.size(s));
    hi = std::max(hi, p.size(s));
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(Partition, EdgeMassBalancesDegreeSkew) {
  // Star: node 0 carries half of all directed links. Balanced-by-mass cuts
  // must give shard 0 far fewer NODES than a node-count split would.
  const PortGraph g = make_star(1000);
  const Partition p = make_partition(g, opts(4, 0));
  ASSERT_EQ(p.num_shards(), 4u);
  EXPECT_LT(p.size(0), 600u);  // node-count split would give 250 + hub mass
  check_invariants(g, p);
}

TEST(Partition, AlignmentRoundsBoundariesWhenRoomAllows) {
  PortGraph g = make_path(1024);
  g.freeze();
  const Partition p = make_partition(g, opts(4, 64));
  ASSERT_EQ(p.num_shards(), 4u);
  for (std::size_t i = 1; i + 1 < p.bounds.size(); ++i) {
    EXPECT_EQ(p.bounds[i] % 64, 0u);
  }
  // Alignment is skipped when it could starve shards: 8 shards * 64 > 100.
  const PortGraph small = make_path(100);
  const Partition ps = make_partition(small, opts(8, 64));
  check_invariants(small, ps);
  EXPECT_EQ(ps.num_shards(), 8u);
}

TEST(Partition, FrozenAndBuilderGraphsPartitionIdentically) {
  Rng rng(99);
  PortGraph frozen = make_random_connected(80, 0.15, rng);  // comes frozen
  PortGraph builder(frozen.num_nodes());
  for (const Edge& e : frozen.edges()) {
    builder.add_edge(e.u, e.port_u, e.v, e.port_v);
  }
  const Partition pf = make_partition(frozen, opts(5, 0));
  const Partition pb = make_partition(builder, opts(5, 0));
  EXPECT_EQ(pf.bounds, pb.bounds);
}

TEST(Partition, ShardViewWindowsTheCsrExactly) {
  Rng rng(7);
  const PortGraph g = make_random_connected(60, 0.2, rng);
  ASSERT_NE(g.csr_offsets(), nullptr);
  const Partition p = make_partition(g, opts(4, 0));
  std::uint64_t expected_link = 0;
  for (std::uint32_t s = 0; s < p.num_shards(); ++s) {
    const ShardView view = make_shard_view(g, p, s);
    EXPECT_EQ(view.node_begin, p.begin(s));
    EXPECT_EQ(view.node_end, p.end(s));
    EXPECT_EQ(view.link_begin, expected_link);
    ASSERT_NE(view.endpoints, nullptr);
    ASSERT_NE(view.offsets, nullptr);
    // The window covers exactly its nodes' adjacency rows, and indexing
    // through offsets recovers every neighbor.
    std::uint64_t links = 0;
    for (NodeId v = view.node_begin; v < view.node_end; ++v) {
      for (Port q = 0; q < g.degree(v); ++q) {
        const Endpoint via = view.endpoints[view.offsets[v] + q];
        const Endpoint direct = g.neighbor(v, q);
        EXPECT_EQ(via.node, direct.node);
        EXPECT_EQ(via.port, direct.port);
        ++links;
      }
    }
    EXPECT_EQ(view.num_links(), links);
    expected_link = view.link_end;
  }
  EXPECT_EQ(expected_link, 2 * g.num_edges());
}

TEST(Partition, ShardViewOnUnfrozenGraphHasNullCsr) {
  PortGraph g(10);
  for (NodeId v = 0; v + 1 < 10; ++v) g.add_edge_auto(v, v + 1);
  const Partition p = make_partition(g, opts(2, 0));
  const ShardView view = make_shard_view(g, p, 0);
  EXPECT_EQ(view.endpoints, nullptr);
  EXPECT_EQ(view.num_nodes(), p.size(0));
}

TEST(Partition, SparseRandomConnectedBuilder) {
  Rng rng(42);
  const PortGraph g = make_random_connected_sparse(500, 700, rng);
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_EQ(g.num_edges(), 499u + 700u);
  EXPECT_NE(g.csr_offsets(), nullptr);  // builder freezes its result
  // No self-loops or parallel edges.
  std::vector<std::uint64_t> seen;
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.u, e.v);
    const std::uint64_t key =
        std::min(e.u, e.v) * 500ull + std::max(e.u, e.v);
    seen.push_back(key);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
  EXPECT_THROW(make_random_connected_sparse(3, 10, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace oraclesize
