// The advice memoization layer (core/advice_cache.h) and its integration
// into BatchRunner's pre-pass: cached advice must be bit-identical to a
// fresh advise(), dedup accounting must be exact, and everything must hold
// under concurrency.
#include "core/advice_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include "core/batch_runner.h"
#include "core/broadcast_b.h"
#include "core/flooding.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "graph/complete_star.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "oracle/trivial_oracles.h"
#include "sim/engine.h"

namespace oraclesize {
namespace {

// Counts advise() calls so tests can pin the exactly-once guarantee.
class CountingOracle final : public Oracle {
 public:
  explicit CountingOracle(const Oracle& inner) : inner_(inner) {}
  std::vector<BitString> advise(const PortGraph& g,
                                NodeId source) const override {
    ++calls;
    return inner_.advise(g, source);
  }
  std::string name() const override { return inner_.name(); }

  mutable std::atomic<std::size_t> calls{0};

 private:
  const Oracle& inner_;
};

class ThrowingOracle final : public Oracle {
 public:
  std::vector<BitString> advise(const PortGraph&, NodeId) const override {
    ++calls;
    throw std::runtime_error("throwing-oracle: no advice today");
  }
  std::string name() const override { return "throwing"; }

  mutable std::atomic<std::size_t> calls{0};
};

TEST(AdviceCache, CachedAdviceBitIdenticalToFreshAdvise) {
  Rng rng(11);
  const PortGraph g = make_random_connected(64, 0.1, rng);
  const TreeWakeupOracle oracle;
  const auto fresh = oracle.advise(g, 3);

  AdviceCache cache;
  const auto first = cache.lookup(g, oracle, 3);
  const auto second = cache.lookup(g, oracle, 3);
  ASSERT_NE(first.advice, nullptr);
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.advise_ns, 0u);
  EXPECT_EQ(first.advice, second.advice);  // literally the same vector
  ASSERT_EQ(first.advice->size(), fresh.size());
  for (std::size_t v = 0; v < fresh.size(); ++v) {
    EXPECT_EQ((*first.advice)[v], fresh[v]) << "node " << v;
  }
}

TEST(AdviceCache, DistinctKeysAreDistinctEntries) {
  const PortGraph g1 = make_grid(4, 4);
  const PortGraph g2 = make_grid(4, 4);  // same shape, different identity
  const TreeWakeupOracle tree;
  const NullOracle null;

  AdviceCache cache;
  EXPECT_FALSE(cache.lookup(g1, tree, 0).hit);
  EXPECT_FALSE(cache.lookup(g2, tree, 0).hit);  // graph address differs
  EXPECT_FALSE(cache.lookup(g1, tree, 1).hit);  // source differs
  EXPECT_FALSE(cache.lookup(g1, null, 0).hit);  // oracle name differs
  EXPECT_TRUE(cache.lookup(g1, tree, 0).hit);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(AdviceCache, ClearDropsEntries) {
  const PortGraph g = make_path(5);
  const NullOracle inner;
  const CountingOracle counting(inner);

  AdviceCache cache;
  cache.lookup(g, counting, 0);
  cache.lookup(g, counting, 0);
  EXPECT_EQ(counting.calls.load(), 1u);
  cache.clear();
  cache.lookup(g, counting, 0);
  EXPECT_EQ(counting.calls.load(), 2u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(AdviceCache, ConcurrentLookupsComputeOnce) {
  Rng rng(21);
  const PortGraph g = make_random_connected(128, 0.08, rng);
  const LightBroadcastOracle inner;
  const CountingOracle oracle(inner);

  AdviceCache cache;
  constexpr std::size_t kThreads = 8;
  std::vector<AdvicePtr> seen(kThreads);
  std::atomic<std::size_t> hits{0};
  {
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        for (int round = 0; round < 16; ++round) {
          const auto got = cache.lookup(g, oracle, 0);
          if (got.hit) ++hits;
          seen[t] = got.advice;
        }
      });
    }
    for (auto& th : pool) th.join();
  }
  EXPECT_EQ(oracle.calls.load(), 1u);  // exactly one advise() ever ran
  EXPECT_EQ(hits.load(), kThreads * 16 - 1);
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]) << "thread " << t;
  }
}

TEST(AdviceCache, PoisonedEntryRethrowsForEveryWaiter) {
  const PortGraph g = make_path(4);
  const ThrowingOracle oracle;
  AdviceCache cache;
  EXPECT_THROW(cache.lookup(g, oracle, 0), std::runtime_error);
  // The entry stays poisoned: repeat lookups rethrow without re-advising.
  EXPECT_THROW(cache.lookup(g, oracle, 0), std::runtime_error);
  EXPECT_EQ(oracle.calls.load(), 1u);
}

// --- BatchRunner integration -------------------------------------------

TEST(AdviceCache, BatchDedupCountsAreExact) {
  const PortGraph g1 = make_complete_star(64);
  const PortGraph g2 = make_grid(8, 8);
  const TreeWakeupOracle inner;
  const CountingOracle oracle(inner);
  const WakeupTreeAlgorithm algorithm;

  // 6 specs over 2 distinct keys: (g1, src 0) x4 and (g2, src 0) x2.
  std::vector<TrialSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(TrialSpec{&g1, 0, &oracle, &algorithm, RunOptions{}});
  }
  for (int i = 0; i < 2; ++i) {
    specs.push_back(TrialSpec{&g2, 0, &oracle, &algorithm, RunOptions{}});
  }

  BatchStats stats;
  const auto reports = BatchRunner(4).run(specs, &stats);
  ASSERT_EQ(reports.size(), 6u);
  EXPECT_EQ(oracle.calls.load(), 2u);
  EXPECT_EQ(stats.unique_advice, 2u);
  EXPECT_EQ(stats.cache_hits, 4u);

  // Deterministic attribution: the FIRST spec of each group reports the
  // advise cost, duplicates are flagged cached with advise_ns == 0.
  EXPECT_FALSE(reports[0].advice_cached);
  EXPECT_FALSE(reports[4].advice_cached);
  for (std::size_t i : {1u, 2u, 3u, 5u}) {
    EXPECT_TRUE(reports[i].advice_cached) << i;
    EXPECT_EQ(reports[i].advise_ns, 0u) << i;
  }
}

TEST(AdviceCache, BatchResultsIdenticalCacheOnAndOff) {
  Rng rng(5);
  const PortGraph g = make_random_connected(96, 0.08, rng);
  const LightBroadcastOracle oracle;
  const BroadcastBAlgorithm broadcast;
  const TreeWakeupOracle tree_oracle;
  const WakeupTreeAlgorithm wakeup;

  std::vector<TrialSpec> specs;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    RunOptions opts;
    opts.scheduler = SchedulerKind::kAsyncRandom;
    opts.seed = seed;
    specs.push_back(TrialSpec{&g, 2, &oracle, &broadcast, opts});
    specs.push_back(TrialSpec{&g, 2, &tree_oracle, &wakeup, opts});
  }

  const auto on = BatchRunner(4, /*advice_cache=*/true).run(specs);
  const auto off = BatchRunner(4, /*advice_cache=*/false).run(specs);
  const auto serial_on = BatchRunner(1, /*advice_cache=*/true).run(specs);
  ASSERT_EQ(on.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(on[i].run, off[i].run) << i;
    EXPECT_EQ(on[i].run, serial_on[i].run) << i;
    EXPECT_EQ(on[i].oracle_bits, off[i].oracle_bits) << i;
    EXPECT_EQ(on[i].oracle_name, off[i].oracle_name) << i;
  }
}

TEST(AdviceCache, TrialSpecPrecomputedAdviceIsHonored) {
  const PortGraph g = make_grid(6, 6);
  const TreeWakeupOracle oracle;
  const CountingOracle counting(oracle);
  const WakeupTreeAlgorithm algorithm;

  TrialSpec spec{&g, 0, &counting, &algorithm, RunOptions{}};
  spec.advice =
      std::make_shared<const std::vector<BitString>>(oracle.advise(g, 0));

  BatchStats stats;
  const auto reports = BatchRunner(1).run({spec}, &stats);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(counting.calls.load(), 0u);  // never asked to advise
  EXPECT_TRUE(reports[0].advice_cached);
  EXPECT_EQ(reports[0].advise_ns, 0u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.unique_advice, 0u);

  // And the execution matches the self-advised path bit for bit.
  const auto direct = BatchRunner(1).run(
      {TrialSpec{&g, 0, &oracle, &algorithm, RunOptions{}}});
  EXPECT_EQ(reports[0].run, direct[0].run);
  EXPECT_EQ(reports[0].oracle_bits, direct[0].oracle_bits);
}

TEST(AdviceCache, AdviseExceptionIsIsolatedPerTrial) {
  const PortGraph g = make_path(6);
  const ThrowingOracle throwing;
  const NullOracle null;
  const FloodingAlgorithm algorithm;

  // Healthy trials around a poisoned group: every poisoned trial reports
  // the advise failure on itself, the healthy trials still run — for any
  // job count, cache on or off.
  std::vector<TrialSpec> specs;
  specs.push_back(TrialSpec{&g, 0, &null, &algorithm, RunOptions{}});
  specs.push_back(TrialSpec{&g, 0, &throwing, &algorithm, RunOptions{}});
  specs.push_back(TrialSpec{&g, 0, &throwing, &algorithm, RunOptions{}});
  specs.push_back(TrialSpec{&g, 0, &null, &algorithm, RunOptions{}});

  for (std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    for (bool cached : {true, false}) {
      BatchStats stats;
      const auto reports = BatchRunner(jobs, cached).run(specs, &stats);
      ASSERT_EQ(reports.size(), 4u) << "jobs=" << jobs << " cache=" << cached;
      EXPECT_EQ(stats.failed, 2u);
      for (std::size_t i : {std::size_t{1}, std::size_t{2}}) {
        EXPECT_TRUE(reports[i].failed());
        EXPECT_EQ(reports[i].run.status, RunStatus::kCrashed);
        EXPECT_NE(reports[i].error.find("no advice today"), std::string::npos)
            << reports[i].error;
      }
      for (std::size_t i : {std::size_t{0}, std::size_t{3}}) {
        EXPECT_FALSE(reports[i].failed()) << i;
        EXPECT_TRUE(reports[i].ok()) << i;
      }
    }
  }
  // With the cache on, the whole poisoned group shares ONE advise() call
  // (the poisoned cache entry is replayed, not recomputed).
  throwing.calls = 0;
  BatchRunner(4, true).run(specs);
  EXPECT_EQ(throwing.calls.load(), 1u);
  // run_rethrow restores the legacy abort contract for callers that want
  // the typed exception back.
  EXPECT_THROW(BatchRunner(4, true).run_rethrow(specs), std::runtime_error);
}

TEST(AdviceCache, CacheOffStillCountsAdviseTime) {
  const PortGraph g = make_grid(8, 8);
  const TreeWakeupOracle oracle;
  const WakeupTreeAlgorithm algorithm;
  std::vector<TrialSpec> specs(
      3, TrialSpec{&g, 0, &oracle, &algorithm, RunOptions{}});

  BatchStats stats;
  const auto reports = BatchRunner(1, /*advice_cache=*/false)
                           .run(specs, &stats);
  EXPECT_EQ(stats.unique_advice, 3u);  // every trial advises afresh
  EXPECT_EQ(stats.cache_hits, 0u);
  for (const auto& r : reports) EXPECT_FALSE(r.advice_cached);
}

}  // namespace
}  // namespace oraclesize
