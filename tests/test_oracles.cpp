#include <gtest/gtest.h>

#include "bitio/codecs.h"
#include "graph/builders.h"
#include "graph/complete_star.h"
#include "graph/light_tree.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/neighborhood_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "oracle/trivial_oracles.h"
#include "util/mathx.h"

namespace oraclesize {
namespace {

TEST(OracleSize, Accounting) {
  std::vector<BitString> advice(3);
  advice[0] = BitString::from_string("101");
  advice[2] = BitString::from_string("1");
  EXPECT_EQ(oracle_size_bits(advice), 4u);
  EXPECT_EQ(max_advice_bits(advice), 3u);
}

TEST(NullOracle, ZeroBits) {
  const PortGraph g = make_grid(3, 3);
  const auto advice = NullOracle().advise(g, 0);
  EXPECT_EQ(advice.size(), g.num_nodes());
  EXPECT_EQ(oracle_size_bits(advice), 0u);
}

// ---- Theorem 2.1 oracle ----------------------------------------------------

TEST(TreeWakeupOracle, AdviceDecodesToChildPorts) {
  Rng rng(31);
  const PortGraph g = make_random_connected(24, 0.2, rng);
  const NodeId source = 5;
  const auto advice = TreeWakeupOracle(TreeKind::kBfs).advise(g, source);
  const SpanningTree tree = bfs_tree(g, source);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto decoded = decode_port_list(advice[v]);
    const auto& expected = tree.child_ports(v);
    ASSERT_EQ(decoded.size(), expected.size());
    for (std::size_t i = 0; i < decoded.size(); ++i) {
      EXPECT_EQ(decoded[i], expected[i]);
    }
  }
}

TEST(TreeWakeupOracle, LeavesGetEmptyStrings) {
  const PortGraph g = make_star(10);
  const auto advice = TreeWakeupOracle().advise(g, 0);
  EXPECT_GT(advice[0].size(), 0u);
  for (NodeId v = 1; v < 10; ++v) EXPECT_TRUE(advice[v].empty());
}

TEST(TreeWakeupOracle, SizeMatchesTheorem21) {
  // Size = (n-1) fixed-width fields + one doubled-bit header per internal
  // node: n*ceil(log2 n) + O(n log log n). Check the explicit formula.
  for (std::size_t n : {16u, 64u, 200u, 512u}) {
    const PortGraph g = make_complete_star(n);
    const auto advice = TreeWakeupOracle(TreeKind::kBfs).advise(g, 0);
    const SpanningTree tree = bfs_tree(g, 0);
    const int width = ceil_log2(n);
    std::uint64_t expected = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (tree.num_children(v) > 0) {
        expected += tree.num_children(v) * static_cast<std::uint64_t>(width) +
                    static_cast<std::uint64_t>(
                        doubled_length(static_cast<std::uint64_t>(width)));
      }
    }
    EXPECT_EQ(oracle_size_bits(advice), expected);
    // And the headline bound: <= n log n + o(n log n); generously 2x.
    EXPECT_LE(oracle_size_bits(advice),
              2 * n * static_cast<std::uint64_t>(width));
  }
}

TEST(TreeWakeupOracle, AllTreeKindsProduceDecodableAdvice) {
  Rng rng(32);
  const PortGraph g = make_random_connected(30, 0.25, rng);
  for (TreeKind kind : {TreeKind::kBfs, TreeKind::kDfs, TreeKind::kKruskal,
                        TreeKind::kLight}) {
    const auto advice = TreeWakeupOracle(kind).advise(g, 0);
    std::size_t total_children = 0;
    for (const BitString& s : advice) {
      total_children += decode_port_list(s).size();
    }
    EXPECT_EQ(total_children, g.num_nodes() - 1) << to_string(kind);
  }
}

TEST(TreeWakeupOracle, SingletonNetwork) {
  const PortGraph g = make_path(1);
  const auto advice = TreeWakeupOracle().advise(g, 0);
  EXPECT_EQ(oracle_size_bits(advice), 0u);
}

// ---- Theorem 3.1 oracle ----------------------------------------------------

TEST(LightBroadcastOracle, WeightsArePortsAtTheReceivingEndpoint) {
  Rng rng(33);
  const PortGraph g = make_random_connected(40, 0.2, rng);
  const auto ports =
      LightBroadcastOracle::assigned_ports(g, 0, TreeKind::kLight);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::uint64_t w : ports[v]) {
      // w is a real port of v...
      ASSERT_TRUE(g.has_port(v, static_cast<Port>(w)));
      // ...and it is the minimum of the two ports of that edge.
      const Endpoint other = g.neighbor(v, static_cast<Port>(w));
      EXPECT_LE(w, other.port);
    }
  }
}

TEST(LightBroadcastOracle, EveryTreeEdgeAssignedExactlyOnce) {
  Rng rng(34);
  const PortGraph g = make_random_connected(35, 0.3, rng);
  const auto ports =
      LightBroadcastOracle::assigned_ports(g, 0, TreeKind::kLight);
  std::size_t total = 0;
  for (const auto& list : ports) total += list.size();
  EXPECT_EQ(total, g.num_nodes() - 1);
}

TEST(LightBroadcastOracle, SizeIsLinearTheorem31) {
  // Oracle size <= sum over tree edges of (2 #2(w) + 2)
  //            <= 2*4n + 2n = 10n  (Claim 3.1 + per-weight framing).
  for (std::size_t n : {8u, 64u, 256u, 1024u}) {
    const PortGraph g = make_complete_star(n);
    const auto advice = LightBroadcastOracle().advise(g, 0);
    EXPECT_LE(oracle_size_bits(advice), 10 * n) << "n=" << n;
  }
}

TEST(LightBroadcastOracle, SizeLinearOnEveryFamily) {
  Rng rng(35);
  std::vector<PortGraph> graphs;
  graphs.push_back(make_grid(8, 8));
  graphs.push_back(make_hypercube(6));
  graphs.push_back(make_lollipop(64));
  graphs.push_back(make_random_connected(64, 0.4, rng));
  graphs.push_back(shuffle_ports(make_complete_star(64), rng));
  for (const PortGraph& g : graphs) {
    const auto advice = LightBroadcastOracle().advise(g, 0);
    EXPECT_LE(oracle_size_bits(advice), 10 * g.num_nodes()) << g.summary();
  }
}

TEST(LightBroadcastOracle, AdviceRoundTripsThroughCodec) {
  Rng rng(36);
  const PortGraph g = make_random_connected(30, 0.2, rng);
  const auto advice = LightBroadcastOracle().advise(g, 0);
  const auto ports =
      LightBroadcastOracle::assigned_ports(g, 0, TreeKind::kLight);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(decode_weight_list(advice[v]), ports[v]);
  }
}

TEST(LightBroadcastOracle, NonLightTreesCanBeMuchBigger) {
  // Ablation seed: on K*_n a BFS tree from node 0 uses edges of every
  // weight 0..n-2 from the root, so its advice grows superlinearly, unlike
  // the light tree's.
  const std::size_t n = 512;
  const PortGraph g = make_complete_star(n);
  const auto light = LightBroadcastOracle(TreeKind::kLight).advise(g, 0);
  const auto bfs = LightBroadcastOracle(TreeKind::kBfs).advise(g, 0);
  EXPECT_LT(oracle_size_bits(light), oracle_size_bits(bfs));
}

// ---- map / neighborhood oracles --------------------------------------------

TEST(FullMapOracle, EveryNodeGetsTheSameMap) {
  const PortGraph g = make_cycle(6);
  const auto advice = FullMapOracle().advise(g, 0);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    EXPECT_EQ(advice[v], advice[0]);
  }
  EXPECT_GT(oracle_size_bits(advice), 0u);
}

TEST(SourceMapOracle, OnlySourceGetsBits) {
  const PortGraph g = make_cycle(6);
  const auto advice = SourceMapOracle().advise(g, 2);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == 2) {
      EXPECT_FALSE(advice[v].empty());
    } else {
      EXPECT_TRUE(advice[v].empty());
    }
  }
}

TEST(GraphMapEncoding, IsDecodable) {
  Rng rng(37);
  const PortGraph g = make_random_connected(12, 0.3, rng);
  const BitString map = encode_graph_map(g);
  BitReader r(map);
  const std::uint64_t n = read_doubled(r);
  ASSERT_EQ(n, g.num_nodes());
  const int width = std::max(1, ceil_log2(n));
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t deg = read_doubled(r);
    ASSERT_EQ(deg, g.degree(v));
    for (Port p = 0; p < deg; ++p) {
      const NodeId nb = static_cast<NodeId>(r.read_uint(width));
      const Port nb_port = static_cast<Port>(r.read_uint(width));
      EXPECT_EQ(g.neighbor(v, p), (Endpoint{nb, nb_port}));
    }
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(NeighborhoodOracle, RadiusZeroGivesNothing) {
  const PortGraph g = make_grid(3, 3);
  const auto advice = NeighborhoodOracle(0).advise(g, 0);
  EXPECT_EQ(oracle_size_bits(advice), 0u);
}

TEST(NeighborhoodOracle, RadiusOneSeesIncidentEdges) {
  const PortGraph g = make_star(8);
  const auto advice = NeighborhoodOracle(1).advise(g, 0);
  // Center sees all 7 edges; each leaf sees exactly its own edge -> the
  // center's string is strictly longest.
  for (NodeId v = 1; v < 8; ++v) {
    EXPECT_LT(advice[v].size(), advice[0].size());
    EXPECT_FALSE(advice[v].empty());
  }
}

TEST(NeighborhoodOracle, LargeRadiusEqualsWholeGraphEverywhere) {
  Rng rng(38);
  const PortGraph g = make_random_connected(15, 0.3, rng);
  const auto advice = NeighborhoodOracle(100).advise(g, 0);
  // Every node's ball is the whole edge set: same edge count in each
  // string. Decode the count prefix of each.
  std::uint64_t count0 = 0;
  {
    BitReader r(advice[0]);
    count0 = read_doubled(r);
  }
  EXPECT_EQ(count0, g.num_edges());
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    BitReader r(advice[v]);
    EXPECT_EQ(read_doubled(r), g.num_edges());
  }
}

TEST(NeighborhoodOracle, SizeGrowsWithRadius) {
  Rng rng(39);
  const PortGraph g = make_random_connected(40, 0.1, rng);
  std::uint64_t prev = 0;
  for (std::uint32_t rho : {1u, 2u, 3u, 5u}) {
    const std::uint64_t size =
        oracle_size_bits(NeighborhoodOracle(rho).advise(g, 0));
    EXPECT_GE(size, prev);
    prev = size;
  }
}

}  // namespace
}  // namespace oraclesize
