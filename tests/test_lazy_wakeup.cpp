// The executable Theorem 2.2: real wakeup algorithms versus the lazily
// decided adversarial network.
#include "lowerbound/lazy_wakeup.h"

#include <gtest/gtest.h>

#include "core/flooding.h"
#include "graph/complete_star.h"
#include "graph/subdivision.h"
#include "graph/validate.h"
#include "sim/engine.h"
#include "util/mathx.h"

namespace oraclesize {
namespace {

// A wakeup scheme that "gives up": the source sends one message and
// everyone else stays silent. Must never complete against the adversary.
class OneShot final : public Algorithm {
 public:
  class Behavior final : public NodeBehavior {
   public:
    void on_start(const NodeInput& input, std::vector<Send>& out) override {
      if (!input.is_source) return;
      out.push_back(Send{Message::source(), 0});
    }
    void on_receive(const NodeInput&, const Message&, Port,
                    std::vector<Send>&) override {}
  };
  std::unique_ptr<NodeBehavior> make_behavior(
      const NodeInput&) const override {
    return std::make_unique<Behavior>();
  }
  std::string name() const override { return "one-shot"; }
  bool is_wakeup() const override { return true; }
};

// A cheater: a non-source node transmits spontaneously.
class Cheater final : public Algorithm {
 public:
  class Behavior final : public NodeBehavior {
   public:
    void on_start(const NodeInput&, std::vector<Send>& out) override {
      out.push_back(Send{Message::control(1), 0});
    }
    void on_receive(const NodeInput&, const Message&, Port,
                    std::vector<Send>&) override {}
  };
  std::unique_ptr<NodeBehavior> make_behavior(
      const NodeInput&) const override {
    return std::make_unique<Behavior>();
  }
  std::string name() const override { return "cheater"; }
};

TEST(LazyWakeup, FloodingCompletesButPaysTheBound) {
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    const LazyWakeupResult r = play_lazy_wakeup(n, FloodingAlgorithm());
    EXPECT_TRUE(r.completed) << "n=" << n << " " << r.violation;
    EXPECT_EQ(r.hidden_found, n);
    // Lemma 2.1 lower bound holds for the measured message count.
    EXPECT_GE(static_cast<double>(r.messages), r.probe_lower_bound)
        << "n=" << n;
    // Zero advice on a dense adversarial network: quadratic, not linear.
    // Every K*_n edge must be probed before the last hidden node appears.
    EXPECT_GE(r.edges_probed, n * (n - 1) / 2 - 1);
    // Above the linear budget at every n, and quadratically so as n grows
    // (MessageCountGrowsQuadratically below).
    EXPECT_GT(r.messages, 2 * (2 * n));
  }
}

TEST(LazyWakeup, MessageCountGrowsQuadratically) {
  const std::uint64_t m16 = play_lazy_wakeup(16, FloodingAlgorithm()).messages;
  const std::uint64_t m32 = play_lazy_wakeup(32, FloodingAlgorithm()).messages;
  const std::uint64_t m64 = play_lazy_wakeup(64, FloodingAlgorithm()).messages;
  EXPECT_GT(m32, 3 * m16);
  EXPECT_GT(m64, 3 * m32);
}

TEST(LazyWakeup, BoundReportedMatchesFormula) {
  const LazyWakeupResult r = play_lazy_wakeup(10, FloodingAlgorithm());
  EXPECT_NEAR(r.probe_lower_bound, log2_choose(45, 10), 1e-9);
}

TEST(LazyWakeup, SilentSchemeNeverCompletes) {
  const LazyWakeupResult r = play_lazy_wakeup(12, OneShot());
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.violation.empty());
  EXPECT_LE(r.messages, 2u);  // one source send, maybe one hidden relay
}

TEST(LazyWakeup, CheatersAreCaught) {
  const LazyWakeupResult r = play_lazy_wakeup(12, Cheater());
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.violation.find("wakeup violation"), std::string::npos);
}

TEST(LazyWakeup, BudgetValveTriggers) {
  const LazyWakeupResult r =
      play_lazy_wakeup(32, FloodingAlgorithm(), /*max_messages=*/50);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.violation.find("budget"), std::string::npos);
}

TEST(LazyWakeup, Deterministic) {
  const LazyWakeupResult a = play_lazy_wakeup(20, FloodingAlgorithm());
  const LazyWakeupResult b = play_lazy_wakeup(20, FloodingAlgorithm());
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.edges_probed, b.edges_probed);
}

TEST(LazyWakeup, RejectsDegenerateN) {
  EXPECT_THROW(play_lazy_wakeup(2, FloodingAlgorithm()),
               std::invalid_argument);
}

TEST(LazyWakeup, MaterializedInstanceReplaysConsistently) {
  // The adversary's lazily-committed instance is a real G_{n,S}. Build it
  // explicitly and replay the same deterministic algorithm on the concrete
  // network: the lazy game's message count (which stops at completion)
  // must not exceed the concrete run's total, and the concrete run must of
  // course complete the wakeup.
  const std::size_t n = 24;
  const LazyWakeupResult lazy = play_lazy_wakeup(n, FloodingAlgorithm());
  ASSERT_TRUE(lazy.completed);
  ASSERT_EQ(lazy.special_edges.size(), n);

  const PortGraph base = make_complete_star(n);
  std::vector<Edge> s;
  for (const auto& [u, v] : lazy.special_edges) {
    s.push_back(Edge{u, complete_star_port(n, u, v), v,
                     complete_star_port(n, v, u)});
  }
  const SubdividedGraph concrete = subdivide_edges(base, s);
  ASSERT_EQ(validate_ports(concrete.graph), "");

  RunOptions opts;
  opts.enforce_wakeup = true;
  const RunResult replay =
      run_execution(concrete.graph, 0,
                    std::vector<BitString>(concrete.graph.num_nodes()),
                    FloodingAlgorithm(), opts);
  EXPECT_TRUE(replay.all_informed);
  EXPECT_TRUE(replay.violation.empty());
  EXPECT_LE(lazy.messages, replay.metrics.messages_total);
  // Flooding's total on the concrete graph has a closed form.
  EXPECT_EQ(replay.metrics.messages_total,
            2 * concrete.graph.num_edges() -
                (concrete.graph.num_nodes() - 1));
}

TEST(LazyWakeup, MinimalCase) {
  // n = 3: every one of the C(3,2) = 3 edges is necessarily subdivided.
  const LazyWakeupResult r = play_lazy_wakeup(3, FloodingAlgorithm());
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.hidden_found, 3u);
  EXPECT_EQ(r.edges_probed, 3u);
}

}  // namespace
}  // namespace oraclesize
