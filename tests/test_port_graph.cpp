#include "graph/port_graph.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/validate.h"

namespace oraclesize {
namespace {

TEST(PortGraph, DefaultLabelsArePaperStyle) {
  const PortGraph g(4);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(g.label(v), v + 1);
}

TEST(PortGraph, AddEdgeSetsBothDirections) {
  PortGraph g(3);
  g.add_edge(0, 0, 1, 1);
  EXPECT_EQ(g.neighbor(0, 0), (Endpoint{1, 1}));
  EXPECT_EQ(g.neighbor(1, 1), (Endpoint{0, 0}));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(PortGraph, AddEdgeAutoUsesDensePorts) {
  PortGraph g(3);
  auto [p1, q1] = g.add_edge_auto(0, 1);
  EXPECT_EQ(p1, 0u);
  EXPECT_EQ(q1, 0u);
  auto [p2, q2] = g.add_edge_auto(0, 2);
  EXPECT_EQ(p2, 1u);
  EXPECT_EQ(q2, 0u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(PortGraph, RejectsSelfLoop) {
  PortGraph g(2);
  EXPECT_THROW(g.add_edge(0, 0, 0, 1), std::invalid_argument);
}

TEST(PortGraph, RejectsOccupiedPort) {
  PortGraph g(3);
  g.add_edge(0, 0, 1, 0);
  EXPECT_THROW(g.add_edge(0, 0, 2, 0), std::invalid_argument);
}

TEST(PortGraph, RejectsOutOfRangeNode) {
  PortGraph g(2);
  EXPECT_THROW(g.add_edge(0, 0, 5, 0), std::invalid_argument);
}

TEST(PortGraph, NeighborOnVacantPortThrows) {
  PortGraph g(2);
  g.add_edge(0, 1, 1, 0);  // port 0 of node 0 left vacant (a hole)
  EXPECT_THROW(g.neighbor(0, 0), std::out_of_range);
  EXPECT_THROW(g.neighbor(0, 5), std::out_of_range);
}

TEST(PortGraph, HasPort) {
  PortGraph g(2);
  g.add_edge(0, 1, 1, 0);
  EXPECT_TRUE(g.has_port(0, 1));
  EXPECT_FALSE(g.has_port(0, 0));
  EXPECT_FALSE(g.has_port(0, 2));
  EXPECT_FALSE(g.has_port(9, 0));
}

TEST(PortGraph, PortTowards) {
  PortGraph g(3);
  g.add_edge_auto(0, 1);
  g.add_edge_auto(0, 2);
  EXPECT_EQ(g.port_towards(0, 2), 1u);
  EXPECT_EQ(g.port_towards(2, 0), 0u);
  EXPECT_EQ(g.port_towards(1, 2), kNoPort);
}

TEST(PortGraph, EdgesNormalized) {
  PortGraph g(3);
  g.add_edge_auto(2, 0);
  g.add_edge_auto(1, 2);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(PortGraph, EdgeWeightIsMinPort) {
  const Edge e{0, 3, 1, 7};
  EXPECT_EQ(e.weight(), 3u);
  const Edge f{0, 9, 1, 2};
  EXPECT_EQ(f.weight(), 2u);
}

TEST(PortGraph, ValidateAcceptsCleanGraph) {
  PortGraph g(4);
  g.add_edge_auto(0, 1);
  g.add_edge_auto(1, 2);
  g.add_edge_auto(2, 3);
  EXPECT_EQ(validate_ports(g), "");
}

TEST(PortGraph, ValidateDetectsPortHole) {
  PortGraph g(2);
  g.add_edge(0, 1, 1, 0);  // node 0: port 0 vacant, port 1 occupied
  EXPECT_NE(validate_ports(g), "");
}

TEST(PortGraph, ValidateDetectsDuplicateLabels) {
  PortGraph g(2);
  g.add_edge_auto(0, 1);
  g.set_label(1, g.label(0));
  EXPECT_NE(validate_ports(g), "");
}

TEST(PortGraph, ValidateDetectsParallelEdges) {
  PortGraph g(2);
  g.add_edge(0, 0, 1, 0);
  g.add_edge(0, 1, 1, 1);
  EXPECT_NE(validate_ports(g), "");
}

TEST(PortGraph, ConnectivityCheck) {
  PortGraph g(4);
  g.add_edge_auto(0, 1);
  g.add_edge_auto(2, 3);
  EXPECT_FALSE(is_connected(g));
  g.add_edge_auto(1, 2);
  EXPECT_TRUE(is_connected(g));
}

TEST(PortGraph, BfsDistances) {
  PortGraph g(5);
  g.add_edge_auto(0, 1);
  g.add_edge_auto(1, 2);
  g.add_edge_auto(2, 3);
  g.add_edge_auto(0, 4);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], 1u);
}

TEST(PortGraph, ToDotMentionsAllNodes) {
  PortGraph g(3);
  g.add_edge_auto(0, 1);
  g.add_edge_auto(1, 2);
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2"), std::string::npos);
}

TEST(PortGraph, Summary) {
  PortGraph g(3);
  g.add_edge_auto(0, 1);
  EXPECT_EQ(g.summary(), "PortGraph(n=3, m=1)");
}

}  // namespace
}  // namespace oraclesize
