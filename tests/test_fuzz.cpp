// Randomized end-to-end property sweep ("fuzz" suite).
//
// For a grid of seeds, draw a random connected network (random density,
// random port shuffle, random source) and check every paper invariant at
// once, under every scheduler:
//   * wakeup:    exactly n-1 messages, all informed, constraint clean;
//   * census:    2(n-1) messages, source output == n, all terminated;
//   * broadcast: <= 3(n-1) messages, all informed, M/hello budgets,
//                light-tree advice <= 10n bits;
//   * light tree: contribution <= 4n;
//   * anonymity: hiding ids changes nothing (checked via totals).
#include <gtest/gtest.h>

#include <string>

#include "core/broadcast_b.h"
#include "core/census.h"
#include "core/gossip.h"
#include "core/hybrid_wakeup.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "graph/io.h"
#include "graph/light_tree.h"
#include "graph/validate.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/partial_tree_oracle.h"
#include "oracle/tree_wakeup_oracle.h"

namespace oraclesize {
namespace {

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, AllPaperInvariantsHold) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);

  const std::size_t n = 3 + static_cast<std::size_t>(rng.below(120));
  const double p = rng.unit() * 0.4;
  PortGraph g = make_random_connected(n, p, rng);
  if (rng.chance(0.5)) g = shuffle_ports(g, rng);
  const NodeId source = static_cast<NodeId>(rng.below(n));
  ASSERT_EQ(validate_ports(g), "");
  ASSERT_TRUE(is_connected(g));

  // Light-tree invariant.
  EXPECT_LE(light_tree(g, source).contribution, 4 * n);

  const SchedulerKind kinds[] = {
      SchedulerKind::kSynchronous, SchedulerKind::kAsyncRandom,
      SchedulerKind::kAsyncFifo, SchedulerKind::kAsyncLifo,
      SchedulerKind::kAsyncLinkFifo};
  const SchedulerKind sched = kinds[rng.below(5)];

  RunOptions opts;
  opts.scheduler = sched;
  opts.seed = seed;
  opts.max_delay = 1 + static_cast<std::uint32_t>(rng.below(64));
  opts.anonymous = rng.chance(0.5);

  // Wakeup.
  {
    const TaskReport r =
        run_task(g, source, TreeWakeupOracle(), WakeupTreeAlgorithm(), opts);
    ASSERT_TRUE(r.ok()) << "wakeup seed=" << seed << " " << r.summary();
    EXPECT_EQ(r.run.metrics.messages_total, n - 1);
  }
  // Census.
  {
    const TaskReport r =
        run_task(g, source, TreeWakeupOracle(), CensusAlgorithm(), opts);
    ASSERT_TRUE(r.ok()) << "census seed=" << seed << " " << r.summary();
    EXPECT_EQ(r.run.metrics.messages_total, 2 * (n - 1));
    EXPECT_EQ(r.run.outputs[source], n);
    for (NodeId v = 0; v < n; ++v) EXPECT_TRUE(r.run.terminated[v]);
  }
  // Broadcast scheme B.
  {
    const TaskReport r = run_task(g, source, LightBroadcastOracle(),
                                  BroadcastBAlgorithm(), opts);
    ASSERT_TRUE(r.ok()) << "broadcast seed=" << seed << " " << r.summary();
    EXPECT_LE(r.oracle_bits, 10 * n);
    EXPECT_LE(r.run.metrics.messages_source, 2 * (n - 1));
    EXPECT_LE(r.run.metrics.messages_hello, n - 1);
    EXPECT_LE(r.run.metrics.messages_total, 3 * (n - 1));
  }
  // Gossip: everyone learns the full label sum.
  {
    const TaskReport r = run_task(g, source, TreeWakeupOracle(),
                                  GossipTreeAlgorithm(), opts);
    ASSERT_TRUE(r.ok()) << "gossip seed=" << seed << " " << r.summary();
    EXPECT_EQ(r.run.metrics.messages_total, 3 * (n - 1));
    if (!opts.anonymous) {
      const std::uint64_t want =
          static_cast<std::uint64_t>(n) * (n + 1) / 2;
      for (NodeId v = 0; v < n; ++v) EXPECT_EQ(r.run.outputs[v], want);
    }
  }
  // Hybrid wakeup at a random advice fraction.
  {
    const double q = rng.unit();
    const TaskReport r = run_task(g, source, PartialTreeOracle(q, seed),
                                  HybridWakeupAlgorithm(), opts);
    ASSERT_TRUE(r.ok()) << "hybrid seed=" << seed << " q=" << q << " "
                        << r.summary();
    EXPECT_GE(r.run.metrics.messages_total, n - 1);
    EXPECT_LE(r.run.metrics.messages_total,
              2 * g.num_edges());  // never worse than double-flooding
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(0, 40));

// Loader fuzz: mutated serializations must either parse into a graph that
// passes validate_ports, or throw GraphParseError — never assert, loop,
// exhaust memory, or hand back a structurally broken graph.
class LoaderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LoaderFuzz, MutatedInputParsesCleanlyOrThrowsStructured) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0x2545f4914f6cdd1dULL + 7);

  const std::size_t n = 3 + static_cast<std::size_t>(rng.below(40));
  const PortGraph g = make_random_connected(n, rng.unit() * 0.3, rng);
  std::string text = to_text(g);

  // A tight node cap so even "fix one digit" mutations that inflate the
  // header are rejected cheaply instead of allocating.
  const ParseLimits limits{/*max_nodes=*/10'000};

  // The unmutated round trip must survive the hardened parser.
  EXPECT_EQ(validate_ports(from_text(text, limits)), "");

  const std::size_t mutations = 1 + static_cast<std::size_t>(rng.below(8));
  for (std::size_t m = 0; m < mutations && !text.empty(); ++m) {
    switch (rng.below(5)) {
      case 0:  // flip one character to random printable junk
        text[rng.below(text.size())] =
            static_cast<char>(' ' + rng.below(95));
        break;
      case 1:  // truncate mid-file
        text.resize(rng.below(text.size()) + 1);
        break;
      case 2: {  // duplicate a random chunk (repeated edges/headers)
        const std::size_t at = rng.below(text.size());
        const std::size_t len =
            std::min<std::size_t>(text.size() - at, 1 + rng.below(40));
        text.insert(at, text.substr(at, len));
        break;
      }
      case 3:  // splice in a hostile line
        text += (rng.chance(0.5) ? "\nportgraph 4000000000\n"
                                 : "\nedge 0 -1 1 999999999\n");
        break;
      case 4: {  // delete a random chunk
        const std::size_t at = rng.below(text.size());
        const std::size_t len =
            std::min<std::size_t>(text.size() - at, 1 + rng.below(20));
        text.erase(at, len);
        break;
      }
    }
  }

  try {
    const PortGraph parsed = from_text(text, limits);
    // Accepted input must yield a structurally sound graph within limits.
    EXPECT_EQ(validate_ports(parsed), "");
    EXPECT_LE(parsed.num_nodes(), limits.max_nodes);
  } catch (const GraphParseError& e) {
    // Structured rejection: line context present for line-level failures,
    // and the what() string embeds the same diagnostic.
    EXPECT_FALSE(e.detail().empty());
    EXPECT_NE(std::string(e.what()).find(e.detail()), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoaderFuzz,
                         ::testing::Range<std::uint64_t>(0, 60));

}  // namespace
}  // namespace oraclesize
