// Randomized end-to-end property sweep ("fuzz" suite).
//
// For a grid of seeds, draw a random connected network (random density,
// random port shuffle, random source) and check every paper invariant at
// once, under every scheduler:
//   * wakeup:    exactly n-1 messages, all informed, constraint clean;
//   * census:    2(n-1) messages, source output == n, all terminated;
//   * broadcast: <= 3(n-1) messages, all informed, M/hello budgets,
//                light-tree advice <= 10n bits;
//   * light tree: contribution <= 4n;
//   * anonymity: hiding ids changes nothing (checked via totals).
#include <gtest/gtest.h>

#include "core/broadcast_b.h"
#include "core/census.h"
#include "core/gossip.h"
#include "core/hybrid_wakeup.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "graph/light_tree.h"
#include "graph/validate.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/partial_tree_oracle.h"
#include "oracle/tree_wakeup_oracle.h"

namespace oraclesize {
namespace {

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, AllPaperInvariantsHold) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);

  const std::size_t n = 3 + static_cast<std::size_t>(rng.below(120));
  const double p = rng.unit() * 0.4;
  PortGraph g = make_random_connected(n, p, rng);
  if (rng.chance(0.5)) g = shuffle_ports(g, rng);
  const NodeId source = static_cast<NodeId>(rng.below(n));
  ASSERT_EQ(validate_ports(g), "");
  ASSERT_TRUE(is_connected(g));

  // Light-tree invariant.
  EXPECT_LE(light_tree(g, source).contribution, 4 * n);

  const SchedulerKind kinds[] = {
      SchedulerKind::kSynchronous, SchedulerKind::kAsyncRandom,
      SchedulerKind::kAsyncFifo, SchedulerKind::kAsyncLifo,
      SchedulerKind::kAsyncLinkFifo};
  const SchedulerKind sched = kinds[rng.below(5)];

  RunOptions opts;
  opts.scheduler = sched;
  opts.seed = seed;
  opts.max_delay = 1 + static_cast<std::uint32_t>(rng.below(64));
  opts.anonymous = rng.chance(0.5);

  // Wakeup.
  {
    const TaskReport r =
        run_task(g, source, TreeWakeupOracle(), WakeupTreeAlgorithm(), opts);
    ASSERT_TRUE(r.ok()) << "wakeup seed=" << seed << " " << r.summary();
    EXPECT_EQ(r.run.metrics.messages_total, n - 1);
  }
  // Census.
  {
    const TaskReport r =
        run_task(g, source, TreeWakeupOracle(), CensusAlgorithm(), opts);
    ASSERT_TRUE(r.ok()) << "census seed=" << seed << " " << r.summary();
    EXPECT_EQ(r.run.metrics.messages_total, 2 * (n - 1));
    EXPECT_EQ(r.run.outputs[source], n);
    for (NodeId v = 0; v < n; ++v) EXPECT_TRUE(r.run.terminated[v]);
  }
  // Broadcast scheme B.
  {
    const TaskReport r = run_task(g, source, LightBroadcastOracle(),
                                  BroadcastBAlgorithm(), opts);
    ASSERT_TRUE(r.ok()) << "broadcast seed=" << seed << " " << r.summary();
    EXPECT_LE(r.oracle_bits, 10 * n);
    EXPECT_LE(r.run.metrics.messages_source, 2 * (n - 1));
    EXPECT_LE(r.run.metrics.messages_hello, n - 1);
    EXPECT_LE(r.run.metrics.messages_total, 3 * (n - 1));
  }
  // Gossip: everyone learns the full label sum.
  {
    const TaskReport r = run_task(g, source, TreeWakeupOracle(),
                                  GossipTreeAlgorithm(), opts);
    ASSERT_TRUE(r.ok()) << "gossip seed=" << seed << " " << r.summary();
    EXPECT_EQ(r.run.metrics.messages_total, 3 * (n - 1));
    if (!opts.anonymous) {
      const std::uint64_t want =
          static_cast<std::uint64_t>(n) * (n + 1) / 2;
      for (NodeId v = 0; v < n; ++v) EXPECT_EQ(r.run.outputs[v], want);
    }
  }
  // Hybrid wakeup at a random advice fraction.
  {
    const double q = rng.unit();
    const TaskReport r = run_task(g, source, PartialTreeOracle(q, seed),
                                  HybridWakeupAlgorithm(), opts);
    ASSERT_TRUE(r.ok()) << "hybrid seed=" << seed << " q=" << q << " "
                        << r.summary();
    EXPECT_GE(r.run.metrics.messages_total, n - 1);
    EXPECT_LE(r.run.metrics.messages_total,
              2 * g.num_edges());  // never worse than double-flooding
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace oraclesize
