// Randomized end-to-end property sweep ("fuzz" suite).
//
// For a grid of seeds, draw a random connected network (random density,
// random port shuffle, random source) and check every paper invariant at
// once, under every scheduler:
//   * wakeup:    exactly n-1 messages, all informed, constraint clean;
//   * census:    2(n-1) messages, source output == n, all terminated;
//   * broadcast: <= 3(n-1) messages, all informed, M/hello budgets,
//                light-tree advice <= 10n bits;
//   * light tree: contribution <= 4n;
//   * anonymity: hiding ids changes nothing (checked via totals).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "bitio/codecs.h"
#include "core/broadcast_b.h"
#include "core/census.h"
#include "core/gossip.h"
#include "core/hybrid_wakeup.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "graph/io.h"
#include "graph/light_tree.h"
#include "graph/spanning_tree.h"
#include "graph/validate.h"
#include "core/flooding.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/partial_tree_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "sim/execution_context.h"
#include "sim/sharded_engine.h"
#include "sim/trace_recorder.h"

namespace oraclesize {
namespace {

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, AllPaperInvariantsHold) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);

  const std::size_t n = 3 + static_cast<std::size_t>(rng.below(120));
  const double p = rng.unit() * 0.4;
  PortGraph g = make_random_connected(n, p, rng);
  if (rng.chance(0.5)) g = shuffle_ports(g, rng);
  const NodeId source = static_cast<NodeId>(rng.below(n));
  ASSERT_EQ(validate_ports(g), "");
  ASSERT_TRUE(is_connected(g));

  // Light-tree invariant.
  EXPECT_LE(light_tree(g, source).contribution, 4 * n);

  const SchedulerKind kinds[] = {
      SchedulerKind::kSynchronous, SchedulerKind::kAsyncRandom,
      SchedulerKind::kAsyncFifo, SchedulerKind::kAsyncLifo,
      SchedulerKind::kAsyncLinkFifo};
  const SchedulerKind sched = kinds[rng.below(5)];

  RunOptions opts;
  opts.scheduler = sched;
  opts.seed = seed;
  opts.max_delay = 1 + static_cast<std::uint32_t>(rng.below(64));
  opts.anonymous = rng.chance(0.5);

  // Wakeup.
  {
    const TaskReport r =
        run_task(g, source, TreeWakeupOracle(), WakeupTreeAlgorithm(), opts);
    ASSERT_TRUE(r.ok()) << "wakeup seed=" << seed << " " << r.summary();
    EXPECT_EQ(r.run.metrics.messages_total, n - 1);
  }
  // Census.
  {
    const TaskReport r =
        run_task(g, source, TreeWakeupOracle(), CensusAlgorithm(), opts);
    ASSERT_TRUE(r.ok()) << "census seed=" << seed << " " << r.summary();
    EXPECT_EQ(r.run.metrics.messages_total, 2 * (n - 1));
    EXPECT_EQ(r.run.outputs[source], n);
    for (NodeId v = 0; v < n; ++v) EXPECT_TRUE(r.run.terminated[v]);
  }
  // Broadcast scheme B.
  {
    const TaskReport r = run_task(g, source, LightBroadcastOracle(),
                                  BroadcastBAlgorithm(), opts);
    ASSERT_TRUE(r.ok()) << "broadcast seed=" << seed << " " << r.summary();
    EXPECT_LE(r.oracle_bits, 10 * n);
    EXPECT_LE(r.run.metrics.messages_source, 2 * (n - 1));
    EXPECT_LE(r.run.metrics.messages_hello, n - 1);
    EXPECT_LE(r.run.metrics.messages_total, 3 * (n - 1));
  }
  // Gossip: everyone learns the full label sum.
  {
    const TaskReport r = run_task(g, source, TreeWakeupOracle(),
                                  GossipTreeAlgorithm(), opts);
    ASSERT_TRUE(r.ok()) << "gossip seed=" << seed << " " << r.summary();
    EXPECT_EQ(r.run.metrics.messages_total, 3 * (n - 1));
    if (!opts.anonymous) {
      const std::uint64_t want =
          static_cast<std::uint64_t>(n) * (n + 1) / 2;
      for (NodeId v = 0; v < n; ++v) EXPECT_EQ(r.run.outputs[v], want);
    }
  }
  // Hybrid wakeup at a random advice fraction.
  {
    const double q = rng.unit();
    const TaskReport r = run_task(g, source, PartialTreeOracle(q, seed),
                                  HybridWakeupAlgorithm(), opts);
    ASSERT_TRUE(r.ok()) << "hybrid seed=" << seed << " q=" << q << " "
                        << r.summary();
    EXPECT_GE(r.run.metrics.messages_total, n - 1);
    EXPECT_LE(r.run.metrics.messages_total,
              2 * g.num_edges());  // never worse than double-flooding
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(0, 40));

// Sharded-engine property sweep: for a grid of seeds, draw a random
// network, scheduler, fault plan, and shard count, and demand the sharded
// engine reproduce the single-threaded run bit for bit — RunResult AND
// recorded event stream. This is the randomized counterpart of the pinned
// matrix in tests/test_sharded_goldens.cpp; between them the determinism
// contract is checked on both chosen and adversarially-random inputs.
class ShardedFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedFuzz, ShardedMatchesSingleThreaded) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 20260808);

  const std::size_t n = 4 + static_cast<std::size_t>(rng.below(110));
  PortGraph g = rng.chance(0.3)
                    ? make_random_connected_sparse(
                          n, static_cast<std::size_t>(rng.below(n)), rng)
                    : make_random_connected(n, rng.unit() * 0.3, rng);
  if (rng.chance(0.5)) g = shuffle_ports(g, rng);
  const NodeId source = static_cast<NodeId>(rng.below(n));

  const SchedulerKind kinds[] = {
      SchedulerKind::kSynchronous, SchedulerKind::kAsyncRandom,
      SchedulerKind::kAsyncFifo, SchedulerKind::kAsyncLifo,
      SchedulerKind::kAsyncLinkFifo};
  RunOptions opts;
  opts.scheduler = kinds[rng.below(5)];
  opts.seed = rng.below(1 << 20) + 1;
  if (rng.chance(0.5)) {
    opts.fault.seed = rng.below(1 << 20) + 1;
    opts.fault.drop = rng.unit() * 0.1;
    opts.fault.duplicate = rng.chance(0.5) ? rng.unit() * 0.1 : 0.0;
    opts.fault.delay = rng.unit() * 0.1;
    opts.fault.crash = rng.unit() * 0.05;
    opts.fault.advice_flip = rng.unit() * 0.05;
  }
  const std::uint32_t shard_counts[] = {2, 3, 5, 8};
  const std::uint32_t shards = shard_counts[rng.below(4)];

  // Alternate between the wakeup scheme (advice-driven, enforced
  // constraint) and flooding (message-heavy, advice-free).
  const bool use_wakeup = rng.chance(0.5);
  const TreeWakeupOracle wakeup_oracle;
  const WakeupTreeAlgorithm wakeup;
  const FloodingAlgorithm flooding;
  const Algorithm& algorithm =
      use_wakeup ? static_cast<const Algorithm&>(wakeup)
                 : static_cast<const Algorithm&>(flooding);
  const std::vector<BitString> advice =
      use_wakeup ? wakeup_oracle.advise(g, source)
                 : std::vector<BitString>(n);
  opts.enforce_wakeup = algorithm.is_wakeup();

  auto both = [&](auto& engine) {
    TraceRecorder recorder;
    RunOptions with_sink = opts;
    with_sink.trace_sink = &recorder;
    const RunResult result =
        engine.run(g, source, advice, algorithm, with_sink);
    return std::make_pair(result, recorder.take().digest());
  };
  ExecutionContext single;
  ShardedExecutionContext sharded(shards);
  const auto want = both(single);
  const auto got = both(sharded);
  EXPECT_EQ(got.first, want.first)
      << "seed " << seed << " shards " << shards << " sched "
      << to_string(opts.scheduler);
  EXPECT_EQ(got.second, want.second) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedFuzz,
                         ::testing::Range<std::uint64_t>(0, 40));

// Storage-state property sweep: a frozen CSR graph and a never-frozen
// builder rebuild of the same edges must be observationally identical,
// and the counting-sort edge order must match the std::stable_sort it
// replaced (see tests/test_csr_graph.cpp for the deterministic
// per-family version of these properties).
class CsrFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrFuzz, FrozenMatchesBuilderAndSortIsStable) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0x517cc1b727220a95ULL + 3);
  const std::size_t n = 3 + static_cast<std::size_t>(rng.below(100));
  const double p = rng.unit() * 0.5;
  PortGraph g = make_random_connected(n, p, rng);
  if (rng.chance(0.5)) g = shuffle_ports(g, rng);
  ASSERT_TRUE(g.frozen());

  PortGraph b(g.num_nodes());
  for (const Edge& e : g.edges()) b.add_edge(e.u, e.port_u, e.v, e.port_v);
  ASSERT_FALSE(b.frozen());
  EXPECT_EQ(b.edges(), g.edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(b.degree(v), g.degree(v));
    ASSERT_EQ(g.degree_u(v), g.degree(v));
    const auto grow = g.neighbors(v);
    const auto brow = b.neighbors(v);
    ASSERT_EQ(grow.size(), brow.size());
    for (Port q = 0; q < grow.size(); ++q) {
      EXPECT_EQ(grow[q], brow[q]);
      EXPECT_EQ(g.neighbor_u(v, q), b.neighbor(v, q));
    }
  }

  std::vector<Edge> expect = g.edges();
  std::stable_sort(
      expect.begin(), expect.end(),
      [](const Edge& a, const Edge& c) { return a.weight() < c.weight(); });
  EXPECT_EQ(edges_by_weight(g), expect);
  EXPECT_EQ(edges_by_weight(b), expect);

  // Trees must not care about the storage state either.
  const NodeId root = static_cast<NodeId>(rng.below(n));
  const SpanningTree tg = bfs_tree(g, root);
  const SpanningTree tb = bfs_tree(b, root);
  const LightTreeResult lg = light_tree(g, root);
  const LightTreeResult lb = light_tree(b, root);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(tg.parent(v), tb.parent(v));
    EXPECT_EQ(tg.port_to_parent(v), tb.port_to_parent(v));
    EXPECT_EQ(lg.tree.parent(v), lb.tree.parent(v));
    EXPECT_EQ(lg.tree.child_ports(v), lb.tree.child_ports(v));
  }
  EXPECT_EQ(lg.contribution, lb.contribution);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrFuzz,
                         ::testing::Range<std::uint64_t>(0, 30));

// Loader fuzz: mutated serializations must either parse into a graph that
// passes validate_ports, or throw GraphParseError — never assert, loop,
// exhaust memory, or hand back a structurally broken graph.
class LoaderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LoaderFuzz, MutatedInputParsesCleanlyOrThrowsStructured) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0x2545f4914f6cdd1dULL + 7);

  const std::size_t n = 3 + static_cast<std::size_t>(rng.below(40));
  const PortGraph g = make_random_connected(n, rng.unit() * 0.3, rng);
  std::string text = to_text(g);

  // A tight node cap so even "fix one digit" mutations that inflate the
  // header are rejected cheaply instead of allocating.
  const ParseLimits limits{/*max_nodes=*/10'000};

  // The unmutated round trip must survive the hardened parser.
  EXPECT_EQ(validate_ports(from_text(text, limits)), "");

  const std::size_t mutations = 1 + static_cast<std::size_t>(rng.below(8));
  for (std::size_t m = 0; m < mutations && !text.empty(); ++m) {
    switch (rng.below(5)) {
      case 0:  // flip one character to random printable junk
        text[rng.below(text.size())] =
            static_cast<char>(' ' + rng.below(95));
        break;
      case 1:  // truncate mid-file
        text.resize(rng.below(text.size()) + 1);
        break;
      case 2: {  // duplicate a random chunk (repeated edges/headers)
        const std::size_t at = rng.below(text.size());
        const std::size_t len =
            std::min<std::size_t>(text.size() - at, 1 + rng.below(40));
        text.insert(at, text.substr(at, len));
        break;
      }
      case 3:  // splice in a hostile line
        text += (rng.chance(0.5) ? "\nportgraph 4000000000\n"
                                 : "\nedge 0 -1 1 999999999\n");
        break;
      case 4: {  // delete a random chunk
        const std::size_t at = rng.below(text.size());
        const std::size_t len =
            std::min<std::size_t>(text.size() - at, 1 + rng.below(20));
        text.erase(at, len);
        break;
      }
    }
  }

  try {
    const PortGraph parsed = from_text(text, limits);
    // Accepted input must yield a structurally sound graph within limits.
    EXPECT_EQ(validate_ports(parsed), "");
    EXPECT_LE(parsed.num_nodes(), limits.max_nodes);
  } catch (const GraphParseError& e) {
    // Structured rejection: line context present for line-level failures,
    // and the what() string embeds the same diagnostic.
    EXPECT_FALSE(e.detail().empty());
    EXPECT_NE(std::string(e.what()).find(e.detail()), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoaderFuzz,
                         ::testing::Range<std::uint64_t>(0, 60));

// Property-based codec sweep: every self-delimiting code must round-trip
// any value, report its cost exactly, consume exactly its own bits from a
// longer stream, and reject truncation with the documented exception —
// over 10k seeded values stretched across all 64 magnitudes.

/// Draws a value whose bit width is uniform in [1, 64] (plain next_u64()
/// would almost never produce small values, and small values are where the
/// terminator logic lives).
std::uint64_t stretched_value(Rng& rng) {
  const int width = 1 + static_cast<int>(rng.below(64));
  const std::uint64_t mask =
      width == 64 ? ~0ULL : ((std::uint64_t{1} << width) - 1);
  return rng.next_u64() & mask;
}

TEST(CodecProperties, DoubledBitRoundTrip10k) {
  Rng rng(0xd0b1edULL);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = stretched_value(rng);
    BitString bits;
    append_doubled(bits, v);
    ASSERT_EQ(bits.size(),
              static_cast<std::size_t>(doubled_length(v)))
        << "v=" << v;
    BitReader r(bits);
    ASSERT_EQ(read_doubled(r), v) << "v=" << v;
    ASSERT_TRUE(r.exhausted()) << "v=" << v;
  }
}

TEST(CodecProperties, EliasGammaDeltaRoundTrip10k) {
  Rng rng(0xe11a5ULL);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = stretched_value(rng) | 1;  // gamma/delta: v >= 1
    BitString gamma;
    append_elias_gamma(gamma, v);
    ASSERT_EQ(gamma.size(),
              static_cast<std::size_t>(elias_gamma_length(v)))
        << "v=" << v;
    BitReader gr(gamma);
    ASSERT_EQ(read_elias_gamma(gr), v) << "v=" << v;
    ASSERT_TRUE(gr.exhausted());

    BitString delta;
    append_elias_delta(delta, v);
    ASSERT_EQ(delta.size(),
              static_cast<std::size_t>(elias_delta_length(v)))
        << "v=" << v;
    BitReader dr(delta);
    ASSERT_EQ(read_elias_delta(dr), v) << "v=" << v;
    ASSERT_TRUE(dr.exhausted());
  }
}

TEST(CodecProperties, MixedStreamSelfDelimits) {
  // Concatenate a random interleaving of all three codes into ONE string;
  // each decoder must stop exactly at its own boundary.
  Rng rng(0x5e1fde1ULL);
  for (int round = 0; round < 300; ++round) {
    std::vector<std::pair<int, std::uint64_t>> plan;
    BitString bits;
    const std::size_t k = 1 + rng.below(20);
    for (std::size_t j = 0; j < k; ++j) {
      const int codec = static_cast<int>(rng.below(3));
      std::uint64_t v = stretched_value(rng);
      if (codec != 0) v |= 1;
      plan.emplace_back(codec, v);
      if (codec == 0) {
        append_doubled(bits, v);
      } else if (codec == 1) {
        append_elias_gamma(bits, v);
      } else {
        append_elias_delta(bits, v);
      }
    }
    BitReader r(bits);
    for (const auto& [codec, v] : plan) {
      const std::uint64_t got = codec == 0   ? read_doubled(r)
                                : codec == 1 ? read_elias_gamma(r)
                                             : read_elias_delta(r);
      ASSERT_EQ(got, v) << "round=" << round;
    }
    ASSERT_TRUE(r.exhausted()) << "round=" << round;
  }
}

TEST(CodecProperties, TruncatedStreamsThrow10k) {
  // Every proper prefix of a valid code word must throw std::out_of_range
  // (exhausted mid-read) — never return a value or touch memory. Sweeping
  // every prefix of ~3.3k words visits well over 10k truncated streams.
  Rng rng(0x7au);
  int streams = 0;
  for (int i = 0; i < 1'000; ++i) {
    for (int codec = 0; codec < 3; ++codec) {
      std::uint64_t v = stretched_value(rng);
      if (codec != 0) v |= 1;
      BitString bits;
      if (codec == 0) {
        append_doubled(bits, v);
      } else if (codec == 1) {
        append_elias_gamma(bits, v);
      } else {
        append_elias_delta(bits, v);
      }
      for (std::size_t cut = 0; cut < bits.size(); ++cut) {
        BitString prefix;
        for (std::size_t b = 0; b < cut; ++b) prefix.append_bit(bits.bit(b));
        BitReader r(prefix);
        const auto read = [&] {
          return codec == 0   ? read_doubled(r)
                 : codec == 1 ? read_elias_gamma(r)
                              : read_elias_delta(r);
        };
        ++streams;
        // A truncated gamma/delta prefix of all zeros would decode as an
        // unterminated length field; every such mid-word cut must throw.
        EXPECT_THROW(read(), std::out_of_range)
            << "codec=" << codec << " v=" << v << " cut=" << cut;
      }
    }
  }
  EXPECT_GT(streams, 10'000);
}

TEST(CodecProperties, PortAndWeightListRoundTrip) {
  Rng rng(0x9027ULL);
  for (int i = 0; i < 2'000; ++i) {
    const int width = 1 + static_cast<int>(rng.below(16));
    std::vector<std::uint64_t> ports(rng.below(12));
    for (std::uint64_t& p : ports) {
      p = rng.below(std::uint64_t{1} << width);
    }
    const BitString bits = encode_port_list(ports, width);
    EXPECT_EQ(decode_port_list(bits), ports) << "i=" << i;

    std::vector<std::uint64_t> weights(rng.below(10));
    for (std::uint64_t& w : weights) w = stretched_value(rng);
    const BitString packed = encode_weight_list(weights);
    EXPECT_EQ(decode_weight_list(packed), weights) << "i=" << i;
  }
}

TEST(CodecProperties, PortListTruncationRejected) {
  // decode_port_list promises: leftover or missing bits raise
  // std::invalid_argument (whole-string consumption), truncation inside a
  // code word surfaces as out_of_range. Either way: a structured throw.
  Rng rng(0x7277ULL);
  int rejected = 0;
  for (int i = 0; i < 500; ++i) {
    const int width = 2 + static_cast<int>(rng.below(10));
    std::vector<std::uint64_t> ports(1 + rng.below(8));
    for (std::uint64_t& p : ports) p = rng.below(std::uint64_t{1} << width);
    const BitString bits = encode_port_list(ports, width);
    const std::size_t cut = rng.below(bits.size());
    BitString prefix;
    for (std::size_t b = 0; b < cut; ++b) prefix.append_bit(bits.bit(b));
    try {
      const std::vector<std::uint64_t> out = decode_port_list(prefix);
      // A prefix that happens to be a valid encoding must decode to a
      // strictly shorter list (never garbage beyond the original).
      ASSERT_LE(out.size(), ports.size());
    } catch (const std::invalid_argument&) {
      ++rejected;
    } catch (const std::out_of_range&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace oraclesize
