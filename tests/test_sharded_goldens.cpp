// Sharded-engine golden pins: the determinism contract checked against the
// SAME fixtures the single-threaded engine is pinned on.
//
// The replay matrix (tests/test_trace_replay.cpp) — six algorithms, two
// schedulers, reliable and faulted — re-runs here at shard counts 2, 3,
// and 8, demanding a bit-identical RunResult AND a bit-identical recorded
// event stream against the shards=1 baseline for every cell. On top of
// that, one absolute anchor: the golden wakeup trace digest from
// tests/test_goldens.cpp must come out of the 8-shard engine unchanged.
// If a sharded-engine change moves any of these, it changed observable
// semantics, not just scheduling — there is no legitimate re-pin.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/replay.h"
#include "core/runner.h"
#include "core/wakeup.h"
#include "graph/builders.h"
#include "oracle/light_broadcast_oracle.h"
#include "oracle/partial_tree_oracle.h"
#include "oracle/tree_wakeup_oracle.h"
#include "oracle/trivial_oracles.h"
#include "sim/execution_context.h"
#include "sim/sharded_engine.h"
#include "sim/trace_recorder.h"

namespace oraclesize {
namespace {

PortGraph matrix_graph() {
  Rng rng(515151);
  return make_random_connected(48, 0.12, rng);
}

std::unique_ptr<Oracle> oracle_for(const std::string& algorithm) {
  if (algorithm == "broadcast-B") {
    return std::make_unique<LightBroadcastOracle>();
  }
  if (algorithm == "flooding") return std::make_unique<NullOracle>();
  if (algorithm == "hybrid-wakeup") {
    return std::make_unique<PartialTreeOracle>(0.5, 7);
  }
  return std::make_unique<TreeWakeupOracle>();
}

struct Recorded {
  RunResult result;
  std::uint64_t digest = 0;
};

TEST(ShardedGoldens, FullMatrixIdenticalAtEveryShardCount) {
  const PortGraph g = matrix_graph();
  ExecutionContext baseline;
  int cells = 0;
  for (const std::string& name : known_algorithms()) {
    const Algorithm* algorithm = algorithm_by_name(name);
    ASSERT_NE(algorithm, nullptr) << name;
    const std::unique_ptr<Oracle> oracle = oracle_for(name);
    const std::vector<BitString> advice = oracle->advise(g, 3);
    for (const SchedulerKind sched :
         {SchedulerKind::kSynchronous, SchedulerKind::kAsyncRandom}) {
      for (const bool faulty : {false, true}) {
        RunOptions opts;
        opts.scheduler = sched;
        opts.seed = 1234;
        opts.enforce_wakeup = algorithm->is_wakeup();
        if (faulty) {
          opts.fault.seed = 88;
          opts.fault.drop = 0.05;
          opts.fault.duplicate = 0.05;
          opts.fault.delay = 0.08;
          opts.fault.crash = 0.04;
          opts.fault.advice_flip = 0.02;
        }
        auto record = [&](auto& engine) {
          TraceRecorder recorder;
          RunOptions with_sink = opts;
          with_sink.trace_sink = &recorder;
          Recorded r;
          r.result = engine.run(g, 3, advice, *algorithm, with_sink);
          r.digest = recorder.take().digest();
          return r;
        };
        const Recorded want = record(baseline);
        for (const std::uint32_t shards : {2u, 3u, 8u}) {
          ShardedExecutionContext engine(shards);
          const Recorded got = record(engine);
          const std::string cell = name + " / " + to_string(sched) +
                                   (faulty ? " / faulty" : " / reliable") +
                                   " / shards=" + std::to_string(shards);
          EXPECT_EQ(got.result, want.result) << cell;
          EXPECT_EQ(got.digest, want.digest) << cell;
        }
        ++cells;
      }
    }
  }
  EXPECT_EQ(cells, 24);
}

TEST(ShardedGoldens, GoldenWakeupDigestReproducedAtEightShards) {
  // The absolute pin: the same constant test_goldens.cpp holds the
  // single-threaded engine to, produced by the sharded engine.
  Rng rng(20260706);
  const PortGraph g = make_random_connected(100, 0.08, rng);
  const TreeWakeupOracle oracle;
  const WakeupTreeAlgorithm algorithm;
  const std::vector<BitString> advice = oracle.advise(g, 0);
  TraceRecorder recorder;
  RunOptions opts;
  opts.enforce_wakeup = true;
  opts.trace_sink = &recorder;
  ShardedExecutionContext engine(8);
  const RunResult result = engine.run(g, 0, advice, algorithm, opts);
  EXPECT_EQ(result.status, RunStatus::kCompleted);
  RecordedTrace t = recorder.take();
  t.header.oracle = oracle.name();
  EXPECT_EQ(t.digest(), 12482672791752212186ULL);
  EXPECT_FALSE(engine.last_stats().fell_back);
  EXPECT_EQ(engine.last_stats().shards, 8u);
}

}  // namespace
}  // namespace oraclesize
